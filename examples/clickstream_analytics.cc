// Click-stream analytics: the paper's motivating scenario end to end.
//
// Generates a synthetic click log, then runs sessionization under all
// four group-by engines and compares running time, internal spill, and
// how closely the reduce progress tracked the map progress — a compact
// rendition of the paper's §6 story.
//
// Build & run:  ./build/examples/clickstream_analytics

#include <cstdio>

#include "src/mr/cluster.h"
#include "src/workloads/clickstream.h"
#include "src/workloads/jobs.h"

using namespace onepass;

namespace {

// Reduce progress at the moment the maps finished: 100 means fully
// incremental (reduce kept up); ~33 means the engine blocked.
double ProgressAtMapFinish(const JobResult& r) {
  return r.reduce_progress.ValueAt(r.map_finish_time);
}

}  // namespace

int main() {
  std::printf("generating a ~10 MB click stream (Zipf users, bursty "
              "sessions)...\n");
  ClickStreamConfig clicks;
  clicks.num_clicks = 150'000;
  clicks.num_users = 6'000;
  clicks.user_skew = 0.5;
  clicks.clicks_per_second = 12;  // ~3.5 simulated hours
  ChunkStore input(/*chunk_bytes=*/256 << 10, /*nodes=*/10);
  GenerateClickStream(clicks, &input);

  std::printf("%-12s %10s %12s %14s %22s\n", "engine", "time(s)",
              "spill(MB)", "early out(%)", "reduce%@maps-done");

  for (EngineKind kind :
       {EngineKind::kSortMerge, EngineKind::kMRHash, EngineKind::kIncHash,
        EngineKind::kDincHash}) {
    JobConfig cfg;
    cfg.engine = kind;
    cfg.cluster.nodes = 10;
    cfg.reducers_per_node = 4;
    cfg.chunk_bytes = 256 << 10;
    cfg.map_buffer_bytes = 512 << 10;
    cfg.reduce_memory_bytes = 96 << 10;  // tight: forces spills
    cfg.merge_factor = 16;
    cfg.expected_keys_per_reducer = 150;
    cfg.expected_bytes_per_reducer = 1 << 20;
    cfg.costs.task_start_s = 0.01;
    cfg.costs.disk_seek_s = 0.4e-3;
    cfg.costs.map_output_retention_s = 0.1;

    auto r = LocalCluster::RunJob(SessionizationJob(512), cfg, input);
    if (!r.ok()) {
      std::fprintf(stderr, "%s failed: %s\n",
                   std::string(EngineKindName(kind)).c_str(),
                   r.status().ToString().c_str());
      continue;
    }
    const double early =
        r->metrics.output_records > 0
            ? 100.0 * static_cast<double>(r->metrics.early_output_records) /
                  static_cast<double>(r->metrics.output_records)
            : 0.0;
    std::printf("%-12s %10.2f %12.1f %14.1f %22.1f\n",
                std::string(EngineKindName(kind)).c_str(), r->running_time,
                r->metrics.reduce_spill_write_bytes / (1024.0 * 1024.0),
                early, ProgressAtMapFinish(*r));
  }

  std::printf(
      "\nreading the table: the sort-merge baseline blocks (reduce stuck "
      "near 33%% while maps\nrun, zero early output); INC-hash streams "
      "results for memory-resident users; DINC-hash\nadditionally evicts "
      "expired sessions instead of spilling them, so nearly all output\n"
      "is produced while the data is still arriving.\n");
  return 0;
}
