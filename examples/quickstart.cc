// Quickstart: word count on the one-pass analytics platform.
//
// Shows the full public API surface:
//   1. define a Mapper and an IncrementalReducer (init/cb/fn),
//   2. load input into the mini-DFS (ChunkStore),
//   3. configure a job (engine, cluster shape, memory),
//   4. run it on the simulated cluster and inspect results.
//
// Build & run:  ./build/examples/quickstart

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/mr/cluster.h"
#include "src/workloads/count_workloads.h"

namespace {

using namespace onepass;

// Map: split a line into words, emit (word, 1) as a count-state.
class WordCountMapper : public Mapper {
 public:
  void Map(std::string_view /*key*/, std::string_view line,
           Emitter* out) override {
    size_t start = 0;
    for (size_t i = 0; i <= line.size(); ++i) {
      if (i == line.size() || line[i] == ' ') {
        if (i > start) out->Emit(line.substr(start, i - start), one_);
        start = i + 1;
      }
    }
  }

 private:
  const std::string one_ = EncodeCountState(1, false);
};

}  // namespace

int main() {
  // 1. Input: a few documents in the mini-DFS, chunked at 4 KB.
  ChunkStore input(/*chunk_bytes=*/4096, /*nodes=*/4);
  const char* docs[] = {
      "the quick brown fox jumps over the lazy dog",
      "the dog barks and the fox runs",
      "one pass analytics needs incremental processing",
      "hash beats sort for one pass analytics",
  };
  for (int copy = 0; copy < 200; ++copy) {
    for (const char* doc : docs) input.Append("", doc);
  }
  input.Seal();

  // 2. The job: word-count mapper + the library's counting reducer
  //    (threshold 0 = output every word's total).
  JobSpec spec;
  spec.name = "word count";
  spec.mapper = [] { return std::make_unique<WordCountMapper>(); };
  spec.inc = [] { return std::make_unique<CountingIncReducer>(0); };
  spec.reducer = [] { return std::make_unique<CountingListReducer>(0); };

  // 3. Configuration: INC-hash engine (incremental, in-memory), with the
  //    map side combining counts before the shuffle.
  JobConfig cfg;
  cfg.engine = EngineKind::kIncHash;
  cfg.cluster.nodes = 4;
  cfg.reducers_per_node = 2;
  cfg.chunk_bytes = 4096;
  cfg.map_side_combine = true;
  cfg.collect_outputs = true;

  // 4. Run and inspect.
  auto result = LocalCluster::RunJob(spec, cfg, input);
  if (!result.ok()) {
    std::fprintf(stderr, "job failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("word count finished in %.3f simulated seconds "
              "(%d map tasks, %d reduce tasks)\n\n",
              result->running_time, result->map_tasks,
              result->reduce_tasks);
  std::printf("%-16s %8s\n", "word", "count");
  std::vector<Record> sorted = result->outputs;
  std::sort(sorted.begin(), sorted.end());
  for (const Record& r : sorted) {
    std::printf("%-16s %8s\n", r.key.c_str(), r.value.c_str());
  }
  std::printf("\nmetrics:\n%s\n", result->metrics.ToString().c_str());
  return 0;
}
