// Tuning Hadoop with the analytical model (§3 of the paper).
//
// Given a workload description (input size, K_m, K_r) and the hardware
// (nodes, buffer sizes), the model predicts the I/O + startup time for any
// (chunk size C, merge factor F) and picks the best setting; we then
// validate the choice by actually running the job at the recommended and
// at a deliberately bad setting.
//
// Build & run:  ./build/examples/model_tuning

#include <cstdio>
#include <vector>

#include "src/model/hadoop_model.h"
#include "src/mr/cluster.h"
#include "src/workloads/clickstream.h"
#include "src/workloads/jobs.h"

using namespace onepass;

int main() {
  // Workload: a ~40 MB click stream, sessionization (K_m ~ 1.15, K_r ~ 1).
  ClickStreamConfig clicks;
  clicks.num_clicks = 550'000;
  clicks.num_users = 20'000;
  clicks.user_skew = 0.5;
  clicks.clicks_per_second = 15;

  CostModel costs;
  costs.task_start_s = 0.010;
  costs.disk_seek_s = 0.05e-3;

  HadoopWorkload w;
  w.d_bytes = 550'000.0 * 75;  // ~75 bytes per record
  w.k_m = 1.15;
  w.k_r = 1.0;
  HadoopHardware hw;
  hw.n_nodes = 10;
  hw.b_m = 512 << 10;
  hw.b_r = 64 << 10;
  const HadoopModel model(w, hw, costs);

  // Scan the model over a grid of (C, F).
  std::vector<double> chunks;
  for (double c = 32 << 10; c <= 1 << 20; c *= 2) chunks.push_back(c);
  const std::vector<double> factors = {3, 4, 6, 8, 12, 16, 24};
  const OptimalSettings best =
      OptimizeHadoopSettings(model, chunks, factors, /*r=*/4);

  std::printf("model recommends: C = %.0f KB, F = %.0f  (predicted T = "
              "%.2f s)\n",
              best.settings.c / 1024, best.settings.f, best.time);
  std::printf("rule of thumb (§3.2(1)): largest C with C*K_m <= B_m gives "
              "C = %.0f KB\n\n",
              RecommendChunkSize(w, hw, chunks) / 1024);

  // Validate: run the recommended setting and a bad one.
  auto run = [&](double c, double f) {
    JobConfig cfg;
    cfg.engine = EngineKind::kSortMerge;
    cfg.cluster.nodes = 10;
    cfg.reducers_per_node = 4;
    cfg.chunk_bytes = static_cast<uint64_t>(c);
    cfg.map_buffer_bytes = 512 << 10;
    cfg.reduce_memory_bytes = 64 << 10;
    cfg.merge_factor = static_cast<int>(f);
    cfg.costs = costs;
    ChunkStore input(cfg.chunk_bytes, cfg.cluster.nodes);
    GenerateClickStream(clicks, &input);
    auto r = LocalCluster::RunJob(SessionizationJob(), cfg, input);
    return r.ok() ? r->running_time : -1.0;
  };

  const double good = run(best.settings.c, best.settings.f);
  const double bad = run(32 << 10, 3);
  std::printf("measured: recommended setting %.2f s, bad setting "
              "(C=32KB, F=3) %.2f s  -> %.0f%% slower\n",
              good, bad, 100.0 * (bad - good) / good);
  std::printf("\nthe model's parameter choices transfer to the measured "
              "system — §3.2's conclusion.\n");
  return 0;
}
