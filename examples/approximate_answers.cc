// Approximate early answers with DINC-hash coverage estimation (§4.3).
//
// DINC-hash tracks, for every monitored key, a safe lower bound on the
// fraction of its tuples already absorbed in memory:
//     gamma = t / (t + M/(s+1))  <=  true coverage.
// With a user threshold phi, the job can *terminate at end of input*,
// returning the partial states of well-covered hot keys and skipping the
// disk-resident buckets entirely — trading completeness for latency.
//
// This example counts clicks per user exactly and approximately, then
// reports how accurate the approximate hot-key answers were.
//
// Build & run:  ./build/examples/approximate_answers

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>

#include "src/mr/cluster.h"
#include "src/workloads/clickstream.h"
#include "src/workloads/count_workloads.h"
#include "src/workloads/jobs.h"
#include "src/workloads/reference.h"

using namespace onepass;

int main() {
  ClickStreamConfig clicks;
  clicks.num_clicks = 200'000;
  clicks.num_users = 20'000;
  clicks.user_skew = 1.1;  // strong skew: a clear hot-key set
  clicks.clicks_per_second = 20;
  ChunkStore input(/*chunk_bytes=*/256 << 10, /*nodes=*/10);
  GenerateClickStream(clicks, &input);

  auto run = [&](double phi) {
    JobConfig cfg;
    cfg.engine = EngineKind::kDincHash;
    cfg.cluster.nodes = 10;
    cfg.reducers_per_node = 4;
    cfg.chunk_bytes = 256 << 10;
    cfg.reduce_memory_bytes = 32 << 10;  // far smaller than the key space
    cfg.map_side_combine = false;  // stress the reduce side
    cfg.expected_keys_per_reducer = 500;
    cfg.dinc_coverage_threshold = phi;
    cfg.collect_outputs = true;
    return LocalCluster::RunJob(ClickCountJob(), cfg, input);
  };

  auto exact = run(0.0);
  auto approx = run(0.9);
  if (!exact.ok() || !approx.ok()) {
    std::fprintf(stderr, "job failed\n");
    return 1;
  }

  const auto truth = ReferenceClickCounts(input, ClickKeyField::kUser);

  // How good are the approximate answers for the keys it returned?
  double worst_rel_err = 0, total_rel_err = 0;
  uint64_t covered_clicks = 0, total_clicks = 0;
  for (const auto& [key, f] : truth) total_clicks += f;
  for (const Record& r : approx->outputs) {
    const uint64_t est = std::stoull(r.value);
    const uint64_t f = truth.at(r.key);
    const double rel = 1.0 - static_cast<double>(est) / f;
    worst_rel_err = std::max(worst_rel_err, rel);
    total_rel_err += rel;
    covered_clicks += f;
  }

  std::printf("exact job:       %6.2f s, %8llu keys output, spill %6.1f "
              "MB\n",
              exact->running_time,
              static_cast<unsigned long long>(exact->metrics.output_records),
              exact->metrics.reduce_spill_write_bytes / (1024.0 * 1024.0));
  std::printf("approximate job: %6.2f s, %8llu hot keys output "
              "(phi = 0.9), buckets skipped\n",
              approx->running_time,
              static_cast<unsigned long long>(
                  approx->metrics.output_records));
  std::printf("\nhot-key quality: the returned keys cover %.1f%% of all "
              "clicks;\n",
              100.0 * covered_clicks / total_clicks);
  std::printf("count under-estimates: mean %.1f%%, worst %.1f%% "
              "(gamma >= 0.9 guaranteed each key's\nreturned state "
              "reflects >= 90%% of its tuples)\n",
              approx->outputs.empty()
                  ? 0.0
                  : 100.0 * total_rel_err / approx->outputs.size(),
              100.0 * worst_rel_err);
  return 0;
}
