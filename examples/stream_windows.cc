// Streaming window aggregation on the one-pass platform (the paper's §8
// future-work direction).
//
// Counts clicks per user per tumbling window over a synthetic stream with
// DINC-hash: closed windows stream out while the input is still being
// read, and states whose windows have all closed are discarded by the
// eviction hook instead of spilled.
//
// Build & run:  ./build/examples/stream_windows

#include <cstdio>
#include <map>

#include "src/mr/cluster.h"
#include "src/workloads/clickstream.h"
#include "src/workloads/jobs.h"

using namespace onepass;

int main() {
  // ~14 simulated hours of clicks.
  ClickStreamConfig clicks;
  clicks.num_clicks = 250'000;
  clicks.num_users = 8'000;
  clicks.user_skew = 0.6;
  clicks.clicks_per_second = 5;
  ChunkStore input(/*chunk_bytes=*/128 << 10, /*nodes=*/10);
  GenerateClickStream(clicks, &input);

  const uint64_t kWindow = 3600;  // hourly windows
  JobConfig cfg;
  cfg.engine = EngineKind::kDincHash;
  cfg.cluster.nodes = 10;
  cfg.reducers_per_node = 4;
  cfg.chunk_bytes = 128 << 10;
  cfg.reduce_memory_bytes = 64 << 10;  // far fewer slots than users
  cfg.expected_keys_per_reducer = 200;
  cfg.collect_outputs = true;

  auto r = LocalCluster::RunJob(WindowedClickCountJob(kWindow, 600), cfg,
                                input);
  if (!r.ok()) {
    std::fprintf(stderr, "job failed: %s\n", r.status().ToString().c_str());
    return 1;
  }

  // Aggregate across users: total clicks per hourly window.
  std::map<uint64_t, uint64_t> per_window;
  for (const Record& rec : r->outputs) {
    const size_t colon = rec.value.find(':');
    per_window[std::stoull(rec.value.substr(0, colon))] +=
        std::stoull(rec.value.substr(colon + 1));
  }

  std::printf("windowed click counts (hourly), %llu (user,window) results, "
              "%.1f%% emitted while streaming:\n\n",
              static_cast<unsigned long long>(r->metrics.output_records),
              100.0 * static_cast<double>(r->metrics.early_output_records) /
                  static_cast<double>(r->metrics.output_records));
  std::printf("%12s %10s\n", "window", "clicks");
  for (const auto& [w, c] : per_window) {
    std::printf("%9lluh %10llu\n",
                static_cast<unsigned long long>(w / 3600),
                static_cast<unsigned long long>(c));
  }
  std::printf("\nreduce spill: %.2f MB (eviction hook discards "
              "closed-window states)\n",
              r->metrics.reduce_spill_write_bytes / (1024.0 * 1024.0));
  return 0;
}
