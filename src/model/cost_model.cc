#include "src/model/cost_model.h"

#include <cmath>

namespace onepass {

double CostModel::SortCost(uint64_t n) const {
  if (n < 2) return 0.0;
  const double dn = static_cast<double>(n);
  return sort_cmp_s * dn * std::log2(dn);
}

double CostModel::MergeCost(uint64_t n) const {
  return merge_record_s * static_cast<double>(n);
}

}  // namespace onepass
