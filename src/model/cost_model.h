// CostModel: the calibrated constants shared by the analytical model (§3.1)
// and the discrete-event simulator.
//
// The paper sets (§3.2): sequential disk speed 80 MB/s, seek 4 ms, map task
// startup 100 ms. We add CPU constants (per-record function costs, per-
// comparison sort cost, per-probe hash cost) chosen so that the simulated
// CPU-time split matches the paper's measurements — e.g. eliminating the
// map-side sort roughly halves map CPU time (Table 3: 936 s -> 566 s for
// sessionization), and the map function itself is "CPU light" relative to
// sorting (§2.3).

#ifndef ONEPASS_MODEL_COST_MODEL_H_
#define ONEPASS_MODEL_COST_MODEL_H_

#include <cstdint>

namespace onepass {

struct CostModel {
  // --- I/O constants (paper §3.2) ---
  // Seconds per byte of sequential disk I/O (80 MB/s).
  double disk_byte_s = 1.0 / (80.0 * 1024 * 1024);
  // Seconds per disk seek (one per sequential I/O request).
  double disk_seek_s = 0.004;
  // Seconds to start a task (map startup cost c_start).
  double task_start_s = 0.100;
  // Seconds per byte of network transfer during shuffle. Gigabit ethernet
  // (~110 MB/s payload) shared per node.
  double net_byte_s = 1.0 / (110.0 * 1024 * 1024);

  // --- CPU constants (calibrated; see DESIGN.md §5) ---
  // Map function application, per input byte (parse + emit). "CPU light".
  double map_fn_byte_s = 2.0e-9;
  // Sort cost per comparison; total sort CPU = sort_cmp_s * n * log2(n).
  double sort_cmp_s = 60.0e-9;
  // Hash path cost per record (hash + table probe / partition counting).
  double hash_record_s = 25.0e-9;
  // Combine/initialize step per record (state update).
  double combine_record_s = 15.0e-9;
  // Reduce function application, per input byte.
  double reduce_fn_byte_s = 2.0e-9;
  // Merge cost per record per pass (heap sift in k-way merge).
  double merge_record_s = 40.0e-9;
  // Block codec CPU (DESIGN.md §5.5), per *raw* byte passed through the
  // encoder/decoder. Charged only when JobConfig::block_codec != kNone, so
  // kNone schedules are untouched. Roughly an LZ4-class software codec:
  // ~400 MB/s compress, ~1.5 GB/s decompress.
  double compress_byte_s = 2.5e-9;
  double decompress_byte_s = 0.7e-9;

  // Memory retention window for map output on the mapper node (seconds).
  // A reducer fetching within this window reads from the mapper's memory;
  // later fetches hit the mapper's disk (this is what penalizes the second
  // reducer wave when R exceeds the reduce slots; §3.2(3)).
  double map_output_retention_s = 60.0;

  // Resident shuffle (DESIGN.md §5.9): seconds per byte of memory-resident
  // segment handling — publishing a push segment into the node's resident
  // cache, and serializing/adopting carried reduce state between chained
  // jobs. Memory-bandwidth class (~2 GB/s conservative), vs. 80 MB/s +
  // seeks for the disk path it replaces.
  double resident_publish_byte_s = 0.5e-9;
  // Seconds per byte of map input served from the M3R-style input cache
  // when an iteration re-reads the chunk store the previous iteration
  // already scanned on the same nodes (kResident chains only).
  double cached_input_byte_s = 0.5e-9;

  // Node combine tier (DESIGN.md §5.10): seconds per byte of handing a map
  // task's partitioned output to the node-scope combiner. The feed never
  // leaves the node's memory (same class as resident_publish_byte_s), vs.
  // the disk write + network push it replaces.
  double node_combine_byte_s = 0.5e-9;

  // Sort CPU seconds for n records.
  double SortCost(uint64_t n) const;
  // k-way merge CPU seconds for n records (single pass).
  double MergeCost(uint64_t n) const;
};

}  // namespace onepass

#endif  // ONEPASS_MODEL_COST_MODEL_H_
