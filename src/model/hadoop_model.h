// The paper's analytical model of Hadoop (§3.1, Propositions 3.1 and 3.2).
//
// Given a workload (D, K_m, K_r), hardware (N, B_m, B_r) and settings
// (R, C, F), the model predicts:
//   U — bytes read + written per node (Eq. 1), decomposed into the five
//       I/O types of Table 2 (map input, map internal spills, map output,
//       reduce internal spills, reduce output);
//   S — number of sequential I/O requests per node (Eq. 3);
//   T — the combined time measurement (Eq. 4):
//       T = c_byte * U + c_seek * S + c_start * D/(C*N).
//
// The model is used to *tune* Hadoop (chunk size C, merge factor F, reducers
// per node R) — §3.2 — and bench_fig4a/fig4b compare its predictions with
// our simulator's measured running time, reproducing Fig. 4(a)/(b).

#ifndef ONEPASS_MODEL_HADOOP_MODEL_H_
#define ONEPASS_MODEL_HADOOP_MODEL_H_

#include <cstdint>
#include <vector>

#include "src/model/cost_model.h"

namespace onepass {

// lambda_F(n, b) from Eq. 2: the per-file byte volume created by multi-pass
// merge of n initial sorted runs of b bytes each with merge factor F.
// The closed form is derived for the asymptotic tree regime; for n small
// enough that no background merge happens (n <= 2F-1) the exact volume is
// simply n*b, and we clamp to that floor so the model stays sensible at
// small scale.
double LambdaF(double n, double b, double f);

struct HadoopWorkload {
  double d_bytes = 0;  // input data size D
  double k_m = 1.0;    // map output/input ratio
  double k_r = 1.0;    // reduce output/input ratio
};

struct HadoopHardware {
  int n_nodes = 10;       // N
  double b_m = 0;         // map output buffer per task, bytes
  double b_r = 0;         // shuffle buffer per reduce task, bytes
};

struct HadoopSettings {
  int r = 4;              // reduce tasks per node
  double c = 64 << 20;    // map input chunk size, bytes
  double f = 10;          // merge factor
};

// Effective-bytes multipliers for a block-codec byte path (DESIGN.md §5.5):
// the ratio encoded/raw per stream kind, each in (0, 1] with 1.0 = no
// codec. The model's U terms describe raw data volume; when the platform
// runs with a codec the *disk* carries encoded bytes, so the model scales
// each compressible U term by the workload's measured ratio. Map input and
// reduce output stay raw — the codec only covers intermediate streams.
struct EffectiveBytes {
  double map_spill = 1.0;     // scales U2 (sorted-run streams)
  double map_output = 1.0;    // scales U3 (shuffle segment streams)
  double reduce_spill = 1.0;  // scales U4 (reduce runs + bucket files)
  // Node combine tier (DESIGN.md §5.10): combined/raw record-volume ratio
  // of the node-scope combiner, in (0, 1] with 1.0 = combine_scope kTask.
  // Unlike the codec ratios it shrinks the *raw* shuffle volume, so it
  // scales U3 and the reduce-side buffer pressure beta that drives U4.
  double node_combine = 1.0;
};

// Per-node byte I/O decomposition (Table 2's five U_i types).
struct ByteCosts {
  double map_input = 0;      // U1
  double map_spill = 0;      // U2
  double map_output = 0;     // U3
  double reduce_spill = 0;   // U4
  double reduce_output = 0;  // U5
  double total() const {
    return map_input + map_spill + map_output + reduce_spill + reduce_output;
  }
};

class HadoopModel {
 public:
  HadoopModel(HadoopWorkload w, HadoopHardware h, CostModel costs = {})
      : w_(w), h_(h), costs_(costs) {}

  // Installs codec effective-bytes multipliers; Bytes() scales U2/U3/U4 by
  // them. Requests() is left alone: compression shrinks bytes per request,
  // not the number of sequential I/O requests.
  void set_effective_bytes(const EffectiveBytes& eff) { eff_ = eff; }

  // Proposition 3.1: bytes read and written per node.
  ByteCosts Bytes(const HadoopSettings& s) const;

  // Proposition 3.2: number of sequential I/O requests per node.
  double Requests(const HadoopSettings& s) const;

  // Eq. 4: T = c_byte*U + c_seek*S + c_start*D/(C*N).
  double TimeMeasurement(const HadoopSettings& s) const;

  // Map startup cost per node: c_start * D/(C*N).
  double StartupCost(const HadoopSettings& s) const;

  const HadoopWorkload& workload() const { return w_; }
  const HadoopHardware& hardware() const { return h_; }

 private:
  HadoopWorkload w_;
  HadoopHardware h_;
  CostModel costs_;
  EffectiveBytes eff_;
};

// Result of a grid search over (C, F).
struct OptimalSettings {
  HadoopSettings settings;
  double time = 0;
};

// Scans the cross product of candidate chunk sizes and merge factors and
// returns the settings minimizing TimeMeasurement. R is held fixed (the
// model is insensitive to R; §3.2(3) recommends R = reduce slots).
OptimalSettings OptimizeHadoopSettings(const HadoopModel& model,
                                       const std::vector<double>& chunk_sizes,
                                       const std::vector<double>& merge_factors,
                                       int r);

// The paper's §3.2(1) closed-form recommendation: the largest chunk C with
// C*K_m <= B_m (map output fits the sort buffer, no map-side spill).
double RecommendChunkSize(const HadoopWorkload& w, const HadoopHardware& h,
                          const std::vector<double>& chunk_sizes);

}  // namespace onepass

#endif  // ONEPASS_MODEL_HADOOP_MODEL_H_
