#include "src/model/hadoop_model.h"

#include <cmath>
#include <limits>

#include "src/common/logging.h"

namespace onepass {

double LambdaF(double n, double b, double f) {
  CHECK_GT(f, 1.0);
  if (n <= 0) return 0.0;
  // A background merge first fires when the 2F-1'th spill file appears;
  // with fewer runs the exact volume (each initial run written once) is
  // n*b.
  if (n <= 2 * f - 2) return n * b;
  const double closed =
      (n * n / (2 * f * (f - 1)) + 1.5 * n - f * f / (2 * (f - 1))) * b;
  // The closed form can undershoot the trivial floor for n just above the
  // threshold; never report less volume than the initial runs themselves.
  return std::max(closed, n * b);
}

ByteCosts HadoopModel::Bytes(const HadoopSettings& s) const {
  ByteCosts u;
  const double n = h_.n_nodes;
  // The node combine tier collapses the shuffled volume *before* it is
  // pushed, so everything downstream of the map (U3, and the reduce
  // buffer pressure behind U4) sees the shrunken stream.
  const double shuffled = w_.d_bytes * w_.k_m * eff_.node_combine;
  u.map_input = w_.d_bytes / n;                              // U1
  u.map_output = shuffled / n;                               // U3
  u.reduce_output = w_.d_bytes * w_.k_m * w_.k_r / n;        // U5

  // U2: map internal spills (external sort) when C*K_m > B_m.
  const double map_out_per_task = s.c * w_.k_m;
  if (map_out_per_task > h_.b_m) {
    const double runs = map_out_per_task / h_.b_m;
    u.map_spill = 2.0 * (w_.d_bytes / (s.c * n)) * LambdaF(runs, h_.b_m, s.f);
  }

  // U4: reduce internal spills from the multi-pass merge. The paper's model
  // assumes no combine function, so reduce input rarely fits in memory; when
  // it does (beta <= 1) there is no spill.
  const double beta = shuffled / (n * s.r * h_.b_r);
  if (beta > 1.0) {
    u.reduce_spill = 2.0 * s.r * LambdaF(beta, h_.b_r, s.f);
  }
  // Codec effective bytes: the intermediate streams hit disk encoded, so
  // the model's raw volumes scale by the measured encoded/raw ratios.
  u.map_spill *= eff_.map_spill;
  u.map_output *= eff_.map_output;
  u.reduce_spill *= eff_.reduce_spill;
  return u;
}

double HadoopModel::Requests(const HadoopSettings& s) const {
  // Proposition 3.2 (Eq. 3).
  const double n = h_.n_nodes;
  const double alpha = s.c * w_.k_m / h_.b_m;
  const double beta = w_.d_bytes * w_.k_m / (n * s.r * h_.b_r);
  const double sqf1 = std::sqrt(s.f) + 1.0;

  double map_part = alpha + 1.0;
  if (s.c * w_.k_m > h_.b_m) {
    map_part += LambdaF(alpha, 1.0, s.f) * sqf1 * sqf1 + alpha - 1.0;
  }
  map_part *= w_.d_bytes / (s.c * n);

  double reduce_part = beta * w_.k_r * sqf1 - beta * std::sqrt(s.f);
  if (beta > 1.0) {
    reduce_part += LambdaF(beta, 1.0, s.f) * sqf1 * sqf1;
  }
  reduce_part *= s.r;

  return map_part + std::max(reduce_part, 0.0);
}

double HadoopModel::StartupCost(const HadoopSettings& s) const {
  return costs_.task_start_s * w_.d_bytes / (s.c * h_.n_nodes);
}

double HadoopModel::TimeMeasurement(const HadoopSettings& s) const {
  return costs_.disk_byte_s * Bytes(s).total() +
         costs_.disk_seek_s * Requests(s) + StartupCost(s);
}

OptimalSettings OptimizeHadoopSettings(
    const HadoopModel& model, const std::vector<double>& chunk_sizes,
    const std::vector<double>& merge_factors, int r) {
  OptimalSettings best;
  best.time = std::numeric_limits<double>::infinity();
  for (double c : chunk_sizes) {
    for (double f : merge_factors) {
      HadoopSettings s{r, c, f};
      const double t = model.TimeMeasurement(s);
      if (t < best.time) {
        best.time = t;
        best.settings = s;
      }
    }
  }
  return best;
}

double RecommendChunkSize(const HadoopWorkload& w, const HadoopHardware& h,
                          const std::vector<double>& chunk_sizes) {
  double best = 0;
  for (double c : chunk_sizes) {
    if (c * w.k_m <= h.b_m && c > best) best = c;
  }
  // If every candidate spills, fall back to the smallest one.
  if (best == 0 && !chunk_sizes.empty()) {
    best = chunk_sizes[0];
    for (double c : chunk_sizes) best = std::min(best, c);
  }
  return best;
}

}  // namespace onepass
