// Exact simulation of Hadoop's multi-pass merge file tree (paper Fig. 3).
//
// Policy: initial sorted runs are spilled to disk as they are produced;
// whenever the number of on-disk files reaches 2F-1, a background thread
// merges the *smallest* F files into one. After the last initial run, the
// (at most 2F-1) remaining files feed the final merge, whose output streams
// into the reduce function and is NOT written back to disk.
//
// This module exists to validate the closed-form lambda_F of Eq. 2 (see
// tests/merge_tree_test.cc) and to drive the sort-merge engine's reduce-side
// merge schedule.

#ifndef ONEPASS_MODEL_MERGE_TREE_H_
#define ONEPASS_MODEL_MERGE_TREE_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace onepass {

struct MergeTreeStats {
  // Sum of sizes of every file ever created (initial runs + merged files).
  // Total disk traffic of the multi-pass phase is 2x this (each file is
  // written once and read once; Eq. 2's lambda_F approximates it).
  double total_file_bytes = 0;
  // Bytes merged by background (non-final) merges only.
  double background_merge_bytes = 0;
  // Number of background merge operations.
  int background_merges = 0;
  // Sizes of the files left for the final merge.
  std::vector<double> final_inputs;
};

// Simulates merging `n` initial runs of `b` bytes each with merge factor
// `f`. Exact counterpart of lambda_F(n, b): total_file_bytes.
MergeTreeStats SimulateMergeTree(int n, double b, int f);

// Incremental version used by the sort-merge engine: feed runs one at a
// time; background merges fire per the policy above.
class MergeScheduler {
 public:
  explicit MergeScheduler(int merge_factor);

  // Reports a new on-disk run of `bytes`. If this triggers a background
  // merge, returns the indices (into the caller's file list, mirrored by
  // `files()`) that were merged; otherwise returns an empty vector.
  struct MergeEvent {
    bool merged = false;
    std::vector<int> inputs;   // file ids consumed
    int output_id = -1;        // file id of the merged result
    double output_bytes = 0;
  };
  MergeEvent AddRun(double bytes);

  // Called when input ends; Hadoop completes the multi-pass merge until at
  // most 2F-1 files remain (they already do, by the invariant), then the
  // final merge streams them to reduce. Returns the surviving file ids.
  std::vector<int> FinalInputs() const;

  double FileBytes(int id) const { return sizes_[id]; }
  int live_files() const { return static_cast<int>(live_.size()); }

  // Checkpoint support (DESIGN.md §5.6): the full schedule state, so a
  // restored sort-merge engine replays the remaining merge tree
  // identically. `sizes` is indexed by file id (dead files included);
  // `live` lists the ids currently on disk, in policy order.
  const std::vector<double>& file_sizes() const { return sizes_; }
  const std::vector<int>& live_ids() const { return live_; }
  void RestoreState(std::vector<double> sizes, std::vector<int> live) {
    sizes_ = std::move(sizes);
    live_ = std::move(live);
  }

 private:
  int f_;
  std::vector<double> sizes_;  // by file id, includes dead files
  std::vector<int> live_;      // ids of files currently on disk
};

}  // namespace onepass

#endif  // ONEPASS_MODEL_MERGE_TREE_H_
