#include "src/model/merge_tree.h"

#include <algorithm>

#include "src/common/logging.h"

namespace onepass {

MergeScheduler::MergeScheduler(int merge_factor) : f_(merge_factor) {
  CHECK_GE(merge_factor, 2);
}

MergeScheduler::MergeEvent MergeScheduler::AddRun(double bytes) {
  const int id = static_cast<int>(sizes_.size());
  sizes_.push_back(bytes);
  live_.push_back(id);

  MergeEvent ev;
  if (static_cast<int>(live_.size()) < 2 * f_ - 1) return ev;

  // Merge the smallest F live files.
  std::vector<int> order = live_;
  std::stable_sort(order.begin(), order.end(), [this](int a, int b) {
    return sizes_[a] < sizes_[b];
  });
  ev.merged = true;
  ev.inputs.assign(order.begin(), order.begin() + f_);
  double total = 0;
  for (int in : ev.inputs) total += sizes_[in];
  const int out_id = static_cast<int>(sizes_.size());
  sizes_.push_back(total);
  ev.output_id = out_id;
  ev.output_bytes = total;

  // Update the live set: remove inputs, add output.
  std::vector<int> next_live;
  next_live.reserve(live_.size() - f_ + 1);
  for (int id2 : live_) {
    if (std::find(ev.inputs.begin(), ev.inputs.end(), id2) ==
        ev.inputs.end()) {
      next_live.push_back(id2);
    }
  }
  next_live.push_back(out_id);
  live_ = std::move(next_live);
  return ev;
}

std::vector<int> MergeScheduler::FinalInputs() const { return live_; }

MergeTreeStats SimulateMergeTree(int n, double b, int f) {
  MergeTreeStats stats;
  MergeScheduler sched(f);
  for (int i = 0; i < n; ++i) {
    stats.total_file_bytes += b;
    auto ev = sched.AddRun(b);
    if (ev.merged) {
      stats.total_file_bytes += ev.output_bytes;
      stats.background_merge_bytes += ev.output_bytes;
      ++stats.background_merges;
    }
  }
  for (int id : sched.FinalInputs()) {
    stats.final_inputs.push_back(sched.FileBytes(id));
  }
  return stats;
}

}  // namespace onepass
