#include "src/util/batch_hash.h"

#include "src/util/hash.h"

#if defined(__x86_64__) || defined(__i386__)
#define ONEPASS_BATCH_HASH_X86 1
#include <immintrin.h>
#endif

namespace onepass {
namespace {

void Mix64AffineScalar(uint64_t* xs, size_t n, uint64_t a, uint64_t b) {
  for (size_t i = 0; i < n; ++i) {
    xs[i] = a * Mix64(xs[i]) + b;
  }
}

#if defined(ONEPASS_BATCH_HASH_X86)

// 64-bit lane-wise multiply from 32x32 partial products (AVX2 has no
// _mm256_mullo_epi64): x*y mod 2^64 = lo(x)lo(y) + ((lo(x)hi(y) +
// hi(x)lo(y)) << 32).
__attribute__((target("avx2"))) inline __m256i Mullo64(__m256i x, __m256i y) {
  const __m256i lo = _mm256_mul_epu32(x, y);
  const __m256i x_hi = _mm256_srli_epi64(x, 32);
  const __m256i y_hi = _mm256_srli_epi64(y, 32);
  const __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(x_hi, y),
                                         _mm256_mul_epu32(x, y_hi));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

__attribute__((target("avx2"))) void Mix64AffineAvx2(uint64_t* xs, size_t n,
                                                     uint64_t a, uint64_t b) {
  const __m256i c1 =
      _mm256_set1_epi64x(static_cast<int64_t>(0xbf58476d1ce4e5b9ULL));
  const __m256i c2 =
      _mm256_set1_epi64x(static_cast<int64_t>(0x94d049bb133111ebULL));
  const __m256i va = _mm256_set1_epi64x(static_cast<int64_t>(a));
  const __m256i vb = _mm256_set1_epi64x(static_cast<int64_t>(b));
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(xs + i));
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 30));
    x = Mullo64(x, c1);
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 27));
    x = Mullo64(x, c2);
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
    x = _mm256_add_epi64(Mullo64(x, va), vb);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(xs + i), x);
  }
  Mix64AffineScalar(xs + i, n - i, a, b);
}

__attribute__((target("avx512f,avx512dq,avx512vl"))) void Mix64AffineAvx512(
    uint64_t* xs, size_t n, uint64_t a, uint64_t b) {
  // vpmullq (AVX-512DQ) is a true lane-wise 64-bit multiply, so the whole
  // Mix64 + affine chain runs 8 lanes per instruction stream.
  const __m512i c1 =
      _mm512_set1_epi64(static_cast<int64_t>(0xbf58476d1ce4e5b9ULL));
  const __m512i c2 =
      _mm512_set1_epi64(static_cast<int64_t>(0x94d049bb133111ebULL));
  const __m512i va = _mm512_set1_epi64(static_cast<int64_t>(a));
  const __m512i vb = _mm512_set1_epi64(static_cast<int64_t>(b));
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i x = _mm512_loadu_si512(xs + i);
    x = _mm512_xor_si512(x, _mm512_srli_epi64(x, 30));
    x = _mm512_mullo_epi64(x, c1);
    x = _mm512_xor_si512(x, _mm512_srli_epi64(x, 27));
    x = _mm512_mullo_epi64(x, c2);
    x = _mm512_xor_si512(x, _mm512_srli_epi64(x, 31));
    x = _mm512_add_epi64(_mm512_mullo_epi64(x, va), vb);
    _mm512_storeu_si512(xs + i, x);
  }
  Mix64AffineScalar(xs + i, n - i, a, b);
}

#endif  // ONEPASS_BATCH_HASH_X86

}  // namespace

void Mix64AffineBatch(uint64_t* xs, size_t n, uint64_t a, uint64_t b,
                      SimdTier tier) {
#if defined(ONEPASS_BATCH_HASH_X86)
  if (TierHasVectorHashMix(tier) && SimdTierSupported(SimdTier::kAvx512)) {
    Mix64AffineAvx512(xs, n, a, b);
    return;
  }
  // The AVX2 emulated-multiply kernel is only dispatched when explicitly
  // pinned to kAvx2 (auto-detection prefers kAvx512 or falls through to
  // scalar — see TierHasVectorHashMix for why emulation loses to imul).
  if (tier == SimdTier::kAvx2 && SimdTierSupported(SimdTier::kAvx2)) {
    Mix64AffineAvx2(xs, n, a, b);
    return;
  }
#else
  (void)tier;
#endif
  Mix64AffineScalar(xs, n, a, b);
}

void UniversalHash::HashBatch(const std::string_view* keys, size_t n,
                              uint64_t* out, SimdTier tier) const {
  // Pass 1: FNV cores. Each core is a serial multiply chain over its own
  // key (~4 cycles per 8-byte word), but neighbouring keys are independent
  // — four-wide unrolling keeps four chains in flight so the multiplier
  // stays busy instead of waiting out each chain's latency.
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    out[i] = hash_internal::FnvCore(keys[i], seed_);
    out[i + 1] = hash_internal::FnvCore(keys[i + 1], seed_);
    out[i + 2] = hash_internal::FnvCore(keys[i + 2], seed_);
    out[i + 3] = hash_internal::FnvCore(keys[i + 3], seed_);
  }
  for (; i < n; ++i) {
    out[i] = hash_internal::FnvCore(keys[i], seed_);
  }
  // Pass 2: Mix64 finalizer + the (a, b) affine step, tier-dispatched.
  Mix64AffineBatch(out, n, a_, b_, tier);
}

}  // namespace onepass
