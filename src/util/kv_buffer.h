// KvBuffer: a flat, append-only buffer of (key, value) byte-string pairs.
//
// This is the platform's unit of intermediate data: map output partitions,
// shuffle segments, spill-file payloads, and disk buckets are all KvBuffers.
// Records are stored contiguously as varint-length-prefixed key/value bytes,
// so `bytes()` is the honest serialized size that the simulated disk and
// network account for.

#ifndef ONEPASS_UTIL_KV_BUFFER_H_
#define ONEPASS_UTIL_KV_BUFFER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/util/coding.h"

namespace onepass {

class KvBuffer {
 public:
  KvBuffer() = default;

  // Appends one record. Views into the buffer remain valid until the buffer
  // is destroyed or cleared (std::string may reallocate, so do not hold
  // views across Append calls).
  void Append(std::string_view key, std::string_view value) {
    PutLengthPrefixed(&data_, key);
    PutLengthPrefixed(&data_, value);
    ++count_;
  }

  // Appends every record of `other`. Grows capacity geometrically: an
  // exact reservation on every bulk append would pin capacity to size and
  // degrade repeated AppendAll calls (bucket files absorbing page flushes)
  // to quadratic copying.
  void AppendAll(const KvBuffer& other) {
    const size_t needed = data_.size() + other.data_.size();
    if (needed > data_.capacity()) {
      data_.reserve(needed > 2 * data_.capacity() ? needed
                                                  : 2 * data_.capacity());
    }
    data_.append(other.data_);
    count_ += other.count_;
  }

  // Pre-sizes the backing storage for `bytes` total serialized bytes.
  // Callers that know the final size (e.g. partition assembly from runs of
  // known byte counts) use this to avoid repeated string reallocations.
  void Reserve(size_t bytes) {
    if (bytes > data_.capacity()) data_.reserve(bytes);
  }

  // Releases slack capacity. Worth calling once a buffer reaches its final
  // size and will be held for a while (e.g. merged map output partitions
  // awaiting shuffle), so resident spill memory tracks payload bytes.
  void ShrinkToFit() { data_.shrink_to_fit(); }

  uint64_t count() const { return count_; }
  uint64_t bytes() const { return data_.size(); }
  bool empty() const { return count_ == 0; }

  void Clear() {
    data_.clear();
    count_ = 0;
  }

  // Trades away the contents, leaving this buffer empty.
  std::string ReleaseData() {
    count_ = 0;
    return std::move(data_);
  }

  const std::string& data() const { return data_; }

  // Reconstructs a buffer from serialized bytes (e.g. read back from a
  // spill file). `count` must match what was serialized.
  static KvBuffer FromData(std::string data, uint64_t count) {
    KvBuffer b;
    b.data_ = std::move(data);
    b.count_ = count;
    return b;
  }

 private:
  std::string data_;
  uint64_t count_ = 0;
};

// Sequential reader over a KvBuffer (or raw serialized record bytes).
// Typical use:
//   KvBufferReader r(buf);
//   std::string_view k, v;
//   while (r.Next(&k, &v)) { ... }
class KvBufferReader {
 public:
  explicit KvBufferReader(const KvBuffer& buf) : rest_(buf.data()) {}
  explicit KvBufferReader(std::string_view raw) : rest_(raw) {}

  // Advances to the next record. Returns false at end, or if the bytes do
  // not parse as length-prefixed records. Readers also run over bytes read
  // back through framed I/O; frame checksums catch flipped bits, but a
  // truncated or mis-framed payload still surfaces here as a short read, so
  // callers that require exactly N records must check AtEnd()/the count.
  bool Next(std::string_view* key, std::string_view* value) {
    if (rest_.empty()) return false;
    if (!GetLengthPrefixed(&rest_, key)) return false;
    return GetLengthPrefixed(&rest_, value);
  }

  bool AtEnd() const { return rest_.empty(); }

  // Bytes not yet consumed.
  size_t remaining_bytes() const { return rest_.size(); }

 private:
  std::string_view rest_;
};

// Batch-at-a-time reader: decodes up to `capacity` records per Fill() into
// parallel key/value view arrays (the RecordBatch layout, DESIGN.md §5.8).
// Views point into the underlying buffer and stay valid for its lifetime,
// so a whole batch can be hashed, prefetched, and probed without copying.
// Record order is exactly KvBufferReader order — batch size only changes
// how many views are staged at once, never what a consumer sees.
class KvBatchReader {
 public:
  KvBatchReader(const KvBuffer& buf, size_t capacity)
      : reader_(buf), keys_(capacity), values_(capacity) {}
  KvBatchReader(std::string_view raw, size_t capacity)
      : reader_(raw), keys_(capacity), values_(capacity) {}

  // Decodes the next batch; returns the record count (0 at end of input).
  size_t Fill() {
    size_t n = 0;
    while (n < keys_.size() && reader_.Next(&keys_[n], &values_[n])) ++n;
    return n;
  }

  const std::string_view* keys() const { return keys_.data(); }
  const std::string_view* values() const { return values_.data(); }
  size_t capacity() const { return keys_.size(); }

 private:
  KvBufferReader reader_;
  std::vector<std::string_view> keys_;
  std::vector<std::string_view> values_;
};

// Serialized size of one record as KvBuffer stores it.
inline uint64_t RecordBytes(std::string_view key, std::string_view value) {
  return static_cast<uint64_t>(VarintLength(key.size()) + key.size() +
                               VarintLength(value.size()) + value.size());
}

}  // namespace onepass

#endif  // ONEPASS_UTIL_KV_BUFFER_H_
