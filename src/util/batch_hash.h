// Batch hashing for the vectorized data plane (DESIGN.md §5.8).
//
// The batch plane computes UniversalHash digests for a whole RecordBatch
// into a scratch array (UniversalHash::HashBatch, declared in hash.h and
// implemented here), then walks the batch issuing software prefetches
// kProbePrefetchDistance slots ahead of each FlatTable probe. Digests are
// bit-identical to the scalar per-record path at every SIMD tier — the
// tier only changes how fast the Mix64+affine finalize pass runs.

#ifndef ONEPASS_UTIL_BATCH_HASH_H_
#define ONEPASS_UTIL_BATCH_HASH_H_

#include <cstddef>
#include <cstdint>

#include "src/util/simd_dispatch.h"

namespace onepass {

// How far ahead of the current record a batched probe loop prefetches the
// FlatTable control word. Roughly the depth of one memory access window:
// large enough to cover a DRAM miss at typical per-record work, small
// enough that prefetched lines are still resident when the probe arrives.
inline constexpr size_t kProbePrefetchDistance = 8;

// In place over `xs`: xs[i] = a * Mix64(xs[i]) + b. The finalize pass of
// HashBatch — a scalar loop, or 4 lanes at a time under the AVX2 tier.
// Results are bit-identical across tiers.
void Mix64AffineBatch(uint64_t* xs, size_t n, uint64_t a, uint64_t b,
                      SimdTier tier);

}  // namespace onepass

#endif  // ONEPASS_UTIL_BATCH_HASH_H_
