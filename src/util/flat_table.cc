#include "src/util/flat_table.h"

#include <algorithm>

namespace onepass {

bool FlatTable::Erase(std::string_view key, uint64_t hash) {
  if (ctrl_mask_ == 0) return false;
  const uint64_t tag = TagOf(hash);
  size_t i = hash & ctrl_mask_;
  uint64_t len = 1;
  for (;; i = (i + 1) & ctrl_mask_, ++len) {
    const uint64_t c = ctrl_[i];
    if (c == 0) {
      Probe(len);
      return false;
    }
    if ((c >> 32) == tag) {
      const uint32_t idx = static_cast<uint32_t>(c & 0xffffffffu) - 1;
      const Entry& e = entries_[idx];
      if (e.hash == hash && e.key_len == key.size() &&
          std::memcmp(e.key, key.data(), key.size()) == 0) {
        break;
      }
    }
  }
  Probe(len);
  const uint32_t idx = static_cast<uint32_t>(ctrl_[i] & 0xffffffffu) - 1;
  // Swap-remove from the dense array; repoint the moved entry's ctrl word.
  const uint32_t last = static_cast<uint32_t>(entries_.size()) - 1;
  if (idx != last) {
    entries_[idx] = entries_[last];
    const size_t moved = FindCtrlSlot(entries_[idx].hash, last);
    ctrl_[moved] = (ctrl_[moved] & ~uint64_t{0xffffffffu}) | (idx + 1);
  }
  entries_.pop_back();
  // Backward-shift deletion keeps probe chains intact without tombstones.
  size_t hole = i;
  for (size_t j = (i + 1) & ctrl_mask_;; j = (j + 1) & ctrl_mask_) {
    const uint64_t c = ctrl_[j];
    if (c == 0) break;
    const uint32_t jidx = static_cast<uint32_t>(c & 0xffffffffu) - 1;
    const size_t home = entries_[jidx].hash & ctrl_mask_;
    // Shift c into the hole only if its probe chain from `home` passes
    // through the hole; otherwise c would become unreachable.
    const size_t dist_home = (j - home) & ctrl_mask_;
    const size_t dist_hole = (j - hole) & ctrl_mask_;
    if (dist_home >= dist_hole) {
      ctrl_[hole] = c;
      hole = j;
    }
  }
  ctrl_[hole] = 0;
  return true;
}

size_t FlatTable::FindCtrlSlot(uint64_t hash, uint32_t idx) const {
  for (size_t i = hash & ctrl_mask_;; i = (i + 1) & ctrl_mask_) {
    const uint64_t c = ctrl_[i];
    assert(c != 0);
    if ((c & 0xffffffffu) == idx + 1) return i;
  }
}

void FlatTable::Grow() {
  const size_t cap = ctrl_.empty() ? kMinCapacity : ctrl_.size() * 2;
  Rebuild(cap);
}

void FlatTable::Rebuild(size_t cap) {
  if (!ctrl_.empty()) ++stats_.rehashes;
  ctrl_.assign(cap, 0);
  ctrl_mask_ = cap - 1;
  for (uint32_t idx = 0; idx < entries_.size(); ++idx) {
    const uint64_t hash = entries_[idx].hash;
    size_t i = hash & ctrl_mask_;
    while (ctrl_[i] != 0) i = (i + 1) & ctrl_mask_;
    ctrl_[i] = (TagOf(hash) << 32) | (idx + 1);
  }
}

}  // namespace onepass
