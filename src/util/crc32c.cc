#include "src/util/crc32c.h"

#include <array>
#include <cstddef>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define ONEPASS_CRC32C_X86 1
#include <nmmintrin.h>
#elif defined(__aarch64__)
#define ONEPASS_CRC32C_ARM 1
#include <arm_acle.h>
#endif

namespace onepass {
namespace {

// Reflected Castagnoli polynomial.
constexpr uint32_t kPoly = 0x82f63b78u;

struct Tables {
  // table[k][b]: CRC contribution of byte b seen k bytes before the end
  // of an 8-byte group (slicing-by-8).
  std::array<std::array<uint32_t, 256>, 8> t{};

  constexpr Tables() {
    for (uint32_t b = 0; b < 256; ++b) {
      uint32_t crc = b;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][b] = crc;
    }
    for (int k = 1; k < 8; ++k) {
      for (uint32_t b = 0; b < 256; ++b) {
        t[k][b] = (t[k - 1][b] >> 8) ^ t[0][t[k - 1][b] & 0xff];
      }
    }
  }
};

constexpr Tables kTables;

inline uint32_t Step(uint32_t crc, uint8_t byte) {
  return (crc >> 8) ^ kTables.t[0][(crc ^ byte) & 0xff];
}

#if defined(ONEPASS_CRC32C_X86)

// Compiled with SSE4.2 enabled regardless of the baseline -march; only
// reached after the runtime CPUID check in Crc32cHardwareAvailable().
__attribute__((target("sse4.2"))) uint32_t Crc32cExtendHwImpl(
    uint32_t crc, const uint8_t* p, size_t n) {
  crc = ~crc;
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --n;
  }
  uint64_t c = crc;
  while (n >= 8) {
    uint64_t w;
    std::memcpy(&w, p, 8);
    c = _mm_crc32_u64(c, w);
    p += 8;
    n -= 8;
  }
  crc = static_cast<uint32_t>(c);
  while (n > 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --n;
  }
  return ~crc;
}

#elif defined(ONEPASS_CRC32C_ARM)

__attribute__((target("+crc"))) uint32_t Crc32cExtendHwImpl(uint32_t crc,
                                                            const uint8_t* p,
                                                            size_t n) {
  crc = ~crc;
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = __crc32cb(crc, *p++);
    --n;
  }
  while (n >= 8) {
    uint64_t w;
    std::memcpy(&w, p, 8);
    crc = __crc32cd(crc, w);
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = __crc32cb(crc, *p++);
    --n;
  }
  return ~crc;
}

#endif

}  // namespace

uint32_t Crc32cExtendScalar(uint32_t crc, std::string_view data) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data.data());
  size_t n = data.size();
  crc = ~crc;
  while (n >= 8) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = kTables.t[7][crc & 0xff] ^ kTables.t[6][(crc >> 8) & 0xff] ^
          kTables.t[5][(crc >> 16) & 0xff] ^ kTables.t[4][crc >> 24] ^
          kTables.t[3][p[4]] ^ kTables.t[2][p[5]] ^ kTables.t[1][p[6]] ^
          kTables.t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = Step(crc, *p);
    ++p;
    --n;
  }
  return ~crc;
}

bool Crc32cHardwareAvailable() {
#if defined(ONEPASS_CRC32C_X86)
  return SimdTierSupported(SimdTier::kSse42);
#elif defined(ONEPASS_CRC32C_ARM)
  return SimdTierSupported(SimdTier::kArmCrc);
#else
  return false;
#endif
}

uint32_t Crc32cExtendHardware(uint32_t crc, std::string_view data) {
#if defined(ONEPASS_CRC32C_X86) || defined(ONEPASS_CRC32C_ARM)
  if (Crc32cHardwareAvailable()) {
    return Crc32cExtendHwImpl(
        crc, reinterpret_cast<const uint8_t*>(data.data()), data.size());
  }
#endif
  return Crc32cExtendScalar(crc, data);
}

uint32_t Crc32cExtend(uint32_t crc, std::string_view data) {
  return TierHasHardwareCrc(CurrentSimdTier())
             ? Crc32cExtendHardware(crc, data)
             : Crc32cExtendScalar(crc, data);
}

}  // namespace onepass
