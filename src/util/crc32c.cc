#include "src/util/crc32c.h"

#include <array>
#include <cstddef>

namespace onepass {
namespace {

// Reflected Castagnoli polynomial.
constexpr uint32_t kPoly = 0x82f63b78u;

struct Tables {
  // table[k][b]: CRC contribution of byte b seen k bytes before the end
  // of an 8-byte group (slicing-by-8).
  std::array<std::array<uint32_t, 256>, 8> t{};

  constexpr Tables() {
    for (uint32_t b = 0; b < 256; ++b) {
      uint32_t crc = b;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][b] = crc;
    }
    for (int k = 1; k < 8; ++k) {
      for (uint32_t b = 0; b < 256; ++b) {
        t[k][b] = (t[k - 1][b] >> 8) ^ t[0][t[k - 1][b] & 0xff];
      }
    }
  }
};

constexpr Tables kTables;

inline uint32_t Step(uint32_t crc, uint8_t byte) {
  return (crc >> 8) ^ kTables.t[0][(crc ^ byte) & 0xff];
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, std::string_view data) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data.data());
  size_t n = data.size();
  crc = ~crc;
  while (n >= 8) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = kTables.t[7][crc & 0xff] ^ kTables.t[6][(crc >> 8) & 0xff] ^
          kTables.t[5][(crc >> 16) & 0xff] ^ kTables.t[4][crc >> 24] ^
          kTables.t[3][p[4]] ^ kTables.t[2][p[5]] ^ kTables.t[1][p[6]] ^
          kTables.t[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = Step(crc, *p);
    ++p;
    --n;
  }
  return ~crc;
}

}  // namespace onepass
