#include "src/util/thread_pool.h"

#include <utility>

namespace onepass {

ThreadPool::ThreadPool(int num_threads) {
  const size_t n = num_threads < 1 ? 1 : static_cast<size_t>(num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i]() { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  const size_t w = next_queue_.fetch_add(1, std::memory_order_relaxed) %
                   workers_.size();
  {
    std::lock_guard<std::mutex> lock(workers_[w]->mu);
    workers_[w]->queue.push_back(std::move(task));
  }
  // pending_ is read under wake_mu_ by sleeping workers; bumping it before
  // the notify (also under wake_mu_) closes the lost-wakeup window.
  pending_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
  }
  wake_cv_.notify_one();
}

bool ThreadPool::RunOneTask(size_t self) {
  std::function<void()> task;
  {
    Worker& own = *workers_[self];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.queue.empty()) {
      task = std::move(own.queue.front());
      own.queue.pop_front();
    }
  }
  if (!task) {
    // Steal from the back of a sibling's queue, scanning in a fixed order
    // from our right-hand neighbour.
    for (size_t k = 1; k < workers_.size() && !task; ++k) {
      Worker& victim = *workers_[(self + k) % workers_.size()];
      std::lock_guard<std::mutex> lock(victim.mu);
      if (!victim.queue.empty()) {
        task = std::move(victim.queue.back());
        victim.queue.pop_back();
      }
    }
  }
  if (!task) return false;
  pending_.fetch_sub(1, std::memory_order_relaxed);
  task();
  return true;
}

void ThreadPool::WorkerLoop(size_t self) {
  for (;;) {
    if (RunOneTask(self)) continue;
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait(lock, [this]() {
      return stop_ || pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_ && pending_.load(std::memory_order_acquire) == 0) return;
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (workers_.size() == 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  struct Join {
    std::mutex mu;
    std::condition_variable cv;
    size_t done = 0;
  };
  auto join = std::make_shared<Join>();
  for (size_t i = 0; i < n; ++i) {
    Submit([join, &body, i, n]() {
      body(i);
      std::lock_guard<std::mutex> lock(join->mu);
      if (++join->done == n) join->cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(join->mu);
  join->cv.wait(lock, [&join, n]() { return join->done == n; });
}

int ThreadPool::ResolveThreads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace onepass
