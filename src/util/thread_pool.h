// A small work-stealing thread pool for the data plane.
//
// Each worker owns a deque: submitted tasks are distributed round-robin,
// a worker pops its own queue from the front and, when empty, steals from
// the back of its siblings' queues (classic work stealing — long and short
// tasks mix freely without a single contended queue).
//
// The pool executes *data-plane* tasks only (map tasks, reduce-engine
// runs). Determinism is the callers' contract, not the pool's: every task
// must write exclusively to state keyed by its own task id, and callers
// must merge per-task results in task-id order after ParallelFor returns.
// The simulated time plane never runs here — it stays single-threaded and
// authoritative (DESIGN.md §5.3).

#ifndef ONEPASS_UTIL_THREAD_POOL_H_
#define ONEPASS_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace onepass {

class ThreadPool {
 public:
  // Starts `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  // Runs every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  // Enqueues one task. Thread-safe.
  void Submit(std::function<void()> task);

  // Runs body(i) for every i in [0, n), concurrently and in no particular
  // order, and blocks until all n iterations have finished. `body` must be
  // safe to invoke concurrently for distinct i.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  // Resolves a thread-count knob: <= 0 means "one per hardware thread".
  static int ResolveThreads(int requested);

 private:
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> queue;
  };

  // Pops one task (own queue first, then steals) and runs it. False when
  // every queue is empty.
  bool RunOneTask(size_t self);
  void WorkerLoop(size_t self);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<size_t> pending_{0};
  std::atomic<size_t> next_queue_{0};
  bool stop_ = false;  // guarded by wake_mu_
};

}  // namespace onepass

#endif  // ONEPASS_UTIL_THREAD_POOL_H_
