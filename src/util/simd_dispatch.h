// Runtime SIMD tier selection for the batch data plane (DESIGN.md §5.8).
//
// The vectorized inner loops — CRC32C framing, batch hash mixing — each
// carry a portable scalar implementation plus optional hardware paths
// (SSE4.2 / AVX2 on x86-64, the CRC32 extension on ARMv8). The tier is
// detected once at startup from CPUID/hwcaps and consulted by every
// dispatch site; tests and benches pin it with SetSimdTier to cross-check
// the planes against each other. All tiers produce bit-identical results —
// the tier is purely a speed knob, never a semantics knob — which the
// crc32c_dispatch and batch_hash tests enforce.

#ifndef ONEPASS_UTIL_SIMD_DISPATCH_H_
#define ONEPASS_UTIL_SIMD_DISPATCH_H_

#include <cstdint>
#include <string_view>

namespace onepass {

// Ordered by capability; a CPU supporting tier T supports every lower
// x86 tier too (kAvx2 implies kSse42). kArmCrc is the aarch64 branch.
enum class SimdTier : uint8_t {
  kScalar = 0,  // portable C++ (slicing-by-8 CRC, scalar Mix64)
  kSse42 = 1,   // x86 CRC32 instruction
  kAvx2 = 2,    // x86 CRC32 (vector hash mixing emulates 64-bit multiply
                // from 32x32 products, which measures no faster than
                // scalar imul — so this tier mixes scalar)
  kAvx512 = 3,  // x86 CRC32 + 8-lane 64-bit hash mixing (vpmullq, DQ+VL)
  kArmCrc = 4,  // ARMv8 CRC32 extension
};

std::string_view SimdTierName(SimdTier tier);

// True if this build/CPU can execute `tier`'s code paths.
bool SimdTierSupported(SimdTier tier);

// Best tier the current CPU supports (kScalar if nothing better).
SimdTier DetectSimdTier();

// The process-wide active tier: DetectSimdTier() unless overridden.
SimdTier CurrentSimdTier();

// Pins the active tier (clamped to a supported one; returns what was
// actually installed). Used by tests and benches to force the scalar
// fallback or a specific hardware path.
SimdTier SetSimdTier(SimdTier tier);

// Whether `tier` carries a hardware CRC32C instruction.
inline bool TierHasHardwareCrc(SimdTier tier) {
  return tier == SimdTier::kSse42 || tier == SimdTier::kAvx2 ||
         tier == SimdTier::kAvx512 || tier == SimdTier::kArmCrc;
}

// Whether `tier` carries a vectorized 64-bit hash-mix kernel that beats
// scalar. AVX2 deliberately does not qualify: without AVX-512DQ's vpmullq
// the three 64-bit multiplies per Mix64 must be emulated from 32x32
// partial products (~8 uops per multiplied lane-quad vs 4 scalar imuls),
// which measured slower than the scalar chain on every stream of
// bench_micro_hash_table. The AVX2 kernel is still built and tested for
// bit-identity (batch_hash_test), just never auto-selected.
inline bool TierHasVectorHashMix(SimdTier tier) {
  return tier == SimdTier::kAvx512;
}

}  // namespace onepass

#endif  // ONEPASS_UTIL_SIMD_DISPATCH_H_
