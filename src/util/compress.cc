#include "src/util/compress.h"

#include <cstdint>
#include <cstring>
#include <vector>

namespace onepass {

namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 65535;
constexpr int kHashBits = 15;
constexpr size_t kHashSize = 1u << kHashBits;
// Positions examined per match attempt; bounds worst-case compress time on
// degenerate inputs without measurably hurting the ratio on block-sized
// chunks.
constexpr int kMaxChainDepth = 32;
constexpr size_t kMaxInput = 1u << 30;

inline uint32_t Load32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint32_t Hash4(const char* p) {
  return (Load32(p) * 2654435761u) >> (32 - kHashBits);
}

// Length of the common prefix of [a, limit) and [b, limit), where a < b.
inline size_t MatchLength(const char* a, const char* b, const char* limit) {
  const char* start = b;
  while (b < limit && *a == *b) {
    ++a;
    ++b;
  }
  return static_cast<size_t>(b - start);
}

// Emits one sequence: `lits` literal bytes followed (unless this is the
// stream-final literals-only sequence, match_len == 0) by a match of
// `match_len` bytes at `offset` back.
void EmitSequence(std::string_view lits, size_t match_len, size_t offset,
                  std::string* out) {
  const size_t lit_len = lits.size();
  const uint8_t lit_code =
      lit_len >= 15 ? 15 : static_cast<uint8_t>(lit_len);
  uint8_t match_code = 0;
  if (match_len > 0) {
    const size_t m = match_len - kMinMatch;
    match_code = m >= 15 ? 15 : static_cast<uint8_t>(m);
  }
  out->push_back(static_cast<char>((lit_code << 4) | match_code));
  if (lit_code == 15) {
    size_t rem = lit_len - 15;
    while (rem >= 255) {
      out->push_back(static_cast<char>(255));
      rem -= 255;
    }
    out->push_back(static_cast<char>(rem));
  }
  out->append(lits.data(), lits.size());
  if (match_len == 0) return;
  out->push_back(static_cast<char>(offset & 0xff));
  out->push_back(static_cast<char>((offset >> 8) & 0xff));
  if (match_code == 15) {
    size_t rem = match_len - kMinMatch - 15;
    while (rem >= 255) {
      out->push_back(static_cast<char>(255));
      rem -= 255;
    }
    out->push_back(static_cast<char>(rem));
  }
}

}  // namespace

size_t LzMaxCompressedSize(size_t raw_size) {
  // All-literals: one token + length run (~1 byte per 255 literals) + data.
  return raw_size + raw_size / 255 + 16;
}

size_t LzCompress(std::string_view input, std::string* out) {
  if (input.size() > kMaxInput) return 0;
  const size_t before = out->size();
  const size_t n = input.size();
  if (n < kMinMatch + 1) {
    EmitSequence(input, 0, 0, out);
    return out->size() - before;
  }

  // Hash chains: head[h] is the most recent position with hash h, prev[i]
  // the previous position sharing position i's hash.
  std::vector<int32_t> head(kHashSize, -1);
  std::vector<int32_t> prev(n, -1);
  const char* base = input.data();
  const char* limit = base + n;
  // The last position where a 4-byte load is in range.
  const size_t match_end = n - kMinMatch;

  size_t i = 0;
  size_t lit_start = 0;
  while (i <= match_end) {
    const uint32_t h = Hash4(base + i);
    size_t best_len = 0;
    size_t best_offset = 0;
    int32_t cand = head[h];
    int depth = 0;
    while (cand >= 0 && depth < kMaxChainDepth) {
      const size_t offset = i - static_cast<size_t>(cand);
      if (offset > kMaxOffset) break;  // chain is position-ordered
      const size_t len = MatchLength(base + cand, base + i, limit);
      if (len >= kMinMatch && len > best_len) {
        best_len = len;
        best_offset = offset;
      }
      cand = prev[cand];
      ++depth;
    }
    if (best_len == 0) {
      prev[i] = head[h];
      head[h] = static_cast<int32_t>(i);
      ++i;
      continue;
    }
    EmitSequence(input.substr(lit_start, i - lit_start), best_len,
                 best_offset, out);
    // Index the matched region so later data can reference into it.
    const size_t insert_end =
        i + best_len <= match_end ? i + best_len : match_end + 1;
    for (size_t j = i; j < insert_end; ++j) {
      const uint32_t hj = Hash4(base + j);
      prev[j] = head[hj];
      head[hj] = static_cast<int32_t>(j);
    }
    i += best_len;
    lit_start = i;
  }
  EmitSequence(input.substr(lit_start), 0, 0, out);
  return out->size() - before;
}

namespace {

// Reads an extended-length 255-run, adding it to *len. Fails on truncation
// or if *len would exceed `cap` (guards size overflow on hostile input).
bool ReadLengthRun(const uint8_t** p, const uint8_t* end, size_t cap,
                   size_t* len) {
  while (true) {
    if (*p == end) return false;
    const uint8_t b = **p;
    ++*p;
    *len += b;
    if (*len > cap) return false;
    if (b != 255) return true;
  }
}

}  // namespace

bool LzDecompress(std::string_view input, size_t raw_size,
                  std::string* out) {
  const size_t base_size = out->size();
  const uint8_t* p = reinterpret_cast<const uint8_t*>(input.data());
  const uint8_t* end = p + input.size();
  size_t produced = 0;
  bool ok = true;
  while (true) {
    if (p == end) break;  // valid only if produced == raw_size (checked below)
    const uint8_t token = *p++;
    size_t lit_len = token >> 4;
    if (lit_len == 15 &&
        !ReadLengthRun(&p, end, raw_size - produced, &lit_len)) {
      ok = false;
      break;
    }
    if (lit_len > static_cast<size_t>(end - p) ||
        produced + lit_len > raw_size) {
      ok = false;
      break;
    }
    out->append(reinterpret_cast<const char*>(p), lit_len);
    p += lit_len;
    produced += lit_len;
    if (p == end) break;  // stream-final literals-only sequence
    if (end - p < 2) {
      ok = false;
      break;
    }
    const size_t offset =
        static_cast<size_t>(p[0]) | (static_cast<size_t>(p[1]) << 8);
    p += 2;
    size_t match_len = (token & 0xf) + kMinMatch;
    if ((token & 0xf) == 15 &&
        !ReadLengthRun(&p, end, raw_size, &match_len)) {
      ok = false;
      break;
    }
    if (offset == 0 || offset > produced ||
        produced + match_len > raw_size) {
      ok = false;
      break;
    }
    // Byte-wise copy: overlapping matches (offset < match_len) replicate
    // the repeated pattern, as in every LZ77 family codec.
    size_t src = out->size() - offset;
    for (size_t j = 0; j < match_len; ++j) {
      out->push_back((*out)[src + j]);
    }
    produced += match_len;
  }
  if (!ok || produced != raw_size) {
    out->resize(base_size);
    return false;
  }
  return true;
}

}  // namespace onepass
