#include "src/util/random.h"

#include <cmath>

#include "src/common/logging.h"

namespace onepass {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

void Xoshiro256StarStar::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64Next(&sm);
}

uint64_t Xoshiro256StarStar::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Xoshiro256StarStar::NextBounded(uint64_t bound) {
  CHECK_GT(bound, 0u);
  // Lemire's method with rejection for exact uniformity.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Xoshiro256StarStar::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double s) : n_(n), s_(s) {
  CHECK_GE(n, 1u);
  CHECK_GE(s, 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  threshold_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -s));
}

double ZipfGenerator::H(double x) const {
  if (s_ == 1.0) return std::log(x);
  return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double ZipfGenerator::HInverse(double x) const {
  if (s_ == 1.0) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
}

uint64_t ZipfGenerator::Next(Xoshiro256StarStar* rng) {
  if (n_ == 1) return 0;
  if (s_ == 0.0) return rng->NextBounded(n_);
  // Rejection-inversion (Hörmann & Derflinger 1996).
  while (true) {
    const double u = h_n_ + rng->NextDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double kd = static_cast<double>(k);
    if (kd - x <= threshold_ ||
        u >= H(kd + 0.5) - std::pow(kd, -s_)) {
      return k - 1;  // shift to [0, n)
    }
  }
}

}  // namespace onepass
