#include "src/util/simd_dispatch.h"

#include <atomic>

#if defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_CRC32
#define HWCAP_CRC32 (1 << 7)
#endif
#endif

namespace onepass {
namespace {

bool CpuHasSse42() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("sse4.2");
#else
  return false;
#endif
}

bool CpuHasAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("sse4.2");
#else
  return false;
#endif
}

bool CpuHasAvx512() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512dq") &&
         __builtin_cpu_supports("avx512vl") && CpuHasAvx2();
#else
  return false;
#endif
}

bool CpuHasArmCrc() {
#if defined(__aarch64__) && defined(__linux__)
  return (getauxval(AT_HWCAP) & HWCAP_CRC32) != 0;
#elif defined(__aarch64__) && defined(__ARM_FEATURE_CRC32)
  return true;  // baked into the target at compile time
#else
  return false;
#endif
}

// 1 + tier so that 0 can mean "not yet initialized".
std::atomic<uint8_t> g_active_tier{0};

}  // namespace

std::string_view SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kSse42:
      return "sse4.2";
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kAvx512:
      return "avx512";
    case SimdTier::kArmCrc:
      return "armv8-crc";
  }
  return "unknown";
}

bool SimdTierSupported(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return true;
    case SimdTier::kSse42:
      return CpuHasSse42();
    case SimdTier::kAvx2:
      return CpuHasAvx2();
    case SimdTier::kAvx512:
      return CpuHasAvx512();
    case SimdTier::kArmCrc:
      return CpuHasArmCrc();
  }
  return false;
}

SimdTier DetectSimdTier() {
  if (CpuHasAvx512()) return SimdTier::kAvx512;
  if (CpuHasAvx2()) return SimdTier::kAvx2;
  if (CpuHasSse42()) return SimdTier::kSse42;
  if (CpuHasArmCrc()) return SimdTier::kArmCrc;
  return SimdTier::kScalar;
}

SimdTier CurrentSimdTier() {
  uint8_t enc = g_active_tier.load(std::memory_order_relaxed);
  if (enc == 0) {
    const SimdTier detected = DetectSimdTier();
    enc = static_cast<uint8_t>(detected) + 1;
    uint8_t expected = 0;
    if (!g_active_tier.compare_exchange_strong(expected, enc,
                                               std::memory_order_relaxed)) {
      enc = expected;  // another thread (or an override) won the race
    }
  }
  return static_cast<SimdTier>(enc - 1);
}

SimdTier SetSimdTier(SimdTier tier) {
  if (!SimdTierSupported(tier)) tier = DetectSimdTier();
  g_active_tier.store(static_cast<uint8_t>(tier) + 1,
                      std::memory_order_relaxed);
  return tier;
}

}  // namespace onepass
