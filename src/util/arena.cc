#include "src/util/arena.h"

#include <algorithm>

namespace onepass {

char* Arena::Allocate(size_t n) {
  if (n == 0) n = 1;
  if (n > remaining_) {
    const size_t block = std::max(n, block_size_);
    blocks_.push_back(std::make_unique<char[]>(block));
    block_sizes_.push_back(block);
    cur_ = blocks_.back().get();
    remaining_ = block;
    bytes_reserved_ += block;
  }
  char* result = cur_;
  cur_ += n;
  remaining_ -= n;
  bytes_allocated_ += n;
  return result;
}

void Arena::Reset() {
  if (blocks_.size() > 1) {
    blocks_.resize(1);
    block_sizes_.resize(1);
  }
  if (blocks_.empty()) {
    cur_ = nullptr;
    remaining_ = 0;
    bytes_reserved_ = 0;
  } else {
    cur_ = blocks_[0].get();
    remaining_ = block_sizes_[0];
    bytes_reserved_ = block_sizes_[0];
  }
  bytes_allocated_ = 0;
}

}  // namespace onepass
