// Byte-level encoding helpers (varint32/64, fixed32/64), RocksDB-style.
//
// Used by KvBuffer and spill-file framing so that intermediate data sizes
// are honest byte counts rather than object counts.

#ifndef ONEPASS_UTIL_CODING_H_
#define ONEPASS_UTIL_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace onepass {

inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  dst->append(buf, 4);
}

inline void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  dst->append(buf, 8);
}

inline uint32_t DecodeFixed32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint64_t DecodeFixed64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

// Appends v as a LEB128 varint (1-5 bytes for 32-bit).
void PutVarint32(std::string* dst, uint32_t v);
void PutVarint64(std::string* dst, uint64_t v);

// Parses a varint from [p, limit). Returns the byte after the varint, or
// nullptr on truncation/overflow.
const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* value);
const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* value);

// Parses a varint from the front of *input, advancing it. Returns false on
// malformed input.
bool GetVarint32(std::string_view* input, uint32_t* value);
bool GetVarint64(std::string_view* input, uint64_t* value);

// Number of bytes PutVarint32/64 would write.
int VarintLength(uint64_t v);

// Appends a length-prefixed string.
void PutLengthPrefixed(std::string* dst, std::string_view value);

// Parses a length-prefixed string from the front of *input.
bool GetLengthPrefixed(std::string_view* input, std::string_view* result);

}  // namespace onepass

#endif  // ONEPASS_UTIL_CODING_H_
