// Arena: block-based bump allocator.
//
// The paper's prototype (§5) avoids per-record JVM object churn by packing
// key data structures into byte arrays with its own memory managers. Arena
// is the C++ analogue: key/state bytes owned by hash tables and buffers are
// bump-allocated here, so engines track memory in bytes, not objects.

#ifndef ONEPASS_UTIL_ARENA_H_
#define ONEPASS_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

namespace onepass {

class Arena {
 public:
  static constexpr size_t kDefaultBlockSize = 64 * 1024;

  explicit Arena(size_t block_size = kDefaultBlockSize)
      : block_size_(block_size) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Allocates `n` bytes (unaligned is fine for byte strings).
  char* Allocate(size_t n);

  // Copies `data` into the arena and returns a view of the stable copy.
  std::string_view Copy(std::string_view data) {
    char* p = Allocate(data.size());
    std::memcpy(p, data.data(), data.size());
    return {p, data.size()};
  }

  // Total bytes handed out by Allocate since construction or Reset.
  size_t bytes_allocated() const { return bytes_allocated_; }

  // Total bytes currently reserved from the system (>= bytes_allocated).
  size_t bytes_reserved() const { return bytes_reserved_; }

  // Bytes this arena holds from the allocator's point of view, including
  // the block index. Used for memory accounting/metrics; approximate in
  // that per-block malloc headers are not counted.
  size_t ApproxMemoryUsage() const {
    return bytes_reserved_ + blocks_.capacity() * sizeof(blocks_[0]) +
           block_sizes_.capacity() * sizeof(size_t);
  }

  // Rewinds the arena, invalidating every pointer previously returned.
  // The first block is recycled rather than freed, so callers that build
  // and tear down tables repeatedly (e.g. one per disk-bucket pass) reuse
  // one warm block instead of round-tripping the heap each pass.
  void Reset();

 private:
  size_t block_size_;
  std::vector<std::unique_ptr<char[]>> blocks_;
  std::vector<size_t> block_sizes_;  // parallel to blocks_
  char* cur_ = nullptr;
  size_t remaining_ = 0;
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
};

}  // namespace onepass

#endif  // ONEPASS_UTIL_ARENA_H_
