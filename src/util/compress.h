// A dependency-free LZ-style block codec (DESIGN.md §5.5).
//
// Greedy hash-chain matcher over a 64 KB window emitting byte-aligned
// tokens, LZ4-flavoured: each sequence is a token byte (high nibble =
// literal length, low nibble = match length - kMinMatch, 15 = extended by
// 255-run continuation bytes), the literal bytes, and — unless the stream
// ends after the literals — a 2-byte little-endian match offset. The
// decoder stops when the input is exhausted, so the final sequence is
// literals-only.
//
// This is a *block* codec: callers compress bounded chunks (the ~32-64 KB
// blocks cut by BlockBuilder), pass the raw size out of band, and fall back
// to a stored copy when compression does not pay (incompressible-block
// passthrough lives in block_format.cc, not here). Decompression is fully
// bounds-checked: malformed or truncated input returns false, never reads
// or writes out of range.

#ifndef ONEPASS_UTIL_COMPRESS_H_
#define ONEPASS_UTIL_COMPRESS_H_

#include <cstddef>
#include <string>
#include <string_view>

namespace onepass {

// Upper bound on the compressed size of `raw_size` input bytes (worst case
// is all-literals plus token/run overhead).
size_t LzMaxCompressedSize(size_t raw_size);

// Appends the compressed image of `input` to *out and returns the number
// of bytes appended. Inputs larger than ~1 GB are rejected (returns 0 and
// appends nothing); block callers never get near that.
size_t LzCompress(std::string_view input, std::string* out);

// Appends exactly `raw_size` decompressed bytes to *out. Returns false —
// leaving *out restored to its original size — if `input` is malformed,
// truncated, or does not decode to exactly `raw_size` bytes.
bool LzDecompress(std::string_view input, size_t raw_size, std::string* out);

}  // namespace onepass

#endif  // ONEPASS_UTIL_COMPRESS_H_
