// CRC32C (Castagnoli, polynomial 0x1EDC6F41) over byte strings.
//
// This is the checksum the integrity layer (DESIGN.md §5.2) stamps on
// every framed block of simulated persistent or network data. Software
// slicing-by-8 implementation; no hardware dependencies.

#ifndef ONEPASS_UTIL_CRC32C_H_
#define ONEPASS_UTIL_CRC32C_H_

#include <cstdint>
#include <string_view>

namespace onepass {

// CRC of `data` continuing from `crc` (the CRC of bytes already seen).
uint32_t Crc32cExtend(uint32_t crc, std::string_view data);

inline uint32_t Crc32c(std::string_view data) {
  return Crc32cExtend(0, data);
}

// Stored CRCs are masked (rotate + offset, as in LevelDB) so that a
// stream whose payload itself contains framed data does not trivially
// self-validate after a shifted read.
constexpr uint32_t kCrcMaskDelta = 0xa282ead8u;

inline uint32_t MaskCrc(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kCrcMaskDelta;
}

inline uint32_t UnmaskCrc(uint32_t masked) {
  const uint32_t rot = masked - kCrcMaskDelta;
  return (rot >> 17) | (rot << 15);
}

}  // namespace onepass

#endif  // ONEPASS_UTIL_CRC32C_H_
