// CRC32C (Castagnoli, polynomial 0x1EDC6F41) over byte strings.
//
// This is the checksum the integrity layer (DESIGN.md §5.2) stamps on
// every framed block of simulated persistent or network data. Two
// implementations compute the same function: a portable software
// slicing-by-8 path and a hardware path using the SSE4.2 / ARMv8 CRC32C
// instruction, selected at runtime through the SIMD tier (DESIGN.md
// §5.8). CRC32C is a fixed mathematical function, so the paths are
// bit-identical by construction; the crc32c_dispatch test cross-checks
// them anyway on fuzzed buffers, lengths, and alignments.

#ifndef ONEPASS_UTIL_CRC32C_H_
#define ONEPASS_UTIL_CRC32C_H_

#include <cstdint>
#include <string_view>

#include "src/util/simd_dispatch.h"

namespace onepass {

// CRC of `data` continuing from `crc` (the CRC of bytes already seen).
// Dispatches on CurrentSimdTier(); override with SetSimdTier to pin a path.
uint32_t Crc32cExtend(uint32_t crc, std::string_view data);

// The portable slicing-by-8 implementation (always available).
uint32_t Crc32cExtendScalar(uint32_t crc, std::string_view data);

// The hardware-instruction implementation. Only callable when
// Crc32cHardwareAvailable(); falls back to the scalar path otherwise.
uint32_t Crc32cExtendHardware(uint32_t crc, std::string_view data);

// Whether this build/CPU has a hardware CRC32C path at all.
bool Crc32cHardwareAvailable();

// Explicit-tier variant for callers that resolved a tier once up front
// (the batch data plane resolves JobConfig::simd per task).
inline uint32_t Crc32cExtendWithTier(SimdTier tier, uint32_t crc,
                                     std::string_view data) {
  return TierHasHardwareCrc(tier) ? Crc32cExtendHardware(crc, data)
                                  : Crc32cExtendScalar(crc, data);
}

inline uint32_t Crc32c(std::string_view data) {
  return Crc32cExtend(0, data);
}

// Stored CRCs are masked (rotate + offset, as in LevelDB) so that a
// stream whose payload itself contains framed data does not trivially
// self-validate after a shifted read.
constexpr uint32_t kCrcMaskDelta = 0xa282ead8u;

inline uint32_t MaskCrc(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kCrcMaskDelta;
}

inline uint32_t UnmaskCrc(uint32_t masked) {
  const uint32_t rot = masked - kCrcMaskDelta;
  return (rot >> 17) | (rot << 15);
}

}  // namespace onepass

#endif  // ONEPASS_UTIL_CRC32C_H_
