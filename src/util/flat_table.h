// FlatTable: open-addressing hash table for the hot group-by paths.
//
// The paper's prototype (§5) gets its hash-aggregation win by packing keys
// and states into byte arrays managed by the application, not the runtime —
// one touch per tuple, no per-entry heap node, no pointer chase per probe.
// FlatTable is that layout:
//
//   ctrl_   : flat power-of-two array of 64-bit control words. A word is
//             0 (empty) or (tag << 32) | (entry_index + 1), where tag is
//             the high 32 bits of the key's hash. Linear probing scans this
//             one cache-friendly array; the tag rejects almost all
//             mismatched slots without touching entry storage.
//   entries_: dense vector in INSERTION ORDER. Each entry caches the full
//             64-bit hash, a {pointer, len} view of its key (bytes in the
//             arena), and the value either inline (<= kInlineValueBytes)
//             or as an arena-backed {pointer, len, cap}.
//   arena_  : bump allocator owning all key/value bytes. Clear() recycles
//             its first block, so per-bucket rebuild loops reuse memory.
//
// Iteration (ForEach / entry index 0..size()) is insertion order, which is
// deterministic for a deterministic input sequence — unlike unordered_map,
// whose order depends on the standard library. Growth is deterministic:
// capacity doubles when size reaches 3/4 of capacity (erase is rare in our
// workloads — only DINC slot replacement — so tombstones are not needed:
// Erase swap-removes the dense entry and re-seats the displaced control
// word by backward-shift deletion).
//
// Callers pass precomputed 64-bit digests (UniversalHash values) so each
// tuple is hashed once per level; standalone users call DefaultHash.
//
// Not thread-safe; each engine/task owns its own table, matching the data
// plane's share-nothing design.

#ifndef ONEPASS_UTIL_FLAT_TABLE_H_
#define ONEPASS_UTIL_FLAT_TABLE_H_

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

#include "src/util/arena.h"
#include "src/util/hash.h"

namespace onepass {

class FlatTable {
 public:
  // Values at most this long are stored inside the entry itself; longer
  // values live in the arena. 24 bytes covers every fixed-size aggregate
  // state in the workloads (counts, sums, min/max pairs) without growing
  // the entry struct past one cache line.
  static constexpr size_t kInlineValueBytes = 24;

  // Entry indices are valid until the next call that mutates the table.
  static constexpr uint32_t kNoEntry = UINT32_MAX;

  struct Stats {
    uint64_t probes = 0;     // control-word slots inspected across all ops
    uint64_t rehashes = 0;   // table growths (capacity doublings)
    uint64_t max_probe = 0;  // longest single probe sequence seen
  };

  explicit FlatTable(size_t arena_block_bytes = Arena::kDefaultBlockSize)
      : arena_(arena_block_bytes) {}

  FlatTable(const FlatTable&) = delete;
  FlatTable& operator=(const FlatTable&) = delete;

  // Hash for callers without a precomputed digest (tests, sketches used
  // standalone). Any well-mixed 64-bit hash works; entries only ever meet
  // digests from the same function.
  static uint64_t DefaultHash(std::string_view key) {
    return HashBytes(key, 0x9e3779b97f4a7c15ULL);
  }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  // Hints the cache that `hash`'s probe is coming soon. The batch plane
  // (DESIGN.md §5.8) calls this kProbePrefetchDistance records ahead of the
  // matching Find/FindOrInsert so the control word's cache line is resident
  // by the time the probe runs. Touches nothing observable: no stats, no
  // table state — byte-identical schedules with or without the hint.
  void PrefetchProbe(uint64_t hash) const {
    if (ctrl_mask_ != 0) {
      __builtin_prefetch(ctrl_.data() + (hash & ctrl_mask_), /*rw=*/0,
                         /*locality=*/1);
    }
  }

  // Second pipeline stage: peeks the home control word — cheap once
  // PrefetchProbe's line has arrived — and warms the entry it points at,
  // the line the probe's tag-match will read. Only reads: no stats, no
  // table state, so schedules stay byte-identical (DESIGN.md §5.8).
  void PrefetchEntry(uint64_t hash) const {
    if (ctrl_mask_ == 0) return;
    const uint64_t c = ctrl_[hash & ctrl_mask_];
    if (c == 0) return;
    __builtin_prefetch(
        entries_.data() + (static_cast<uint32_t>(c & 0xffffffffu) - 1),
        /*rw=*/0, /*locality=*/1);
  }

  // Third pipeline stage: with ctrl word and entry both resident, warms
  // the entry's key bytes for the probe's memcmp. Read-only like the
  // stages before it.
  void PrefetchKey(uint64_t hash) const {
    if (ctrl_mask_ == 0) return;
    const uint64_t c = ctrl_[hash & ctrl_mask_];
    if (c == 0) return;
    const Entry& e = entries_[static_cast<uint32_t>(c & 0xffffffffu) - 1];
    __builtin_prefetch(e.key, /*rw=*/0, /*locality=*/1);
  }

  // Returns the entry index for `key` (with its precomputed digest), or
  // kNoEntry if absent.
  uint32_t Find(std::string_view key, uint64_t hash) const {
    if (ctrl_mask_ == 0) return kNoEntry;
    const uint64_t tag = TagOf(hash);
    size_t i = hash & ctrl_mask_;
    uint64_t len = 1;
    for (;; i = (i + 1) & ctrl_mask_, ++len) {
      const uint64_t c = ctrl_[i];
      if (c == 0) break;
      if ((c >> 32) == tag) {
        const uint32_t idx = static_cast<uint32_t>(c & 0xffffffffu) - 1;
        const Entry& e = entries_[idx];
        if (e.hash == hash && e.key_len == key.size() &&
            std::memcmp(e.key, key.data(), key.size()) == 0) {
          Probe(len);
          return idx;
        }
      }
    }
    Probe(len);
    return kNoEntry;
  }

  // Finds `key` or inserts it with an empty value. Sets *inserted
  // accordingly. The key bytes are copied into the arena on insert.
  uint32_t FindOrInsert(std::string_view key, uint64_t hash, bool* inserted) {
    if (ctrl_.empty() ||
        entries_.size() + 1 > ctrl_.size() - (ctrl_.size() >> 2)) {
      Grow();
    }
    const uint64_t tag = TagOf(hash);
    size_t i = hash & ctrl_mask_;
    uint64_t len = 1;
    for (;; i = (i + 1) & ctrl_mask_, ++len) {
      const uint64_t c = ctrl_[i];
      if (c == 0) break;
      if ((c >> 32) == tag) {
        const uint32_t idx = static_cast<uint32_t>(c & 0xffffffffu) - 1;
        const Entry& e = entries_[idx];
        if (e.hash == hash && e.key_len == key.size() &&
            std::memcmp(e.key, key.data(), key.size()) == 0) {
          Probe(len);
          *inserted = false;
          return idx;
        }
      }
    }
    Probe(len);
    const uint32_t idx = static_cast<uint32_t>(entries_.size());
    Entry e;
    e.hash = hash;
    e.key_len = static_cast<uint32_t>(key.size());
    char* kp = arena_.Allocate(key.size());
    std::memcpy(kp, key.data(), key.size());
    e.key = kp;
    e.value_len = 0;
    e.value_cap = kInlineValueBytes;
    entries_.push_back(e);
    ctrl_[i] = (tag << 32) | (idx + 1);
    *inserted = true;
    return idx;
  }

  // Removes `key` if present; returns true if it was. The dense entries
  // array stays gap-free: the last entry moves into the vacated index, so
  // one prior entry index (the returned-by-size()-1 one) is remapped.
  // Insertion-order iteration is therefore only stable in the absence of
  // erases — fine for the engines, which never erase (DINC's sketch
  // replaces slots, which is an erase+insert on its index, and its
  // iteration order is slot order, not table order).
  bool Erase(std::string_view key, uint64_t hash);

  std::string_view key_at(uint32_t idx) const {
    const Entry& e = entries_[idx];
    return {e.key, e.key_len};
  }

  uint64_t hash_at(uint32_t idx) const { return entries_[idx].hash; }

  std::string_view value_at(uint32_t idx) const {
    const Entry& e = entries_[idx];
    return {e.value_ptr(), e.value_len};
  }

  // Replaces the value at `idx`. Reuses inline/arena capacity when the new
  // value fits; otherwise takes a fresh arena chunk with doubling headroom
  // (old arena bytes are abandoned until Clear()).
  void set_value(uint32_t idx, std::string_view value) {
    Entry& e = entries_[idx];
    if (value.size() > e.value_cap) {
      size_t cap = e.value_cap == 0 ? kInlineValueBytes : e.value_cap;
      while (cap < value.size()) cap *= 2;
      e.value.ptr = arena_.Allocate(cap);
      e.value_cap = static_cast<uint32_t>(cap);
    }
    std::memcpy(e.value_ptr(), value.data(), value.size());
    e.value_len = static_cast<uint32_t>(value.size());
  }

  // POD accessors for fixed-width values (chain heads, slot ids). The type
  // must fit inline.
  template <typename T>
  void set_pod(uint32_t idx, const T& v) {
    static_assert(sizeof(T) <= kInlineValueBytes, "pod must fit inline");
    Entry& e = entries_[idx];
    assert(e.value_cap >= sizeof(T));
    std::memcpy(e.value_ptr(), &v, sizeof(T));
    e.value_len = sizeof(T);
  }

  template <typename T>
  T pod_at(uint32_t idx) const {
    static_assert(sizeof(T) <= kInlineValueBytes, "pod must fit inline");
    const Entry& e = entries_[idx];
    assert(e.value_len == sizeof(T));
    T v;
    std::memcpy(&v, e.value_ptr(), sizeof(T));
    return v;
  }

  // Pre-sizes the control array for `n` entries (rounded up so no growth
  // happens before n inserts).
  void Reserve(size_t n) {
    size_t cap = kMinCapacity;
    while (n + 1 > cap - (cap >> 2)) cap *= 2;
    if (cap > ctrl_.size()) Rebuild(cap);
    entries_.reserve(n);
  }

  // Empties the table. Control storage is kept; the arena recycles its
  // first block, so a Clear+refill loop stops allocating once warm.
  void Clear() {
    std::fill(ctrl_.begin(), ctrl_.end(), 0);
    entries_.clear();
    if (arena_.bytes_reserved() > peak_arena_bytes_) {
      peak_arena_bytes_ = arena_.bytes_reserved();
    }
    arena_.Reset();
  }

  // Visits entries in insertion order. F: void(uint32_t idx).
  template <typename F>
  void ForEach(F&& f) const {
    for (uint32_t i = 0; i < entries_.size(); ++i) f(i);
  }

  const Stats& stats() const { return stats_; }

  // Bytes currently owned: arena blocks + control array + entry array.
  size_t ApproxMemoryUsage() const {
    return arena_.ApproxMemoryUsage() + ctrl_.capacity() * sizeof(uint64_t) +
           entries_.capacity() * sizeof(Entry);
  }

  // Peak arena footprint over the table's lifetime (Clear shrinks the
  // arena back to one block, so the live value alone would under-report).
  size_t arena_bytes() const {
    return std::max(peak_arena_bytes_, arena_.bytes_reserved());
  }

  // Adds this table's counters into a JobMetrics-shaped object (templated
  // so util stays independent of src/mr). max_probe folds via max, the
  // rest accumulate — matching JobMetrics::Merge, so totals are identical
  // at every thread count.
  template <typename Metrics>
  void FlushStatsTo(Metrics* m) const {
    m->hash_table_probes += stats_.probes;
    m->hash_table_rehashes += stats_.rehashes;
    if (stats_.max_probe > m->hash_table_max_probe) {
      m->hash_table_max_probe = stats_.max_probe;
    }
    m->hash_arena_bytes += arena_bytes();
  }

 private:
  static constexpr size_t kMinCapacity = 16;

  struct Entry {
    uint64_t hash;
    const char* key;
    uint32_t key_len;
    uint32_t value_len;
    uint32_t value_cap;  // kInlineValueBytes => inline storage in use
    union {
      char inline_bytes[kInlineValueBytes];
      char* ptr;
    } value;

    char* value_ptr() {
      return value_cap <= kInlineValueBytes ? value.inline_bytes : value.ptr;
    }
    const char* value_ptr() const {
      return value_cap <= kInlineValueBytes ? value.inline_bytes : value.ptr;
    }
  };

  static uint64_t TagOf(uint64_t hash) {
    // High 32 bits; ensure nonzero control words even for tag 0 by the
    // +1 entry-index encoding (index field is never 0 for live slots).
    return hash >> 32;
  }

  void Probe(uint64_t len) const {
    stats_.probes += len;
    if (len > stats_.max_probe) stats_.max_probe = len;
  }

  // Finds the control slot currently holding entry index `idx` for `hash`.
  size_t FindCtrlSlot(uint64_t hash, uint32_t idx) const;

  void Grow();
  void Rebuild(size_t cap);

  Arena arena_;
  std::vector<uint64_t> ctrl_;
  size_t ctrl_mask_ = 0;  // ctrl_.size() - 1, or 0 when empty
  std::vector<Entry> entries_;
  size_t peak_arena_bytes_ = 0;
  mutable Stats stats_;
};

}  // namespace onepass

#endif  // ONEPASS_UTIL_FLAT_TABLE_H_
