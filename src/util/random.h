// Deterministic random number generation for workload synthesis.
//
// All randomness in the library flows through these generators so that every
// experiment is reproducible from a seed. We provide:
//   - SplitMix64: seed expansion / cheap stateless mixing.
//   - Xoshiro256StarStar: the main generator (fast, high quality).
//   - ZipfGenerator: Zipf(s) distributed integers in [0, n), used to model
//     skewed key popularity (user ids in click streams, words in documents).
//
// Thread-safety audit (DESIGN.md §5.3): a generator's state is mutated by
// every draw, so a generator must never be shared across concurrent
// data-plane tasks. The idiom is one instance per task, derived from the
// job seed and the task id with PerTaskRng below — deterministic, and
// independent of which thread runs the task when. ZipfGenerator itself is
// immutable after construction (Next draws through the caller's rng), so
// one Zipf table may be shared as long as each task passes its own rng.

#ifndef ONEPASS_UTIL_RANDOM_H_
#define ONEPASS_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace onepass {

// SplitMix64 step: returns the next value and advances the state.
// Public-domain algorithm by Sebastiano Vigna.
inline uint64_t SplitMix64Next(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** generator. Deterministic given the seed; not thread-safe.
class Xoshiro256StarStar {
 public:
  explicit Xoshiro256StarStar(uint64_t seed) { Seed(seed); }

  // Re-seeds the generator (expands the seed with SplitMix64).
  void Seed(uint64_t seed);

  // Next 64 uniformly distributed bits.
  uint64_t Next();

  // Uniform in [0, bound). bound must be > 0. Uses Lemire's multiply-shift
  // rejection method to avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  // Uniform double in [0, 1).
  double NextDouble();

  // Bernoulli(p).
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  uint64_t s_[4];
};

// Derives an independent per-task generator from (seed, task): the
// canonical per-task-instance idiom for parallel code. Streams for
// distinct task ids are decorrelated by two SplitMix64 mixes.
inline Xoshiro256StarStar PerTaskRng(uint64_t seed, uint64_t task) {
  uint64_t s = seed;
  uint64_t mixed = SplitMix64Next(&s) ^ (task * 0x9e3779b97f4a7c15ULL);
  return Xoshiro256StarStar(SplitMix64Next(&mixed));
}

// Generates Zipf(s)-distributed ranks in [0, n). Rank 0 is the most popular.
//
// Uses the rejection-inversion method of Hörmann & Derflinger (1996), which
// is O(1) per sample with no O(n) setup table, so very large key universes
// (e.g. trigram spaces) are cheap.
class ZipfGenerator {
 public:
  // n: universe size (>= 1); s: skew exponent (s >= 0; s=0 is uniform).
  ZipfGenerator(uint64_t n, double s);

  // Returns a rank in [0, n).
  uint64_t Next(Xoshiro256StarStar* rng);

  uint64_t universe() const { return n_; }
  double skew() const { return s_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double threshold_;  // s_ == 0 shortcut unused; kept for clarity.
};

// Fisher-Yates shuffles `v` in place using `rng`.
template <typename T>
void Shuffle(std::vector<T>* v, Xoshiro256StarStar* rng) {
  for (size_t i = v->size(); i > 1; --i) {
    size_t j = static_cast<size_t>(rng->NextBounded(i));
    std::swap((*v)[i - 1], (*v)[j]);
  }
}

}  // namespace onepass

#endif  // ONEPASS_UTIL_RANDOM_H_
