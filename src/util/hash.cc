#include "src/util/hash.h"

#include "src/util/random.h"

namespace onepass {

uint64_t HashBytes(std::string_view data, uint64_t seed) {
  // FNV-1a over 8-byte words where possible, finished with Mix64. Not
  // cryptographic; fast and well distributed for short analytics keys.
  uint64_t h = 0xcbf29ce484222325ULL ^ Mix64(seed);
  const char* p = data.data();
  size_t n = data.size();
  while (n >= 8) {
    uint64_t w;
    __builtin_memcpy(&w, p, 8);
    h = (h ^ w) * 0x100000001b3ULL;
    p += 8;
    n -= 8;
  }
  uint64_t last = 0;
  for (size_t i = 0; i < n; ++i) {
    last |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  h = (h ^ last ^ (static_cast<uint64_t>(data.size()) << 56)) *
      0x100000001b3ULL;
  return Mix64(h);
}

UniversalHash UniversalHashFamily::At(uint64_t level) const {
  // Derive (a, b, per-level seed) deterministically from (seed_, level).
  uint64_t s = seed_ ^ Mix64(level * 0x9e3779b97f4a7c15ULL + 1);
  const uint64_t a = SplitMix64Next(&s);
  const uint64_t b = SplitMix64Next(&s);
  const uint64_t level_seed = SplitMix64Next(&s);
  return UniversalHash(a, b, level_seed);
}

}  // namespace onepass
