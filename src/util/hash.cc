#include "src/util/hash.h"

#include "src/util/random.h"

namespace onepass {

uint64_t HashBytes(std::string_view data, uint64_t seed) {
  // FNV-1a over 8-byte words where possible, finished with Mix64. Not
  // cryptographic; fast and well distributed for short analytics keys.
  return Mix64(hash_internal::FnvCore(data, seed));
}

UniversalHash UniversalHashFamily::At(uint64_t level) const {
  // Derive (a, b, per-level seed) deterministically from (seed_, level).
  uint64_t s = seed_ ^ Mix64(level * 0x9e3779b97f4a7c15ULL + 1);
  const uint64_t a = SplitMix64Next(&s);
  const uint64_t b = SplitMix64Next(&s);
  const uint64_t level_seed = SplitMix64Next(&s);
  return UniversalHash(a, b, level_seed);
}

}  // namespace onepass
