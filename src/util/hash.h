// Hash functions used throughout the platform.
//
// The paper's framework (§4.1) relies on a *series of independent hash
// functions* h1, h2, h3, ... — h1 partitions map output across reducers, h2
// splits a reducer's input into buckets, h3 groups within a memory-resident
// bucket, h4+ drive recursive partitioning. "We use standard universal
// hashing to ensure that the hash functions are independent of each other."
//
// UniversalHashFamily reproduces that: every level i yields a Carter–Wegman
// style hash seeded independently, so the bucket assignment at level i is
// (approximately) independent of the assignment at level j != i.

#ifndef ONEPASS_UTIL_HASH_H_
#define ONEPASS_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "src/util/simd_dispatch.h"

namespace onepass {

// Strong 64-bit mix of a 64-bit value (SplitMix64 finalizer).
inline uint64_t Mix64(uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

namespace hash_internal {

// FNV-1a over 8-byte words: the pre-finalizer core of HashBytes. Shared
// between the scalar path and the batch path (batch_hash.cc) so the two
// can never drift — HashBytes == Mix64(FnvCore) by construction.
inline uint64_t FnvCore(std::string_view data, uint64_t seed) {
  uint64_t h = 0xcbf29ce484222325ULL ^ Mix64(seed);
  const char* p = data.data();
  size_t n = data.size();
  while (n >= 8) {
    uint64_t w;
    __builtin_memcpy(&w, p, 8);
    h = (h ^ w) * 0x100000001b3ULL;
    p += 8;
    n -= 8;
  }
  uint64_t last = 0;
  for (size_t i = 0; i < n; ++i) {
    last |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  h = (h ^ last ^ (static_cast<uint64_t>(data.size()) << 56)) *
      0x100000001b3ULL;
  return h;
}

}  // namespace hash_internal

// 64-bit hash of a byte string with a seed (FNV-1a core + strong finalizer).
// Deterministic across platforms.
uint64_t HashBytes(std::string_view data, uint64_t seed = 0);

// Maps a full 64-bit hash to a bucket index in [0, buckets) without a
// modulo (Lemire's fastrange). Engines that cache a key's digest use this
// to route spills from the cached value; it matches UniversalHash::Bucket
// exactly, so `FastRangeBucket(h(key), n) == h.Bucket(key, n)`.
inline uint64_t FastRangeBucket(uint64_t hash, uint64_t buckets) {
  return static_cast<uint64_t>(
      (static_cast<__uint128_t>(hash) * buckets) >> 64);
}

// One member of a universal family: hashes byte strings to [0, 2^64) using
// multiply-shift over a seeded 64-bit digest.
class UniversalHash {
 public:
  // a must be odd; (a, b) are the multiply-shift parameters.
  UniversalHash(uint64_t a, uint64_t b, uint64_t seed)
      : a_(a | 1), b_(b), seed_(seed) {}

  uint64_t operator()(std::string_view key) const {
    const uint64_t x = HashBytes(key, seed_);
    return a_ * x + b_;
  }

  // Hash reduced to a bucket index in [0, buckets).
  uint64_t Bucket(std::string_view key, uint64_t buckets) const {
    return FastRangeBucket((*this)(key), buckets);
  }

  // Digests for a whole batch: out[i] == (*this)(keys[i]) bit-for-bit at
  // every tier (the batch_hash test enforces it). Splits the work into an
  // FNV-core pass over the keys and a finalize pass (Mix64 + affine step)
  // that vectorizes under the AVX2 tier. Implemented in batch_hash.cc.
  void HashBatch(const std::string_view* keys, size_t n, uint64_t* out,
                 SimdTier tier) const;
  void HashBatch(const std::string_view* keys, size_t n, uint64_t* out) const {
    HashBatch(keys, n, out, CurrentSimdTier());
  }

 private:
  uint64_t a_;
  uint64_t b_;
  uint64_t seed_;
};

// An indexed family of pairwise-independent hash functions. Level 0 plays
// the role of the paper's h1 (partitioner), level 1 of h2, and so on.
class UniversalHashFamily {
 public:
  explicit UniversalHashFamily(uint64_t seed) : seed_(seed) {}

  // Returns the hash function at `level`. Cheap; safe to call repeatedly.
  UniversalHash At(uint64_t level) const;

 private:
  uint64_t seed_;
};

}  // namespace onepass

#endif  // ONEPASS_UTIL_HASH_H_
