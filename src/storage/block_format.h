// Block-oriented encoded byte path for spill/shuffle/bucket streams
// (DESIGN.md §5.5).
//
// A block stream batches KV records into ~32-64 KB blocks, each encoded
// with one of two schemes and optionally LZ-compressed:
//
//   stream := block*
//   block  := varint raw_len     KvBuffer-serialized bytes of the records
//             varint num_records
//             byte   flags       bit 0: encoding (0 prefix / 1 grouped)
//                                bit 1: body is LZ-compressed
//             [varint ubody_len] pre-compression body bytes (LZ blocks only)
//             varint body_len
//             body               encoded (then maybe compressed) records
//
//   kPrefix  (sorted runs)    record := varint shared | varint unshared |
//                             varint vlen | key-suffix | value, with a full
//                             key (shared = 0) every kRestartInterval
//                             records so damage cannot cascade past a
//                             restart point.
//   kGrouped (hash buckets)   run := varint klen | key | varint count |
//                             count * (varint vlen | value), collapsing
//                             adjacent equal keys to one key copy.
//
// Compression (src/util/compress.h) applies per block to the encoded body;
// a block whose compressed body is not smaller is stored raw (the
// incompressible passthrough — flag bit 1 stays clear). Decoding rebuilds
// the exact varint-prefixed KvBuffer byte stream, so a job that routes its
// intermediate data through blocks produces byte-identical records to one
// that does not.
//
// Checksums frame the *encoded* stream: callers hand the block stream to
// FramedWriter/FrameBytes, so CRCs cover post-compression bytes and
// corruption injection works on exactly what "disk" would hold.

#ifndef ONEPASS_STORAGE_BLOCK_FORMAT_H_
#define ONEPASS_STORAGE_BLOCK_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/util/kv_buffer.h"

namespace onepass {

// Which block codec a stream uses. kNone bypasses the block path entirely
// (raw KvBuffer bytes on disk/wire, byte-identical to the pre-codec
// platform); kLz is the block-encoded, LZ-compressed fast path.
enum class BlockCodecKind : uint8_t {
  kNone = 0,
  kLz = 1,
};

std::string_view BlockCodecName(BlockCodecKind kind);

// How records are laid out inside a block.
enum class BlockEncoding : uint8_t {
  kPrefix = 0,   // shared-key-prefix (front) coding — for sorted runs
  kGrouped = 1,  // run-length key grouping — for hash-bucket streams
};

// Accounting for one encode/decode pass. raw/encoded bytes feed the
// JobMetrics codec counters; the nanosecond timers are wall-clock (host)
// measurements and must stay out of deterministic serializations.
struct CodecStats {
  uint64_t raw_bytes = 0;      // KvBuffer-serialized bytes in
  uint64_t encoded_bytes = 0;  // block-stream bytes out (incl. headers)
  uint64_t blocks = 0;
  uint64_t stored_blocks = 0;  // blocks kept uncompressed (LZ didn't pay)
  double compress_ns = 0;
  double decompress_ns = 0;
};

// Streaming encoder: feed records in stream order, take the block stream
// from Finish(). Records never straddle blocks; grouped runs never
// straddle blocks either.
class BlockBuilder {
 public:
  static constexpr int kRestartInterval = 16;

  // `block_bytes` is the target raw (pre-encoding) bytes per block;
  // `stats` may be null.
  BlockBuilder(BlockEncoding encoding, BlockCodecKind codec,
               uint64_t block_bytes, CodecStats* stats = nullptr);

  void Add(std::string_view key, std::string_view value);

  // Adds a whole RecordBatch in order — identical to calling Add per
  // record (block cuts depend only on the record sequence, so the encoded
  // stream is byte-identical at every batch size; DESIGN.md §5.8).
  void AddBatch(const std::string_view* keys, const std::string_view* values,
                size_t n) {
    for (size_t i = 0; i < n; ++i) Add(keys[i], values[i]);
  }

  // Flushes the open block and returns the stream. The builder is spent.
  std::string Finish();

 private:
  void CutBlock();
  void CloseRun();

  BlockEncoding encoding_;
  BlockCodecKind codec_;
  uint64_t block_bytes_;
  CodecStats* stats_;

  std::string out_;
  std::string body_;  // current block's encoded body (pre-compression)
  uint64_t raw_in_block_ = 0;
  uint64_t records_in_block_ = 0;

  // kPrefix state.
  std::string last_key_;
  int restart_countdown_ = 0;

  // kGrouped state: the open run's key and its value bytes (each value
  // varint-length-prefixed), flushed on key change or block cut.
  bool run_open_ = false;
  std::string run_key_;
  std::string run_values_;
  uint64_t run_count_ = 0;

  std::string scratch_;  // compression target, reused across blocks
};

// Encodes a whole KvBuffer into a block stream.
std::string EncodeKvStream(const KvBuffer& records, BlockEncoding encoding,
                           BlockCodecKind codec, uint64_t block_bytes,
                           CodecStats* stats = nullptr);

// Decodes a block stream back into the exact KvBuffer it was built from.
// Returns Status::Corruption on any malformed block (bad varints,
// truncated bodies, failed decompression, record-count or byte-count
// mismatches) — never reads out of bounds.
Result<KvBuffer> DecodeKvStream(std::string_view stream,
                                CodecStats* stats = nullptr);

}  // namespace onepass

#endif  // ONEPASS_STORAGE_BLOCK_FORMAT_H_
