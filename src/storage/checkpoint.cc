#include "src/storage/checkpoint.h"

#include <cstring>
#include <utility>

#include "src/common/logging.h"
#include "src/util/coding.h"

namespace onepass {

namespace {

// Field payloads are tagged with one type byte so a reader asking for the
// wrong type (schema drift between save and restore) fails loudly.
constexpr char kTagU64 = 'u';
constexpr char kTagF64 = 'f';
constexpr char kTagBytes = 'b';

}  // namespace

void CheckpointWriter::PutU64(std::string_view name, uint64_t v) {
  std::string payload(1, kTagU64);
  PutVarint64(&payload, v);
  fields_.Append(name, payload);
}

void CheckpointWriter::PutF64(std::string_view name, double v) {
  std::string payload(1, kTagF64);
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  PutFixed64(&payload, bits);
  fields_.Append(name, payload);
}

void CheckpointWriter::PutBytes(std::string_view name,
                                std::string_view bytes) {
  std::string payload(1, kTagBytes);
  payload.append(bytes);
  fields_.Append(name, payload);
}

Status CheckpointReader::Next(std::string_view name, char type_tag,
                              std::string_view* value) {
  std::string_view stored_name, payload;
  if (!reader_.Next(&stored_name, &payload)) {
    return Status::Corruption("checkpoint field stream ended before '" +
                              std::string(name) + "'");
  }
  if (stored_name != name) {
    return Status::Corruption("checkpoint field mismatch: expected '" +
                              std::string(name) + "', found '" +
                              std::string(stored_name) + "'");
  }
  if (payload.empty() || payload[0] != type_tag) {
    return Status::Corruption("checkpoint field '" + std::string(name) +
                              "' has the wrong type tag");
  }
  *value = payload.substr(1);
  return Status::OK();
}

Status CheckpointReader::GetU64(std::string_view name, uint64_t* v) {
  std::string_view payload;
  RETURN_IF_ERROR(Next(name, kTagU64, &payload));
  if (!GetVarint64(&payload, v) || !payload.empty()) {
    return Status::Corruption("checkpoint field '" + std::string(name) +
                              "' is not a valid u64");
  }
  return Status::OK();
}

Status CheckpointReader::GetF64(std::string_view name, double* v) {
  std::string_view payload;
  RETURN_IF_ERROR(Next(name, kTagF64, &payload));
  if (payload.size() != sizeof(uint64_t)) {
    return Status::Corruption("checkpoint field '" + std::string(name) +
                              "' is not a valid f64");
  }
  const uint64_t bits = DecodeFixed64(payload.data());
  std::memcpy(v, &bits, sizeof(bits));
  return Status::OK();
}

Status CheckpointReader::GetBytes(std::string_view name,
                                  std::string_view* bytes) {
  return Next(name, kTagBytes, bytes);
}

EncodedCheckpoint EncodeCheckpoint(const KvBuffer& fields,
                                   BlockCodecKind codec,
                                   uint64_t codec_block_bytes,
                                   uint64_t integrity_block_bytes) {
  EncodedCheckpoint image;
  image.raw_bytes = fields.bytes();
  image.raw_count = fields.count();
  image.coded = codec != BlockCodecKind::kNone;
  if (image.coded) {
    const std::string stream = EncodeKvStream(
        fields, BlockEncoding::kGrouped, codec, codec_block_bytes);
    image.payload_bytes = stream.size();
    image.framed = FrameBytes(stream, integrity_block_bytes);
  } else {
    image.payload_bytes = fields.bytes();
    image.framed = FrameBytes(fields.data(), integrity_block_bytes);
  }
  return image;
}

Result<KvBuffer> DecodeCheckpoint(const EncodedCheckpoint& image,
                                  std::string_view framed) {
  ASSIGN_OR_RETURN(
      std::string payload,
      ReadAllFramed(framed,
                    static_cast<int64_t>(image.payload_bytes)));
  if (image.coded) {
    ASSIGN_OR_RETURN(KvBuffer fields, DecodeKvStream(payload));
    if (fields.bytes() != image.raw_bytes ||
        fields.count() != image.raw_count) {
      return Status::Corruption(
          "checkpoint block stream decoded to the wrong size");
    }
    return fields;
  }
  return KvBuffer::FromData(std::move(payload), image.raw_count);
}

Result<KvBuffer> CheckpointStore::Restore(RestoreStats* stats) const {
  // Ladder: newest instance first; within an instance, replica slots in
  // order. Every candidate charges its read; a corrupt one is rejected by
  // the CRC/length verifier and the ladder moves on — mirroring the
  // BucketFileManager damage-verify-prove loop.
  for (size_t i = instances_.size(); i-- > 0;) {
    const EncodedCheckpoint& image = instances_[i];
    const uint32_t ordinal = static_cast<uint32_t>(i);
    for (int slot = 0; slot < replication_; ++slot) {
      stats->bytes_read += image.framed.size();
      const int chain =
          plan_ ? plan_->CheckpointCorruptions(reduce_task_, ordinal, slot)
                : 0;
      if (chain > 0) {
        std::string damaged = image.framed;
        const sim::CorruptionEvent ev = plan_->CorruptionDamage(
            sim::StreamKind::kCheckpoint,
            static_cast<uint64_t>(reduce_task_),
            (static_cast<uint64_t>(ordinal) << 8) |
                static_cast<uint64_t>(slot),
            /*gen=*/0, damaged.size());
        CHECK(ev.fires());
        if (ev.torn) {
          TornTruncate(&damaged, static_cast<uint64_t>(ev.bit) / 8);
        } else {
          FlipBit(&damaged, static_cast<uint64_t>(ev.bit));
        }
        const Status verify = VerifyFramed(
            damaged, static_cast<int64_t>(image.payload_bytes));
        CHECK(!verify.ok())
            << "injected checkpoint damage escaped verification";
        ++stats->corrupt_replicas;
        continue;
      }
      Result<KvBuffer> fields = DecodeCheckpoint(image, image.framed);
      CHECK(fields.ok()) << "clean checkpoint replica failed to decode: "
                         << fields.status().ToString();
      stats->ordinal = ordinal;
      return fields;
    }
  }
  return Status::NotFound(
      "no verifiable checkpoint replica: full replay required");
}

}  // namespace onepass
