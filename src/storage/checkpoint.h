// Reduce-state checkpointing (DESIGN.md §5.6).
//
// A checkpoint is a named, ordered field stream — the engine walks its
// state (hash-table entries, sketch slots, bucket files, run manifests)
// into a CheckpointWriter, and a restore reads the same fields back in the
// same order through a CheckpointReader, with every name and type checked
// so a damaged or mismatched image surfaces as Status::Corruption instead
// of silently mis-seeding an engine.
//
// The field stream is a KvBuffer (name -> payload records), so it rides
// the platform's existing byte paths: EncodeCheckpoint runs it through the
// block codec (DESIGN.md §5.5) when one is active and frames the result in
// CRC32C blocks (DESIGN.md §5.2), which makes a stored checkpoint replica
// torn-write-detectable exactly like a spill run or a DFS chunk.
//
// CheckpointStore holds the replicated instances for one reduce task and
// implements the restore ladder: newest instance first, replica slots in
// order, each candidate damaged per the FaultPlan's seeded draw and then
// CRC-verified — a corrupt replica is rejected and the next one tried;
// when every replica of every instance is bad the restore returns
// NotFound and the caller falls back to full replay.

#ifndef ONEPASS_STORAGE_CHECKPOINT_H_
#define ONEPASS_STORAGE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/sim/fault_injector.h"
#include "src/storage/block_format.h"
#include "src/storage/framed_io.h"
#include "src/util/kv_buffer.h"

namespace onepass {

// Serializes named, typed fields into a KvBuffer in call order.
class CheckpointWriter {
 public:
  void PutU64(std::string_view name, uint64_t v);
  // Stored as the IEEE-754 bit pattern, so save/restore round trips are
  // bit-exact (MergeScheduler sizes are doubles).
  void PutF64(std::string_view name, double v);
  void PutBytes(std::string_view name, std::string_view bytes);

  const KvBuffer& fields() const { return fields_; }
  KvBuffer Take() { return std::move(fields_); }

 private:
  KvBuffer fields_;
};

// Sequential reader over a checkpoint's field stream. Every Get checks the
// stored name and type tag against what the caller expects; a mismatch —
// wrong engine, wrong config shape, or a decode that slipped past the
// CRCs — returns Status::Corruption.
class CheckpointReader {
 public:
  explicit CheckpointReader(const KvBuffer& fields) : reader_(fields) {}

  Status GetU64(std::string_view name, uint64_t* v);
  Status GetF64(std::string_view name, double* v);
  // The returned view points into the underlying field buffer and stays
  // valid for the buffer's lifetime.
  Status GetBytes(std::string_view name, std::string_view* bytes);

 private:
  Status Next(std::string_view name, char type_tag, std::string_view* value);

  KvBufferReader reader_;
};

// One encoded checkpoint image: the framed bytes a replica stores, plus
// the out-of-band sizes the verifier needs (a namenode-style manifest).
struct EncodedCheckpoint {
  std::string framed;      // CRC-framed (possibly codec-encoded) image
  uint64_t payload_bytes = 0;  // pre-framing bytes (torn-write check)
  uint64_t raw_bytes = 0;      // KvBuffer field-stream bytes
  uint64_t raw_count = 0;      // field records in the stream
  bool coded = false;          // payload is a block stream, not raw fields
};

// Encodes a field stream for storage: block-codec encode (when `codec` is
// not kNone), then CRC framing with `integrity_block_bytes` blocks.
EncodedCheckpoint EncodeCheckpoint(const KvBuffer& fields,
                                   BlockCodecKind codec,
                                   uint64_t codec_block_bytes,
                                   uint64_t integrity_block_bytes);

// Verifies and decodes one stored image back to its field stream. Returns
// Status::Corruption on any CRC, length, or block-format failure.
Result<KvBuffer> DecodeCheckpoint(const EncodedCheckpoint& image,
                                  std::string_view framed);

// Replicated checkpoint instances for one reduce task.
class CheckpointStore {
 public:
  // `plan` may be null (no injection). `reduce_task` keys the corruption
  // draws; `replication` copies of each instance are stored.
  CheckpointStore(int reduce_task, int replication,
                  const sim::FaultPlan* plan)
      : reduce_task_(reduce_task), replication_(replication), plan_(plan) {}

  // Stores the next checkpoint instance (its ordinal is the number of
  // instances stored before it).
  void Put(EncodedCheckpoint image) {
    instances_.push_back(std::move(image));
  }

  struct RestoreStats {
    uint32_t ordinal = 0;        // instance the restore succeeded from
    int corrupt_replicas = 0;    // candidates rejected by verification
    uint64_t bytes_read = 0;     // framed bytes read across all candidates
  };

  // Runs the restore ladder and returns the decoded field stream of the
  // newest instance with a verifiable replica, or Status::NotFound when
  // every replica of every instance is corrupt (caller falls back to full
  // replay). Non-destructive; pure given (instances, plan).
  Result<KvBuffer> Restore(RestoreStats* stats) const;

  size_t instances() const { return instances_.size(); }
  const EncodedCheckpoint& instance(size_t i) const { return instances_[i]; }

 private:
  int reduce_task_;
  int replication_;
  const sim::FaultPlan* plan_;
  std::vector<EncodedCheckpoint> instances_;
};

}  // namespace onepass

#endif  // ONEPASS_STORAGE_CHECKPOINT_H_
