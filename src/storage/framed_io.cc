#include "src/storage/framed_io.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/util/coding.h"
#include "src/util/crc32c.h"

namespace onepass {

namespace {
constexpr uint64_t kHeaderBytes = 8;  // fixed32 len + fixed32 masked crc
}  // namespace

uint64_t FramedOverheadBytes(uint64_t payload_bytes, uint64_t block_bytes) {
  CHECK(block_bytes > 0);
  const uint64_t blocks = (payload_bytes + block_bytes - 1) / block_bytes;
  return blocks * kHeaderBytes;
}

FramedWriter::FramedWriter(std::string* dst, uint64_t block_bytes)
    : dst_(dst), block_bytes_(block_bytes) {
  CHECK(dst != nullptr);
  CHECK(block_bytes > 0);
}

void FramedWriter::EmitBlock(std::string_view payload) {
  PutFixed32(dst_, static_cast<uint32_t>(payload.size()));
  PutFixed32(dst_, MaskCrc(Crc32c(payload)));
  dst_->append(payload.data(), payload.size());
}

void FramedWriter::Append(std::string_view payload) {
  while (!payload.empty()) {
    if (pending_.empty() && payload.size() >= block_bytes_) {
      EmitBlock(payload.substr(0, block_bytes_));
      payload.remove_prefix(block_bytes_);
      continue;
    }
    const uint64_t take =
        std::min<uint64_t>(block_bytes_ - pending_.size(), payload.size());
    pending_.append(payload.data(), take);
    payload.remove_prefix(take);
    if (pending_.size() == block_bytes_) {
      EmitBlock(pending_);
      pending_.clear();
    }
  }
}

void FramedWriter::Finish() {
  if (!pending_.empty()) {
    EmitBlock(pending_);
    pending_.clear();
  }
}

std::string FrameBytes(std::string_view payload, uint64_t block_bytes) {
  std::string framed;
  framed.reserve(payload.size() +
                 FramedOverheadBytes(payload.size(), block_bytes));
  FramedWriter writer(&framed, block_bytes);
  writer.Append(payload);
  writer.Finish();
  return framed;
}

namespace {

// Walks the framed stream, calling sink(payload) for each verified block.
template <typename Sink>
Status WalkFramed(std::string_view framed, int64_t expected_payload_bytes,
                  Sink&& sink) {
  uint64_t payload_total = 0;
  while (!framed.empty()) {
    if (framed.size() < kHeaderBytes) {
      return Status::Corruption("torn write: truncated block header");
    }
    const uint32_t len = DecodeFixed32(framed.data());
    const uint32_t masked = DecodeFixed32(framed.data() + 4);
    if (len == 0 || framed.size() - kHeaderBytes < len) {
      return Status::Corruption("torn write: block payload cut short");
    }
    const std::string_view payload = framed.substr(kHeaderBytes, len);
    if (Crc32c(payload) != UnmaskCrc(masked)) {
      return Status::Corruption("block checksum mismatch");
    }
    sink(payload);
    payload_total += len;
    framed.remove_prefix(kHeaderBytes + len);
  }
  if (expected_payload_bytes >= 0 &&
      payload_total != static_cast<uint64_t>(expected_payload_bytes)) {
    return Status::Corruption("torn write: stream holds " +
                              std::to_string(payload_total) +
                              " payload bytes, expected " +
                              std::to_string(expected_payload_bytes));
  }
  return Status::OK();
}

}  // namespace

Result<std::string> ReadAllFramed(std::string_view framed,
                                  int64_t expected_payload_bytes) {
  std::string out;
  out.reserve(framed.size());
  Status st = WalkFramed(framed, expected_payload_bytes,
                         [&out](std::string_view p) { out.append(p); });
  if (!st.ok()) return st;
  return out;
}

Status VerifyFramed(std::string_view framed, int64_t expected_payload_bytes) {
  return WalkFramed(framed, expected_payload_bytes, [](std::string_view) {});
}

void FlipBit(std::string* s, uint64_t bit_index) {
  CHECK(s != nullptr);
  if (s->empty()) return;
  bit_index %= 8 * s->size();
  (*s)[bit_index / 8] ^= static_cast<char>(1u << (bit_index % 8));
}

void TornTruncate(std::string* s, uint64_t keep_bytes) {
  CHECK(s != nullptr);
  if (s->empty()) return;
  s->resize(keep_bytes % s->size());
}

}  // namespace onepass
