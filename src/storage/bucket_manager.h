// BucketFileManager: the reduce-side disk bucket files with paged write
// buffers.
//
// All three hash engines stage overflow tuples into h on-disk bucket files
// (§4.1–4.3). Each bucket has a write-buffer page; tuples append to the
// page and the page is flushed to the bucket's file when full (one
// sequential I/O request per flush). Bytes written/read are charged to the
// owning task's CostTrace and to JobMetrics as reduce spill.
//
// "Disk" content is held in memory (the platform's time plane is simulated;
// see DESIGN.md), but the byte accounting is exact. A manager is strictly
// task-local: each reduce task's engine owns its own instance(s), wired to
// that task's trace and metrics, so concurrent reduce tasks never share
// one (DESIGN.md §5.3). Corruption draws are keyed by the stable `owner`
// id, not by when the task happens to run. When the job runs with
// integrity checksums (DESIGN.md §5.2), TakeBucket frames the file in
// CRC32C blocks, applies the FaultPlan's seeded corruption to the framed
// image, and verifies it; a corrupt copy is rebuilt from the recorded
// inputs (the page flushes are replayed, charging the extra I/O) until the
// per-stream recovery budget runs out, at which point TakeBucket returns
// Status::Corruption.

#ifndef ONEPASS_STORAGE_BUCKET_MANAGER_H_
#define ONEPASS_STORAGE_BUCKET_MANAGER_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/model/cost_model.h"
#include "src/mr/cost_trace.h"
#include "src/mr/metrics.h"
#include "src/sim/fault_injector.h"
#include "src/storage/block_format.h"
#include "src/storage/checkpoint.h"
#include "src/storage/framed_io.h"
#include "src/util/kv_buffer.h"

namespace onepass {

class BucketFileManager {
 public:
  // num_buckets: h; page_bytes: write-buffer size per bucket.
  // integrity/plan may be null (checksums off / no injection); `owner`
  // names this manager in the FaultPlan's corruption keyspace — reduce
  // task index + 1 for an engine's primary manager, a mixed child id for
  // recursive sub-partition managers (must be stable across runs for
  // determinism).
  // When `codec` is not kNone, each page flush is encoded as a run-length
  // key-grouped block stream (DESIGN.md §5.5) before it hits disk: the
  // bucket file is the concatenation of the flushes' encoded streams, disk
  // charges and integrity checksums cover the encoded bytes, and
  // TakeBucket decodes the stream back after verification. `costs`
  // supplies the codec CPU constants and must be non-null when a codec is
  // active.
  BucketFileManager(int num_buckets, uint64_t page_bytes,
                    TraceRecorder* trace, JobMetrics* metrics,
                    const IntegrityConfig* integrity = nullptr,
                    const sim::FaultPlan* plan = nullptr,
                    uint64_t owner = 0, const CostModel* costs = nullptr,
                    BlockCodecKind codec = BlockCodecKind::kNone,
                    uint64_t codec_block_bytes = 48 << 10);

  // Appends a tuple to `bucket`'s write buffer, flushing the page to disk
  // if it is full.
  void Add(int bucket, std::string_view key, std::string_view value);

  // Flushes every non-empty page. Call at end of input.
  void FlushAll();

  // Reads a bucket's file back from disk (charges the read), verifies it
  // when integrity checksums are on, and returns its contents, clearing
  // the stored file. FlushAll must have been called. Returns
  // Status::Corruption when the file is corrupt beyond the plan's
  // corruption_retry.max_retries rebuild budget.
  Result<KvBuffer> TakeBucket(int bucket);

  int num_buckets() const { return static_cast<int>(files_.size()); }
  // Raw (pre-codec) payload bytes of the bucket's file, the size the
  // decoded KvBuffer will have — callers size recursion decisions on data
  // volume, not on how well it compressed.
  uint64_t bucket_file_bytes(int bucket) const {
    return coded() ? raw_file_bytes_[bucket] : files_[bucket].bytes();
  }
  uint64_t bucket_file_records(int bucket) const {
    return coded() ? raw_file_records_[bucket] : files_[bucket].count();
  }
  // Memory held by unflushed write-buffer pages.
  uint64_t buffered_bytes() const { return buffered_bytes_; }
  // Total bytes spilled to disk through this manager (encoded bytes when a
  // codec is active — this is what the simulated disk carried).
  uint64_t spilled_bytes() const { return spilled_bytes_; }
  uint64_t spilled_records() const { return spilled_records_; }
  uint64_t owner() const { return owner_; }

  // Checkpointing (DESIGN.md §5.6): serializes the complete mid-stream
  // state — unflushed pages, bucket files (raw or encoded), and the spill
  // accounting — so a restored manager continues byte-identically.
  // Non-destructive; charges nothing (the cluster prices checkpoint I/O).
  void SaveTo(CheckpointWriter* w) const;
  // Restores into a freshly constructed manager with the same shape
  // (bucket count and codec must match the saved state).
  Status RestoreFrom(CheckpointReader* r);

 private:
  void FlushPage(int bucket);
  Result<KvBuffer> TakeBucketCoded(int bucket);
  bool coded() const { return codec_ != BlockCodecKind::kNone; }

  uint64_t page_bytes_;
  TraceRecorder* trace_;
  JobMetrics* metrics_;
  const IntegrityConfig* integrity_;
  const sim::FaultPlan* plan_;
  uint64_t owner_;
  const CostModel* costs_;
  BlockCodecKind codec_;
  uint64_t codec_block_bytes_;
  std::vector<KvBuffer> pages_;
  // Raw path: `files_` holds the flushed payloads. Codec path: `files_`
  // stays empty and `enc_files_` holds the concatenated encoded block
  // streams (blocks are self-delimiting, so concatenation of per-flush
  // streams is itself a valid stream); `raw_file_bytes_`/`_records_`
  // remember the decoded sizes.
  std::vector<KvBuffer> files_;
  std::vector<std::string> enc_files_;
  std::vector<uint64_t> raw_file_bytes_;
  std::vector<uint64_t> raw_file_records_;
  uint64_t buffered_bytes_ = 0;
  uint64_t spilled_bytes_ = 0;
  uint64_t spilled_records_ = 0;
};

}  // namespace onepass

#endif  // ONEPASS_STORAGE_BUCKET_MANAGER_H_
