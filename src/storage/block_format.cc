#include "src/storage/block_format.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/common/logging.h"
#include "src/util/coding.h"
#include "src/util/compress.h"

namespace onepass {

namespace {

constexpr uint8_t kFlagEncodingMask = 0x1;
constexpr uint8_t kFlagLz = 0x2;

double NowNs() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

size_t CommonPrefix(std::string_view a, std::string_view b) {
  const size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

}  // namespace

std::string_view BlockCodecName(BlockCodecKind kind) {
  switch (kind) {
    case BlockCodecKind::kNone:
      return "none";
    case BlockCodecKind::kLz:
      return "lz";
  }
  return "unknown";
}

BlockBuilder::BlockBuilder(BlockEncoding encoding, BlockCodecKind codec,
                           uint64_t block_bytes, CodecStats* stats)
    : encoding_(encoding),
      codec_(codec),
      block_bytes_(block_bytes > 0 ? block_bytes : 48 << 10),
      stats_(stats) {}

void BlockBuilder::Add(std::string_view key, std::string_view value) {
  if (encoding_ == BlockEncoding::kPrefix) {
    const size_t shared =
        restart_countdown_ > 0 ? CommonPrefix(last_key_, key) : 0;
    PutVarint64(&body_, shared);
    PutVarint64(&body_, key.size() - shared);
    PutVarint64(&body_, value.size());
    body_.append(key.data() + shared, key.size() - shared);
    body_.append(value.data(), value.size());
    last_key_.assign(key.data(), key.size());
    restart_countdown_ =
        restart_countdown_ > 0 ? restart_countdown_ - 1 : kRestartInterval - 1;
  } else {
    if (!run_open_ || key != run_key_) {
      CloseRun();
      run_open_ = true;
      run_key_.assign(key.data(), key.size());
      run_count_ = 0;
      run_values_.clear();
    }
    PutLengthPrefixed(&run_values_, value);
    ++run_count_;
  }
  raw_in_block_ += RecordBytes(key, value);
  ++records_in_block_;
  if (raw_in_block_ >= block_bytes_) CutBlock();
}

void BlockBuilder::CloseRun() {
  if (!run_open_) return;
  PutLengthPrefixed(&body_, run_key_);
  PutVarint64(&body_, run_count_);
  body_.append(run_values_);
  run_open_ = false;
}

void BlockBuilder::CutBlock() {
  CloseRun();
  if (records_in_block_ == 0) return;
  uint8_t flags = static_cast<uint8_t>(encoding_) & kFlagEncodingMask;
  std::string_view body = body_;
  if (codec_ == BlockCodecKind::kLz) {
    scratch_.clear();
    const double t0 = NowNs();
    const size_t lz_size = LzCompress(body_, &scratch_);
    const double t1 = NowNs();
    if (stats_ != nullptr) stats_->compress_ns += t1 - t0;
    if (lz_size > 0 && lz_size < body_.size()) {
      flags |= kFlagLz;
      body = scratch_;
    } else if (stats_ != nullptr) {
      ++stats_->stored_blocks;  // incompressible passthrough
    }
  }
  const size_t before = out_.size();
  PutVarint64(&out_, raw_in_block_);
  PutVarint64(&out_, records_in_block_);
  out_.push_back(static_cast<char>(flags));
  if ((flags & kFlagLz) != 0) PutVarint64(&out_, body_.size());
  PutVarint64(&out_, body.size());
  out_.append(body.data(), body.size());
  if (stats_ != nullptr) {
    stats_->raw_bytes += raw_in_block_;
    stats_->encoded_bytes += out_.size() - before;
    ++stats_->blocks;
  }
  body_.clear();
  raw_in_block_ = 0;
  records_in_block_ = 0;
  last_key_.clear();
  restart_countdown_ = 0;
}

std::string BlockBuilder::Finish() {
  CutBlock();
  return std::move(out_);
}

std::string EncodeKvStream(const KvBuffer& records, BlockEncoding encoding,
                           BlockCodecKind codec, uint64_t block_bytes,
                           CodecStats* stats) {
  BlockBuilder builder(encoding, codec, block_bytes, stats);
  // Batched decode (§5.8): stage a block's worth of views per Fill; the
  // builder consumes them in order, so the stream is unchanged.
  KvBatchReader reader(records, block_bytes >= 64 ? block_bytes / 64 : 64);
  for (;;) {
    const size_t n = reader.Fill();
    if (n == 0) break;
    builder.AddBatch(reader.keys(), reader.values(), n);
  }
  return builder.Finish();
}

namespace {

// Decodes one block body into *out, appending exactly the records the
// builder consumed. Returns false on malformed input.
bool DecodeBody(std::string_view body, BlockEncoding encoding,
                uint64_t num_records, KvBuffer* out) {
  uint64_t decoded = 0;
  if (encoding == BlockEncoding::kPrefix) {
    std::string key;
    while (!body.empty()) {
      uint64_t shared = 0, unshared = 0, vlen = 0;
      if (!GetVarint64(&body, &shared) || !GetVarint64(&body, &unshared) ||
          !GetVarint64(&body, &vlen)) {
        return false;
      }
      if (shared > key.size() || unshared > body.size() ||
          vlen > body.size() - unshared) {
        return false;
      }
      key.resize(shared);
      key.append(body.data(), unshared);
      body.remove_prefix(unshared);
      out->Append(key, body.substr(0, vlen));
      body.remove_prefix(vlen);
      ++decoded;
    }
  } else {
    while (!body.empty()) {
      std::string_view key;
      uint64_t count = 0;
      if (!GetLengthPrefixed(&body, &key) || !GetVarint64(&body, &count) ||
          count == 0 || count > num_records) {
        return false;
      }
      for (uint64_t i = 0; i < count; ++i) {
        std::string_view value;
        if (!GetLengthPrefixed(&body, &value)) return false;
        out->Append(key, value);
      }
      decoded += count;
    }
  }
  return decoded == num_records;
}

}  // namespace

Result<KvBuffer> DecodeKvStream(std::string_view stream, CodecStats* stats) {
  KvBuffer out;
  std::string decompressed;  // reused per compressed block
  if (stats != nullptr) stats->encoded_bytes += stream.size();
  while (!stream.empty()) {
    uint64_t raw_len = 0, num_records = 0, body_len = 0, ubody_len = 0;
    if (!GetVarint64(&stream, &raw_len) ||
        !GetVarint64(&stream, &num_records) || stream.empty()) {
      return Status::Corruption("block stream: truncated header");
    }
    if (raw_len > (1ull << 30) || num_records > (1ull << 30)) {
      return Status::Corruption("block stream: implausible block header");
    }
    const uint8_t flags = static_cast<uint8_t>(stream.front());
    stream.remove_prefix(1);
    if ((flags & ~(kFlagEncodingMask | kFlagLz)) != 0) {
      return Status::Corruption("block stream: unknown flags");
    }
    const bool lz = (flags & kFlagLz) != 0;
    if (lz && !GetVarint64(&stream, &ubody_len)) {
      return Status::Corruption("block stream: truncated header");
    }
    if (!GetVarint64(&stream, &body_len) || body_len > stream.size()) {
      return Status::Corruption("block stream: truncated body");
    }
    std::string_view body = stream.substr(0, body_len);
    stream.remove_prefix(body_len);
    if (lz) {
      // The encoded body is never larger than raw_len plus a small
      // per-record overhead; reject inflation bombs before allocating.
      if (ubody_len > raw_len + 16 * num_records + 64) {
        return Status::Corruption("block stream: implausible body size");
      }
      decompressed.clear();
      decompressed.reserve(ubody_len);
      const double t0 = NowNs();
      const bool ok = LzDecompress(body, ubody_len, &decompressed);
      if (stats != nullptr) stats->decompress_ns += NowNs() - t0;
      if (!ok) {
        return Status::Corruption("block stream: failed decompression");
      }
      body = decompressed;
    }
    const BlockEncoding encoding =
        static_cast<BlockEncoding>(flags & kFlagEncodingMask);
    const uint64_t before_bytes = out.bytes();
    if (!DecodeBody(body, encoding, num_records, &out)) {
      return Status::Corruption("block stream: malformed body");
    }
    if (out.bytes() - before_bytes != raw_len) {
      return Status::Corruption("block stream: byte-count mismatch");
    }
    if (stats != nullptr) {
      stats->raw_bytes += raw_len;
      ++stats->blocks;
    }
  }
  return out;
}

}  // namespace onepass
