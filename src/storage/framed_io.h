// Checksummed block framing for simulated persistent and network byte
// streams (DESIGN.md §5.2).
//
// Every stream the platform pretends to persist or ship — DFS chunks,
// map-output spill runs, shuffle segments, hash-engine spill buckets —
// is framed as a sequence of blocks:
//
//   stream := block*
//   block  := fixed32 payload_len | fixed32 MaskCrc(crc32c(payload)) | payload
//
// with payload_len in (0, block_bytes]. A reader verifies every block's
// CRC and, given the expected payload size (which the owner of a stream
// always records out of band, like a namenode's file length), detects
// torn writes: a stream truncated mid-block fails its last CRC, and one
// truncated at a block boundary comes up short against the expected
// size. Both surface as Status::Corruption.

#ifndef ONEPASS_STORAGE_FRAMED_IO_H_
#define ONEPASS_STORAGE_FRAMED_IO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace onepass {

// Integrity knobs, carried by JobConfig. Checksums default on; the
// framing/verify work is deliberately NOT charged to the time plane
// (see DESIGN.md §5.2), so enabling them leaves schedules byte-identical.
struct IntegrityConfig {
  bool checksums = true;          // frame + verify all simulated streams
  uint64_t block_bytes = 32 << 10;  // max payload bytes per framed block
};

// Bytes of framing (headers) a payload of `payload_bytes` carries when
// framed with blocks of `block_bytes`.
uint64_t FramedOverheadBytes(uint64_t payload_bytes, uint64_t block_bytes);

// Incremental framer. Appends framed blocks to *dst; payload handed to
// Append() is cut into block_bytes-sized blocks. The framed image is a
// pure function of the concatenated payload (append granularity does not
// move block boundaries), which keeps re-framed rebuilds byte-identical.
class FramedWriter {
 public:
  FramedWriter(std::string* dst, uint64_t block_bytes);

  void Append(std::string_view payload);
  // Flushes the partial block, if any. Must be called before reading.
  void Finish();

 private:
  void EmitBlock(std::string_view payload);

  std::string* dst_;
  uint64_t block_bytes_;
  std::string pending_;  // partial block not yet emitted
};

// Frames `payload` in one shot.
std::string FrameBytes(std::string_view payload, uint64_t block_bytes);

// Verifies and unframes a whole stream. Returns the concatenated payload,
// or Status::Corruption on a CRC mismatch, a malformed header, or (when
// expected_payload_bytes >= 0) a payload that comes up short or long —
// the torn-write case.
Result<std::string> ReadAllFramed(std::string_view framed,
                                  int64_t expected_payload_bytes = -1);

// Verify-only variant: checks every block and the expected size without
// materializing the payload.
Status VerifyFramed(std::string_view framed,
                    int64_t expected_payload_bytes = -1);

// --- Deterministic damage, used by the fault injector and tests. ---

// Flips bit `bit_index % (8 * s->size())` of *s.
void FlipBit(std::string* s, uint64_t bit_index);

// Truncates *s to `keep_bytes % s->size()` bytes (a torn write).
void TornTruncate(std::string* s, uint64_t keep_bytes);

}  // namespace onepass

#endif  // ONEPASS_STORAGE_FRAMED_IO_H_
