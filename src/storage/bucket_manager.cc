#include "src/storage/bucket_manager.h"

#include <string>
#include <utility>

#include "src/common/logging.h"

namespace onepass {

BucketFileManager::BucketFileManager(int num_buckets, uint64_t page_bytes,
                                     TraceRecorder* trace,
                                     JobMetrics* metrics,
                                     const IntegrityConfig* integrity,
                                     const sim::FaultPlan* plan,
                                     uint64_t owner)
    : page_bytes_(page_bytes),
      trace_(trace),
      metrics_(metrics),
      integrity_(integrity),
      plan_(plan),
      owner_(owner) {
  CHECK_GE(num_buckets, 1);
  pages_.resize(num_buckets);
  files_.resize(num_buckets);
}

void BucketFileManager::Add(int bucket, std::string_view key,
                            std::string_view value) {
  KvBuffer& page = pages_[bucket];
  const uint64_t before = page.bytes();
  page.Append(key, value);
  buffered_bytes_ += page.bytes() - before;
  ++spilled_records_;
  if (page.bytes() >= page_bytes_) FlushPage(bucket);
}

void BucketFileManager::FlushAll() {
  for (int b = 0; b < num_buckets(); ++b) {
    if (!pages_[b].empty()) FlushPage(b);
  }
}

void BucketFileManager::FlushPage(int bucket) {
  KvBuffer& page = pages_[bucket];
  const uint64_t bytes = page.bytes();
  trace_->DiskWrite(bytes, OpTag::kReduceSpill);
  metrics_->reduce_spill_write_bytes += bytes;
  spilled_bytes_ += bytes;
  buffered_bytes_ -= bytes;
  files_[bucket].AppendAll(page);
  page.Clear();
}

Result<KvBuffer> BucketFileManager::TakeBucket(int bucket) {
  CHECK(pages_[bucket].empty()) << "FlushAll must run before TakeBucket";
  KvBuffer result = std::move(files_[bucket]);
  files_[bucket] = KvBuffer();
  if (result.bytes() == 0) return result;
  trace_->DiskRead(result.bytes(), OpTag::kReduceSpill);
  metrics_->reduce_spill_read_bytes += result.bytes();
  if (integrity_ == nullptr || !integrity_->checksums) return result;

  // Verified read: the "disk" holds the framed image of the recorded
  // page flushes; read it back through the checksum layer.
  const std::string framed =
      FrameBytes(result.data(), integrity_->block_bytes);
  metrics_->checksum_overhead_bytes += framed.size() - result.bytes();
  const int64_t expect = static_cast<int64_t>(result.bytes());
  const int chain =
      plan_ == nullptr
          ? 0
          : plan_->CorruptionChain(sim::StreamKind::kBucketFile, owner_,
                                   static_cast<uint64_t>(bucket));
  for (int gen = 0; gen < chain; ++gen) {
    // Generation `gen` of this file is corrupt: damage a copy, prove the
    // verifier catches it, then rebuild from the recorded inputs —
    // re-flushing the pages and re-reading the file, charged for real.
    metrics_->verify_bytes += result.bytes();
    sim::CorruptionEvent ev = plan_->CorruptionDamage(
        sim::StreamKind::kBucketFile, owner_,
        static_cast<uint64_t>(bucket), gen, framed.size());
    CHECK(ev.fires());
    std::string damaged = framed;
    if (ev.torn) {
      TornTruncate(&damaged, static_cast<uint64_t>(ev.bit) / 8);
    } else {
      FlipBit(&damaged, static_cast<uint64_t>(ev.bit));
    }
    const Status verdict = VerifyFramed(damaged, expect);
    CHECK(!verdict.ok()) << "undetected injected corruption";
    ++metrics_->corruptions_detected;
    if (ev.torn) ++metrics_->torn_writes_detected;
    if (gen >= plan_->config().max_corruption_retries) {
      return Status::Corruption(
          "bucket " + std::to_string(bucket) + " of spill manager " +
          std::to_string(owner_) + ": corrupt beyond " +
          std::to_string(plan_->config().max_corruption_retries) +
          " rebuilds: " + std::string(verdict.message()));
    }
    trace_->DiskWrite(result.bytes(), OpTag::kReduceSpill);
    trace_->DiskRead(result.bytes(), OpTag::kReduceSpill);
    metrics_->corruption_recovery_bytes += 2 * result.bytes();
    ++metrics_->corruptions_recovered;
  }
  Result<std::string> payload = ReadAllFramed(framed, expect);
  CHECK(payload.ok()) << payload.status().ToString();
  metrics_->verify_bytes += result.bytes();
  CHECK(payload.value() == result.data());
  return KvBuffer::FromData(std::move(payload).value(), result.count());
}

}  // namespace onepass
