#include "src/storage/bucket_manager.h"

#include "src/common/logging.h"

namespace onepass {

BucketFileManager::BucketFileManager(int num_buckets, uint64_t page_bytes,
                                     TraceRecorder* trace,
                                     JobMetrics* metrics)
    : page_bytes_(page_bytes), trace_(trace), metrics_(metrics) {
  CHECK_GE(num_buckets, 1);
  pages_.resize(num_buckets);
  files_.resize(num_buckets);
}

void BucketFileManager::Add(int bucket, std::string_view key,
                            std::string_view value) {
  KvBuffer& page = pages_[bucket];
  const uint64_t before = page.bytes();
  page.Append(key, value);
  buffered_bytes_ += page.bytes() - before;
  ++spilled_records_;
  if (page.bytes() >= page_bytes_) FlushPage(bucket);
}

void BucketFileManager::FlushAll() {
  for (int b = 0; b < num_buckets(); ++b) {
    if (!pages_[b].empty()) FlushPage(b);
  }
}

void BucketFileManager::FlushPage(int bucket) {
  KvBuffer& page = pages_[bucket];
  const uint64_t bytes = page.bytes();
  trace_->DiskWrite(bytes, OpTag::kReduceSpill);
  metrics_->reduce_spill_write_bytes += bytes;
  spilled_bytes_ += bytes;
  buffered_bytes_ -= bytes;
  files_[bucket].AppendAll(page);
  page.Clear();
}

KvBuffer BucketFileManager::TakeBucket(int bucket) {
  CHECK(pages_[bucket].empty()) << "FlushAll must run before TakeBucket";
  KvBuffer result = std::move(files_[bucket]);
  files_[bucket] = KvBuffer();
  if (result.bytes() > 0) {
    trace_->DiskRead(result.bytes(), OpTag::kReduceSpill);
    metrics_->reduce_spill_read_bytes += result.bytes();
  }
  return result;
}

}  // namespace onepass
