#include "src/storage/bucket_manager.h"

#include <string>
#include <utility>

#include "src/common/logging.h"

namespace onepass {

BucketFileManager::BucketFileManager(
    int num_buckets, uint64_t page_bytes, TraceRecorder* trace,
    JobMetrics* metrics, const IntegrityConfig* integrity,
    const sim::FaultPlan* plan, uint64_t owner, const CostModel* costs,
    BlockCodecKind codec, uint64_t codec_block_bytes)
    : page_bytes_(page_bytes),
      trace_(trace),
      metrics_(metrics),
      integrity_(integrity),
      plan_(plan),
      owner_(owner),
      costs_(costs),
      codec_(codec),
      codec_block_bytes_(codec_block_bytes) {
  CHECK_GE(num_buckets, 1);
  pages_.resize(num_buckets);
  files_.resize(num_buckets);
  if (coded()) {
    CHECK(costs_ != nullptr) << "codec needs the cost model's CPU constants";
    enc_files_.resize(num_buckets);
    raw_file_bytes_.resize(num_buckets, 0);
    raw_file_records_.resize(num_buckets, 0);
  }
}

void BucketFileManager::Add(int bucket, std::string_view key,
                            std::string_view value) {
  KvBuffer& page = pages_[bucket];
  const uint64_t before = page.bytes();
  page.Append(key, value);
  buffered_bytes_ += page.bytes() - before;
  ++spilled_records_;
  if (page.bytes() >= page_bytes_) FlushPage(bucket);
}

void BucketFileManager::FlushAll() {
  for (int b = 0; b < num_buckets(); ++b) {
    if (!pages_[b].empty()) FlushPage(b);
  }
}

void BucketFileManager::FlushPage(int bucket) {
  KvBuffer& page = pages_[bucket];
  const uint64_t bytes = page.bytes();
  buffered_bytes_ -= bytes;
  if (coded()) {
    // Encode the page as a grouped block stream; disk carries the encoded
    // bytes, and the codec CPU is charged against the spill.
    CodecStats stats;
    const std::string enc = EncodeKvStream(page, BlockEncoding::kGrouped,
                                           codec_, codec_block_bytes_, &stats);
    trace_->Cpu(costs_->compress_byte_s * static_cast<double>(bytes),
                OpTag::kReduceSpill);
    trace_->DiskWrite(enc.size(), OpTag::kReduceSpill);
    metrics_->reduce_spill_write_bytes += enc.size();
    metrics_->codec_bucket_raw_bytes += bytes;
    metrics_->codec_bucket_encoded_bytes += enc.size();
    metrics_->compress_ns += stats.compress_ns;
    spilled_bytes_ += enc.size();
    enc_files_[bucket].append(enc);
    raw_file_bytes_[bucket] += bytes;
    raw_file_records_[bucket] += page.count();
  } else {
    trace_->DiskWrite(bytes, OpTag::kReduceSpill);
    metrics_->reduce_spill_write_bytes += bytes;
    spilled_bytes_ += bytes;
    files_[bucket].AppendAll(page);
  }
  page.Clear();
}

Result<KvBuffer> BucketFileManager::TakeBucket(int bucket) {
  CHECK(pages_[bucket].empty()) << "FlushAll must run before TakeBucket";
  if (coded()) return TakeBucketCoded(bucket);
  KvBuffer result = std::move(files_[bucket]);
  files_[bucket] = KvBuffer();
  if (result.bytes() == 0) return result;
  trace_->DiskRead(result.bytes(), OpTag::kReduceSpill);
  metrics_->reduce_spill_read_bytes += result.bytes();
  if (integrity_ == nullptr || !integrity_->checksums) return result;

  // Verified read: the "disk" holds the framed image of the recorded
  // page flushes; read it back through the checksum layer.
  const std::string framed =
      FrameBytes(result.data(), integrity_->block_bytes);
  metrics_->checksum_overhead_bytes += framed.size() - result.bytes();
  const int64_t expect = static_cast<int64_t>(result.bytes());
  const int chain =
      plan_ == nullptr
          ? 0
          : plan_->CorruptionChain(sim::StreamKind::kBucketFile, owner_,
                                   static_cast<uint64_t>(bucket));
  for (int gen = 0; gen < chain; ++gen) {
    // Generation `gen` of this file is corrupt: damage a copy, prove the
    // verifier catches it, then rebuild from the recorded inputs —
    // re-flushing the pages and re-reading the file, charged for real.
    metrics_->verify_bytes += result.bytes();
    sim::CorruptionEvent ev = plan_->CorruptionDamage(
        sim::StreamKind::kBucketFile, owner_,
        static_cast<uint64_t>(bucket), gen, framed.size());
    CHECK(ev.fires());
    std::string damaged = framed;
    if (ev.torn) {
      TornTruncate(&damaged, static_cast<uint64_t>(ev.bit) / 8);
    } else {
      FlipBit(&damaged, static_cast<uint64_t>(ev.bit));
    }
    const Status verdict = VerifyFramed(damaged, expect);
    CHECK(!verdict.ok()) << "undetected injected corruption";
    ++metrics_->corruptions_detected;
    if (ev.torn) ++metrics_->torn_writes_detected;
    const sim::RetryPolicy& retry = plan_->config().corruption_retry;
    if (gen >= retry.max_retries) {
      return Status::Corruption(
          "bucket " + std::to_string(bucket) + " of spill manager " +
          std::to_string(owner_) + ": corrupt beyond " +
          std::to_string(retry.max_retries) +
          " rebuilds: " + std::string(verdict.message()));
    }
    trace_->Stall(retry.BackoffFor(gen, (owner_ << 20) ^
                                            static_cast<uint64_t>(bucket)),
                  OpTag::kReduceSpill);
    trace_->DiskWrite(result.bytes(), OpTag::kReduceSpill);
    trace_->DiskRead(result.bytes(), OpTag::kReduceSpill);
    metrics_->corruption_recovery_bytes += 2 * result.bytes();
    ++metrics_->corruptions_recovered;
  }
  Result<std::string> payload = ReadAllFramed(framed, expect);
  CHECK(payload.ok()) << payload.status().ToString();
  metrics_->verify_bytes += result.bytes();
  CHECK(payload.value() == result.data());
  return KvBuffer::FromData(std::move(payload).value(), result.count());
}

Result<KvBuffer> BucketFileManager::TakeBucketCoded(int bucket) {
  // Mirrors TakeBucket's verified read, except the disk image is the
  // encoded block stream: the read charge, the framing, the injected
  // corruption, and the rebuild accounting all cover encoded bytes, and
  // the stream is decoded only after verification passes.
  const std::string enc = std::move(enc_files_[bucket]);
  enc_files_[bucket].clear();
  const uint64_t raw_bytes = raw_file_bytes_[bucket];
  const uint64_t raw_records = raw_file_records_[bucket];
  raw_file_bytes_[bucket] = 0;
  raw_file_records_[bucket] = 0;
  if (enc.empty()) return KvBuffer();
  trace_->DiskRead(enc.size(), OpTag::kReduceSpill);
  metrics_->reduce_spill_read_bytes += enc.size();
  if (integrity_ != nullptr && integrity_->checksums) {
    const std::string framed = FrameBytes(enc, integrity_->block_bytes);
    metrics_->checksum_overhead_bytes += framed.size() - enc.size();
    const int64_t expect = static_cast<int64_t>(enc.size());
    const int chain =
        plan_ == nullptr
            ? 0
            : plan_->CorruptionChain(sim::StreamKind::kBucketFile, owner_,
                                     static_cast<uint64_t>(bucket));
    for (int gen = 0; gen < chain; ++gen) {
      metrics_->verify_bytes += enc.size();
      sim::CorruptionEvent ev = plan_->CorruptionDamage(
          sim::StreamKind::kBucketFile, owner_,
          static_cast<uint64_t>(bucket), gen, framed.size());
      CHECK(ev.fires());
      std::string damaged = framed;
      if (ev.torn) {
        TornTruncate(&damaged, static_cast<uint64_t>(ev.bit) / 8);
      } else {
        FlipBit(&damaged, static_cast<uint64_t>(ev.bit));
      }
      const Status verdict = VerifyFramed(damaged, expect);
      CHECK(!verdict.ok()) << "undetected injected corruption";
      ++metrics_->corruptions_detected;
      if (ev.torn) ++metrics_->torn_writes_detected;
      const sim::RetryPolicy& retry = plan_->config().corruption_retry;
      if (gen >= retry.max_retries) {
        return Status::Corruption(
            "bucket " + std::to_string(bucket) + " of spill manager " +
            std::to_string(owner_) + ": corrupt beyond " +
            std::to_string(retry.max_retries) +
            " rebuilds: " + std::string(verdict.message()));
      }
      trace_->Stall(retry.BackoffFor(gen, (owner_ << 20) ^
                                              static_cast<uint64_t>(bucket)),
                    OpTag::kReduceSpill);
      trace_->DiskWrite(enc.size(), OpTag::kReduceSpill);
      trace_->DiskRead(enc.size(), OpTag::kReduceSpill);
      metrics_->corruption_recovery_bytes += 2 * enc.size();
      ++metrics_->corruptions_recovered;
    }
    Result<std::string> payload = ReadAllFramed(framed, expect);
    CHECK(payload.ok()) << payload.status().ToString();
    metrics_->verify_bytes += enc.size();
    CHECK(payload.value() == enc);
  }
  CodecStats dstats;
  Result<KvBuffer> dec = DecodeKvStream(enc, &dstats);
  if (!dec.ok()) return dec.status();
  trace_->Cpu(costs_->decompress_byte_s * static_cast<double>(raw_bytes),
              OpTag::kReduceSpill);
  metrics_->decompress_ns += dstats.decompress_ns;
  KvBuffer out = std::move(dec).value();
  CHECK_EQ(out.bytes(), raw_bytes);
  CHECK_EQ(out.count(), raw_records);
  return out;
}

void BucketFileManager::SaveTo(CheckpointWriter* w) const {
  w->PutU64("bkt.buckets", static_cast<uint64_t>(num_buckets()));
  w->PutU64("bkt.coded", coded() ? 1 : 0);
  w->PutU64("bkt.buffered_bytes", buffered_bytes_);
  w->PutU64("bkt.spilled_bytes", spilled_bytes_);
  w->PutU64("bkt.spilled_records", spilled_records_);
  for (int b = 0; b < num_buckets(); ++b) {
    const std::string tag = std::to_string(b);
    w->PutU64("bkt.page_n." + tag, pages_[b].count());
    w->PutBytes("bkt.page." + tag, pages_[b].data());
    if (coded()) {
      w->PutBytes("bkt.enc." + tag, enc_files_[b]);
      w->PutU64("bkt.raw_bytes." + tag, raw_file_bytes_[b]);
      w->PutU64("bkt.raw_records." + tag, raw_file_records_[b]);
    } else {
      w->PutU64("bkt.file_n." + tag, files_[b].count());
      w->PutBytes("bkt.file." + tag, files_[b].data());
    }
  }
}

Status BucketFileManager::RestoreFrom(CheckpointReader* r) {
  uint64_t buckets = 0, was_coded = 0;
  RETURN_IF_ERROR(r->GetU64("bkt.buckets", &buckets));
  RETURN_IF_ERROR(r->GetU64("bkt.coded", &was_coded));
  if (buckets != static_cast<uint64_t>(num_buckets()) ||
      was_coded != (coded() ? 1u : 0u)) {
    return Status::Corruption(
        "checkpointed bucket manager shape does not match this config");
  }
  RETURN_IF_ERROR(r->GetU64("bkt.buffered_bytes", &buffered_bytes_));
  RETURN_IF_ERROR(r->GetU64("bkt.spilled_bytes", &spilled_bytes_));
  RETURN_IF_ERROR(r->GetU64("bkt.spilled_records", &spilled_records_));
  for (int b = 0; b < num_buckets(); ++b) {
    const std::string tag = std::to_string(b);
    uint64_t n = 0;
    std::string_view bytes;
    RETURN_IF_ERROR(r->GetU64("bkt.page_n." + tag, &n));
    RETURN_IF_ERROR(r->GetBytes("bkt.page." + tag, &bytes));
    pages_[b] = KvBuffer::FromData(std::string(bytes), n);
    if (coded()) {
      RETURN_IF_ERROR(r->GetBytes("bkt.enc." + tag, &bytes));
      enc_files_[b].assign(bytes);
      RETURN_IF_ERROR(
          r->GetU64("bkt.raw_bytes." + tag, &raw_file_bytes_[b]));
      RETURN_IF_ERROR(
          r->GetU64("bkt.raw_records." + tag, &raw_file_records_[b]));
    } else {
      RETURN_IF_ERROR(r->GetU64("bkt.file_n." + tag, &n));
      RETURN_IF_ERROR(r->GetBytes("bkt.file." + tag, &bytes));
      files_[b] = KvBuffer::FromData(std::string(bytes), n);
    }
  }
  return Status::OK();
}

}  // namespace onepass
