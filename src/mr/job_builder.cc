#include "src/mr/job_builder.h"

#include <vector>

#include "src/mr/job_chain.h"

namespace onepass {

Status JobBuilder::Validate() const {
  if (!spec_.mapper) {
    return Status::InvalidArgument("job '" + spec_.name +
                                   "' has no mapper factory");
  }
  const bool has_inc = static_cast<bool>(spec_.inc);
  const bool has_reducer = static_cast<bool>(spec_.reducer);
  switch (config_.engine) {
    case EngineKind::kIncHash:
    case EngineKind::kDincHash:
      if (!has_inc) {
        return Status::InvalidArgument(
            "engine " + std::string(EngineKindName(config_.engine)) +
            " requires an IncrementalReducer (init/cb/fn)");
      }
      break;
    case EngineKind::kSortMerge:
      if (!has_reducer && !(has_inc && config_.map_side_combine)) {
        return Status::InvalidArgument(
            "sort-merge requires a Reducer, or an IncrementalReducer "
            "with map-side combining");
      }
      break;
    case EngineKind::kMRHash:
      if (!has_reducer) {
        return Status::InvalidArgument("MR-hash requires a Reducer");
      }
      break;
  }
  if (config_.chunk_bytes == 0 || config_.map_buffer_bytes == 0 ||
      config_.reduce_memory_bytes == 0) {
    return Status::InvalidArgument("buffer and chunk sizes must be > 0");
  }
  if (config_.merge_factor < 2) {
    return Status::InvalidArgument("merge factor must be >= 2");
  }
  if (config_.dinc_coverage_threshold < 0 ||
      config_.dinc_coverage_threshold > 1) {
    return Status::InvalidArgument("coverage threshold must be in [0, 1]");
  }
  if (config_.dinc_coverage_threshold > 0 &&
      config_.engine != EngineKind::kDincHash) {
    return Status::InvalidArgument(
        "coverage-based early termination is a DINC-hash feature");
  }
  if (config_.pipelining && config_.engine != EngineKind::kSortMerge) {
    return Status::InvalidArgument(
        "pipelining applies to the sort-merge engine (hash engines are "
        "already incremental)");
  }
  if (config_.snapshots < 0) {
    return Status::InvalidArgument("snapshots must be >= 0");
  }
  const ClusterConfig& cl = config_.cluster;
  if (cl.nodes < 1 || cl.cores_per_node < 1 || cl.map_slots < 1 ||
      cl.reduce_slots < 1 || config_.reducers_per_node < 1) {
    return Status::InvalidArgument("invalid cluster shape");
  }
  return Status::OK();
}

Result<JobResult> JobBuilder::Run(const ChunkStore& input) const {
  RETURN_IF_ERROR(Validate());
  return LocalCluster::RunJob(spec_, config_, input);
}

Result<ChainResult> JobBuilder::RunChain(const ChunkStore& input) const {
  RETURN_IF_ERROR(Validate());
  const int n = config_.iterations < 1 ? 1 : config_.iterations;
  std::vector<ChainStage> stages(static_cast<size_t>(n));
  for (ChainStage& st : stages) {
    st.spec = spec_;
    st.config = config_;
    st.input = &input;
  }
  return RunJobChain(stages);
}

}  // namespace onepass
