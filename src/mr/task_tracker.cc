#include "src/mr/task_tracker.h"

#include <algorithm>

#include "src/common/logging.h"

namespace onepass {

TaskTracker::TaskTracker(int num_maps, int num_reduces, int max_attempts)
    : max_attempts_(max_attempts),
      maps_(num_maps),
      reduces_(num_reduces) {
  CHECK_GE(max_attempts, 1);
}

TaskTracker::TaskRec& TaskTracker::rec(TaskKind kind, int task) {
  auto& v = kind == TaskKind::kMap ? maps_ : reduces_;
  return v[static_cast<size_t>(task)];
}

const TaskTracker::TaskRec& TaskTracker::rec(TaskKind kind, int task) const {
  const auto& v = kind == TaskKind::kMap ? maps_ : reduces_;
  return v[static_cast<size_t>(task)];
}

TaskAttempt& TaskTracker::at(TaskKind kind, int task, int attempt) {
  return log_[rec(kind, task).attempt_log_idx[static_cast<size_t>(attempt)]];
}

const TaskAttempt& TaskTracker::attempt(TaskKind kind, int task,
                                        int attempt) const {
  return log_[rec(kind, task).attempt_log_idx[static_cast<size_t>(attempt)]];
}

bool TaskTracker::CanStart(TaskKind kind, int task) const {
  // Preempted attempts don't count against the budget.
  int budgeted = 0;
  for (int idx : rec(kind, task).attempt_log_idx) {
    if (log_[static_cast<size_t>(idx)].state != AttemptState::kPreempted) {
      ++budgeted;
    }
  }
  return budgeted < max_attempts_;
}

int TaskTracker::StartAttempt(TaskKind kind, int task, int node,
                              bool speculative, double now) {
  TaskRec& r = rec(kind, task);
  CHECK(CanStart(kind, task));
  TaskAttempt a;
  a.kind = kind;
  a.task = task;
  a.attempt = static_cast<int>(r.attempt_log_idx.size());
  a.node = node;
  a.speculative = speculative;
  a.start_time = now;
  r.attempt_log_idx.push_back(static_cast<int>(log_.size()));
  log_.push_back(a);
  if (speculative) ++speculative_;
  return a.attempt;
}

void TaskTracker::AddWork(TaskKind kind, int task, int attempt, double cpu_s,
                          uint64_t io_bytes) {
  TaskAttempt& a = at(kind, task, attempt);
  a.cpu_s += cpu_s;
  a.io_bytes += io_bytes;
}

void TaskTracker::Succeeded(TaskKind kind, int task, int attempt,
                            double now) {
  TaskAttempt& a = at(kind, task, attempt);
  CHECK(a.state == AttemptState::kRunning);
  a.state = AttemptState::kSucceeded;
  a.end_time = now;
  success_durations_[static_cast<int>(kind)].push_back(now - a.start_time);
  if (a.speculative) ++speculative_wins_;
}

void TaskTracker::Killed(TaskKind kind, int task, int attempt, double now) {
  TaskAttempt& a = at(kind, task, attempt);
  CHECK(a.state == AttemptState::kRunning);
  a.state = AttemptState::kKilled;
  a.end_time = now;
  ++killed_;
  wasted_cpu_s_ += a.cpu_s;
  recovery_bytes_ += a.io_bytes;
}

void TaskTracker::Preempted(TaskKind kind, int task, int attempt,
                            double now) {
  TaskAttempt& a = at(kind, task, attempt);
  CHECK(a.state == AttemptState::kRunning);
  a.state = AttemptState::kPreempted;
  a.end_time = now;
  ++preempted_;
  // The evicted attempt's work is redone from scratch, same as a kill.
  wasted_cpu_s_ += a.cpu_s;
  recovery_bytes_ += a.io_bytes;
}

int TaskTracker::attempts_started(TaskKind kind, int task) const {
  return static_cast<int>(rec(kind, task).attempt_log_idx.size());
}

int TaskTracker::alive_attempts(TaskKind kind, int task) const {
  int alive = 0;
  for (int idx : rec(kind, task).attempt_log_idx) {
    if (log_[static_cast<size_t>(idx)].state == AttemptState::kRunning) {
      ++alive;
    }
  }
  return alive;
}

double TaskTracker::MedianSuccessDuration(TaskKind kind) const {
  std::vector<double> d = success_durations_[static_cast<int>(kind)];
  if (d.empty()) return 0;
  const size_t mid = d.size() / 2;
  std::nth_element(d.begin(), d.begin() + static_cast<long>(mid), d.end());
  return d[mid];
}

int TaskTracker::successes(TaskKind kind) const {
  return static_cast<int>(success_durations_[static_cast<int>(kind)].size());
}

void TaskTracker::ExportMetrics(JobMetrics* m) const {
  for (const TaskRec& r : maps_) {
    m->map_task_attempts += r.attempt_log_idx.size();
  }
  for (const TaskRec& r : reduces_) {
    m->reduce_task_attempts += r.attempt_log_idx.size();
  }
  m->killed_attempts += killed_;
  m->preempted_attempts += preempted_;
  m->speculative_attempts += speculative_;
  m->speculative_wins += speculative_wins_;
  m->recovery_bytes += recovery_bytes_;
  m->wasted_cpu_s += wasted_cpu_s_;
}

}  // namespace onepass
