// Resident shuffle support (DESIGN.md §5.9): the M3R-style layer that
// lets iterative and repeated jobs stop paying disk for the shuffle.
//
// Three pieces, all simulation-plane state:
//
//   ResidentSegmentCache — per-node, byte-budgeted admission of map push
//     segments in publish order. A segment that stays admitted is
//     "resident": its publish write and any retention-window re-read are
//     charged at memory speed. When a node exceeds its budget the oldest
//     segments are evicted to the ordinary block-codec spill path (their
//     disk-mode charges are kept), so correctness never depends on the
//     working set fitting.
//
//   PartitionPlacement — the registry that pins partition→node assignment
//     across a chain: which node finished each reduce partition and which
//     node produced each map task's output. The next iteration schedules
//     reducers on their prior nodes and prefers the prior map replica, so
//     resident state and cached input are actually co-located with the
//     tasks that reuse them.
//
//   ResidentStateHandle — a finished job's reduce-engine state (the
//     INC/DINC FlatTable image, serialized through the checkpoint field
//     codec) kept in memory so the next job in the chain adopts it instead
//     of re-aggregating unchanged keys.
//
// None of this changes the data plane: phases 1-3 run identically under
// kDisk and kResident, so outputs are byte-identical by construction. Only
// the phase-4 time plane sees different charges.

#ifndef ONEPASS_MR_RESIDENT_H_
#define ONEPASS_MR_RESIDENT_H_

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "src/mr/config.h"
#include "src/util/kv_buffer.h"

namespace onepass {

class ChunkStore;

// Simulates per-node admission of push segments under a byte budget.
// Driven in publish order (the provisional replay's delivery order) by
// PrepareJob's resident trace transform; has no data-plane role.
class ResidentSegmentCache {
 public:
  // `budget_bytes` caps each node's resident segment bytes; 0 = unbounded.
  ResidentSegmentCache(int nodes, uint64_t budget_bytes)
      : budget_(budget_bytes), segments_(nodes), bytes_(nodes, 0) {}

  // Admits one segment published on `node` and returns the (map_task,
  // partition) segments evicted — oldest first — to get the node back
  // under budget. A segment larger than the whole budget is evicted
  // immediately (it is its own first victim).
  std::vector<std::pair<int, uint32_t>> Admit(int node, int map_task,
                                              uint32_t partition,
                                              uint64_t bytes);

  uint64_t resident_bytes(int node) const { return bytes_[node]; }

 private:
  struct Seg {
    int map_task;
    uint32_t partition;
    uint64_t bytes;
  };
  uint64_t budget_;
  std::vector<std::deque<Seg>> segments_;  // per node, oldest first
  std::vector<uint64_t> bytes_;            // per node resident total
};

// Which node owns each partition after a job: reduce_node[r] is the node
// whose attempt completed reduce partition r; map_node[m] is the node
// whose attempt published map task m's output. Captured from the
// authoritative replay, fed to the next iteration's task placement.
struct PartitionPlacement {
  std::vector<int> reduce_node;
  std::vector<int> map_node;

  bool empty() const { return reduce_node.empty() && map_node.empty(); }
};

// A finished job's per-reducer engine state, held in memory between chain
// iterations. states[r] is reducer r's checkpoint field stream (the same
// serialization SaveCheckpoint produces); raw_bytes[r] its size, which is
// what the time plane charges for the save and the adopt.
struct ResidentStateHandle {
  std::vector<KvBuffer> states;
  std::vector<uint64_t> raw_bytes;
  // Chain-compatibility stamp: adoption requires the same engine kind and
  // seed (the hash family, and therefore FlatTable layout, derives from
  // the seed).
  EngineKind engine = EngineKind::kIncHash;
  uint64_t seed = 0;

  bool empty() const { return states.empty(); }
  int reducers() const { return static_cast<int>(states.size()); }
};

// Everything PrepareJob needs to run one iteration of a resident chain.
// All pointers are borrowed; null members simply disable that feature, so
// a default-constructed context is a cold resident job.
struct ResidentContext {
  // Prior iteration's reduce state to adopt (INC/DINC only; null = cold).
  const ResidentStateHandle* prior_state = nullptr;
  // Prior iteration's placement; pins reducers to their nodes and prefers
  // the prior map replica. Null = default placement.
  const PartitionPlacement* placement = nullptr;
  // When non-null, phase 3 saves each reducer's pre-Finish engine state
  // here for the next iteration to adopt.
  ResidentStateHandle* save_state = nullptr;
  // The previous iteration's input store. When the current job reads the
  // same store, map input is served from the M3R-style input cache at
  // memory speed instead of disk.
  const ChunkStore* prior_input = nullptr;
};

}  // namespace onepass

#endif  // ONEPASS_MR_RESIDENT_H_
