// JobManager: multi-tenant admission control and scheduling for a stream
// of MapReduce jobs sharing one simulated cluster (DESIGN.md §5.7).
//
// The historical RunJob gives a job the whole cluster; the JobManager
// instead admits a stream of submissions, runs each job's data plane
// lazily when the job is dispatched (LocalCluster::PrepareJob), and
// replays many jobs concurrently on one shared SlotPool:
//
//   * Admission control — at most max_concurrent_jobs replay at once and
//     at most max_queued_jobs wait. A submission arriving past both
//     bounds is *rejected immediately* with Status::Unavailable (typed
//     backpressure the client can act on) rather than hanging — graceful
//     degradation under burst overload.
//   * Fair-share scheduling — the pool arbitrates task slots by tenant
//     weight (SchedulePolicy::kFairShare), optionally evicting running
//     map attempts of over-share tenants (preemption) and capping a
//     tenant's cluster-wide running tasks (TenantSpec::max_running_tasks).
//     SchedulePolicy::kFifo is the baseline: strict arrival order.
//   * Per-job deadlines — a job not finished deadline_s after arrival is
//     aborted (or dequeued) with Status::DeadlineExceeded.
//   * Job-level retries — a failed job (e.g. max_attempts exhausted under
//     its fault plan) re-runs up to max_job_retries times, backing off
//     per the shared sim::RetryPolicy; each retry is a fresh run of the
//     job under a derived seed, dispatched ahead of the waiting queue.
//
// Everything is deterministic: submissions replay on one sim::Engine,
// job j's events carry stream tag j + 1 (see src/sim/event_queue.h), and
// every scheduling decision is a pure function of the registered state.
// Two Run() calls with the same inputs produce identical ManagerResults
// at every data_plane_threads setting.

#ifndef ONEPASS_MR_JOB_MANAGER_H_
#define ONEPASS_MR_JOB_MANAGER_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/dfs/chunk_store.h"
#include "src/mr/cluster.h"
#include "src/mr/job_chain.h"
#include "src/mr/slot_pool.h"
#include "src/sim/retry_policy.h"
#include "src/sim/timeline.h"

namespace onepass {

// A tenant sharing the cluster. Weight sets the fair-share target (a
// tenant at weight 2 may hold twice the running tasks of one at weight 1
// before yielding); max_running_tasks > 0 additionally hard-caps the
// tenant's cluster-wide running *map* attempts (throttling). Reduces are
// exempt from the cap: a pipelined reduce parks in its slot waiting for
// map deliveries, so capping reduces would deadlock a tenant against its
// own maps.
struct TenantSpec {
  std::string name;
  double weight = 1.0;
  int max_running_tasks = 0;  // 0 = uncapped (map attempts only)
};

struct ManagerConfig {
  // Every submission's JobConfig::cluster must equal this shape — the
  // pool is one physical cluster, not per-job hardware.
  ClusterConfig cluster;

  SchedulePolicy policy = SchedulePolicy::kFairShare;
  bool preemption = true;
  int max_preemptions_per_task = 3;

  // Admission bounds: jobs replaying concurrently / waiting for a slot.
  // max_queued_jobs = 0 rejects whenever all run slots are taken.
  int max_concurrent_jobs = 4;
  int max_queued_jobs = 8;

  // Job-level retries for failed (not rejected / deadline-exceeded) jobs.
  sim::RetryPolicy job_retry{/*base_backoff_s=*/5.0, /*max_retries=*/2};
  int max_job_retries = 0;

  // Tenant table; submissions refer to tenants by index. Empty = one
  // implicit tenant 0 with weight 1.
  std::vector<TenantSpec> tenants;

  // Bin for the cluster-wide utilization series.
  double timeline_bin_s = 30.0;
};

struct JobSubmission {
  JobSpec spec;
  JobConfig config;
  const ChunkStore* input = nullptr;  // must outlive Run()
  int tenant = 0;
  // Simulated arrival time; admission happens at this instant.
  double arrival_time = 0;
  // Abort the job this many seconds after arrival (0 = no deadline).
  double deadline_s = 0;
};

enum class JobOutcomeState : uint8_t {
  kCompleted,
  kRejected,          // admission queue full (Status::Unavailable)
  kFailed,            // non-OK replay/prepare status, retries exhausted
  kDeadlineExceeded,  // aborted or dequeued at the deadline
};

std::string_view JobOutcomeStateName(JobOutcomeState s);

struct JobOutcome {
  JobOutcomeState state = JobOutcomeState::kFailed;
  Status status = Status::OK();
  int tenant = 0;
  int retries = 0;  // extra runs consumed (0 = first run decided it)

  double arrival_time = 0;
  double start_time = -1;   // first dispatch (-1 = never dispatched)
  double finish_time = -1;  // terminal event (completion/rejection/...)

  // Filled for kCompleted only. running_time / map_finish_time are
  // relative to the final dispatch; the series keep absolute cluster
  // time. cpu_util/iowait stay empty — utilization is cluster state
  // (ManagerResult::cpu_util), not a per-job quantity.
  JobResult result;
};

struct TenantStats {
  std::string name;
  int jobs_submitted = 0;
  int jobs_completed = 0;
  int jobs_rejected = 0;
  int jobs_failed = 0;
  int jobs_deadline_exceeded = 0;
  // Sojourn latency (finish - arrival) over completed jobs,
  // nearest-rank percentiles.
  double mean_latency_s = 0;
  double p50_latency_s = 0;
  double p99_latency_s = 0;
  double max_latency_s = 0;
  // Definition 1 progress aggregated across the tenant's *completed* jobs
  // in absolute cluster time: at each sample instant, the mean of the
  // jobs' reduce-progress curves (a job contributes 0 before its start
  // and 100 after its finish, so the series climbs from 0 to 100 as the
  // tenant's work drains). Empty when the tenant completed nothing.
  sim::StepSeries progress;
  double mean_progress_at_makespan_half = 0;  // the curve sampled midway
};

struct ManagerResult {
  std::vector<JobOutcome> jobs;      // by submission index
  std::vector<TenantStats> tenants;  // by tenant id
  double makespan = 0;               // latest terminal event
  // Cluster-average CPU utilization over [0, makespan].
  sim::BinnedSeries cpu_util;
  double avg_cpu_utilization = 0;
  uint64_t preemptions = 0;
  uint64_t throttle_skips = 0;
  int rejected_jobs = 0;
};

class JobManager {
 public:
  // Replays the whole submission batch to completion. Fails fast
  // (InvalidArgument) on malformed configs — mismatched cluster shapes,
  // unknown tenants, negative times; per-job failures land in the
  // outcomes, not in the returned Status.
  static Result<ManagerResult> Run(const ManagerConfig& config,
                                   const std::vector<JobSubmission>& jobs);

  // Runs an iterative job sequence with M3R-style reuse between stages
  // (DESIGN.md §5.9). Chains are solo by construction — each stage's
  // placement must be honored exactly, which a multi-tenant pool cannot
  // promise — so this delegates to RunJobChain rather than the shared
  // SlotPool. See JobBuilder::Iterate for the common same-job-n-times
  // form.
  static Result<ChainResult> RunChain(const std::vector<ChainStage>& stages);
};

}  // namespace onepass

#endif  // ONEPASS_MR_JOB_MANAGER_H_
