#include "src/mr/resident.h"

namespace onepass {

std::vector<std::pair<int, uint32_t>> ResidentSegmentCache::Admit(
    int node, int map_task, uint32_t partition, uint64_t bytes) {
  std::vector<std::pair<int, uint32_t>> evicted;
  auto& q = segments_[node];
  q.push_back(Seg{map_task, partition, bytes});
  bytes_[node] += bytes;
  if (budget_ == 0) return evicted;
  while (bytes_[node] > budget_ && !q.empty()) {
    const Seg victim = q.front();
    q.pop_front();
    bytes_[node] -= victim.bytes;
    evicted.emplace_back(victim.map_task, victim.partition);
  }
  return evicted;
}

}  // namespace onepass
