// Node combine tier (DESIGN.md §5.10): collapse hot keys across
// co-located map tasks before the partition push.
//
// Under JobConfig::combine_scope == kNode, map tasks scheduled on the same
// simulated node do not push their partitioned output directly. Each task
// hands its raw per-partition buffers (MapTaskOutput::node_feed) to the
// node's combiner, and at the node barrier — all co-located tasks done —
// the combiner merges the feeds IN TASK-ID ORDER (the parallel data
// plane's determinism discipline, DESIGN.md §5.3) and emits ONE combined,
// codec-encoded push for the whole node. Hot keys that appear in many
// co-located tasks cross the wire once, multiplicative with the block
// codec (fewer records, then compressed).
//
// Two merge disciplines, matching the map output organization:
//   * hash feeds (kHashInit / kHashCombine): per partition, a FlatTable
//     keyed by the partitioner digest combines duplicate states; output is
//     table insertion order — deterministic for the fixed task-id feed
//     order.
//   * sorted feeds (kSortCombine): per partition, a SortedKvMerger streams
//     the key-ordered feeds and combines key groups; output stays sorted,
//     which the sort-merge reduce engine expects.
//
// Bounded memory (node_combine_budget_bytes > 0): each (node, partition)
// shard owns budget/partitions bytes, measured with
// FlatTable::ApproxMemoryUsage (which wires Arena::ApproxMemoryUsage into
// the accounting). A shard that crosses its share degrades to DINC's
// FREQUENT sketch (PAPER.md §4.3): the table's entries flush to the
// output as partial aggregates, and from then on only the sketch's
// monitored slots keep combining — evicted and rejected records pass
// through uncombined. Exactness is preserved: every input record's
// aggregate contribution appears exactly once in the output, and the
// reducers re-combine duplicates. The sorted discipline streams and never
// degrades (its memory is one merge heap).
//
// The combiner runs on the data plane (parallelizable across nodes; each
// node's combine is independent and share-nothing) and produces the
// virtual combine task's CostTrace: startup, per-record combine CPU at
// OpTag::kNodeCombine, codec compress, and the publish DiskWrite gate.

#ifndef ONEPASS_MR_NODE_COMBINE_H_
#define ONEPASS_MR_NODE_COMBINE_H_

#include <vector>

#include "src/mr/api.h"
#include "src/mr/config.h"
#include "src/mr/cost_trace.h"
#include "src/mr/map_runner.h"
#include "src/util/hash.h"

namespace onepass {

// The virtual combine task one node emits: its trace (replayed like any
// map task), the data-plane counters it accrued, and the single combined
// push (gate_op indexes into `trace`).
struct NodeCombineOutput {
  CostTrace trace;
  JobMetrics metrics;
  PushSegment push;
};

class NodeCombiner {
 public:
  // `partitioner` is h1 (digests match the feeds' FastRangeBucket
  // routing); `inc` is the combine function — required, PrepareJob rejects
  // kNode without one.
  NodeCombiner(const JobConfig& config, const UniversalHash& partitioner,
               int total_partitions, IncrementalReducer* inc);

  // Merges the node_feeds of one node's map tasks, given in task-id
  // order. `sorted` = the feeds are key-ordered (sort path). Const and
  // reentrant: concurrent Run calls over distinct nodes share nothing.
  NodeCombineOutput Run(const std::vector<const MapTaskOutput*>& feeds,
                        bool sorted) const;

 private:
  const JobConfig& config_;
  const UniversalHash& partitioner_;
  int total_partitions_;
  IncrementalReducer* inc_;
};

}  // namespace onepass

#endif  // ONEPASS_MR_NODE_COMBINE_H_
