// TaskTracker: per-task attempt bookkeeping for fault-tolerant scheduling.
//
// Every execution of a task — the original run, a crash-triggered
// re-execution, or a speculative backup — is an *attempt*. The tracker owns
// the attempt log (who ran where, when, and how it ended), enforces the
// per-task attempt budget, accounts the work wasted by killed attempts
// (the per-engine recovery cost ISSUE 1 asks to surface), and answers the
// scheduling policy questions the replayer poses: "may this task start
// another attempt?" and "is this attempt a straggler versus the median?".
//
// The tracker is pure bookkeeping over simulated time: it never touches the
// event queue, so it is trivially deterministic and unit-testable.

#ifndef ONEPASS_MR_TASK_TRACKER_H_
#define ONEPASS_MR_TASK_TRACKER_H_

#include <cstdint>
#include <vector>

#include "src/mr/metrics.h"

namespace onepass {

enum class TaskKind : uint8_t { kMap, kReduce };

enum class AttemptState : uint8_t { kRunning, kSucceeded, kKilled,
                                    kPreempted };

struct TaskAttempt {
  TaskKind kind = TaskKind::kMap;
  int task = 0;       // task index within its kind
  int attempt = 0;    // 0 = original execution
  int node = 0;
  bool speculative = false;
  AttemptState state = AttemptState::kRunning;
  double start_time = 0;
  double end_time = 0;
  // Work completed so far (accounted as waste if the attempt is killed).
  double cpu_s = 0;
  uint64_t io_bytes = 0;  // disk + network payload moved
};

class TaskTracker {
 public:
  TaskTracker(int num_maps, int num_reduces, int max_attempts);

  // Attempt budget: true while the task has started fewer than
  // max_attempts attempts. Preempted attempts are exempt — the scheduler
  // evicted them through no fault of the task, so they never push a task
  // toward the ResourceExhausted failure the budget exists to force.
  bool CanStart(TaskKind kind, int task) const;

  // Records a new running attempt; returns its attempt index. Callers must
  // check CanStart first (starting past the budget CHECK-fails).
  int StartAttempt(TaskKind kind, int task, int node, bool speculative,
                   double now);

  // Accumulates completed work onto a running attempt.
  void AddWork(TaskKind kind, int task, int attempt, double cpu_s,
               uint64_t io_bytes);

  void Succeeded(TaskKind kind, int task, int attempt, double now);

  // Marks the attempt killed and charges its work to waste/recovery.
  void Killed(TaskKind kind, int task, int attempt, double now);

  // Marks the attempt preempted by the slot arbiter (DESIGN.md §5.7):
  // charged to waste like a kill, counted separately, and exempt from the
  // attempt budget.
  void Preempted(TaskKind kind, int task, int attempt, double now);

  const TaskAttempt& attempt(TaskKind kind, int task, int attempt) const;
  int attempts_started(TaskKind kind, int task) const;
  int alive_attempts(TaskKind kind, int task) const;

  // Median duration of *successful* attempts of this kind so far (0 when
  // none) — the speculation baseline.
  double MedianSuccessDuration(TaskKind kind) const;
  int successes(TaskKind kind) const;

  // Folds the attempt/waste counters into `m` (fault-tolerance block).
  void ExportMetrics(JobMetrics* m) const;

  // Full attempt log, in start order across both kinds.
  const std::vector<TaskAttempt>& log() const { return log_; }

 private:
  struct TaskRec {
    std::vector<int> attempt_log_idx;  // indices into log_
  };
  TaskRec& rec(TaskKind kind, int task);
  const TaskRec& rec(TaskKind kind, int task) const;
  TaskAttempt& at(TaskKind kind, int task, int attempt);

  int max_attempts_;
  std::vector<TaskRec> maps_;
  std::vector<TaskRec> reduces_;
  std::vector<TaskAttempt> log_;
  std::vector<double> success_durations_[2];  // by TaskKind
  uint64_t killed_ = 0;
  uint64_t preempted_ = 0;
  uint64_t speculative_ = 0;
  uint64_t speculative_wins_ = 0;
  uint64_t recovery_bytes_ = 0;
  double wasted_cpu_s_ = 0;
};

}  // namespace onepass

#endif  // ONEPASS_MR_TASK_TRACKER_H_
