// Job chains (DESIGN.md §5.9): run a sequence of jobs as one iterative
// computation with M3R-style reuse between stages.
//
// Under shuffle_mode == kResident, each stage after the first inherits:
//   * the PartitionPlacement of its predecessor — reduce partitions pin to
//     the nodes that finished them, map tasks prefer the replica that
//     produced their output, so state and cached input stay local;
//   * (INC/DINC only) a ResidentStateHandle — the predecessor's pre-Finish
//     key->state table, adopted by the fresh engines before any delivery,
//     so unchanged keys are never re-aggregated. Stage k's output is the
//     full refreshed answer over everything stages 0..k consumed: a chain
//     over a base store plus deltas ends exactly where one cold job over
//     the union would (the job_chain test pins this down);
//   * input caching — a stage that re-reads its predecessor's ChunkStore
//     serves map input at memory speed.
//
// Under kDisk every stage is an ordinary cold RunJob; the chain is then
// just a loop, which is precisely the baseline bench_iterative compares
// against.

#ifndef ONEPASS_MR_JOB_CHAIN_H_
#define ONEPASS_MR_JOB_CHAIN_H_

#include <vector>

#include "src/mr/cluster.h"
#include "src/mr/resident.h"

namespace onepass {

// One stage of a chain. `input` is borrowed and must outlive the run.
// Consecutive resident stages must agree on engine kind, seed, cluster
// shape, and reducers_per_node (the carried table's hash family and
// partitioning derive from them).
struct ChainStage {
  JobSpec spec;
  JobConfig config;
  const ChunkStore* input = nullptr;
};

struct ChainResult {
  // Per-stage results, in order. iterations[k].metrics carries the
  // resident counters (hits, spills, adoptions) for stage k.
  std::vector<JobResult> iterations;
  // The final stage's placement, usable to chain further runs.
  PartitionPlacement placement;
};

// Runs the stages in order, threading placement and (when applicable)
// reduce state between them. Fails fast on an invalid or incompatible
// stage; a stage's job failure fails the chain with that stage's status.
Result<ChainResult> RunJobChain(const std::vector<ChainStage>& stages);

}  // namespace onepass

#endif  // ONEPASS_MR_JOB_CHAIN_H_
