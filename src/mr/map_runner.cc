#include "src/mr/map_runner.h"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "src/common/logging.h"
#include "src/engine/sorted_merge.h"
#include "src/model/merge_tree.h"
#include "src/storage/block_format.h"
#include "src/storage/framed_io.h"
#include "src/util/arena.h"
#include "src/util/batch_hash.h"
#include "src/util/crc32c.h"
#include "src/util/flat_table.h"

namespace onepass {

namespace {

// Collects the mapper's emitted pairs with partition tags. Bytes live in an
// arena so entries are cheap to sort.
class CollectingEmitter : public Emitter {
 public:
  struct Entry {
    uint32_t part;
    std::string_view key;
    std::string_view value;
  };

  CollectingEmitter(const UniversalHash* partitioner, int total_partitions)
      : partitioner_(partitioner), total_partitions_(total_partitions) {}

  void Emit(std::string_view key, std::string_view value) override {
    Entry e;
    e.part = static_cast<uint32_t>(
        partitioner_->Bucket(key, total_partitions_));
    e.key = arena_.Copy(key);
    e.value = arena_.Copy(value);
    entries_.push_back(e);
    bytes_ += RecordBytes(key, value);
    ++records_;
  }

  std::vector<Entry>& entries() { return entries_; }
  uint64_t bytes() const { return bytes_; }
  uint64_t records() const { return records_; }

  void Reset() {
    entries_.clear();
    arena_.Reset();
    bytes_ = 0;
  }

 private:
  const UniversalHash* partitioner_;
  int total_partitions_;
  Arena arena_;
  std::vector<Entry> entries_;
  uint64_t bytes_ = 0;
  uint64_t records_ = 0;
};

// Routes emitted pairs straight into per-partition buffers (hash paths),
// optionally applying initialize() per record.
class PartitionEmitter : public Emitter {
 public:
  PartitionEmitter(const UniversalHash* partitioner,
                   std::vector<KvBuffer>* partitions,
                   IncrementalReducer* init_per_record, SimdTier tier)
      : partitioner_(partitioner),
        partitions_(partitions),
        init_(init_per_record),
        tier_(tier) {}

  void Emit(std::string_view key, std::string_view value) override {
    Route(key, value,
          FastRangeBucket((*partitioner_)(key), partitions_->size()));
  }

  // Batch emit: partitioner digests for the whole run at once (§5.8).
  // FastRangeBucket(digest, n) == partitioner.Bucket(key, n) exactly, and
  // records route in batch order, so output is identical to per-emit.
  void EmitBatch(const RecordBatch& batch) override {
    if (digests_.size() < batch.size) digests_.resize(batch.size);
    partitioner_->HashBatch(batch.keys, batch.size, digests_.data(), tier_);
    for (size_t i = 0; i < batch.size; ++i) {
      Route(batch.keys[i], batch.values[i],
            FastRangeBucket(digests_[i], partitions_->size()));
    }
  }

  uint64_t bytes() const { return bytes_; }
  uint64_t records() const { return records_; }

 private:
  void Route(std::string_view key, std::string_view value, uint64_t part) {
    if (init_ != nullptr) {
      const std::string state = init_->Init(key, value);
      (*partitions_)[part].Append(key, state);
      bytes_ += RecordBytes(key, state);
    } else {
      (*partitions_)[part].Append(key, value);
      bytes_ += RecordBytes(key, value);
    }
    ++records_;
  }

  const UniversalHash* partitioner_;
  std::vector<KvBuffer>* partitions_;
  IncrementalReducer* init_;
  SimdTier tier_;
  std::vector<uint64_t> digests_;
  uint64_t bytes_ = 0;
  uint64_t records_ = 0;
};

// Map-side combiner: in-memory hash table of key -> state (§5's Hash-based
// Map Output component). Under hash_core == kFlat the table is a FlatTable
// keyed by the partitioner's digest — computed once per emitted record and
// reused by FlushTo for the partition assignment (FastRangeBucket over the
// cached digest equals partitioner.Bucket exactly). kLegacy keeps the old
// unordered_map for before/after benches.
class CombiningEmitter : public Emitter {
 public:
  CombiningEmitter(IncrementalReducer* inc, const UniversalHash* partitioner,
                   bool use_flat)
      : inc_(inc), partitioner_(partitioner), use_flat_(use_flat) {}

  // Flat-core emits run through a small pending ring (§5.8): Emit hashes
  // the record and prefetches its control word immediately, but the table
  // update happens when the record leaves the ring — up to kRing emits
  // later, by which time the prefetched line has arrived. Drain() empties
  // the ring; MapRunner drains before every flush check, so the update
  // sequence the table sees (and thus every flush boundary, byte count,
  // and combine total) is exactly the per-emit order.
  void Emit(std::string_view key, std::string_view value) override {
    ++records_;
    if (use_flat_) {
      if (pending_ == kRing) ProcessOldest();
      Pending& p = ring_[(head_ + pending_) % kRing];
      p.key.assign(key.data(), key.size());
      p.value.assign(value.data(), value.size());
      p.digest = (*partitioner_)(key);
      flat_.PrefetchProbe(p.digest);
      ++pending_;
      return;
    }
    auto it = table_.find(std::string(key));
    if (it == table_.end()) {
      std::string state = inc_->Init(key, value);
      bytes_ += key.size() + state.size() + 32;
      table_.emplace(std::string(key), std::move(state));
    } else {
      const std::string state = inc_->Init(key, value);
      inc_->Combine(key, &it->second, state);
      ++combines_;
    }
  }

  // Applies every ring-buffered emit to the table, in emit order.
  void Drain() {
    while (pending_ > 0) ProcessOldest();
  }

  // Moves the table's contents into per-partition buffers and clears it.
  // Callers must Drain() first (MapRunner's flush checks already do).
  void FlushTo(const UniversalHash& partitioner,
               std::vector<KvBuffer>* partitions, uint64_t* out_bytes,
               uint64_t* out_records) {
    CHECK_EQ(pending_, 0u) << "FlushTo with undrained pending emits";
    if (use_flat_) {
      flat_.ForEach([&](uint32_t idx) {
        const std::string_view key = flat_.key_at(idx);
        const std::string_view state = flat_.value_at(idx);
        const auto part =
            FastRangeBucket(flat_.hash_at(idx), partitions->size());
        (*partitions)[part].Append(key, state);
        *out_bytes += RecordBytes(key, state);
        ++*out_records;
      });
      flat_.Clear();
      bytes_ = 0;
      return;
    }
    for (auto& [key, state] : table_) {
      const auto part = partitioner.Bucket(key, partitions->size());
      (*partitions)[part].Append(key, state);
      *out_bytes += RecordBytes(key, state);
      ++*out_records;
    }
    table_.clear();
    bytes_ = 0;
  }

  // Adds the flat table's counters to `m` (no-op in legacy mode). Stats
  // survive FlushTo's Clear, so call once after the final flush.
  void FlushStatsTo(JobMetrics* m) const {
    if (use_flat_) flat_.FlushStatsTo(m);
  }

  uint64_t table_bytes() const { return bytes_; }
  uint64_t records() const { return records_; }
  uint64_t combines() const { return combines_; }

 private:
  // Ring depth: the probe prefetch distance — deep enough to hide a miss,
  // shallow enough that the copied key/value stay L1-resident.
  static constexpr size_t kRing = kProbePrefetchDistance;

  struct Pending {
    std::string key;
    std::string value;
    uint64_t digest = 0;
  };

  // Pops the oldest pending emit and applies the original per-emit table
  // update with its precomputed digest.
  void ProcessOldest() {
    Pending& p = ring_[head_];
    head_ = (head_ + 1) % kRing;
    --pending_;
    const uint32_t found = flat_.Find(p.key, p.digest);
    if (found == FlatTable::kNoEntry) {
      const std::string state = inc_->Init(p.key, p.value);
      bytes_ += p.key.size() + state.size() + 32;
      bool inserted = false;
      const uint32_t idx = flat_.FindOrInsert(p.key, p.digest, &inserted);
      flat_.set_value(idx, state);
    } else {
      const std::string state = inc_->Init(p.key, p.value);
      const std::string_view cur = flat_.value_at(found);
      scratch_.assign(cur.data(), cur.size());
      inc_->Combine(p.key, &scratch_, state);
      flat_.set_value(found, scratch_);
      ++combines_;
    }
  }

  IncrementalReducer* inc_;
  const UniversalHash* partitioner_;
  bool use_flat_;
  FlatTable flat_;
  std::string scratch_;
  Pending ring_[kRing];
  size_t head_ = 0;
  size_t pending_ = 0;
  std::unordered_map<std::string, std::string> table_;
  uint64_t bytes_ = 0;
  uint64_t records_ = 0;
  uint64_t combines_ = 0;
};

bool EntryLess(const CollectingEmitter::Entry& a,
               const CollectingEmitter::Entry& b) {
  if (a.part != b.part) return a.part < b.part;
  return a.key < b.key;
}

uint32_t WriteRequests(uint64_t bytes) {
  return std::max<uint32_t>(1, static_cast<uint32_t>(bytes >> 20));
}

}  // namespace

MapOutputMode SelectMapOutputMode(const JobConfig& config, bool has_inc) {
  const bool combine = config.map_side_combine && has_inc;
  switch (config.engine) {
    case EngineKind::kSortMerge:
      return combine ? MapOutputMode::kSortCombine : MapOutputMode::kSortRaw;
    case EngineKind::kMRHash:
      return combine ? MapOutputMode::kHashCombine : MapOutputMode::kHashRaw;
    case EngineKind::kIncHash:
    case EngineKind::kDincHash:
      CHECK(has_inc) << "incremental engines need an IncrementalReducer";
      return combine ? MapOutputMode::kHashCombine : MapOutputMode::kHashInit;
  }
  return MapOutputMode::kSortRaw;
}

MapRunner::MapRunner(const JobConfig& config, MapOutputMode mode,
                     UniversalHash partitioner, int total_partitions,
                     Mapper* mapper, IncrementalReducer* inc,
                     const sim::FaultPlan* faults, int task_index)
    : config_(config),
      mode_(mode),
      partitioner_(partitioner),
      total_partitions_(total_partitions),
      mapper_(mapper),
      inc_(inc),
      faults_(faults),
      task_index_(task_index) {
  CHECK(mapper != nullptr);
  if (ModeProducesStates(mode)) CHECK(inc != nullptr);
}

void StampPushSegmentCrcs(const JobConfig& config, PushSegment* push) {
  if (!config.integrity.checksums) return;
  if (!push->encoded.empty()) {
    // Codec path: the wire/disk image is the encoded block stream, so the
    // CRC covers post-compression bytes (DESIGN.md §5.5).
    push->crcs.reserve(push->encoded.size());
    for (const std::string& enc : push->encoded) {
      push->crcs.push_back(Crc32c(enc));
    }
    return;
  }
  push->crcs.reserve(push->partitions.size());
  for (const KvBuffer& part : push->partitions) {
    push->crcs.push_back(Crc32c(part.data()));
  }
}

void EncodePushSegment(const JobConfig& config, PushSegment* push,
                       bool sorted, OpTag tag, TraceRecorder* trace,
                       JobMetrics* metrics) {
  if (config.block_codec == BlockCodecKind::kNone) return;
  const uint64_t raw_bytes = push->bytes;
  const BlockEncoding encoding =
      sorted ? BlockEncoding::kPrefix : BlockEncoding::kGrouped;
  CodecStats stats;
  push->encoded.reserve(push->partitions.size());
  uint64_t encoded_total = 0;
  for (KvBuffer& part : push->partitions) {
    std::string enc;
    if (!part.empty()) {
      enc = EncodeKvStream(part, encoding, config.block_codec,
                           config.codec_block_bytes, &stats);
    }
    encoded_total += enc.size();
    push->encoded.push_back(std::move(enc));
    part = KvBuffer();  // the encoded image supersedes the raw partition
  }
  trace->Cpu(config.costs.compress_byte_s * static_cast<double>(raw_bytes),
             tag);
  metrics->codec_shuffle_raw_bytes += raw_bytes;
  metrics->codec_shuffle_encoded_bytes += encoded_total;
  metrics->compress_ns += stats.compress_ns;
  push->bytes = encoded_total;
}

void MapRunner::StampPushCrcs(PushSegment* push) const {
  StampPushSegmentCrcs(config_, push);
}

void MapRunner::EncodePush(PushSegment* push, bool sorted,
                           TraceRecorder* trace, JobMetrics* metrics) const {
  EncodePushSegment(config_, push, sorted, OpTag::kMapOutput, trace, metrics);
}

void MapRunner::PublishOrFeed(std::vector<KvBuffer> parts, uint64_t bytes,
                              uint64_t records, bool sorted,
                              TraceRecorder* trace, MapTaskOutput* out) const {
  if (config_.combine_scope == CombineScope::kNode) {
    trace->Cpu(
        config_.costs.node_combine_byte_s * static_cast<double>(bytes),
        OpTag::kNodeCombine);
    out->node_feed = std::move(parts);
    out->node_feed_bytes = bytes;
    out->node_feed_records = records;
    out->metrics.node_combine_input_records += records;
    out->metrics.node_combine_input_bytes += bytes;
    return;
  }
  PushSegment push;
  push.partitions = std::move(parts);
  push.bytes = bytes;
  EncodePush(&push, sorted, trace, &out->metrics);
  trace->DiskWrite(push.bytes, OpTag::kMapOutput, WriteRequests(push.bytes));
  out->metrics.map_output_bytes += push.bytes;
  out->metrics.map_output_records += records;
  push.gate_op = static_cast<uint32_t>(out->trace.ops.size() - 1);
  StampPushCrcs(&push);
  out->pushes.push_back(std::move(push));
}

Result<MapTaskOutput> MapRunner::Run(const KvBuffer& chunk,
                                     const ChunkReadStats* read_stats) const {
  MapTaskOutput out;
  TraceRecorder trace(&out.trace);
  const CostModel& costs = config_.costs;

  // Task startup + input chunk read. A verified DFS read that fell over
  // quarantined replicas paid for each failed full read, and the
  // re-replication write runs on this task's node (it holds the fresh
  // copy's source).
  trace.Cpu(costs.task_start_s, OpTag::kStartup);
  const int chunk_reads =
      read_stats != nullptr && read_stats->replica_reads > 1
          ? read_stats->replica_reads
          : 1;
  for (int i = 0; i < chunk_reads; ++i) {
    trace.DiskRead(chunk.bytes(), OpTag::kMapInput);
  }
  out.metrics.map_input_bytes += chunk.bytes();
  out.metrics.map_input_records += chunk.count();
  if (read_stats != nullptr) {
    out.metrics.verify_bytes += read_stats->verify_bytes;
    out.metrics.checksum_overhead_bytes += read_stats->overhead_bytes;
    out.metrics.corruptions_detected +=
        static_cast<uint64_t>(read_stats->quarantined);
    out.metrics.corruptions_recovered +=
        static_cast<uint64_t>(read_stats->quarantined);
    out.metrics.torn_writes_detected += read_stats->torn;
    out.metrics.quarantined_replicas +=
        static_cast<uint64_t>(read_stats->quarantined);
    out.metrics.rereplicated_bytes += read_stats->rereplicated_bytes;
    out.metrics.corruption_recovery_bytes +=
        static_cast<uint64_t>(chunk_reads - 1) * chunk.bytes() +
        read_stats->rereplicated_bytes;
    if (read_stats->rereplicated_bytes > 0) {
      trace.DiskWrite(read_stats->rereplicated_bytes, OpTag::kMapInput);
    }
  }

  const double map_fn_cost =
      costs.map_fn_byte_s * static_cast<double>(chunk.bytes());

  switch (mode_) {
    case MapOutputMode::kSortRaw:
    case MapOutputMode::kSortCombine:
      RETURN_IF_ERROR(RunSortPath(chunk, map_fn_cost, &trace, &out));
      break;
    case MapOutputMode::kHashRaw:
    case MapOutputMode::kHashInit: {
      std::vector<KvBuffer> parts(total_partitions_);
      PartitionEmitter emitter(
          &partitioner_, &parts,
          mode_ == MapOutputMode::kHashInit ? inc_ : nullptr,
          ResolveSimdTier(config_.simd));
      // Batch plane (§5.8): hand the mapper whole RecordBatches. These
      // paths have no mid-stream thresholds, so any batch size yields the
      // same emit sequence — MapBatch overrides included (they must
      // preserve per-record order, and the default loops Map).
      KvBatchReader reader(chunk, EffectiveBatchRecords(config_));
      for (;;) {
        const size_t bn = reader.Fill();
        if (bn == 0) break;
        const RecordBatch rb{reader.keys(), reader.values(), bn};
        mapper_->MapBatch(rb, &emitter);
        out.metrics.record_batches += 1;
        out.metrics.batched_records += bn;
      }
      trace.Cpu(map_fn_cost, OpTag::kMapFn);
      const double per_record =
          mode_ == MapOutputMode::kHashInit
              ? costs.hash_record_s + costs.combine_record_s
              : costs.hash_record_s;
      trace.Cpu(per_record * static_cast<double>(emitter.records()),
                OpTag::kMapFn);
      PublishOrFeed(std::move(parts), emitter.bytes(), emitter.records(),
                    /*sorted=*/false, &trace, &out);
      out.sorted = false;
      break;
    }
    case MapOutputMode::kHashCombine: {
      std::vector<KvBuffer> parts(total_partitions_);
      CombiningEmitter emitter(inc_, &partitioner_,
                               config_.hash_core == HashCoreKind::kFlat);
      uint64_t out_bytes = 0, out_records = 0;
      // The combiner's flush threshold is checked after every input record
      // (a batched check would move flush boundaries and change output),
      // so records still Map one at a time; batching buys the decoded
      // view staging, and the emitter's pending ring buys probe prefetch
      // within each record's emits. Drain before each check so
      // table_bytes() reflects every emit so far, exactly as per-record.
      KvBatchReader reader(chunk, EffectiveBatchRecords(config_));
      for (;;) {
        const size_t bn = reader.Fill();
        if (bn == 0) break;
        for (size_t i = 0; i < bn; ++i) {
          mapper_->Map(reader.keys()[i], reader.values()[i], &emitter);
          emitter.Drain();
          if (emitter.table_bytes() >= config_.map_buffer_bytes) {
            emitter.FlushTo(partitioner_, &parts, &out_bytes, &out_records);
          }
        }
        out.metrics.record_batches += 1;
        out.metrics.batched_records += bn;
      }
      emitter.FlushTo(partitioner_, &parts, &out_bytes, &out_records);
      emitter.FlushStatsTo(&out.metrics);
      trace.Cpu(map_fn_cost, OpTag::kMapFn);
      trace.Cpu((costs.hash_record_s + costs.combine_record_s) *
                    static_cast<double>(emitter.records()),
                OpTag::kMapFn);
      PublishOrFeed(std::move(parts), out_bytes, out_records,
                    /*sorted=*/false, &trace, &out);
      out.sorted = false;
      break;
    }
  }

  return out;
}

Status MapRunner::RunSortPath(const KvBuffer& chunk, double map_fn_cost,
                              TraceRecorder* trace, MapTaskOutput* out) const {
  const CostModel& costs = config_.costs;
  const bool combine = mode_ == MapOutputMode::kSortCombine;
  const bool coded = config_.block_codec != BlockCodecKind::kNone;
  CollectingEmitter emitter(&partitioner_, total_partitions_);
  // Sorted runs; each run holds per-partition sorted buffers, with the
  // CRC32C recorded at spill time for verification at merge read-back.
  // Under a block codec the runs live on "disk" as per-partition
  // prefix-coded block streams (enc_runs); the raw buffers are dropped at
  // spill time and rebuilt by decoding at merge time, so both the byte
  // charges and the resident memory track the encoded size.
  std::vector<std::vector<KvBuffer>> runs;
  std::vector<std::vector<std::string>> enc_runs;
  std::vector<uint64_t> run_bytes;  // bytes on disk (encoded if coded)
  std::vector<uint32_t> run_crcs;

  // Sorts the buffered entries (combining key groups if enabled) and emits
  // them either as an on-disk run, a pipelined push, or the final output.
  enum class CutKind { kSpill, kFinalOutput };
  auto sort_and_cut = [&](CutKind kind) {
    auto& entries = emitter.entries();
    std::sort(entries.begin(), entries.end(), EntryLess);
    trace->Cpu(costs.SortCost(entries.size()), OpTag::kSort);
    std::vector<KvBuffer> parts(total_partitions_);
    uint64_t bytes = 0, records = 0, combines = 0;
    size_t i = 0;
    while (i < entries.size()) {
      size_t j = i + 1;
      while (combine && j < entries.size() &&
             entries[j].part == entries[i].part &&
             entries[j].key == entries[i].key) {
        ++j;
      }
      if (combine && j > i + 1) {
        std::string state = inc_->Init(entries[i].key, entries[i].value);
        for (size_t k = i + 1; k < j; ++k) {
          const std::string s2 = inc_->Init(entries[k].key,
                                            entries[k].value);
          inc_->Combine(entries[i].key, &state, s2);
          ++combines;
        }
        parts[entries[i].part].Append(entries[i].key, state);
        bytes += RecordBytes(entries[i].key, state);
      } else if (combine) {
        const std::string state = inc_->Init(entries[i].key,
                                             entries[i].value);
        parts[entries[i].part].Append(entries[i].key, state);
        bytes += RecordBytes(entries[i].key, state);
      } else {
        parts[entries[i].part].Append(entries[i].key, entries[i].value);
        bytes += RecordBytes(entries[i].key, entries[i].value);
      }
      ++records;
      i = j;
    }
    if (combine) {
      trace->Cpu(2.0 * costs.combine_record_s *
                     static_cast<double>(entries.size()),
                 OpTag::kMapFn);
    }
    emitter.Reset();

    const bool publish =
        config_.pipelining || kind == CutKind::kFinalOutput;
    if (publish) {
      PublishOrFeed(std::move(parts), bytes, records, /*sorted=*/true, trace,
                    out);
    } else {
      uint64_t disk_bytes = bytes;
      if (coded) {
        CodecStats cstats;
        std::vector<std::string> enc(total_partitions_);
        uint64_t enc_bytes = 0;
        for (int p = 0; p < total_partitions_; ++p) {
          if (parts[p].empty()) continue;
          enc[p] =
              EncodeKvStream(parts[p], BlockEncoding::kPrefix,
                             config_.block_codec, config_.codec_block_bytes,
                             &cstats);
          enc_bytes += enc[p].size();
        }
        trace->Cpu(costs.compress_byte_s * static_cast<double>(bytes),
                   OpTag::kMapSpill);
        out->metrics.codec_map_spill_raw_bytes += bytes;
        out->metrics.codec_map_spill_encoded_bytes += enc_bytes;
        out->metrics.compress_ns += cstats.compress_ns;
        if (config_.integrity.checksums) {
          uint32_t crc = 0;
          for (const std::string& e : enc) crc = Crc32cExtend(crc, e);
          run_crcs.push_back(crc);
        }
        enc_runs.push_back(std::move(enc));
        disk_bytes = enc_bytes;
      } else {
        if (config_.integrity.checksums) {
          uint32_t crc = 0;
          for (const KvBuffer& p : parts) crc = Crc32cExtend(crc, p.data());
          run_crcs.push_back(crc);
        }
        runs.push_back(std::move(parts));
      }
      trace->DiskWrite(disk_bytes, OpTag::kMapSpill,
                       WriteRequests(disk_bytes));
      out->metrics.map_spill_write_bytes += disk_bytes;
      run_bytes.push_back(disk_bytes);
    }
  };

  const double fn_per_record =
      chunk.count() > 0 ? map_fn_cost / static_cast<double>(chunk.count())
                        : 0.0;
  uint64_t cut_bytes = config_.map_buffer_bytes;
  if (config_.pipelining && config_.pipeline_push_bytes > 0) {
    cut_bytes = std::min(cut_bytes, config_.pipeline_push_bytes);
  }
  // The spill cut is checked after every input record, so the sort path
  // keeps per-record Map calls; batching covers the decode (§5.8).
  KvBatchReader reader(chunk, EffectiveBatchRecords(config_));
  for (;;) {
    const size_t bn = reader.Fill();
    if (bn == 0) break;
    for (size_t i = 0; i < bn; ++i) {
      mapper_->Map(reader.keys()[i], reader.values()[i], &emitter);
      trace->Cpu(fn_per_record, OpTag::kMapFn);
      if (emitter.bytes() >= cut_bytes) {
        sort_and_cut(CutKind::kSpill);
      }
    }
    out->metrics.record_batches += 1;
    out->metrics.batched_records += bn;
  }
  out->sorted = true;

  if (config_.pipelining) {
    // Pipelining: every cut (including the remainder) was already pushed.
    sort_and_cut(CutKind::kFinalOutput);
    return Status::OK();
  }

  if (runs.empty()) {
    // The whole chunk's output fit in the map buffer: the sorted buffer is
    // the map output (the paper's recommended operating point for C).
    sort_and_cut(CutKind::kFinalOutput);
    return Status::OK();
  }

  // External sort: cut the remainder as one more run, then merge all runs
  // into the final map output. Physically a single k-way merge; extra
  // passes beyond the merge factor are accounted via the exact merge tree.
  sort_and_cut(CutKind::kSpill);
  const int n_runs = static_cast<int>(run_bytes.size());
  uint64_t total_run_bytes = 0;
  for (uint64_t b : run_bytes) total_run_bytes += b;

  if (config_.integrity.checksums) {
    // Verified read-back of the spilled runs: recompute each run's CRC
    // against the value recorded at spill time, then play out the fault
    // plan's corruption chain for its on-disk image. A corrupt generation
    // is rebuilt — re-sorted from the resident input and rewritten,
    // charged as an extra write + read of the run — until the recovery
    // budget runs out. Under a block codec both the CRC and the damaged
    // image are the *encoded* stream: checksums cover post-compression
    // bytes, exactly what the disk would hold (DESIGN.md §5.5).
    for (int r = 0; r < n_runs; ++r) {
      uint32_t crc = 0;
      if (coded) {
        for (const std::string& e : enc_runs[r]) crc = Crc32cExtend(crc, e);
      } else {
        for (const KvBuffer& p : runs[r]) crc = Crc32cExtend(crc, p.data());
      }
      CHECK_EQ(crc, run_crcs[r]) << "map spill run mutated in memory";
      out->metrics.verify_bytes += run_bytes[r];
      out->metrics.checksum_overhead_bytes +=
          FramedOverheadBytes(run_bytes[r], config_.integrity.block_bytes);
      const int chain =
          faults_ == nullptr
              ? 0
              : faults_->CorruptionChain(sim::StreamKind::kMapSpillRun,
                                         static_cast<uint64_t>(task_index_),
                                         static_cast<uint64_t>(r));
      for (int gen = 0; gen < chain; ++gen) {
        std::string image;
        image.reserve(run_bytes[r]);
        if (coded) {
          for (const std::string& e : enc_runs[r]) image.append(e);
        } else {
          for (const KvBuffer& p : runs[r]) image.append(p.data());
        }
        std::string framed =
            FrameBytes(image, config_.integrity.block_bytes);
        const sim::CorruptionEvent ev = faults_->CorruptionDamage(
            sim::StreamKind::kMapSpillRun,
            static_cast<uint64_t>(task_index_), static_cast<uint64_t>(r),
            gen, framed.size());
        CHECK(ev.fires());
        if (ev.torn) {
          TornTruncate(&framed, static_cast<uint64_t>(ev.bit) / 8);
        } else {
          FlipBit(&framed, static_cast<uint64_t>(ev.bit));
        }
        CHECK(!VerifyFramed(framed, static_cast<int64_t>(image.size())).ok())
            << "undetected injected corruption";
        ++out->metrics.corruptions_detected;
        if (ev.torn) ++out->metrics.torn_writes_detected;
        const sim::RetryPolicy& retry = faults_->config().corruption_retry;
        if (gen >= retry.max_retries) {
          return Status::Corruption(
              "map task " + std::to_string(task_index_) + " spill run " +
              std::to_string(r) + ": corrupt beyond " +
              std::to_string(retry.max_retries) + " rebuilds");
        }
        trace->Stall(
            retry.BackoffFor(gen, (static_cast<uint64_t>(task_index_) << 20) ^
                                      static_cast<uint64_t>(r)),
            OpTag::kMapSpill);
        trace->DiskWrite(run_bytes[r], OpTag::kMapSpill);
        trace->DiskRead(run_bytes[r], OpTag::kMapSpill);
        out->metrics.corruption_recovery_bytes += 2 * run_bytes[r];
        ++out->metrics.corruptions_recovered;
      }
    }
  }

  if (coded) {
    // Read the encoded runs back: decode each partition's block stream
    // into the raw sorted buffers the merge consumes, charging the decode
    // CPU for the raw bytes reproduced.
    CodecStats dstats;
    uint64_t decoded_raw = 0;
    runs.resize(n_runs);
    for (int r = 0; r < n_runs; ++r) {
      runs[r].resize(total_partitions_);
      for (int p = 0; p < total_partitions_; ++p) {
        const std::string& enc = enc_runs[r][p];
        if (enc.empty()) continue;
        Result<KvBuffer> dec = DecodeKvStream(enc, &dstats);
        CHECK(dec.ok()) << dec.status().ToString();
        runs[r][p] = std::move(dec).value();
        decoded_raw += runs[r][p].bytes();
      }
      enc_runs[r].clear();
    }
    trace->Cpu(costs.decompress_byte_s * static_cast<double>(decoded_raw),
               OpTag::kMapMerge);
    out->metrics.decompress_ns += dstats.decompress_ns;
  }

  std::vector<KvBuffer> final_parts(total_partitions_);
  uint64_t out_bytes = 0, out_records = 0, total_records = 0, combines = 0;
  for (int p = 0; p < total_partitions_; ++p) {
    std::vector<const KvBuffer*> inputs;
    uint64_t in_bytes = 0;
    for (auto& run : runs) {
      if (!run[p].empty()) {
        inputs.push_back(&run[p]);
        in_bytes += run[p].bytes();
      }
    }
    if (inputs.empty()) continue;
    // The merged partition is at most the sum of its runs (combining can
    // only shrink it); one reservation avoids growth reallocations.
    final_parts[p].Reserve(in_bytes);
    SortedKvMerger merger(std::move(inputs));
    if (combine) {
      std::string_view key;
      std::vector<std::string_view> values;
      while (merger.NextGroup(&key, &values)) {
        if (values.size() == 1) {
          final_parts[p].Append(key, values[0]);
        } else {
          std::string state(values[0]);
          for (size_t i2 = 1; i2 < values.size(); ++i2) {
            inc_->Combine(key, &state, values[i2]);
            ++combines;
          }
          final_parts[p].Append(key, state);
        }
      }
    } else {
      std::string_view key, value;
      while (merger.Next(&key, &value)) final_parts[p].Append(key, value);
    }
    total_records += merger.records_merged();
    out_records += final_parts[p].count();
    out_bytes += final_parts[p].bytes();
    // The reservation above sized for the pre-combine sum; release the
    // slack so resident map output tracks what will actually ship.
    final_parts[p].ShrinkToFit();
  }

  trace->DiskRead(total_run_bytes, OpTag::kMapMerge,
                  std::max<uint32_t>(1, n_runs));
  out->metrics.map_spill_read_bytes += total_run_bytes;
  trace->Cpu(costs.MergeCost(total_records) +
                 costs.combine_record_s * static_cast<double>(combines),
             OpTag::kMapMerge);
  if (n_runs > config_.merge_factor) {
    const double avg_run = static_cast<double>(total_run_bytes) / n_runs;
    const MergeTreeStats stats =
        SimulateMergeTree(n_runs, avg_run, config_.merge_factor);
    const uint64_t extra =
        static_cast<uint64_t>(stats.background_merge_bytes);
    if (extra > 0) {
      trace->DiskWrite(extra, OpTag::kMapMerge);
      trace->DiskRead(extra, OpTag::kMapMerge);
      out->metrics.map_spill_write_bytes += extra;
      out->metrics.map_spill_read_bytes += extra;
      const double rec_bytes =
          total_records > 0
              ? static_cast<double>(total_run_bytes) / total_records
              : 64.0;
      trace->Cpu(
          costs.MergeCost(static_cast<uint64_t>(extra / rec_bytes)),
          OpTag::kMapMerge);
    }
  }
  PublishOrFeed(std::move(final_parts), out_bytes, out_records,
                /*sorted=*/true, trace, out);
  return Status::OK();
}

}  // namespace onepass
