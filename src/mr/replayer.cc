#include "src/mr/replayer.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/mr/cluster.h"

namespace onepass {

Replayer::Activity Replayer::Categorize(bool is_map_task, OpTag tag) {
  if (is_map_task) return Activity::kMap;
  switch (tag) {
    case OpTag::kShuffle:
      return Activity::kShuffle;
    case OpTag::kReduceSpill:
    case OpTag::kReduceMerge:
      return Activity::kMerge;
    case OpTag::kCombine:
    case OpTag::kReduceFn:
    case OpTag::kOutput:
      return Activity::kReduce;
    default:
      return Activity::kNone;
  }
}

Replayer::Replayer(sim::Engine* engine, SlotPool* pool,
                   const JobConfig& config, const sim::FaultPlan& plan,
                   std::vector<MapTaskIn> maps,
                   std::vector<ReduceTaskIn> reduces, Totals totals,
                   Options options)
    : config_(config),
      plan_(plan),
      maps_(std::move(maps)),
      reduces_(std::move(reduces)),
      totals_(totals),
      tracker_(static_cast<int>(maps_.size()),
               static_cast<int>(reduces_.size()),
               config.faults.max_attempts),
      opts_(options),
      stream_(options.stream),
      engine_(engine),
      pool_(pool) {
  CHECK_EQ(pool_->num_nodes(), config.cluster.nodes);
  dead_.assign(static_cast<size_t>(pool_->num_nodes()), 0);
  map_winner_.assign(maps_.size(), -1);
  reduce_winner_.assign(reduces_.size(), -1);
  map_states_.resize(maps_.size());
  reduce_states_.resize(reduces_.size());
  preempt_count_.assign(maps_.size(), 0);
  push_ready_.resize(maps_.size());
  push_src_.resize(maps_.size());
  push_gen_.resize(maps_.size());
  gate_of_.resize(maps_.size());
  map_delta_applied_.resize(maps_.size());
  for (size_t m = 0; m < maps_.size(); ++m) {
    if (maps_[m].replicas.empty()) maps_[m].replicas = {maps_[m].node};
    push_ready_[m].assign(maps_[m].num_pushes, -1.0);
    push_src_[m].assign(maps_[m].num_pushes, -1);
    push_gen_[m].assign(maps_[m].num_pushes, 0);
    gate_of_[m].assign(maps_[m].num_pushes, 0);
    for (const auto& [gate, push] : maps_[m].gates) {
      gate_of_[m][push] = gate;
    }
    map_delta_applied_[m].assign(maps_[m].trace->ops.size(), false);
    map_states_[m].attempts.reserve(
        static_cast<size_t>(config.faults.max_attempts));
  }
  contrib_src_.assign(maps_.size(), -1);
  dependents_.resize(maps_.size());
  for (size_t m = 0; m < maps_.size(); ++m) {
    for (int d : maps_[m].deps) {
      dependents_[static_cast<size_t>(d)].push_back(static_cast<int>(m));
    }
  }
  reduce_delta_applied_.resize(reduces_.size());
  ckpt_gates_.resize(reduces_.size());
  for (size_t r = 0; r < reduces_.size(); ++r) {
    reduce_delta_applied_[r].assign(reduces_[r].trace->ops.size(), false);
    reduce_states_[r].attempts.reserve(
        static_cast<size_t>(config.faults.max_attempts));
    for (uint32_t c = 0;
         c < static_cast<uint32_t>(reduces_[r].checkpoints.size()); ++c) {
      ckpt_gates_[r][reduces_[r].checkpoints[c].gate_op] = c;
    }
  }
}

void Replayer::Start(std::function<void(const Status&)> on_done) {
  CHECK(!registered_);
  registered_ = true;
  on_done_ = std::move(on_done);
  start_time_ = engine_->now();
  pool_->RegisterJob(opts_.job_id, opts_.tenant, this);
  // Data-local initial wave: every map on its primary replica, reduces
  // round-robin as assigned. Queue everything first, then pump — slot
  // grants must not interleave with enqueueing (the historical event
  // creation order, which the solo byte-identity goldens pin down).
  for (size_t m = 0; m < maps_.size(); ++m) {
    // Combine tasks wait for their contributors: the pool drops popped
    // non-runnable map entries, so queueing one before its deps finish
    // would lose it. The last dep's MapDone schedules it instead.
    if (!maps_[m].deps.empty()) continue;
    map_states_[m].queued = true;
    pool_->QueueMap(opts_.job_id, maps_[m].node,
                    {static_cast<int>(m), false});
  }
  for (size_t r = 0; r < reduces_.size(); ++r) {
    reduce_states_[r].queued = true;
    pool_->QueueReduce(opts_.job_id, reduces_[r].node,
                       {static_cast<int>(r), false});
  }
  for (const sim::CrashEvent& c : plan_.crashes()) {
    if (c.time >= 0) {
      engine_->ScheduleAtStream(start_time_ + c.time, stream_,
                                [this, n = c.node]() { CrashNode(n); });
    } else {
      fraction_crashes_.push_back(c);
      fraction_fired_.push_back(false);
    }
  }
  for (int n = 0; n < pool_->num_nodes(); ++n) {
    pool_->PumpNode(n);
  }
  // A job admitted into a saturated cluster would otherwise wait for the
  // next natural slot release; let it claim its fair share immediately.
  pool_->PreemptForJob(opts_.job_id);
  if (config_.faults.speculative_execution && !JobComplete()) {
    ScheduleSpeculationTick();
  }
}

Status Replayer::Run() {
  Start();
  const double horizon = engine_->Run();
  if (failed_) return status_;
  if (maps_completed_ != maps_.size() || reduces_done_ != reduces_.size()) {
    return Status::Internal("replay stalled: lost data never recovered");
  }
  end_time_ = completion_time_ >= 0 ? completion_time_ : horizon;
  return Status::OK();
}

void Replayer::Abort(Status s) {
  if (failed_ || JobComplete()) return;
  Fail(std::move(s));
}

void Replayer::NotifyDone(const Status& s) {
  if (notified_) return;
  notified_ = true;
  if (on_done_) {
    auto cb = std::move(on_done_);
    on_done_ = nullptr;
    cb(s);
  }
}

void Replayer::ExportFaultMetrics(JobMetrics* m) const {
  tracker_.ExportMetrics(m);
  m->node_crashes += node_crashes_;
  m->lost_map_outputs += lost_map_outputs_;
  m->shuffle_fetch_retries += shuffle_fetch_retries_;
  m->disk_read_retries += disk_read_retries_;
  m->corruptions_detected += corruptions_detected_;
  m->corruptions_recovered += corruptions_recovered_;
  m->corruption_recovery_bytes += corruption_recovery_bytes_;
  m->checkpoints_restored += checkpoints_restored_;
  m->checkpoint_restore_bytes += checkpoint_restore_bytes_;
  m->checkpoint_corrupt_replicas += checkpoint_corrupt_replicas_;
  m->checkpoint_full_replays += checkpoint_full_replays_;
  m->checkpoint_segments_skipped += checkpoint_segments_skipped_;
  m->checkpoint_skipped_bytes += checkpoint_skipped_bytes_;
  m->shuffle_refetched_bytes += shuffle_refetched_bytes_;
  m->resident_hit_bytes += resident_hit_bytes_;
  m->resident_invalidated_segments += resident_invalidated_segments_;
  m->resident_invalidated_bytes += resident_invalidated_bytes_;
}

void Replayer::ExportSeries(JobResult* result) const {
  result->map_progress = map_progress_;
  result->reduce_progress = reduce_progress_;
  result->shuffle_progress = shuffle_series_;
  result->reduce_work_progress = work_series_;
  result->output_progress = output_series_;
  result->active_map = active_[0];
  result->active_shuffle = active_[1];
  result->active_merge = active_[2];
  result->active_reduce = active_[3];
}

double Replayer::Duration(const TraceOp& op, int node) const {
  const CostModel& c = config_.costs;
  switch (op.resource) {
    case OpResource::kCpu:
      return op.cpu_s * plan_.CpuFactor(node);
    case OpResource::kDisk:
      return (op.requests * c.disk_seek_s +
              static_cast<double>(op.bytes) * c.disk_byte_s) *
             plan_.DiskFactor(node);
    case OpResource::kNet:
      return static_cast<double>(op.bytes) * c.net_byte_s;
    case OpResource::kStall:
      return op.cpu_s;  // a pure wait: no device, no straggler dilation
  }
  return 0;
}

uint64_t Replayer::FetchRetryKey(int r, int m, uint32_t p) {
  return (static_cast<uint64_t>(r) << 40) ^
         (static_cast<uint64_t>(m) << 16) ^ static_cast<uint64_t>(p);
}

uint64_t Replayer::CheckpointRetryKey(int r, int ordinal, int try_i) {
  return (static_cast<uint64_t>(r) << 40) ^
         (static_cast<uint64_t>(ordinal) << 16) ^
         static_cast<uint64_t>(try_i);
}

double Replayer::WithDiskRetries(double dur, const TraceOp& op, bool is_map,
                                 int task, int attempt, size_t idx) {
  if (op.resource != OpResource::kDisk || !op.is_read) return dur;
  const int fails = plan_.DiskReadFailures(is_map, task, attempt, idx);
  if (fails <= 0) return dur;
  disk_read_retries_ += static_cast<uint64_t>(fails);
  return dur * (1 + fails);
}

void Replayer::SubmitOp(const TraceOp& op, int node, double dur,
                        sim::Engine::Callback done) {
  if (op.resource == OpResource::kStall) {
    engine_->ScheduleAfterStream(dur, stream_, std::move(done));
    return;
  }
  pool_->Route(node, op)->Submit(dur, stream_, std::move(done));
}

void Replayer::SetActive(Activity a, int delta) {
  if (a == Activity::kNone) return;
  const int i = static_cast<int>(a);
  active_count_[i] += delta;
  active_[i].Add(engine_->now(), active_count_[i]);
}

void Replayer::ActInc(ReduceAttempt& at, Activity a) {
  if (a == Activity::kNone) return;
  ++at.act[static_cast<int>(a)];
  SetActive(a, +1);
}

void Replayer::ActDec(ReduceAttempt& at, Activity a) {
  if (a == Activity::kNone) return;
  --at.act[static_cast<int>(a)];
  SetActive(a, -1);
}

void Replayer::FlushActivity(ReduceAttempt& at) {
  // Clears a killed attempt's outstanding activity so in-flight op
  // completions (which early-return) don't leak active-task counts.
  for (int i = 0; i < 4; ++i) {
    if (at.act[i] != 0) {
      SetActive(static_cast<Activity>(i), -at.act[i]);
      at.act[i] = 0;
    }
  }
}

void Replayer::ApplyDeltasOnce(std::vector<bool>& applied, size_t idx,
                               const TraceOp& op) {
  // Progress deltas apply at most once per trace op across all attempts of
  // a task, so re-execution never double-counts progress.
  if (applied[idx]) return;
  applied[idx] = true;
  ApplyDeltas(op);
}

void Replayer::ApplyDeltas(const TraceOp& op) {
  bool changed = false;
  if (op.d_shuffle_bytes > 0 && totals_.shuffle_bytes > 0) {
    cum_shuffle_ += op.d_shuffle_bytes;
    shuffle_series_.Add(engine_->now(),
                        static_cast<double>(cum_shuffle_) /
                            static_cast<double>(totals_.shuffle_bytes));
    changed = true;
  }
  if (op.d_reduce_work > 0 && totals_.reduce_work > 0) {
    cum_work_ += op.d_reduce_work;
    work_series_.Add(engine_->now(),
                     static_cast<double>(cum_work_) /
                         static_cast<double>(totals_.reduce_work));
    changed = true;
  }
  if (op.d_output_bytes > 0 && totals_.output_bytes > 0) {
    cum_output_ += op.d_output_bytes;
    output_series_.Add(engine_->now(),
                       static_cast<double>(cum_output_) /
                           static_cast<double>(totals_.output_bytes));
    changed = true;
  }
  if (changed) RecordReduceProgress();
  if (op.d_shuffle_bytes > 0) FireReduceFractionCrashes();
}

void Replayer::RecordReduceProgress() {
  // Definition 1: 1/3 shuffle + 1/3 combine/reduce-fn + 1/3 output.
  double p = 0;
  if (totals_.shuffle_bytes > 0) {
    p += static_cast<double>(cum_shuffle_) /
         static_cast<double>(totals_.shuffle_bytes);
  }
  if (totals_.reduce_work > 0) {
    p += static_cast<double>(cum_work_) /
         static_cast<double>(totals_.reduce_work);
  }
  if (totals_.output_bytes > 0) {
    p += static_cast<double>(cum_output_) /
         static_cast<double>(totals_.output_bytes);
  }
  reduce_progress_.Add(engine_->now(), 100.0 * p / 3.0);
}

void Replayer::Fail(Status s) {
  if (failed_) return;
  failed_ = true;
  status_ = std::move(s);
  // Release everything the job holds so the cluster moves on without it.
  // Queues are purged before attempts are killed: a freed slot must not
  // restart one of this job's own queued entries. In-flight op
  // completions early-return on failed_; solo callers observe only the
  // returned Status (the engine drains the dead events).
  for (int n = 0; n < pool_->num_nodes(); ++n) {
    for (const PendingTask& p :
         pool_->TakeJobQueue(opts_.job_id, n, /*is_map=*/true)) {
      QueueEntryPopped(/*is_map=*/true, p);
    }
    for (const PendingTask& p :
         pool_->TakeJobQueue(opts_.job_id, n, /*is_map=*/false)) {
      QueueEntryPopped(/*is_map=*/false, p);
    }
  }
  for (size_t r = 0; r < reduces_.size(); ++r) {
    ReduceTaskState& st = reduce_states_[r];
    for (size_t a = 0; a < st.attempts.size(); ++a) {
      if (st.attempts[a].alive) {
        KillReduceAttempt(static_cast<int>(r), static_cast<int>(a));
      }
    }
  }
  for (size_t m = 0; m < maps_.size(); ++m) {
    MapTaskState& st = map_states_[m];
    for (size_t a = 0; a < st.attempts.size(); ++a) {
      if (st.attempts[a].alive) {
        KillMapAttempt(static_cast<int>(m), static_cast<int>(a));
      }
    }
  }
  NotifyDone(status_);
}

bool Replayer::JobComplete() const {
  return maps_completed_ == maps_.size() &&
         reduces_done_ == reduces_.size();
}

void Replayer::CheckCompletion() {
  if (completion_time_ < 0 && JobComplete()) {
    completion_time_ = engine_->now();
    end_time_ = completion_time_;
    NotifyDone(Status::OK());
  }
}

int Replayer::AliveMapAttempts(int m) const {
  int alive = 0;
  for (const MapAttempt& a : map_states_[static_cast<size_t>(m)].attempts) {
    if (a.alive) ++alive;
  }
  return alive;
}

int Replayer::AliveReduceAttempts(int r) const {
  int alive = 0;
  for (const ReduceAttempt& a :
       reduce_states_[static_cast<size_t>(r)].attempts) {
    if (a.alive) ++alive;
  }
  return alive;
}

bool Replayer::AllPushesIntact(int m) const {
  for (uint32_t p = 0; p < maps_[static_cast<size_t>(m)].num_pushes; ++p) {
    if (push_ready_[static_cast<size_t>(m)][p] < 0) return false;
  }
  return true;
}

bool Replayer::DepsReady(int m) const {
  for (int d : maps_[static_cast<size_t>(m)].deps) {
    if (!map_states_[static_cast<size_t>(d)].completed ||
        contrib_src_[static_cast<size_t>(d)] < 0) {
      return false;
    }
  }
  return true;
}

bool Replayer::OutputIntact(int m) const {
  if (!AllPushesIntact(m)) return false;
  return dependents_[static_cast<size_t>(m)].empty() ||
         contrib_src_[static_cast<size_t>(m)] >= 0;
}

// ---- slots and scheduling ----

int Replayer::PickMapNode(int m, int exclude) const {
  // Surviving replica holder of m's chunk with the lightest map load
  // (ties: replica order, i.e. the primary first). -1 when all are dead.
  int best = -1;
  int best_load = 0;
  for (int n : maps_[static_cast<size_t>(m)].replicas) {
    if (dead_[static_cast<size_t>(n)] || n == exclude) continue;
    const int load = pool_->MapLoad(n);
    if (best < 0 || load < best_load) {
      best = n;
      best_load = load;
    }
  }
  return best;
}

int Replayer::PickReduceNode(int exclude) const {
  // Alive node with the lightest reduce load (ties: lowest id). Reduce
  // state is rebuilt from re-fetched map outputs, so any node qualifies.
  int best = -1;
  int best_load = 0;
  for (int n = 0; n < pool_->num_nodes(); ++n) {
    if (dead_[static_cast<size_t>(n)] || n == exclude) continue;
    const int load = pool_->ReduceLoad(n);
    if (best < 0 || load < best_load) {
      best = n;
      best_load = load;
    }
  }
  return best;
}

void Replayer::QueueEntryPopped(bool is_map, const PendingTask& p) {
  if (is_map) {
    MapTaskState& st = map_states_[static_cast<size_t>(p.task)];
    (p.speculative ? st.spec_queued : st.queued) = false;
  } else {
    ReduceTaskState& st = reduce_states_[static_cast<size_t>(p.task)];
    (p.speculative ? st.spec_queued : st.queued) = false;
  }
}

bool Replayer::MapEntryRunnable(const PendingTask& p) const {
  const MapTaskState& st = map_states_[static_cast<size_t>(p.task)];
  if (!tracker_.CanStart(TaskKind::kMap, p.task)) return false;
  // A combine attempt (original or backup) reads its deps' node feeds; it
  // cannot start while any contribution is missing.
  if (!DepsReady(p.task)) return false;
  if (p.speculative) {
    return !st.completed && AliveMapAttempts(p.task) == 1;
  }
  if (AliveMapAttempts(p.task) > 0) return false;
  return !(st.completed && OutputIntact(p.task));
}

bool Replayer::ReduceEntryRunnable(const PendingTask& p) const {
  const ReduceTaskState& st = reduce_states_[static_cast<size_t>(p.task)];
  if (st.done) return false;
  if (!tracker_.CanStart(TaskKind::kReduce, p.task)) return false;
  if (p.speculative) return AliveReduceAttempts(p.task) == 1;
  return AliveReduceAttempts(p.task) == 0;
}

void Replayer::PoolStartMap(int task, int node, bool speculative) {
  StartMapAttempt(task, node, speculative);
}

void Replayer::PoolStartReduce(int task, int node, bool speculative) {
  StartReduceAttempt(task, node, speculative);
}

bool Replayer::PreemptMapOn(int node) {
  // Victim: the latest-started alive map attempt on `node` (least sunk
  // work) whose task is still under the preempt cap. Ties (same start
  // time): lowest task index — any fixed rule keeps replays identical.
  int bm = -1;
  int ba = -1;
  double best_start = 0;
  for (size_t m = 0; m < maps_.size(); ++m) {
    if (preempt_count_[m] >= opts_.max_preemptions_per_task) continue;
    const auto& atts = map_states_[m].attempts;
    for (size_t a = 0; a < atts.size(); ++a) {
      if (!atts[a].alive || atts[a].node != node) continue;
      if (bm < 0 || atts[a].start > best_start) {
        bm = static_cast<int>(m);
        ba = static_cast<int>(a);
        best_start = atts[a].start;
      }
    }
  }
  if (bm < 0) return false;
  ++preempt_count_[static_cast<size_t>(bm)];
  MapAttempt& at = map_states_[static_cast<size_t>(bm)].attempts
                       [static_cast<size_t>(ba)];
  at.alive = false;
  SetActive(Activity::kMap, -1);
  tracker_.Preempted(TaskKind::kMap, bm, ba, engine_->now());
  // Published pushes survive (the node is alive; only the attempt dies).
  // Releasing the slot pumps the node, handing it to the beneficiary;
  // only then does the victim task requeue through the normal scheduler.
  pool_->ReleaseSlot(opts_.job_id, node, /*is_map=*/true);
  ScheduleMapRun(bm);
  return true;
}

void Replayer::ScheduleMapRun(int m) {
  // Queues a fresh (non-speculative) execution of map m on a surviving
  // replica holder. No-op if an attempt is already running or queued;
  // fails the job when the attempt budget or every replica is gone.
  if (failed_) return;
  MapTaskState& st = map_states_[static_cast<size_t>(m)];
  if (st.queued || AliveMapAttempts(m) > 0) return;
  if (st.completed && OutputIntact(m)) return;
  if (!DepsReady(m)) {
    // Generalized lost-output rule (DESIGN.md §5.10): a combined push is
    // the output of every contributing map task, so re-materializing it
    // first re-runs any dep whose node-feed contribution died with its
    // node. The last dep's MapDone re-triggers this combine.
    for (int d : maps_[static_cast<size_t>(m)].deps) {
      if (!map_states_[static_cast<size_t>(d)].completed ||
          contrib_src_[static_cast<size_t>(d)] < 0) {
        ScheduleMapRun(d);
        if (failed_) return;
      }
    }
    return;
  }
  if (!tracker_.CanStart(TaskKind::kMap, m)) {
    Fail(Status::ResourceExhausted("map task " + std::to_string(m) +
                                   " exceeded max_attempts"));
    return;
  }
  const int n = PickMapNode(m, /*exclude=*/-1);
  if (n < 0) {
    Fail(Status::ResourceExhausted(
        "no surviving replica holds the input chunk of map task " +
        std::to_string(m) + " (replication " +
        std::to_string(maps_[static_cast<size_t>(m)].replicas.size()) +
        ")"));
    return;
  }
  st.queued = true;
  pool_->EnqueueMap(opts_.job_id, n, {m, false});
}

void Replayer::ScheduleReduceRun(int r) {
  if (failed_) return;
  ReduceTaskState& st = reduce_states_[static_cast<size_t>(r)];
  if (st.done || st.queued || AliveReduceAttempts(r) > 0) return;
  if (!tracker_.CanStart(TaskKind::kReduce, r)) {
    Fail(Status::ResourceExhausted("reduce task " + std::to_string(r) +
                                   " exceeded max_attempts"));
    return;
  }
  const int n = PickReduceNode(/*exclude=*/-1);
  if (n < 0) {
    Fail(Status::ResourceExhausted("no alive node for reduce task " +
                                   std::to_string(r)));
    return;
  }
  // The new attempt refetches everything past its restore watermark;
  // make sure every map output it needs is rematerializing. Deliveries
  // folded into a durable checkpoint stay retired.
  const uint32_t watermark = RestoreWatermark(r);
  for (size_t s = watermark;
       s < reduces_[static_cast<size_t>(r)].deliveries.size(); ++s) {
    const DeliveryRef& d = reduces_[static_cast<size_t>(r)].deliveries[s];
    if (push_ready_[static_cast<size_t>(d.map_task)][d.push] < 0) {
      ScheduleMapRun(d.map_task);
    }
    if (failed_) return;
  }
  st.queued = true;
  pool_->EnqueueReduce(opts_.job_id, n, {r, false});
}

// ---- speculative execution ----

void Replayer::MaybeSpeculate(TaskKind kind) {
  // After each task completion: once enough tasks of this kind finished,
  // give any task whose single running attempt lags the median a backup
  // attempt on another node. First finisher wins.
  if (failed_ || !config_.faults.speculative_execution) return;
  const size_t total =
      kind == TaskKind::kMap ? maps_.size() : reduces_.size();
  if (total == 0) return;
  const double done = static_cast<double>(tracker_.successes(kind));
  if (done < config_.faults.speculation_min_done_fraction *
                 static_cast<double>(total)) {
    return;
  }
  const double median = tracker_.MedianSuccessDuration(kind);
  if (median <= 0) return;
  const double threshold = config_.faults.speculation_slowness * median;
  for (int t = 0; t < static_cast<int>(total); ++t) {
    if (kind == TaskKind::kMap
            ? map_states_[static_cast<size_t>(t)].completed
            : reduce_states_[static_cast<size_t>(t)].done) {
      continue;
    }
    if (!tracker_.CanStart(kind, t)) continue;
    int running = -1;
    int alive = 0;
    double start = 0;
    int node = -1;
    if (kind == TaskKind::kMap) {
      const MapTaskState& st = map_states_[static_cast<size_t>(t)];
      if (st.queued || st.spec_queued) continue;
      for (size_t a = 0; a < st.attempts.size(); ++a) {
        if (st.attempts[a].alive) {
          running = static_cast<int>(a);
          start = st.attempts[a].start;
          node = st.attempts[a].node;
          ++alive;
        }
      }
    } else {
      const ReduceTaskState& st = reduce_states_[static_cast<size_t>(t)];
      if (st.queued || st.spec_queued) continue;
      for (size_t a = 0; a < st.attempts.size(); ++a) {
        if (st.attempts[a].alive) {
          running = static_cast<int>(a);
          start = st.attempts[a].start;
          node = st.attempts[a].node;
          ++alive;
        }
      }
    }
    if (alive != 1 || running < 0) continue;
    if (engine_->now() - start <= threshold) continue;
    const int backup = kind == TaskKind::kMap ? PickMapNode(t, node)
                                              : PickReduceNode(node);
    if (backup < 0) continue;  // nowhere to run a backup
    if (kind == TaskKind::kMap) {
      map_states_[static_cast<size_t>(t)].spec_queued = true;
      pool_->EnqueueMap(opts_.job_id, backup, {t, true});
    } else {
      reduce_states_[static_cast<size_t>(t)].spec_queued = true;
      pool_->EnqueueReduce(opts_.job_id, backup, {t, true});
    }
    if (failed_) return;
  }
}

void Replayer::ScheduleSpeculationTick() {
  // Completions trigger speculation scans, but a lagging tail with nothing
  // finishing would never be rescanned — poll too, like Hadoop's
  // speculator thread.
  engine_->ScheduleAfterStream(
      config_.faults.speculation_check_s, stream_, [this]() {
        if (failed_ || JobComplete()) return;
        MaybeSpeculate(TaskKind::kMap);
        MaybeSpeculate(TaskKind::kReduce);
        if (!failed_ && !JobComplete()) ScheduleSpeculationTick();
      });
}

// ---- checkpoint recovery (DESIGN.md §5.6) ----

void Replayer::RegisterCheckpoint(int r, uint32_t c, int writer_node) {
  // The checkpoint-write op for instance `c` of reduce r completed on
  // `writer_node`: the instance is durable, replicated on the writer plus
  // the next checkpoint_replication - 1 alive nodes round-robin. At most
  // once per instance across attempts (a speculative backup reaching the
  // same gate later does not re-place the replicas).
  ReduceTaskState& st = reduce_states_[static_cast<size_t>(r)];
  for (const DurableCkpt& d : st.durable) {
    if (d.ordinal == c) return;
  }
  const CheckpointMark& mark = reduces_[static_cast<size_t>(r)]
                                   .checkpoints[c];
  DurableCkpt d;
  d.ordinal = c;
  d.watermark = mark.watermark;
  d.bytes = mark.bytes;
  d.raw_bytes = mark.raw_bytes;
  int slot = 0;
  d.replicas.emplace_back(slot++, writer_node);
  const int nodes = pool_->num_nodes();
  for (int off = 1; off < nodes && slot < config_.checkpoint_replication;
       ++off) {
    const int n = (writer_node + off) % nodes;
    if (!dead_[static_cast<size_t>(n)]) d.replicas.emplace_back(slot++, n);
  }
  st.durable.push_back(std::move(d));
}

Replayer::CkptChoice Replayer::ChooseCheckpoint(int r) const {
  // Newest instance first, replica slots in order; a replica is usable iff
  // its holder survives (dead holders are pruned eagerly) and the plan's
  // seeded draw leaves it uncorrupted. Pure given (durable state, plan).
  CkptChoice choice;
  const ReduceTaskState& st = reduce_states_[static_cast<size_t>(r)];
  for (auto it = st.durable.rbegin(); it != st.durable.rend(); ++it) {
    choice.had_durable = true;
    for (const auto& [slot, node] : it->replicas) {
      if (plan_.CheckpointCorruptions(r, it->ordinal, slot) > 0) {
        choice.tried.push_back({slot, node, it->bytes});
        continue;
      }
      choice.ordinal = static_cast<int>(it->ordinal);
      choice.watermark = it->watermark;
      choice.bytes = it->bytes;
      choice.raw_bytes = it->raw_bytes;
      choice.node = node;
      return choice;
    }
  }
  return choice;
}

uint32_t Replayer::RestoreWatermark(int r) const {
  // Deliveries below this watermark will never be re-fetched by a
  // restarted attempt of r; used by the lost-map-output scan to keep maps
  // whose outputs are fully covered by a durable checkpoint retired.
  if (reduce_states_[static_cast<size_t>(r)].durable.empty()) return 0;
  return ChooseCheckpoint(r).watermark;
}

void Replayer::RunRestoreOps(int r, int a, const CkptChoice& choice) {
  // Charges the restore I/O as a sequential op chain on the attempt's
  // node: each rejected candidate is read in full before its verification
  // fails (network pull, or a local disk read when the attempt node holds
  // the replica), the next candidate backs off per the shared RetryPolicy,
  // then the good replica is read and — under a codec — its field stream
  // decoded. When the chain drains, the fetch/consume streams start from
  // the checkpoint watermark.
  auto ops = std::make_shared<std::vector<RestoreOp>>();
  const int att_node = reduce_states_[static_cast<size_t>(r)]
                           .attempts[static_cast<size_t>(a)].node;
  int try_i = 0;
  auto read_replica = [&](int holder, uint64_t bytes) {
    RestoreOp rop;
    rop.op.tag = OpTag::kCheckpoint;
    rop.op.bytes = bytes;
    if (holder == att_node) {
      rop.op.resource = OpResource::kDisk;
      rop.op.is_read = true;
    } else {
      rop.op.resource = OpResource::kNet;
    }
    if (try_i > 0) {
      rop.delay = config_.faults.fetch_retry.BackoffFor(
          try_i - 1, CheckpointRetryKey(r, choice.ordinal, try_i));
    }
    ++try_i;
    ops->push_back(rop);
    checkpoint_restore_bytes_ += bytes;
  };
  for (const TriedReplica& t : choice.tried) read_replica(t.node, t.bytes);
  read_replica(choice.node, choice.bytes);
  if (config_.block_codec != BlockCodecKind::kNone) {
    RestoreOp rop;
    rop.op.resource = OpResource::kCpu;
    rop.op.tag = OpTag::kCheckpoint;
    rop.op.cpu_s = config_.costs.decompress_byte_s *
                   static_cast<double>(choice.raw_bytes);
    ops->push_back(rop);
  }
  RunRestoreOp(r, a, std::move(ops), 0);
}

void Replayer::RunRestoreOp(int r, int a,
                            std::shared_ptr<std::vector<RestoreOp>> ops,
                            size_t i) {
  if (failed_) return;
  ReduceAttempt& at = reduce_states_[static_cast<size_t>(r)]
                          .attempts[static_cast<size_t>(a)];
  if (!at.alive) return;
  if (i >= ops->size()) {
    StartFetch(r, a);
    TryConsume(r, a);
    return;
  }
  const RestoreOp& rop = (*ops)[i];
  if (rop.delay > 0) {
    engine_->ScheduleAfterStream(rop.delay, stream_, [this, r, a, ops, i]() {
      if (failed_) return;
      if (!reduce_states_[static_cast<size_t>(r)]
               .attempts[static_cast<size_t>(a)].alive) {
        return;
      }
      SubmitRestoreOp(r, a, std::move(ops), i);
    });
    return;
  }
  SubmitRestoreOp(r, a, std::move(ops), i);
}

void Replayer::SubmitRestoreOp(int r, int a,
                               std::shared_ptr<std::vector<RestoreOp>> ops,
                               size_t i) {
  ReduceAttempt& at = reduce_states_[static_cast<size_t>(r)]
                          .attempts[static_cast<size_t>(a)];
  const TraceOp& op = (*ops)[i].op;
  pool_->Route(at.node, op)->Submit(
      Duration(op, at.node), stream_,
      [this, r, a, ops = std::move(ops), i]() {
        if (failed_) return;
        if (!reduce_states_[static_cast<size_t>(r)]
                 .attempts[static_cast<size_t>(a)].alive) {
          return;
        }
        RunRestoreOp(r, a, std::move(ops), i + 1);
      });
}

// ---- crash handling ----

void Replayer::KillMapAttempt(int m, int a) {
  MapAttempt& at = map_states_[static_cast<size_t>(m)]
                       .attempts[static_cast<size_t>(a)];
  at.alive = false;
  SetActive(Activity::kMap, -1);
  tracker_.Killed(TaskKind::kMap, m, a, engine_->now());
  pool_->ReleaseSlot(opts_.job_id, at.node, /*is_map=*/true);
}

void Replayer::KillReduceAttempt(int r, int a) {
  ReduceAttempt& at = reduce_states_[static_cast<size_t>(r)]
                          .attempts[static_cast<size_t>(a)];
  at.alive = false;
  FlushActivity(at);
  tracker_.Killed(TaskKind::kReduce, r, a, engine_->now());
  pool_->ReleaseSlot(opts_.job_id, at.node, /*is_map=*/false);
}

bool Replayer::OutputNeeded(int m) const {
  // Lost-map-output rule: after a crash wiped (some of) m's published
  // pushes, is any unfinished reducer still going to ask for them? A
  // reducer with no running attempt (pending, queued, or awaiting
  // rescheduling) needs everything again; a running attempt needs exactly
  // the sections it has not fetched yet.
  if (reduces_.empty()) {
    // Provisional (map-only) replay: push-ready times define the
    // delivery-order contract, so every output is always "needed".
    return true;
  }
  for (size_t r = 0; r < reduces_.size(); ++r) {
    const ReduceTaskState& st = reduce_states_[r];
    if (st.done) continue;
    // A restarted attempt resumes from the newest usable checkpoint:
    // deliveries below its watermark are never re-fetched, so maps whose
    // outputs fall entirely under it stay retired.
    uint32_t watermark = 0;
    bool watermark_known = false;
    for (size_t s = 0; s < reduces_[r].deliveries.size(); ++s) {
      const DeliveryRef& d = reduces_[r].deliveries[s];
      if (d.map_task != m ||
          push_ready_[static_cast<size_t>(m)][d.push] >= 0) {
        continue;
      }
      if (AliveReduceAttempts(static_cast<int>(r)) == 0) {
        if (!watermark_known) {
          watermark = RestoreWatermark(static_cast<int>(r));
          watermark_known = true;
        }
        if (s >= watermark) return true;
        continue;
      }
      for (const ReduceAttempt& at : st.attempts) {
        if (at.alive && !at.fetched[s]) return true;
      }
    }
  }
  return false;
}

void Replayer::CrashNode(int n) {
  // Fail-stop crash of node n *in this job's fault domain*: kills the
  // job's attempts there, loses the map outputs it stored for this job,
  // reschedules what must re-run. Other jobs sharing the pool are
  // untouched — their own plans decide their crashes.
  if (failed_ || dead_[static_cast<size_t>(n)] || JobComplete()) return;
  dead_[static_cast<size_t>(n)] = 1;
  ++node_crashes_;
  // Checkpoint replicas stored on n are gone. Pruning before the kill /
  // reschedule scans below means every RestoreWatermark query already
  // sees the post-crash replica view. Surviving replicas keep their
  // original slot index (stable corruption draws).
  for (ReduceTaskState& st : reduce_states_) {
    for (DurableCkpt& d : st.durable) {
      d.replicas.erase(
          std::remove_if(d.replicas.begin(), d.replicas.end(),
                         [n](const std::pair<int, int>& rep) {
                           return rep.second == n;
                         }),
          d.replicas.end());
    }
  }
  // Unstarted tasks this job queued here go back through the scheduler.
  for (const PendingTask& p :
       pool_->TakeJobQueue(opts_.job_id, n, /*is_map=*/true)) {
    QueueEntryPopped(/*is_map=*/true, p);
  }
  for (const PendingTask& p :
       pool_->TakeJobQueue(opts_.job_id, n, /*is_map=*/false)) {
    QueueEntryPopped(/*is_map=*/false, p);
  }
  // Kill running attempts; reduces first so their fetched state is
  // settled before the lost-output scan asks who still needs what.
  for (size_t r = 0; r < reduces_.size(); ++r) {
    ReduceTaskState& st = reduce_states_[r];
    for (size_t a = 0; a < st.attempts.size(); ++a) {
      if (st.attempts[a].alive && st.attempts[a].node == n) {
        KillReduceAttempt(static_cast<int>(r), static_cast<int>(a));
      }
    }
  }
  for (size_t m = 0; m < maps_.size(); ++m) {
    MapTaskState& st = map_states_[m];
    for (size_t a = 0; a < st.attempts.size(); ++a) {
      if (st.attempts[a].alive && st.attempts[a].node == n) {
        KillMapAttempt(static_cast<int>(m), static_cast<int>(a));
      }
    }
  }
  // Map outputs stored on n are gone. A push a surviving attempt already
  // produced republishes immediately; the rest revert to unpublished.
  for (size_t m = 0; m < maps_.size(); ++m) {
    bool lost_any = false;
    for (uint32_t p = 0; p < maps_[m].num_pushes; ++p) {
      if (push_src_[m][p] != n || push_ready_[m][p] < 0) continue;
      bool republished = false;
      for (const MapAttempt& at : map_states_[m].attempts) {
        // op_idx >= gate+2 means the gate op's completion handler ran.
        if (at.alive && !dead_[static_cast<size_t>(at.node)] &&
            at.op_idx >= gate_of_[m][p] + 2) {
          PushReady(static_cast<int>(m), p, at.node);
          republished = true;
          break;
        }
      }
      if (!republished) {
        push_ready_[m][p] = -1.0;
        push_src_[m][p] = -1;
        lost_any = true;
        // A resident push that dies with its node is a cache invalidation:
        // the segment falls back to re-execution through the ordinary
        // lost-output recovery below.
        if (!maps_[m].resident.empty() && maps_[m].resident[p]) {
          ++resident_invalidated_segments_;
          resident_invalidated_bytes_ +=
              p < maps_[m].push_bytes.size() ? maps_[m].push_bytes[p] : 0;
        }
      }
    }
    if (lost_any && OutputNeeded(static_cast<int>(m))) {
      ScheduleMapRun(static_cast<int>(m));
      if (failed_) return;
    }
  }
  // Node-feed contributions held on n are gone (node combine tier): any
  // running combine attempt that was consuming one dies with its input.
  // The restart scan below re-runs what is still needed — a killed or
  // push-lost combine reschedules through ScheduleMapRun, which first
  // re-materializes the missing contributions (generalized lineage).
  for (size_t m = 0; m < maps_.size(); ++m) {
    if (contrib_src_[m] != n) continue;
    contrib_src_[m] = -1;
    for (int c : dependents_[m]) {
      MapTaskState& cs = map_states_[static_cast<size_t>(c)];
      for (size_t a = 0; a < cs.attempts.size(); ++a) {
        if (cs.attempts[a].alive) KillMapAttempt(c, static_cast<int>(a));
      }
    }
  }
  // Restart whatever the crash left without a running or queued
  // execution.
  for (size_t r = 0; r < reduces_.size(); ++r) {
    const ReduceTaskState& st = reduce_states_[r];
    if (!st.done && !st.queued &&
        AliveReduceAttempts(static_cast<int>(r)) == 0) {
      ScheduleReduceRun(static_cast<int>(r));
      if (failed_) return;
    }
  }
  for (size_t m = 0; m < maps_.size(); ++m) {
    const MapTaskState& st = map_states_[m];
    if (st.queued || AliveMapAttempts(static_cast<int>(m)) > 0) continue;
    if (!st.completed) {
      ScheduleMapRun(static_cast<int>(m));
    } else if (!AllPushesIntact(static_cast<int>(m)) &&
               OutputNeeded(static_cast<int>(m))) {
      ScheduleMapRun(static_cast<int>(m));
    }
    if (failed_) return;
  }
}

void Replayer::FireFractionCrashes() {
  const double frac = static_cast<double>(maps_completed_) /
                      static_cast<double>(maps_.size());
  for (size_t i = 0; i < fraction_crashes_.size(); ++i) {
    if (!fraction_fired_[i] && fraction_crashes_[i].at_map_fraction > 0 &&
        frac >= fraction_crashes_[i].at_map_fraction - 1e-12) {
      fraction_fired_[i] = true;
      CrashNode(fraction_crashes_[i].node);
    }
  }
}

void Replayer::FireReduceFractionCrashes() {
  // Reduce-phase crashes trigger on shuffle-progress thresholds. The crash
  // itself is deferred one zero-delay event so it never reallocates the
  // attempt vectors underneath an op-completion callback that still holds
  // references into them; the event queue's (stream, seq) tie-break keeps
  // the deferral deterministic.
  if (totals_.shuffle_bytes == 0) return;
  const double frac = static_cast<double>(cum_shuffle_) /
                      static_cast<double>(totals_.shuffle_bytes);
  for (size_t i = 0; i < fraction_crashes_.size(); ++i) {
    if (fraction_fired_[i] ||
        fraction_crashes_[i].at_reduce_fraction <= 0) {
      continue;
    }
    if (frac >= fraction_crashes_[i].at_reduce_fraction - 1e-12) {
      fraction_fired_[i] = true;
      engine_->ScheduleAfterStream(
          0, stream_,
          [this, n = fraction_crashes_[i].node]() { CrashNode(n); });
    }
  }
}

// ---- map side ----

void Replayer::StartMapAttempt(int m, int node, bool speculative) {
  MapTaskState& st = map_states_[static_cast<size_t>(m)];
  // A completed map only re-runs because its output was lost.
  if (st.completed && !speculative) ++lost_map_outputs_;
  const int a = tracker_.StartAttempt(TaskKind::kMap, m, node, speculative,
                                      engine_->now());
  CHECK_EQ(static_cast<size_t>(a), st.attempts.size());
  MapAttempt at;
  at.node = node;
  at.start = engine_->now();
  at.alive = true;
  st.attempts.push_back(at);
  SetActive(Activity::kMap, +1);
  RunNextMapOp(m, a);
}

void Replayer::RunNextMapOp(int m, int a) {
  if (failed_) return;
  MapAttempt& at = map_states_[static_cast<size_t>(m)]
                       .attempts[static_cast<size_t>(a)];
  const CostTrace& trace = *maps_[static_cast<size_t>(m)].trace;
  if (at.op_idx >= trace.ops.size()) {
    MapDone(m, a);
    return;
  }
  const size_t idx = at.op_idx++;
  const TraceOp& op = trace.ops[idx];
  const double dur = WithDiskRetries(Duration(op, at.node), op,
                                     /*is_map=*/true, m, a, idx);
  SubmitOp(op, at.node, dur, [this, m, a, idx]() {
    if (failed_) return;
    MapAttempt& att = map_states_[static_cast<size_t>(m)]
                          .attempts[static_cast<size_t>(a)];
    if (!att.alive) return;  // killed mid-op; activity already flushed
    const TraceOp& done_op = maps_[static_cast<size_t>(m)].trace->ops[idx];
    tracker_.AddWork(
        TaskKind::kMap, m, a,
        done_op.resource == OpResource::kCpu ? done_op.cpu_s : 0,
        done_op.resource == OpResource::kCpu ? 0 : done_op.bytes);
    ApplyDeltasOnce(map_delta_applied_[static_cast<size_t>(m)], idx,
                    done_op);
    auto it = maps_[static_cast<size_t>(m)].gates.find(
        static_cast<uint32_t>(idx));
    if (it != maps_[static_cast<size_t>(m)].gates.end() &&
        push_ready_[static_cast<size_t>(m)][it->second] < 0) {
      PushReady(m, it->second, att.node);
    }
    RunNextMapOp(m, a);
  });
}

void Replayer::MapDone(int m, int a) {
  MapTaskState& st = map_states_[static_cast<size_t>(m)];
  const int node = st.attempts[static_cast<size_t>(a)].node;
  st.attempts[static_cast<size_t>(a)].alive = false;
  SetActive(Activity::kMap, -1);
  tracker_.Succeeded(TaskKind::kMap, m, a, engine_->now());
  // First finisher wins: the backup race is over, losers' partial
  // outputs are superseded by the winner's complete set.
  for (size_t o = 0; o < st.attempts.size(); ++o) {
    if (st.attempts[o].alive) {
      KillMapAttempt(m, static_cast<int>(o));
    }
  }
  for (uint32_t p = 0; p < maps_[static_cast<size_t>(m)].num_pushes; ++p) {
    if (push_ready_[static_cast<size_t>(m)][p] < 0) {
      PushReady(m, p, node);
    } else {
      push_src_[static_cast<size_t>(m)][p] = node;
    }
  }
  const bool first = !st.completed;
  st.completed = true;
  if (first) {
    ++maps_completed_;
    map_winner_[static_cast<size_t>(m)] = node;
    last_map_finish_ = std::max(last_map_finish_, engine_->now());
    map_progress_.Add(engine_->now(),
                      100.0 * static_cast<double>(maps_completed_) /
                          static_cast<double>(maps_.size()));
  }
  // The winner's node now holds this task's node-feed contribution (set
  // before the slot release so a pumped combine entry already sees its
  // deps ready); once every dep of a dependent combine task is in, the
  // combine is scheduled.
  contrib_src_[static_cast<size_t>(m)] = node;
  pool_->ReleaseSlot(opts_.job_id, node, /*is_map=*/true);
  for (int c : dependents_[static_cast<size_t>(m)]) {
    if (failed_) break;
    if (DepsReady(c)) ScheduleMapRun(c);
  }
  MaybeSpeculate(TaskKind::kMap);
  CheckCompletion();
  if (first) FireFractionCrashes();
}

void Replayer::PushReady(int m, uint32_t p, int src) {
  push_ready_[static_cast<size_t>(m)][p] = engine_->now();
  push_src_[static_cast<size_t>(m)][p] = src;
  const auto key = std::make_pair(m, p);
  auto it = push_waiters_.find(key);
  if (it == push_waiters_.end()) return;
  std::vector<std::pair<int, int>> waiters = std::move(it->second);
  push_waiters_.erase(it);
  for (const auto& [r, a] : waiters) {
    if (reduce_states_[static_cast<size_t>(r)]
            .attempts[static_cast<size_t>(a)].alive) {
      StartFetch(r, a);
    }
  }
}

// ---- reduce side ----

void Replayer::StartReduceAttempt(int r, int node, bool speculative) {
  ReduceTaskState& st = reduce_states_[static_cast<size_t>(r)];
  const int a = tracker_.StartAttempt(TaskKind::kReduce, r, node,
                                      speculative, engine_->now());
  CHECK_EQ(static_cast<size_t>(a), st.attempts.size());
  ReduceAttempt at;
  at.node = node;
  at.start = engine_->now();
  at.alive = true;
  at.fetched.assign(reduces_[static_cast<size_t>(r)].deliveries.size(),
                    false);
  at.fetch_tries.assign(reduces_[static_cast<size_t>(r)].deliveries.size(),
                        0);
  at.verify_tries.assign(
      reduces_[static_cast<size_t>(r)].deliveries.size(), 0);
  // A later attempt resumes from the newest verifiable checkpoint
  // replica instead of replaying the whole shuffle (DESIGN.md §5.6):
  // deliveries below the watermark count as fetched and consumed, and
  // the restore reads (corrupt candidates included) are charged before
  // the fetch/consume streams start.
  CkptChoice choice;
  if (!st.durable.empty()) choice = ChooseCheckpoint(r);
  if (choice.node >= 0) {
    for (uint32_t s = 0; s < choice.watermark; ++s) {
      at.fetched[s] = true;
      ++checkpoint_segments_skipped_;
      checkpoint_skipped_bytes_ +=
          reduces_[static_cast<size_t>(r)].deliveries[s].bytes;
    }
    at.fetch_section = choice.watermark;
    at.consume_section = choice.watermark;
    ++checkpoints_restored_;
    checkpoint_corrupt_replicas_ +=
        static_cast<uint64_t>(choice.tried.size());
    st.attempts.push_back(std::move(at));
    RunRestoreOps(r, a, choice);
    return;
  }
  if (choice.had_durable) ++checkpoint_full_replays_;
  st.attempts.push_back(std::move(at));
  StartFetch(r, a);
  TryConsume(r, a);
}

void Replayer::StartFetch(int r, int a) {
  // Fetch stream: pulls delivery fetch_section as soon as its push is
  // published. The data-plane trace records each delivery section's first
  // op as the network fetch; the replay may prepend a disk read on the
  // holder's node when the output has been evicted from its memory.
  if (failed_) return;
  ReduceAttempt& at = reduce_states_[static_cast<size_t>(r)]
                          .attempts[static_cast<size_t>(a)];
  if (!at.alive) return;
  const ReduceTaskIn& task = reduces_[static_cast<size_t>(r)];
  if (at.fetch_section >= task.deliveries.size()) return;
  const uint32_t s = at.fetch_section;
  const DeliveryRef& d = task.deliveries[s];
  const double ready = push_ready_[static_cast<size_t>(d.map_task)][d.push];
  if (ready < 0) {
    push_waiters_[{d.map_task, d.push}].push_back({r, a});
    return;
  }
  // Fetch penalty: an attempt that was not yet running when the map
  // output was published (a second-wave or restarted reducer) finds it
  // evicted from the holder's memory and re-reads it from disk. A
  // resident push is exempt: the segment cache pins it in the holder's
  // memory for the whole job, so there is no retention window to miss.
  const bool resident_push =
      !maps_[static_cast<size_t>(d.map_task)].resident.empty() &&
      maps_[static_cast<size_t>(d.map_task)].resident[d.push];
  if (d.bytes > 0 && !resident_push &&
      at.start > ready + config_.costs.map_output_retention_s) {
    shuffle_from_disk_bytes_ += d.bytes;
    TraceOp read;
    read.resource = OpResource::kDisk;
    read.tag = OpTag::kShuffle;
    read.bytes = d.bytes;
    read.is_read = true;
    const int src_node = push_src_[static_cast<size_t>(d.map_task)][d.push];
    ActInc(at, Activity::kShuffle);
    pool_->Route(src_node, read)
        ->Submit(Duration(read, src_node), stream_, [this, r, a, s]() {
          if (failed_) return;
          ReduceAttempt& att = reduce_states_[static_cast<size_t>(r)]
                                   .attempts[static_cast<size_t>(a)];
          if (!att.alive) return;
          ActDec(att, Activity::kShuffle);
          FetchOverNet(r, a, s);
        });
    return;
  }
  FetchOverNet(r, a, s);
}

void Replayer::FetchOverNet(int r, int a, uint32_t s) {
  ReduceAttempt& at = reduce_states_[static_cast<size_t>(r)]
                          .attempts[static_cast<size_t>(a)];
  const ReduceTaskIn& task = reduces_[static_cast<size_t>(r)];
  const TraceOp& net_op = task.trace->ops[task.trace->section_starts[s]];
  CHECK(net_op.resource == OpResource::kNet);
  ActInc(at, Activity::kShuffle);
  pool_->Route(at.node, net_op)
      ->Submit(Duration(net_op, at.node), stream_, [this, r, a, s]() {
        if (failed_) return;
        ReduceAttempt& att = reduce_states_[static_cast<size_t>(r)]
                                 .attempts[static_cast<size_t>(a)];
        if (!att.alive) return;
        ActDec(att, Activity::kShuffle);
        const ReduceTaskIn& t = reduces_[static_cast<size_t>(r)];
        const DeliveryRef& d = t.deliveries[s];
        // Source crashed mid-transfer: park until the map re-executes.
        if (push_ready_[static_cast<size_t>(d.map_task)][d.push] < 0) {
          StartFetch(r, a);
          return;
        }
        // Transient fetch failure: back off exponentially, retry.
        const int fails = plan_.FetchFailures(r, d.map_task, d.push);
        if (static_cast<int>(att.fetch_tries[s]) < fails) {
          const int try_i = att.fetch_tries[s]++;
          ++shuffle_fetch_retries_;
          const double backoff = config_.faults.fetch_retry.BackoffFor(
              try_i, FetchRetryKey(r, d.map_task, d.push));
          engine_->ScheduleAfterStream(backoff, stream_, [this, r, a, s]() {
            if (failed_) return;
            ReduceAttempt& att2 = reduce_states_[static_cast<size_t>(r)]
                                      .attempts[static_cast<size_t>(a)];
            if (!att2.alive) return;
            const DeliveryRef& d2 =
                reduces_[static_cast<size_t>(r)].deliveries[s];
            if (push_ready_[static_cast<size_t>(d2.map_task)][d2.push] <
                0) {
              StartFetch(r, a);  // source died during the backoff
              return;
            }
            FetchOverNet(r, a, s);
          });
          return;
        }
        // Silent wire corruption: the fetched bytes fail the segment CRC
        // stamped at publish time. The holder's stored copy is fine, so
        // the cheapest recovery is an immediate re-fetch.
        const int wire = plan_.FetchCorruptions(r, d.map_task, d.push);
        if (static_cast<int>(att.verify_tries[s]) < wire) {
          ++att.verify_tries[s];
          ++corruptions_detected_;
          ++corruptions_recovered_;
          corruption_recovery_bytes_ += d.bytes;
          FetchOverNet(r, a, s);
          return;
        }
        // Corrupt stored map output: re-fetching cannot help (every copy
        // served fails verification), so only re-executing the producing
        // map task rematerializes a good push. Mark this push
        // unpublished and park until the re-run republishes it.
        const int bad_gens = plan_.MapOutputCorruptions(d.map_task, d.push);
        if (push_gen_[static_cast<size_t>(d.map_task)][d.push] < bad_gens) {
          const int gen = push_gen_[static_cast<size_t>(d.map_task)][d.push];
          ++corruptions_detected_;
          const sim::RetryPolicy& retry = config_.faults.corruption_retry;
          if (gen >= retry.max_retries) {
            Fail(Status::Corruption(
                "map task " + std::to_string(d.map_task) + " push " +
                std::to_string(d.push) + ": output corrupt beyond " +
                std::to_string(retry.max_retries) + " re-executions"));
            return;
          }
          ++push_gen_[static_cast<size_t>(d.map_task)][d.push];
          ++corruptions_recovered_;
          corruption_recovery_bytes_ += d.bytes;
          push_ready_[static_cast<size_t>(d.map_task)][d.push] = -1.0;
          push_src_[static_cast<size_t>(d.map_task)][d.push] = -1;
          ScheduleMapRun(d.map_task);
          if (failed_) return;
          StartFetch(r, a);
          return;
        }
        const size_t idx = t.trace->section_starts[s];
        const TraceOp& done_op = t.trace->ops[idx];
        tracker_.AddWork(TaskKind::kReduce, r, a, 0, done_op.bytes);
        ApplyDeltasOnce(reduce_delta_applied_[static_cast<size_t>(r)], idx,
                        done_op);
        // Attempt 0's fetches are first-time shuffle work; anything a
        // later (restarted or speculative) attempt pulls is recovery
        // re-fetch traffic.
        if (a > 0) shuffle_refetched_bytes_ += d.bytes;
        if (!maps_[static_cast<size_t>(d.map_task)].resident.empty() &&
            maps_[static_cast<size_t>(d.map_task)].resident[d.push]) {
          resident_hit_bytes_ += d.bytes;
        }
        att.fetched[s] = true;
        ++att.fetch_section;
        StartFetch(r, a);
        if (att.consume_blocked) {
          att.consume_blocked = false;
          TryConsume(r, a);
        }
      });
}

void Replayer::TryConsume(int r, int a) {
  // Consume stream: runs each section's engine work in order; delivery
  // sections wait for their fetch; the final section (engine Finish)
  // runs after every delivery has been consumed.
  if (failed_) return;
  ReduceAttempt& at = reduce_states_[static_cast<size_t>(r)]
                          .attempts[static_cast<size_t>(a)];
  if (!at.alive) return;
  const ReduceTaskIn& task = reduces_[static_cast<size_t>(r)];
  const CostTrace& trace = *task.trace;
  const uint32_t num_sections = trace.num_sections();
  if (at.consume_section >= num_sections) {
    ReduceDone(r, a);
    return;
  }
  const bool is_delivery = at.consume_section < task.deliveries.size();
  if (is_delivery && !at.fetched[at.consume_section]) {
    at.consume_blocked = true;
    return;
  }
  if (!at.in_section) {
    // Skip the net fetch op (handled by the fetch stream).
    at.op_idx =
        trace.section_starts[at.consume_section] + (is_delivery ? 1 : 0);
    at.in_section = true;
  }
  const uint32_t next_section_start =
      at.consume_section + 1 < num_sections
          ? trace.section_starts[at.consume_section + 1]
          : static_cast<uint32_t>(trace.ops.size());
  if (at.op_idx >= next_section_start) {
    ++at.consume_section;
    at.in_section = false;
    TryConsume(r, a);
    return;
  }
  const size_t idx = at.op_idx++;
  const TraceOp& op = trace.ops[idx];
  const Activity act = Categorize(/*is_map_task=*/false, op.tag);
  const double dur = WithDiskRetries(Duration(op, at.node), op,
                                     /*is_map=*/false, r, a, idx);
  ActInc(at, act);
  SubmitOp(op, at.node, dur, [this, r, a, idx, act]() {
    if (failed_) return;
    ReduceAttempt& att = reduce_states_[static_cast<size_t>(r)]
                             .attempts[static_cast<size_t>(a)];
    if (!att.alive) return;
    ActDec(att, act);
    const TraceOp& done_op =
        reduces_[static_cast<size_t>(r)].trace->ops[idx];
    tracker_.AddWork(
        TaskKind::kReduce, r, a,
        done_op.resource == OpResource::kCpu ? done_op.cpu_s : 0,
        done_op.resource == OpResource::kCpu ? 0 : done_op.bytes);
    ApplyDeltasOnce(reduce_delta_applied_[static_cast<size_t>(r)], idx,
                    done_op);
    auto gate =
        ckpt_gates_[static_cast<size_t>(r)].find(static_cast<uint32_t>(idx));
    if (gate != ckpt_gates_[static_cast<size_t>(r)].end()) {
      RegisterCheckpoint(r, gate->second, att.node);
    }
    TryConsume(r, a);
  });
}

void Replayer::ReduceDone(int r, int a) {
  ReduceTaskState& st = reduce_states_[static_cast<size_t>(r)];
  const int node = st.attempts[static_cast<size_t>(a)].node;
  st.attempts[static_cast<size_t>(a)].alive = false;
  tracker_.Succeeded(TaskKind::kReduce, r, a, engine_->now());
  for (size_t o = 0; o < st.attempts.size(); ++o) {
    if (st.attempts[o].alive) {
      KillReduceAttempt(r, static_cast<int>(o));
    }
  }
  const bool first = !st.done;
  st.done = true;
  if (first) {
    ++reduces_done_;
    reduce_winner_[static_cast<size_t>(r)] = node;
  }
  pool_->ReleaseSlot(opts_.job_id, node, /*is_map=*/false);
  MaybeSpeculate(TaskKind::kReduce);
  CheckCompletion();
}

}  // namespace onepass
