#include "src/mr/output.h"

#include "src/util/kv_buffer.h"

namespace onepass {

void OutputCollector::Emit(std::string_view key, std::string_view value) {
  const uint64_t rb = RecordBytes(key, value);
  pending_bytes_ += rb;
  bytes_ += rb;
  ++records_;
  metrics_->reduce_output_bytes += rb;
  ++metrics_->output_records;
  if (streaming_) ++metrics_->early_output_records;
  if (sink_ != nullptr) {
    sink_->push_back(Record{std::string(key), std::string(value)});
  }
  if (pending_bytes_ >= flush_bytes_) Flush();
}

void OutputCollector::Flush() {
  if (pending_bytes_ == 0) return;
  trace_->DiskWrite(pending_bytes_, OpTag::kOutput, /*requests=*/1,
                    /*d_output_bytes=*/pending_bytes_);
  pending_bytes_ = 0;
}

}  // namespace onepass
