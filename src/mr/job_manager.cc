#include "src/mr/job_manager.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/mr/replayer.h"
#include "src/sim/event_queue.h"

namespace onepass {

std::string_view JobOutcomeStateName(JobOutcomeState s) {
  switch (s) {
    case JobOutcomeState::kCompleted:
      return "completed";
    case JobOutcomeState::kRejected:
      return "rejected";
    case JobOutcomeState::kFailed:
      return "failed";
    case JobOutcomeState::kDeadlineExceeded:
      return "deadline_exceeded";
  }
  return "unknown";
}

namespace {

bool SameCluster(const ClusterConfig& a, const ClusterConfig& b) {
  return a.nodes == b.nodes && a.cores_per_node == b.cores_per_node &&
         a.map_slots == b.map_slots && a.reduce_slots == b.reduce_slots &&
         a.separate_intermediate_device == b.separate_intermediate_device;
}

// Nearest-rank percentile of an ascending-sorted sample.
double NearestRank(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  size_t rank =
      static_cast<size_t>(std::ceil(q * static_cast<double>(sorted.size())));
  rank = std::max<size_t>(rank, 1);
  rank = std::min(rank, sorted.size());
  return sorted[rank - 1];
}

SlotPool::Options PoolOptions(const ManagerConfig& mc) {
  SlotPool::Options o;
  o.policy = mc.policy;
  o.preemption = mc.preemption;
  return o;
}

// One batch replay: owns the engine, the pool, and every job's state.
class ManagerRun {
 public:
  ManagerRun(const ManagerConfig& mc, const std::vector<JobSubmission>& subs)
      : mc_(mc), subs_(subs), pool_(&engine_, mc.cluster, PoolOptions(mc)) {}

  Result<ManagerResult> Run();

 private:
  // Waiting = in the admission queue; Backoff = between a failed run and
  // its retry dispatch; Done = terminal (outcome final).
  enum class Phase : uint8_t { kPending, kWaiting, kRunning, kBackoff, kDone };

  struct JobState {
    Phase phase = Phase::kPending;
    JobOutcome outcome;
    double dispatch_time = -1;  // current attempt's start
    std::unique_ptr<PreparedJob> prepared;
    std::unique_ptr<Replayer> replayer;
    // Earlier attempts' state. In-flight simulated ops of an aborted
    // attempt still hold callbacks into its Replayer (they early-return
    // on arrival), so nothing is destroyed until the batch drains.
    std::vector<std::unique_ptr<PreparedJob>> retired_prepared;
    std::vector<std::unique_ptr<Replayer>> retired_replayers;
  };

  int NumTenants() const {
    return std::max<int>(1, static_cast<int>(mc_.tenants.size()));
  }
  static uint64_t StreamOf(int j) { return static_cast<uint64_t>(j) + 1; }

  Status ValidateBatch() const;
  void Arrive(int j);
  void Dispatch(int j);
  void OnDone(int j, const Status& s);
  void FinishJob(int j, JobOutcomeState state, Status status);
  void HitDeadline(int j);
  void TryDispatch();
  ManagerResult Collect();

  const ManagerConfig& mc_;
  const std::vector<JobSubmission>& subs_;
  sim::Engine engine_;
  SlotPool pool_;
  std::vector<JobState> jobs_;
  std::deque<int> waiting_;
  int running_ = 0;
};

Status ManagerRun::ValidateBatch() const {
  if (mc_.max_concurrent_jobs < 1) {
    return Status::InvalidArgument("max_concurrent_jobs must be >= 1");
  }
  if (mc_.max_queued_jobs < 0) {
    return Status::InvalidArgument("negative max_queued_jobs");
  }
  if (mc_.max_job_retries < 0) {
    return Status::InvalidArgument("negative max_job_retries");
  }
  if (mc_.timeline_bin_s <= 0) {
    return Status::InvalidArgument("timeline_bin_s must be positive");
  }
  RETURN_IF_ERROR(mc_.job_retry.Validate());
  for (size_t t = 0; t < mc_.tenants.size(); ++t) {
    if (mc_.tenants[t].weight <= 0) {
      return Status::InvalidArgument("tenant " + std::to_string(t) +
                                     ": weight must be positive");
    }
    if (mc_.tenants[t].max_running_tasks < 0) {
      return Status::InvalidArgument("tenant " + std::to_string(t) +
                                     ": negative max_running_tasks");
    }
  }
  for (size_t j = 0; j < subs_.size(); ++j) {
    const JobSubmission& sub = subs_[j];
    const std::string tag = "job " + std::to_string(j) + ": ";
    if (sub.input == nullptr) {
      return Status::InvalidArgument(tag + "null input");
    }
    if (sub.tenant < 0 || sub.tenant >= NumTenants()) {
      return Status::InvalidArgument(tag + "unknown tenant " +
                                     std::to_string(sub.tenant));
    }
    if (sub.arrival_time < 0) {
      return Status::InvalidArgument(tag + "negative arrival_time");
    }
    if (sub.deadline_s < 0) {
      return Status::InvalidArgument(tag + "negative deadline_s");
    }
    if (!SameCluster(sub.config.cluster, mc_.cluster)) {
      return Status::InvalidArgument(
          tag + "JobConfig::cluster does not match the manager's cluster");
    }
  }
  return Status::OK();
}

void ManagerRun::Arrive(int j) {
  JobState& st = jobs_[static_cast<size_t>(j)];
  if (running_ < mc_.max_concurrent_jobs && waiting_.empty()) {
    Dispatch(j);
    return;
  }
  if (static_cast<int>(waiting_.size()) >= mc_.max_queued_jobs) {
    FinishJob(j, JobOutcomeState::kRejected,
              Status::Unavailable(
                  "admission queue full (" +
                  std::to_string(mc_.max_concurrent_jobs) + " running, " +
                  std::to_string(waiting_.size()) + " queued)"));
    return;
  }
  st.phase = Phase::kWaiting;
  waiting_.push_back(j);
}

void ManagerRun::Dispatch(int j) {
  JobState& st = jobs_[static_cast<size_t>(j)];
  const JobSubmission& sub = subs_[static_cast<size_t>(j)];
  st.phase = Phase::kRunning;
  st.dispatch_time = engine_.now();
  if (st.outcome.start_time < 0) st.outcome.start_time = engine_.now();
  ++running_;

  // Lazy data plane: the job's real execution happens at dispatch, not at
  // submission — a rejected or dequeued job never pays for it. A retry is
  // a fresh run of the job under a derived seed (new fault draws).
  JobConfig cfg = sub.config;
  cfg.seed += 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(st.outcome.retries);
  Result<PreparedJob> prep =
      LocalCluster::PrepareJob(sub.spec, cfg, *sub.input);
  if (!prep.ok()) {
    OnDone(j, prep.status());
    return;
  }
  st.prepared = std::make_unique<PreparedJob>(std::move(prep).value());

  Replayer::Options opts;
  opts.job_id = j;
  opts.tenant = sub.tenant;
  opts.stream = StreamOf(j);
  opts.max_preemptions_per_task = mc_.max_preemptions_per_task;
  st.replayer = std::make_unique<Replayer>(
      &engine_, &pool_, st.prepared->config, st.prepared->plan,
      st.prepared->map_ins, st.prepared->reduce_ins, st.prepared->totals,
      opts);
  st.replayer->Start([this, j](const Status& s) { OnDone(j, s); });
}

void ManagerRun::OnDone(int j, const Status& s) {
  JobState& st = jobs_[static_cast<size_t>(j)];
  CHECK(st.phase == Phase::kRunning);
  if (st.replayer != nullptr) pool_.UnregisterJob(j);
  --running_;

  if (s.ok()) {
    JobResult& r = st.prepared->result;
    r.running_time = engine_.now() - st.dispatch_time;
    r.map_finish_time = st.replayer->map_finish_time() - st.dispatch_time;
    r.shuffle_from_disk_bytes = st.replayer->shuffle_from_disk_bytes();
    st.replayer->ExportSeries(&r);
    st.replayer->ExportFaultMetrics(&r.metrics);
    st.outcome.result = std::move(r);
    FinishJob(j, JobOutcomeState::kCompleted, Status::OK());
  } else if (s.IsDeadlineExceeded()) {
    FinishJob(j, JobOutcomeState::kDeadlineExceeded, s);
  } else if (st.outcome.retries < mc_.max_job_retries) {
    ++st.outcome.retries;
    st.phase = Phase::kBackoff;
    if (st.replayer != nullptr) {
      st.retired_replayers.push_back(std::move(st.replayer));
      st.retired_prepared.push_back(std::move(st.prepared));
    }
    const double backoff = mc_.job_retry.BackoffFor(
        st.outcome.retries - 1, static_cast<uint64_t>(j));
    engine_.ScheduleAfterStream(backoff, StreamOf(j), [this, j]() {
      JobState& s2 = jobs_[static_cast<size_t>(j)];
      if (s2.phase != Phase::kBackoff) return;  // deadline won the race
      // A retry queues ahead of fresh arrivals: the job has already
      // waited out a full run plus the backoff.
      if (running_ < mc_.max_concurrent_jobs) {
        Dispatch(j);
      } else {
        s2.phase = Phase::kWaiting;
        waiting_.push_front(j);
      }
    });
  } else {
    FinishJob(j, JobOutcomeState::kFailed, s);
  }
  TryDispatch();
}

void ManagerRun::FinishJob(int j, JobOutcomeState state, Status status) {
  JobState& st = jobs_[static_cast<size_t>(j)];
  st.phase = Phase::kDone;
  st.outcome.state = state;
  st.outcome.status = std::move(status);
  st.outcome.finish_time = engine_.now();
}

void ManagerRun::HitDeadline(int j) {
  JobState& st = jobs_[static_cast<size_t>(j)];
  Status expired = Status::DeadlineExceeded(
      "job " + std::to_string(j) + " exceeded its deadline of " +
      std::to_string(subs_[static_cast<size_t>(j)].deadline_s) + "s");
  switch (st.phase) {
    case Phase::kDone:
      return;  // already terminal
    case Phase::kWaiting: {
      auto it = std::find(waiting_.begin(), waiting_.end(), j);
      CHECK(it != waiting_.end());
      waiting_.erase(it);
      FinishJob(j, JobOutcomeState::kDeadlineExceeded, std::move(expired));
      return;
    }
    case Phase::kBackoff:
      // The pending retry timer sees kDone and becomes a no-op.
      FinishJob(j, JobOutcomeState::kDeadlineExceeded, std::move(expired));
      return;
    case Phase::kRunning:
      // Abort fails the replay, which fires OnDone with this status.
      st.replayer->Abort(std::move(expired));
      return;
    case Phase::kPending:
      CHECK(false);  // deadline events fire strictly after arrival
      return;
  }
}

void ManagerRun::TryDispatch() {
  while (running_ < mc_.max_concurrent_jobs && !waiting_.empty()) {
    const int j = waiting_.front();
    waiting_.pop_front();
    Dispatch(j);
  }
}

ManagerResult ManagerRun::Collect() {
  ManagerResult out;
  out.tenants.resize(static_cast<size_t>(NumTenants()));
  for (size_t t = 0; t < out.tenants.size(); ++t) {
    out.tenants[t].name = t < mc_.tenants.size()
                              ? mc_.tenants[t].name
                              : ("tenant" + std::to_string(t));
  }
  std::vector<std::vector<double>> latencies(out.tenants.size());
  out.jobs.reserve(jobs_.size());
  for (JobState& st : jobs_) {
    TenantStats& ts = out.tenants[static_cast<size_t>(st.outcome.tenant)];
    ++ts.jobs_submitted;
    switch (st.outcome.state) {
      case JobOutcomeState::kCompleted:
        ++ts.jobs_completed;
        latencies[static_cast<size_t>(st.outcome.tenant)].push_back(
            st.outcome.finish_time - st.outcome.arrival_time);
        break;
      case JobOutcomeState::kRejected:
        ++ts.jobs_rejected;
        ++out.rejected_jobs;
        break;
      case JobOutcomeState::kFailed:
        ++ts.jobs_failed;
        break;
      case JobOutcomeState::kDeadlineExceeded:
        ++ts.jobs_deadline_exceeded;
        break;
    }
    out.makespan = std::max(out.makespan, st.outcome.finish_time);
    out.jobs.push_back(std::move(st.outcome));
  }
  for (size_t t = 0; t < out.tenants.size(); ++t) {
    std::vector<double>& lat = latencies[t];
    if (lat.empty()) continue;
    std::sort(lat.begin(), lat.end());
    double sum = 0;
    for (double v : lat) sum += v;
    TenantStats& ts = out.tenants[t];
    ts.mean_latency_s = sum / static_cast<double>(lat.size());
    ts.p50_latency_s = NearestRank(lat, 0.50);
    ts.p99_latency_s = NearestRank(lat, 0.99);
    ts.max_latency_s = lat.back();
  }
  // Tenant-level Definition 1 progress: the mean of the tenant's completed
  // jobs' reduce-progress curves, sampled on the union of their step
  // times. Per-job curves are recorded in absolute cluster time and a
  // StepSeries reads 0 before its first point and holds 100 after its
  // last, so the mean is exactly "how far along is this tenant's finished
  // work at instant t".
  for (size_t t = 0; t < out.tenants.size(); ++t) {
    std::vector<const sim::StepSeries*> curves;
    for (const JobOutcome& jo : out.jobs) {
      if (jo.tenant == static_cast<int>(t) &&
          jo.state == JobOutcomeState::kCompleted) {
        curves.push_back(&jo.result.reduce_progress);
      }
    }
    if (curves.empty()) continue;
    std::vector<double> times;
    for (const sim::StepSeries* c : curves) {
      times.insert(times.end(), c->times.begin(), c->times.end());
    }
    std::sort(times.begin(), times.end());
    times.erase(std::unique(times.begin(), times.end()), times.end());
    TenantStats& ts = out.tenants[t];
    for (double at : times) {
      double total = 0;
      for (const sim::StepSeries* c : curves) total += c->ValueAt(at);
      ts.progress.Add(at, total / static_cast<double>(curves.size()));
    }
    ts.mean_progress_at_makespan_half =
        ts.progress.ValueAt(out.makespan / 2);
  }
  sim::BinnedSeries iowait;
  pool_.ExportUtilization(mc_.timeline_bin_s,
                          std::max(out.makespan, mc_.timeline_bin_s),
                          &out.cpu_util, &iowait);
  if (!out.cpu_util.values.empty()) {
    double sum = 0;
    for (double v : out.cpu_util.values) sum += v;
    out.avg_cpu_utilization =
        sum / static_cast<double>(out.cpu_util.values.size());
  }
  out.preemptions = pool_.preemptions();
  out.throttle_skips = pool_.throttle_skips();
  return out;
}

Result<ManagerResult> ManagerRun::Run() {
  RETURN_IF_ERROR(ValidateBatch());
  for (size_t t = 0; t < mc_.tenants.size(); ++t) {
    pool_.RegisterTenant(static_cast<int>(t), mc_.tenants[t].weight,
                         mc_.tenants[t].max_running_tasks);
  }
  jobs_.resize(subs_.size());
  for (size_t j = 0; j < subs_.size(); ++j) {
    jobs_[j].outcome.tenant = subs_[j].tenant;
    jobs_[j].outcome.arrival_time = subs_[j].arrival_time;
    const int id = static_cast<int>(j);
    engine_.ScheduleAtStream(subs_[j].arrival_time, StreamOf(id),
                             [this, id]() { Arrive(id); });
    if (subs_[j].deadline_s > 0) {
      engine_.ScheduleAtStream(subs_[j].arrival_time + subs_[j].deadline_s,
                               StreamOf(id), [this, id]() {
                                 HitDeadline(id);
                               });
    }
  }
  engine_.Run();
  for (size_t j = 0; j < jobs_.size(); ++j) {
    if (jobs_[j].phase != Phase::kDone) {
      FinishJob(static_cast<int>(j), JobOutcomeState::kFailed,
                Status::Internal("job " + std::to_string(j) +
                                 " stalled: engine drained before a "
                                 "terminal event"));
    }
  }
  return Collect();
}

}  // namespace

Result<ManagerResult> JobManager::Run(const ManagerConfig& config,
                                      const std::vector<JobSubmission>& jobs) {
  ManagerRun run(config, jobs);
  return run.Run();
}

Result<ChainResult> JobManager::RunChain(
    const std::vector<ChainStage>& stages) {
  return RunJobChain(stages);
}

}  // namespace onepass
