// MapRunner: executes one map task on the data plane.
//
// Two output organizations, matching §2.2 vs §5 of the paper:
//
//  * Sort path (Hadoop/sort-merge): emitted pairs buffer up to B_m bytes,
//    are sorted by (partition, key) and spilled as sorted runs; runs are
//    merged (multi-pass with factor F) into the final map output file. The
//    sort is the map-side CPU cost the hash engines eliminate. With a
//    combiner, key groups are collapsed at every sort/merge point.
//
//  * Hash path (our platform): no sort. Without a combiner, records are
//    grouped by partition id in one scan; with one, an in-memory hash
//    table applies initialize/combine and emits key-state pairs; for
//    incremental engines without a combiner, initialize still runs per
//    record so reducers receive states.
//
// Pipelining (MapReduce Online): on the sort path, each spill is pushed to
// the reducers as soon as it is written (gate = the spill's write op) and
// the map-side merge is skipped — the merge work moves to the reducers,
// reproducing §3.3's "pipelining only rebalances the sort-merge work".

#ifndef ONEPASS_MR_MAP_RUNNER_H_
#define ONEPASS_MR_MAP_RUNNER_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/dfs/chunk_reader.h"
#include "src/mr/api.h"
#include "src/mr/config.h"
#include "src/mr/cost_trace.h"
#include "src/mr/metrics.h"
#include "src/sim/fault_injector.h"
#include "src/util/hash.h"
#include "src/util/kv_buffer.h"

namespace onepass {

// How the map side organizes its output.
enum class MapOutputMode : uint8_t {
  kSortRaw,      // sort by (partition, key); raw values
  kSortCombine,  // sort + combiner at spills/merges; values become states
  kHashRaw,      // group by partition only; raw values
  kHashInit,     // group by partition; initialize() per record
  kHashCombine,  // in-memory hash table of states (map-side combine)
};

// Returns the mode a job's configuration implies.
MapOutputMode SelectMapOutputMode(const JobConfig& config, bool has_inc);

// True when the mode produces state-valued output.
inline bool ModeProducesStates(MapOutputMode mode) {
  return mode == MapOutputMode::kSortCombine ||
         mode == MapOutputMode::kHashInit ||
         mode == MapOutputMode::kHashCombine;
}

// One publishable unit of map output. Non-pipelined tasks have exactly one
// push; pipelined tasks publish one per spill.
struct PushSegment {
  // Completion of trace op `gate_op` makes this push fetchable.
  uint32_t gate_op = 0;
  std::vector<KvBuffer> partitions;  // indexed by reducer partition
  // Per-partition block streams (DESIGN.md §5.5), present iff the job runs
  // with a block codec. When non-empty, `partitions` holds empty buffers
  // (the encoded image supersedes them — reducers decode on fetch), and
  // `bytes`/`crcs` describe the encoded bytes: what "disk" and the wire
  // carry is the block stream, so checksums cover post-compression bytes.
  std::vector<std::string> encoded;
  uint64_t bytes = 0;
  // CRC32C per partition segment, recorded at publish time when the job
  // runs with integrity checksums (empty otherwise). Reducers re-verify
  // each fetched segment against these (DESIGN.md §5.2).
  std::vector<uint32_t> crcs;
};

// Shared push-finishing steps, used by MapRunner and the node combine tier
// (DESIGN.md §5.10). EncodePushSegment: under an active block codec,
// encodes push->partitions into per-partition block streams (prefix-coded
// when `sorted`, run-length key-grouped otherwise), charges the codec CPU
// to `trace` at `tag`, updates the codec shuffle counters, releases the
// raw partitions, and rewrites push->bytes to the encoded total; no-op
// under kNone. Call before charging the push's disk write.
// StampPushSegmentCrcs fills push->crcs from the bytes the push actually
// carries (encoded streams under a codec, raw partitions otherwise) when
// integrity checksums are on.
void EncodePushSegment(const JobConfig& config, PushSegment* push,
                       bool sorted, OpTag tag, TraceRecorder* trace,
                       JobMetrics* metrics);
void StampPushSegmentCrcs(const JobConfig& config, PushSegment* push);

struct MapTaskOutput {
  CostTrace trace;
  JobMetrics metrics;
  std::vector<PushSegment> pushes;
  bool sorted = false;  // segments are key-ordered (sort path)

  // Node combine tier (combine_scope == kNode; DESIGN.md §5.10): instead
  // of pushing, the task hands its raw per-partition output to the node's
  // combiner. The feed never touches disk or the codec — the node barrier
  // task does that once for the whole node. Empty under kTask.
  std::vector<KvBuffer> node_feed;
  uint64_t node_feed_bytes = 0;
  uint64_t node_feed_records = 0;
};

class MapRunner {
 public:
  // `partitioner` is h1; `total_partitions` = N*R reducers. `faults` may
  // be null (no corruption injection); `task_index` names this map task
  // in the fault plan's corruption keyspace.
  MapRunner(const JobConfig& config, MapOutputMode mode,
            UniversalHash partitioner, int total_partitions, Mapper* mapper,
            IncrementalReducer* inc,
            const sim::FaultPlan* faults = nullptr, int task_index = 0);

  // Runs the map function over one input chunk. `read_stats`, when given,
  // carries the verified DFS read's accounting (extra replica reads after
  // a quarantine, re-replication traffic) to charge to this task's trace
  // and metrics. Returns Status::Corruption when a spill run is corrupt
  // beyond the plan's rebuild budget.
  // Const and reentrant: a MapRunner holds no mutable state, every
  // fault/corruption draw is a pure function of (task_index, stream), so
  // concurrent runners over distinct tasks share nothing that can race
  // (DESIGN.md §5.3).
  Result<MapTaskOutput> Run(const KvBuffer& chunk,
                            const ChunkReadStats* read_stats = nullptr) const;

 private:
  Status RunSortPath(const KvBuffer& chunk, double map_fn_cost,
                     TraceRecorder* trace, MapTaskOutput* out) const;
  // Terminal step for a task's final per-partition output: under kTask,
  // encode + charge the disk write and append a PushSegment (the
  // historical path, byte-identical); under kNode, charge the memory-speed
  // handoff at OpTag::kNodeCombine and store the raw partitions as the
  // task's node_feed — the node barrier task publishes instead.
  void PublishOrFeed(std::vector<KvBuffer> parts, uint64_t bytes,
                     uint64_t records, bool sorted, TraceRecorder* trace,
                     MapTaskOutput* out) const;
  // Fills push.crcs from the bytes the push actually carries (encoded
  // block streams under a codec, raw partitions otherwise) when integrity
  // checksums are on.
  void StampPushCrcs(PushSegment* push) const;
  // Under an active block codec: encodes push->partitions into
  // per-partition block streams (prefix-coded when `sorted`, run-length
  // key-grouped otherwise), charges the codec CPU to `trace`, updates the
  // codec shuffle counters, releases the raw partitions, and rewrites
  // push->bytes to the encoded total. No-op under kNone. Call before
  // charging the push's disk write.
  void EncodePush(PushSegment* push, bool sorted, TraceRecorder* trace,
                  JobMetrics* metrics) const;

  const JobConfig& config_;
  MapOutputMode mode_;
  UniversalHash partitioner_;
  int total_partitions_;
  Mapper* mapper_;
  IncrementalReducer* inc_;
  const sim::FaultPlan* faults_;
  int task_index_;
};

}  // namespace onepass

#endif  // ONEPASS_MR_MAP_RUNNER_H_
