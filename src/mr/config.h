// Job and cluster configuration.

#ifndef ONEPASS_MR_CONFIG_H_
#define ONEPASS_MR_CONFIG_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/model/cost_model.h"
#include "src/sim/fault_injector.h"
#include "src/storage/block_format.h"
#include "src/storage/framed_io.h"
#include "src/util/simd_dispatch.h"

namespace onepass {

// Which reduce-side group-by implementation a job uses (§2.2, §4).
enum class EngineKind : uint8_t {
  kSortMerge,  // Hadoop baseline: sort map output, multi-pass merge reduce
  kMRHash,     // §4.1: hybrid-hash partitioning, values-list reduce
  kIncHash,    // §4.2: in-memory key->state table, first-come residency
  kDincHash,   // §4.3: FREQUENT-monitored hot keys
};

std::string_view EngineKindName(EngineKind kind);

// How map output reaches the reducers (DESIGN.md §5.9). kDisk is the
// paper's path: every push segment is written to the mapper's local disk
// and served from memory only within the retention window. kResident is
// the M3R-style path for iterative/repeated jobs: push segments stay
// pinned in a per-node ResidentSegmentCache and are served from memory for
// the whole job; segments evicted under the cache's byte budget fall back
// to the ordinary disk spill path, so correctness never depends on
// fitting. Outputs are byte-identical between the two modes — only the
// time plane's charges differ.
enum class ShuffleMode : uint8_t {
  kDisk,
  kResident,
};

std::string_view ShuffleModeName(ShuffleMode mode);

// Where combining happens before map output is pushed (DESIGN.md §5.10).
// kTask is the classic map-side combiner: each map task collapses its own
// duplicates and pushes one segment per task — byte-identical to the
// pre-node-tier platform. kNode adds the in-node aggregation tier: map
// tasks scheduled on the same simulated node feed a shared flat-table
// combiner instead of pushing directly, and the node emits ONE combined,
// codec-encoded push per (node, partition) at the node barrier, so hot
// keys collapse across co-located tasks. The final answer is the same
// multiset of records either way; only segment boundaries (and hence
// per-task counters and the delivery schedule) differ.
enum class CombineScope : uint8_t {
  kTask,
  kNode,
};

std::string_view CombineScopeName(CombineScope scope);

// Which hash-table implementation backs the hot grouping structures
// (engine state tables, sketch indexes, the map-side combiner). kFlat is
// the arena-backed open-addressing FlatTable (src/util/flat_table.h);
// kLegacy keeps the original std::unordered_map paths as a before/after
// baseline for the perf benches. Both produce the same output set; record
// order within a run may differ between the two (tests compare
// order-insensitively, and each mode is deterministic on its own).
enum class HashCoreKind : uint8_t {
  kFlat,
  kLegacy,
};

struct ClusterConfig {
  int nodes = 10;           // N
  int cores_per_node = 4;
  int map_slots = 4;        // concurrent map tasks per node
  int reduce_slots = 4;     // concurrent reduce tasks per node
  // Fig. 2(d): give intermediate data its own device so HDFS input/output
  // does not contend with spills (the paper's SSD experiment).
  bool separate_intermediate_device = false;
};

struct JobConfig {
  ClusterConfig cluster;
  EngineKind engine = EngineKind::kSortMerge;

  // MapReduce Online-style pipelining (§2.2/§3.3): mappers push output
  // eagerly at spill granularity instead of publishing once at task end.
  // Only meaningful for the sort-merge engine.
  bool pipelining = false;
  // Pipelining transmission granularity ("controlled by a parameter" in
  // HOP): the map cuts and pushes a sorted run every this many output
  // bytes. 0 = use the map buffer size (push only on natural spills).
  uint64_t pipeline_push_bytes = 64 << 10;
  // MapReduce Online's periodic snapshots (§3.3(4)): if N > 0, each
  // sort-merge reducer produces a snapshot answer after receiving each
  // 1/(N+1) fraction of its deliveries (e.g. N=3 -> at 25/50/75%) by
  // re-running the merge over everything so far — the costly,
  // non-incremental alternative to INC-hash's continuous output.
  int snapshots = 0;

  // Hadoop parameters (Table 2, part 1).
  uint64_t chunk_bytes = 4 << 20;       // C, map input chunk size
  int merge_factor = 10;                // F
  int reducers_per_node = 4;            // R
  // DFS replication factor r: copies of each input chunk (must match the
  // ChunkStore the job reads; RunJob falls back to the chunk's primary
  // when the store was built without replicas).
  int replication = 1;

  // Hardware description (Table 2, part 3).
  uint64_t map_buffer_bytes = 1 << 20;     // B_m per map task
  uint64_t reduce_memory_bytes = 4 << 20;  // B_r per reduce task

  // Whether the map side applies the IncrementalReducer as a combiner
  // (building an in-memory hash table of states, §5 "Hash-based Map
  // Output"). Off for workloads whose state does not compress (e.g.
  // sessionization, where every click must be kept).
  bool map_side_combine = false;

  // Combine scope (see CombineScope). kNode requires an IncrementalReducer
  // (the combine function) and is incompatible with pipelining, whose
  // eager per-spill pushes would defeat the node barrier. Like any
  // combiner tier, kNode assumes the combine function is commutative and
  // associative: the node barrier folds co-located task states in task-id
  // order, not reducer delivery order, so an order-sensitive combine
  // (e.g. sessionization's bounded session buffer) may legally produce
  // different state bytes than kTask. Validate() cannot check this.
  CombineScope combine_scope = CombineScope::kTask;
  // Memory budget for one node's combine tier, bytes, measured with
  // Arena::ApproxMemoryUsage through FlatTable::ApproxMemoryUsage. 0 =
  // unbounded. When a (node, partition) shard exceeds its share of the
  // budget, the shard degrades to a FREQUENT-sketch bounded-memory
  // combiner (DINC's discipline, PAPER.md §4.3): hot keys keep combining
  // in the monitored slots, everything else passes through uncombined.
  // Exactness is preserved — reducers re-combine the passthrough records.
  uint64_t node_combine_budget_bytes = 0;

  // Engine knobs.
  // Write-buffer page per disk bucket. Engines clamp the effective page so
  // that write buffers never consume more than half the reduce memory.
  uint64_t bucket_page_bytes = 16 << 10;
  // Estimated distinct keys per reducer; sizes the bucket count h for
  // INC/DINC (0 = use a default).
  uint64_t expected_keys_per_reducer = 0;
  // Estimated reduce input bytes per reducer; sizes MR-hash's bucket count
  // (0 = use a default).
  uint64_t expected_bytes_per_reducer = 0;
  // DINC-hash coverage threshold phi in (0,1]: if set, the job terminates
  // at end of input returning states with coverage lower bound >= phi and
  // skipping the disk-resident buckets (approximate early answers, §4.3).
  double dinc_coverage_threshold = 0;

  // Per-entry bookkeeping overhead charged against reduce memory for each
  // resident key (hash-table slot, counter, pointers).
  uint64_t resident_entry_overhead = 32;

  // Hash-table implementation for the hot grouping paths (see HashCoreKind).
  HashCoreKind hash_core = HashCoreKind::kFlat;

  // Batch data plane (DESIGN.md §5.8). Records per RecordBatch handed
  // through MapBatch and the engines' consume loops. 0 derives the batch
  // from codec_block_bytes (the ~48 KB block is the natural unit; see
  // EffectiveBatchRecords). Any value — including 1, the degenerate
  // scalar-equivalent plane — produces byte-identical outputs, schedules,
  // and serialized metrics; the batch_equivalence test enforces this.
  uint64_t batch_records = 0;

  // SIMD policy for this job's inner loops (batch hash mixing). kAuto uses
  // the process-wide detected tier; kForceScalar pins the portable scalar
  // kernels — a testing knob, since every tier is bit-identical anyway.
  // CRC32C framing dispatches on the process-wide tier (SetSimdTier)
  // because checksums are tier-invariant by definition.
  enum class SimdPolicy : uint8_t { kAuto = 0, kForceScalar = 1 };
  SimdPolicy simd = SimdPolicy::kAuto;

  // Fault injection & recovery (simulated time plane; see
  // src/sim/fault_injector.h). Default: no faults.
  sim::FaultConfig faults;

  // Reduce-state checkpointing (DESIGN.md §5.6): every N shuffle
  // deliveries (checkpoint_interval_segments) or every time this many
  // consumed shuffle bytes accumulate (checkpoint_interval_bytes), a
  // reducer serializes its engine state through the framed/CRC +
  // block-codec path and writes it as `checkpoint_replication` replicated
  // copies (local disk + peers over the network). A crashed reducer then
  // resumes from the newest verified replica and re-fetches only the
  // segments past the checkpoint's watermark instead of replaying the
  // whole shuffle. 0/0 (the default) disables checkpointing, leaving
  // schedules byte-identical to the pre-checkpoint platform.
  uint64_t checkpoint_interval_segments = 0;
  uint64_t checkpoint_interval_bytes = 0;
  int checkpoint_replication = 2;

  // Shuffle delivery mode (see ShuffleMode). Resident mode changes only
  // what the time plane charges for publishing and re-reading map output;
  // the data plane, delivery order, and outputs are identical to kDisk.
  ShuffleMode shuffle_mode = ShuffleMode::kDisk;
  // Per-node byte budget for the resident segment cache. 0 = unbounded
  // (every segment stays resident); otherwise the oldest segments on a
  // node spill to disk until the node is back under budget. Ignored under
  // kDisk.
  uint64_t resident_cache_bytes = 0;
  // Iteration count for JobBuilder::Iterate / RunChain: how many times the
  // job is run as a chained sequence with partition-stable placement and
  // (for INC/DINC) reduce-state carry-over. 1 = an ordinary single job.
  int iterations = 1;

  // Block codec for every spill/shuffle/bucket stream (DESIGN.md §5.5).
  // kNone keeps the raw varint record format on disk and on the wire —
  // byte-identical to the pre-codec platform, so goldens don't move. kLz
  // routes those streams through BlockBuilder (prefix coding on sorted
  // runs, run-length key grouping on hash buckets) plus the LZ block
  // codec; CRCs then cover the *encoded* image. Either way the records a
  // consumer sees are identical — only the bytes charged for moving them
  // change.
  BlockCodecKind block_codec = BlockCodecKind::kNone;
  // Target raw bytes per encoded block (32-64 KB is the useful range).
  uint64_t codec_block_bytes = 48 << 10;

  // Data integrity: CRC32C block framing + verification of every
  // simulated persistent/network stream (DESIGN.md §5.2). On by default;
  // verification work is accounted in JobMetrics but never charged to the
  // time plane, so schedules are byte-identical either way.
  IntegrityConfig integrity;

  // Host threads executing the data plane (map tasks and reduce-engine
  // runs; DESIGN.md §5.3). 1 = sequential; N > 1 = a work-stealing pool of
  // N threads; 0 = one per hardware thread. The simulated time plane is
  // always single-threaded, and results are byte-identical across every
  // setting: per-task outputs, traces, metrics, and fault/corruption draws
  // are keyed by task id, never by execution order.
  int data_plane_threads = 0;

  // Simulation.
  CostModel costs;
  uint64_t seed = 42;
  // Collect full job output into JobResult::outputs (tests only; large).
  bool collect_outputs = false;
  // Timeline sampling bin for utilization/iowait series, seconds.
  double timeline_bin_s = 30.0;

  // Rejects configurations no job could run under: empty/negative cluster
  // shapes, merge_factor < 2, zero chunk or buffer sizes, coverage
  // thresholds outside (0, 1], replication > nodes, and malformed fault
  // plans (negative times, out-of-range nodes or rates). Called at the top
  // of LocalCluster::RunJob.
  Status Validate() const;
};

// Records per RecordBatch for this config: batch_records if set, else
// derived from the codec block target (~48 KB / a nominal 64-byte record),
// clamped to a sane range. Pure performance knob — see batch_records.
inline uint64_t EffectiveBatchRecords(const JobConfig& cfg) {
  if (cfg.batch_records > 0) return cfg.batch_records;
  const uint64_t derived = cfg.codec_block_bytes / 64;
  if (derived < 64) return 64;
  if (derived > 4096) return 4096;
  return derived;
}

// The SIMD tier this job's batch kernels run at (see JobConfig::simd).
inline SimdTier ResolveSimdTier(JobConfig::SimdPolicy policy) {
  return policy == JobConfig::SimdPolicy::kForceScalar ? SimdTier::kScalar
                                                       : CurrentSimdTier();
}

}  // namespace onepass

#endif  // ONEPASS_MR_CONFIG_H_
