// LocalCluster: runs a MapReduce job end to end.
//
// Execution is split into a *data plane* and a *time plane* (DESIGN.md §5):
//
//   1. Every map task executes for real (MapRunner), producing actual
//      per-partition output bytes and a cost trace.
//   2. A provisional map-only replay on the simulated cluster fixes the
//      map completion order (and push times under pipelining), which
//      determines the order reducers receive shuffle deliveries in.
//   3. Every reduce task executes for real: its GroupByEngine consumes the
//      deliveries in that order and finishes, producing real output and a
//      sectioned cost trace.
//   4. The full replay schedules all map and reduce traces on the
//      simulated nodes (slots, CPU cores, disks, NICs); reduce sections
//      gate on the simulated completion of the map push that feeds them.
//      The replay yields the running time, the paper's incremental
//      map/reduce progress curves (Definition 1), CPU utilization and
//      iowait timelines, and the Fig. 2(a)-style task activity series.
//
// Data ("who computed what, how many bytes spilled") is exact and
// engine-authoritative; time is simulated from the calibrated CostModel.
//
// Steps 1 and 3 — the data plane — may execute across a work-stealing
// thread pool (JobConfig::data_plane_threads; DESIGN.md §5.3). Steps 2
// and 4 — the time plane — are always single-threaded. Results are
// byte-identical at every thread count: tasks write only state keyed by
// their own task id, and per-task results merge in task-id order.
//
// PrepareJob runs steps 1–3 and packages everything step 4 needs into a
// self-contained PreparedJob, so a scheduler (src/mr/job_manager.h) can
// replay many prepared jobs on one shared SlotPool. RunJob is the solo
// path: PrepareJob plus a single-job replay, byte-identical to the
// historical monolithic implementation.

#ifndef ONEPASS_MR_CLUSTER_H_
#define ONEPASS_MR_CLUSTER_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/dfs/chunk_store.h"
#include "src/mr/api.h"
#include "src/mr/config.h"
#include "src/mr/cost_trace.h"
#include "src/mr/metrics.h"
#include "src/mr/replayer.h"
#include "src/mr/resident.h"
#include "src/mr/types.h"
#include "src/sim/fault_injector.h"
#include "src/sim/timeline.h"

namespace onepass {

// A runnable query: the map function plus one (or both) reduce contracts.
struct JobSpec {
  std::string name;
  MapperFactory mapper;
  ReducerFactory reducer;              // values-list API (SM, MR-hash)
  IncrementalReducerFactory inc;       // init/cb/fn API (INC, DINC, combiner)
};

struct JobResult {
  JobMetrics metrics;

  double running_time = 0;     // simulated seconds, job start to last task
  double map_finish_time = 0;  // when the last map task completed
  int map_tasks = 0;
  int reduce_tasks = 0;

  // Progress curves in percent (paper Definition 1).
  sim::StepSeries map_progress;
  sim::StepSeries reduce_progress;
  // The three reduce-progress components, each in [0, 1].
  sim::StepSeries shuffle_progress;
  sim::StepSeries reduce_work_progress;
  sim::StepSeries output_progress;

  // Cluster-average CPU utilization and iowait (Fig. 2(b,c)-style).
  sim::BinnedSeries cpu_util;
  sim::BinnedSeries iowait;

  // Active-task counts by operation (Fig. 2(a)-style timeline).
  sim::StepSeries active_map;
  sim::StepSeries active_shuffle;
  sim::StepSeries active_merge;
  sim::StepSeries active_reduce;

  // Map output fetched from the mapper's disk because the reducer started
  // too late to catch it in memory (the R > slots second-wave penalty).
  uint64_t shuffle_from_disk_bytes = 0;

  // CPU attribution (totals across the cluster; divide by N for per node).
  double map_cpu_s = 0;
  double reduce_cpu_s = 0;

  // Host wall-clock seconds the two data-plane phases took (map tasks;
  // reduce-engine runs). These measure the *real* machine, not the
  // simulation — they vary run to run and with data_plane_threads, and are
  // excluded from the determinism contract (everything else in a JobResult
  // is byte-identical across thread counts). bench_parallel_scaling
  // reports speedup from them.
  double map_plane_wall_s = 0;
  double reduce_plane_wall_s = 0;

  // Full output records (only when config.collect_outputs).
  std::vector<Record> outputs;
};

// Everything the time plane needs to replay a job whose data plane already
// ran: the traces, delivery/checkpoint marks, fault plan, and the partial
// JobResult (data-plane metrics, outputs, CPU attribution, wall times).
// Self-contained — Replayer::MapTaskIn/ReduceTaskIn trace pointers point
// into the sibling map_traces/reduce_traces vectors, which moving the
// struct does not relocate. Replay the same PreparedJob any number of
// times; each replay's Replayer must not outlive it (it references config
// and plan).
struct PreparedJob {
  explicit PreparedJob(const JobConfig& cfg)
      : config(cfg), plan(config.faults, config.seed) {}
  PreparedJob(PreparedJob&&) = default;
  PreparedJob& operator=(PreparedJob&&) = default;
  PreparedJob(const PreparedJob&) = delete;
  PreparedJob& operator=(const PreparedJob&) = delete;

  JobConfig config;
  sim::FaultPlan plan;
  // Data-plane portion of the result; a replay fills in the rest.
  JobResult result;

  std::vector<CostTrace> map_traces;
  std::vector<CostTrace> reduce_traces;
  std::vector<Replayer::MapTaskIn> map_ins;
  std::vector<Replayer::ReduceTaskIn> reduce_ins;
  Replayer::Totals totals;
};

class LocalCluster {
 public:
  // Runs `spec` over `input` under `config`. The input's chunking must
  // match config.chunk_bytes (build it with MakeInput or ChunkStore).
  static Result<JobResult> RunJob(const JobSpec& spec, const JobConfig& config,
                                  const ChunkStore& input);

  // Runs the data plane only (steps 1–3) and returns the replay inputs.
  // The caller owns when and where the time plane runs — solo (RunJob) or
  // interleaved with other jobs on a shared SlotPool (JobManager).
  //
  // `resident` (may be null) carries one iteration's worth of chain state
  // under shuffle_mode == kResident (DESIGN.md §5.9): prior reduce state
  // to adopt, the placement to pin tasks to, where to save this job's
  // state, and the previous input store for input caching. It never
  // changes the data plane's outputs — phases 1-3 consume the same bytes
  // in the same order either way; only the recorded time-plane charges and
  // task placement differ.
  static Result<PreparedJob> PrepareJob(const JobSpec& spec,
                                        const JobConfig& config,
                                        const ChunkStore& input,
                                        const ResidentContext* resident =
                                            nullptr);
};

}  // namespace onepass

#endif  // ONEPASS_MR_CLUSTER_H_
