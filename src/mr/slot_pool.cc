#include "src/mr/slot_pool.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/mr/replayer.h"

namespace onepass {

SlotPool::NodeState::NodeState(sim::Engine* engine, const ClusterConfig& cl,
                               int id)
    : cpu(engine, cl.cores_per_node, "cpu" + std::to_string(id)),
      hdd(engine, 1, "hdd" + std::to_string(id)),
      nic(engine, 1, "nic" + std::to_string(id)),
      free_map_slots(cl.map_slots),
      free_reduce_slots(cl.reduce_slots) {
  if (cl.separate_intermediate_device) {
    ssd = std::make_unique<sim::Server>(engine, 1, "ssd" + std::to_string(id));
  }
}

SlotPool::SlotPool(sim::Engine* engine, const ClusterConfig& cluster,
                   Options options)
    : engine_(engine), cluster_(cluster), options_(options) {
  nodes_.reserve(static_cast<size_t>(cluster.nodes));
  for (int n = 0; n < cluster.nodes; ++n) {
    nodes_.push_back(std::make_unique<NodeState>(engine, cluster, n));
  }
  tenants_[0] = TenantState{};
}

SlotPool::TenantState& SlotPool::Tenant(int id) {
  auto it = tenants_.find(id);
  CHECK(it != tenants_.end());
  return it->second;
}

void SlotPool::RegisterTenant(int tenant, double weight,
                              int max_running_tasks) {
  CHECK_GT(weight, 0.0);
  CHECK_GE(max_running_tasks, 0);
  TenantState& t = tenants_[tenant];
  t.weight = weight;
  t.max_running = max_running_tasks;
}

void SlotPool::RegisterJob(int job, int tenant, Replayer* client) {
  CHECK(client != nullptr);
  CHECK(tenants_.count(tenant) != 0);
  auto [it, inserted] = jobs_.emplace(job, JobInfo{client, tenant});
  CHECK(inserted);
}

void SlotPool::UnregisterJob(int job) {
  auto it = jobs_.find(job);
  CHECK(it != jobs_.end());
  for (auto& node : nodes_) {
    auto mq = node->map_q.find(job);
    if (mq != node->map_q.end()) {
      node->pending_maps -= static_cast<int>(mq->second.size());
      node->map_q.erase(mq);
    }
    auto rq = node->reduce_q.find(job);
    if (rq != node->reduce_q.end()) {
      node->pending_reduces -= static_cast<int>(rq->second.size());
      node->reduce_q.erase(rq);
    }
    CHECK(node->running_maps.count(job) == 0);
  }
  jobs_.erase(it);
}

void SlotPool::QueueMap(int job, int node, PendingTask p) {
  nodes_[static_cast<size_t>(node)]->map_q[job].push_back(p);
  ++nodes_[static_cast<size_t>(node)]->pending_maps;
}

void SlotPool::QueueReduce(int job, int node, PendingTask p) {
  nodes_[static_cast<size_t>(node)]->reduce_q[job].push_back(p);
  ++nodes_[static_cast<size_t>(node)]->pending_reduces;
}

void SlotPool::EnqueueMap(int job, int node, PendingTask p) {
  QueueMap(job, node, p);
  PumpNode(node);
  if (options_.preemption && options_.policy == SchedulePolicy::kFairShare) {
    MaybePreempt(node, job);
  }
}

void SlotPool::EnqueueReduce(int job, int node, PendingTask p) {
  QueueReduce(job, node, p);
  PumpNode(node);
}

std::vector<PendingTask> SlotPool::TakeJobQueue(int job, int node,
                                                bool is_map) {
  NodeState& nd = *nodes_[static_cast<size_t>(node)];
  auto& qmap = is_map ? nd.map_q : nd.reduce_q;
  std::vector<PendingTask> out;
  auto it = qmap.find(job);
  if (it == qmap.end()) return out;
  out.assign(it->second.begin(), it->second.end());
  (is_map ? nd.pending_maps : nd.pending_reduces) -=
      static_cast<int>(out.size());
  qmap.erase(it);
  return out;
}

void SlotPool::ReleaseSlot(int job, int node, bool is_map) {
  NodeState& nd = *nodes_[static_cast<size_t>(node)];
  TenantState& t = Tenant(jobs_.at(job).tenant);
  if (is_map) {
    CHECK_LT(nd.free_map_slots, cluster_.map_slots);
    ++nd.free_map_slots;
    auto it = nd.running_maps.find(job);
    CHECK(it != nd.running_maps.end());
    if (--it->second == 0) nd.running_maps.erase(it);
    --t.running_maps;
  } else {
    CHECK_LT(nd.free_reduce_slots, cluster_.reduce_slots);
    ++nd.free_reduce_slots;
  }
  --t.running;
  PumpNode(node);
  // Crossing from at-cap to below-cap can unblock throttled maps queued
  // on any node, not just the one whose slot freed.
  if (is_map && t.max_running > 0 && t.running_maps == t.max_running - 1) {
    for (int n = 0; n < num_nodes(); ++n) {
      if (n != node) PumpNode(n);
    }
  }
}

int SlotPool::PickJob(const NodeState& node, int node_id, bool is_map) {
  const auto& qmap = is_map ? node.map_q : node.reduce_q;
  int best = -1;
  double best_share = 0;
  for (const auto& [job, q] : qmap) {
    if (q.empty()) continue;
    const JobInfo& info = jobs_.at(job);
    if (!info.client->SchedulableOn(node_id)) continue;
    const TenantState& t = tenants_.at(info.tenant);
    // The throttle cap binds map starts only: a pipelined reduce parks
    // in its slot until maps deliver, so counting it against the cap
    // would deadlock the tenant against its own map work.
    if (is_map && t.max_running > 0 && t.running_maps >= t.max_running) {
      ++throttle_skips_;
      continue;
    }
    if (options_.policy == SchedulePolicy::kFifo) return job;
    const double share = static_cast<double>(t.running) / t.weight;
    // Ties go to the earlier job (ascending map order).
    if (best < 0 || share < best_share) {
      best = job;
      best_share = share;
    }
  }
  return best;
}

void SlotPool::PumpNode(int n) {
  NodeState& nd = *nodes_[static_cast<size_t>(n)];
  while (nd.free_map_slots > 0) {
    const int job = PickJob(nd, n, /*is_map=*/true);
    if (job < 0) break;
    auto& q = nd.map_q[job];
    const PendingTask p = q.front();
    q.pop_front();
    if (q.empty()) nd.map_q.erase(job);
    --nd.pending_maps;
    const JobInfo info = jobs_.at(job);
    info.client->QueueEntryPopped(/*is_map=*/true, p);
    if (!info.client->MapEntryRunnable(p)) continue;
    --nd.free_map_slots;
    ++nd.running_maps[job];
    TenantState& t = Tenant(info.tenant);
    ++t.running;
    ++t.running_maps;
    info.client->PoolStartMap(p.task, n, p.speculative);
  }
  while (nd.free_reduce_slots > 0) {
    const int job = PickJob(nd, n, /*is_map=*/false);
    if (job < 0) break;
    auto& q = nd.reduce_q[job];
    const PendingTask p = q.front();
    q.pop_front();
    if (q.empty()) nd.reduce_q.erase(job);
    --nd.pending_reduces;
    const JobInfo info = jobs_.at(job);
    info.client->QueueEntryPopped(/*is_map=*/false, p);
    if (!info.client->ReduceEntryRunnable(p)) continue;
    --nd.free_reduce_slots;
    ++Tenant(info.tenant).running;
    info.client->PoolStartReduce(p.task, n, p.speculative);
  }
}

void SlotPool::PreemptForJob(int job) {
  if (!options_.preemption ||
      options_.policy != SchedulePolicy::kFairShare) {
    return;
  }
  for (size_t n = 0; n < nodes_.size(); ++n) {
    NodeState& nd = *nodes_[n];
    auto it = nd.map_q.find(job);
    if (it == nd.map_q.end()) continue;
    // Each eviction pumps the node and may consume one waiting entry, so
    // the pass is bounded by the entries queued now; the first failed
    // attempt ends it (nothing changed, retrying cannot succeed).
    const size_t waiting = it->second.size();
    for (size_t i = 0; i < waiting; ++i) {
      auto again = nd.map_q.find(job);
      if (again == nd.map_q.end() || again->second.empty()) break;
      if (!MaybePreempt(static_cast<int>(n), job)) break;
    }
  }
}

bool SlotPool::MaybePreempt(int node, int job) {
  NodeState& nd = *nodes_[static_cast<size_t>(node)];
  // Only act if the beneficiary's entry is still waiting on a full node.
  auto wq = nd.map_q.find(job);
  if (wq == nd.map_q.end() || wq->second.empty()) return false;
  if (nd.free_map_slots > 0) return false;
  const JobInfo& binfo = jobs_.at(job);
  if (!binfo.client->SchedulableOn(node)) return false;
  const TenantState& bt = tenants_.at(binfo.tenant);
  if (bt.max_running > 0 && bt.running_maps >= bt.max_running) return false;
  const double b_share_after =
      static_cast<double>(bt.running + 1) / bt.weight;

  // Candidate victims: jobs of *other* tenants with a running map attempt
  // on this node. Evict from the most over-share tenant, latest-admitted
  // job first, and only when the transfer leaves the victim tenant at or
  // above the beneficiary's post-transfer share — the discrete
  // no-ping-pong condition (the freed slot can never be preempted back).
  struct Candidate {
    double share;
    int tenant;
    int job;
  };
  std::vector<Candidate> cands;
  for (const auto& [vjob, count] : nd.running_maps) {
    CHECK_GT(count, 0);
    const JobInfo& vinfo = jobs_.at(vjob);
    if (vinfo.tenant == binfo.tenant) continue;
    const TenantState& vt = tenants_.at(vinfo.tenant);
    const double share_after =
        static_cast<double>(vt.running - 1) / vt.weight;
    if (share_after < b_share_after) continue;
    cands.push_back({static_cast<double>(vt.running) / vt.weight,
                     vinfo.tenant, vjob});
  }
  std::sort(cands.begin(), cands.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.share != b.share) return a.share > b.share;
              if (a.tenant != b.tenant) return a.tenant < b.tenant;
              return a.job > b.job;
            });
  for (const Candidate& c : cands) {
    // PreemptMapOn kills one attempt and releases its slot, which pumps
    // this node — the freed slot goes to whichever queued job the policy
    // now favors (usually the beneficiary, being in deficit).
    if (jobs_.at(c.job).client->PreemptMapOn(node)) {
      ++preemptions_;
      return true;
    }
  }
  return false;
}

int SlotPool::MapLoad(int node) const {
  const NodeState& nd = *nodes_[static_cast<size_t>(node)];
  return nd.pending_maps + (cluster_.map_slots - nd.free_map_slots);
}

int SlotPool::ReduceLoad(int node) const {
  const NodeState& nd = *nodes_[static_cast<size_t>(node)];
  return nd.pending_reduces + (cluster_.reduce_slots - nd.free_reduce_slots);
}

sim::Server* SlotPool::Route(int node, const TraceOp& op) {
  NodeState& nd = *nodes_[static_cast<size_t>(node)];
  switch (op.resource) {
    case OpResource::kCpu:
      return &nd.cpu;
    case OpResource::kNet:
      return &nd.nic;
    case OpResource::kDisk:
      if (nd.ssd != nullptr && op.tag != OpTag::kMapInput &&
          op.tag != OpTag::kOutput) {
        return nd.ssd.get();
      }
      return &nd.hdd;
    case OpResource::kStall:
      break;  // stalls occupy no server; the replayer schedules a timer
  }
  CHECK(false);
  return nullptr;
}

void SlotPool::ExportUtilization(double bin_s, double horizon,
                                 sim::BinnedSeries* util,
                                 sim::BinnedSeries* iowait) const {
  sim::BinnedSeries u_sum, w_sum;
  for (size_t n = 0; n < nodes_.size(); ++n) {
    sim::BinnedSeries u = sim::UtilizationSeries(nodes_[n]->cpu, bin_s,
                                                 horizon);
    sim::BinnedSeries w = sim::IowaitSeries(nodes_[n]->cpu, nodes_[n]->hdd,
                                            bin_s, horizon);
    if (nodes_[n]->ssd != nullptr) {
      sim::BinnedSeries w2 =
          sim::IowaitSeries(nodes_[n]->cpu, *nodes_[n]->ssd, bin_s, horizon);
      for (size_t i = 0; i < w.values.size(); ++i) {
        w.values[i] = std::max(w.values[i], w2.values[i]);
      }
    }
    if (n == 0) {
      u_sum = u;
      w_sum = w;
    } else {
      for (size_t i = 0; i < u_sum.values.size(); ++i) {
        u_sum.values[i] += u.values[i];
        w_sum.values[i] += w.values[i];
      }
    }
  }
  for (auto& v : u_sum.values) v /= static_cast<double>(nodes_.size());
  for (auto& v : w_sum.values) v /= static_cast<double>(nodes_.size());
  *util = u_sum;
  *iowait = w_sum;
}

}  // namespace onepass
