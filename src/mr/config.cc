#include "src/mr/config.h"

namespace onepass {

std::string_view EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kSortMerge:
      return "sort-merge";
    case EngineKind::kMRHash:
      return "MR-hash";
    case EngineKind::kIncHash:
      return "INC-hash";
    case EngineKind::kDincHash:
      return "DINC-hash";
  }
  return "unknown";
}

}  // namespace onepass
