#include "src/mr/config.h"

#include <string>

namespace onepass {

std::string_view EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kSortMerge:
      return "sort-merge";
    case EngineKind::kMRHash:
      return "MR-hash";
    case EngineKind::kIncHash:
      return "INC-hash";
    case EngineKind::kDincHash:
      return "DINC-hash";
  }
  return "unknown";
}

std::string_view ShuffleModeName(ShuffleMode mode) {
  switch (mode) {
    case ShuffleMode::kDisk:
      return "disk";
    case ShuffleMode::kResident:
      return "resident";
  }
  return "unknown";
}

std::string_view CombineScopeName(CombineScope scope) {
  switch (scope) {
    case CombineScope::kTask:
      return "task";
    case CombineScope::kNode:
      return "node";
  }
  return "unknown";
}

Status JobConfig::Validate() const {
  if (cluster.nodes < 1 || cluster.cores_per_node < 1 ||
      cluster.map_slots < 1 || cluster.reduce_slots < 1) {
    return Status::InvalidArgument("invalid cluster shape");
  }
  if (reducers_per_node < 1) {
    return Status::InvalidArgument("need at least one reducer per node");
  }
  if (merge_factor < 2) {
    return Status::InvalidArgument("merge_factor must be >= 2");
  }
  if (chunk_bytes == 0) {
    return Status::InvalidArgument("chunk_bytes must be > 0");
  }
  if (map_buffer_bytes == 0 || reduce_memory_bytes == 0) {
    return Status::InvalidArgument("map/reduce buffers must be > 0");
  }
  if (dinc_coverage_threshold < 0 || dinc_coverage_threshold > 1.0) {
    return Status::InvalidArgument(
        "dinc_coverage_threshold outside (0, 1]");
  }
  if (replication < 1 || replication > cluster.nodes) {
    return Status::InvalidArgument(
        "replication must be in [1, nodes], got " +
        std::to_string(replication));
  }
  if (integrity.block_bytes == 0) {
    return Status::InvalidArgument("integrity.block_bytes must be > 0");
  }
  if (codec_block_bytes == 0 || codec_block_bytes > (16u << 20)) {
    return Status::InvalidArgument(
        "codec_block_bytes must be in (0, 16 MB], got " +
        std::to_string(codec_block_bytes));
  }
  if (batch_records > (1u << 20)) {
    return Status::InvalidArgument(
        "batch_records must be <= 1M (0 = derive from codec_block_bytes), "
        "got " +
        std::to_string(batch_records));
  }
  if (data_plane_threads < 0 || data_plane_threads > 1024) {
    return Status::InvalidArgument(
        "data_plane_threads must be in [0, 1024] (0 = one per hardware "
        "thread), got " +
        std::to_string(data_plane_threads));
  }
  if (faults.corruption_rate > 0 && !integrity.checksums) {
    return Status::InvalidArgument(
        "corruption injection requires integrity.checksums: silent "
        "corruption is undetectable without them");
  }
  if (resident_cache_bytes != 0 && resident_cache_bytes < 4096) {
    return Status::InvalidArgument(
        "resident_cache_bytes must be 0 (unbounded) or >= 4096: a budget "
        "below one segment would spill everything, got " +
        std::to_string(resident_cache_bytes));
  }
  if (iterations < 1 || iterations > 64) {
    return Status::InvalidArgument(
        "iterations must be in [1, 64], got " + std::to_string(iterations));
  }
  if (combine_scope == CombineScope::kNode) {
    if (pipelining) {
      return Status::InvalidArgument(
          "combine_scope=kNode is incompatible with pipelining: eager "
          "per-spill pushes defeat the node combine barrier");
    }
    if ((engine == EngineKind::kSortMerge || engine == EngineKind::kMRHash) &&
        !map_side_combine) {
      return Status::InvalidArgument(
          "combine_scope=kNode needs a combine function: enable "
          "map_side_combine (values-list reducers alone cannot merge "
          "partial aggregates at the node tier)");
    }
    if (hash_core == HashCoreKind::kLegacy) {
      return Status::InvalidArgument(
          "combine_scope=kNode requires the flat hash core: the node tier "
          "merges shards in FlatTable insertion order");
    }
  }
  if (node_combine_budget_bytes != 0 && node_combine_budget_bytes < 4096) {
    return Status::InvalidArgument(
        "node_combine_budget_bytes must be 0 (unbounded) or >= 4096: a "
        "budget below one table block degrades every shard to the sketch, "
        "got " +
        std::to_string(node_combine_budget_bytes));
  }
  if (checkpoint_interval_segments > 0 || checkpoint_interval_bytes > 0) {
    if (checkpoint_replication < 1 ||
        checkpoint_replication > cluster.nodes) {
      return Status::InvalidArgument(
          "checkpoint_replication must be in [1, nodes], got " +
          std::to_string(checkpoint_replication));
    }
    if (hash_core == HashCoreKind::kLegacy) {
      return Status::InvalidArgument(
          "checkpointing requires the flat hash core: restoring "
          "std::unordered_map state does not reproduce iteration order");
    }
  }
  return faults.Validate(cluster.nodes);
}

}  // namespace onepass
