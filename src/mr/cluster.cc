#include "src/mr/cluster.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/dfs/chunk_reader.h"
#include "src/engine/group_by_engine.h"
#include "src/mr/cost_trace.h"
#include "src/mr/map_runner.h"
#include "src/mr/output.h"
#include "src/mr/task_tracker.h"
#include "src/sim/event_queue.h"
#include "src/sim/fault_injector.h"
#include "src/sim/resources.h"
#include "src/storage/block_format.h"
#include "src/storage/checkpoint.h"
#include "src/storage/framed_io.h"
#include "src/util/crc32c.h"
#include "src/util/hash.h"
#include "src/util/thread_pool.h"

namespace onepass {
namespace {

// Task-activity categories for the Fig. 2(a)-style timeline.
enum class Activity { kMap, kShuffle, kMerge, kReduce, kNone };

Activity Categorize(bool is_map_task, OpTag tag) {
  if (is_map_task) return Activity::kMap;
  switch (tag) {
    case OpTag::kShuffle:
      return Activity::kShuffle;
    case OpTag::kReduceSpill:
    case OpTag::kReduceMerge:
      return Activity::kMerge;
    case OpTag::kCombine:
    case OpTag::kReduceFn:
    case OpTag::kOutput:
      return Activity::kReduce;
    default:
      return Activity::kNone;
  }
}

struct DeliveryRef {
  int map_task = 0;
  uint32_t push = 0;
  uint64_t bytes = 0;  // this reducer's partition share
};

// One checkpoint the reduce data plane recorded (DESIGN.md §5.6): after
// consuming `watermark` deliveries the engine image measured `bytes` framed
// bytes (raw_bytes before codec/framing). `gate_op` is the trace op whose
// completion makes the instance durable in the time-plane replay.
struct CheckpointMark {
  uint32_t watermark = 0;
  uint64_t bytes = 0;
  uint64_t raw_bytes = 0;
  uint32_t gate_op = 0;
};

double WallSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Runs body(t) for every task t in [0, n) — on `pool` when given, else
// sequentially — and returns the lowest-index non-OK status. Each body
// writes only to state slotted by its own index, so the thread count and
// execution order never show in the results; the sequential path stops at
// the first failure, the parallel path runs everything but reports the
// same (lowest-index) status.
Status RunDataPlaneTasks(ThreadPool* pool, size_t n,
                         const std::function<void(size_t)>& body,
                         const std::vector<Status>& statuses) {
  if (pool != nullptr) {
    pool->ParallelFor(n, body);
    for (size_t t = 0; t < n; ++t) {
      if (!statuses[t].ok()) return statuses[t];
    }
    return Status::OK();
  }
  for (size_t t = 0; t < n; ++t) {
    body(t);
    if (!statuses[t].ok()) return statuses[t];
  }
  return Status::OK();
}

// Replays map (and optionally reduce) cost traces on the simulated cluster,
// under a FaultPlan.
//
// Fault tolerance lives entirely in this time plane: tasks are
// deterministic, so re-executing one after a crash replays the *same* cost
// trace on another node — the data-plane result is unchanged, only when and
// where the work happens moves. Each execution of a task is an attempt
// (TaskTracker); a fail-stop node crash kills the node's running attempts,
// loses the map outputs it stored, and triggers:
//   * re-execution of unfinished tasks on surviving nodes (maps only on
//     surviving replica holders of their input chunk);
//   * the lost-map-output rule: a *completed* map whose outputs some
//     unfinished reducer has not yet fetched is re-executed too;
//   * shuffle fetches that lose their source mid-transfer park until the
//     map's re-execution republishes the push.
// Transient faults (disk-read errors, shuffle-fetch failures) retry with
// exponential backoff; stragglers dilate op durations; speculative backups
// race the original attempt and the first finisher wins. A task that
// exhausts max_attempts (or loses every replica of its input) fails the
// job with a non-OK Status instead of stalling.
class Replayer {
 public:
  struct MapTaskIn {
    int node = 0;  // primary replica (initial, data-local placement)
    std::vector<int> replicas;  // all nodes holding the input chunk
    const CostTrace* trace = nullptr;
    // gate op index -> push index, for push-ready bookkeeping.
    std::map<uint32_t, uint32_t> gates;
    uint32_t num_pushes = 0;
  };
  struct ReduceTaskIn {
    int node = 0;
    const CostTrace* trace = nullptr;
    std::vector<DeliveryRef> deliveries;
    std::vector<CheckpointMark> checkpoints;
  };
  struct Totals {
    uint64_t shuffle_bytes = 0;
    uint64_t reduce_work = 0;
    uint64_t output_bytes = 0;
  };

  Replayer(const JobConfig& config, const sim::FaultPlan& plan,
           std::vector<MapTaskIn> maps, std::vector<ReduceTaskIn> reduces,
           Totals totals)
      : config_(config),
        plan_(plan),
        maps_(std::move(maps)),
        reduces_(std::move(reduces)),
        totals_(totals),
        tracker_(static_cast<int>(maps_.size()),
                 static_cast<int>(reduces_.size()),
                 config.faults.max_attempts) {
    const ClusterConfig& cl = config.cluster;
    for (int n = 0; n < cl.nodes; ++n) {
      nodes_.push_back(std::make_unique<NodeRes>(&engine_, cl, n));
    }
    dead_.assign(nodes_.size(), 0);
    map_states_.resize(maps_.size());
    reduce_states_.resize(reduces_.size());
    push_ready_.resize(maps_.size());
    push_src_.resize(maps_.size());
    push_gen_.resize(maps_.size());
    gate_of_.resize(maps_.size());
    map_delta_applied_.resize(maps_.size());
    for (size_t m = 0; m < maps_.size(); ++m) {
      if (maps_[m].replicas.empty()) maps_[m].replicas = {maps_[m].node};
      push_ready_[m].assign(maps_[m].num_pushes, -1.0);
      push_src_[m].assign(maps_[m].num_pushes, -1);
      push_gen_[m].assign(maps_[m].num_pushes, 0);
      gate_of_[m].assign(maps_[m].num_pushes, 0);
      for (const auto& [gate, push] : maps_[m].gates) {
        gate_of_[m][push] = gate;
      }
      map_delta_applied_[m].assign(maps_[m].trace->ops.size(), false);
      map_states_[m].attempts.reserve(
          static_cast<size_t>(config.faults.max_attempts));
    }
    reduce_delta_applied_.resize(reduces_.size());
    ckpt_gates_.resize(reduces_.size());
    for (size_t r = 0; r < reduces_.size(); ++r) {
      reduce_delta_applied_[r].assign(reduces_[r].trace->ops.size(), false);
      reduce_states_[r].attempts.reserve(
          static_cast<size_t>(config.faults.max_attempts));
      for (uint32_t c = 0;
           c < static_cast<uint32_t>(reduces_[r].checkpoints.size()); ++c) {
        ckpt_gates_[r][reduces_[r].checkpoints[c].gate_op] = c;
      }
    }
  }

  Status Run() {
    // Data-local initial wave: every map on its primary replica, reduces
    // round-robin as assigned.
    for (size_t m = 0; m < maps_.size(); ++m) {
      map_states_[m].queued = true;
      nodes_[maps_[m].node]->pending_maps.push_back(
          {static_cast<int>(m), false});
    }
    for (size_t r = 0; r < reduces_.size(); ++r) {
      reduce_states_[r].queued = true;
      nodes_[reduces_[r].node]->pending_reduces.push_back(
          {static_cast<int>(r), false});
    }
    for (const sim::CrashEvent& c : plan_.crashes()) {
      if (c.time >= 0) {
        engine_.ScheduleAt(c.time, [this, n = c.node]() { CrashNode(n); });
      } else {
        fraction_crashes_.push_back(c);
        fraction_fired_.push_back(false);
      }
    }
    for (size_t n = 0; n < nodes_.size(); ++n) {
      PumpNode(static_cast<int>(n));
    }
    if (config_.faults.speculative_execution && !JobComplete()) {
      ScheduleSpeculationTick();
    }
    const double horizon = engine_.Run();
    if (failed_) return status_;
    if (maps_completed_ != maps_.size() ||
        reduces_done_ != reduces_.size()) {
      return Status::Internal("replay stalled: lost data never recovered");
    }
    end_time_ = completion_time_ >= 0 ? completion_time_ : horizon;
    return Status::OK();
  }

  // --- results ---
  double end_time() const { return end_time_; }
  double map_finish_time() const { return last_map_finish_; }
  double push_ready_time(int m, uint32_t p) const {
    return push_ready_[m][p];
  }
  uint64_t shuffle_from_disk_bytes() const {
    return shuffle_from_disk_bytes_;
  }

  // Folds attempt/recovery counters into `m` (full replay only; the
  // provisional replay's faults are a scheduling rehearsal, not results).
  void ExportFaultMetrics(JobMetrics* m) const {
    tracker_.ExportMetrics(m);
    m->node_crashes += node_crashes_;
    m->lost_map_outputs += lost_map_outputs_;
    m->shuffle_fetch_retries += shuffle_fetch_retries_;
    m->disk_read_retries += disk_read_retries_;
    m->corruptions_detected += corruptions_detected_;
    m->corruptions_recovered += corruptions_recovered_;
    m->corruption_recovery_bytes += corruption_recovery_bytes_;
    m->checkpoints_restored += checkpoints_restored_;
    m->checkpoint_restore_bytes += checkpoint_restore_bytes_;
    m->checkpoint_corrupt_replicas += checkpoint_corrupt_replicas_;
    m->checkpoint_full_replays += checkpoint_full_replays_;
    m->checkpoint_segments_skipped += checkpoint_segments_skipped_;
    m->checkpoint_skipped_bytes += checkpoint_skipped_bytes_;
    m->shuffle_refetched_bytes += shuffle_refetched_bytes_;
  }

  // Fills the timeline/progress portion of `result`.
  void ExportSeries(JobResult* result) const {
    result->map_progress = map_progress_;
    result->reduce_progress = reduce_progress_;
    result->shuffle_progress = shuffle_series_;
    result->reduce_work_progress = work_series_;
    result->output_progress = output_series_;
    result->active_map = active_[0];
    result->active_shuffle = active_[1];
    result->active_merge = active_[2];
    result->active_reduce = active_[3];

    // Cluster-average utilization and iowait.
    const double bin = config_.timeline_bin_s;
    const double horizon = std::max(end_time_, bin);
    sim::BinnedSeries util, wait;
    for (size_t n = 0; n < nodes_.size(); ++n) {
      sim::BinnedSeries u =
          sim::UtilizationSeries(nodes_[n]->cpu, bin, horizon);
      sim::BinnedSeries w =
          sim::IowaitSeries(nodes_[n]->cpu, nodes_[n]->hdd, bin, horizon);
      if (nodes_[n]->ssd != nullptr) {
        sim::BinnedSeries w2 =
            sim::IowaitSeries(nodes_[n]->cpu, *nodes_[n]->ssd, bin, horizon);
        for (size_t i = 0; i < w.values.size(); ++i) {
          w.values[i] = std::max(w.values[i], w2.values[i]);
        }
      }
      if (n == 0) {
        util = u;
        wait = w;
      } else {
        for (size_t i = 0; i < util.values.size(); ++i) {
          util.values[i] += u.values[i];
          wait.values[i] += w.values[i];
        }
      }
    }
    for (auto& v : util.values) v /= static_cast<double>(nodes_.size());
    for (auto& v : wait.values) v /= static_cast<double>(nodes_.size());
    result->cpu_util = util;
    result->iowait = wait;
  }

 private:
  // A task waiting for a slot; speculative entries are backup attempts.
  struct Pending {
    int task = 0;
    bool speculative = false;
  };

  struct NodeRes {
    NodeRes(sim::Engine* engine, const ClusterConfig& cl, int id)
        : cpu(engine, cl.cores_per_node, "cpu" + std::to_string(id)),
          hdd(engine, 1, "hdd" + std::to_string(id)),
          nic(engine, 1, "nic" + std::to_string(id)),
          free_map_slots(cl.map_slots),
          free_reduce_slots(cl.reduce_slots) {
      if (cl.separate_intermediate_device) {
        ssd = std::make_unique<sim::Server>(engine, 1,
                                            "ssd" + std::to_string(id));
      }
    }
    sim::Server cpu;
    sim::Server hdd;
    std::unique_ptr<sim::Server> ssd;
    sim::Server nic;
    std::deque<Pending> pending_maps;
    std::deque<Pending> pending_reduces;
    int free_map_slots;
    int free_reduce_slots;
  };

  // One execution of a map task. Killed attempts stay in the vector with
  // alive = false; their in-flight op completions early-return.
  struct MapAttempt {
    int node = 0;
    double start = 0;
    size_t op_idx = 0;
    bool alive = false;
  };
  struct MapTaskState {
    std::vector<MapAttempt> attempts;
    bool completed = false;    // at least one attempt succeeded
    bool queued = false;       // a non-speculative Pending entry exists
    bool spec_queued = false;  // a speculative Pending entry exists
  };

  // One execution of a reduce task. Runs two concurrent streams, like
  // Hadoop's copier threads vs its merge thread: the *fetch* stream pulls
  // deliveries as soon as their producing map publishes them (network +
  // possible disk re-read), while the *consume* stream executes the
  // engine's per-delivery work strictly in order, gated on the fetch of
  // its section.
  struct ReduceAttempt {
    int node = 0;
    double start = 0;
    uint32_t fetch_section = 0;    // next delivery to fetch
    uint32_t consume_section = 0;  // next section to consume
    size_t op_idx = 0;             // current op within consume_section
    bool in_section = false;       // op_idx initialized for this section
    bool consume_blocked = false;  // waiting for a fetch to complete
    bool alive = false;
    std::vector<bool> fetched;
    std::vector<uint8_t> fetch_tries;   // failed tries per section
    std::vector<uint8_t> verify_tries;  // checksum-failed fetches per section
    int act[4] = {0, 0, 0, 0};  // outstanding activity counts, by Activity
  };
  // A checkpoint instance whose write+replication op completed: its
  // replicas live on `replicas` (slot, holder node) until a holder dies.
  // Slots keep their original index when holders drop out, so the plan's
  // per-slot corruption draws stay stable across crash schedules.
  struct DurableCkpt {
    uint32_t ordinal = 0;
    uint32_t watermark = 0;
    uint64_t bytes = 0;
    uint64_t raw_bytes = 0;
    std::vector<std::pair<int, int>> replicas;  // (slot, holder node)
  };
  struct ReduceTaskState {
    std::vector<ReduceAttempt> attempts;
    std::vector<DurableCkpt> durable;  // oldest first (ordinal order)
    bool done = false;
    bool queued = false;
    bool spec_queued = false;
  };

  sim::Server* Route(int node, const TraceOp& op) {
    NodeRes& res = *nodes_[node];
    switch (op.resource) {
      case OpResource::kCpu:
        return &res.cpu;
      case OpResource::kNet:
        return &res.nic;
      case OpResource::kDisk:
        if (res.ssd != nullptr && op.tag != OpTag::kMapInput &&
            op.tag != OpTag::kOutput) {
          return res.ssd.get();
        }
        return &res.hdd;
    }
    return &res.cpu;
  }

  // Op duration on `node`, including the node's straggler dilation.
  double Duration(const TraceOp& op, int node) const {
    const CostModel& c = config_.costs;
    switch (op.resource) {
      case OpResource::kCpu:
        return op.cpu_s * plan_.CpuFactor(node);
      case OpResource::kDisk:
        return (op.requests * c.disk_seek_s +
                static_cast<double>(op.bytes) * c.disk_byte_s) *
               plan_.DiskFactor(node);
      case OpResource::kNet:
        return static_cast<double>(op.bytes) * c.net_byte_s;
    }
    return 0;
  }

  // Stable identity of a shuffle fetch for the retry policy's jitter draw.
  static uint64_t FetchRetryKey(int r, int m, uint32_t p) {
    return (static_cast<uint64_t>(r) << 40) ^
           (static_cast<uint64_t>(m) << 16) ^ static_cast<uint64_t>(p);
  }

  // Transient disk-read errors fold into the op's duration: each failure
  // repeats the read on the same device (deterministic, single Submit).
  double WithDiskRetries(double dur, const TraceOp& op, bool is_map,
                         int task, int attempt, size_t idx) {
    if (op.resource != OpResource::kDisk || !op.is_read) return dur;
    const int fails = plan_.DiskReadFailures(is_map, task, attempt, idx);
    if (fails <= 0) return dur;
    disk_read_retries_ += static_cast<uint64_t>(fails);
    return dur * (1 + fails);
  }

  void SetActive(Activity a, int delta) {
    if (a == Activity::kNone) return;
    const int i = static_cast<int>(a);
    active_count_[i] += delta;
    active_[i].Add(engine_.now(), active_count_[i]);
  }

  void ActInc(ReduceAttempt& at, Activity a) {
    if (a == Activity::kNone) return;
    ++at.act[static_cast<int>(a)];
    SetActive(a, +1);
  }
  void ActDec(ReduceAttempt& at, Activity a) {
    if (a == Activity::kNone) return;
    --at.act[static_cast<int>(a)];
    SetActive(a, -1);
  }
  // Clears a killed attempt's outstanding activity so in-flight op
  // completions (which early-return) don't leak active-task counts.
  void FlushActivity(ReduceAttempt& at) {
    for (int i = 0; i < 4; ++i) {
      if (at.act[i] != 0) {
        SetActive(static_cast<Activity>(i), -at.act[i]);
        at.act[i] = 0;
      }
    }
  }

  // Progress deltas apply at most once per trace op across all attempts of
  // a task, so re-execution never double-counts progress.
  void ApplyDeltasOnce(std::vector<bool>& applied, size_t idx,
                       const TraceOp& op) {
    if (applied[idx]) return;
    applied[idx] = true;
    ApplyDeltas(op);
  }

  void ApplyDeltas(const TraceOp& op) {
    bool changed = false;
    if (op.d_shuffle_bytes > 0 && totals_.shuffle_bytes > 0) {
      cum_shuffle_ += op.d_shuffle_bytes;
      shuffle_series_.Add(engine_.now(),
                          static_cast<double>(cum_shuffle_) /
                              static_cast<double>(totals_.shuffle_bytes));
      changed = true;
    }
    if (op.d_reduce_work > 0 && totals_.reduce_work > 0) {
      cum_work_ += op.d_reduce_work;
      work_series_.Add(engine_.now(),
                       static_cast<double>(cum_work_) /
                           static_cast<double>(totals_.reduce_work));
      changed = true;
    }
    if (op.d_output_bytes > 0 && totals_.output_bytes > 0) {
      cum_output_ += op.d_output_bytes;
      output_series_.Add(engine_.now(),
                         static_cast<double>(cum_output_) /
                             static_cast<double>(totals_.output_bytes));
      changed = true;
    }
    if (changed) RecordReduceProgress();
    if (op.d_shuffle_bytes > 0) FireReduceFractionCrashes();
  }

  void RecordReduceProgress() {
    // Definition 1: 1/3 shuffle + 1/3 combine/reduce-fn + 1/3 output.
    double p = 0;
    if (totals_.shuffle_bytes > 0) {
      p += static_cast<double>(cum_shuffle_) /
           static_cast<double>(totals_.shuffle_bytes);
    }
    if (totals_.reduce_work > 0) {
      p += static_cast<double>(cum_work_) /
           static_cast<double>(totals_.reduce_work);
    }
    if (totals_.output_bytes > 0) {
      p += static_cast<double>(cum_output_) /
           static_cast<double>(totals_.output_bytes);
    }
    reduce_progress_.Add(engine_.now(), 100.0 * p / 3.0);
  }

  void Fail(Status s) {
    if (!failed_) {
      failed_ = true;
      status_ = std::move(s);
    }
  }

  bool JobComplete() const {
    return maps_completed_ == maps_.size() &&
           reduces_done_ == reduces_.size();
  }

  void CheckCompletion() {
    if (completion_time_ < 0 && JobComplete()) {
      completion_time_ = engine_.now();
    }
  }

  int AliveMapAttempts(int m) const {
    int alive = 0;
    for (const MapAttempt& a : map_states_[m].attempts) {
      if (a.alive) ++alive;
    }
    return alive;
  }
  int AliveReduceAttempts(int r) const {
    int alive = 0;
    for (const ReduceAttempt& a : reduce_states_[r].attempts) {
      if (a.alive) ++alive;
    }
    return alive;
  }

  bool AllPushesIntact(int m) const {
    for (uint32_t p = 0; p < maps_[m].num_pushes; ++p) {
      if (push_ready_[m][p] < 0) return false;
    }
    return true;
  }

  // ---- slots and scheduling ----

  // Surviving replica holder of m's chunk with the lightest map load
  // (ties: replica order, i.e. the primary first). -1 when all are dead.
  int PickMapNode(int m, int exclude) const {
    int best = -1;
    int best_load = 0;
    for (int n : maps_[m].replicas) {
      if (dead_[n] || n == exclude) continue;
      const NodeRes& node = *nodes_[n];
      const int load = static_cast<int>(node.pending_maps.size()) +
                       (config_.cluster.map_slots - node.free_map_slots);
      if (best < 0 || load < best_load) {
        best = n;
        best_load = load;
      }
    }
    return best;
  }

  // Alive node with the lightest reduce load (ties: lowest id). Reduce
  // state is rebuilt from re-fetched map outputs, so any node qualifies.
  int PickReduceNode(int exclude) const {
    int best = -1;
    int best_load = 0;
    for (int n = 0; n < static_cast<int>(nodes_.size()); ++n) {
      if (dead_[n] || n == exclude) continue;
      const NodeRes& node = *nodes_[n];
      const int load =
          static_cast<int>(node.pending_reduces.size()) +
          (config_.cluster.reduce_slots - node.free_reduce_slots);
      if (best < 0 || load < best_load) {
        best = n;
        best_load = load;
      }
    }
    return best;
  }

  void ReleaseSlot(int node, bool is_map) {
    if (dead_[node]) return;
    if (is_map) {
      ++nodes_[node]->free_map_slots;
    } else {
      ++nodes_[node]->free_reduce_slots;
    }
    PumpNode(node);
  }

  bool MapEntryRunnable(const Pending& p) const {
    const MapTaskState& st = map_states_[p.task];
    if (!tracker_.CanStart(TaskKind::kMap, p.task)) return false;
    if (p.speculative) {
      return !st.completed && AliveMapAttempts(p.task) == 1;
    }
    if (AliveMapAttempts(p.task) > 0) return false;
    return !(st.completed && AllPushesIntact(p.task));
  }

  bool ReduceEntryRunnable(const Pending& p) const {
    const ReduceTaskState& st = reduce_states_[p.task];
    if (st.done) return false;
    if (!tracker_.CanStart(TaskKind::kReduce, p.task)) return false;
    if (p.speculative) return AliveReduceAttempts(p.task) == 1;
    return AliveReduceAttempts(p.task) == 0;
  }

  // Fills n's free slots from its pending queues, dropping stale entries
  // (tasks that completed, got re-run elsewhere, or lost their backup
  // eligibility while queued).
  void PumpNode(int n) {
    if (failed_ || dead_[n]) return;
    NodeRes& node = *nodes_[n];
    while (node.free_map_slots > 0 && !node.pending_maps.empty()) {
      const Pending p = node.pending_maps.front();
      node.pending_maps.pop_front();
      if (p.speculative) {
        map_states_[p.task].spec_queued = false;
      } else {
        map_states_[p.task].queued = false;
      }
      if (!MapEntryRunnable(p)) continue;
      --node.free_map_slots;
      StartMapAttempt(p.task, n, p.speculative);
      if (failed_ || dead_[n]) return;
    }
    while (node.free_reduce_slots > 0 && !node.pending_reduces.empty()) {
      const Pending p = node.pending_reduces.front();
      node.pending_reduces.pop_front();
      if (p.speculative) {
        reduce_states_[p.task].spec_queued = false;
      } else {
        reduce_states_[p.task].queued = false;
      }
      if (!ReduceEntryRunnable(p)) continue;
      --node.free_reduce_slots;
      StartReduceAttempt(p.task, n, p.speculative);
      if (failed_ || dead_[n]) return;
    }
  }

  // Queues a fresh (non-speculative) execution of map m on a surviving
  // replica holder. No-op if an attempt is already running or queued;
  // fails the job when the attempt budget or every replica is gone.
  void ScheduleMapRun(int m) {
    if (failed_) return;
    MapTaskState& st = map_states_[m];
    if (st.queued || AliveMapAttempts(m) > 0) return;
    if (st.completed && AllPushesIntact(m)) return;
    if (!tracker_.CanStart(TaskKind::kMap, m)) {
      Fail(Status::ResourceExhausted("map task " + std::to_string(m) +
                                     " exceeded max_attempts"));
      return;
    }
    const int n = PickMapNode(m, /*exclude=*/-1);
    if (n < 0) {
      Fail(Status::ResourceExhausted(
          "no surviving replica holds the input chunk of map task " +
          std::to_string(m) + " (replication " +
          std::to_string(maps_[m].replicas.size()) + ")"));
      return;
    }
    st.queued = true;
    nodes_[n]->pending_maps.push_back({m, false});
    PumpNode(n);
  }

  void ScheduleReduceRun(int r) {
    if (failed_) return;
    ReduceTaskState& st = reduce_states_[r];
    if (st.done || st.queued || AliveReduceAttempts(r) > 0) return;
    if (!tracker_.CanStart(TaskKind::kReduce, r)) {
      Fail(Status::ResourceExhausted("reduce task " + std::to_string(r) +
                                     " exceeded max_attempts"));
      return;
    }
    const int n = PickReduceNode(/*exclude=*/-1);
    if (n < 0) {
      Fail(Status::ResourceExhausted("no alive node for reduce task " +
                                     std::to_string(r)));
      return;
    }
    // The new attempt refetches everything past its restore watermark;
    // make sure every map output it needs is rematerializing. Deliveries
    // folded into a durable checkpoint stay retired.
    const uint32_t watermark = RestoreWatermark(r);
    for (size_t s = watermark; s < reduces_[r].deliveries.size(); ++s) {
      const DeliveryRef& d = reduces_[r].deliveries[s];
      if (push_ready_[d.map_task][d.push] < 0) ScheduleMapRun(d.map_task);
      if (failed_) return;
    }
    st.queued = true;
    nodes_[n]->pending_reduces.push_back({r, false});
    PumpNode(n);
  }

  // ---- speculative execution ----

  // After each task completion: once enough tasks of this kind finished,
  // give any task whose single running attempt lags the median a backup
  // attempt on another node. First finisher wins.
  void MaybeSpeculate(TaskKind kind) {
    if (failed_ || !config_.faults.speculative_execution) return;
    const size_t total =
        kind == TaskKind::kMap ? maps_.size() : reduces_.size();
    if (total == 0) return;
    const double done = static_cast<double>(tracker_.successes(kind));
    if (done < config_.faults.speculation_min_done_fraction *
                   static_cast<double>(total)) {
      return;
    }
    const double median = tracker_.MedianSuccessDuration(kind);
    if (median <= 0) return;
    const double threshold = config_.faults.speculation_slowness * median;
    for (int t = 0; t < static_cast<int>(total); ++t) {
      if (kind == TaskKind::kMap ? map_states_[t].completed
                                 : reduce_states_[t].done) {
        continue;
      }
      if (!tracker_.CanStart(kind, t)) continue;
      int running = -1;
      int alive = 0;
      double start = 0;
      int node = -1;
      if (kind == TaskKind::kMap) {
        const MapTaskState& st = map_states_[t];
        if (st.queued || st.spec_queued) continue;
        for (size_t a = 0; a < st.attempts.size(); ++a) {
          if (st.attempts[a].alive) {
            running = static_cast<int>(a);
            start = st.attempts[a].start;
            node = st.attempts[a].node;
            ++alive;
          }
        }
      } else {
        const ReduceTaskState& st = reduce_states_[t];
        if (st.queued || st.spec_queued) continue;
        for (size_t a = 0; a < st.attempts.size(); ++a) {
          if (st.attempts[a].alive) {
            running = static_cast<int>(a);
            start = st.attempts[a].start;
            node = st.attempts[a].node;
            ++alive;
          }
        }
      }
      if (alive != 1 || running < 0) continue;
      if (engine_.now() - start <= threshold) continue;
      const int backup = kind == TaskKind::kMap ? PickMapNode(t, node)
                                                : PickReduceNode(node);
      if (backup < 0) continue;  // nowhere to run a backup
      if (kind == TaskKind::kMap) {
        map_states_[t].spec_queued = true;
        nodes_[backup]->pending_maps.push_back({t, true});
      } else {
        reduce_states_[t].spec_queued = true;
        nodes_[backup]->pending_reduces.push_back({t, true});
      }
      PumpNode(backup);
      if (failed_) return;
    }
  }

  // Completions trigger speculation scans, but a lagging tail with nothing
  // finishing would never be rescanned — poll too, like Hadoop's
  // speculator thread.
  void ScheduleSpeculationTick() {
    engine_.ScheduleAfter(config_.faults.speculation_check_s, [this]() {
      if (failed_ || JobComplete()) return;
      MaybeSpeculate(TaskKind::kMap);
      MaybeSpeculate(TaskKind::kReduce);
      if (!failed_ && !JobComplete()) ScheduleSpeculationTick();
    });
  }

  // ---- checkpoint recovery (DESIGN.md §5.6) ----

  // The checkpoint-write op for instance `c` of reduce r completed on
  // `writer_node`: the instance is durable, replicated on the writer plus
  // the next checkpoint_replication - 1 alive nodes round-robin. At most
  // once per instance across attempts (a speculative backup reaching the
  // same gate later does not re-place the replicas).
  void RegisterCheckpoint(int r, uint32_t c, int writer_node) {
    ReduceTaskState& st = reduce_states_[r];
    for (const DurableCkpt& d : st.durable) {
      if (d.ordinal == c) return;
    }
    const CheckpointMark& mark = reduces_[r].checkpoints[c];
    DurableCkpt d;
    d.ordinal = c;
    d.watermark = mark.watermark;
    d.bytes = mark.bytes;
    d.raw_bytes = mark.raw_bytes;
    int slot = 0;
    d.replicas.emplace_back(slot++, writer_node);
    const int nodes = static_cast<int>(nodes_.size());
    for (int off = 1; off < nodes && slot < config_.checkpoint_replication;
         ++off) {
      const int n = (writer_node + off) % nodes;
      if (!dead_[n]) d.replicas.emplace_back(slot++, n);
    }
    st.durable.push_back(std::move(d));
  }

  // A replica read and rejected by verification on the restore ladder.
  struct TriedReplica {
    int slot = 0;
    int node = 0;
    uint64_t bytes = 0;
  };
  // Outcome of the restore ladder: node >= 0 means a verifiable replica of
  // instance `ordinal` exists and a restarted attempt resumes from
  // `watermark`; otherwise (had_durable) every replica of every instance
  // was corrupt or lost and the attempt falls back to full replay.
  struct CkptChoice {
    int ordinal = -1;
    uint32_t watermark = 0;
    uint64_t bytes = 0;
    uint64_t raw_bytes = 0;
    int node = -1;
    std::vector<TriedReplica> tried;
    bool had_durable = false;
  };

  // Newest instance first, replica slots in order; a replica is usable iff
  // its holder survives (dead holders are pruned eagerly) and the plan's
  // seeded draw leaves it uncorrupted. Pure given (durable state, plan).
  CkptChoice ChooseCheckpoint(int r) const {
    CkptChoice choice;
    const ReduceTaskState& st = reduce_states_[r];
    for (auto it = st.durable.rbegin(); it != st.durable.rend(); ++it) {
      choice.had_durable = true;
      for (const auto& [slot, node] : it->replicas) {
        if (plan_.CheckpointCorruptions(r, it->ordinal, slot) > 0) {
          choice.tried.push_back({slot, node, it->bytes});
          continue;
        }
        choice.ordinal = static_cast<int>(it->ordinal);
        choice.watermark = it->watermark;
        choice.bytes = it->bytes;
        choice.raw_bytes = it->raw_bytes;
        choice.node = node;
        return choice;
      }
    }
    return choice;
  }

  // Deliveries below this watermark will never be re-fetched by a
  // restarted attempt of r; used by the lost-map-output scan to keep maps
  // whose outputs are fully covered by a durable checkpoint retired.
  uint32_t RestoreWatermark(int r) const {
    if (reduce_states_[r].durable.empty()) return 0;
    return ChooseCheckpoint(r).watermark;
  }

  // One op of the synthesized restore chain, waiting `delay` simulated
  // seconds (the shared RetryPolicy's backoff after a rejected replica)
  // before occupying its resource.
  struct RestoreOp {
    TraceOp op;
    double delay = 0;
  };

  // Charges the restore I/O as a sequential op chain on the attempt's
  // node: each rejected candidate is read in full before its verification
  // fails (network pull, or a local disk read when the attempt node holds
  // the replica), the next candidate backs off per the shared RetryPolicy,
  // then the good replica is read and — under a codec — its field stream
  // decoded. When the chain drains, the fetch/consume streams start from
  // the checkpoint watermark.
  void RunRestoreOps(int r, int a, const CkptChoice& choice) {
    auto ops = std::make_shared<std::vector<RestoreOp>>();
    const int att_node = reduce_states_[r].attempts[a].node;
    int try_i = 0;
    auto read_replica = [&](int holder, uint64_t bytes) {
      RestoreOp rop;
      rop.op.tag = OpTag::kCheckpoint;
      rop.op.bytes = bytes;
      if (holder == att_node) {
        rop.op.resource = OpResource::kDisk;
        rop.op.is_read = true;
      } else {
        rop.op.resource = OpResource::kNet;
      }
      if (try_i > 0) {
        rop.delay = config_.faults.fetch_retry.BackoffFor(
            try_i - 1, CheckpointRetryKey(r, choice.ordinal, try_i));
      }
      ++try_i;
      ops->push_back(rop);
      checkpoint_restore_bytes_ += bytes;
    };
    for (const TriedReplica& t : choice.tried) read_replica(t.node, t.bytes);
    read_replica(choice.node, choice.bytes);
    if (config_.block_codec != BlockCodecKind::kNone) {
      RestoreOp rop;
      rop.op.resource = OpResource::kCpu;
      rop.op.tag = OpTag::kCheckpoint;
      rop.op.cpu_s = config_.costs.decompress_byte_s *
                     static_cast<double>(choice.raw_bytes);
      ops->push_back(rop);
    }
    RunRestoreOp(r, a, std::move(ops), 0);
  }

  static uint64_t CheckpointRetryKey(int r, int ordinal, int try_i) {
    return (static_cast<uint64_t>(r) << 40) ^
           (static_cast<uint64_t>(ordinal) << 16) ^
           static_cast<uint64_t>(try_i);
  }

  void RunRestoreOp(int r, int a,
                    std::shared_ptr<std::vector<RestoreOp>> ops, size_t i) {
    if (failed_) return;
    ReduceAttempt& at = reduce_states_[r].attempts[a];
    if (!at.alive) return;
    if (i >= ops->size()) {
      StartFetch(r, a);
      TryConsume(r, a);
      return;
    }
    const RestoreOp& rop = (*ops)[i];
    if (rop.delay > 0) {
      engine_.ScheduleAfter(rop.delay, [this, r, a, ops, i]() {
        if (failed_) return;
        if (!reduce_states_[r].attempts[a].alive) return;
        SubmitRestoreOp(r, a, std::move(ops), i);
      });
      return;
    }
    SubmitRestoreOp(r, a, std::move(ops), i);
  }

  void SubmitRestoreOp(int r, int a,
                       std::shared_ptr<std::vector<RestoreOp>> ops,
                       size_t i) {
    ReduceAttempt& at = reduce_states_[r].attempts[a];
    const TraceOp& op = (*ops)[i].op;
    Route(at.node, op)->Submit(
        Duration(op, at.node), [this, r, a, ops = std::move(ops), i]() {
          if (failed_) return;
          if (!reduce_states_[r].attempts[a].alive) return;
          RunRestoreOp(r, a, std::move(ops), i + 1);
        });
  }

  // ---- crash handling ----

  void KillMapAttempt(int m, int a) {
    MapAttempt& at = map_states_[m].attempts[a];
    at.alive = false;
    SetActive(Activity::kMap, -1);
    tracker_.Killed(TaskKind::kMap, m, a, engine_.now());
    ReleaseSlot(at.node, /*is_map=*/true);
  }

  void KillReduceAttempt(int r, int a) {
    ReduceAttempt& at = reduce_states_[r].attempts[a];
    at.alive = false;
    FlushActivity(at);
    tracker_.Killed(TaskKind::kReduce, r, a, engine_.now());
    ReleaseSlot(at.node, /*is_map=*/false);
  }

  // Lost-map-output rule: after a crash wiped (some of) m's published
  // pushes, is any unfinished reducer still going to ask for them? A
  // reducer with no running attempt (pending, queued, or awaiting
  // rescheduling) needs everything again; a running attempt needs exactly
  // the sections it has not fetched yet.
  bool OutputNeeded(int m) const {
    if (reduces_.empty()) {
      // Provisional (map-only) replay: push-ready times define the
      // delivery-order contract, so every output is always "needed".
      return true;
    }
    for (size_t r = 0; r < reduces_.size(); ++r) {
      const ReduceTaskState& st = reduce_states_[r];
      if (st.done) continue;
      // A restarted attempt resumes from the newest usable checkpoint:
      // deliveries below its watermark are never re-fetched, so maps whose
      // outputs fall entirely under it stay retired.
      uint32_t watermark = 0;
      bool watermark_known = false;
      for (size_t s = 0; s < reduces_[r].deliveries.size(); ++s) {
        const DeliveryRef& d = reduces_[r].deliveries[s];
        if (d.map_task != m || push_ready_[m][d.push] >= 0) continue;
        if (AliveReduceAttempts(static_cast<int>(r)) == 0) {
          if (!watermark_known) {
            watermark = RestoreWatermark(static_cast<int>(r));
            watermark_known = true;
          }
          if (s >= watermark) return true;
          continue;
        }
        for (const ReduceAttempt& at : st.attempts) {
          if (at.alive && !at.fetched[s]) return true;
        }
      }
    }
    return false;
  }

  // Fail-stop crash of node n: kills its attempts, loses the map outputs
  // it stored, reschedules what must re-run.
  void CrashNode(int n) {
    if (failed_ || dead_[n] || JobComplete()) return;
    dead_[n] = 1;
    ++node_crashes_;
    // Checkpoint replicas stored on n are gone. Pruning before the kill /
    // reschedule scans below means every RestoreWatermark query already
    // sees the post-crash replica view. Surviving replicas keep their
    // original slot index (stable corruption draws).
    for (ReduceTaskState& st : reduce_states_) {
      for (DurableCkpt& d : st.durable) {
        d.replicas.erase(
            std::remove_if(d.replicas.begin(), d.replicas.end(),
                           [n](const std::pair<int, int>& rep) {
                             return rep.second == n;
                           }),
            d.replicas.end());
      }
    }
    NodeRes& node = *nodes_[n];
    // Unstarted tasks queued here go back through the scheduler.
    std::deque<Pending> orphan_maps = std::move(node.pending_maps);
    std::deque<Pending> orphan_reduces = std::move(node.pending_reduces);
    node.pending_maps.clear();
    node.pending_reduces.clear();
    for (const Pending& p : orphan_maps) {
      if (p.speculative) {
        map_states_[p.task].spec_queued = false;
      } else {
        map_states_[p.task].queued = false;
      }
    }
    for (const Pending& p : orphan_reduces) {
      if (p.speculative) {
        reduce_states_[p.task].spec_queued = false;
      } else {
        reduce_states_[p.task].queued = false;
      }
    }
    // Kill running attempts; reduces first so their fetched state is
    // settled before the lost-output scan asks who still needs what.
    for (size_t r = 0; r < reduces_.size(); ++r) {
      ReduceTaskState& st = reduce_states_[r];
      for (size_t a = 0; a < st.attempts.size(); ++a) {
        if (st.attempts[a].alive && st.attempts[a].node == n) {
          KillReduceAttempt(static_cast<int>(r), static_cast<int>(a));
        }
      }
    }
    for (size_t m = 0; m < maps_.size(); ++m) {
      MapTaskState& st = map_states_[m];
      for (size_t a = 0; a < st.attempts.size(); ++a) {
        if (st.attempts[a].alive && st.attempts[a].node == n) {
          KillMapAttempt(static_cast<int>(m), static_cast<int>(a));
        }
      }
    }
    // Map outputs stored on n are gone. A push a surviving attempt already
    // produced republishes immediately; the rest revert to unpublished.
    for (size_t m = 0; m < maps_.size(); ++m) {
      bool lost_any = false;
      for (uint32_t p = 0; p < maps_[m].num_pushes; ++p) {
        if (push_src_[m][p] != n || push_ready_[m][p] < 0) continue;
        bool republished = false;
        for (const MapAttempt& at : map_states_[m].attempts) {
          // op_idx >= gate+2 means the gate op's completion handler ran.
          if (at.alive && !dead_[at.node] &&
              at.op_idx >= gate_of_[m][p] + 2) {
            PushReady(static_cast<int>(m), p, at.node);
            republished = true;
            break;
          }
        }
        if (!republished) {
          push_ready_[m][p] = -1.0;
          push_src_[m][p] = -1;
          lost_any = true;
        }
      }
      if (lost_any && OutputNeeded(static_cast<int>(m))) {
        ScheduleMapRun(static_cast<int>(m));
        if (failed_) return;
      }
    }
    // Restart whatever the crash left without a running or queued
    // execution.
    for (size_t r = 0; r < reduces_.size(); ++r) {
      const ReduceTaskState& st = reduce_states_[r];
      if (!st.done && !st.queued &&
          AliveReduceAttempts(static_cast<int>(r)) == 0) {
        ScheduleReduceRun(static_cast<int>(r));
        if (failed_) return;
      }
    }
    for (size_t m = 0; m < maps_.size(); ++m) {
      const MapTaskState& st = map_states_[m];
      if (st.queued || AliveMapAttempts(static_cast<int>(m)) > 0) continue;
      if (!st.completed) {
        ScheduleMapRun(static_cast<int>(m));
      } else if (!AllPushesIntact(static_cast<int>(m)) &&
                 OutputNeeded(static_cast<int>(m))) {
        ScheduleMapRun(static_cast<int>(m));
      }
      if (failed_) return;
    }
  }

  void FireFractionCrashes() {
    const double frac = static_cast<double>(maps_completed_) /
                        static_cast<double>(maps_.size());
    for (size_t i = 0; i < fraction_crashes_.size(); ++i) {
      if (!fraction_fired_[i] && fraction_crashes_[i].at_map_fraction > 0 &&
          frac >= fraction_crashes_[i].at_map_fraction - 1e-12) {
        fraction_fired_[i] = true;
        CrashNode(fraction_crashes_[i].node);
      }
    }
  }

  // Reduce-phase crashes trigger on shuffle-progress thresholds. The crash
  // itself is deferred one zero-delay event so it never reallocates the
  // attempt vectors underneath an op-completion callback that still holds
  // references into them; the event queue's FIFO tie-break keeps the
  // deferral deterministic.
  void FireReduceFractionCrashes() {
    if (totals_.shuffle_bytes == 0) return;
    const double frac = static_cast<double>(cum_shuffle_) /
                        static_cast<double>(totals_.shuffle_bytes);
    for (size_t i = 0; i < fraction_crashes_.size(); ++i) {
      if (fraction_fired_[i] ||
          fraction_crashes_[i].at_reduce_fraction <= 0) {
        continue;
      }
      if (frac >= fraction_crashes_[i].at_reduce_fraction - 1e-12) {
        fraction_fired_[i] = true;
        engine_.ScheduleAfter(
            0, [this, n = fraction_crashes_[i].node]() { CrashNode(n); });
      }
    }
  }

  // ---- map side ----

  void StartMapAttempt(int m, int node, bool speculative) {
    MapTaskState& st = map_states_[m];
    // A completed map only re-runs because its output was lost.
    if (st.completed && !speculative) ++lost_map_outputs_;
    const int a = tracker_.StartAttempt(TaskKind::kMap, m, node, speculative,
                                        engine_.now());
    CHECK_EQ(static_cast<size_t>(a), st.attempts.size());
    MapAttempt at;
    at.node = node;
    at.start = engine_.now();
    at.alive = true;
    st.attempts.push_back(at);
    SetActive(Activity::kMap, +1);
    RunNextMapOp(m, a);
  }

  void RunNextMapOp(int m, int a) {
    if (failed_) return;
    MapAttempt& at = map_states_[m].attempts[a];
    const CostTrace& trace = *maps_[m].trace;
    if (at.op_idx >= trace.ops.size()) {
      MapDone(m, a);
      return;
    }
    const size_t idx = at.op_idx++;
    const TraceOp& op = trace.ops[idx];
    const double dur = WithDiskRetries(Duration(op, at.node), op,
                                       /*is_map=*/true, m, a, idx);
    Route(at.node, op)->Submit(dur, [this, m, a, idx]() {
      if (failed_) return;
      MapAttempt& att = map_states_[m].attempts[a];
      if (!att.alive) return;  // killed mid-op; activity already flushed
      const TraceOp& done_op = maps_[m].trace->ops[idx];
      tracker_.AddWork(
          TaskKind::kMap, m, a,
          done_op.resource == OpResource::kCpu ? done_op.cpu_s : 0,
          done_op.resource == OpResource::kCpu ? 0 : done_op.bytes);
      ApplyDeltasOnce(map_delta_applied_[m], idx, done_op);
      auto it = maps_[m].gates.find(static_cast<uint32_t>(idx));
      if (it != maps_[m].gates.end() && push_ready_[m][it->second] < 0) {
        PushReady(m, it->second, att.node);
      }
      RunNextMapOp(m, a);
    });
  }

  void MapDone(int m, int a) {
    MapTaskState& st = map_states_[m];
    const int node = st.attempts[a].node;
    st.attempts[a].alive = false;
    SetActive(Activity::kMap, -1);
    tracker_.Succeeded(TaskKind::kMap, m, a, engine_.now());
    // First finisher wins: the backup race is over, losers' partial
    // outputs are superseded by the winner's complete set.
    for (size_t o = 0; o < st.attempts.size(); ++o) {
      if (st.attempts[o].alive) {
        KillMapAttempt(m, static_cast<int>(o));
      }
    }
    for (uint32_t p = 0; p < maps_[m].num_pushes; ++p) {
      if (push_ready_[m][p] < 0) {
        PushReady(m, p, node);
      } else {
        push_src_[m][p] = node;
      }
    }
    const bool first = !st.completed;
    st.completed = true;
    if (first) {
      ++maps_completed_;
      last_map_finish_ = std::max(last_map_finish_, engine_.now());
      map_progress_.Add(engine_.now(),
                        100.0 * static_cast<double>(maps_completed_) /
                            static_cast<double>(maps_.size()));
    }
    ReleaseSlot(node, /*is_map=*/true);
    MaybeSpeculate(TaskKind::kMap);
    CheckCompletion();
    if (first) FireFractionCrashes();
  }

  void PushReady(int m, uint32_t p, int src) {
    push_ready_[m][p] = engine_.now();
    push_src_[m][p] = src;
    const auto key = std::make_pair(m, p);
    auto it = push_waiters_.find(key);
    if (it == push_waiters_.end()) return;
    std::vector<std::pair<int, int>> waiters = std::move(it->second);
    push_waiters_.erase(it);
    for (const auto& [r, a] : waiters) {
      if (reduce_states_[r].attempts[a].alive) StartFetch(r, a);
    }
  }

  // ---- reduce side ----

  void StartReduceAttempt(int r, int node, bool speculative) {
    ReduceTaskState& st = reduce_states_[r];
    const int a = tracker_.StartAttempt(TaskKind::kReduce, r, node,
                                        speculative, engine_.now());
    CHECK_EQ(static_cast<size_t>(a), st.attempts.size());
    ReduceAttempt at;
    at.node = node;
    at.start = engine_.now();
    at.alive = true;
    at.fetched.assign(reduces_[r].deliveries.size(), false);
    at.fetch_tries.assign(reduces_[r].deliveries.size(), 0);
    at.verify_tries.assign(reduces_[r].deliveries.size(), 0);
    // A later attempt resumes from the newest verifiable checkpoint
    // replica instead of replaying the whole shuffle (DESIGN.md §5.6):
    // deliveries below the watermark count as fetched and consumed, and
    // the restore reads (corrupt candidates included) are charged before
    // the fetch/consume streams start.
    CkptChoice choice;
    if (!st.durable.empty()) choice = ChooseCheckpoint(r);
    if (choice.node >= 0) {
      for (uint32_t s = 0; s < choice.watermark; ++s) {
        at.fetched[s] = true;
        ++checkpoint_segments_skipped_;
        checkpoint_skipped_bytes_ += reduces_[r].deliveries[s].bytes;
      }
      at.fetch_section = choice.watermark;
      at.consume_section = choice.watermark;
      ++checkpoints_restored_;
      checkpoint_corrupt_replicas_ +=
          static_cast<uint64_t>(choice.tried.size());
      st.attempts.push_back(std::move(at));
      RunRestoreOps(r, a, choice);
      return;
    }
    if (choice.had_durable) ++checkpoint_full_replays_;
    st.attempts.push_back(std::move(at));
    StartFetch(r, a);
    TryConsume(r, a);
  }

  // Fetch stream: pulls delivery fetch_section as soon as its push is
  // published. The data-plane trace records each delivery section's first
  // op as the network fetch; the replay may prepend a disk read on the
  // holder's node when the output has been evicted from its memory.
  void StartFetch(int r, int a) {
    if (failed_) return;
    ReduceAttempt& at = reduce_states_[r].attempts[a];
    if (!at.alive) return;
    const ReduceTaskIn& task = reduces_[r];
    if (at.fetch_section >= task.deliveries.size()) return;
    const uint32_t s = at.fetch_section;
    const DeliveryRef& d = task.deliveries[s];
    const double ready = push_ready_[d.map_task][d.push];
    if (ready < 0) {
      push_waiters_[{d.map_task, d.push}].push_back({r, a});
      return;
    }
    // Fetch penalty: an attempt that was not yet running when the map
    // output was published (a second-wave or restarted reducer) finds it
    // evicted from the holder's memory and re-reads it from disk.
    if (d.bytes > 0 &&
        at.start > ready + config_.costs.map_output_retention_s) {
      shuffle_from_disk_bytes_ += d.bytes;
      TraceOp read;
      read.resource = OpResource::kDisk;
      read.tag = OpTag::kShuffle;
      read.bytes = d.bytes;
      read.is_read = true;
      const int src_node = push_src_[d.map_task][d.push];
      ActInc(at, Activity::kShuffle);
      Route(src_node, read)
          ->Submit(Duration(read, src_node), [this, r, a, s]() {
            if (failed_) return;
            ReduceAttempt& att = reduce_states_[r].attempts[a];
            if (!att.alive) return;
            ActDec(att, Activity::kShuffle);
            FetchOverNet(r, a, s);
          });
      return;
    }
    FetchOverNet(r, a, s);
  }

  void FetchOverNet(int r, int a, uint32_t s) {
    ReduceAttempt& at = reduce_states_[r].attempts[a];
    const ReduceTaskIn& task = reduces_[r];
    const TraceOp& net_op = task.trace->ops[task.trace->section_starts[s]];
    CHECK(net_op.resource == OpResource::kNet);
    ActInc(at, Activity::kShuffle);
    Route(at.node, net_op)
        ->Submit(Duration(net_op, at.node), [this, r, a, s]() {
          if (failed_) return;
          ReduceAttempt& att = reduce_states_[r].attempts[a];
          if (!att.alive) return;
          ActDec(att, Activity::kShuffle);
          const ReduceTaskIn& t = reduces_[r];
          const DeliveryRef& d = t.deliveries[s];
          // Source crashed mid-transfer: park until the map re-executes.
          if (push_ready_[d.map_task][d.push] < 0) {
            StartFetch(r, a);
            return;
          }
          // Transient fetch failure: back off exponentially, retry.
          const int fails = plan_.FetchFailures(r, d.map_task, d.push);
          if (static_cast<int>(att.fetch_tries[s]) < fails) {
            const int try_i = att.fetch_tries[s]++;
            ++shuffle_fetch_retries_;
            const double backoff = config_.faults.fetch_retry.BackoffFor(
                try_i, FetchRetryKey(r, d.map_task, d.push));
            engine_.ScheduleAfter(backoff, [this, r, a, s]() {
              if (failed_) return;
              ReduceAttempt& att2 = reduce_states_[r].attempts[a];
              if (!att2.alive) return;
              const DeliveryRef& d2 = reduces_[r].deliveries[s];
              if (push_ready_[d2.map_task][d2.push] < 0) {
                StartFetch(r, a);  // source died during the backoff
                return;
              }
              FetchOverNet(r, a, s);
            });
            return;
          }
          // Silent wire corruption: the fetched bytes fail the segment CRC
          // stamped at publish time. The holder's stored copy is fine, so
          // the cheapest recovery is an immediate re-fetch.
          const int wire = plan_.FetchCorruptions(r, d.map_task, d.push);
          if (static_cast<int>(att.verify_tries[s]) < wire) {
            ++att.verify_tries[s];
            ++corruptions_detected_;
            ++corruptions_recovered_;
            corruption_recovery_bytes_ += d.bytes;
            FetchOverNet(r, a, s);
            return;
          }
          // Corrupt stored map output: re-fetching cannot help (every copy
          // served fails verification), so only re-executing the producing
          // map task rematerializes a good push. Mark this push
          // unpublished and park until the re-run republishes it.
          const int bad_gens = plan_.MapOutputCorruptions(d.map_task, d.push);
          if (push_gen_[d.map_task][d.push] < bad_gens) {
            const int gen = push_gen_[d.map_task][d.push];
            ++corruptions_detected_;
            if (gen >= config_.faults.max_corruption_retries) {
              Fail(Status::Corruption(
                  "map task " + std::to_string(d.map_task) + " push " +
                  std::to_string(d.push) + ": output corrupt beyond " +
                  std::to_string(config_.faults.max_corruption_retries) +
                  " re-executions"));
              return;
            }
            ++push_gen_[d.map_task][d.push];
            ++corruptions_recovered_;
            corruption_recovery_bytes_ += d.bytes;
            push_ready_[d.map_task][d.push] = -1.0;
            push_src_[d.map_task][d.push] = -1;
            ScheduleMapRun(d.map_task);
            if (failed_) return;
            StartFetch(r, a);
            return;
          }
          const size_t idx = t.trace->section_starts[s];
          const TraceOp& done_op = t.trace->ops[idx];
          tracker_.AddWork(TaskKind::kReduce, r, a, 0, done_op.bytes);
          ApplyDeltasOnce(reduce_delta_applied_[r], idx, done_op);
          // Attempt 0's fetches are first-time shuffle work; anything a
          // later (restarted or speculative) attempt pulls is recovery
          // re-fetch traffic.
          if (a > 0) shuffle_refetched_bytes_ += d.bytes;
          att.fetched[s] = true;
          ++att.fetch_section;
          StartFetch(r, a);
          if (att.consume_blocked) {
            att.consume_blocked = false;
            TryConsume(r, a);
          }
        });
  }

  // Consume stream: runs each section's engine work in order; delivery
  // sections wait for their fetch; the final section (engine Finish)
  // runs after every delivery has been consumed.
  void TryConsume(int r, int a) {
    if (failed_) return;
    ReduceAttempt& at = reduce_states_[r].attempts[a];
    if (!at.alive) return;
    const ReduceTaskIn& task = reduces_[r];
    const CostTrace& trace = *task.trace;
    const uint32_t num_sections = trace.num_sections();
    if (at.consume_section >= num_sections) {
      ReduceDone(r, a);
      return;
    }
    const bool is_delivery = at.consume_section < task.deliveries.size();
    if (is_delivery && !at.fetched[at.consume_section]) {
      at.consume_blocked = true;
      return;
    }
    if (!at.in_section) {
      // Skip the net fetch op (handled by the fetch stream).
      at.op_idx =
          trace.section_starts[at.consume_section] + (is_delivery ? 1 : 0);
      at.in_section = true;
    }
    const uint32_t next_section_start =
        at.consume_section + 1 < num_sections
            ? trace.section_starts[at.consume_section + 1]
            : static_cast<uint32_t>(trace.ops.size());
    if (at.op_idx >= next_section_start) {
      ++at.consume_section;
      at.in_section = false;
      TryConsume(r, a);
      return;
    }
    const size_t idx = at.op_idx++;
    const TraceOp& op = trace.ops[idx];
    const Activity act = Categorize(/*is_map_task=*/false, op.tag);
    const double dur = WithDiskRetries(Duration(op, at.node), op,
                                       /*is_map=*/false, r, a, idx);
    ActInc(at, act);
    Route(at.node, op)->Submit(dur, [this, r, a, idx, act]() {
      if (failed_) return;
      ReduceAttempt& att = reduce_states_[r].attempts[a];
      if (!att.alive) return;
      ActDec(att, act);
      const TraceOp& done_op = reduces_[r].trace->ops[idx];
      tracker_.AddWork(
          TaskKind::kReduce, r, a,
          done_op.resource == OpResource::kCpu ? done_op.cpu_s : 0,
          done_op.resource == OpResource::kCpu ? 0 : done_op.bytes);
      ApplyDeltasOnce(reduce_delta_applied_[r], idx, done_op);
      auto gate = ckpt_gates_[r].find(static_cast<uint32_t>(idx));
      if (gate != ckpt_gates_[r].end()) {
        RegisterCheckpoint(r, gate->second, att.node);
      }
      TryConsume(r, a);
    });
  }

  void ReduceDone(int r, int a) {
    ReduceTaskState& st = reduce_states_[r];
    const int node = st.attempts[a].node;
    st.attempts[a].alive = false;
    tracker_.Succeeded(TaskKind::kReduce, r, a, engine_.now());
    for (size_t o = 0; o < st.attempts.size(); ++o) {
      if (st.attempts[o].alive) {
        KillReduceAttempt(r, static_cast<int>(o));
      }
    }
    const bool first = !st.done;
    st.done = true;
    if (first) ++reduces_done_;
    ReleaseSlot(node, /*is_map=*/false);
    MaybeSpeculate(TaskKind::kReduce);
    CheckCompletion();
  }

  const JobConfig& config_;
  const sim::FaultPlan& plan_;
  std::vector<MapTaskIn> maps_;
  std::vector<ReduceTaskIn> reduces_;
  Totals totals_;
  TaskTracker tracker_;

  sim::Engine engine_;
  std::vector<std::unique_ptr<NodeRes>> nodes_;
  std::vector<char> dead_;
  std::vector<MapTaskState> map_states_;
  std::vector<ReduceTaskState> reduce_states_;
  std::vector<std::vector<double>> push_ready_;
  std::vector<std::vector<int>> push_src_;   // node holding each push
  // Map-output corruption generation consumed so far, per push: the plan's
  // CorruptionChain says how many generations of a push materialize
  // corrupt; each detected one forces a map re-execution that advances
  // this counter.
  std::vector<std::vector<int>> push_gen_;
  std::vector<std::vector<uint32_t>> gate_of_;  // push -> gate op index
  // Waiting fetch streams, keyed by (map task, push): (reduce, attempt).
  std::map<std::pair<int, uint32_t>, std::vector<std::pair<int, int>>>
      push_waiters_;
  std::vector<std::vector<bool>> map_delta_applied_;
  std::vector<std::vector<bool>> reduce_delta_applied_;
  // Per reduce task: trace op index of a checkpoint write's last op ->
  // checkpoint ordinal (mirrors maps_[m].gates for pushes).
  std::vector<std::map<uint32_t, uint32_t>> ckpt_gates_;
  std::vector<sim::CrashEvent> fraction_crashes_;
  std::vector<bool> fraction_fired_;

  size_t maps_completed_ = 0;
  size_t reduces_done_ = 0;
  double last_map_finish_ = 0;
  double completion_time_ = -1;
  double end_time_ = 0;
  bool failed_ = false;
  Status status_ = Status::OK();

  uint64_t shuffle_from_disk_bytes_ = 0;
  uint64_t node_crashes_ = 0;
  uint64_t lost_map_outputs_ = 0;
  uint64_t shuffle_fetch_retries_ = 0;
  uint64_t disk_read_retries_ = 0;
  uint64_t corruptions_detected_ = 0;
  uint64_t corruptions_recovered_ = 0;
  uint64_t corruption_recovery_bytes_ = 0;
  uint64_t checkpoints_restored_ = 0;
  uint64_t checkpoint_restore_bytes_ = 0;
  uint64_t checkpoint_corrupt_replicas_ = 0;
  uint64_t checkpoint_full_replays_ = 0;
  uint64_t checkpoint_segments_skipped_ = 0;
  uint64_t checkpoint_skipped_bytes_ = 0;
  uint64_t shuffle_refetched_bytes_ = 0;

  uint64_t cum_shuffle_ = 0, cum_work_ = 0, cum_output_ = 0;
  sim::StepSeries map_progress_, reduce_progress_;
  sim::StepSeries shuffle_series_, work_series_, output_series_;
  sim::StepSeries active_[4];
  int active_count_[4] = {0, 0, 0, 0};
};

}  // namespace

Result<JobResult> LocalCluster::RunJob(const JobSpec& spec,
                                       const JobConfig& config,
                                       const ChunkStore& input) {
  RETURN_IF_ERROR(config.Validate());
  if (!spec.mapper) {
    return Status::InvalidArgument("job needs a mapper factory");
  }
  const ClusterConfig& cl = config.cluster;

  const bool has_inc = static_cast<bool>(spec.inc);
  if ((config.engine == EngineKind::kIncHash ||
       config.engine == EngineKind::kDincHash) &&
      !has_inc) {
    return Status::InvalidArgument(
        "incremental engines need an IncrementalReducer factory");
  }
  if ((config.engine == EngineKind::kSortMerge ||
       config.engine == EngineKind::kMRHash) &&
      !spec.reducer && !(has_inc && config.map_side_combine)) {
    return Status::InvalidArgument(
        "sort-merge / MR-hash need a Reducer factory");
  }

  const int total_reducers = cl.nodes * config.reducers_per_node;
  const UniversalHashFamily hashes(config.seed);
  const UniversalHash h1 = hashes.At(0);
  const MapOutputMode mode = SelectMapOutputMode(config, has_inc);
  const bool values_are_states = ModeProducesStates(mode);
  const sim::FaultPlan plan(config.faults, config.seed);

  JobResult result;
  result.map_tasks = static_cast<int>(input.chunks().size());
  result.reduce_tasks = total_reducers;

  // The data plane may run on a work-stealing pool (DESIGN.md §5.3): all
  // map tasks execute concurrently, and each reduce task's engine runs
  // concurrently once the provisional replay has fixed its delivery
  // order. Every task writes only to its own slot; metrics merge and
  // output concatenation happen in task-id order after the join, so
  // threads=1 and threads=N produce byte-identical JobResults. The time
  // plane (the Replayer) stays single-threaded and authoritative.
  const size_t num_maps = input.chunks().size();
  const int threads = std::min<int>(
      ThreadPool::ResolveThreads(config.data_plane_threads),
      static_cast<int>(std::max<size_t>(
          {num_maps, static_cast<size_t>(total_reducers), size_t{1}})));
  std::optional<ThreadPool> pool;
  if (threads > 1) pool.emplace(threads);

  // ---- Phase 1: map data plane ----
  // Chunks are read through the verified DFS path: each replica's framed
  // bytes are checked at the read boundary, bad copies are quarantined and
  // re-replicated, and the post-recovery replica view feeds placement.
  // Concurrent tasks share the reader, but task m only touches chunk m's
  // replica view, and all fault/corruption draws are pure functions of
  // (task id, stream id).
  ChunkReader chunk_reader(&input, config.integrity, &plan);
  std::vector<MapTaskOutput> map_outs(num_maps);
  std::vector<Status> map_statuses(num_maps, Status::OK());
  const double map_plane_start = WallSeconds();
  RETURN_IF_ERROR(RunDataPlaneTasks(
      pool ? &*pool : nullptr, num_maps,
      [&](size_t m) {
        ChunkReadStats read_stats;
        Result<KvBuffer> records =
            chunk_reader.Read(static_cast<int>(m), &read_stats);
        if (!records.ok()) {
          map_statuses[m] = records.status();
          return;
        }
        std::unique_ptr<Mapper> mapper = spec.mapper();
        std::unique_ptr<IncrementalReducer> inc =
            has_inc ? spec.inc() : nullptr;
        MapRunner runner(config, mode, h1, total_reducers, mapper.get(),
                         inc.get(), &plan, static_cast<int>(m));
        Result<MapTaskOutput> mo = runner.Run(records.value(), &read_stats);
        if (!mo.ok()) {
          map_statuses[m] = mo.status();
          return;
        }
        map_outs[m] = std::move(mo).value();
      },
      map_statuses));
  result.map_plane_wall_s = WallSeconds() - map_plane_start;
  for (const MapTaskOutput& mo : map_outs) result.metrics.Merge(mo.metrics);

  auto make_map_inputs = [&]() {
    std::vector<Replayer::MapTaskIn> ins(map_outs.size());
    for (size_t m = 0; m < map_outs.size(); ++m) {
      const std::vector<int>& reps =
          chunk_reader.replicas(static_cast<int>(m));
      ins[m].node = input.chunks()[m].node;
      ins[m].replicas = reps;
      // A quarantined primary cannot host the data-local first attempt;
      // fall over to the first surviving holder.
      if (!reps.empty() &&
          std::find(reps.begin(), reps.end(), ins[m].node) == reps.end()) {
        ins[m].node = reps.front();
      }
      ins[m].trace = &map_outs[m].trace;
      ins[m].num_pushes = static_cast<uint32_t>(map_outs[m].pushes.size());
      for (uint32_t p = 0; p < ins[m].num_pushes; ++p) {
        ins[m].gates[map_outs[m].pushes[p].gate_op] = p;
      }
    }
    return ins;
  };

  // ---- Phase 2: provisional replay fixes the delivery order ----
  // Runs under the same FaultPlan as the full replay, so crash-forced map
  // re-executions shift publish times the same way the cluster would see
  // them. The order is only a consumption-order contract for the reduce
  // data plane; the full replay below is authoritative for timing.
  std::vector<std::pair<int, uint32_t>> delivery_order;
  {
    Replayer provisional(config, plan, make_map_inputs(), {}, {});
    RETURN_IF_ERROR(provisional.Run());
    std::vector<std::pair<double, std::pair<int, uint32_t>>> order;
    for (size_t m = 0; m < map_outs.size(); ++m) {
      for (uint32_t p = 0; p < map_outs[m].pushes.size(); ++p) {
        order.push_back({provisional.push_ready_time(static_cast<int>(m), p),
                         {static_cast<int>(m), p}});
      }
    }
    std::sort(order.begin(), order.end());
    delivery_order.reserve(order.size());
    for (auto& [t, mp] : order) delivery_order.push_back(mp);
  }

  // ---- Phase 3: reduce data plane ----
  // With the delivery order fixed by the provisional replay, every reduce
  // task's engine run is independent: it reads the (now immutable) map
  // output segments for its own partition and writes only task-local
  // state, so the tasks execute concurrently on the pool.
  struct ReduceTaskData {
    CostTrace trace;
    std::unique_ptr<TraceRecorder> recorder;
    JobMetrics metrics;
    std::unique_ptr<Reducer> reducer;
    std::unique_ptr<IncrementalReducer> inc;
    std::unique_ptr<OutputCollector> out;
    std::unique_ptr<GroupByEngine> engine;
    std::vector<DeliveryRef> deliveries;
    std::vector<CheckpointMark> checkpoints;
    std::vector<Record> outputs;  // task-local; concatenated in r order
  };
  std::vector<std::unique_ptr<ReduceTaskData>> reduce_tasks(total_reducers);
  std::vector<Status> reduce_statuses(total_reducers, Status::OK());
  const double reduce_plane_start = WallSeconds();
  RETURN_IF_ERROR(RunDataPlaneTasks(
      pool ? &*pool : nullptr, static_cast<size_t>(total_reducers),
      [&](size_t ri) {
        const int r = static_cast<int>(ri);
        auto task = std::make_unique<ReduceTaskData>();
        task->recorder = std::make_unique<TraceRecorder>(&task->trace);
        TraceRecorder& trace = *task->recorder;
        if (spec.reducer) task->reducer = spec.reducer();
        if (has_inc) task->inc = spec.inc();
        task->out = std::make_unique<OutputCollector>(
            &trace, &task->metrics,
            config.collect_outputs ? &task->outputs : nullptr);

        EngineContext ctx;
        ctx.trace = &trace;
        ctx.metrics = &task->metrics;
        ctx.out = task->out.get();
        ctx.config = &config;
        ctx.hashes = hashes;
        ctx.reducer = task->reducer.get();
        ctx.inc = task->inc.get();
        ctx.values_are_states = values_are_states;
        ctx.faults = &plan;
        ctx.integrity_owner = static_cast<uint64_t>(r) + 1;
        Result<std::unique_ptr<GroupByEngine>> engine =
            CreateGroupByEngine(config.engine, ctx);
        if (!engine.ok()) {
          reduce_statuses[ri] = engine.status();
          return;
        }
        task->engine = std::move(engine).value();

        // Snapshot thresholds (§3.3(4)): after each 1/(N+1) of deliveries.
        std::vector<size_t> snapshot_at;
        if (config.snapshots > 0 && !delivery_order.empty()) {
          for (int k = 1; k <= config.snapshots; ++k) {
            snapshot_at.push_back(delivery_order.size() * k /
                                  (config.snapshots + 1));
          }
        }
        const bool ckpt_enabled = config.checkpoint_interval_segments > 0 ||
                                  config.checkpoint_interval_bytes > 0;
        uint64_t ckpt_segments = 0;
        uint64_t ckpt_bytes = 0;
        size_t delivery_index = 0;
        for (const auto& [m, p] : delivery_order) {
          const PushSegment& push = map_outs[m].pushes[p];
          // Under a block codec the fetched image is the encoded block
          // stream: the CRC check and the wire/disk byte charges cover the
          // *encoded* bytes, and the segment is decoded here before the
          // engine consumes it (DESIGN.md §5.5).
          const bool coded = !push.encoded.empty();
          const std::string* enc = coded ? &push.encoded[r] : nullptr;
          const KvBuffer* segment = coded ? nullptr : &push.partitions[r];
          const uint64_t wire_bytes =
              coded ? enc->size() : segment->bytes();
          // Every fetched segment re-verifies against the CRC its producer
          // stamped at publish time; the time-plane replay decides which
          // fetches the plan corrupts and replays the recovery.
          if (config.integrity.checksums && !push.crcs.empty()) {
            const uint32_t crc =
                coded ? Crc32c(*enc) : Crc32c(segment->data());
            if (crc != push.crcs[r]) {
              reduce_statuses[ri] = Status::Corruption(
                  "map task " + std::to_string(m) + " push " +
                  std::to_string(p) + ": segment for reducer " +
                  std::to_string(r) + " failed checksum verification");
              return;
            }
            task->metrics.verify_bytes += wire_bytes;
            task->metrics.checksum_overhead_bytes += FramedOverheadBytes(
                wire_bytes, config.integrity.block_bytes);
          }
          KvBuffer decoded;
          if (coded) {
            CodecStats dstats;
            Result<KvBuffer> dec = DecodeKvStream(*enc, &dstats);
            if (!dec.ok()) {
              reduce_statuses[ri] = dec.status();
              return;
            }
            decoded = std::move(dec).value();
            task->metrics.decompress_ns += dstats.decompress_ns;
            segment = &decoded;
          }
          DeliveryRef d;
          d.map_task = m;
          d.push = p;
          d.bytes = wire_bytes;
          task->deliveries.push_back(d);
          trace.BeginSection();
          trace.Net(wire_bytes, OpTag::kShuffle,
                    /*d_shuffle_bytes=*/wire_bytes);
          if (coded) {
            trace.Cpu(config.costs.decompress_byte_s *
                          static_cast<double>(segment->bytes()),
                      OpTag::kShuffle);
          }
          task->metrics.shuffle_bytes += wire_bytes;
          const Status consumed =
              task->engine->Consume(*segment, map_outs[m].sorted);
          if (!consumed.ok()) {
            reduce_statuses[ri] = consumed;
            return;
          }
          ++delivery_index;
          if (std::find(snapshot_at.begin(), snapshot_at.end(),
                        delivery_index) != snapshot_at.end()) {
            const Status snap = task->engine->Snapshot();
            if (!snap.ok()) {
              reduce_statuses[ri] = snap;
              return;
            }
          }
          // Reduce-state checkpoint (DESIGN.md §5.6): on the interval
          // boundary, serialize the engine and run the image through the
          // codec + CRC-framing path, charging the compress CPU, the
          // durable write, and the replication transfer. The data plane
          // discards the bytes — restore correctness is proven by the
          // checkpoint unit tests; the time plane replays durability,
          // placement, and recovery from the recorded marks. A checkpoint
          // after the final delivery is useless (Finish follows at once)
          // and skipped.
          if (ckpt_enabled) {
            ckpt_segments += 1;
            ckpt_bytes += wire_bytes;
            const bool interval_hit =
                (config.checkpoint_interval_segments > 0 &&
                 ckpt_segments >= config.checkpoint_interval_segments) ||
                (config.checkpoint_interval_bytes > 0 &&
                 ckpt_bytes >= config.checkpoint_interval_bytes);
            if (interval_hit && delivery_index < delivery_order.size()) {
              CheckpointWriter w;
              const Status saved = task->engine->SaveCheckpoint(&w);
              if (!saved.ok()) {
                reduce_statuses[ri] = saved;
                return;
              }
              const EncodedCheckpoint image = EncodeCheckpoint(
                  w.fields(), config.block_codec, config.codec_block_bytes,
                  config.integrity.block_bytes);
              if (image.coded) {
                trace.Cpu(config.costs.compress_byte_s *
                              static_cast<double>(image.raw_bytes),
                          OpTag::kCheckpoint);
              }
              trace.DiskWrite(image.framed.size(), OpTag::kCheckpoint);
              const uint64_t extra_replicas = static_cast<uint64_t>(
                  config.checkpoint_replication - 1);
              if (extra_replicas > 0) {
                trace.Net(image.framed.size() * extra_replicas,
                          OpTag::kCheckpoint);
              }
              task->metrics.checkpoints_written += 1;
              task->metrics.checkpoint_bytes += image.framed.size();
              task->metrics.checkpoint_replica_bytes +=
                  image.framed.size() * extra_replicas;
              CheckpointMark mark;
              mark.watermark = static_cast<uint32_t>(delivery_index);
              mark.bytes = image.framed.size();
              mark.raw_bytes = image.raw_bytes;
              mark.gate_op =
                  static_cast<uint32_t>(task->trace.ops.size()) - 1;
              task->checkpoints.push_back(mark);
              ckpt_segments = 0;
              ckpt_bytes = 0;
            }
          }
        }
        trace.BeginSection();
        const Status finished = task->engine->Finish();
        if (!finished.ok()) {
          reduce_statuses[ri] = finished;
          return;
        }
        task->out->Flush();
        reduce_tasks[ri] = std::move(task);
      },
      reduce_statuses));
  result.reduce_plane_wall_s = WallSeconds() - reduce_plane_start;
  for (const auto& task : reduce_tasks) {
    result.metrics.Merge(task->metrics);
    if (config.collect_outputs) {
      result.outputs.insert(result.outputs.end(), task->outputs.begin(),
                            task->outputs.end());
    }
  }

  // Free intermediate data before the full replay (the traces remain).
  // Note: delivery gating references map_outs' traces, so keep those.
  for (auto& mo : map_outs) {
    for (auto& push : mo.pushes) {
      push.partitions.clear();
      push.encoded.clear();
    }
  }

  // ---- Phase 4: full replay ----
  Replayer::Totals totals;
  auto scan_trace = [&](const CostTrace& t) {
    for (const TraceOp& op : t.ops) {
      totals.shuffle_bytes += op.d_shuffle_bytes;
      totals.reduce_work += op.d_reduce_work;
      totals.output_bytes += op.d_output_bytes;
    }
  };
  for (const auto& mo : map_outs) scan_trace(mo.trace);
  for (const auto& t : reduce_tasks) scan_trace(t->trace);

  std::vector<Replayer::ReduceTaskIn> reduce_ins(reduce_tasks.size());
  for (size_t r = 0; r < reduce_tasks.size(); ++r) {
    reduce_ins[r].node =
        static_cast<int>(r) / config.reducers_per_node;
    reduce_ins[r].trace = &reduce_tasks[r]->trace;
    reduce_ins[r].deliveries = reduce_tasks[r]->deliveries;
    reduce_ins[r].checkpoints = reduce_tasks[r]->checkpoints;
  }

  Replayer replay(config, plan, make_map_inputs(), std::move(reduce_ins),
                  totals);
  RETURN_IF_ERROR(replay.Run());

  result.running_time = replay.end_time();
  result.map_finish_time = replay.map_finish_time();
  result.shuffle_from_disk_bytes = replay.shuffle_from_disk_bytes();
  replay.ExportSeries(&result);
  replay.ExportFaultMetrics(&result.metrics);

  // CPU attribution.
  for (const auto& mo : map_outs) {
    for (const TraceOp& op : mo.trace.ops) {
      if (op.resource == OpResource::kCpu) result.map_cpu_s += op.cpu_s;
    }
  }
  for (const auto& t : reduce_tasks) {
    for (const TraceOp& op : t->trace.ops) {
      if (op.resource == OpResource::kCpu) result.reduce_cpu_s += op.cpu_s;
    }
  }

  return result;
}

}  // namespace onepass
