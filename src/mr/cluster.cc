#include "src/mr/cluster.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/dfs/chunk_reader.h"
#include "src/engine/group_by_engine.h"
#include "src/mr/cost_trace.h"
#include "src/mr/map_runner.h"
#include "src/mr/node_combine.h"
#include "src/mr/output.h"
#include "src/mr/slot_pool.h"
#include "src/sim/event_queue.h"
#include "src/storage/block_format.h"
#include "src/storage/checkpoint.h"
#include "src/storage/framed_io.h"
#include "src/util/crc32c.h"
#include "src/util/hash.h"
#include "src/util/thread_pool.h"

namespace onepass {
namespace {

double WallSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Runs body(t) for every task t in [0, n) — on `pool` when given, else
// sequentially — and returns the lowest-index non-OK status. Each body
// writes only to state slotted by its own index, so the thread count and
// execution order never show in the results; the sequential path stops at
// the first failure, the parallel path runs everything but reports the
// same (lowest-index) status.
Status RunDataPlaneTasks(ThreadPool* pool, size_t n,
                         const std::function<void(size_t)>& body,
                         const std::vector<Status>& statuses) {
  if (pool != nullptr) {
    pool->ParallelFor(n, body);
    for (size_t t = 0; t < n; ++t) {
      if (!statuses[t].ok()) return statuses[t];
    }
    return Status::OK();
  }
  for (size_t t = 0; t < n; ++t) {
    body(t);
    if (!statuses[t].ok()) return statuses[t];
  }
  return Status::OK();
}

}  // namespace

Result<PreparedJob> LocalCluster::PrepareJob(const JobSpec& spec,
                                             const JobConfig& config,
                                             const ChunkStore& input,
                                             const ResidentContext* resident) {
  RETURN_IF_ERROR(config.Validate());
  if (!spec.mapper) {
    return Status::InvalidArgument("job needs a mapper factory");
  }
  const ClusterConfig& cl = config.cluster;

  const bool has_inc = static_cast<bool>(spec.inc);
  if ((config.engine == EngineKind::kIncHash ||
       config.engine == EngineKind::kDincHash) &&
      !has_inc) {
    return Status::InvalidArgument(
        "incremental engines need an IncrementalReducer factory");
  }
  if ((config.engine == EngineKind::kSortMerge ||
       config.engine == EngineKind::kMRHash) &&
      !spec.reducer && !(has_inc && config.map_side_combine)) {
    return Status::InvalidArgument(
        "sort-merge / MR-hash need a Reducer factory");
  }
  const bool node_combine = config.combine_scope == CombineScope::kNode;
  if (node_combine && !has_inc) {
    return Status::InvalidArgument(
        "combine_scope=kNode needs an IncrementalReducer factory (the node "
        "tier folds co-located map outputs with its combine function)");
  }

  const int total_reducers = cl.nodes * config.reducers_per_node;
  const bool resident_mode = config.shuffle_mode == ShuffleMode::kResident;
  // State carry-over applies to the engines whose reduce state *is* the
  // answer-so-far (INC/DINC key->state tables); SM/MR-hash chains still
  // get the resident shuffle and stable placement but start cold.
  const bool carry_engine = config.engine == EngineKind::kIncHash ||
                            config.engine == EngineKind::kDincHash;
  const ResidentStateHandle* prior_state =
      resident_mode && resident && carry_engine ? resident->prior_state
                                                : nullptr;
  if (prior_state && prior_state->empty()) prior_state = nullptr;
  if (prior_state && prior_state->reducers() != total_reducers) {
    return Status::InvalidArgument(
        "resident state carries " + std::to_string(prior_state->reducers()) +
        " reducers but the job runs " + std::to_string(total_reducers));
  }
  if (prior_state && (prior_state->engine != config.engine ||
                      prior_state->seed != config.seed)) {
    return Status::InvalidArgument(
        "resident state engine/seed does not match the adopting job (the "
        "hash family, and so the table layout, derives from both)");
  }
  const UniversalHashFamily hashes(config.seed);
  const UniversalHash h1 = hashes.At(0);
  const MapOutputMode mode = SelectMapOutputMode(config, has_inc);
  const bool values_are_states = ModeProducesStates(mode);

  PreparedJob pj(config);
  JobResult& result = pj.result;
  result.map_tasks = static_cast<int>(input.chunks().size());
  result.reduce_tasks = total_reducers;

  // The data plane may run on a work-stealing pool (DESIGN.md §5.3): all
  // map tasks execute concurrently, and each reduce task's engine runs
  // concurrently once the provisional replay has fixed its delivery
  // order. Every task writes only to its own slot; metrics merge and
  // output concatenation happen in task-id order after the join, so
  // threads=1 and threads=N produce byte-identical JobResults. The time
  // plane (the Replayer) stays single-threaded and authoritative.
  const size_t num_maps = input.chunks().size();
  const int threads = std::min<int>(
      ThreadPool::ResolveThreads(config.data_plane_threads),
      static_cast<int>(std::max<size_t>(
          {num_maps, static_cast<size_t>(total_reducers), size_t{1}})));
  std::optional<ThreadPool> pool;
  if (threads > 1) pool.emplace(threads);

  // ---- Phase 1: map data plane ----
  // Chunks are read through the verified DFS path: each replica's framed
  // bytes are checked at the read boundary, bad copies are quarantined and
  // re-replicated, and the post-recovery replica view feeds placement.
  // Concurrent tasks share the reader, but task m only touches chunk m's
  // replica view, and all fault/corruption draws are pure functions of
  // (task id, stream id).
  ChunkReader chunk_reader(&input, config.integrity, &pj.plan);
  std::vector<MapTaskOutput> map_outs(num_maps);
  std::vector<Status> map_statuses(num_maps, Status::OK());
  const double map_plane_start = WallSeconds();
  RETURN_IF_ERROR(RunDataPlaneTasks(
      pool ? &*pool : nullptr, num_maps,
      [&](size_t m) {
        ChunkReadStats read_stats;
        Result<KvBuffer> records =
            chunk_reader.Read(static_cast<int>(m), &read_stats);
        if (!records.ok()) {
          map_statuses[m] = records.status();
          return;
        }
        std::unique_ptr<Mapper> mapper = spec.mapper();
        std::unique_ptr<IncrementalReducer> inc =
            has_inc ? spec.inc() : nullptr;
        MapRunner runner(config, mode, h1, total_reducers, mapper.get(),
                         inc.get(), &pj.plan, static_cast<int>(m));
        Result<MapTaskOutput> mo = runner.Run(records.value(), &read_stats);
        if (!mo.ok()) {
          map_statuses[m] = mo.status();
          return;
        }
        map_outs[m] = std::move(mo).value();
      },
      map_statuses));
  result.map_plane_wall_s = WallSeconds() - map_plane_start;
  for (const MapTaskOutput& mo : map_outs) result.metrics.Merge(mo.metrics);

  // Map traces move into the PreparedJob now (phase 3 needs only the
  // partition payloads left behind in map_outs); the replay inputs point
  // into pj.map_traces, which later moves of the PreparedJob never
  // relocate. Reserve room for the node combine tier's virtual tasks (one
  // per occupied node, appended below) so those pointers survive the
  // appends too.
  pj.map_traces.reserve(map_outs.size() +
                        (node_combine ? static_cast<size_t>(cl.nodes) : 0));
  for (auto& mo : map_outs) pj.map_traces.push_back(std::move(mo.trace));
  pj.map_ins.resize(map_outs.size());
  for (size_t m = 0; m < map_outs.size(); ++m) {
    Replayer::MapTaskIn& in = pj.map_ins[m];
    const std::vector<int>& reps = chunk_reader.replicas(static_cast<int>(m));
    in.node = input.chunks()[m].node;
    in.replicas = reps;
    // A quarantined primary cannot host the data-local first attempt;
    // fall over to the first surviving holder.
    if (!reps.empty() &&
        std::find(reps.begin(), reps.end(), in.node) == reps.end()) {
      in.node = reps.front();
    }
    in.trace = &pj.map_traces[m];
    in.num_pushes = static_cast<uint32_t>(map_outs[m].pushes.size());
    for (uint32_t p = 0; p < in.num_pushes; ++p) {
      in.gates[map_outs[m].pushes[p].gate_op] = p;
    }
    // Chain locality (DESIGN.md §5.9): when this iteration re-reads the
    // previous iteration's store, prefer the replica that produced the
    // output last time — PickMapNode breaks load ties by replica order,
    // so moving the prior winner to the front pins the map there whenever
    // it holds a copy and is not overloaded.
    if (resident_mode && resident && resident->placement &&
        resident->prior_input == &input &&
        resident->placement->map_node.size() == pj.map_ins.size()) {
      const int prior_node = resident->placement->map_node[m];
      auto prior_it =
          std::find(in.replicas.begin(), in.replicas.end(), prior_node);
      if (prior_it != in.replicas.end()) {
        std::rotate(in.replicas.begin(), prior_it, prior_it + 1);
        in.node = prior_node;
      }
    }
  }

  // ---- Node combine stage (DESIGN.md §5.10) ----
  // Between the map plane and the provisional replay: map tasks under
  // combine_scope == kNode produced node feeds instead of pushes, so group
  // them by their placement node and run one NodeCombiner per occupied
  // node, merging feeds in task-id order (node-level determinism barrier).
  // Each combiner's result is appended as a *virtual map task*: its trace
  // replays like any map task's, its single combined push carries the
  // node's whole output, and its `deps` list makes the push lineage of
  // every contributing task for fault recovery.
  if (node_combine) {
    std::vector<std::vector<int>> node_tasks(
        static_cast<size_t>(cl.nodes));
    for (size_t m = 0; m < num_maps; ++m) {
      node_tasks[static_cast<size_t>(pj.map_ins[m].node)].push_back(
          static_cast<int>(m));
    }
    std::vector<int> combine_nodes;
    for (int n = 0; n < cl.nodes; ++n) {
      if (!node_tasks[static_cast<size_t>(n)].empty()) {
        combine_nodes.push_back(n);
      }
    }
    const bool sorted_feeds = mode == MapOutputMode::kSortCombine;
    std::vector<NodeCombineOutput> combine_outs(combine_nodes.size());
    std::vector<Status> combine_statuses(combine_nodes.size(), Status::OK());
    const double combine_start = WallSeconds();
    RETURN_IF_ERROR(RunDataPlaneTasks(
        pool ? &*pool : nullptr, combine_nodes.size(),
        [&](size_t i) {
          const int n = combine_nodes[i];
          std::unique_ptr<IncrementalReducer> inc = spec.inc();
          NodeCombiner combiner(config, h1, total_reducers, inc.get());
          std::vector<const MapTaskOutput*> feeds;
          for (int m : node_tasks[static_cast<size_t>(n)]) {
            feeds.push_back(&map_outs[static_cast<size_t>(m)]);
          }
          combine_outs[i] = combiner.Run(feeds, sorted_feeds);
        },
        combine_statuses));
    result.map_plane_wall_s += WallSeconds() - combine_start;
    for (size_t i = 0; i < combine_nodes.size(); ++i) {
      const int n = combine_nodes[i];
      NodeCombineOutput& co = combine_outs[i];
      result.metrics.Merge(co.metrics);
      MapTaskOutput virt;
      virt.sorted = sorted_feeds;
      virt.pushes.push_back(std::move(co.push));
      const size_t c = map_outs.size();
      map_outs.push_back(std::move(virt));
      pj.map_traces.push_back(std::move(co.trace));
      pj.map_ins.emplace_back();
      Replayer::MapTaskIn& in = pj.map_ins[c];
      // Home node first, then every other node: the combine is not bound
      // to an input chunk, so after a crash it can re-run anywhere once
      // its deps' contributions are re-materialized.
      in.node = n;
      in.replicas.push_back(n);
      for (int o = 0; o < cl.nodes; ++o) {
        if (o != n) in.replicas.push_back(o);
      }
      in.trace = &pj.map_traces[c];
      in.num_pushes = 1;
      in.gates[map_outs[c].pushes[0].gate_op] = 0;
      in.deps = node_tasks[static_cast<size_t>(n)];
      // The feeds are folded into the combined push; drop the buffers.
      for (int m : node_tasks[static_cast<size_t>(n)]) {
        map_outs[static_cast<size_t>(m)].node_feed.clear();
      }
    }
  }

  // ---- Phase 2: provisional replay fixes the delivery order ----
  // Runs under the same FaultPlan as the full replay, so crash-forced map
  // re-executions shift publish times the same way the cluster would see
  // them. The order is only a consumption-order contract for the reduce
  // data plane; the full replay is authoritative for timing.
  std::vector<std::pair<int, uint32_t>> delivery_order;
  {
    sim::Engine engine;
    SlotPool slots(&engine, pj.config.cluster);
    Replayer provisional(&engine, &slots, pj.config, pj.plan, pj.map_ins,
                         {}, {});
    RETURN_IF_ERROR(provisional.Run());
    std::vector<std::pair<double, std::pair<int, uint32_t>>> order;
    for (size_t m = 0; m < map_outs.size(); ++m) {
      for (uint32_t p = 0; p < map_outs[m].pushes.size(); ++p) {
        order.push_back({provisional.push_ready_time(static_cast<int>(m), p),
                         {static_cast<int>(m), p}});
      }
    }
    std::sort(order.begin(), order.end());
    delivery_order.reserve(order.size());
    for (auto& [t, mp] : order) delivery_order.push_back(mp);
  }

  // ---- Resident shuffle transform (DESIGN.md §5.9) ----
  // Runs after phase 2 on purpose: the consumption-order contract is
  // always computed from the disk-mode traces, so kDisk and kResident
  // consume identical deliveries in identical order and outputs are
  // byte-identical by construction. Only the phase-4 charges change here.
  if (resident_mode) {
    for (size_t m = 0; m < pj.map_ins.size(); ++m) {
      Replayer::MapTaskIn& in = pj.map_ins[m];
      in.resident.assign(in.num_pushes, 1);
      in.push_bytes.assign(in.num_pushes, 0);
      for (uint32_t p = 0; p < in.num_pushes; ++p) {
        in.push_bytes[p] = map_outs[m].pushes[p].bytes;
      }
    }
    // Admit segments in publish order against each producing node's byte
    // budget; the oldest segments evicted under pressure lose residency.
    // Eviction is write-through: a spilled push keeps its original gate
    // disk write (the PR 5 block-codec spill image), so the backstop
    // reuses the existing spill path and correctness never depends on the
    // working set fitting.
    ResidentSegmentCache cache(cl.nodes, config.resident_cache_bytes);
    for (const auto& [m, p] : delivery_order) {
      for (const auto& [em, ep] : cache.Admit(
               pj.map_ins[m].node, m, p, pj.map_ins[m].push_bytes[p])) {
        pj.map_ins[em].resident[ep] = 0;
      }
    }
    // A resident push's publish write becomes a memory-speed CPU op in
    // place (same op index, so the replayer's gate bookkeeping and the
    // progress deltas riding on the op are untouched).
    for (size_t m = 0; m < pj.map_ins.size(); ++m) {
      Replayer::MapTaskIn& in = pj.map_ins[m];
      for (const auto& [gate, p] : in.gates) {
        if (!in.resident[p]) {
          result.metrics.resident_spilled_segments += 1;
          result.metrics.resident_spilled_bytes += in.push_bytes[p];
          continue;
        }
        TraceOp& op = pj.map_traces[m].ops[gate];
        op.resource = OpResource::kCpu;
        op.cpu_s = config.costs.resident_publish_byte_s *
                   static_cast<double>(op.bytes);
        op.bytes = 0;
        op.requests = 0;
        op.is_read = false;
        result.metrics.resident_publish_segments += 1;
        result.metrics.resident_publish_bytes += in.push_bytes[p];
      }
    }
    // M3R input caching: an iteration re-reading the store the previous
    // iteration already scanned serves map input from memory. (The cache
    // is modeled per input store, not per replica: a map rescheduled off
    // its prior node still gets the memory rate — placement makes that
    // the rare case, not the model.)
    if (resident && resident->prior_input == &input) {
      for (CostTrace& t : pj.map_traces) {
        for (TraceOp& op : t.ops) {
          if (op.tag == OpTag::kMapInput &&
              op.resource == OpResource::kDisk && op.is_read) {
            result.metrics.resident_cached_input_bytes += op.bytes;
            op.resource = OpResource::kCpu;
            op.cpu_s = config.costs.cached_input_byte_s *
                       static_cast<double>(op.bytes);
            op.bytes = 0;
            op.requests = 0;
            op.is_read = false;
          }
        }
      }
    }
  }

  // ---- Phase 3: reduce data plane ----
  // With the delivery order fixed by the provisional replay, every reduce
  // task's engine run is independent: it reads the (now immutable) map
  // output segments for its own partition and writes only task-local
  // state, so the tasks execute concurrently on the pool.
  struct ReduceTaskData {
    CostTrace trace;
    std::unique_ptr<TraceRecorder> recorder;
    JobMetrics metrics;
    std::unique_ptr<Reducer> reducer;
    std::unique_ptr<IncrementalReducer> inc;
    std::unique_ptr<OutputCollector> out;
    std::unique_ptr<GroupByEngine> engine;
    std::vector<DeliveryRef> deliveries;
    std::vector<CheckpointMark> checkpoints;
    std::vector<Record> outputs;  // task-local; concatenated in r order
    KvBuffer saved_state;         // pre-Finish engine image (chains only)
    uint64_t saved_raw_bytes = 0;
  };
  std::vector<std::unique_ptr<ReduceTaskData>> reduce_tasks(total_reducers);
  std::vector<Status> reduce_statuses(total_reducers, Status::OK());
  const double reduce_plane_start = WallSeconds();
  RETURN_IF_ERROR(RunDataPlaneTasks(
      pool ? &*pool : nullptr, static_cast<size_t>(total_reducers),
      [&](size_t ri) {
        const int r = static_cast<int>(ri);
        auto task = std::make_unique<ReduceTaskData>();
        task->recorder = std::make_unique<TraceRecorder>(&task->trace);
        TraceRecorder& trace = *task->recorder;
        if (spec.reducer) task->reducer = spec.reducer();
        if (has_inc) task->inc = spec.inc();
        task->out = std::make_unique<OutputCollector>(
            &trace, &task->metrics,
            config.collect_outputs ? &task->outputs : nullptr);

        EngineContext ctx;
        ctx.trace = &trace;
        ctx.metrics = &task->metrics;
        ctx.out = task->out.get();
        ctx.config = &config;
        ctx.hashes = hashes;
        ctx.reducer = task->reducer.get();
        ctx.inc = task->inc.get();
        ctx.values_are_states = values_are_states;
        ctx.faults = &pj.plan;
        ctx.integrity_owner = static_cast<uint64_t>(r) + 1;
        Result<std::unique_ptr<GroupByEngine>> engine =
            CreateGroupByEngine(config.engine, ctx);
        if (!engine.ok()) {
          reduce_statuses[ri] = engine.status();
          return;
        }
        task->engine = std::move(engine).value();

        // State adoption (DESIGN.md §5.9): seed the fresh engine with the
        // prior iteration's table before any delivery, so unchanged keys
        // are never re-aggregated. The adopt cost is charged inside the
        // first replayed section below (ops before the first section mark
        // never replay).
        double adopt_cpu_s = 0;
        if (prior_state != nullptr) {
          CheckpointReader prior_reader(prior_state->states[r]);
          const Status adopted =
              task->engine->RestoreCheckpoint(&prior_reader);
          if (!adopted.ok()) {
            reduce_statuses[ri] = adopted;
            return;
          }
          task->metrics.resident_state_restores += 1;
          task->metrics.resident_state_restored_bytes +=
              prior_state->raw_bytes[r];
          adopt_cpu_s = config.costs.resident_publish_byte_s *
                        static_cast<double>(prior_state->raw_bytes[r]);
        }

        // Snapshot thresholds (§3.3(4)): after each 1/(N+1) of deliveries.
        std::vector<size_t> snapshot_at;
        if (config.snapshots > 0 && !delivery_order.empty()) {
          for (int k = 1; k <= config.snapshots; ++k) {
            snapshot_at.push_back(delivery_order.size() * k /
                                  (config.snapshots + 1));
          }
        }
        const bool ckpt_enabled = config.checkpoint_interval_segments > 0 ||
                                  config.checkpoint_interval_bytes > 0;
        uint64_t ckpt_segments = 0;
        uint64_t ckpt_bytes = 0;
        size_t delivery_index = 0;
        for (const auto& [m, p] : delivery_order) {
          const PushSegment& push = map_outs[m].pushes[p];
          // Under a block codec the fetched image is the encoded block
          // stream: the CRC check and the wire/disk byte charges cover the
          // *encoded* bytes, and the segment is decoded here before the
          // engine consumes it (DESIGN.md §5.5).
          const bool coded = !push.encoded.empty();
          const std::string* enc = coded ? &push.encoded[r] : nullptr;
          const KvBuffer* segment = coded ? nullptr : &push.partitions[r];
          const uint64_t wire_bytes =
              coded ? enc->size() : segment->bytes();
          // Every fetched segment re-verifies against the CRC its producer
          // stamped at publish time; the time-plane replay decides which
          // fetches the plan corrupts and replays the recovery.
          if (config.integrity.checksums && !push.crcs.empty()) {
            const uint32_t crc =
                coded ? Crc32c(*enc) : Crc32c(segment->data());
            if (crc != push.crcs[r]) {
              reduce_statuses[ri] = Status::Corruption(
                  "map task " + std::to_string(m) + " push " +
                  std::to_string(p) + ": segment for reducer " +
                  std::to_string(r) + " failed checksum verification");
              return;
            }
            task->metrics.verify_bytes += wire_bytes;
            task->metrics.checksum_overhead_bytes += FramedOverheadBytes(
                wire_bytes, config.integrity.block_bytes);
          }
          KvBuffer decoded;
          if (coded) {
            CodecStats dstats;
            Result<KvBuffer> dec = DecodeKvStream(*enc, &dstats);
            if (!dec.ok()) {
              reduce_statuses[ri] = dec.status();
              return;
            }
            decoded = std::move(dec).value();
            task->metrics.decompress_ns += dstats.decompress_ns;
            segment = &decoded;
          }
          DeliveryRef d;
          d.map_task = m;
          d.push = p;
          d.bytes = wire_bytes;
          task->deliveries.push_back(d);
          trace.BeginSection();
          trace.Net(wire_bytes, OpTag::kShuffle,
                    /*d_shuffle_bytes=*/wire_bytes);
          if (adopt_cpu_s > 0) {
            // First delivery section, right after its net op (the
            // replayer requires a section's first op to be the fetch).
            trace.Cpu(adopt_cpu_s, OpTag::kCheckpoint);
            adopt_cpu_s = 0;
          }
          if (coded) {
            trace.Cpu(config.costs.decompress_byte_s *
                          static_cast<double>(segment->bytes()),
                      OpTag::kShuffle);
          }
          task->metrics.shuffle_bytes += wire_bytes;
          const Status consumed =
              task->engine->Consume(*segment, map_outs[m].sorted);
          if (!consumed.ok()) {
            reduce_statuses[ri] = consumed;
            return;
          }
          ++delivery_index;
          if (std::find(snapshot_at.begin(), snapshot_at.end(),
                        delivery_index) != snapshot_at.end()) {
            const Status snap = task->engine->Snapshot();
            if (!snap.ok()) {
              reduce_statuses[ri] = snap;
              return;
            }
          }
          // Reduce-state checkpoint (DESIGN.md §5.6): on the interval
          // boundary, serialize the engine and run the image through the
          // codec + CRC-framing path, charging the compress CPU, the
          // durable write, and the replication transfer. The data plane
          // discards the bytes — restore correctness is proven by the
          // checkpoint unit tests; the time plane replays durability,
          // placement, and recovery from the recorded marks. A checkpoint
          // after the final delivery is useless (Finish follows at once)
          // and skipped.
          if (ckpt_enabled) {
            ckpt_segments += 1;
            ckpt_bytes += wire_bytes;
            const bool interval_hit =
                (config.checkpoint_interval_segments > 0 &&
                 ckpt_segments >= config.checkpoint_interval_segments) ||
                (config.checkpoint_interval_bytes > 0 &&
                 ckpt_bytes >= config.checkpoint_interval_bytes);
            if (interval_hit && delivery_index < delivery_order.size()) {
              CheckpointWriter w;
              const Status saved = task->engine->SaveCheckpoint(&w);
              if (!saved.ok()) {
                reduce_statuses[ri] = saved;
                return;
              }
              const EncodedCheckpoint image = EncodeCheckpoint(
                  w.fields(), config.block_codec, config.codec_block_bytes,
                  config.integrity.block_bytes);
              if (image.coded) {
                trace.Cpu(config.costs.compress_byte_s *
                              static_cast<double>(image.raw_bytes),
                          OpTag::kCheckpoint);
              }
              trace.DiskWrite(image.framed.size(), OpTag::kCheckpoint);
              const uint64_t extra_replicas = static_cast<uint64_t>(
                  config.checkpoint_replication - 1);
              if (extra_replicas > 0) {
                trace.Net(image.framed.size() * extra_replicas,
                          OpTag::kCheckpoint);
              }
              task->metrics.checkpoints_written += 1;
              task->metrics.checkpoint_bytes += image.framed.size();
              task->metrics.checkpoint_replica_bytes +=
                  image.framed.size() * extra_replicas;
              CheckpointMark mark;
              mark.watermark = static_cast<uint32_t>(delivery_index);
              mark.bytes = image.framed.size();
              mark.raw_bytes = image.raw_bytes;
              mark.gate_op =
                  static_cast<uint32_t>(task->trace.ops.size()) - 1;
              task->checkpoints.push_back(mark);
              ckpt_segments = 0;
              ckpt_bytes = 0;
            }
          }
        }
        trace.BeginSection();
        if (adopt_cpu_s > 0) {
          // No deliveries reached this reducer; charge the adopt in the
          // final section instead (fully replayed, no first-op rule).
          trace.Cpu(adopt_cpu_s, OpTag::kCheckpoint);
          adopt_cpu_s = 0;
        }
        // State carry-over capture: serialize the pre-Finish engine image
        // for the next iteration (Finish drains the spill buckets, so it
        // must run after the save; SaveCheckpoint is non-destructive).
        if (resident_mode && resident != nullptr &&
            resident->save_state != nullptr && carry_engine) {
          CheckpointWriter w;
          const Status saved = task->engine->SaveCheckpoint(&w);
          if (!saved.ok()) {
            reduce_statuses[ri] = saved;
            return;
          }
          task->saved_raw_bytes = w.fields().bytes();
          task->saved_state = w.Take();
          trace.Cpu(config.costs.resident_publish_byte_s *
                        static_cast<double>(task->saved_raw_bytes),
                    OpTag::kCheckpoint);
          task->metrics.resident_state_saved_bytes += task->saved_raw_bytes;
        }
        const Status finished = task->engine->Finish();
        if (!finished.ok()) {
          reduce_statuses[ri] = finished;
          return;
        }
        task->out->Flush();
        reduce_tasks[ri] = std::move(task);
      },
      reduce_statuses));
  result.reduce_plane_wall_s = WallSeconds() - reduce_plane_start;
  for (const auto& task : reduce_tasks) {
    result.metrics.Merge(task->metrics);
    if (config.collect_outputs) {
      result.outputs.insert(result.outputs.end(), task->outputs.begin(),
                            task->outputs.end());
    }
  }

  // Package the replay inputs. The intermediate payload bytes are dropped
  // here (only the traces and marks drive the time plane).
  pj.reduce_traces.reserve(reduce_tasks.size());
  for (auto& task : reduce_tasks) {
    pj.reduce_traces.push_back(std::move(task->trace));
  }
  pj.reduce_ins.resize(reduce_tasks.size());
  for (size_t r = 0; r < reduce_tasks.size(); ++r) {
    pj.reduce_ins[r].node =
        static_cast<int>(r) / config.reducers_per_node;
    // Partition-stable placement: pin each reduce partition to the node
    // that finished it last iteration, so adopted state and resident
    // segments are local to the task that reuses them.
    if (resident_mode && resident && resident->placement &&
        resident->placement->reduce_node.size() == reduce_tasks.size()) {
      const int prior_node = resident->placement->reduce_node[r];
      if (prior_node >= 0 && prior_node < cl.nodes) {
        pj.reduce_ins[r].node = prior_node;
      }
    }
    pj.reduce_ins[r].trace = &pj.reduce_traces[r];
    pj.reduce_ins[r].deliveries = std::move(reduce_tasks[r]->deliveries);
    pj.reduce_ins[r].checkpoints = std::move(reduce_tasks[r]->checkpoints);
  }
  if (resident_mode && resident != nullptr &&
      resident->save_state != nullptr && carry_engine) {
    ResidentStateHandle& handle = *resident->save_state;
    handle.states.clear();
    handle.raw_bytes.clear();
    handle.states.reserve(reduce_tasks.size());
    handle.raw_bytes.reserve(reduce_tasks.size());
    for (auto& task : reduce_tasks) {
      handle.states.push_back(std::move(task->saved_state));
      handle.raw_bytes.push_back(task->saved_raw_bytes);
    }
    handle.engine = config.engine;
    handle.seed = config.seed;
  }

  auto scan_trace = [&](const CostTrace& t) {
    for (const TraceOp& op : t.ops) {
      pj.totals.shuffle_bytes += op.d_shuffle_bytes;
      pj.totals.reduce_work += op.d_reduce_work;
      pj.totals.output_bytes += op.d_output_bytes;
    }
  };
  for (const CostTrace& t : pj.map_traces) scan_trace(t);
  for (const CostTrace& t : pj.reduce_traces) scan_trace(t);

  // CPU attribution.
  for (const CostTrace& t : pj.map_traces) {
    for (const TraceOp& op : t.ops) {
      if (op.resource == OpResource::kCpu) result.map_cpu_s += op.cpu_s;
    }
  }
  for (const CostTrace& t : pj.reduce_traces) {
    for (const TraceOp& op : t.ops) {
      if (op.resource == OpResource::kCpu) result.reduce_cpu_s += op.cpu_s;
    }
  }

  return pj;
}

Result<JobResult> LocalCluster::RunJob(const JobSpec& spec,
                                       const JobConfig& config,
                                       const ChunkStore& input) {
  ASSIGN_OR_RETURN(PreparedJob pj, PrepareJob(spec, config, input));

  // ---- Phase 4: full replay ----
  sim::Engine engine;
  SlotPool slots(&engine, pj.config.cluster);
  Replayer replay(&engine, &slots, pj.config, pj.plan, pj.map_ins,
                  pj.reduce_ins, pj.totals);
  RETURN_IF_ERROR(replay.Run());

  JobResult result = std::move(pj.result);
  result.running_time = replay.end_time();
  result.map_finish_time = replay.map_finish_time();
  result.shuffle_from_disk_bytes = replay.shuffle_from_disk_bytes();
  replay.ExportSeries(&result);
  replay.ExportFaultMetrics(&result.metrics);
  slots.ExportUtilization(
      pj.config.timeline_bin_s,
      std::max(replay.end_time(), pj.config.timeline_bin_s),
      &result.cpu_util, &result.iowait);
  return result;
}

}  // namespace onepass
