#include "src/mr/cluster.h"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

#include "src/common/logging.h"
#include "src/engine/group_by_engine.h"
#include "src/mr/cost_trace.h"
#include "src/mr/map_runner.h"
#include "src/mr/output.h"
#include "src/sim/event_queue.h"
#include "src/sim/resources.h"
#include "src/util/hash.h"

namespace onepass {
namespace {

// Task-activity categories for the Fig. 2(a)-style timeline.
enum class Activity { kMap, kShuffle, kMerge, kReduce, kNone };

Activity Categorize(bool is_map_task, OpTag tag) {
  if (is_map_task) return Activity::kMap;
  switch (tag) {
    case OpTag::kShuffle:
      return Activity::kShuffle;
    case OpTag::kReduceSpill:
    case OpTag::kReduceMerge:
      return Activity::kMerge;
    case OpTag::kCombine:
    case OpTag::kReduceFn:
    case OpTag::kOutput:
      return Activity::kReduce;
    default:
      return Activity::kNone;
  }
}

struct DeliveryRef {
  int map_task = 0;
  uint32_t push = 0;
  uint64_t bytes = 0;  // this reducer's partition share
};

// Replays map (and optionally reduce) cost traces on the simulated cluster.
class Replayer {
 public:
  struct MapTaskIn {
    int node = 0;
    const CostTrace* trace = nullptr;
    // gate op index -> push index, for push-ready bookkeeping.
    std::map<uint32_t, uint32_t> gates;
    uint32_t num_pushes = 0;
  };
  struct ReduceTaskIn {
    int node = 0;
    const CostTrace* trace = nullptr;
    std::vector<DeliveryRef> deliveries;
  };
  struct Totals {
    uint64_t shuffle_bytes = 0;
    uint64_t reduce_work = 0;
    uint64_t output_bytes = 0;
  };

  Replayer(const JobConfig& config, std::vector<MapTaskIn> maps,
           std::vector<ReduceTaskIn> reduces, Totals totals)
      : config_(config),
        maps_(std::move(maps)),
        reduces_(std::move(reduces)),
        totals_(totals) {
    const ClusterConfig& cl = config.cluster;
    for (int n = 0; n < cl.nodes; ++n) {
      nodes_.push_back(std::make_unique<NodeRes>(&engine_, cl, n));
    }
    map_states_.resize(maps_.size());
    reduce_start_.assign(reduces_.size(), 0.0);
    push_ready_.resize(maps_.size());
    for (size_t m = 0; m < maps_.size(); ++m) {
      push_ready_[m].assign(maps_[m].num_pushes, -1.0);
    }
    reduce_states_.resize(reduces_.size());
    map_finish_times_.assign(maps_.size(), 0.0);
  }

  void Run() {
    // Enqueue every task, then fill the initial slot waves.
    for (size_t m = 0; m < maps_.size(); ++m) {
      nodes_[maps_[m].node]->pending_maps.push_back(static_cast<int>(m));
    }
    for (size_t r = 0; r < reduces_.size(); ++r) {
      nodes_[reduces_[r].node]->pending_reduces.push_back(
          static_cast<int>(r));
    }
    // Pop before starting: a task with an empty trace completes
    // synchronously inside Start*, and its completion handler pulls the
    // next pending task itself.
    for (auto& node : nodes_) {
      while (node->free_map_slots > 0 && !node->pending_maps.empty()) {
        const int m = node->pending_maps.front();
        node->pending_maps.pop_front();
        --node->free_map_slots;
        StartMap(m);
      }
      while (node->free_reduce_slots > 0 && !node->pending_reduces.empty()) {
        const int r = node->pending_reduces.front();
        node->pending_reduces.pop_front();
        --node->free_reduce_slots;
        StartReduce(r);
      }
    }
    end_time_ = engine_.Run();
    CHECK_EQ(maps_done_, maps_.size());
    CHECK_EQ(reduces_done_, reduces_.size());
  }

  // --- results ---
  double end_time() const { return end_time_; }
  double map_finish_time() const { return last_map_finish_; }
  const std::vector<double>& map_finish_times() const {
    return map_finish_times_;
  }
  double push_ready_time(int m, uint32_t p) const {
    return push_ready_[m][p];
  }
  uint64_t shuffle_from_disk_bytes() const {
    return shuffle_from_disk_bytes_;
  }

  // Fills the timeline/progress portion of `result`.
  void ExportSeries(JobResult* result) const {
    result->map_progress = map_progress_;
    result->reduce_progress = reduce_progress_;
    result->shuffle_progress = shuffle_series_;
    result->reduce_work_progress = work_series_;
    result->output_progress = output_series_;
    result->active_map = active_[0];
    result->active_shuffle = active_[1];
    result->active_merge = active_[2];
    result->active_reduce = active_[3];

    // Cluster-average utilization and iowait.
    const double bin = config_.timeline_bin_s;
    const double horizon = std::max(end_time_, bin);
    sim::BinnedSeries util, wait;
    for (size_t n = 0; n < nodes_.size(); ++n) {
      sim::BinnedSeries u =
          sim::UtilizationSeries(nodes_[n]->cpu, bin, horizon);
      sim::BinnedSeries w =
          sim::IowaitSeries(nodes_[n]->cpu, nodes_[n]->hdd, bin, horizon);
      if (nodes_[n]->ssd != nullptr) {
        sim::BinnedSeries w2 =
            sim::IowaitSeries(nodes_[n]->cpu, *nodes_[n]->ssd, bin, horizon);
        for (size_t i = 0; i < w.values.size(); ++i) {
          w.values[i] = std::max(w.values[i], w2.values[i]);
        }
      }
      if (n == 0) {
        util = u;
        wait = w;
      } else {
        for (size_t i = 0; i < util.values.size(); ++i) {
          util.values[i] += u.values[i];
          wait.values[i] += w.values[i];
        }
      }
    }
    for (auto& v : util.values) v /= static_cast<double>(nodes_.size());
    for (auto& v : wait.values) v /= static_cast<double>(nodes_.size());
    result->cpu_util = util;
    result->iowait = wait;
  }

 private:
  struct NodeRes {
    NodeRes(sim::Engine* engine, const ClusterConfig& cl, int id)
        : cpu(engine, cl.cores_per_node, "cpu" + std::to_string(id)),
          hdd(engine, 1, "hdd" + std::to_string(id)),
          nic(engine, 1, "nic" + std::to_string(id)),
          free_map_slots(cl.map_slots),
          free_reduce_slots(cl.reduce_slots) {
      if (cl.separate_intermediate_device) {
        ssd = std::make_unique<sim::Server>(engine, 1,
                                            "ssd" + std::to_string(id));
      }
    }
    sim::Server cpu;
    sim::Server hdd;
    std::unique_ptr<sim::Server> ssd;
    sim::Server nic;
    std::deque<int> pending_maps;
    std::deque<int> pending_reduces;
    int free_map_slots;
    int free_reduce_slots;
  };

  struct MapState {
    size_t op_idx = 0;
    bool running = false;
  };
  // A reduce task runs two concurrent streams, like Hadoop's copier
  // threads vs its merge thread: the *fetch* stream pulls deliveries as
  // soon as their producing map publishes them (network + possible disk
  // re-read), while the *consume* stream executes the engine's per-
  // delivery work strictly in order, gated on the fetch of its section.
  struct ReduceState {
    uint32_t fetch_section = 0;    // next delivery to fetch
    uint32_t consume_section = 0;  // next section to consume
    size_t op_idx = 0;             // current op within consume_section
    bool in_section = false;       // op_idx initialized for this section
    bool consume_blocked = false;  // waiting for a fetch to complete
    std::vector<bool> fetched;
    bool running = false;
  };

  sim::Server* Route(int node, const TraceOp& op) {
    NodeRes& res = *nodes_[node];
    switch (op.resource) {
      case OpResource::kCpu:
        return &res.cpu;
      case OpResource::kNet:
        return &res.nic;
      case OpResource::kDisk:
        if (res.ssd != nullptr && op.tag != OpTag::kMapInput &&
            op.tag != OpTag::kOutput) {
          return res.ssd.get();
        }
        return &res.hdd;
    }
    return &res.cpu;
  }

  double Duration(const TraceOp& op) const {
    const CostModel& c = config_.costs;
    switch (op.resource) {
      case OpResource::kCpu:
        return op.cpu_s;
      case OpResource::kDisk:
        return op.requests * c.disk_seek_s +
               static_cast<double>(op.bytes) * c.disk_byte_s;
      case OpResource::kNet:
        return static_cast<double>(op.bytes) * c.net_byte_s;
    }
    return 0;
  }

  void SetActive(Activity a, int delta) {
    if (a == Activity::kNone) return;
    const int i = static_cast<int>(a);
    active_count_[i] += delta;
    active_[i].Add(engine_.now(), active_count_[i]);
  }

  void ApplyDeltas(const TraceOp& op) {
    bool changed = false;
    if (op.d_shuffle_bytes > 0 && totals_.shuffle_bytes > 0) {
      cum_shuffle_ += op.d_shuffle_bytes;
      shuffle_series_.Add(engine_.now(),
                          static_cast<double>(cum_shuffle_) /
                              static_cast<double>(totals_.shuffle_bytes));
      changed = true;
    }
    if (op.d_reduce_work > 0 && totals_.reduce_work > 0) {
      cum_work_ += op.d_reduce_work;
      work_series_.Add(engine_.now(),
                       static_cast<double>(cum_work_) /
                           static_cast<double>(totals_.reduce_work));
      changed = true;
    }
    if (op.d_output_bytes > 0 && totals_.output_bytes > 0) {
      cum_output_ += op.d_output_bytes;
      output_series_.Add(engine_.now(),
                         static_cast<double>(cum_output_) /
                             static_cast<double>(totals_.output_bytes));
      changed = true;
    }
    if (changed) RecordReduceProgress();
  }

  void RecordReduceProgress() {
    // Definition 1: 1/3 shuffle + 1/3 combine/reduce-fn + 1/3 output.
    double p = 0;
    if (totals_.shuffle_bytes > 0) {
      p += static_cast<double>(cum_shuffle_) /
           static_cast<double>(totals_.shuffle_bytes);
    }
    if (totals_.reduce_work > 0) {
      p += static_cast<double>(cum_work_) /
           static_cast<double>(totals_.reduce_work);
    }
    if (totals_.output_bytes > 0) {
      p += static_cast<double>(cum_output_) /
           static_cast<double>(totals_.output_bytes);
    }
    reduce_progress_.Add(engine_.now(), 100.0 * p / 3.0);
  }

  // ---- map side ----

  void StartMap(int m) {
    map_states_[m].running = true;
    SetActive(Activity::kMap, +1);
    RunNextMapOp(m);
  }

  void RunNextMapOp(int m) {
    MapState& st = map_states_[m];
    const CostTrace& trace = *maps_[m].trace;
    if (st.op_idx >= trace.ops.size()) {
      MapDone(m);
      return;
    }
    const size_t idx = st.op_idx++;
    const TraceOp& op = trace.ops[idx];
    Route(maps_[m].node, op)->Submit(Duration(op), [this, m, idx]() {
      const TraceOp& done_op = maps_[m].trace->ops[idx];
      ApplyDeltas(done_op);
      auto it = maps_[m].gates.find(static_cast<uint32_t>(idx));
      if (it != maps_[m].gates.end()) {
        PushReady(m, it->second);
      }
      RunNextMapOp(m);
    });
  }

  void MapDone(int m) {
    MapState& st = map_states_[m];
    st.running = false;
    SetActive(Activity::kMap, -1);
    ++maps_done_;
    map_finish_times_[m] = engine_.now();
    last_map_finish_ = std::max(last_map_finish_, engine_.now());
    map_progress_.Add(engine_.now(), 100.0 * static_cast<double>(maps_done_) /
                                         static_cast<double>(maps_.size()));
    NodeRes& node = *nodes_[maps_[m].node];
    if (!node.pending_maps.empty()) {
      const int next = node.pending_maps.front();
      node.pending_maps.pop_front();
      StartMap(next);
    } else {
      ++node.free_map_slots;
    }
  }

  void PushReady(int m, uint32_t p) {
    push_ready_[m][p] = engine_.now();
    const auto key = std::make_pair(m, p);
    auto it = push_waiters_.find(key);
    if (it != push_waiters_.end()) {
      std::vector<int> waiters = std::move(it->second);
      push_waiters_.erase(it);
      for (int r : waiters) StartFetch(r);
    }
  }

  // ---- reduce side ----

  void StartReduce(int r) {
    ReduceState& st = reduce_states_[r];
    st.running = true;
    st.fetched.assign(reduces_[r].deliveries.size(), false);
    reduce_start_[r] = engine_.now();
    StartFetch(r);
    TryConsume(r);
  }

  // Fetch stream: pulls delivery fetch_section as soon as its push is
  // published. The data-plane trace records each delivery section's first
  // op as the network fetch; the replay may prepend a disk read on the
  // mapper's node when the output has been evicted from its memory.
  void StartFetch(int r) {
    ReduceState& st = reduce_states_[r];
    const ReduceTaskIn& task = reduces_[r];
    if (st.fetch_section >= task.deliveries.size()) return;
    const uint32_t s = st.fetch_section;
    const DeliveryRef& d = task.deliveries[s];
    const double ready = push_ready_[d.map_task][d.push];
    if (ready < 0) {
      push_waiters_[{d.map_task, d.push}].push_back(r);
      return;
    }
    const CostTrace& trace = *task.trace;
    const TraceOp& net_op = trace.ops[trace.section_starts[s]];
    CHECK(net_op.resource == OpResource::kNet);
    auto do_net = [this, r, s, &net_op]() {
      SetActive(Activity::kShuffle, +1);
      Route(reduces_[r].node, net_op)
          ->Submit(Duration(net_op), [this, r, s]() {
            SetActive(Activity::kShuffle, -1);
            const CostTrace& t = *reduces_[r].trace;
            ApplyDeltas(t.ops[t.section_starts[s]]);
            ReduceState& state = reduce_states_[r];
            state.fetched[s] = true;
            ++state.fetch_section;
            StartFetch(r);
            if (state.consume_blocked) {
              state.consume_blocked = false;
              TryConsume(r);
            }
          });
    };
    // Fetch penalty: a reducer that was not yet running when the map
    // output was published (a second-wave reducer) finds it evicted from
    // the mapper's memory and re-reads it from disk. Reducers that were
    // already running fetch eagerly, so they read from memory.
    if (d.bytes > 0 &&
        reduce_start_[r] > ready + config_.costs.map_output_retention_s) {
      shuffle_from_disk_bytes_ += d.bytes;
      TraceOp read;
      read.resource = OpResource::kDisk;
      read.tag = OpTag::kShuffle;
      read.bytes = d.bytes;
      read.is_read = true;
      const int src_node = maps_[d.map_task].node;
      SetActive(Activity::kShuffle, +1);
      Route(src_node, read)->Submit(Duration(read), [this, do_net]() {
        SetActive(Activity::kShuffle, -1);
        do_net();
      });
      return;
    }
    do_net();
  }

  // Consume stream: runs each section's engine work in order; delivery
  // sections wait for their fetch; the final section (engine Finish)
  // runs after every delivery has been consumed.
  void TryConsume(int r) {
    ReduceState& st = reduce_states_[r];
    const ReduceTaskIn& task = reduces_[r];
    const CostTrace& trace = *task.trace;
    const uint32_t num_sections = trace.num_sections();
    if (st.consume_section >= num_sections) {
      ReduceDone(r);
      return;
    }
    const bool is_delivery = st.consume_section < task.deliveries.size();
    if (is_delivery && !st.fetched[st.consume_section]) {
      st.consume_blocked = true;
      return;
    }
    if (!st.in_section) {
      // Skip the net fetch op (handled by the fetch stream).
      st.op_idx = trace.section_starts[st.consume_section] +
                  (is_delivery ? 1 : 0);
      st.in_section = true;
    }
    const uint32_t next_section_start =
        st.consume_section + 1 < num_sections
            ? trace.section_starts[st.consume_section + 1]
            : static_cast<uint32_t>(trace.ops.size());
    if (st.op_idx >= next_section_start) {
      ++st.consume_section;
      st.in_section = false;
      TryConsume(r);
      return;
    }
    const size_t idx = st.op_idx++;
    const TraceOp& op = trace.ops[idx];
    const Activity act = Categorize(/*is_map_task=*/false, op.tag);
    SetActive(act, +1);
    Route(task.node, op)->Submit(Duration(op), [this, r, idx, act]() {
      SetActive(act, -1);
      ApplyDeltas(reduces_[r].trace->ops[idx]);
      TryConsume(r);
    });
  }

  void ReduceDone(int r) {
    reduce_states_[r].running = false;
    ++reduces_done_;
    NodeRes& node = *nodes_[reduces_[r].node];
    if (!node.pending_reduces.empty()) {
      const int next = node.pending_reduces.front();
      node.pending_reduces.pop_front();
      StartReduce(next);
    } else {
      ++node.free_reduce_slots;
    }
  }

  const JobConfig& config_;
  std::vector<MapTaskIn> maps_;
  std::vector<ReduceTaskIn> reduces_;
  Totals totals_;

  sim::Engine engine_;
  std::vector<std::unique_ptr<NodeRes>> nodes_;
  std::vector<MapState> map_states_;
  std::vector<ReduceState> reduce_states_;
  std::vector<double> reduce_start_;
  std::vector<std::vector<double>> push_ready_;
  std::map<std::pair<int, uint32_t>, std::vector<int>> push_waiters_;
  std::vector<double> map_finish_times_;

  size_t maps_done_ = 0;
  size_t reduces_done_ = 0;
  double last_map_finish_ = 0;
  double end_time_ = 0;
  uint64_t shuffle_from_disk_bytes_ = 0;

  uint64_t cum_shuffle_ = 0, cum_work_ = 0, cum_output_ = 0;
  sim::StepSeries map_progress_, reduce_progress_;
  sim::StepSeries shuffle_series_, work_series_, output_series_;
  sim::StepSeries active_[4];
  int active_count_[4] = {0, 0, 0, 0};
};

}  // namespace

Result<JobResult> LocalCluster::RunJob(const JobSpec& spec,
                                       const JobConfig& config,
                                       const ChunkStore& input) {
  if (!spec.mapper) {
    return Status::InvalidArgument("job needs a mapper factory");
  }
  const ClusterConfig& cl = config.cluster;
  if (cl.nodes < 1 || cl.cores_per_node < 1 || cl.map_slots < 1 ||
      cl.reduce_slots < 1) {
    return Status::InvalidArgument("invalid cluster shape");
  }
  if (config.reducers_per_node < 1) {
    return Status::InvalidArgument("need at least one reducer per node");
  }

  const bool has_inc = static_cast<bool>(spec.inc);
  if ((config.engine == EngineKind::kIncHash ||
       config.engine == EngineKind::kDincHash) &&
      !has_inc) {
    return Status::InvalidArgument(
        "incremental engines need an IncrementalReducer factory");
  }
  if ((config.engine == EngineKind::kSortMerge ||
       config.engine == EngineKind::kMRHash) &&
      !spec.reducer && !(has_inc && config.map_side_combine)) {
    return Status::InvalidArgument(
        "sort-merge / MR-hash need a Reducer factory");
  }

  const int total_reducers = cl.nodes * config.reducers_per_node;
  const UniversalHashFamily hashes(config.seed);
  const UniversalHash h1 = hashes.At(0);
  const MapOutputMode mode = SelectMapOutputMode(config, has_inc);
  const bool values_are_states = ModeProducesStates(mode);

  JobResult result;
  result.map_tasks = static_cast<int>(input.chunks().size());
  result.reduce_tasks = total_reducers;

  // ---- Phase 1: map data plane ----
  std::vector<MapTaskOutput> map_outs;
  map_outs.reserve(input.chunks().size());
  for (const Chunk& chunk : input.chunks()) {
    std::unique_ptr<Mapper> mapper = spec.mapper();
    std::unique_ptr<IncrementalReducer> inc =
        has_inc ? spec.inc() : nullptr;
    MapRunner runner(config, mode, h1, total_reducers, mapper.get(),
                     inc.get());
    ASSIGN_OR_RETURN(MapTaskOutput mo, runner.Run(chunk.records));
    result.metrics.Merge(mo.metrics);
    map_outs.push_back(std::move(mo));
  }

  auto make_map_inputs = [&]() {
    std::vector<Replayer::MapTaskIn> ins(map_outs.size());
    for (size_t m = 0; m < map_outs.size(); ++m) {
      ins[m].node = input.chunks()[m].node;
      ins[m].trace = &map_outs[m].trace;
      ins[m].num_pushes = static_cast<uint32_t>(map_outs[m].pushes.size());
      for (uint32_t p = 0; p < ins[m].num_pushes; ++p) {
        ins[m].gates[map_outs[m].pushes[p].gate_op] = p;
      }
    }
    return ins;
  };

  // ---- Phase 2: provisional replay fixes the delivery order ----
  std::vector<std::pair<int, uint32_t>> delivery_order;
  {
    Replayer provisional(config, make_map_inputs(), {}, {});
    provisional.Run();
    std::vector<std::pair<double, std::pair<int, uint32_t>>> order;
    for (size_t m = 0; m < map_outs.size(); ++m) {
      for (uint32_t p = 0; p < map_outs[m].pushes.size(); ++p) {
        order.push_back({provisional.push_ready_time(static_cast<int>(m), p),
                         {static_cast<int>(m), p}});
      }
    }
    std::sort(order.begin(), order.end());
    delivery_order.reserve(order.size());
    for (auto& [t, mp] : order) delivery_order.push_back(mp);
  }

  // ---- Phase 3: reduce data plane ----
  struct ReduceTaskData {
    CostTrace trace;
    std::unique_ptr<TraceRecorder> recorder;
    JobMetrics metrics;
    std::unique_ptr<Reducer> reducer;
    std::unique_ptr<IncrementalReducer> inc;
    std::unique_ptr<OutputCollector> out;
    std::unique_ptr<GroupByEngine> engine;
    std::vector<DeliveryRef> deliveries;
  };
  std::vector<std::unique_ptr<ReduceTaskData>> reduce_tasks;
  reduce_tasks.reserve(total_reducers);
  for (int r = 0; r < total_reducers; ++r) {
    auto task = std::make_unique<ReduceTaskData>();
    task->recorder = std::make_unique<TraceRecorder>(&task->trace);
    TraceRecorder& trace = *task->recorder;
    if (spec.reducer) task->reducer = spec.reducer();
    if (has_inc) task->inc = spec.inc();
    task->out = std::make_unique<OutputCollector>(
        &trace, &task->metrics,
        config.collect_outputs ? &result.outputs : nullptr);

    EngineContext ctx;
    ctx.trace = &trace;
    ctx.metrics = &task->metrics;
    ctx.out = task->out.get();
    ctx.config = &config;
    ctx.hashes = hashes;
    ctx.reducer = task->reducer.get();
    ctx.inc = task->inc.get();
    ctx.values_are_states = values_are_states;
    ASSIGN_OR_RETURN(task->engine,
                     CreateGroupByEngine(config.engine, ctx));

    // Snapshot thresholds (§3.3(4)): after each 1/(N+1) of deliveries.
    std::vector<size_t> snapshot_at;
    if (config.snapshots > 0 && !delivery_order.empty()) {
      for (int k = 1; k <= config.snapshots; ++k) {
        snapshot_at.push_back(delivery_order.size() * k /
                              (config.snapshots + 1));
      }
    }
    size_t delivery_index = 0;
    for (const auto& [m, p] : delivery_order) {
      const KvBuffer& segment = map_outs[m].pushes[p].partitions[r];
      DeliveryRef d;
      d.map_task = m;
      d.push = p;
      d.bytes = segment.bytes();
      task->deliveries.push_back(d);
      trace.BeginSection();
      trace.Net(segment.bytes(), OpTag::kShuffle,
                /*d_shuffle_bytes=*/segment.bytes());
      task->metrics.shuffle_bytes += segment.bytes();
      RETURN_IF_ERROR(task->engine->Consume(segment, map_outs[m].sorted));
      ++delivery_index;
      if (std::find(snapshot_at.begin(), snapshot_at.end(),
                    delivery_index) != snapshot_at.end()) {
        RETURN_IF_ERROR(task->engine->Snapshot());
      }
    }
    trace.BeginSection();
    RETURN_IF_ERROR(task->engine->Finish());
    task->out->Flush();
    result.metrics.Merge(task->metrics);
    reduce_tasks.push_back(std::move(task));
  }

  // Free intermediate data before the full replay (the traces remain).
  // Note: delivery gating references map_outs' traces, so keep those.
  for (auto& mo : map_outs) {
    for (auto& push : mo.pushes) {
      push.partitions.clear();
    }
  }

  // ---- Phase 4: full replay ----
  Replayer::Totals totals;
  auto scan_trace = [&](const CostTrace& t) {
    for (const TraceOp& op : t.ops) {
      totals.shuffle_bytes += op.d_shuffle_bytes;
      totals.reduce_work += op.d_reduce_work;
      totals.output_bytes += op.d_output_bytes;
    }
  };
  for (const auto& mo : map_outs) scan_trace(mo.trace);
  for (const auto& t : reduce_tasks) scan_trace(t->trace);

  std::vector<Replayer::ReduceTaskIn> reduce_ins(reduce_tasks.size());
  for (size_t r = 0; r < reduce_tasks.size(); ++r) {
    reduce_ins[r].node =
        static_cast<int>(r) / config.reducers_per_node;
    reduce_ins[r].trace = &reduce_tasks[r]->trace;
    reduce_ins[r].deliveries = reduce_tasks[r]->deliveries;
  }

  Replayer replay(config, make_map_inputs(), std::move(reduce_ins), totals);
  replay.Run();

  result.running_time = replay.end_time();
  result.map_finish_time = replay.map_finish_time();
  result.shuffle_from_disk_bytes = replay.shuffle_from_disk_bytes();
  replay.ExportSeries(&result);

  // CPU attribution.
  for (const auto& mo : map_outs) {
    for (const TraceOp& op : mo.trace.ops) {
      if (op.resource == OpResource::kCpu) result.map_cpu_s += op.cpu_s;
    }
  }
  for (const auto& t : reduce_tasks) {
    for (const TraceOp& op : t->trace.ops) {
      if (op.resource == OpResource::kCpu) result.reduce_cpu_s += op.cpu_s;
    }
  }

  return result;
}

}  // namespace onepass
