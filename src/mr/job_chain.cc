#include "src/mr/job_chain.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/mr/slot_pool.h"
#include "src/sim/event_queue.h"

namespace onepass {
namespace {

constexpr size_t kMaxChainStages = 64;

// Phase 4 for one stage: the solo replay RunJob performs, plus placement
// capture for the next stage.
Result<JobResult> ReplayStage(PreparedJob& pj,
                              PartitionPlacement* placement_out) {
  sim::Engine engine;
  SlotPool slots(&engine, pj.config.cluster);
  Replayer replay(&engine, &slots, pj.config, pj.plan, pj.map_ins,
                  pj.reduce_ins, pj.totals);
  RETURN_IF_ERROR(replay.Run());

  JobResult result = std::move(pj.result);
  result.running_time = replay.end_time();
  result.map_finish_time = replay.map_finish_time();
  result.shuffle_from_disk_bytes = replay.shuffle_from_disk_bytes();
  replay.ExportSeries(&result);
  replay.ExportFaultMetrics(&result.metrics);
  slots.ExportUtilization(
      pj.config.timeline_bin_s,
      std::max(replay.end_time(), pj.config.timeline_bin_s),
      &result.cpu_util, &result.iowait);

  placement_out->map_node.resize(pj.map_ins.size());
  for (size_t m = 0; m < pj.map_ins.size(); ++m) {
    placement_out->map_node[m] = replay.map_winner_node(static_cast<int>(m));
  }
  placement_out->reduce_node.resize(pj.reduce_ins.size());
  for (size_t r = 0; r < pj.reduce_ins.size(); ++r) {
    placement_out->reduce_node[r] =
        replay.reduce_winner_node(static_cast<int>(r));
  }
  return result;
}

bool CarriesState(const JobConfig& cfg) {
  return cfg.shuffle_mode == ShuffleMode::kResident &&
         (cfg.engine == EngineKind::kIncHash ||
          cfg.engine == EngineKind::kDincHash);
}

}  // namespace

Result<ChainResult> RunJobChain(const std::vector<ChainStage>& stages) {
  if (stages.empty()) {
    return Status::InvalidArgument("chain needs at least one stage");
  }
  if (stages.size() > kMaxChainStages) {
    return Status::InvalidArgument(
        "chain length must be <= " + std::to_string(kMaxChainStages) +
        ", got " + std::to_string(stages.size()));
  }
  for (size_t i = 0; i < stages.size(); ++i) {
    const ChainStage& st = stages[i];
    if (st.input == nullptr) {
      return Status::InvalidArgument("chain stage " + std::to_string(i) +
                                     " has no input store");
    }
    RETURN_IF_ERROR(st.config.Validate());
    if (CarriesState(st.config) &&
        st.config.hash_core == HashCoreKind::kLegacy) {
      return Status::InvalidArgument(
          "resident state carry-over requires the flat hash core: restoring "
          "std::unordered_map state does not reproduce iteration order");
    }
    if (i > 0 && st.config.shuffle_mode == ShuffleMode::kResident) {
      const JobConfig& prev = stages[i - 1].config;
      if (st.config.engine != prev.engine || st.config.seed != prev.seed ||
          st.config.cluster.nodes != prev.cluster.nodes ||
          st.config.reducers_per_node != prev.reducers_per_node) {
        return Status::InvalidArgument(
            "resident chain stages must agree on engine kind, seed, node "
            "count, and reducers_per_node (stage " + std::to_string(i) +
            " diverges)");
      }
    }
  }

  ChainResult out;
  out.iterations.reserve(stages.size());
  // Double-buffered state handles: a stage reads `prior` while writing the
  // other buffer, then the buffers swap roles.
  ResidentStateHandle state_a;
  ResidentStateHandle state_b;
  ResidentStateHandle* prior = nullptr;
  PartitionPlacement placement;
  const ChunkStore* prior_input = nullptr;

  for (size_t i = 0; i < stages.size(); ++i) {
    const ChainStage& st = stages[i];
    const bool res = st.config.shuffle_mode == ShuffleMode::kResident;
    ResidentStateHandle* save =
        CarriesState(st.config) ? (prior == &state_a ? &state_b : &state_a)
                                : nullptr;

    ResidentContext ctx;
    ctx.prior_state = i > 0 ? prior : nullptr;
    ctx.placement = i > 0 && !placement.empty() ? &placement : nullptr;
    ctx.save_state = save;
    ctx.prior_input = i > 0 ? prior_input : nullptr;

    ASSIGN_OR_RETURN(PreparedJob pj,
                     LocalCluster::PrepareJob(st.spec, st.config, *st.input,
                                              res ? &ctx : nullptr));
    PartitionPlacement stage_placement;
    ASSIGN_OR_RETURN(JobResult result, ReplayStage(pj, &stage_placement));
    out.iterations.push_back(std::move(result));

    placement = std::move(stage_placement);
    prior = save;
    prior_input = st.input;
  }
  out.placement = std::move(placement);
  return out;
}

}  // namespace onepass
