// Job metrics: measured byte counts (the five I/O types of Table 2),
// work counters, and CPU attribution.
//
// These are *measured* on the data plane — every spilled page, merged run,
// and output block increments them as real bytes move — and reported by the
// bench harnesses for Tables 1, 3, and 4.

#ifndef ONEPASS_MR_METRICS_H_
#define ONEPASS_MR_METRICS_H_

#include <cstdint>
#include <string>

namespace onepass {

struct JobMetrics {
  // --- Bytes (Table 2's U components; written and read tracked apart) ---
  uint64_t map_input_bytes = 0;        // U1
  uint64_t map_spill_write_bytes = 0;  // U2 (writes)
  uint64_t map_spill_read_bytes = 0;   // U2 (reads)
  uint64_t map_output_bytes = 0;       // U3
  uint64_t shuffle_bytes = 0;          // network traffic (== U3 in total)
  uint64_t reduce_spill_write_bytes = 0;  // U4 (writes)
  uint64_t reduce_spill_read_bytes = 0;   // U4 (reads)
  uint64_t reduce_output_bytes = 0;    // U5

  // --- Record / work counters ---
  uint64_t map_input_records = 0;
  uint64_t map_output_records = 0;
  uint64_t reduce_input_records = 0;
  uint64_t combine_invocations = 0;   // reduce-side state updates
  uint64_t reduce_groups = 0;         // keys fed to reduce()/finalize()
  uint64_t output_records = 0;
  uint64_t early_output_records = 0;  // emitted before end of input
  uint64_t snapshot_bytes = 0;        // HOP-style snapshot output volume
  uint64_t snapshot_count = 0;

  // --- CPU seconds (data-plane modeled cost, summed over tasks) ---
  double map_cpu_s = 0;
  double reduce_cpu_s = 0;

  void Merge(const JobMetrics& o);

  // Human-readable multi-line summary.
  std::string ToString() const;
};

}  // namespace onepass

#endif  // ONEPASS_MR_METRICS_H_
