// Job metrics: measured byte counts (the five I/O types of Table 2),
// work counters, and CPU attribution.
//
// These are *measured* on the data plane — every spilled page, merged run,
// and output block increments them as real bytes move — and reported by the
// bench harnesses for Tables 1, 3, and 4.

#ifndef ONEPASS_MR_METRICS_H_
#define ONEPASS_MR_METRICS_H_

#include <cstdint>
#include <string>

namespace onepass {

struct JobMetrics {
  // --- Bytes (Table 2's U components; written and read tracked apart) ---
  uint64_t map_input_bytes = 0;        // U1
  uint64_t map_spill_write_bytes = 0;  // U2 (writes)
  uint64_t map_spill_read_bytes = 0;   // U2 (reads)
  uint64_t map_output_bytes = 0;       // U3
  uint64_t shuffle_bytes = 0;          // network traffic (== U3 in total)
  uint64_t reduce_spill_write_bytes = 0;  // U4 (writes)
  uint64_t reduce_spill_read_bytes = 0;   // U4 (reads)
  uint64_t reduce_output_bytes = 0;    // U5

  // --- Record / work counters ---
  uint64_t map_input_records = 0;
  uint64_t map_output_records = 0;
  uint64_t reduce_input_records = 0;
  uint64_t combine_invocations = 0;   // reduce-side state updates
  uint64_t reduce_groups = 0;         // keys fed to reduce()/finalize()
  uint64_t output_records = 0;
  uint64_t early_output_records = 0;  // emitted before end of input
  uint64_t snapshot_bytes = 0;        // HOP-style snapshot output volume
  uint64_t snapshot_count = 0;

  // --- Fault tolerance / recovery (time-plane, from the TaskTracker) ---
  uint64_t map_task_attempts = 0;     // attempts started (>= map tasks)
  uint64_t reduce_task_attempts = 0;  // attempts started (>= reduce tasks)
  uint64_t killed_attempts = 0;       // crash kills + speculation losers
  // Attempts evicted by the multi-tenant slot arbiter (DESIGN.md §5.7) to
  // free a slot for a starved tenant. Unlike kills, preemptions do not
  // consume the task's attempt budget; the task requeues. Always 0 in a
  // solo RunJob (no other tenant to preempt for).
  uint64_t preempted_attempts = 0;
  uint64_t speculative_attempts = 0;  // backup attempts launched
  uint64_t speculative_wins = 0;      // backups that finished first
  uint64_t lost_map_outputs = 0;      // completed maps re-run (lost output)
  uint64_t node_crashes = 0;
  uint64_t shuffle_fetch_retries = 0;  // transient fetch failures retried
  uint64_t disk_read_retries = 0;      // transient disk errors retried
  // Bytes of disk/network work done by attempts that were later killed —
  // I/O the cluster must redo. Sort-merge recovery is dominated by this
  // (spilled runs are replayed); INC/DINC recovery by wasted_cpu_s
  // (hash state is rebuilt from the re-fetched stream).
  uint64_t recovery_bytes = 0;
  double wasted_cpu_s = 0;  // CPU seconds burned by killed attempts

  // --- Data integrity (checksummed I/O; DESIGN.md §5.2) ---
  uint64_t verify_bytes = 0;  // payload bytes CRC-verified at read time
  uint64_t checksum_overhead_bytes = 0;  // framing headers on those bytes
  uint64_t corruptions_detected = 0;   // checksum/length verify failures
  uint64_t torn_writes_detected = 0;   //   ...of which truncated streams
  uint64_t corruptions_recovered = 0;  // healed via replica / re-execution
                                       // / rebuild (== detected unless the
                                       // job died with kCorruption)
  uint64_t quarantined_replicas = 0;   // DFS chunk copies taken out of use
  uint64_t rereplicated_bytes = 0;     // DFS re-replication traffic
  // Extra I/O spent recovering from corruption (replica re-reads, bucket
  // and run rebuilds, shuffle re-fetches), charged through the cost model.
  uint64_t corruption_recovery_bytes = 0;

  // --- Reduce-state checkpointing (DESIGN.md §5.6) ---
  uint64_t checkpoints_written = 0;   // durable checkpoints recorded
  uint64_t checkpoint_bytes = 0;      // encoded+framed primary bytes
  uint64_t checkpoint_replica_bytes = 0;  // replication traffic (repl - 1)
  uint64_t checkpoints_restored = 0;  // reattempts resumed from a replica
  uint64_t checkpoint_restore_bytes = 0;  // replica bytes read on restore
  uint64_t checkpoint_corrupt_replicas = 0;  // replicas rejected by verify
  uint64_t checkpoint_full_replays = 0;  // reattempts with no usable replica
  uint64_t checkpoint_segments_skipped = 0;  // deliveries below watermark
  uint64_t checkpoint_skipped_bytes = 0;  // their segment bytes, not re-fetched
  // Shuffle fetch bytes moved by reduce attempt > 0 (re-fetched work); the
  // checkpoint bench's >= 3x recovery-work assertion compares this.
  uint64_t shuffle_refetched_bytes = 0;

  // --- Resident shuffle (DESIGN.md §5.9) ---
  // Push segments admitted to the per-node resident cache vs. spilled to
  // the disk backstop under the byte budget, counted at publish time.
  uint64_t resident_publish_segments = 0;
  uint64_t resident_publish_bytes = 0;
  uint64_t resident_spilled_segments = 0;
  uint64_t resident_spilled_bytes = 0;
  // Shuffle fetch bytes served from resident segments (vs. the retention-
  // window disk re-reads they avoid), and segments lost to node crashes
  // (re-materialized through ordinary map re-execution).
  uint64_t resident_hit_bytes = 0;
  uint64_t resident_invalidated_segments = 0;
  uint64_t resident_invalidated_bytes = 0;
  // Chain state carry-over: reducers that adopted a prior iteration's
  // engine state instead of starting cold, and the state bytes moved at
  // save/adopt time.
  uint64_t resident_state_restores = 0;
  uint64_t resident_state_restored_bytes = 0;
  uint64_t resident_state_saved_bytes = 0;
  // Map input bytes served from the M3R-style input cache (iteration re-
  // reading the previous iteration's chunk store on the same nodes).
  uint64_t resident_cached_input_bytes = 0;

  // --- Node combine tier (DESIGN.md §5.10) ---
  // Records/bytes fed into the node-scope combiner by co-located map
  // tasks, and what came out as combined pushes. All zero under
  // combine_scope == kTask (the tier never runs). The input/output ratio
  // is the tier's collapse factor, multiplicative with the codec's.
  uint64_t node_combine_input_records = 0;
  uint64_t node_combine_input_bytes = 0;
  uint64_t node_combine_output_records = 0;
  uint64_t node_combine_output_bytes = 0;
  uint64_t node_combine_tasks = 0;  // virtual node-barrier combine tasks
  // Records that bypassed the combiner uncombined because the shard had
  // degraded to the FREQUENT-sketch under node_combine_budget_bytes, and
  // how many (node, partition) shards degraded.
  uint64_t node_combine_passthrough_records = 0;
  uint64_t node_combine_sketch_shards = 0;

  // --- Block codec (DESIGN.md §5.5) ---
  // Raw (KvBuffer-serialized) vs encoded (block-stream) bytes per stream
  // kind. All zero under block_codec == kNone (the encoder never runs).
  uint64_t codec_map_spill_raw_bytes = 0;    // sorted map spill runs
  uint64_t codec_map_spill_encoded_bytes = 0;
  uint64_t codec_shuffle_raw_bytes = 0;      // map output / shuffle segments
  uint64_t codec_shuffle_encoded_bytes = 0;
  uint64_t codec_reduce_spill_raw_bytes = 0;  // reduce-side sorted runs
  uint64_t codec_reduce_spill_encoded_bytes = 0;
  uint64_t codec_bucket_raw_bytes = 0;       // hash-engine bucket files
  uint64_t codec_bucket_encoded_bytes = 0;
  // Host wall-clock spent in the codec. These are real (non-simulated)
  // nanoseconds, so they vary run to run and across thread counts; they
  // feed throughput reporting only and are deliberately EXCLUDED from
  // Serialize() (goldens and determinism tests must not see them).
  double compress_ns = 0;
  double decompress_ns = 0;

  // --- Batch data plane (DESIGN.md §5.8) ---
  // How many RecordBatches the batched consume/map loops filled and how
  // many records flowed through them. record_batches varies with
  // batch_records (it is a host-side batching artifact, like compress_ns),
  // so both counters are EXCLUDED from Serialize(): goldens and the
  // batch-equivalence fingerprints must be identical at every batch size.
  uint64_t record_batches = 0;
  uint64_t batched_records = 0;

  // --- Hash core (FlatTable; DESIGN.md §5.4) ---
  // Counters from every FlatTable the job's tasks ran: engine state
  // tables, bucket-pass tables, sketch indexes, map-side combiners.
  uint64_t hash_table_probes = 0;    // control slots inspected
  uint64_t hash_table_rehashes = 0;  // capacity doublings
  uint64_t hash_table_max_probe = 0;  // longest chain (Merge takes the max)
  uint64_t hash_arena_bytes = 0;  // peak arena bytes, summed over tables

  // --- CPU seconds (data-plane modeled cost, summed over tasks) ---
  double map_cpu_s = 0;
  double reduce_cpu_s = 0;

  void Merge(const JobMetrics& o);

  // Human-readable multi-line summary.
  std::string ToString() const;

  // Stable "name=value" serialization of every field, one per line, in
  // declaration order. Golden-snapshot tests diff this against checked-in
  // files so accidental schedule or accounting drift fails loudly, and
  // determinism tests compare it across data_plane_threads settings.
  // Doubles print with %.9g: wide enough that any real accounting change
  // shows, narrow enough to absorb last-ulp noise from different compiler
  // optimization levels (goldens are shared across -O0 sanitizer builds
  // and -O2 release builds).
  std::string Serialize() const;
};

}  // namespace onepass

#endif  // ONEPASS_MR_METRICS_H_
