// SlotPool: the shared simulated cluster substrate for multi-job replays
// (DESIGN.md §5.7).
//
// One SlotPool owns what used to be private to a single Replayer: the
// per-node simulated resources (CPU pool, disks, NIC), the map/reduce slot
// counters, and the per-node queues of tasks waiting for a slot. Replayers
// (one per job) enqueue work here and the pool decides, slot by slot, which
// job's task starts next:
//
//   * kFifo — earliest-admitted job first (lowest job id with pending work
//     on the node). One registered job degenerates to the historical
//     single-job FIFO pump, byte-identical to the pre-pool replayer.
//   * kFairShare — the job whose tenant has the lowest running-task share
//     (running tasks / weight) goes first; within a tenant, earliest job
//     first. Work-conserving: a heavy tenant is throttled only while a
//     lighter one has runnable work (or by its explicit cap).
//
// Two overload-degradation levers ride on top of fair share:
//   * throttling — a tenant with max_running_tasks > 0 never occupies more
//     than that many *map* slots cluster-wide (skips are counted). The cap
//     deliberately exempts reduces: a pipelined reduce parks in its slot
//     waiting for map deliveries, so capping reduces would deadlock the
//     tenant against its own maps;
//   * preemption — when a tenant in deficit enqueues a map task onto a
//     full node, the pool may evict a running map attempt of the most
//     over-share tenant (the victim requeues; its attempt budget is not
//     charged — see TaskTracker::Preempted).
//
// Determinism: the pool never consults wall clock or RNG. Queues pop in
// insertion order per job, jobs are picked by (share, job id), and every
// tie-break is a pure function of the registered state, so a multi-job
// replay is a pure function of its inputs (the event queue's per-job
// stream tags keep simultaneous cross-job events ordered; see
// src/sim/event_queue.h).

#ifndef ONEPASS_MR_SLOT_POOL_H_
#define ONEPASS_MR_SLOT_POOL_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/mr/config.h"
#include "src/mr/cost_trace.h"
#include "src/sim/event_queue.h"
#include "src/sim/resources.h"
#include "src/sim/timeline.h"

namespace onepass {

class Replayer;

// How the pool arbitrates slots between jobs.
enum class SchedulePolicy : uint8_t { kFifo, kFairShare };

// A task execution waiting for a slot; speculative entries are backup
// attempts (first finisher wins).
struct PendingTask {
  int task = 0;
  bool speculative = false;
};

class SlotPool {
 public:
  struct Options {
    SchedulePolicy policy = SchedulePolicy::kFifo;
    bool preemption = false;
  };

  SlotPool(sim::Engine* engine, const ClusterConfig& cluster)
      : SlotPool(engine, cluster, Options()) {}
  SlotPool(sim::Engine* engine, const ClusterConfig& cluster,
           Options options);

  // Declares a tenant (weight > 0; max_running_tasks 0 = uncapped, else
  // the tenant's cluster-wide running *map* attempts stay at or below
  // it). Tenant 0 exists implicitly with weight 1 — solo replays never
  // call this.
  void RegisterTenant(int tenant, double weight, int max_running_tasks);

  // Job lifecycle. Job ids must be unique among registered jobs; the
  // pool holds `client` until UnregisterJob. Unregistering requires the
  // job to have released every slot (its Replayer kills attempts first).
  void RegisterJob(int job, int tenant, Replayer* client);
  void UnregisterJob(int job);

  // Appends an entry to the job's queue on `node` without pumping —
  // used for the initial wave so event creation order matches the
  // historical "enqueue everything, then pump" sequence.
  void QueueMap(int job, int node, PendingTask p);
  void QueueReduce(int job, int node, PendingTask p);

  // Appends and immediately pumps the node; EnqueueMap may then preempt
  // (fair-share + preemption only) if the entry is still waiting.
  void EnqueueMap(int job, int node, PendingTask p);
  void EnqueueReduce(int job, int node, PendingTask p);

  // One preemption pass on behalf of a newly admitted job: for every node
  // where the job still has queued maps on a full node, tries to evict a
  // running attempt of an over-share tenant. No-op unless preemption and
  // fair share are both on (so also a no-op for solo replays).
  void PreemptForJob(int job);

  // Removes and returns the job's queued entries on `node` (crash
  // handling / failure cleanup; the caller resets its queued flags).
  std::vector<PendingTask> TakeJobQueue(int job, int node, bool is_map);

  // Returns a slot the job acquired on `node` and pumps the node. Called
  // exactly once per started attempt, on completion, kill, or preemption
  // — even when the node is dead *for that job* (fail-stop death is a
  // per-job fault domain; the node keeps serving other jobs).
  void ReleaseSlot(int job, int node, bool is_map);

  // Fills free slots on `node` from the queues, in policy order.
  void PumpNode(int node);

  // Queue + busy-slot pressure, as Replayer placement heuristics see it.
  int MapLoad(int node) const;
  int ReduceLoad(int node) const;

  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  // The simulated server an op occupies on `node`.
  sim::Server* Route(int node, const TraceOp& op);

  // Cluster-average CPU utilization and iowait over [0, horizon].
  void ExportUtilization(double bin_s, double horizon,
                         sim::BinnedSeries* util,
                         sim::BinnedSeries* iowait) const;

  uint64_t preemptions() const { return preemptions_; }
  uint64_t throttle_skips() const { return throttle_skips_; }

 private:
  struct NodeState {
    NodeState(sim::Engine* engine, const ClusterConfig& cl, int id);
    sim::Server cpu;
    sim::Server hdd;
    std::unique_ptr<sim::Server> ssd;
    sim::Server nic;
    int free_map_slots;
    int free_reduce_slots;
    // Per-job FIFO queues, keyed by job id (iteration = admission order).
    std::map<int, std::deque<PendingTask>> map_q;
    std::map<int, std::deque<PendingTask>> reduce_q;
    // Running map attempts per job on this node (preemption victims).
    std::map<int, int> running_maps;
    int pending_maps = 0;     // totals across jobs
    int pending_reduces = 0;
  };
  struct JobInfo {
    Replayer* client = nullptr;
    int tenant = 0;
  };
  struct TenantState {
    double weight = 1.0;
    int max_running = 0;   // 0 = uncapped; bounds running_maps only
    int running = 0;       // map + reduce attempts holding slots
    int running_maps = 0;  // map attempts only (the throttled quantity)
  };

  // Next job to grant a slot on `node` (-1 = none runnable now).
  int PickJob(const NodeState& node, int node_id, bool is_map);
  // Tries to evict one running map attempt on `node` so the (deficit)
  // tenant of `job` can start its queued map task. True on eviction.
  bool MaybePreempt(int node, int job);

  TenantState& Tenant(int id);

  sim::Engine* engine_;
  ClusterConfig cluster_;
  Options options_;
  std::vector<std::unique_ptr<NodeState>> nodes_;
  std::map<int, JobInfo> jobs_;
  std::map<int, TenantState> tenants_;
  uint64_t preemptions_ = 0;
  uint64_t throttle_skips_ = 0;
};

}  // namespace onepass

#endif  // ONEPASS_MR_SLOT_POOL_H_
