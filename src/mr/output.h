// OutputCollector: the Emitter implementation for reduce output.
//
// Emitted records are buffered and "written to DFS" in blocks: each flush
// records a disk write op carrying an output-progress delta, so the
// progress replay sees output appear exactly when the write lands in
// simulated time (the third term of the paper's reduce-progress metric).

#ifndef ONEPASS_MR_OUTPUT_H_
#define ONEPASS_MR_OUTPUT_H_

#include <cstdint>
#include <vector>

#include "src/mr/api.h"
#include "src/mr/cost_trace.h"
#include "src/mr/metrics.h"
#include "src/mr/types.h"

namespace onepass {

class OutputCollector : public Emitter {
 public:
  static constexpr uint64_t kDefaultFlushBytes = 256 << 10;

  OutputCollector(TraceRecorder* trace, JobMetrics* metrics,
                  std::vector<Record>* sink,  // nullable: collect outputs
                  uint64_t flush_bytes = kDefaultFlushBytes)
      : trace_(trace),
        metrics_(metrics),
        sink_(sink),
        flush_bytes_(flush_bytes) {}

  void Emit(std::string_view key, std::string_view value) override;

  // Flushes the remaining buffered output. Call at task end.
  void Flush();

  // Marks subsequent emissions as streaming/early output (before end of
  // input); used for the early-output accounting in §6.
  void set_streaming(bool streaming) { streaming_ = streaming; }

  uint64_t bytes() const { return bytes_; }
  uint64_t records() const { return records_; }

 private:
  TraceRecorder* trace_;
  JobMetrics* metrics_;
  std::vector<Record>* sink_;
  uint64_t flush_bytes_;
  uint64_t pending_bytes_ = 0;
  uint64_t bytes_ = 0;
  uint64_t records_ = 0;
  bool streaming_ = false;
};

}  // namespace onepass

#endif  // ONEPASS_MR_OUTPUT_H_
