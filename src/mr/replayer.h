// Replayer: replays one job's map (and optionally reduce) cost traces on a
// shared simulated cluster (SlotPool), under that job's FaultPlan.
//
// Fault tolerance lives entirely in this time plane: tasks are
// deterministic, so re-executing one after a crash replays the *same* cost
// trace on another node — the data-plane result is unchanged, only when and
// where the work happens moves. Each execution of a task is an attempt
// (TaskTracker); a fail-stop node crash kills the node's running attempts,
// loses the map outputs it stored, and triggers:
//   * re-execution of unfinished tasks on surviving nodes (maps only on
//     surviving replica holders of their input chunk);
//   * the lost-map-output rule: a *completed* map whose outputs some
//     unfinished reducer has not yet fetched is re-executed too;
//   * shuffle fetches that lose their source mid-transfer park until the
//     map's re-execution republishes the push.
// Transient faults (disk-read errors, shuffle-fetch failures) retry with
// exponential backoff; stragglers dilate op durations; speculative backups
// race the original attempt and the first finisher wins. A task that
// exhausts max_attempts (or loses every replica of its input) fails the
// job with a non-OK Status instead of stalling.
//
// Multi-job operation (DESIGN.md §5.7): several Replayers share one
// sim::Engine and one SlotPool. Faults are a per-job domain — this job's
// crashed node is dead *for this job only*; the pool keeps scheduling
// other jobs there. Every event the Replayer creates carries its options'
// stream tag, so cross-job simultaneous events order by (time, job
// stream, seq) and the whole multi-job replay is deterministic. A solo
// Replayer with stream 0 on a fresh engine reproduces the historical
// single-job schedule byte for byte.

#ifndef ONEPASS_MR_REPLAYER_H_
#define ONEPASS_MR_REPLAYER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/mr/config.h"
#include "src/mr/cost_trace.h"
#include "src/mr/slot_pool.h"
#include "src/mr/task_tracker.h"
#include "src/sim/event_queue.h"
#include "src/sim/fault_injector.h"
#include "src/sim/timeline.h"

namespace onepass {

struct JobResult;

// One shuffle segment a reduce task consumes: map `map_task`'s push
// `push`, of which this reducer's partition share is `bytes`.
struct DeliveryRef {
  int map_task = 0;
  uint32_t push = 0;
  uint64_t bytes = 0;
};

// One checkpoint the reduce data plane recorded (DESIGN.md §5.6): after
// consuming `watermark` deliveries the engine image measured `bytes` framed
// bytes (raw_bytes before codec/framing). `gate_op` is the trace op whose
// completion makes the instance durable in the time-plane replay.
struct CheckpointMark {
  uint32_t watermark = 0;
  uint64_t bytes = 0;
  uint64_t raw_bytes = 0;
  uint32_t gate_op = 0;
};

class Replayer {
 public:
  struct MapTaskIn {
    int node = 0;  // primary replica (initial, data-local placement)
    std::vector<int> replicas;  // all nodes holding the input chunk
    const CostTrace* trace = nullptr;
    // gate op index -> push index, for push-ready bookkeeping.
    std::map<uint32_t, uint32_t> gates;
    uint32_t num_pushes = 0;
    // Resident shuffle (DESIGN.md §5.9): per-push flags set by PrepareJob's
    // resident transform. A resident push's retention-window re-read is
    // skipped (it is served from the node's segment cache), and losing its
    // node counts as a cache invalidation. Empty under kDisk.
    std::vector<char> resident;
    std::vector<uint64_t> push_bytes;  // total bytes per push (all parts)
    // Node combine tier (DESIGN.md §5.10): a virtual combine task lists
    // the co-located map tasks whose node feeds it merges. It is not
    // queued in the initial wave (the pool drops popped non-runnable
    // entries); the last dep's MapDone schedules it. Its combined push is
    // lineage of every dep: losing a dep's node-feed contribution to a
    // crash re-runs that dep before the combine can (re-)execute.
    std::vector<int> deps;
  };
  struct ReduceTaskIn {
    int node = 0;
    const CostTrace* trace = nullptr;
    std::vector<DeliveryRef> deliveries;
    std::vector<CheckpointMark> checkpoints;
  };
  struct Totals {
    uint64_t shuffle_bytes = 0;
    uint64_t reduce_work = 0;
    uint64_t output_bytes = 0;
  };
  struct Options {
    int job_id = 0;
    int tenant = 0;
    // Event-stream tag for everything this job schedules (0 = solo /
    // legacy order; the JobManager uses job_id + 1).
    uint64_t stream = 0;
    // A map attempt may be evicted by the slot arbiter at most this many
    // times per task (preemptions are budget-exempt, so without a cap a
    // pathological share pattern could evict one task forever).
    int max_preemptions_per_task = 3;
  };

  // `config`, `plan`, and the traces referenced by `maps` / `reduces`
  // must outlive the Replayer. The pool and engine are shared with other
  // jobs; RegisterJob happens in Start().
  Replayer(sim::Engine* engine, SlotPool* pool, const JobConfig& config,
           const sim::FaultPlan& plan, std::vector<MapTaskIn> maps,
           std::vector<ReduceTaskIn> reduces, Totals totals)
      : Replayer(engine, pool, config, plan, std::move(maps),
                 std::move(reduces), totals, Options()) {}
  Replayer(sim::Engine* engine, SlotPool* pool, const JobConfig& config,
           const sim::FaultPlan& plan, std::vector<MapTaskIn> maps,
           std::vector<ReduceTaskIn> reduces, Totals totals,
           Options options);

  // Enqueues the initial data-local wave, schedules this job's crash
  // events (relative to the current simulated time), and pumps the pool.
  // `on_done` (may be null) fires exactly once, at completion or failure,
  // from inside the event that finished the job.
  void Start(std::function<void(const Status&)> on_done = nullptr);

  // Solo convenience: Start + drain the engine. Returns the job's status;
  // a drained engine with an incomplete job reports the stall as an
  // Internal error.
  Status Run();

  // Fails the job (e.g. a deadline) and releases everything it holds:
  // queued entries are purged, running attempts killed (freeing their
  // slots to other jobs), and on_done fires with `s`. No-op once the job
  // is complete or failed.
  void Abort(Status s);

  // --- results ---
  bool complete() const { return JobComplete(); }
  bool failed() const { return failed_; }
  const Status& status() const { return status_; }
  double end_time() const { return end_time_; }
  double map_finish_time() const { return last_map_finish_; }
  double push_ready_time(int m, uint32_t p) const {
    return push_ready_[static_cast<size_t>(m)][p];
  }
  uint64_t shuffle_from_disk_bytes() const {
    return shuffle_from_disk_bytes_;
  }
  // Placement capture for resident chains: the node whose attempt won each
  // task (first finisher under speculation/recovery), or -1 if the job did
  // not complete that task.
  int map_winner_node(int m) const {
    return map_winner_[static_cast<size_t>(m)];
  }
  int reduce_winner_node(int r) const {
    return reduce_winner_[static_cast<size_t>(r)];
  }

  // Folds attempt/recovery counters into `m` (full replay only; the
  // provisional replay's faults are a scheduling rehearsal, not results).
  void ExportFaultMetrics(JobMetrics* m) const;

  // Fills the progress/activity series of `result` (not utilization —
  // that is cluster state, exported by SlotPool::ExportUtilization).
  void ExportSeries(JobResult* result) const;

  // --- SlotPool-facing scheduling surface ---

  // May the pool grant this job a slot on `node`? False once the job
  // failed or `node` crashed in this job's fault domain.
  bool SchedulableOn(int node) const {
    return !failed_ && dead_[static_cast<size_t>(node)] == 0;
  }
  // The pool dequeued `p`; clear its queued/spec_queued flag.
  void QueueEntryPopped(bool is_map, const PendingTask& p);
  bool MapEntryRunnable(const PendingTask& p) const;
  bool ReduceEntryRunnable(const PendingTask& p) const;
  // The pool granted a slot on `node`; start the attempt.
  void PoolStartMap(int task, int node, bool speculative);
  void PoolStartReduce(int task, int node, bool speculative);
  // Evicts one running map attempt on `node` (latest-started first,
  // preempt-cap permitting): the attempt dies budget-exempt, its slot is
  // released (which re-pumps the node), and the task requeues through the
  // normal scheduler. Returns false when no attempt is evictable.
  bool PreemptMapOn(int node);

 private:
  enum class Activity { kMap, kShuffle, kMerge, kReduce, kNone };
  static Activity Categorize(bool is_map_task, OpTag tag);

  // One execution of a map task. Killed attempts stay in the vector with
  // alive = false; their in-flight op completions early-return.
  struct MapAttempt {
    int node = 0;
    double start = 0;
    size_t op_idx = 0;
    bool alive = false;
  };
  struct MapTaskState {
    std::vector<MapAttempt> attempts;
    bool completed = false;    // at least one attempt succeeded
    bool queued = false;       // a non-speculative PendingTask entry exists
    bool spec_queued = false;  // a speculative PendingTask entry exists
  };

  // One execution of a reduce task. Runs two concurrent streams, like
  // Hadoop's copier threads vs its merge thread: the *fetch* stream pulls
  // deliveries as soon as their producing map publishes them (network +
  // possible disk re-read), while the *consume* stream executes the
  // engine's per-delivery work strictly in order, gated on the fetch of
  // its section.
  struct ReduceAttempt {
    int node = 0;
    double start = 0;
    uint32_t fetch_section = 0;    // next delivery to fetch
    uint32_t consume_section = 0;  // next section to consume
    size_t op_idx = 0;             // current op within consume_section
    bool in_section = false;       // op_idx initialized for this section
    bool consume_blocked = false;  // waiting for a fetch to complete
    bool alive = false;
    std::vector<bool> fetched;
    std::vector<uint8_t> fetch_tries;   // failed tries per section
    std::vector<uint8_t> verify_tries;  // checksum-failed fetches per section
    int act[4] = {0, 0, 0, 0};  // outstanding activity counts, by Activity
  };
  // A checkpoint instance whose write+replication op completed: its
  // replicas live on `replicas` (slot, holder node) until a holder dies.
  // Slots keep their original index when holders drop out, so the plan's
  // per-slot corruption draws stay stable across crash schedules.
  struct DurableCkpt {
    uint32_t ordinal = 0;
    uint32_t watermark = 0;
    uint64_t bytes = 0;
    uint64_t raw_bytes = 0;
    std::vector<std::pair<int, int>> replicas;  // (slot, holder node)
  };
  struct ReduceTaskState {
    std::vector<ReduceAttempt> attempts;
    std::vector<DurableCkpt> durable;  // oldest first (ordinal order)
    bool done = false;
    bool queued = false;
    bool spec_queued = false;
  };

  // A replica read and rejected by verification on the restore ladder.
  struct TriedReplica {
    int slot = 0;
    int node = 0;
    uint64_t bytes = 0;
  };
  // Outcome of the restore ladder: node >= 0 means a verifiable replica of
  // instance `ordinal` exists and a restarted attempt resumes from
  // `watermark`; otherwise (had_durable) every replica of every instance
  // was corrupt or lost and the attempt falls back to full replay.
  struct CkptChoice {
    int ordinal = -1;
    uint32_t watermark = 0;
    uint64_t bytes = 0;
    uint64_t raw_bytes = 0;
    int node = -1;
    std::vector<TriedReplica> tried;
    bool had_durable = false;
  };
  // One op of the synthesized restore chain, waiting `delay` simulated
  // seconds (the shared RetryPolicy's backoff after a rejected replica)
  // before occupying its resource.
  struct RestoreOp {
    TraceOp op;
    double delay = 0;
  };

  double Duration(const TraceOp& op, int node) const;
  static uint64_t FetchRetryKey(int r, int m, uint32_t p);
  static uint64_t CheckpointRetryKey(int r, int ordinal, int try_i);
  double WithDiskRetries(double dur, const TraceOp& op, bool is_map,
                         int task, int attempt, size_t idx);
  // Submits `op` for attempt-completion callback `done`: a timer for
  // kStall ops (a pure wait occupies no server), a server job otherwise.
  void SubmitOp(const TraceOp& op, int node, double dur,
                sim::Engine::Callback done);

  void SetActive(Activity a, int delta);
  void ActInc(ReduceAttempt& at, Activity a);
  void ActDec(ReduceAttempt& at, Activity a);
  void FlushActivity(ReduceAttempt& at);

  void ApplyDeltasOnce(std::vector<bool>& applied, size_t idx,
                       const TraceOp& op);
  void ApplyDeltas(const TraceOp& op);
  void RecordReduceProgress();

  void Fail(Status s);
  bool JobComplete() const;
  void CheckCompletion();
  void NotifyDone(const Status& s);

  int AliveMapAttempts(int m) const;
  int AliveReduceAttempts(int r) const;
  bool AllPushesIntact(int m) const;
  // All of m's deps completed with their node-feed contributions intact
  // (trivially true for ordinary maps). A combine task may only start —
  // initially, after a crash, or speculatively — while this holds.
  bool DepsReady(int m) const;
  // Pushes intact and, for a combine contributor, its contribution too: a
  // completed task re-runs when either is lost and still needed.
  bool OutputIntact(int m) const;

  int PickMapNode(int m, int exclude) const;
  int PickReduceNode(int exclude) const;
  void ScheduleMapRun(int m);
  void ScheduleReduceRun(int r);

  void MaybeSpeculate(TaskKind kind);
  void ScheduleSpeculationTick();

  void RegisterCheckpoint(int r, uint32_t c, int writer_node);
  CkptChoice ChooseCheckpoint(int r) const;
  uint32_t RestoreWatermark(int r) const;
  void RunRestoreOps(int r, int a, const CkptChoice& choice);
  void RunRestoreOp(int r, int a,
                    std::shared_ptr<std::vector<RestoreOp>> ops, size_t i);
  void SubmitRestoreOp(int r, int a,
                       std::shared_ptr<std::vector<RestoreOp>> ops,
                       size_t i);

  void KillMapAttempt(int m, int a);
  void KillReduceAttempt(int r, int a);
  bool OutputNeeded(int m) const;
  void CrashNode(int n);
  void FireFractionCrashes();
  void FireReduceFractionCrashes();

  void StartMapAttempt(int m, int node, bool speculative);
  void RunNextMapOp(int m, int a);
  void MapDone(int m, int a);
  void PushReady(int m, uint32_t p, int src);

  void StartReduceAttempt(int r, int node, bool speculative);
  void StartFetch(int r, int a);
  void FetchOverNet(int r, int a, uint32_t s);
  void TryConsume(int r, int a);
  void ReduceDone(int r, int a);

  const JobConfig& config_;
  const sim::FaultPlan& plan_;
  std::vector<MapTaskIn> maps_;
  std::vector<ReduceTaskIn> reduces_;
  Totals totals_;
  TaskTracker tracker_;
  Options opts_;
  uint64_t stream_ = 0;  // == opts_.stream

  sim::Engine* engine_;
  SlotPool* pool_;
  double start_time_ = 0;
  std::function<void(const Status&)> on_done_;
  bool registered_ = false;

  std::vector<char> dead_;  // per-job fault domain
  std::vector<MapTaskState> map_states_;
  std::vector<ReduceTaskState> reduce_states_;
  std::vector<int> preempt_count_;  // per map task
  std::vector<std::vector<double>> push_ready_;
  std::vector<std::vector<int>> push_src_;   // node holding each push
  // Map-output corruption generation consumed so far, per push: the plan's
  // CorruptionChain says how many generations of a push materialize
  // corrupt; each detected one forces a map re-execution that advances
  // this counter.
  std::vector<std::vector<int>> push_gen_;
  std::vector<std::vector<uint32_t>> gate_of_;  // push -> gate op index
  // Node combine tier: node holding task m's node-feed contribution (-1 =
  // not produced or lost with its node), and the reverse dep index —
  // which combine tasks consume m's contribution.
  std::vector<int> contrib_src_;
  std::vector<std::vector<int>> dependents_;
  // Waiting fetch streams, keyed by (map task, push): (reduce, attempt).
  std::map<std::pair<int, uint32_t>, std::vector<std::pair<int, int>>>
      push_waiters_;
  std::vector<std::vector<bool>> map_delta_applied_;
  std::vector<std::vector<bool>> reduce_delta_applied_;
  // Per reduce task: trace op index of a checkpoint write's last op ->
  // checkpoint ordinal (mirrors maps_[m].gates for pushes).
  std::vector<std::map<uint32_t, uint32_t>> ckpt_gates_;
  std::vector<sim::CrashEvent> fraction_crashes_;
  std::vector<bool> fraction_fired_;

  size_t maps_completed_ = 0;
  size_t reduces_done_ = 0;
  double last_map_finish_ = 0;
  double completion_time_ = -1;
  double end_time_ = 0;
  bool failed_ = false;
  bool notified_ = false;
  Status status_ = Status::OK();

  uint64_t shuffle_from_disk_bytes_ = 0;
  uint64_t node_crashes_ = 0;
  uint64_t lost_map_outputs_ = 0;
  uint64_t shuffle_fetch_retries_ = 0;
  uint64_t disk_read_retries_ = 0;
  uint64_t corruptions_detected_ = 0;
  uint64_t corruptions_recovered_ = 0;
  uint64_t corruption_recovery_bytes_ = 0;
  uint64_t checkpoints_restored_ = 0;
  uint64_t checkpoint_restore_bytes_ = 0;
  uint64_t checkpoint_corrupt_replicas_ = 0;
  uint64_t checkpoint_full_replays_ = 0;
  uint64_t checkpoint_segments_skipped_ = 0;
  uint64_t checkpoint_skipped_bytes_ = 0;
  uint64_t shuffle_refetched_bytes_ = 0;
  uint64_t resident_hit_bytes_ = 0;
  uint64_t resident_invalidated_segments_ = 0;
  uint64_t resident_invalidated_bytes_ = 0;

  std::vector<int> map_winner_;
  std::vector<int> reduce_winner_;

  uint64_t cum_shuffle_ = 0, cum_work_ = 0, cum_output_ = 0;
  sim::StepSeries map_progress_, reduce_progress_;
  sim::StepSeries shuffle_series_, work_series_, output_series_;
  sim::StepSeries active_[4];
  int active_count_[4] = {0, 0, 0, 0};
};

}  // namespace onepass

#endif  // ONEPASS_MR_REPLAYER_H_
