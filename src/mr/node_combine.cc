#include "src/mr/node_combine.h"

#include <algorithm>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/logging.h"
#include "src/engine/sorted_merge.h"
#include "src/sketch/frequent.h"
#include "src/util/flat_table.h"
#include "src/util/kv_buffer.h"

namespace onepass {

namespace {

uint32_t WriteRequests(uint64_t bytes) {
  return std::max<uint32_t>(1, static_cast<uint32_t>(bytes >> 20));
}

}  // namespace

NodeCombiner::NodeCombiner(const JobConfig& config,
                           const UniversalHash& partitioner,
                           int total_partitions, IncrementalReducer* inc)
    : config_(config),
      partitioner_(partitioner),
      total_partitions_(total_partitions),
      inc_(inc) {
  CHECK(inc != nullptr) << "node combine needs a combine function";
}

NodeCombineOutput NodeCombiner::Run(
    const std::vector<const MapTaskOutput*>& feeds, bool sorted) const {
  NodeCombineOutput out;
  TraceRecorder trace(&out.trace);
  const CostModel& costs = config_.costs;
  trace.Cpu(costs.task_start_s, OpTag::kStartup);

  // Per-shard memory budget: the node's budget split evenly over its
  // partition shards (each shard is an independent table).
  const uint64_t shard_budget =
      config_.node_combine_budget_bytes == 0
          ? 0
          : std::max<uint64_t>(
                1, config_.node_combine_budget_bytes /
                       static_cast<uint64_t>(std::max(1, total_partitions_)));

  std::vector<KvBuffer> combined(total_partitions_);
  uint64_t out_bytes = 0, out_records = 0, in_records = 0, combines = 0;
  std::string scratch;

  for (int p = 0; p < total_partitions_; ++p) {
    KvBuffer& dst = combined[p];

    if (sorted) {
      // Sorted feeds (kSortCombine): stream-merge the key-ordered buffers
      // in task-id order and combine key groups. Bounded by one merge
      // heap, so the budget/sketch machinery never engages; output stays
      // key-ordered for the sort-merge reduce engine.
      std::vector<const KvBuffer*> inputs;
      for (const MapTaskOutput* feed : feeds) {
        if (p < static_cast<int>(feed->node_feed.size()) &&
            !feed->node_feed[p].empty()) {
          inputs.push_back(&feed->node_feed[p]);
        }
      }
      if (inputs.empty()) continue;
      SortedKvMerger merger(std::move(inputs));
      std::string_view key;
      std::vector<std::string_view> values;
      while (merger.NextGroup(&key, &values)) {
        if (values.size() == 1) {
          dst.Append(key, values[0]);
        } else {
          std::string state(values[0]);
          for (size_t i = 1; i < values.size(); ++i) {
            inc_->Combine(key, &state, values[i]);
            ++combines;
          }
          dst.Append(key, state);
        }
      }
      in_records += merger.records_merged();
      out_records += dst.count();
      out_bytes += dst.bytes();
      continue;
    }

    // Hash feeds: a FlatTable keyed by the partitioner digest combines
    // duplicate states; under budget pressure the shard degrades to the
    // FREQUENT sketch (header comment).
    FlatTable table;
    std::unique_ptr<FrequentSketch> sketch;
    std::vector<std::string> slot_states;
    for (const MapTaskOutput* feed : feeds) {
      if (p >= static_cast<int>(feed->node_feed.size())) continue;
      KvBufferReader reader(feed->node_feed[p]);
      std::string_view key, state;
      while (reader.Next(&key, &state)) {
        ++in_records;
        const uint64_t digest = partitioner_(key);
        if (sketch == nullptr) {
          const uint32_t found = table.Find(key, digest);
          if (found != FlatTable::kNoEntry) {
            const std::string_view cur = table.value_at(found);
            scratch.assign(cur.data(), cur.size());
            inc_->Combine(key, &scratch, state);
            table.set_value(found, scratch);
            ++combines;
          } else {
            bool inserted = false;
            const uint32_t idx = table.FindOrInsert(key, digest, &inserted);
            table.set_value(idx, state);
          }
          // Budget check AFTER the update so the measured footprint
          // (Arena::ApproxMemoryUsage through the table) reflects every
          // byte this shard actually holds.
          if (shard_budget > 0 && table.ApproxMemoryUsage() > shard_budget) {
            // Degrade: flush the table's entries as partial aggregates
            // (reducers re-combine them) and monitor only the sketch's
            // slots from here on.
            table.ForEach([&](uint32_t idx) {
              dst.Append(table.key_at(idx), table.value_at(idx));
            });
            table.FlushStatsTo(&out.metrics);
            table.Clear();
            const size_t slots = static_cast<size_t>(
                std::max<uint64_t>(16, shard_budget / 256));
            sketch = std::make_unique<FrequentSketch>(slots);
            slot_states.assign(slots, std::string());
            ++out.metrics.node_combine_sketch_shards;
          }
          continue;
        }
        // Sketch mode: the classic FREQUENT policy with the reduce state
        // as the slot payload. Evicted and rejected records pass through
        // uncombined — still exact, just not collapsed.
        FrequentSketch::OfferResult r = sketch->Offer(key, digest);
        switch (r.action) {
          case FrequentSketch::Action::kUpdated:
            inc_->Combine(key, &slot_states[r.slot], state);
            ++combines;
            break;
          case FrequentSketch::Action::kInserted:
            slot_states[r.slot].assign(state.data(), state.size());
            break;
          case FrequentSketch::Action::kEvicted:
            dst.Append(r.evicted_key, slot_states[r.slot]);
            ++out.metrics.node_combine_passthrough_records;
            slot_states[r.slot].assign(state.data(), state.size());
            break;
          case FrequentSketch::Action::kRejected:
            dst.Append(key, state);
            ++out.metrics.node_combine_passthrough_records;
            break;
        }
      }
    }
    if (sketch != nullptr) {
      for (int s = 0; s < static_cast<int>(sketch->capacity()); ++s) {
        if (sketch->SlotOccupied(s)) dst.Append(sketch->Key(s), slot_states[s]);
      }
      sketch->FlushIndexStatsTo(&out.metrics);
    } else {
      table.ForEach([&](uint32_t idx) {
        dst.Append(table.key_at(idx), table.value_at(idx));
      });
      table.FlushStatsTo(&out.metrics);
    }
    out_records += dst.count();
    out_bytes += dst.bytes();
  }

  if (sorted) {
    trace.Cpu(costs.MergeCost(in_records) +
                  costs.combine_record_s * static_cast<double>(combines),
              OpTag::kNodeCombine);
  } else {
    trace.Cpu((costs.hash_record_s + costs.combine_record_s) *
                  static_cast<double>(in_records),
              OpTag::kNodeCombine);
  }
  PushSegment push;
  push.partitions = std::move(combined);
  push.bytes = out_bytes;
  EncodePushSegment(config_, &push, sorted, OpTag::kNodeCombine, &trace,
                    &out.metrics);
  trace.DiskWrite(push.bytes, OpTag::kNodeCombine, WriteRequests(push.bytes));
  out.metrics.map_output_bytes += push.bytes;
  out.metrics.map_output_records += out_records;
  push.gate_op = static_cast<uint32_t>(out.trace.ops.size() - 1);
  StampPushSegmentCrcs(config_, &push);
  out.push = std::move(push);

  out.metrics.node_combine_output_records += out_records;
  out.metrics.node_combine_output_bytes += out_bytes;
  out.metrics.node_combine_tasks += 1;
  return out;
}

}  // namespace onepass
