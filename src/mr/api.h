// The user-facing MapReduce programming API.
//
// Two reduce-side contracts are supported, mirroring §4 of the paper:
//
//  * Reducer — the classic values-list API ("collect all values of a key,
//    feed the list to reduce"). Served by the sort-merge baseline and by
//    MR-hash (§4.1).
//
//  * IncrementalReducer — the paper's init()/cb()/fn() decomposition
//    (§4.2): initialize turns one value into a state, combine merges two
//    states, finalize produces output from a state. Served by INC-hash and
//    DINC-hash, and reused as the map-side combiner. Optional hooks let a
//    workload emit early results (frequent-user identification,
//    sessionization stream-out) and let DINC-hash discard finished states
//    instead of spilling them (§6.2's sessionization eviction rule).

#ifndef ONEPASS_MR_API_H_
#define ONEPASS_MR_API_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

namespace onepass {

// A read-only view over a run of records: parallel key/value view arrays
// decoded from one stretch of a KvBuffer (KvBatchReader) or staged by a
// batch-aware mapper. The batch data plane (DESIGN.md §5.8) hands these
// through MapBatch/EmitBatch so digests can be computed for the whole run
// and table probes prefetch-pipelined. Views are only guaranteed valid for
// the duration of the call that receives the batch; batch size is a pure
// performance knob — record order and contents are exactly the scalar
// per-record sequence at every size.
struct RecordBatch {
  const std::string_view* keys = nullptr;
  const std::string_view* values = nullptr;
  size_t size = 0;
};

// Receives output records. Implementations count bytes and record I/O.
class Emitter {
 public:
  virtual ~Emitter() = default;
  virtual void Emit(std::string_view key, std::string_view value) = 0;

  // Batch emit: semantically identical to Emit(keys[i], values[i]) for
  // i = 0..size-1 (the default does exactly that). Batch-aware emitters
  // override it to hash the whole run at once.
  virtual void EmitBatch(const RecordBatch& batch) {
    for (size_t i = 0; i < batch.size; ++i) {
      Emit(batch.keys[i], batch.values[i]);
    }
  }
};

// Transforms one input record into zero or more (key, value) pairs.
class Mapper {
 public:
  virtual ~Mapper() = default;
  virtual void Map(std::string_view key, std::string_view value,
                   Emitter* out) = 0;

  // Batch map: semantically identical to Map(keys[i], values[i], out) in
  // order (the default loop). Mappers with per-record independence can
  // override to stage outputs and hand them to Emitter::EmitBatch in one
  // call. Overrides must preserve the scalar emit sequence exactly — the
  // batch-equivalence property test compares full job fingerprints across
  // batch sizes.
  virtual void MapBatch(const RecordBatch& batch, Emitter* out) {
    for (size_t i = 0; i < batch.size; ++i) {
      Map(batch.keys[i], batch.values[i], out);
    }
  }
};

// Streaming iterator over the values of one key.
class ValueIterator {
 public:
  virtual ~ValueIterator() = default;
  // Advances to the next value; false at end. The view is valid until the
  // next call.
  virtual bool Next(std::string_view* value) = 0;
};

// Classic reduce: applied to each key's full list of values.
class Reducer {
 public:
  virtual ~Reducer() = default;
  virtual void Reduce(std::string_view key, ValueIterator* values,
                      Emitter* out) = 0;
};

// Incremental reduce: init/cb/fn per §4.2, plus early-output and eviction
// hooks. States are opaque byte strings owned by the engine.
class IncrementalReducer {
 public:
  virtual ~IncrementalReducer() = default;

  // init(): state for a single value. Applied map-side right after the map
  // function, turning key-value pairs into key-state pairs.
  virtual std::string Init(std::string_view key, std::string_view value) = 0;

  // cb(): folds `other` (another state for the same key) into `state`.
  virtual void Combine(std::string_view key, std::string* state,
                       std::string_view other) = 0;

  // fn(): produces the final answer(s) for the key from its state.
  virtual void Finalize(std::string_view key, std::string_view state,
                        Emitter* out) = 0;

  // Early-output hook, called after each reduce-side Combine on the
  // in-memory state. May emit records and/or shrink the state (e.g. stream
  // out closed sessions, emit a user the moment its count reaches the
  // query threshold). Default: no early output.
  virtual void OnUpdate(std::string_view key, std::string* state,
                        Emitter* out) {
    (void)key;
    (void)state;
    (void)out;
  }

  // DINC-hash eviction hook: when the engine wants to drop this state from
  // memory, a workload may emit its output directly and discard it instead
  // of spilling (paper §6.2: a sessionization state whose sessions have all
  // expired is output, not spilled). Return true if the state was fully
  // handled and must NOT be written to disk.
  virtual bool TryDiscard(std::string_view key, std::string* state,
                          Emitter* out) {
    (void)key;
    (void)state;
    (void)out;
    return false;
  }

  // Whether DINC-hash must flush still-resident states into the disk
  // buckets at end of input so they merge with earlier spills of the same
  // key (required for algebraic aggregates like counts). Workloads whose
  // Finalize is locally correct (sessionization) return false and are
  // finalized straight from memory.
  virtual bool FlushResidentStatesAtEnd() const { return true; }

  // Bytes the engine should budget per resident state (the paper's
  // experiments vary this: 0.5 KB / 1 KB / 2 KB sessionization buffers).
  virtual uint64_t StateBytesHint() const { return 64; }
};

// Factories: each map/reduce task gets a fresh instance.
using MapperFactory = std::function<std::unique_ptr<Mapper>()>;
using ReducerFactory = std::function<std::unique_ptr<Reducer>()>;
using IncrementalReducerFactory =
    std::function<std::unique_ptr<IncrementalReducer>()>;

}  // namespace onepass

#endif  // ONEPASS_MR_API_H_
