// JobBuilder: a fluent front door to the platform.
//
//   auto result = JobBuilder("clicks per user")
//                     .WithMapper([] { return std::make_unique<M>(); })
//                     .WithIncrementalReducer([] { ... })
//                     .Engine(EngineKind::kIncHash)
//                     .MapSideCombine(true)
//                     .ReduceMemoryBytes(512 << 10)
//                     .Run(input);
//
// Run() validates the configuration up front and returns descriptive
// errors instead of failing deep inside the job.

#ifndef ONEPASS_MR_JOB_BUILDER_H_
#define ONEPASS_MR_JOB_BUILDER_H_

#include <string>
#include <utility>

#include "src/mr/cluster.h"
#include "src/mr/job_chain.h"

namespace onepass {

class JobBuilder {
 public:
  explicit JobBuilder(std::string name) { spec_.name = std::move(name); }

  // --- functions ---
  JobBuilder& WithMapper(MapperFactory f) {
    spec_.mapper = std::move(f);
    return *this;
  }
  JobBuilder& WithReducer(ReducerFactory f) {
    spec_.reducer = std::move(f);
    return *this;
  }
  JobBuilder& WithIncrementalReducer(IncrementalReducerFactory f) {
    spec_.inc = std::move(f);
    return *this;
  }

  // --- engine & cluster ---
  JobBuilder& Engine(EngineKind kind) {
    config_.engine = kind;
    return *this;
  }
  JobBuilder& Cluster(int nodes, int cores_per_node, int map_slots,
                      int reduce_slots) {
    config_.cluster.nodes = nodes;
    config_.cluster.cores_per_node = cores_per_node;
    config_.cluster.map_slots = map_slots;
    config_.cluster.reduce_slots = reduce_slots;
    return *this;
  }
  JobBuilder& SeparateIntermediateDevice(bool on = true) {
    config_.cluster.separate_intermediate_device = on;
    return *this;
  }

  // --- Hadoop parameters (Table 2) ---
  JobBuilder& ChunkBytes(uint64_t c) {
    config_.chunk_bytes = c;
    return *this;
  }
  JobBuilder& MergeFactor(int f) {
    config_.merge_factor = f;
    return *this;
  }
  JobBuilder& ReducersPerNode(int r) {
    config_.reducers_per_node = r;
    return *this;
  }
  JobBuilder& MapBufferBytes(uint64_t b) {
    config_.map_buffer_bytes = b;
    return *this;
  }
  JobBuilder& ReduceMemoryBytes(uint64_t b) {
    config_.reduce_memory_bytes = b;
    return *this;
  }

  // --- engine knobs ---
  JobBuilder& MapSideCombine(bool on = true) {
    config_.map_side_combine = on;
    return *this;
  }
  JobBuilder& ExpectedKeysPerReducer(uint64_t k) {
    config_.expected_keys_per_reducer = k;
    return *this;
  }
  JobBuilder& ExpectedBytesPerReducer(uint64_t b) {
    config_.expected_bytes_per_reducer = b;
    return *this;
  }
  JobBuilder& CoverageThreshold(double phi) {
    config_.dinc_coverage_threshold = phi;
    return *this;
  }
  JobBuilder& Pipelining(uint64_t push_bytes) {
    config_.pipelining = true;
    config_.pipeline_push_bytes = push_bytes;
    return *this;
  }
  JobBuilder& Snapshots(int n) {
    config_.snapshots = n;
    return *this;
  }

  // --- resident shuffle & iteration (DESIGN.md §5.9) ---
  JobBuilder& ShuffleMode(onepass::ShuffleMode mode) {
    config_.shuffle_mode = mode;
    return *this;
  }
  JobBuilder& ResidentCacheBytes(uint64_t bytes) {
    config_.resident_cache_bytes = bytes;
    return *this;
  }
  // Run the job `n` times as a chain (RunChain): under kResident each
  // iteration inherits the previous one's placement, cached input, and
  // (INC/DINC) reduce state.
  JobBuilder& Iterate(int n) {
    config_.iterations = n;
    return *this;
  }

  // --- misc ---
  JobBuilder& Costs(const CostModel& costs) {
    config_.costs = costs;
    return *this;
  }
  JobBuilder& Seed(uint64_t seed) {
    config_.seed = seed;
    return *this;
  }
  JobBuilder& CollectOutputs(bool on = true) {
    config_.collect_outputs = on;
    return *this;
  }

  const JobSpec& spec() const { return spec_; }
  const JobConfig& config() const { return config_; }

  // Checks the builder for inconsistencies (missing factories, API /
  // engine mismatches, nonsensical sizes) without running anything.
  Status Validate() const;

  // Validates, then runs on the simulated cluster.
  Result<JobResult> Run(const ChunkStore& input) const;

  // Validates, then runs the job config_.iterations times as a chain
  // over the same input (DESIGN.md §5.9). Under ShuffleMode::kResident
  // each iteration reuses the previous one's placement, cached input,
  // and (INC/DINC engines) reduce state.
  Result<ChainResult> RunChain(const ChunkStore& input) const;

 private:
  JobSpec spec_;
  JobConfig config_;
};

}  // namespace onepass

#endif  // ONEPASS_MR_JOB_BUILDER_H_
