// Cost traces: the bridge between the real data plane and the simulated
// time plane.
//
// While a task executes (for real), it appends operations — CPU work, disk
// reads/writes, network transfers — to its CostTrace. The cluster replayer
// (src/mr/cluster.cc) later schedules these operations on the simulated
// node resources to obtain timing, contention, and utilization.
//
// Each op optionally carries *progress deltas* (shuffle bytes, reduce
// function work units, output bytes) that are applied when the op completes
// in simulated time; these drive the paper's incremental progress metric
// (Definition 1).
//
// Reduce traces are divided into sections: section i holds the work
// triggered by shuffle delivery i and cannot start before the producing map
// task has finished in simulated time; the last section is the post-input
// Finish phase.

#ifndef ONEPASS_MR_COST_TRACE_H_
#define ONEPASS_MR_COST_TRACE_H_

#include <cstdint>
#include <vector>

namespace onepass {

// Which resource an op occupies.
enum class OpResource : uint8_t {
  kCpu,
  kDisk,      // node's intermediate-data disk (HDD by default)
  kNet,       // node's NIC
  kStall,     // occupies nothing: a pure wait (retry backoff) of cpu_s
};

// Fine-grained operation category, used for the Fig. 2(a)-style task
// timeline and for CPU attribution (map vs reduce).
enum class OpTag : uint8_t {
  kStartup,        // task start cost
  kMapInput,       // reading the input chunk
  kMapFn,          // applying the map function
  kSort,           // map-side sort
  kMapSpill,       // map-side external-sort spill I/O
  kMapMerge,       // map-side multi-pass merge (CPU + I/O)
  kMapOutput,      // writing the final map output file
  kShuffle,        // network fetch of map output
  kReduceSpill,    // reduce-side spill I/O (runs or hash buckets)
  kReduceMerge,    // reduce-side multi-pass merge (blocking, not user work)
  kCombine,        // combine()/state-update work (user-visible progress)
  kReduceFn,       // reduce()/finalize() work (user-visible progress)
  kOutput,         // writing reduce output
  kCheckpoint,     // reduce-state checkpoint write/replicate/restore
  kNodeCombine,    // node-scope combiner: merge co-located map feeds
};

struct TraceOp {
  OpResource resource = OpResource::kCpu;
  OpTag tag = OpTag::kMapFn;
  double cpu_s = 0;       // service seconds for kCpu ops
  uint64_t bytes = 0;     // payload for kDisk/kNet ops
  uint32_t requests = 1;  // disk seeks / sequential I/O requests
  bool is_read = false;   // for kDisk: read vs write

  // Progress deltas applied at op completion (simulated time).
  uint64_t d_shuffle_bytes = 0;
  uint64_t d_reduce_work = 0;  // combine + finalize invocations
  uint64_t d_output_bytes = 0;
};

struct CostTrace {
  std::vector<TraceOp> ops;
  // ops[section_starts[i] .. section_starts[i+1]) belong to section i.
  std::vector<uint32_t> section_starts;

  uint32_t num_sections() const {
    return static_cast<uint32_t>(section_starts.size());
  }
};

// Append-only builder used by the data plane.
class TraceRecorder {
 public:
  // Consecutive same-tag CPU costs are merged into ops of at most roughly
  // this many simulated seconds each.
  static constexpr double kCpuOpGranularityS = 0.5;

  explicit TraceRecorder(CostTrace* trace) : trace_(trace) {}

  // Marks the start of a new section at the current op position.
  void BeginSection() {
    trace_->section_starts.push_back(
        static_cast<uint32_t>(trace_->ops.size()));
  }

  void Cpu(double seconds, OpTag tag, uint64_t d_reduce_work = 0) {
    if (seconds <= 0 && d_reduce_work == 0) return;
    // Coalesce with the previous op when it is a CPU op of the same tag in
    // the same section and still below the granularity cap. This keeps
    // traces compact (one op per ~kCpuOpGranularityS of work) without
    // changing total cost or the progress curve's resolution.
    if (!trace_->ops.empty()) {
      TraceOp& back = trace_->ops.back();
      const bool section_boundary =
          !trace_->section_starts.empty() &&
          trace_->section_starts.back() == trace_->ops.size();
      if (!section_boundary && back.resource == OpResource::kCpu &&
          back.tag == tag && back.cpu_s < kCpuOpGranularityS) {
        back.cpu_s += seconds;
        back.d_reduce_work += d_reduce_work;
        return;
      }
    }
    TraceOp op;
    op.resource = OpResource::kCpu;
    op.tag = tag;
    op.cpu_s = seconds;
    op.d_reduce_work = d_reduce_work;
    trace_->ops.push_back(op);
  }

  // A pure wait: the task holds its slot for `seconds` without occupying
  // any server (retry backoff between corruption rebuilds). No-op at 0 so
  // zero-backoff policies leave traces untouched.
  void Stall(double seconds, OpTag tag) {
    if (seconds <= 0) return;
    TraceOp op;
    op.resource = OpResource::kStall;
    op.tag = tag;
    op.cpu_s = seconds;
    trace_->ops.push_back(op);
  }

  void DiskWrite(uint64_t bytes, OpTag tag, uint32_t requests = 1,
                 uint64_t d_output_bytes = 0) {
    TraceOp op;
    op.resource = OpResource::kDisk;
    op.tag = tag;
    op.bytes = bytes;
    op.requests = requests;
    op.is_read = false;
    op.d_output_bytes = d_output_bytes;
    trace_->ops.push_back(op);
  }

  void DiskRead(uint64_t bytes, OpTag tag, uint32_t requests = 1) {
    TraceOp op;
    op.resource = OpResource::kDisk;
    op.tag = tag;
    op.bytes = bytes;
    op.requests = requests;
    op.is_read = true;
    trace_->ops.push_back(op);
  }

  void Net(uint64_t bytes, OpTag tag, uint64_t d_shuffle_bytes = 0) {
    TraceOp op;
    op.resource = OpResource::kNet;
    op.tag = tag;
    op.bytes = bytes;
    op.d_shuffle_bytes = d_shuffle_bytes;
    trace_->ops.push_back(op);
  }

  CostTrace* trace() { return trace_; }

 private:
  CostTrace* trace_;
};

// True if ops with this tag count as "map phase" CPU for Table 3's
// per-node CPU attribution.
inline bool IsMapTag(OpTag tag) {
  switch (tag) {
    case OpTag::kStartup:
    case OpTag::kMapInput:
    case OpTag::kMapFn:
    case OpTag::kSort:
    case OpTag::kMapSpill:
    case OpTag::kMapMerge:
    case OpTag::kMapOutput:
    case OpTag::kNodeCombine:
      return true;
    default:
      return false;
  }
}

}  // namespace onepass

#endif  // ONEPASS_MR_COST_TRACE_H_
