#include "src/mr/metrics.h"

#include <cstdio>

namespace onepass {

void JobMetrics::Merge(const JobMetrics& o) {
  map_input_bytes += o.map_input_bytes;
  map_spill_write_bytes += o.map_spill_write_bytes;
  map_spill_read_bytes += o.map_spill_read_bytes;
  map_output_bytes += o.map_output_bytes;
  shuffle_bytes += o.shuffle_bytes;
  reduce_spill_write_bytes += o.reduce_spill_write_bytes;
  reduce_spill_read_bytes += o.reduce_spill_read_bytes;
  reduce_output_bytes += o.reduce_output_bytes;
  map_input_records += o.map_input_records;
  map_output_records += o.map_output_records;
  reduce_input_records += o.reduce_input_records;
  combine_invocations += o.combine_invocations;
  reduce_groups += o.reduce_groups;
  output_records += o.output_records;
  early_output_records += o.early_output_records;
  snapshot_bytes += o.snapshot_bytes;
  snapshot_count += o.snapshot_count;
  map_task_attempts += o.map_task_attempts;
  reduce_task_attempts += o.reduce_task_attempts;
  killed_attempts += o.killed_attempts;
  preempted_attempts += o.preempted_attempts;
  speculative_attempts += o.speculative_attempts;
  speculative_wins += o.speculative_wins;
  lost_map_outputs += o.lost_map_outputs;
  node_crashes += o.node_crashes;
  shuffle_fetch_retries += o.shuffle_fetch_retries;
  disk_read_retries += o.disk_read_retries;
  recovery_bytes += o.recovery_bytes;
  wasted_cpu_s += o.wasted_cpu_s;
  verify_bytes += o.verify_bytes;
  checksum_overhead_bytes += o.checksum_overhead_bytes;
  corruptions_detected += o.corruptions_detected;
  torn_writes_detected += o.torn_writes_detected;
  corruptions_recovered += o.corruptions_recovered;
  quarantined_replicas += o.quarantined_replicas;
  rereplicated_bytes += o.rereplicated_bytes;
  corruption_recovery_bytes += o.corruption_recovery_bytes;
  checkpoints_written += o.checkpoints_written;
  checkpoint_bytes += o.checkpoint_bytes;
  checkpoint_replica_bytes += o.checkpoint_replica_bytes;
  checkpoints_restored += o.checkpoints_restored;
  checkpoint_restore_bytes += o.checkpoint_restore_bytes;
  checkpoint_corrupt_replicas += o.checkpoint_corrupt_replicas;
  checkpoint_full_replays += o.checkpoint_full_replays;
  checkpoint_segments_skipped += o.checkpoint_segments_skipped;
  checkpoint_skipped_bytes += o.checkpoint_skipped_bytes;
  shuffle_refetched_bytes += o.shuffle_refetched_bytes;
  resident_publish_segments += o.resident_publish_segments;
  resident_publish_bytes += o.resident_publish_bytes;
  resident_spilled_segments += o.resident_spilled_segments;
  resident_spilled_bytes += o.resident_spilled_bytes;
  resident_hit_bytes += o.resident_hit_bytes;
  resident_invalidated_segments += o.resident_invalidated_segments;
  resident_invalidated_bytes += o.resident_invalidated_bytes;
  resident_state_restores += o.resident_state_restores;
  resident_state_restored_bytes += o.resident_state_restored_bytes;
  resident_state_saved_bytes += o.resident_state_saved_bytes;
  resident_cached_input_bytes += o.resident_cached_input_bytes;
  node_combine_input_records += o.node_combine_input_records;
  node_combine_input_bytes += o.node_combine_input_bytes;
  node_combine_output_records += o.node_combine_output_records;
  node_combine_output_bytes += o.node_combine_output_bytes;
  node_combine_tasks += o.node_combine_tasks;
  node_combine_passthrough_records += o.node_combine_passthrough_records;
  node_combine_sketch_shards += o.node_combine_sketch_shards;
  codec_map_spill_raw_bytes += o.codec_map_spill_raw_bytes;
  codec_map_spill_encoded_bytes += o.codec_map_spill_encoded_bytes;
  codec_shuffle_raw_bytes += o.codec_shuffle_raw_bytes;
  codec_shuffle_encoded_bytes += o.codec_shuffle_encoded_bytes;
  codec_reduce_spill_raw_bytes += o.codec_reduce_spill_raw_bytes;
  codec_reduce_spill_encoded_bytes += o.codec_reduce_spill_encoded_bytes;
  codec_bucket_raw_bytes += o.codec_bucket_raw_bytes;
  codec_bucket_encoded_bytes += o.codec_bucket_encoded_bytes;
  compress_ns += o.compress_ns;
  decompress_ns += o.decompress_ns;
  record_batches += o.record_batches;
  batched_records += o.batched_records;
  hash_table_probes += o.hash_table_probes;
  hash_table_rehashes += o.hash_table_rehashes;
  if (o.hash_table_max_probe > hash_table_max_probe) {
    hash_table_max_probe = o.hash_table_max_probe;
  }
  hash_arena_bytes += o.hash_arena_bytes;
  map_cpu_s += o.map_cpu_s;
  reduce_cpu_s += o.reduce_cpu_s;
}

std::string JobMetrics::Serialize() const {
  std::string out;
  out.reserve(2048);
  char buf[96];
  auto put_u64 = [&](const char* name, uint64_t v) {
    std::snprintf(buf, sizeof(buf), "%s=%llu\n", name,
                  static_cast<unsigned long long>(v));
    out += buf;
  };
  auto put_f64 = [&](const char* name, double v) {
    std::snprintf(buf, sizeof(buf), "%s=%.9g\n", name, v);
    out += buf;
  };
  put_u64("map_input_bytes", map_input_bytes);
  put_u64("map_spill_write_bytes", map_spill_write_bytes);
  put_u64("map_spill_read_bytes", map_spill_read_bytes);
  put_u64("map_output_bytes", map_output_bytes);
  put_u64("shuffle_bytes", shuffle_bytes);
  put_u64("reduce_spill_write_bytes", reduce_spill_write_bytes);
  put_u64("reduce_spill_read_bytes", reduce_spill_read_bytes);
  put_u64("reduce_output_bytes", reduce_output_bytes);
  put_u64("map_input_records", map_input_records);
  put_u64("map_output_records", map_output_records);
  put_u64("reduce_input_records", reduce_input_records);
  put_u64("combine_invocations", combine_invocations);
  put_u64("reduce_groups", reduce_groups);
  put_u64("output_records", output_records);
  put_u64("early_output_records", early_output_records);
  put_u64("snapshot_bytes", snapshot_bytes);
  put_u64("snapshot_count", snapshot_count);
  put_u64("map_task_attempts", map_task_attempts);
  put_u64("reduce_task_attempts", reduce_task_attempts);
  put_u64("killed_attempts", killed_attempts);
  put_u64("preempted_attempts", preempted_attempts);
  put_u64("speculative_attempts", speculative_attempts);
  put_u64("speculative_wins", speculative_wins);
  put_u64("lost_map_outputs", lost_map_outputs);
  put_u64("node_crashes", node_crashes);
  put_u64("shuffle_fetch_retries", shuffle_fetch_retries);
  put_u64("disk_read_retries", disk_read_retries);
  put_u64("recovery_bytes", recovery_bytes);
  put_f64("wasted_cpu_s", wasted_cpu_s);
  put_u64("verify_bytes", verify_bytes);
  put_u64("checksum_overhead_bytes", checksum_overhead_bytes);
  put_u64("corruptions_detected", corruptions_detected);
  put_u64("torn_writes_detected", torn_writes_detected);
  put_u64("corruptions_recovered", corruptions_recovered);
  put_u64("quarantined_replicas", quarantined_replicas);
  put_u64("rereplicated_bytes", rereplicated_bytes);
  put_u64("corruption_recovery_bytes", corruption_recovery_bytes);
  put_u64("checkpoints_written", checkpoints_written);
  put_u64("checkpoint_bytes", checkpoint_bytes);
  put_u64("checkpoint_replica_bytes", checkpoint_replica_bytes);
  put_u64("checkpoints_restored", checkpoints_restored);
  put_u64("checkpoint_restore_bytes", checkpoint_restore_bytes);
  put_u64("checkpoint_corrupt_replicas", checkpoint_corrupt_replicas);
  put_u64("checkpoint_full_replays", checkpoint_full_replays);
  put_u64("checkpoint_segments_skipped", checkpoint_segments_skipped);
  put_u64("checkpoint_skipped_bytes", checkpoint_skipped_bytes);
  put_u64("shuffle_refetched_bytes", shuffle_refetched_bytes);
  put_u64("resident_publish_segments", resident_publish_segments);
  put_u64("resident_publish_bytes", resident_publish_bytes);
  put_u64("resident_spilled_segments", resident_spilled_segments);
  put_u64("resident_spilled_bytes", resident_spilled_bytes);
  put_u64("resident_hit_bytes", resident_hit_bytes);
  put_u64("resident_invalidated_segments", resident_invalidated_segments);
  put_u64("resident_invalidated_bytes", resident_invalidated_bytes);
  put_u64("resident_state_restores", resident_state_restores);
  put_u64("resident_state_restored_bytes", resident_state_restored_bytes);
  put_u64("resident_state_saved_bytes", resident_state_saved_bytes);
  put_u64("resident_cached_input_bytes", resident_cached_input_bytes);
  put_u64("node_combine_input_records", node_combine_input_records);
  put_u64("node_combine_input_bytes", node_combine_input_bytes);
  put_u64("node_combine_output_records", node_combine_output_records);
  put_u64("node_combine_output_bytes", node_combine_output_bytes);
  put_u64("node_combine_tasks", node_combine_tasks);
  put_u64("node_combine_passthrough_records",
          node_combine_passthrough_records);
  put_u64("node_combine_sketch_shards", node_combine_sketch_shards);
  put_u64("codec_map_spill_raw_bytes", codec_map_spill_raw_bytes);
  put_u64("codec_map_spill_encoded_bytes", codec_map_spill_encoded_bytes);
  put_u64("codec_shuffle_raw_bytes", codec_shuffle_raw_bytes);
  put_u64("codec_shuffle_encoded_bytes", codec_shuffle_encoded_bytes);
  put_u64("codec_reduce_spill_raw_bytes", codec_reduce_spill_raw_bytes);
  put_u64("codec_reduce_spill_encoded_bytes",
          codec_reduce_spill_encoded_bytes);
  put_u64("codec_bucket_raw_bytes", codec_bucket_raw_bytes);
  put_u64("codec_bucket_encoded_bytes", codec_bucket_encoded_bytes);
  // compress_ns / decompress_ns are host wall-clock and intentionally not
  // serialized: Serialize() must stay deterministic across runs and
  // data_plane_threads settings (see metrics.h). record_batches /
  // batched_records are likewise excluded: they vary with batch_records,
  // which must never show in goldens or equivalence fingerprints.
  put_u64("hash_table_probes", hash_table_probes);
  put_u64("hash_table_rehashes", hash_table_rehashes);
  put_u64("hash_table_max_probe", hash_table_max_probe);
  put_u64("hash_arena_bytes", hash_arena_bytes);
  put_f64("map_cpu_s", map_cpu_s);
  put_f64("reduce_cpu_s", reduce_cpu_s);
  return out;
}

std::string JobMetrics::ToString() const {
  char buf[1536];
  std::snprintf(
      buf, sizeof(buf),
      "map input:       %12llu bytes, %llu records\n"
      "map spill:       %12llu bytes written, %llu read\n"
      "map output:      %12llu bytes, %llu records\n"
      "shuffle:         %12llu bytes\n"
      "reduce spill:    %12llu bytes written, %llu read\n"
      "reduce output:   %12llu bytes, %llu records (%llu early)\n"
      "reduce work:     %llu combines, %llu groups\n"
      "cpu:             map %.1f s, reduce %.1f s",
      static_cast<unsigned long long>(map_input_bytes),
      static_cast<unsigned long long>(map_input_records),
      static_cast<unsigned long long>(map_spill_write_bytes),
      static_cast<unsigned long long>(map_spill_read_bytes),
      static_cast<unsigned long long>(map_output_bytes),
      static_cast<unsigned long long>(map_output_records),
      static_cast<unsigned long long>(shuffle_bytes),
      static_cast<unsigned long long>(reduce_spill_write_bytes),
      static_cast<unsigned long long>(reduce_spill_read_bytes),
      static_cast<unsigned long long>(reduce_output_bytes),
      static_cast<unsigned long long>(output_records),
      static_cast<unsigned long long>(early_output_records),
      static_cast<unsigned long long>(combine_invocations),
      static_cast<unsigned long long>(reduce_groups), map_cpu_s,
      reduce_cpu_s);
  std::string out = buf;
  // The recovery block appears only when the job saw faults.
  if (map_task_attempts + reduce_task_attempts > 0) {
    std::snprintf(
        buf, sizeof(buf),
        "\nattempts:        map %llu, reduce %llu (%llu killed, %llu "
        "speculative, %llu spec wins)\n"
        "recovery:        %llu crashes, %llu lost map outputs, %llu fetch "
        "retries, %llu disk retries\n"
        "waste:           %.1f cpu s, %llu recovery bytes",
        static_cast<unsigned long long>(map_task_attempts),
        static_cast<unsigned long long>(reduce_task_attempts),
        static_cast<unsigned long long>(killed_attempts),
        static_cast<unsigned long long>(speculative_attempts),
        static_cast<unsigned long long>(speculative_wins),
        static_cast<unsigned long long>(node_crashes),
        static_cast<unsigned long long>(lost_map_outputs),
        static_cast<unsigned long long>(shuffle_fetch_retries),
        static_cast<unsigned long long>(disk_read_retries), wasted_cpu_s,
        static_cast<unsigned long long>(recovery_bytes));
    out += buf;
  }
  // The hash-core block appears only when a FlatTable ran.
  if (hash_table_probes > 0) {
    std::snprintf(
        buf, sizeof(buf),
        "\nhash core:       %llu probes (max chain %llu), %llu rehashes, "
        "%llu arena bytes",
        static_cast<unsigned long long>(hash_table_probes),
        static_cast<unsigned long long>(hash_table_max_probe),
        static_cast<unsigned long long>(hash_table_rehashes),
        static_cast<unsigned long long>(hash_arena_bytes));
    out += buf;
  }
  // The codec block appears only when a block codec ran.
  const uint64_t codec_raw = codec_map_spill_raw_bytes +
                             codec_shuffle_raw_bytes +
                             codec_reduce_spill_raw_bytes +
                             codec_bucket_raw_bytes;
  if (codec_raw > 0) {
    const uint64_t codec_enc = codec_map_spill_encoded_bytes +
                               codec_shuffle_encoded_bytes +
                               codec_reduce_spill_encoded_bytes +
                               codec_bucket_encoded_bytes;
    std::snprintf(
        buf, sizeof(buf),
        "\nblock codec:     %llu raw -> %llu encoded bytes (%.2fx), "
        "compress %.1f ms, decompress %.1f ms",
        static_cast<unsigned long long>(codec_raw),
        static_cast<unsigned long long>(codec_enc),
        codec_enc > 0 ? static_cast<double>(codec_raw) /
                            static_cast<double>(codec_enc)
                      : 0.0,
        compress_ns / 1e6, decompress_ns / 1e6);
    out += buf;
  }
  // The checkpoint block appears only when checkpointing ran.
  if (checkpoints_written + checkpoints_restored + checkpoint_full_replays >
      0) {
    std::snprintf(
        buf, sizeof(buf),
        "\ncheckpoints:     %llu written (%llu bytes, %llu replica bytes), "
        "%llu restored (%llu bytes read)\n"
        "ckpt recovery:   %llu corrupt replicas, %llu full replays, %llu "
        "segments skipped (%llu bytes)",
        static_cast<unsigned long long>(checkpoints_written),
        static_cast<unsigned long long>(checkpoint_bytes),
        static_cast<unsigned long long>(checkpoint_replica_bytes),
        static_cast<unsigned long long>(checkpoints_restored),
        static_cast<unsigned long long>(checkpoint_restore_bytes),
        static_cast<unsigned long long>(checkpoint_corrupt_replicas),
        static_cast<unsigned long long>(checkpoint_full_replays),
        static_cast<unsigned long long>(checkpoint_segments_skipped),
        static_cast<unsigned long long>(checkpoint_skipped_bytes));
    out += buf;
  }
  // The resident-shuffle block appears only when resident mode ran.
  if (resident_publish_segments + resident_state_restores > 0) {
    std::snprintf(
        buf, sizeof(buf),
        "\nresident:        %llu segments published (%llu bytes, %llu "
        "spilled / %llu bytes), %llu hit bytes, %llu invalidated\n"
        "state carry:     %llu adoptions (%llu bytes in, %llu bytes "
        "saved), %llu cached input bytes",
        static_cast<unsigned long long>(resident_publish_segments),
        static_cast<unsigned long long>(resident_publish_bytes),
        static_cast<unsigned long long>(resident_spilled_segments),
        static_cast<unsigned long long>(resident_spilled_bytes),
        static_cast<unsigned long long>(resident_hit_bytes),
        static_cast<unsigned long long>(resident_invalidated_segments),
        static_cast<unsigned long long>(resident_state_restores),
        static_cast<unsigned long long>(resident_state_restored_bytes),
        static_cast<unsigned long long>(resident_state_saved_bytes),
        static_cast<unsigned long long>(resident_cached_input_bytes));
    out += buf;
  }
  // The node-combine block appears only when the node tier ran.
  if (node_combine_tasks > 0) {
    std::snprintf(
        buf, sizeof(buf),
        "\nnode combine:    %llu in records (%llu bytes) -> %llu out "
        "(%llu bytes) over %llu node tasks, %llu passthrough, %llu "
        "sketch shards",
        static_cast<unsigned long long>(node_combine_input_records),
        static_cast<unsigned long long>(node_combine_input_bytes),
        static_cast<unsigned long long>(node_combine_output_records),
        static_cast<unsigned long long>(node_combine_output_bytes),
        static_cast<unsigned long long>(node_combine_tasks),
        static_cast<unsigned long long>(node_combine_passthrough_records),
        static_cast<unsigned long long>(node_combine_sketch_shards));
    out += buf;
  }
  // The integrity block appears only when checksums were verified or a
  // corruption was seen.
  if (verify_bytes + corruptions_detected > 0) {
    std::snprintf(
        buf, sizeof(buf),
        "\nintegrity:       %llu bytes verified (+%llu framing), %llu "
        "corruptions detected (%llu torn), %llu recovered\n"
        "dfs health:      %llu replicas quarantined, %llu bytes "
        "re-replicated, %llu corruption-recovery bytes",
        static_cast<unsigned long long>(verify_bytes),
        static_cast<unsigned long long>(checksum_overhead_bytes),
        static_cast<unsigned long long>(corruptions_detected),
        static_cast<unsigned long long>(torn_writes_detected),
        static_cast<unsigned long long>(corruptions_recovered),
        static_cast<unsigned long long>(quarantined_replicas),
        static_cast<unsigned long long>(rereplicated_bytes),
        static_cast<unsigned long long>(corruption_recovery_bytes));
    out += buf;
  }
  return out;
}

}  // namespace onepass
