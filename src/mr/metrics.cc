#include "src/mr/metrics.h"

#include <cstdio>

namespace onepass {

void JobMetrics::Merge(const JobMetrics& o) {
  map_input_bytes += o.map_input_bytes;
  map_spill_write_bytes += o.map_spill_write_bytes;
  map_spill_read_bytes += o.map_spill_read_bytes;
  map_output_bytes += o.map_output_bytes;
  shuffle_bytes += o.shuffle_bytes;
  reduce_spill_write_bytes += o.reduce_spill_write_bytes;
  reduce_spill_read_bytes += o.reduce_spill_read_bytes;
  reduce_output_bytes += o.reduce_output_bytes;
  map_input_records += o.map_input_records;
  map_output_records += o.map_output_records;
  reduce_input_records += o.reduce_input_records;
  combine_invocations += o.combine_invocations;
  reduce_groups += o.reduce_groups;
  output_records += o.output_records;
  early_output_records += o.early_output_records;
  snapshot_bytes += o.snapshot_bytes;
  snapshot_count += o.snapshot_count;
  map_cpu_s += o.map_cpu_s;
  reduce_cpu_s += o.reduce_cpu_s;
}

std::string JobMetrics::ToString() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "map input:       %12llu bytes, %llu records\n"
      "map spill:       %12llu bytes written, %llu read\n"
      "map output:      %12llu bytes, %llu records\n"
      "shuffle:         %12llu bytes\n"
      "reduce spill:    %12llu bytes written, %llu read\n"
      "reduce output:   %12llu bytes, %llu records (%llu early)\n"
      "reduce work:     %llu combines, %llu groups\n"
      "cpu:             map %.1f s, reduce %.1f s",
      static_cast<unsigned long long>(map_input_bytes),
      static_cast<unsigned long long>(map_input_records),
      static_cast<unsigned long long>(map_spill_write_bytes),
      static_cast<unsigned long long>(map_spill_read_bytes),
      static_cast<unsigned long long>(map_output_bytes),
      static_cast<unsigned long long>(map_output_records),
      static_cast<unsigned long long>(shuffle_bytes),
      static_cast<unsigned long long>(reduce_spill_write_bytes),
      static_cast<unsigned long long>(reduce_spill_read_bytes),
      static_cast<unsigned long long>(reduce_output_bytes),
      static_cast<unsigned long long>(output_records),
      static_cast<unsigned long long>(early_output_records),
      static_cast<unsigned long long>(combine_invocations),
      static_cast<unsigned long long>(reduce_groups), map_cpu_s,
      reduce_cpu_s);
  return buf;
}

}  // namespace onepass
