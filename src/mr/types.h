// Basic record types shared across the MapReduce framework.

#ifndef ONEPASS_MR_TYPES_H_
#define ONEPASS_MR_TYPES_H_

#include <cstdint>
#include <string>

namespace onepass {

// An owning (key, value) pair. Hot paths use string_views over KvBuffer
// bytes; Record is for inputs, outputs, and tests.
struct Record {
  std::string key;
  std::string value;

  friend bool operator==(const Record& a, const Record& b) {
    return a.key == b.key && a.value == b.value;
  }
  friend auto operator<=>(const Record& a, const Record& b) = default;
};

}  // namespace onepass

#endif  // ONEPASS_MR_TYPES_H_
