// Verified, replica-aware read path over a ChunkStore (DESIGN.md §5.2).
//
// A ChunkReader is a per-job view: it frames each chunk replica's bytes in
// CRC32C blocks (what the simulated DFS "stores"), applies the FaultPlan's
// seeded corruption to the copy being read, and verifies at the read
// boundary. A replica that fails verification is quarantined for the rest
// of the job and — once a good copy is found — re-replicated onto a fresh
// node, so the post-recovery replica view feeds task placement. The read
// fails with Status::Corruption only when every replica is bad.
//
// The underlying ChunkStore is never mutated: benches re-run many jobs
// over one shared input, and each job must see the same pristine store.
//
// Concurrency (DESIGN.md §5.3): one ChunkReader is shared by all map
// tasks of a job, but Read(index) touches only chunk `index`'s replica
// slot (pre-sized at construction, so the outer vector never reallocates)
// and otherwise reads immutable state; corruption draws are pure functions
// of (chunk, replica). Concurrent Reads of *distinct* indices are safe;
// two concurrent Reads of the same index are not (the data plane never
// issues those — each map task owns its chunk). Call replicas() only
// after the reads that may reshape that chunk's view have completed.

#ifndef ONEPASS_DFS_CHUNK_READER_H_
#define ONEPASS_DFS_CHUNK_READER_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/dfs/chunk_store.h"
#include "src/sim/fault_injector.h"
#include "src/storage/framed_io.h"
#include "src/util/kv_buffer.h"

namespace onepass {

// Per-read accounting, folded into JobMetrics and the reading map task's
// cost trace by the caller.
struct ChunkReadStats {
  int replica_reads = 0;  // full replica reads issued (>= 1 on success)
  int quarantined = 0;    // replicas that failed verification
  uint64_t torn = 0;                // ...of which torn writes
  uint64_t verify_bytes = 0;        // payload bytes verified
  uint64_t overhead_bytes = 0;      // framing headers read alongside
  uint64_t rereplicated_bytes = 0;  // payload re-copied to a fresh node
};

class ChunkReader {
 public:
  // `store` must outlive the reader. `plan` may be null (no injection);
  // verification still runs whenever `integrity.checksums` is set.
  ChunkReader(const ChunkStore* store, const IntegrityConfig& integrity,
              const sim::FaultPlan* plan);

  // Reads chunk `index`, trying replicas in placement order. On success
  // returns the verified records and re-replicates past any quarantined
  // copies; stats (always written) reflect the attempt sequence.
  Result<KvBuffer> Read(int index, ChunkReadStats* stats);

  // Replica holders of chunk `index` after any quarantine/re-replication
  // done by Read — the view task placement should use.
  const std::vector<int>& replicas(int index) const;

 private:
  const ChunkStore* store_;
  IntegrityConfig integrity_;
  const sim::FaultPlan* plan_;
  int nodes_;
  // Post-recovery replica views, lazily initialized from the store.
  mutable std::vector<std::vector<int>> replicas_;
};

}  // namespace onepass

#endif  // ONEPASS_DFS_CHUNK_READER_H_
