#include "src/dfs/chunk_store.h"

#include "src/common/logging.h"

namespace onepass {

ChunkStore::ChunkStore(uint64_t chunk_bytes, int nodes, int replication)
    : chunk_bytes_(chunk_bytes),
      nodes_(nodes),
      replication_(replication < 1 ? 1
                                   : (replication > nodes ? nodes
                                                          : replication)) {
  CHECK_GT(chunk_bytes, 0u);
  CHECK_GE(nodes, 1);
}

void ChunkStore::Append(std::string_view key, std::string_view value) {
  current_.Append(key, value);
  total_bytes_ += RecordBytes(key, value);
  ++total_records_;
  if (current_.bytes() >= chunk_bytes_) CutChunk();
}

void ChunkStore::Seal() {
  if (!current_.empty()) CutChunk();
}

void ChunkStore::CutChunk() {
  Chunk c;
  c.node = next_node_;
  // Replica set: the primary plus the next r-1 distinct nodes, HDFS-style
  // round-robin placement.
  c.replicas.reserve(replication_);
  for (int i = 0; i < replication_; ++i) {
    c.replicas.push_back((next_node_ + i) % nodes_);
  }
  next_node_ = (next_node_ + 1) % nodes_;
  c.records = std::move(current_);
  current_ = KvBuffer();
  chunks_.push_back(std::move(c));
}

}  // namespace onepass
