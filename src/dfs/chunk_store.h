// A miniature distributed-file-system namespace for job input.
//
// Mirrors HDFS's role in the paper (§2.2): input is stored as fixed-size
// chunks ("blocks", 64 MB in stock Hadoop) and each chunk's home node
// determines where its map task runs (block-level, data-local scheduling).
// Chunks are placed round-robin across nodes; with replication r > 1 each
// chunk additionally lives on the r-1 distinct nodes following the primary,
// so a map task whose home node crashes can be re-executed on a surviving
// replica holder (the MapReduce fault-tolerance contract).
//
// A sealed store is immutable for the rest of its life: jobs only read it
// (ChunkReader layers per-job recovery state on top without touching it),
// so one store is safely shared by concurrent map tasks and by repeated
// jobs in a bench sweep (DESIGN.md §5.3). Build (Append/Seal) is
// single-threaded.

#ifndef ONEPASS_DFS_CHUNK_STORE_H_
#define ONEPASS_DFS_CHUNK_STORE_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/util/kv_buffer.h"

namespace onepass {

struct Chunk {
  int node = 0;       // home node (map task locality)
  // All nodes holding a copy, primary first; size = replication factor.
  std::vector<int> replicas;
  KvBuffer records;   // input records of this chunk
};

class ChunkStore {
 public:
  // chunk_bytes: the DFS block size (the paper's C); nodes: cluster size;
  // replication: copies per chunk (clamped to [1, nodes]).
  ChunkStore(uint64_t chunk_bytes, int nodes, int replication = 1);

  // Appends an input record; cuts a new chunk when the current one reaches
  // the block size. Records are not split across chunks.
  void Append(std::string_view key, std::string_view value);

  // Finishes the in-progress chunk. Call once after the last Append.
  void Seal();

  const std::vector<Chunk>& chunks() const { return chunks_; }
  uint64_t total_bytes() const { return total_bytes_; }
  uint64_t total_records() const { return total_records_; }
  int replication() const { return replication_; }
  int nodes() const { return nodes_; }

 private:
  void CutChunk();

  uint64_t chunk_bytes_;
  int nodes_;
  int replication_;
  int next_node_ = 0;
  KvBuffer current_;
  std::vector<Chunk> chunks_;
  uint64_t total_bytes_ = 0;
  uint64_t total_records_ = 0;
};

}  // namespace onepass

#endif  // ONEPASS_DFS_CHUNK_STORE_H_
