#include "src/dfs/chunk_reader.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/common/logging.h"

namespace onepass {

ChunkReader::ChunkReader(const ChunkStore* store,
                         const IntegrityConfig& integrity,
                         const sim::FaultPlan* plan)
    : store_(store), integrity_(integrity), plan_(plan),
      nodes_(store->nodes()) {
  CHECK(store != nullptr);
  replicas_.reserve(store_->chunks().size());
  for (const Chunk& c : store_->chunks()) replicas_.push_back(c.replicas);
}

const std::vector<int>& ChunkReader::replicas(int index) const {
  return replicas_[static_cast<size_t>(index)];
}

Result<KvBuffer> ChunkReader::Read(int index, ChunkReadStats* stats) {
  CHECK(stats != nullptr);
  *stats = ChunkReadStats{};
  const Chunk& chunk = store_->chunks()[static_cast<size_t>(index)];
  if (!integrity_.checksums || chunk.records.empty()) {
    stats->replica_reads = 1;
    return chunk.records;
  }

  std::vector<int>& view = replicas_[static_cast<size_t>(index)];
  const std::string framed =
      FrameBytes(chunk.records.data(), integrity_.block_bytes);
  const int64_t expect = static_cast<int64_t>(chunk.records.bytes());
  const uint64_t overhead = framed.size() - chunk.records.bytes();

  std::vector<int> bad;
  const std::vector<int> order = view;  // view mutates on recovery
  for (int node : order) {
    ++stats->replica_reads;
    stats->verify_bytes += chunk.records.bytes();
    stats->overhead_bytes += overhead;
    sim::CorruptionEvent ev;
    if (plan_ != nullptr) {
      ev = plan_->CorruptionDamage(sim::StreamKind::kDfsChunk,
                                   static_cast<uint64_t>(index),
                                   static_cast<uint64_t>(node),
                                   /*gen=*/0, framed.size());
    }
    if (ev.fires()) {
      // Damage this copy and prove the reader notices: a single flipped
      // bit or truncated tail must never verify.
      std::string damaged = framed;
      if (ev.torn) {
        TornTruncate(&damaged, static_cast<uint64_t>(ev.bit) / 8);
      } else {
        FlipBit(&damaged, static_cast<uint64_t>(ev.bit));
      }
      const Status verdict = VerifyFramed(damaged, expect);
      CHECK(!verdict.ok()) << "undetected injected corruption";
      ++stats->quarantined;
      if (ev.torn) ++stats->torn;
      bad.push_back(node);
      continue;
    }
    Result<std::string> payload = ReadAllFramed(framed, expect);
    CHECK(payload.ok()) << payload.status().ToString();

    if (!bad.empty()) {
      // Quarantine the bad copies and re-replicate from this survivor
      // onto fresh nodes (round-robin past each bad holder), restoring
      // the chunk's replication factor where the cluster allows.
      for (int b : bad) {
        view.erase(std::remove(view.begin(), view.end(), b), view.end());
      }
      for (int b : bad) {
        for (int step = 1; step <= nodes_; ++step) {
          const int candidate = (b + step) % nodes_;
          const bool holds =
              std::find(view.begin(), view.end(), candidate) != view.end();
          const bool quarantined =
              std::find(bad.begin(), bad.end(), candidate) != bad.end();
          if (!holds && !quarantined) {
            view.push_back(candidate);
            stats->rereplicated_bytes += chunk.records.bytes();
            break;
          }
        }
      }
    }
    return KvBuffer::FromData(std::move(payload).value(),
                              chunk.records.count());
  }
  return Status::Corruption("chunk " + std::to_string(index) + ": all " +
                            std::to_string(order.size()) +
                            " replicas failed checksum verification");
}

}  // namespace onepass
