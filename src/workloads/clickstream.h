// Synthetic click-stream generator (WorldCup'98 stand-in; see DESIGN.md §2).
//
// Emits a chronological stream of click records. Each click picks its user
// from a Zipf distribution (user popularity in web logs is heavy-tailed)
// and a url from a smaller Zipf'd pool; the global clock advances by an
// exponential-ish inter-arrival so that per-user gaps — and therefore
// 5-minute session boundaries — arise naturally: popular users click in
// rapid succession (long multi-click sessions), tail users click rarely
// (mostly singleton sessions).
//
// Record layout: key = "" (input files are unkeyed), value = binary click:
//   [ts: fixed64 seconds][user: fixed64 rank][url: fixed32] + padding
// Padding brings the value to `record_bytes` so data volumes are realistic
// (web log lines are ~100 bytes).

#ifndef ONEPASS_WORKLOADS_CLICKSTREAM_H_
#define ONEPASS_WORKLOADS_CLICKSTREAM_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/dfs/chunk_store.h"
#include "src/util/random.h"

namespace onepass {

struct Click {
  uint64_t ts = 0;    // seconds
  uint64_t user = 0;  // user rank
  uint32_t url = 0;   // url id
};

// Binary encoding used in input values and intermediate click payloads.
std::string EncodeClick(const Click& click, size_t record_bytes);
// Parses the fixed prefix; returns false if `data` is too short.
bool DecodeClick(std::string_view data, Click* click);

// Zero-padded decimal user key ("u00001234") — fixed width so that
// byte-lexicographic order equals numeric order.
std::string UserKey(uint64_t user);
std::string UrlKey(uint32_t url);

struct ClickStreamConfig {
  uint64_t num_clicks = 1'000'000;
  uint64_t num_users = 50'000;
  uint32_t num_urls = 5'000;
  double user_skew = 1.0;        // Zipf exponent for user popularity
  double url_skew = 0.8;         // Zipf exponent for url popularity
  double clicks_per_second = 1000;  // global arrival rate
  size_t record_bytes = 64;      // value size incl. padding
  uint64_t seed = 1234;

  // Session model: the stream interleaves `active_sessions` concurrent
  // user sessions; each click belongs to a random active session, which
  // ends with probability 1/mean_session_clicks (the slot is refilled
  // with a fresh Zipf-drawn user). This reproduces web-log temporal
  // locality: a chunk contains few distinct users relative to its click
  // count, which is what makes map-side combining effective, and gives
  // users multi-click sessions separated by long gaps.
  int active_sessions = 50;
  double mean_session_clicks = 8.0;
};

// Generates the stream directly into a chunk store (records are appended
// in timestamp order, so DFS chunks are time-ordered like a real log).
void GenerateClickStream(const ClickStreamConfig& config, ChunkStore* out);

// The session-inactivity threshold used by every sessionization component.
inline constexpr uint64_t kSessionGapSeconds = 300;

}  // namespace onepass

#endif  // ONEPASS_WORKLOADS_CLICKSTREAM_H_
