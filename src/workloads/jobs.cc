#include "src/workloads/jobs.h"

#include <memory>

#include "src/workloads/count_workloads.h"
#include "src/workloads/windows.h"

namespace onepass {

JobSpec SessionizationJob(uint64_t state_bytes, size_t payload_bytes) {
  JobSpec spec;
  spec.name = "sessionization";
  spec.mapper = [payload_bytes]() {
    return std::make_unique<SessionizationMapper>(payload_bytes);
  };
  spec.reducer = [payload_bytes]() {
    return std::make_unique<SessionizationReducer>(payload_bytes);
  };
  spec.inc = [state_bytes, payload_bytes]() {
    return std::make_unique<SessionizationIncReducer>(state_bytes,
                                                      payload_bytes);
  };
  return spec;
}

JobSpec ClickCountJob() {
  JobSpec spec;
  spec.name = "user click counting";
  spec.mapper = []() {
    return std::make_unique<ClickCountMapper>(ClickKeyField::kUser);
  };
  spec.reducer = []() { return std::make_unique<CountingListReducer>(0); };
  spec.inc = []() { return std::make_unique<CountingIncReducer>(0); };
  return spec;
}

JobSpec FrequentUserJob(uint64_t threshold) {
  JobSpec spec;
  spec.name = "frequent user identification";
  spec.mapper = []() {
    return std::make_unique<ClickCountMapper>(ClickKeyField::kUser);
  };
  spec.reducer = [threshold]() {
    return std::make_unique<CountingListReducer>(threshold);
  };
  spec.inc = [threshold]() {
    return std::make_unique<CountingIncReducer>(threshold);
  };
  return spec;
}

JobSpec PageFrequencyJob() {
  JobSpec spec;
  spec.name = "page frequency";
  spec.mapper = []() {
    return std::make_unique<ClickCountMapper>(ClickKeyField::kUrl);
  };
  spec.reducer = []() { return std::make_unique<CountingListReducer>(0); };
  spec.inc = []() { return std::make_unique<CountingIncReducer>(0); };
  return spec;
}

JobSpec WindowedClickCountJob(uint64_t window_seconds,
                              uint64_t lateness_seconds) {
  JobSpec spec;
  spec.name = "windowed click counting";
  spec.mapper = [window_seconds]() {
    return std::make_unique<WindowedClickMapper>(window_seconds);
  };
  spec.inc = [window_seconds, lateness_seconds]() {
    return std::make_unique<WindowedCountReducer>(window_seconds,
                                                  lateness_seconds);
  };
  return spec;
}

JobSpec WordCountJob() {
  JobSpec spec;
  spec.name = "word counting";
  spec.mapper = []() { return std::make_unique<WordMapper>(); };
  spec.reducer = []() { return std::make_unique<CountingListReducer>(0); };
  spec.inc = []() { return std::make_unique<CountingIncReducer>(0); };
  return spec;
}

JobSpec TrigramCountJob(uint64_t threshold) {
  JobSpec spec;
  spec.name = "trigram counting";
  spec.mapper = []() { return std::make_unique<TrigramMapper>(); };
  spec.reducer = [threshold]() {
    return std::make_unique<CountingListReducer>(threshold);
  };
  spec.inc = [threshold]() {
    return std::make_unique<CountingIncReducer>(threshold);
  };
  return spec;
}

}  // namespace onepass
