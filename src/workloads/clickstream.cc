#include "src/workloads/clickstream.h"

#include <cmath>
#include <cstdio>

#include "src/common/logging.h"
#include "src/util/coding.h"

namespace onepass {

std::string EncodeClick(const Click& click, size_t record_bytes) {
  std::string out;
  out.reserve(record_bytes);
  PutFixed64(&out, click.ts);
  PutFixed64(&out, click.user);
  PutFixed32(&out, click.url);
  if (out.size() < record_bytes) out.resize(record_bytes, 'x');
  return out;
}

bool DecodeClick(std::string_view data, Click* click) {
  if (data.size() < 20) return false;
  click->ts = DecodeFixed64(data.data());
  click->user = DecodeFixed64(data.data() + 8);
  click->url = DecodeFixed32(data.data() + 16);
  return true;
}

std::string UserKey(uint64_t user) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "u%09llu",
                static_cast<unsigned long long>(user));
  return buf;
}

std::string UrlKey(uint32_t url) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "p%08u", url);
  return buf;
}

void GenerateClickStream(const ClickStreamConfig& config, ChunkStore* out) {
  CHECK_GT(config.num_clicks, 0u);
  CHECK_GT(config.num_users, 0u);
  CHECK_GT(config.clicks_per_second, 0.0);
  CHECK_GE(config.active_sessions, 1);
  CHECK_GE(config.mean_session_clicks, 1.0);
  Xoshiro256StarStar rng(config.seed);
  ZipfGenerator users(config.num_users, config.user_skew);
  ZipfGenerator urls(config.num_urls, config.url_skew);

  // Pool of concurrently active sessions.
  std::vector<uint64_t> active(config.active_sessions);
  for (auto& u : active) u = users.Next(&rng);
  const double end_prob = 1.0 / config.mean_session_clicks;

  double clock = 0;
  const double mean_gap = 1.0 / config.clicks_per_second;
  for (uint64_t i = 0; i < config.num_clicks; ++i) {
    // Exponential-ish inter-arrival (inverse-CDF of Exp(rate)).
    const double u = rng.NextDouble();
    clock += -mean_gap * std::log(1.0 - u + 1e-12);
    const size_t slot =
        static_cast<size_t>(rng.NextBounded(active.size()));
    Click c;
    c.ts = static_cast<uint64_t>(clock);
    c.user = active[slot];
    c.url = static_cast<uint32_t>(urls.Next(&rng));
    out->Append("", EncodeClick(c, config.record_bytes));
    if (rng.NextBool(end_prob)) active[slot] = users.Next(&rng);
  }
  out->Seal();
}

}  // namespace onepass
