// Ready-made JobSpecs for the paper's evaluation workloads (§6).

#ifndef ONEPASS_WORKLOADS_JOBS_H_
#define ONEPASS_WORKLOADS_JOBS_H_

#include <cstdint>

#include "src/mr/cluster.h"
#include "src/workloads/sessionization.h"

namespace onepass {

// Sessionization over a click stream. `state_bytes` is the INC/DINC
// per-user click buffer (the paper evaluates 0.5 KB / 1 KB / 2 KB).
JobSpec SessionizationJob(uint64_t state_bytes = 512,
                          size_t payload_bytes = kDefaultClickPayloadBytes);

// Count clicks per user.
JobSpec ClickCountJob();

// Users with at least `threshold` clicks (paper: 50); supports early
// output the moment a user crosses the threshold.
JobSpec FrequentUserJob(uint64_t threshold = 50);

// Count visits per url (Table 1's "page frequency").
JobSpec PageFrequencyJob();

// Word trigrams appearing at least `threshold` times (paper: 1000).
JobSpec TrigramCountJob(uint64_t threshold = 1000);

// Count occurrences of each word in the document corpus.
JobSpec WordCountJob();

// Tumbling-window clicks-per-user over the stream (the paper's §8
// future-work direction, built on INC/DINC-hash). Closed windows stream
// out while the job is still reading input.
JobSpec WindowedClickCountJob(uint64_t window_seconds = 3600,
                              uint64_t lateness_seconds = 600);

}  // namespace onepass

#endif  // ONEPASS_WORKLOADS_JOBS_H_
