// Sessionization: reorder a click stream into per-user sessions (§2.3).
//
// Map: key = user id, value = click payload [ts][url][padding].
// Reduce: order a user's clicks by timestamp, split sessions at gaps of
// more than 5 minutes, and emit every click tagged with its session id
// (the session's first click timestamp).
//
// Three implementations, one per engine contract:
//  * SessionizationMapper + SessionizationReducer — the values-list API
//    (sort-merge / MR-hash): buffers all clicks of a user, sorts, splits.
//  * SessionizationIncReducer — the incremental API (INC/DINC): the state
//    is a fixed-size buffer of a user's recent clicks (the paper uses a
//    fixed buffer because shuffle order is only approximately temporal;
//    a big enough buffer absorbs the bounded disorder). Closed sessions
//    stream out of OnUpdate as soon as the 5-minute gap is observed —
//    this is what lets the reduce progress track the map progress.
//  * TryDiscard (DINC eviction hook, §6.2): a state whose clicks all
//    belong to expired sessions is emitted directly instead of spilled —
//    the mechanism behind the 0.1 GB vs 203 GB spill difference of
//    Table 4.

#ifndef ONEPASS_WORKLOADS_SESSIONIZATION_H_
#define ONEPASS_WORKLOADS_SESSIONIZATION_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/mr/api.h"
#include "src/workloads/clickstream.h"

namespace onepass {

// Intermediate click payload: [ts: fixed64][url: fixed32] + padding.
std::string EncodeClickPayload(uint64_t ts, uint32_t url,
                               size_t payload_bytes);
bool DecodeClickPayload(std::string_view data, uint64_t* ts, uint32_t* url);

// Output record value: [session: fixed64][ts: fixed64][url: fixed32] +
// padding to `payload_bytes` (so reduce output ~= input, K_r ~= 1).
std::string EncodeSessionOutput(uint64_t session, uint64_t ts, uint32_t url,
                                size_t payload_bytes);
bool DecodeSessionOutput(std::string_view data, uint64_t* session,
                         uint64_t* ts, uint32_t* url);

inline constexpr size_t kDefaultClickPayloadBytes = 64;

class SessionizationMapper : public Mapper {
 public:
  explicit SessionizationMapper(
      size_t payload_bytes = kDefaultClickPayloadBytes)
      : payload_bytes_(payload_bytes) {}
  void Map(std::string_view key, std::string_view value,
           Emitter* out) override;

 private:
  size_t payload_bytes_;
};

// Values-list reduce: needs all of a user's clicks before it can emit.
class SessionizationReducer : public Reducer {
 public:
  explicit SessionizationReducer(
      size_t payload_bytes = kDefaultClickPayloadBytes)
      : payload_bytes_(payload_bytes) {}
  void Reduce(std::string_view key, ValueIterator* values,
              Emitter* out) override;

 private:
  size_t payload_bytes_;
};

// Incremental reduce with a fixed-size click buffer as the state.
//
// State layout: [count: fixed32] then `count` entries of
// [ts: fixed64][url: fixed32] + padding (each entry is payload_bytes, so
// carrying a click through the state costs what the click costs).
class SessionizationIncReducer : public IncrementalReducer {
 public:
  // state_bytes: the fixed buffer size (the paper evaluates 0.5/1/2 KB).
  explicit SessionizationIncReducer(
      uint64_t state_bytes = 512,
      size_t payload_bytes = kDefaultClickPayloadBytes);

  std::string Init(std::string_view key, std::string_view value) override;
  void Combine(std::string_view key, std::string* state,
               std::string_view other) override;
  void Finalize(std::string_view key, std::string_view state,
                Emitter* out) override;
  void OnUpdate(std::string_view key, std::string* state,
                Emitter* out) override;
  bool TryDiscard(std::string_view key, std::string* state,
                  Emitter* out) override;
  bool FlushResidentStatesAtEnd() const override { return false; }
  uint64_t StateBytesHint() const override { return state_bytes_; }

  uint64_t watermark() const { return watermark_; }

 private:
  // Emits every complete (closed) session in the buffer and keeps only the
  // trailing open session; if the buffer is still over capacity, the
  // oldest clicks are force-emitted (bounded-buffer approximation).
  void EmitClosedSessions(std::string_view key, std::string* state,
                          Emitter* out, bool emit_all);

  uint64_t state_bytes_;
  size_t payload_bytes_;
  size_t capacity_clicks_;
  // Highest timestamp seen by this reduce task; used as the expiry
  // watermark for TryDiscard.
  uint64_t watermark_ = 0;
};

}  // namespace onepass

#endif  // ONEPASS_WORKLOADS_SESSIONIZATION_H_
