#include "src/workloads/documents.h"

#include <cstdio>
#include <string>

#include "src/common/logging.h"
#include "src/util/random.h"

namespace onepass {

void GenerateDocuments(const DocumentCorpusConfig& config, ChunkStore* out) {
  CHECK_GE(config.words_per_record, 3);
  Xoshiro256StarStar rng(config.seed);
  ZipfGenerator words(config.vocabulary, config.word_skew);
  std::string line;
  char buf[16];
  for (uint64_t r = 0; r < config.num_records; ++r) {
    line.clear();
    for (int w = 0; w < config.words_per_record; ++w) {
      if (w > 0) line.push_back(' ');
      std::snprintf(buf, sizeof(buf), "w%06llu",
                    static_cast<unsigned long long>(words.Next(&rng)));
      line += buf;
    }
    out->Append("", line);
  }
  out->Seal();
}

}  // namespace onepass
