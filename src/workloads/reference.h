// Reference implementations: straightforward single-threaded semantics of
// every workload, computed directly over the raw input. The engines'
// outputs are checked against these in the integration tests — the central
// correctness property that all four group-by implementations compute the
// same query.

#ifndef ONEPASS_WORKLOADS_REFERENCE_H_
#define ONEPASS_WORKLOADS_REFERENCE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/dfs/chunk_store.h"
#include "src/mr/types.h"
#include "src/workloads/count_workloads.h"

namespace onepass {

// Sessionization with perfect global ordering: for every user, clicks
// sorted by ts, sessions split at >5 min gaps, one output record per click
// tagged with the session id (first ts of the session). Records are
// returned sorted for comparison.
std::vector<Record> ReferenceSessionization(const ChunkStore& input,
                                            size_t payload_bytes);

// Exact per-key click counts (user or url).
std::map<std::string, uint64_t> ReferenceClickCounts(const ChunkStore& input,
                                                     ClickKeyField field);

// Exact trigram counts over a document corpus.
std::map<std::string, uint64_t> ReferenceTrigramCounts(
    const ChunkStore& input);

}  // namespace onepass

#endif  // ONEPASS_WORKLOADS_REFERENCE_H_
