// Synthetic document corpus generator (GOV2 stand-in; see DESIGN.md §2).
//
// Each input record is a "line" of `words_per_record` space-separated
// words drawn from a Zipf'd vocabulary. Trigram counting over this corpus
// exercises the large-key-state-space regime of §6.2: the number of
// distinct trigrams vastly exceeds reduce memory, and — unlike user ids —
// trigram frequencies are comparatively even (the product of three Zipf
// draws flattens the head), which is exactly why the paper sees INC-hash
// and DINC-hash performing similarly there.

#ifndef ONEPASS_WORKLOADS_DOCUMENTS_H_
#define ONEPASS_WORKLOADS_DOCUMENTS_H_

#include <cstdint>

#include "src/dfs/chunk_store.h"

namespace onepass {

struct DocumentCorpusConfig {
  uint64_t num_records = 100'000;
  int words_per_record = 20;
  uint64_t vocabulary = 50'000;
  double word_skew = 0.9;  // Zipf exponent over the vocabulary
  uint64_t seed = 5678;
};

// Generates the corpus into a chunk store (key = "", value = the line).
void GenerateDocuments(const DocumentCorpusConfig& config, ChunkStore* out);

}  // namespace onepass

#endif  // ONEPASS_WORKLOADS_DOCUMENTS_H_
