#include "src/workloads/count_workloads.h"

#include <cstdio>

#include "src/util/coding.h"
#include "src/workloads/clickstream.h"

namespace onepass {

std::string EncodeCountState(uint64_t count, bool emitted) {
  std::string out;
  out.reserve(9);
  PutFixed64(&out, count);
  out.push_back(emitted ? 1 : 0);
  return out;
}

bool DecodeCountState(std::string_view data, uint64_t* count,
                      bool* emitted) {
  if (data.size() < 9) return false;
  *count = DecodeFixed64(data.data());
  *emitted = data[8] != 0;
  return true;
}

void ClickCountMapper::Map(std::string_view /*key*/, std::string_view value,
                           Emitter* out) {
  Click c;
  if (!DecodeClick(value, &c)) return;
  const std::string key =
      field_ == ClickKeyField::kUser ? UserKey(c.user) : UrlKey(c.url);
  out->Emit(key, EncodeCountState(1, false));
}

void ClickCountMapper::MapBatch(const RecordBatch& batch, Emitter* out) {
  const std::string one = EncodeCountState(1, false);
  // Slots are sized before any view is taken, so key_store_ never
  // reallocates while key_views_ points into it.
  if (key_store_.size() < batch.size) key_store_.resize(batch.size);
  key_views_.clear();
  value_views_.clear();
  size_t n = 0;
  for (size_t i = 0; i < batch.size; ++i) {
    Click c;
    if (!DecodeClick(batch.values[i], &c)) continue;  // same skip as Map
    key_store_[n] =
        field_ == ClickKeyField::kUser ? UserKey(c.user) : UrlKey(c.url);
    key_views_.push_back(key_store_[n]);
    value_views_.push_back(one);
    ++n;
  }
  const RecordBatch staged{key_views_.data(), value_views_.data(), n};
  out->EmitBatch(staged);
}

void TrigramMapper::Map(std::string_view /*key*/, std::string_view value,
                        Emitter* out) {
  // Words are single-space separated, so a trigram is the contiguous span
  // from the first word's start to the third word's end.
  const std::string one = EncodeCountState(1, false);
  size_t starts[3] = {0, 0, 0};  // starts of the last three words seen
  int words = 0;
  size_t start = 0;
  for (size_t i = 0; i <= value.size(); ++i) {
    if (i == value.size() || value[i] == ' ') {
      if (i > start) {
        starts[0] = starts[1];
        starts[1] = starts[2];
        starts[2] = start;
        ++words;
        if (words >= 3) {
          out->Emit(value.substr(starts[0], i - starts[0]), one);
        }
      }
      start = i + 1;
    }
  }
}

void WordMapper::Map(std::string_view /*key*/, std::string_view value,
                     Emitter* out) {
  const std::string one = EncodeCountState(1, false);
  size_t start = 0;
  for (size_t i = 0; i <= value.size(); ++i) {
    if (i == value.size() || value[i] == ' ') {
      if (i > start) out->Emit(value.substr(start, i - start), one);
      start = i + 1;
    }
  }
}

std::string CountingIncReducer::Init(std::string_view /*key*/,
                                     std::string_view value) {
  // Values already carry the count-state encoding.
  uint64_t count = 1;
  bool emitted = false;
  if (DecodeCountState(value, &count, &emitted)) {
    return std::string(value.substr(0, 9));
  }
  return EncodeCountState(1, false);
}

void CountingIncReducer::Combine(std::string_view /*key*/,
                                 std::string* state,
                                 std::string_view other) {
  uint64_t c1 = 0, c2 = 0;
  bool e1 = false, e2 = false;
  DecodeCountState(*state, &c1, &e1);
  DecodeCountState(other, &c2, &e2);
  *state = EncodeCountState(c1 + c2, e1 || e2);
}

void CountingIncReducer::OnUpdate(std::string_view key, std::string* state,
                                  Emitter* out) {
  if (threshold_ == 0) return;
  uint64_t count = 0;
  bool emitted = false;
  if (!DecodeCountState(*state, &count, &emitted)) return;
  if (!emitted && count >= threshold_) {
    out->Emit(key, std::to_string(count));
    *state = EncodeCountState(count, true);
  }
}

void CountingIncReducer::Finalize(std::string_view key,
                                  std::string_view state, Emitter* out) {
  uint64_t count = 0;
  bool emitted = false;
  if (!DecodeCountState(state, &count, &emitted)) return;
  if (threshold_ == 0) {
    out->Emit(key, std::to_string(count));
  } else if (!emitted && count >= threshold_) {
    out->Emit(key, std::to_string(count));
  }
}

void CountingListReducer::Reduce(std::string_view key, ValueIterator* values,
                                 Emitter* out) {
  uint64_t total = 0;
  std::string_view v;
  while (values->Next(&v)) {
    uint64_t c = 0;
    bool e = false;
    if (DecodeCountState(v, &c, &e)) {
      total += c;
    }
  }
  if (threshold_ == 0 || total >= threshold_) {
    out->Emit(key, std::to_string(total));
  }
}

}  // namespace onepass
