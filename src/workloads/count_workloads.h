// Counting workloads: user click counting, frequent-user identification,
// page (url) frequency, and trigram counting (§2.3, §6).
//
// All four share the count machinery:
//   map value / state: [count: fixed64][flags: u8]  (flag bit 0 = "already
//   emitted early", used by threshold queries so early and final output
//   never duplicate).
//
// Mappers always emit count-states (a count of 1), so the value
// representation is identical across engines; the incremental reducer's
// Init is then the identity, and the values-list reducer simply sums
// counts — both handle raw and map-combined input uniformly.
//
// Threshold semantics:
//   threshold == 0 -> emit (key, count) for every key at finalize (user
//                     click counting, page frequency: no early output).
//   threshold > 0  -> emit the key once its count reaches the threshold;
//                     OnUpdate fires this *early*, during the stream
//                     (frequent users >= 50; trigrams > 1000) — the reason
//                     INC-hash's reduce progress fully tracks the maps in
//                     Fig. 7(c).

#ifndef ONEPASS_WORKLOADS_COUNT_WORKLOADS_H_
#define ONEPASS_WORKLOADS_COUNT_WORKLOADS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/mr/api.h"

namespace onepass {

std::string EncodeCountState(uint64_t count, bool emitted);
bool DecodeCountState(std::string_view data, uint64_t* count, bool* emitted);

// Extracts the grouping key from a click record.
enum class ClickKeyField : uint8_t { kUser, kUrl };

// Map for click counting / page frequency: key = user or url, value =
// count-state(1).
class ClickCountMapper : public Mapper {
 public:
  explicit ClickCountMapper(ClickKeyField field) : field_(field) {}
  void Map(std::string_view key, std::string_view value,
           Emitter* out) override;
  // Batched map (DESIGN.md Â§5.8): stages the decoded keys for the whole
  // batch, then hands them to the emitter as one RecordBatch. Emits the
  // same (key, value) sequence as per-record Map, so output is unchanged.
  void MapBatch(const RecordBatch& batch, Emitter* out) override;

 private:
  ClickKeyField field_;
  std::vector<std::string> key_store_;       // owned key bytes for the batch
  std::vector<std::string_view> key_views_;  // views over key_store_
  std::vector<std::string_view> value_views_;
};

// Map for trigram counting: splits a whitespace-separated document line
// into words and emits every 3-word window as a key.
class TrigramMapper : public Mapper {
 public:
  void Map(std::string_view key, std::string_view value,
           Emitter* out) override;
};

// Map for word counting: splits a whitespace-separated document line into
// words and emits each one as a key.
class WordMapper : public Mapper {
 public:
  void Map(std::string_view key, std::string_view value,
           Emitter* out) override;
};

// init/cb/fn counting reducer with optional threshold early output.
class CountingIncReducer : public IncrementalReducer {
 public:
  explicit CountingIncReducer(uint64_t threshold = 0)
      : threshold_(threshold) {}

  std::string Init(std::string_view key, std::string_view value) override;
  void Combine(std::string_view key, std::string* state,
               std::string_view other) override;
  void Finalize(std::string_view key, std::string_view state,
                Emitter* out) override;
  void OnUpdate(std::string_view key, std::string* state,
                Emitter* out) override;
  // Counts are algebraic: a monitored key's resident count must merge with
  // its spilled fragments, so DINC flushes states into the buckets.
  bool FlushResidentStatesAtEnd() const override { return true; }
  uint64_t StateBytesHint() const override { return 16; }

 private:
  uint64_t threshold_;
};

// Values-list counting reducer (sort-merge / MR-hash): sums count-states.
class CountingListReducer : public Reducer {
 public:
  explicit CountingListReducer(uint64_t threshold = 0)
      : threshold_(threshold) {}
  void Reduce(std::string_view key, ValueIterator* values,
              Emitter* out) override;

 private:
  uint64_t threshold_;
};

}  // namespace onepass

#endif  // ONEPASS_WORKLOADS_COUNT_WORKLOADS_H_
