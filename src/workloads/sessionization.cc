#include "src/workloads/sessionization.h"

#include <algorithm>
#include <vector>

#include "src/common/logging.h"
#include "src/util/coding.h"

namespace onepass {

namespace {

struct Entry {
  uint64_t ts;
  uint32_t url;
};

// State accessors. Layout: [count: fixed32][count * entry], entry =
// [ts: fixed64][url: fixed32][padding to payload_bytes].
uint32_t StateCount(std::string_view state) {
  return state.size() >= 4 ? DecodeFixed32(state.data()) : 0;
}

Entry StateEntry(std::string_view state, size_t payload_bytes, uint32_t i) {
  const char* p = state.data() + 4 + i * payload_bytes;
  return Entry{DecodeFixed64(p), DecodeFixed32(p + 8)};
}

void AppendStateEntry(std::string* state, size_t payload_bytes,
                      const Entry& e) {
  if (state->empty()) PutFixed32(state, 0);
  const size_t pos = state->size();
  PutFixed64(state, e.ts);
  PutFixed32(state, e.url);
  if (state->size() - pos < payload_bytes) {
    state->resize(pos + payload_bytes, 'x');
  }
  const uint32_t count = DecodeFixed32(state->data()) + 1;
  std::string hdr;
  PutFixed32(&hdr, count);
  state->replace(0, 4, hdr);
}

std::vector<Entry> StateEntries(std::string_view state,
                                size_t payload_bytes) {
  const uint32_t n = StateCount(state);
  std::vector<Entry> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    out.push_back(StateEntry(state, payload_bytes, i));
  }
  return out;
}

void RebuildState(std::string* state, size_t payload_bytes,
                  const std::vector<Entry>& entries) {
  state->clear();
  for (const Entry& e : entries) AppendStateEntry(state, payload_bytes, e);
  if (state->empty()) PutFixed32(state, 0);
}

// Emits entries [begin, end) as sessions split at >5 min gaps. Entries
// must be ts-sorted. Returns the session id (first ts) of the last session
// emitted, for continuity bookkeeping by callers that need it.
void EmitSessions(std::string_view key, const std::vector<Entry>& entries,
                  size_t begin, size_t end, size_t payload_bytes,
                  Emitter* out) {
  if (begin >= end) return;
  uint64_t session = entries[begin].ts;
  uint64_t prev = entries[begin].ts;
  for (size_t i = begin; i < end; ++i) {
    if (entries[i].ts > prev + kSessionGapSeconds) session = entries[i].ts;
    out->Emit(key, EncodeSessionOutput(session, entries[i].ts,
                                       entries[i].url, payload_bytes));
    prev = entries[i].ts;
  }
}

}  // namespace

std::string EncodeClickPayload(uint64_t ts, uint32_t url,
                               size_t payload_bytes) {
  std::string out;
  out.reserve(payload_bytes);
  PutFixed64(&out, ts);
  PutFixed32(&out, url);
  if (out.size() < payload_bytes) out.resize(payload_bytes, 'x');
  return out;
}

bool DecodeClickPayload(std::string_view data, uint64_t* ts, uint32_t* url) {
  if (data.size() < 12) return false;
  *ts = DecodeFixed64(data.data());
  *url = DecodeFixed32(data.data() + 8);
  return true;
}

std::string EncodeSessionOutput(uint64_t session, uint64_t ts, uint32_t url,
                                size_t payload_bytes) {
  std::string out;
  out.reserve(payload_bytes);
  PutFixed64(&out, session);
  PutFixed64(&out, ts);
  PutFixed32(&out, url);
  if (out.size() < payload_bytes) out.resize(payload_bytes, 'x');
  return out;
}

bool DecodeSessionOutput(std::string_view data, uint64_t* session,
                         uint64_t* ts, uint32_t* url) {
  if (data.size() < 20) return false;
  *session = DecodeFixed64(data.data());
  *ts = DecodeFixed64(data.data() + 8);
  *url = DecodeFixed32(data.data() + 16);
  return true;
}

void SessionizationMapper::Map(std::string_view /*key*/,
                               std::string_view value, Emitter* out) {
  Click c;
  if (!DecodeClick(value, &c)) return;
  out->Emit(UserKey(c.user), EncodeClickPayload(c.ts, c.url, payload_bytes_));
}

void SessionizationReducer::Reduce(std::string_view key,
                                   ValueIterator* values, Emitter* out) {
  std::vector<Entry> entries;
  std::string_view v;
  while (values->Next(&v)) {
    Entry e;
    if (DecodeClickPayload(v, &e.ts, &e.url)) entries.push_back(e);
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) { return a.ts < b.ts; });
  EmitSessions(key, entries, 0, entries.size(), payload_bytes_, out);
}

SessionizationIncReducer::SessionizationIncReducer(uint64_t state_bytes,
                                                   size_t payload_bytes)
    : state_bytes_(state_bytes), payload_bytes_(payload_bytes) {
  CHECK_GE(payload_bytes, 12u);
  capacity_clicks_ =
      std::max<size_t>(2, (state_bytes - 4) / payload_bytes);
}

std::string SessionizationIncReducer::Init(std::string_view /*key*/,
                                           std::string_view value) {
  Entry e{0, 0};
  CHECK(DecodeClickPayload(value, &e.ts, &e.url));
  watermark_ = std::max(watermark_, e.ts);
  std::string state;
  AppendStateEntry(&state, payload_bytes_, e);
  return state;
}

void SessionizationIncReducer::Combine(std::string_view /*key*/,
                                       std::string* state,
                                       std::string_view other) {
  // Merge the (usually single-click) other state into ours, keeping the
  // buffer ts-sorted. Shuffle order is approximately temporal, so the
  // common case is an append.
  std::vector<Entry> mine = StateEntries(*state, payload_bytes_);
  const std::vector<Entry> theirs = StateEntries(other, payload_bytes_);
  for (const Entry& e : theirs) {
    watermark_ = std::max(watermark_, e.ts);
    auto it = std::upper_bound(
        mine.begin(), mine.end(), e,
        [](const Entry& a, const Entry& b) { return a.ts < b.ts; });
    mine.insert(it, e);
  }
  RebuildState(state, payload_bytes_, mine);
}

void SessionizationIncReducer::EmitClosedSessions(std::string_view key,
                                                  std::string* state,
                                                  Emitter* out,
                                                  bool emit_all) {
  std::vector<Entry> entries = StateEntries(*state, payload_bytes_);
  if (entries.empty()) return;
  if (emit_all) {
    EmitSessions(key, entries, 0, entries.size(), payload_bytes_, out);
    RebuildState(state, payload_bytes_, {});
    return;
  }
  // Find the start of the trailing open session: the last index i with
  // entries[i].ts > entries[i-1].ts + gap.
  size_t open_start = 0;
  for (size_t i = 1; i < entries.size(); ++i) {
    if (entries[i].ts > entries[i - 1].ts + kSessionGapSeconds) {
      open_start = i;
    }
  }
  size_t emit_upto = open_start;
  // Bounded buffer: if the open session alone overflows the buffer,
  // force-emit its oldest clicks too (they keep their session tag).
  const size_t keep_limit = capacity_clicks_;
  if (entries.size() - emit_upto > keep_limit) {
    emit_upto = entries.size() - keep_limit;
  }
  if (emit_upto == 0) return;
  EmitSessions(key, entries, 0, emit_upto, payload_bytes_, out);
  entries.erase(entries.begin(),
                entries.begin() + static_cast<ptrdiff_t>(emit_upto));
  RebuildState(state, payload_bytes_, entries);
}

void SessionizationIncReducer::OnUpdate(std::string_view key,
                                        std::string* state, Emitter* out) {
  EmitClosedSessions(key, state, out, /*emit_all=*/false);
}

void SessionizationIncReducer::Finalize(std::string_view key,
                                        std::string_view state,
                                        Emitter* out) {
  std::string copy(state);
  EmitClosedSessions(key, &copy, out, /*emit_all=*/true);
}

bool SessionizationIncReducer::TryDiscard(std::string_view key,
                                          std::string* state, Emitter* out) {
  const std::vector<Entry> entries = StateEntries(*state, payload_bytes_);
  if (entries.empty()) return true;
  // All sessions expired relative to the stream watermark? Then no future
  // click can join them: emit and discard instead of spilling (§6.2).
  if (entries.back().ts + kSessionGapSeconds < watermark_) {
    EmitSessions(key, entries, 0, entries.size(), payload_bytes_, out);
    state->clear();
    return true;
  }
  return false;
}

}  // namespace onepass
