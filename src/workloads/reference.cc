#include "src/workloads/reference.h"

#include <algorithm>
#include <unordered_map>

#include "src/workloads/clickstream.h"
#include "src/workloads/sessionization.h"

namespace onepass {

std::vector<Record> ReferenceSessionization(const ChunkStore& input,
                                            size_t payload_bytes) {
  std::unordered_map<uint64_t, std::vector<Click>> by_user;
  for (const Chunk& chunk : input.chunks()) {
    KvBufferReader reader(chunk.records);
    std::string_view k, v;
    while (reader.Next(&k, &v)) {
      Click c;
      if (DecodeClick(v, &c)) by_user[c.user].push_back(c);
    }
  }
  std::vector<Record> out;
  for (auto& [user, clicks] : by_user) {
    std::stable_sort(clicks.begin(), clicks.end(),
                     [](const Click& a, const Click& b) {
                       return a.ts < b.ts;
                     });
    uint64_t session = clicks.front().ts;
    uint64_t prev = clicks.front().ts;
    for (const Click& c : clicks) {
      if (c.ts > prev + kSessionGapSeconds) session = c.ts;
      out.push_back(Record{
          UserKey(user),
          EncodeSessionOutput(session, c.ts, c.url, payload_bytes)});
      prev = c.ts;
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::map<std::string, uint64_t> ReferenceClickCounts(const ChunkStore& input,
                                                     ClickKeyField field) {
  std::map<std::string, uint64_t> counts;
  for (const Chunk& chunk : input.chunks()) {
    KvBufferReader reader(chunk.records);
    std::string_view k, v;
    while (reader.Next(&k, &v)) {
      Click c;
      if (!DecodeClick(v, &c)) continue;
      const std::string key =
          field == ClickKeyField::kUser ? UserKey(c.user) : UrlKey(c.url);
      ++counts[key];
    }
  }
  return counts;
}

std::map<std::string, uint64_t> ReferenceTrigramCounts(
    const ChunkStore& input) {
  std::map<std::string, uint64_t> counts;
  for (const Chunk& chunk : input.chunks()) {
    KvBufferReader reader(chunk.records);
    std::string_view k, v;
    while (reader.Next(&k, &v)) {
      // Same single-space tokenization as TrigramMapper.
      std::vector<std::pair<size_t, size_t>> words;
      size_t start = 0;
      for (size_t i = 0; i <= v.size(); ++i) {
        if (i == v.size() || v[i] == ' ') {
          if (i > start) words.push_back({start, i});
          start = i + 1;
        }
      }
      for (size_t w = 2; w < words.size(); ++w) {
        const size_t b = words[w - 2].first;
        const size_t e = words[w].second;
        ++counts[std::string(v.substr(b, e - b))];
      }
    }
  }
  return counts;
}

}  // namespace onepass
