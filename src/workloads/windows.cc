#include "src/workloads/windows.h"

#include <algorithm>

#include "src/util/coding.h"
#include "src/workloads/clickstream.h"

namespace onepass {

std::string EncodeWindowState(const std::vector<WindowCount>& windows) {
  std::string out;
  PutFixed32(&out, static_cast<uint32_t>(windows.size()));
  for (const WindowCount& w : windows) {
    PutFixed64(&out, w.window_start);
    PutFixed64(&out, w.count);
  }
  return out;
}

std::vector<WindowCount> DecodeWindowState(std::string_view state) {
  std::vector<WindowCount> out;
  if (state.size() < 4) return out;
  const uint32_t n = DecodeFixed32(state.data());
  if (state.size() < 4 + n * 16ull) return out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    const char* p = state.data() + 4 + i * 16;
    out.push_back({DecodeFixed64(p), DecodeFixed64(p + 8)});
  }
  return out;
}

void WindowedClickMapper::Map(std::string_view /*key*/,
                              std::string_view value, Emitter* out) {
  Click c;
  if (!DecodeClick(value, &c)) return;
  const uint64_t start = c.ts - c.ts % window_seconds_;
  out->Emit(UserKey(c.user), EncodeWindowState({{start, 1}}));
}

WindowedCountReducer::WindowedCountReducer(uint64_t window_seconds,
                                           uint64_t lateness_seconds)
    : window_seconds_(window_seconds),
      lateness_seconds_(lateness_seconds) {}

std::string WindowedCountReducer::Init(std::string_view /*key*/,
                                       std::string_view value) {
  // Map output is already window-state encoded; track the watermark.
  for (const WindowCount& w : DecodeWindowState(value)) {
    watermark_ = std::max(watermark_, w.window_start);
  }
  return std::string(value);
}

void WindowedCountReducer::Combine(std::string_view /*key*/,
                                   std::string* state,
                                   std::string_view other) {
  std::vector<WindowCount> mine = DecodeWindowState(*state);
  for (const WindowCount& w : DecodeWindowState(other)) {
    watermark_ = std::max(watermark_, w.window_start);
    auto it = std::lower_bound(
        mine.begin(), mine.end(), w,
        [](const WindowCount& a, const WindowCount& b) {
          return a.window_start < b.window_start;
        });
    if (it != mine.end() && it->window_start == w.window_start) {
      it->count += w.count;
    } else {
      mine.insert(it, w);
    }
  }
  *state = EncodeWindowState(mine);
}

void WindowedCountReducer::EmitClosed(std::string_view key,
                                      std::string* state, Emitter* out,
                                      bool emit_all) {
  std::vector<WindowCount> windows = DecodeWindowState(*state);
  std::vector<WindowCount> open;
  for (const WindowCount& w : windows) {
    const bool closed =
        emit_all ||
        w.window_start + window_seconds_ + lateness_seconds_ <= watermark_;
    if (closed) {
      out->Emit(key, std::to_string(w.window_start) + ":" +
                         std::to_string(w.count));
    } else {
      open.push_back(w);
    }
  }
  if (open.size() != windows.size()) *state = EncodeWindowState(open);
}

void WindowedCountReducer::OnUpdate(std::string_view key,
                                    std::string* state, Emitter* out) {
  EmitClosed(key, state, out, /*emit_all=*/false);
}

void WindowedCountReducer::Finalize(std::string_view key,
                                    std::string_view state, Emitter* out) {
  std::string copy(state);
  EmitClosed(key, &copy, out, /*emit_all=*/true);
}

bool WindowedCountReducer::TryDiscard(std::string_view key,
                                      std::string* state, Emitter* out) {
  // Discardable when every window in the state is already closed: no
  // future tuple can extend them (within the lateness bound).
  for (const WindowCount& w : DecodeWindowState(*state)) {
    if (w.window_start + window_seconds_ + lateness_seconds_ > watermark_) {
      return false;
    }
  }
  EmitClosed(key, state, out, /*emit_all=*/true);
  return true;
}

}  // namespace onepass
