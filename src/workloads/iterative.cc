#include "src/workloads/iterative.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/util/coding.h"

namespace onepass {

std::string EncodeLabel(uint32_t label) {
  std::string out;
  out.reserve(4);
  PutFixed32(&out, label);
  return out;
}

bool DecodeLabel(std::string_view data, uint32_t* label) {
  if (data.size() < 4) return false;
  *label = DecodeFixed32(data.data());
  return true;
}

void MinLabelMapper::Map(std::string_view /*key*/, std::string_view value,
                         Emitter* out) {
  Click c;
  if (!DecodeClick(value, &c)) return;
  out->Emit(UserKey(c.user), EncodeLabel(c.url));
}

std::string MinLabelIncReducer::Init(std::string_view /*key*/,
                                     std::string_view value) {
  return std::string(value);
}

void MinLabelIncReducer::Combine(std::string_view /*key*/, std::string* state,
                                 std::string_view other) {
  uint32_t mine = 0;
  uint32_t theirs = 0;
  if (!DecodeLabel(*state, &mine) || !DecodeLabel(other, &theirs)) return;
  if (theirs < mine) *state = EncodeLabel(theirs);
}

void MinLabelIncReducer::Finalize(std::string_view key,
                                  std::string_view state, Emitter* out) {
  out->Emit(key, state);
}

void MinLabelListReducer::Reduce(std::string_view key, ValueIterator* values,
                                 Emitter* out) {
  uint32_t best = 0;
  bool have = false;
  std::string_view v;
  while (values->Next(&v)) {
    uint32_t label = 0;
    if (!DecodeLabel(v, &label)) continue;
    if (!have || label < best) {
      best = label;
      have = true;
    }
  }
  if (have) out->Emit(key, EncodeLabel(best));
}

JobSpec LabelPropagationJob() {
  JobSpec spec;
  spec.name = "label propagation";
  spec.mapper = []() { return std::make_unique<MinLabelMapper>(); };
  spec.reducer = []() { return std::make_unique<MinLabelListReducer>(); };
  spec.inc = []() { return std::make_unique<MinLabelIncReducer>(); };
  return spec;
}

GrowingLog MakeGrowingClickLog(const ClickStreamConfig& config,
                               int iterations, double growth_fraction,
                               uint64_t chunk_bytes, int nodes,
                               int replication) {
  iterations = std::max(1, iterations);
  growth_fraction = std::clamp(growth_fraction, 0.0, 1.0);

  ChunkStore all(chunk_bytes, nodes, replication);
  GenerateClickStream(config, &all);

  const uint64_t total = all.total_records();
  uint64_t delta = iterations > 1
                       ? static_cast<uint64_t>(
                             static_cast<double>(total) * growth_fraction)
                       : 0;
  if (iterations > 1) {
    delta = std::max<uint64_t>(1, delta);
    // Keep at least one record in the base round.
    const uint64_t rounds = static_cast<uint64_t>(iterations - 1);
    if (delta * rounds >= total) {
      delta = std::max<uint64_t>(1, (total - 1) / rounds);
    }
  }
  // bounds[i] = number of records visible after round i.
  std::vector<uint64_t> bounds(static_cast<size_t>(iterations));
  for (int i = 0; i < iterations; ++i) {
    bounds[static_cast<size_t>(i)] =
        i + 1 == iterations
            ? total
            : total - delta * static_cast<uint64_t>(iterations - 1 - i);
  }

  GrowingLog log;
  for (int i = 0; i < iterations; ++i) {
    log.deltas.push_back(
        std::make_unique<ChunkStore>(chunk_bytes, nodes, replication));
    log.fulls.push_back(
        std::make_unique<ChunkStore>(chunk_bytes, nodes, replication));
  }

  uint64_t idx = 0;
  for (const Chunk& chunk : all.chunks()) {
    KvBufferReader reader(chunk.records);
    std::string_view k;
    std::string_view v;
    while (reader.Next(&k, &v)) {
      size_t round = 0;
      while (round + 1 < bounds.size() && idx >= bounds[round]) ++round;
      log.deltas[round]->Append(k, v);
      for (size_t i = round; i < bounds.size(); ++i) {
        log.fulls[i]->Append(k, v);
      }
      ++idx;
    }
  }
  for (int i = 0; i < iterations; ++i) {
    log.deltas[static_cast<size_t>(i)]->Seal();
    log.fulls[static_cast<size_t>(i)]->Seal();
  }
  return log;
}

}  // namespace onepass
