// Windowed stream aggregation — the paper's §8 future-work direction
// ("stream query processing with window operations"), built on the
// INC-hash machinery.
//
// WindowedCountReducer counts clicks per (key, tumbling window). Its state
// holds the open windows' partial counts; OnUpdate closes windows as the
// task-wide watermark (the largest timestamp seen) passes their end plus
// an allowed-lateness slack, emitting one record per closed window:
//   key = user/url key,  value = "<window_start>:<count>".
//
// This is exactly the kind of computation INC-hash enables and sort-merge
// cannot do one-pass: windows for hot keys stream out of memory
// continuously while the job is still reading input; DINC-hash's eviction
// hook can discard states whose windows have all closed.
//
// State layout: [num_windows: fixed32] then per window
//   [window_start: fixed64][count: fixed64], sorted by window_start.

#ifndef ONEPASS_WORKLOADS_WINDOWS_H_
#define ONEPASS_WORKLOADS_WINDOWS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/mr/api.h"

namespace onepass {

struct WindowCount {
  uint64_t window_start = 0;
  uint64_t count = 0;
};

// Window-state encoding helpers (exposed for tests).
std::string EncodeWindowState(const std::vector<WindowCount>& windows);
std::vector<WindowCount> DecodeWindowState(std::string_view state);

// Map: key = user key, value = window-state with one count at the click's
// window. Timestamps come from the click record.
class WindowedClickMapper : public Mapper {
 public:
  explicit WindowedClickMapper(uint64_t window_seconds)
      : window_seconds_(window_seconds) {}
  void Map(std::string_view key, std::string_view value,
           Emitter* out) override;

 private:
  uint64_t window_seconds_;
};

class WindowedCountReducer : public IncrementalReducer {
 public:
  // window_seconds: tumbling window length; lateness_seconds: how long
  // past a window's end the watermark must be before it closes (absorbs
  // the bounded shuffle disorder).
  WindowedCountReducer(uint64_t window_seconds, uint64_t lateness_seconds);

  std::string Init(std::string_view key, std::string_view value) override;
  void Combine(std::string_view key, std::string* state,
               std::string_view other) override;
  void Finalize(std::string_view key, std::string_view state,
                Emitter* out) override;
  void OnUpdate(std::string_view key, std::string* state,
                Emitter* out) override;
  bool TryDiscard(std::string_view key, std::string* state,
                  Emitter* out) override;
  bool FlushResidentStatesAtEnd() const override { return false; }
  uint64_t StateBytesHint() const override { return 128; }

  uint64_t watermark() const { return watermark_; }

 private:
  // Emits and removes every window closed relative to the watermark
  // (or all of them, at finalize).
  void EmitClosed(std::string_view key, std::string* state, Emitter* out,
                  bool emit_all);

  uint64_t window_seconds_;
  uint64_t lateness_seconds_;
  uint64_t watermark_ = 0;
};

}  // namespace onepass

#endif  // ONEPASS_WORKLOADS_WINDOWS_H_
