// Iterative and repeated-job workloads for the resident shuffle engine
// (DESIGN.md §5.9).
//
// Two shapes of repetition show up in one-pass analytics pipelines:
//
//  * The *same* job re-run over the *same* input — label propagation
//    (connected-components style): each user's label is the minimum url
//    id it ever clicked, recomputed every round. min is idempotent and
//    algebraic, so a resident chain re-running the job is byte-exact
//    against a cold run, while reusing the cached input, the pinned
//    placement, and (INC/DINC) the prior reduce state.
//
//  * The same job re-run over a *growing* input — repeated
//    sessionization / counting over a log that gains a delta of new
//    records between rounds. A resident chain feeds only the delta to
//    iteration i+1 and restores iteration i's reduce state; a cold job
//    must rescan the whole log. MakeGrowingClickLog builds the matched
//    pair of views (per-round deltas and cumulative fulls) from one
//    generated stream so warm and cold runs see identical records.
//
// For algebraic workloads (counting, min-label) the chain's final
// iteration emits exactly what one cold job over the full log emits —
// the basis of the exactness checks in tests/job_chain_test.cc and
// bench_iterative.

#ifndef ONEPASS_WORKLOADS_ITERATIVE_H_
#define ONEPASS_WORKLOADS_ITERATIVE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/mr/cluster.h"
#include "src/workloads/clickstream.h"

namespace onepass {

// Label state: [label: fixed32].
std::string EncodeLabel(uint32_t label);
bool DecodeLabel(std::string_view data, uint32_t* label);

// Map: click -> (user key, label state of the clicked url).
class MinLabelMapper : public Mapper {
 public:
  void Map(std::string_view key, std::string_view value,
           Emitter* out) override;
};

// init = identity, cb = min, fn = emit the minimum label.
class MinLabelIncReducer : public IncrementalReducer {
 public:
  std::string Init(std::string_view key, std::string_view value) override;
  void Combine(std::string_view key, std::string* state,
               std::string_view other) override;
  void Finalize(std::string_view key, std::string_view state,
                Emitter* out) override;
  // min is algebraic: a resident state must merge with spilled fragments.
  bool FlushResidentStatesAtEnd() const override { return true; }
  uint64_t StateBytesHint() const override { return 4; }
};

// Values-list form (sort-merge / MR-hash): min over the value list.
class MinLabelListReducer : public Reducer {
 public:
  void Reduce(std::string_view key, ValueIterator* values,
              Emitter* out) override;
};

// Connected-components-style label propagation over the clickstream
// graph: every engine contract is provided, so the job runs on all four
// engines and in resident chains.
JobSpec LabelPropagationJob();

// A click log that grows by a fixed delta between analysis rounds.
// deltas[0] is the base log; deltas[i>0] holds only round i's new
// records; fulls[i] is the cumulative log after round i (base plus
// deltas 1..i). fulls.back() contains every generated record. All
// stores are sealed and share chunk geometry, so a warm chain over the
// deltas and a cold job over fulls[i] consume identical record bytes.
struct GrowingLog {
  std::vector<std::unique_ptr<ChunkStore>> deltas;
  std::vector<std::unique_ptr<ChunkStore>> fulls;
};

// Generates one click stream and splits it into `iterations` rounds.
// growth_fraction is the share of total records arriving per round after
// the first (clamped so the base keeps at least one record).
GrowingLog MakeGrowingClickLog(const ClickStreamConfig& config,
                               int iterations, double growth_fraction,
                               uint64_t chunk_bytes, int nodes,
                               int replication = 1);

}  // namespace onepass

#endif  // ONEPASS_WORKLOADS_ITERATIVE_H_
