// Discrete-event simulation core.
//
// The platform's *data plane* executes for real (records move through real
// hash tables, sort buffers, and spill payloads); the *time plane* is
// simulated: every task records a cost trace (CPU seconds, disk and network
// operations), and this engine replays those traces against per-node
// resources to obtain task start/finish times, progress curves, CPU
// utilization, and iowait timelines on the paper's 10-node cluster.
//
// Determinism: events are ordered by (time, stream, seq). The stream tag
// exists for multi-job replays (DESIGN.md §5.7): each job schedules its
// events under its own stream id, so simultaneous events from different
// jobs pop in (job, insertion) order no matter how the jobs interleaved
// while scheduling them. Single-job simulations leave every event on
// stream 0 and get the historical pure (time, seq) order. A callback's
// own ScheduleAt/ScheduleAfter calls inherit the stream of the event
// being processed, so a job's causal chain stays on its stream without
// every call site naming it.

#ifndef ONEPASS_SIM_EVENT_QUEUE_H_
#define ONEPASS_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

namespace onepass::sim {

class Engine {
 public:
  using Callback = std::function<void()>;

  // Schedules `cb` to run at absolute simulated time `time` (>= now()),
  // on the stream of the event currently being processed (stream 0 when
  // called from outside the event loop).
  void ScheduleAt(double time, Callback cb) {
    ScheduleAtStream(time, current_stream_, std::move(cb));
  }

  // Schedules `cb` at `time` on an explicit stream. Streams break timestamp
  // ties ahead of insertion order: (time, stream, seq).
  void ScheduleAtStream(double time, uint64_t stream, Callback cb);

  // Schedules `cb` after a delay from now (inheriting the current stream).
  void ScheduleAfter(double delay, Callback cb) {
    ScheduleAtStream(now_ + delay, current_stream_, std::move(cb));
  }

  void ScheduleAfterStream(double delay, uint64_t stream, Callback cb) {
    ScheduleAtStream(now_ + delay, stream, std::move(cb));
  }

  // Runs until the event queue drains. Returns the final simulated time.
  double Run();

  double now() const { return now_; }
  // Stream of the event currently being processed (0 outside the loop).
  uint64_t current_stream() const { return current_stream_; }
  uint64_t events_processed() const { return events_processed_; }

 private:
  struct Event {
    double time;
    uint64_t stream;
    uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.stream != b.stream) return a.stream > b.stream;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  double now_ = 0;
  uint64_t current_stream_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
};

}  // namespace onepass::sim

#endif  // ONEPASS_SIM_EVENT_QUEUE_H_
