// Discrete-event simulation core.
//
// The platform's *data plane* executes for real (records move through real
// hash tables, sort buffers, and spill payloads); the *time plane* is
// simulated: every task records a cost trace (CPU seconds, disk and network
// operations), and this engine replays those traces against per-node
// resources to obtain task start/finish times, progress curves, CPU
// utilization, and iowait timelines on the paper's 10-node cluster.
//
// Determinism: events at equal timestamps are ordered by insertion sequence
// number, so a simulation is a pure function of its inputs.

#ifndef ONEPASS_SIM_EVENT_QUEUE_H_
#define ONEPASS_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

namespace onepass::sim {

class Engine {
 public:
  using Callback = std::function<void()>;

  // Schedules `cb` to run at absolute simulated time `time` (>= now()).
  void ScheduleAt(double time, Callback cb);

  // Schedules `cb` after a delay from now.
  void ScheduleAfter(double delay, Callback cb) {
    ScheduleAt(now_ + delay, std::move(cb));
  }

  // Runs until the event queue drains. Returns the final simulated time.
  double Run();

  double now() const { return now_; }
  uint64_t events_processed() const { return events_processed_; }

 private:
  struct Event {
    double time;
    uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  double now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
};

}  // namespace onepass::sim

#endif  // ONEPASS_SIM_EVENT_QUEUE_H_
