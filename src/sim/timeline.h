// Post-run timeline computation: utilization, iowait, and counter series.
//
// Reproduces the measurement style of the paper's Fig. 2 / Fig. 4(d,e):
// per-bin CPU utilization (busy cores / total cores), CPU iowait (fraction
// of time cores are idle while the disk is busy or has queued requests),
// and step-series of monotoniccounters (progress, task counts).

#ifndef ONEPASS_SIM_TIMELINE_H_
#define ONEPASS_SIM_TIMELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/resources.h"

namespace onepass::sim {

// A uniformly binned time series.
struct BinnedSeries {
  double bin_seconds = 0;
  std::vector<double> values;  // values[i] covers [i*bin, (i+1)*bin)

  double ValueAt(double time) const;
};

// Integrates busy/capacity of `server` into bins of `bin_seconds` covering
// [0, horizon).
BinnedSeries UtilizationSeries(const Server& server, double bin_seconds,
                               double horizon);

// iowait-style series: fraction of each bin during which the disk is active
// (busy or queued) AND at least one CPU core is idle. This mirrors what the
// kernel reports as %iowait on the paper's cluster plots.
BinnedSeries IowaitSeries(const Server& cpu, const Server& disk,
                          double bin_seconds, double horizon);

// A monotone step series of (time, value) points, e.g. progress curves.
struct StepSeries {
  std::vector<double> times;
  std::vector<double> values;

  void Add(double time, double value);
  // Last value at or before `time` (0 before the first point).
  double ValueAt(double time) const;
  double FinalValue() const { return values.empty() ? 0.0 : values.back(); }
};

// Renders series as aligned text columns for bench output: one row per
// sample time (union of grids), one column per named series.
std::string RenderSeriesTable(const std::vector<std::string>& names,
                              const std::vector<StepSeries>& series,
                              int num_rows);

}  // namespace onepass::sim

#endif  // ONEPASS_SIM_TIMELINE_H_
