#include "src/sim/resources.h"

#include "src/common/logging.h"

namespace onepass::sim {

Server::Server(Engine* engine, int capacity, std::string name)
    : engine_(engine), capacity_(capacity), name_(std::move(name)) {
  CHECK_GE(capacity, 1);
  samples_.push_back({0.0, 0, 0});
}

void Server::Submit(double duration, Engine::Callback done) {
  Submit(duration, engine_->current_stream(), std::move(done));
}

void Server::Submit(double duration, uint64_t stream, Engine::Callback done) {
  CHECK_GE(duration, 0.0);
  queue_.push_back(Job{duration, stream, std::move(done)});
  RecordSample();
  if (busy_ < capacity_) StartNext();
}

void Server::StartNext() {
  CHECK(!queue_.empty());
  CHECK_LT(busy_, capacity_);
  Job job = std::move(queue_.front());
  queue_.pop_front();
  ++busy_;
  busy_time_ += job.duration;
  RecordSample();
  engine_->ScheduleAfterStream(
      job.duration, job.stream, [this, done = std::move(job.done)]() mutable {
        --busy_;
        RecordSample();
        // Start a waiting job before delivering the completion, so resource
        // handoff does not depend on what the callback schedules.
        if (!queue_.empty() && busy_ < capacity_) StartNext();
        done();
      });
}

void Server::RecordSample() {
  const double t = engine_->now();
  if (!samples_.empty() && samples_.back().time == t) {
    samples_.back().busy = busy_;
    samples_.back().queued = queued();
  } else {
    samples_.push_back({t, busy_, queued()});
  }
}

}  // namespace onepass::sim
