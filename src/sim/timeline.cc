#include "src/sim/timeline.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/common/logging.h"

namespace onepass::sim {

namespace {

// Integrates a piecewise-constant function given by state-change samples
// into uniform bins; `extract` maps a sample to the function value.
template <typename Extract>
BinnedSeries Integrate(const std::vector<Server::Sample>& samples,
                       double bin_seconds, double horizon, Extract extract) {
  BinnedSeries out;
  out.bin_seconds = bin_seconds;
  const int bins = std::max(1, static_cast<int>(std::ceil(horizon / bin_seconds)));
  out.values.assign(bins, 0.0);
  if (samples.empty()) return out;

  // Bin boundaries are computed by index (not by accumulating segment
  // lengths), so floating-point drift can neither spin the loop nor drop
  // mass. The integration range is capped at the bin grid's end.
  const double range_end = bins * bin_seconds;
  for (size_t i = 0; i < samples.size(); ++i) {
    const double t0 = samples[i].time;
    const double t1 =
        (i + 1 < samples.size()) ? samples[i + 1].time : horizon;
    if (t1 <= t0) continue;
    const double v = extract(samples[i]);
    // Spread v over [a, b).
    const double a = t0;
    const double b = std::min({t1, horizon, range_end});
    if (a >= b) continue;
    const int first =
        std::clamp(static_cast<int>(a / bin_seconds), 0, bins - 1);
    const int last =
        std::clamp(static_cast<int>(b / bin_seconds), 0, bins - 1);
    for (int k = first; k <= last; ++k) {
      const double lo = std::max(a, k * bin_seconds);
      const double hi = std::min(b, (k + 1) * bin_seconds);
      if (hi > lo) out.values[k] += v * (hi - lo);
    }
  }
  for (auto& v : out.values) v /= bin_seconds;
  return out;
}

}  // namespace

double BinnedSeries::ValueAt(double time) const {
  if (values.empty() || bin_seconds <= 0) return 0.0;
  int bin = static_cast<int>(time / bin_seconds);
  bin = std::clamp(bin, 0, static_cast<int>(values.size()) - 1);
  return values[bin];
}

BinnedSeries UtilizationSeries(const Server& server, double bin_seconds,
                               double horizon) {
  const double cap = server.capacity();
  return Integrate(server.samples(), bin_seconds, horizon,
                   [cap](const Server::Sample& s) { return s.busy / cap; });
}

BinnedSeries IowaitSeries(const Server& cpu, const Server& disk,
                          double bin_seconds, double horizon) {
  // Merge the two sample streams into a combined piecewise-constant
  // indicator: disk active && cpu has an idle core.
  const auto& cs = cpu.samples();
  const auto& ds = disk.samples();
  std::vector<Server::Sample> merged;
  merged.reserve(cs.size() + ds.size());
  size_t i = 0, j = 0;
  int cpu_busy = 0, disk_busy = 0, disk_q = 0;
  auto emit = [&](double t) {
    const bool active = (disk_busy > 0 || disk_q > 0);
    const bool idle_core = cpu_busy < cpu.capacity();
    merged.push_back({t, (active && idle_core) ? 1 : 0, 0});
  };
  while (i < cs.size() || j < ds.size()) {
    double t;
    if (j >= ds.size() || (i < cs.size() && cs[i].time <= ds[j].time)) {
      t = cs[i].time;
      cpu_busy = cs[i].busy;
      ++i;
    } else {
      t = ds[j].time;
      disk_busy = ds[j].busy;
      disk_q = ds[j].queued;
      ++j;
    }
    emit(t);
  }
  return Integrate(merged, bin_seconds, horizon,
                   [](const Server::Sample& s) {
                     return static_cast<double>(s.busy);
                   });
}

void StepSeries::Add(double time, double value) {
  if (!times.empty() && times.back() == time) {
    values.back() = value;
    return;
  }
  CHECK(times.empty() || time >= times.back());
  times.push_back(time);
  values.push_back(value);
}

double StepSeries::ValueAt(double time) const {
  auto it = std::upper_bound(times.begin(), times.end(), time);
  if (it == times.begin()) return 0.0;
  return values[static_cast<size_t>(it - times.begin()) - 1];
}

std::string RenderSeriesTable(const std::vector<std::string>& names,
                              const std::vector<StepSeries>& series,
                              int num_rows) {
  CHECK_EQ(names.size(), series.size());
  double horizon = 0;
  for (const auto& s : series) {
    if (!s.times.empty()) horizon = std::max(horizon, s.times.back());
  }
  std::string out = "  time(s)";
  for (const auto& n : names) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), " %14s", n.c_str());
    out += buf;
  }
  out += "\n";
  for (int r = 0; r <= num_rows; ++r) {
    const double t = horizon * r / num_rows;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%9.1f", t);
    out += buf;
    for (const auto& s : series) {
      std::snprintf(buf, sizeof(buf), " %14.3f", s.ValueAt(t));
      out += buf;
    }
    out += "\n";
  }
  return out;
}

}  // namespace onepass::sim
