// RetryPolicy: shared exponential-backoff schedule for every retried
// operation in the time plane — shuffle fetches, checkpoint-replica reads,
// and chunk re-replication all back off the same way instead of each
// hardcoding its own constants.
//
// Attempt i (0-based) waits BackoffFor(i, key) simulated seconds before
// retrying: base_backoff_s * multiplier^i, optionally stretched by a
// seeded jitter drawn from `key` (a pure counter-based draw, like every
// FaultPlan decision — no shared RNG state, so schedules stay
// byte-identical run to run). jitter = 0 (the default) reproduces the
// platform's historical fixed schedule exactly.

#ifndef ONEPASS_SIM_RETRY_POLICY_H_
#define ONEPASS_SIM_RETRY_POLICY_H_

#include <cstdint>

#include "src/common/status.h"

namespace onepass::sim {

namespace retry_detail {

// SplitMix64 finalizer, same mixer the FaultPlan draws use.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline double ToUnit(uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace retry_detail

struct RetryPolicy {
  // First backoff, in simulated seconds.
  double base_backoff_s = 0.05;
  // An operation fails transiently at most this many times before it is
  // forced to succeed (or the caller escalates).
  int max_retries = 4;
  // Backoff growth per attempt (2.0 = classic exponential doubling).
  double multiplier = 2.0;
  // Fraction of the deterministic backoff added as seeded jitter: the
  // actual wait is backoff * (1 + jitter * u) with u in [0, 1) drawn
  // purely from `key` and the attempt index. 0 disables jitter.
  double jitter = 0.0;

  // Backoff before retry `try_i` (0-based). `key` seeds the jitter draw;
  // callers pass a stable identity for the retried operation so the
  // schedule is a pure function of (policy, key, try_i).
  double BackoffFor(int try_i, uint64_t key) const {
    double backoff = base_backoff_s;
    for (int i = 0; i < try_i; ++i) backoff *= multiplier;
    if (jitter > 0) {
      const uint64_t draw = retry_detail::Mix64(
          key ^ retry_detail::Mix64(0x5e77ULL + static_cast<uint64_t>(try_i)));
      backoff *= 1.0 + jitter * retry_detail::ToUnit(draw);
    }
    return backoff;
  }

  Status Validate() const {
    if (base_backoff_s < 0) {
      return Status::InvalidArgument("negative retry base_backoff_s");
    }
    if (max_retries < 0) {
      return Status::InvalidArgument("negative retry max_retries");
    }
    if (multiplier < 1.0) {
      return Status::InvalidArgument("retry multiplier must be >= 1");
    }
    if (jitter < 0 || jitter > 1.0) {
      return Status::InvalidArgument("retry jitter outside [0, 1]");
    }
    return Status::OK();
  }
};

}  // namespace onepass::sim

#endif  // ONEPASS_SIM_RETRY_POLICY_H_
