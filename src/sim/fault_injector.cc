#include "src/sim/fault_injector.h"

#include <cmath>
#include <string>

namespace onepass::sim {
namespace {

// SplitMix64: the finalizer alone is a strong 64->64 mixer, which is all a
// counter-based (stateless) draw needs.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double ToUnit(uint64_t x) {
  // 53 random bits -> [0, 1).
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

// Draws from the geometric distribution P(failures >= k) = rate^k using a
// single uniform: failures = floor(log(u) / log(rate)).
int GeometricFailures(double u, double rate, int cap) {
  if (rate <= 0 || cap <= 0) return 0;
  if (u >= rate) return 0;  // common case: no failure
  const int n = static_cast<int>(std::log(u) / std::log(rate));
  return n < cap ? n : cap;
}

}  // namespace

bool FaultConfig::any() const {
  if (!crashes.empty() || !stragglers.empty()) return true;
  if (disk_error_rate > 0 || fetch_failure_rate > 0) return true;
  if (corruption_rate > 0) return true;
  return speculative_execution;
}

Status FaultConfig::Validate(int nodes) const {
  for (const CrashEvent& c : crashes) {
    if (c.node < 0 || c.node >= nodes) {
      return Status::InvalidArgument("crash node " + std::to_string(c.node) +
                                     " outside cluster of " +
                                     std::to_string(nodes));
    }
    const int triggers = (c.time >= 0 ? 1 : 0) +
                         (c.at_map_fraction > 0 ? 1 : 0) +
                         (c.at_reduce_fraction > 0 ? 1 : 0);
    if (triggers != 1) {
      return Status::InvalidArgument(
          "crash needs exactly one of time >= 0, at_map_fraction in "
          "(0, 1], or at_reduce_fraction in (0, 1]");
    }
    if (c.at_map_fraction > 1.0) {
      return Status::InvalidArgument("crash at_map_fraction > 1");
    }
    if (c.at_reduce_fraction > 1.0) {
      return Status::InvalidArgument("crash at_reduce_fraction > 1");
    }
  }
  for (const StragglerSpec& s : stragglers) {
    if (s.node < 0 || s.node >= nodes) {
      return Status::InvalidArgument("straggler node outside cluster");
    }
    if (s.cpu_factor < 1.0 || s.disk_factor < 1.0) {
      return Status::InvalidArgument("straggler factors must be >= 1");
    }
  }
  if (disk_error_rate < 0 || disk_error_rate >= 1.0) {
    return Status::InvalidArgument("disk_error_rate must be in [0, 1)");
  }
  if (fetch_failure_rate < 0 || fetch_failure_rate >= 1.0) {
    return Status::InvalidArgument("fetch_failure_rate must be in [0, 1)");
  }
  {
    const Status retry = fetch_retry.Validate();
    if (!retry.ok()) return retry;
  }
  if (max_attempts < 1) {
    return Status::InvalidArgument("max_attempts must be >= 1");
  }
  if (speculation_slowness < 1.0) {
    return Status::InvalidArgument("speculation_slowness must be >= 1");
  }
  if (speculation_min_done_fraction < 0 ||
      speculation_min_done_fraction > 1.0) {
    return Status::InvalidArgument(
        "speculation_min_done_fraction outside [0, 1]");
  }
  if (speculation_check_s <= 0) {
    return Status::InvalidArgument("speculation_check_s must be > 0");
  }
  if (corruption_rate < 0 || corruption_rate >= 1.0) {
    return Status::InvalidArgument("corruption_rate must be in [0, 1)");
  }
  {
    const Status retry = corruption_retry.Validate();
    if (!retry.ok()) return retry;
  }
  return Status::OK();
}

FaultPlan::FaultPlan(const FaultConfig& config, uint64_t seed)
    : config_(config), seed_(Mix64(seed) ^ Mix64(seed + 0xfa017ULL)) {}

double FaultPlan::CpuFactor(int node) const {
  for (const StragglerSpec& s : config_.stragglers) {
    if (s.node == node) return s.cpu_factor;
  }
  return 1.0;
}

double FaultPlan::DiskFactor(int node) const {
  for (const StragglerSpec& s : config_.stragglers) {
    if (s.node == node) return s.disk_factor;
  }
  return 1.0;
}

int FaultPlan::FetchFailures(int reduce_task, int map_task,
                             uint32_t push) const {
  if (config_.fetch_failure_rate <= 0) return 0;
  const uint64_t key =
      Mix64(seed_ ^ Mix64(0xfe7c4ULL ^
                          (static_cast<uint64_t>(reduce_task) << 40) ^
                          (static_cast<uint64_t>(map_task) << 16) ^ push));
  return GeometricFailures(ToUnit(key), config_.fetch_failure_rate,
                           config_.fetch_retry.max_retries);
}

int FaultPlan::DiskReadFailures(bool is_map, int task, int attempt,
                                uint64_t op_idx) const {
  if (config_.disk_error_rate <= 0) return 0;
  const uint64_t key = Mix64(
      seed_ ^ Mix64((is_map ? 0x1111ULL : 0x2222ULL) ^
                    (static_cast<uint64_t>(task) << 32) ^
                    (static_cast<uint64_t>(attempt) << 24) ^ (op_idx << 2)));
  // A read is retried at most 3 times: disk errors here model transient
  // sector hiccups, not device loss (that is the crash model).
  return GeometricFailures(ToUnit(key), config_.disk_error_rate, 3);
}

namespace {

uint64_t StreamKey(uint64_t seed, StreamKind kind, uint64_t a, uint64_t b) {
  return Mix64(seed ^ Mix64(0xc0440ULL ^
                            (static_cast<uint64_t>(kind) << 56) ^
                            Mix64(a + 1) ^ (b << 1)));
}

}  // namespace

int FaultPlan::CorruptionChain(StreamKind kind, uint64_t a,
                               uint64_t b) const {
  if (config_.corruption_rate <= 0) return 0;
  const uint64_t key = StreamKey(seed_, kind, a, b);
  // Unlike the transient draws, a chain counts corrupt *copies*, so a
  // stream with any corruption has chain >= 1: first copy corrupt with
  // probability rate, each rebuild again with probability rate.
  const double u = ToUnit(key);
  if (u >= config_.corruption_rate) return 0;
  return 1 + GeometricFailures(u / config_.corruption_rate,
                               config_.corruption_rate, 2);
}

CorruptionEvent FaultPlan::CorruptionDamage(StreamKind kind, uint64_t a,
                                            uint64_t b, int gen,
                                            uint64_t framed_bytes) const {
  CorruptionEvent ev;
  if (framed_bytes == 0 || gen >= CorruptionChain(kind, a, b)) return ev;
  const uint64_t key =
      Mix64(StreamKey(seed_, kind, a, b) ^ (0x9a11ULL + gen));
  if (config_.torn_writes && framed_bytes >= 2 &&
      (Mix64(key ^ 0x70a4ULL) & 1)) {
    ev.torn = true;
    // Truncate to [1, framed_bytes - 1] bytes so the damage is never a
    // no-op and never leaves an empty stream trivially.
    ev.bit = static_cast<int64_t>(8 * (1 + key % (framed_bytes - 1)));
  } else {
    ev.bit = static_cast<int64_t>(key % (8 * framed_bytes));
  }
  return ev;
}

int FaultPlan::MapOutputCorruptions(int map_task, uint32_t push) const {
  return CorruptionChain(StreamKind::kMapOutput,
                         static_cast<uint64_t>(map_task), push);
}

int FaultPlan::FetchCorruptions(int reduce_task, int map_task,
                                uint32_t push) const {
  return CorruptionChain(StreamKind::kShuffleWire,
                         static_cast<uint64_t>(reduce_task),
                         (static_cast<uint64_t>(map_task) << 24) | push);
}

int FaultPlan::CheckpointCorruptions(int reduce_task, uint32_t ordinal,
                                     int replica_slot) const {
  return CorruptionChain(StreamKind::kCheckpoint,
                         static_cast<uint64_t>(reduce_task),
                         (static_cast<uint64_t>(ordinal) << 8) |
                             static_cast<uint64_t>(replica_slot));
}

}  // namespace onepass::sim
