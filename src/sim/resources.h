// Simulated resources: k-server FCFS queues with busy-interval tracking.
//
// Each cluster node owns a CPU pool (capacity = cores), one or two disk
// queues (capacity 1: HDD, and optionally an SSD for the Fig. 2(d)
// experiment), and a NIC (capacity 1). Tasks submit work items (service
// durations) and are called back on completion.
//
// Busy-count change events are recorded so that utilization and iowait
// timelines can be computed after the run (src/sim/timeline.h).

#ifndef ONEPASS_SIM_RESOURCES_H_
#define ONEPASS_SIM_RESOURCES_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/event_queue.h"

namespace onepass::sim {

// A resource with `capacity` identical servers and a FIFO queue.
class Server {
 public:
  Server(Engine* engine, int capacity, std::string name);

  // Enqueues a job with the given service duration; `done` fires when the
  // job finishes service. The job is tagged with the engine's current event
  // stream so its completion event keeps the submitter's (stream, seq)
  // determinism rank even when service starts later, during another
  // stream's event (a queued job behind another tenant's I/O).
  void Submit(double duration, Engine::Callback done);

  // Same, with an explicit stream tag.
  void Submit(double duration, uint64_t stream, Engine::Callback done);

  int capacity() const { return capacity_; }
  int busy() const { return busy_; }
  int queued() const { return static_cast<int>(queue_.size()); }

  // (time, busy_servers, queue_length) at every state change, in time order.
  struct Sample {
    double time;
    int busy;
    int queued;
  };
  const std::vector<Sample>& samples() const { return samples_; }

  // Total service time delivered (sum of all job durations completed).
  double busy_time() const { return busy_time_; }

 private:
  struct Job {
    double duration;
    uint64_t stream;
    Engine::Callback done;
  };

  void StartNext();
  void RecordSample();

  Engine* engine_;
  int capacity_;
  std::string name_;
  int busy_ = 0;
  std::deque<Job> queue_;
  std::vector<Sample> samples_;
  double busy_time_ = 0;
};

}  // namespace onepass::sim

#endif  // ONEPASS_SIM_RESOURCES_H_
