#include "src/sim/event_queue.h"

#include "src/common/logging.h"

namespace onepass::sim {

void Engine::ScheduleAtStream(double time, uint64_t stream, Callback cb) {
  CHECK_GE(time, now_);
  queue_.push(Event{time, stream, next_seq_++, std::move(cb)});
}

double Engine::Run() {
  while (!queue_.empty()) {
    // priority_queue::top returns const&; move the callback out via a copy
    // of the event (callbacks are small).
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    current_stream_ = ev.stream;
    ++events_processed_;
    ev.cb();
  }
  current_stream_ = 0;
  return now_;
}

}  // namespace onepass::sim
