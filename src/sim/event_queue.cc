#include "src/sim/event_queue.h"

#include "src/common/logging.h"

namespace onepass::sim {

void Engine::ScheduleAt(double time, Callback cb) {
  CHECK_GE(time, now_);
  queue_.push(Event{time, next_seq_++, std::move(cb)});
}

double Engine::Run() {
  while (!queue_.empty()) {
    // priority_queue::top returns const&; move the callback out via a copy
    // of the event (callbacks are small).
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    ++events_processed_;
    ev.cb();
  }
  return now_;
}

}  // namespace onepass::sim
