// Deterministic fault injection for the simulated time plane.
//
// A FaultPlan is a pure function of (FaultConfig, seed): it fixes, before
// the simulation starts, which nodes crash and when, which nodes straggle
// (and by how much), and — via counter-based hashing — how many times any
// given shuffle fetch or disk read fails transiently. No wall clock, no
// shared RNG state: the same plan replayed against the same cluster yields
// a byte-identical schedule, which is what makes recovery testable
// (ISSUE 1's determinism-under-faults property).
//
// Fault taxonomy (DESIGN.md §5 "Fault model"):
//   * Node crash: fail-stop at a simulated time (or when map progress
//     crosses a fraction). The node's running tasks die, its disk contents
//     (map outputs, reduce state) are lost, and it never rejoins.
//   * Transient disk-read error: a read must be retried; costs extra seek
//     + transfer time on the same device.
//   * Transient shuffle-fetch failure: a reducer's fetch of one map-output
//     segment fails; retried with exponential backoff, bounded by
//     max_fetch_retries (after which the fetch succeeds — "transient").
//   * Straggler: a node whose CPU and/or disk run slower by a constant
//     factor, the trigger for speculative execution.

#ifndef ONEPASS_SIM_FAULT_INJECTOR_H_
#define ONEPASS_SIM_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"

namespace onepass::sim {

// One scheduled fail-stop crash. Exactly one of `time` (absolute simulated
// seconds) or `at_map_fraction` (crash when this fraction of map tasks has
// completed, e.g. 0.5 = mid-map) must be set.
struct CrashEvent {
  int node = -1;
  double time = -1;             // absolute simulated time, or < 0
  double at_map_fraction = -1;  // in (0, 1], or < 0
};

// A node that runs slow: op durations on it are multiplied by the factor
// for the matching resource (>= 1).
struct StragglerSpec {
  int node = -1;
  double cpu_factor = 1.0;
  double disk_factor = 1.0;
};

struct FaultConfig {
  std::vector<CrashEvent> crashes;
  std::vector<StragglerSpec> stragglers;

  // Per-op transient failure probabilities in [0, 1).
  double disk_error_rate = 0;
  double fetch_failure_rate = 0;

  // Shuffle-fetch retry policy: attempt i (0-based) backs off
  // fetch_backoff_s * 2^i before retrying; a fetch fails at most
  // max_fetch_retries times before it is forced to succeed.
  double fetch_backoff_s = 0.05;
  int max_fetch_retries = 4;

  // Speculative execution: once speculation_min_done_fraction of a phase's
  // tasks have finished, a running task whose elapsed time exceeds
  // speculation_slowness x the median duration of finished tasks gets one
  // backup attempt on another node; the first finisher wins.
  bool speculative_execution = false;
  double speculation_slowness = 1.8;
  double speculation_min_done_fraction = 0.25;
  // Straggler scan period (simulated seconds). Completions also trigger a
  // scan; the periodic tick catches a lagging tail with nothing finishing.
  double speculation_check_s = 0.25;

  // A task (map or reduce) may be attempted at most this many times;
  // exceeding it fails the job with a non-OK Status.
  int max_attempts = 4;

  // True if any fault source is enabled (crash, straggler, error rates,
  // or speculation).
  bool any() const;

  // Rejects out-of-range nodes/times/rates/factors for an N-node cluster.
  Status Validate(int nodes) const;
};

// The resolved, immutable schedule. Cheap to copy.
class FaultPlan {
 public:
  // An empty plan: no faults, every query returns "healthy".
  FaultPlan() = default;

  FaultPlan(const FaultConfig& config, uint64_t seed);

  const FaultConfig& config() const { return config_; }
  bool active() const { return config_.any(); }

  const std::vector<CrashEvent>& crashes() const { return config_.crashes; }

  // Straggler slowdown factors for `node` (1.0 when healthy).
  double CpuFactor(int node) const;
  double DiskFactor(int node) const;

  // Number of consecutive transient failures (possibly 0) for the fetch of
  // map `map_task`'s push `push` by reduce task `reduce_task`. Pure in its
  // arguments; capped at max_fetch_retries.
  int FetchFailures(int reduce_task, int map_task, uint32_t push) const;

  // Number of consecutive transient failures for disk-read op `op_idx` of
  // attempt `attempt` of task `task` (`is_map` selects the task space).
  // Capped at 3 retries so a read always eventually succeeds.
  int DiskReadFailures(bool is_map, int task, int attempt,
                       uint64_t op_idx) const;

 private:
  FaultConfig config_;
  uint64_t seed_ = 0;
};

}  // namespace onepass::sim

#endif  // ONEPASS_SIM_FAULT_INJECTOR_H_
