// Deterministic fault injection for the simulated time plane.
//
// A FaultPlan is a pure function of (FaultConfig, seed): it fixes, before
// the simulation starts, which nodes crash and when, which nodes straggle
// (and by how much), and — via counter-based hashing — how many times any
// given shuffle fetch or disk read fails transiently. No wall clock, no
// shared RNG state: the same plan replayed against the same cluster yields
// a byte-identical schedule, which is what makes recovery testable
// (ISSUE 1's determinism-under-faults property).
//
// Because every draw is a pure function of its arguments — there are no
// shared mutable cursors — a FaultPlan is immutable after construction
// and safe to consult from concurrent data-plane tasks (DESIGN.md §5.3):
// each task's fault/corruption event stream is effectively pre-drawn,
// keyed by (task id, stream id), independent of execution order.
//
// Fault taxonomy (DESIGN.md §5 "Fault model"):
//   * Node crash: fail-stop at a simulated time (or when map progress
//     crosses a fraction). The node's running tasks die, its disk contents
//     (map outputs, reduce state) are lost, and it never rejoins.
//   * Transient disk-read error: a read must be retried; costs extra seek
//     + transfer time on the same device.
//   * Transient shuffle-fetch failure: a reducer's fetch of one map-output
//     segment fails; retried with exponential backoff, bounded by
//     fetch_retry.max_retries (after which the fetch succeeds —
//     "transient").
//   * Straggler: a node whose CPU and/or disk run slower by a constant
//     factor, the trigger for speculative execution.
//   * Silent corruption (ISSUE 2): a stored copy of a framed stream — a
//     DFS chunk replica, a map-output push, a spill run, a hash bucket,
//     or one shuffle wire transfer — is damaged by a seeded bit flip or
//     a torn write (truncation). Detected only by checksum verification
//     at the next read boundary (DESIGN.md §5.2).

#ifndef ONEPASS_SIM_FAULT_INJECTOR_H_
#define ONEPASS_SIM_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/sim/retry_policy.h"

namespace onepass::sim {

// One scheduled fail-stop crash. Exactly one of `time` (absolute simulated
// seconds), `at_map_fraction` (crash when this fraction of map tasks has
// completed, e.g. 0.5 = mid-map), or `at_reduce_fraction` (crash when this
// fraction of total shuffle bytes has been delivered, e.g. 0.9 = late in
// the shuffle) must be set.
struct CrashEvent {
  int node = -1;
  double time = -1;                // absolute simulated time, or < 0
  double at_map_fraction = -1;     // in (0, 1], or < 0
  double at_reduce_fraction = -1;  // in (0, 1], or < 0
};

// A node that runs slow: op durations on it are multiplied by the factor
// for the matching resource (>= 1).
struct StragglerSpec {
  int node = -1;
  double cpu_factor = 1.0;
  double disk_factor = 1.0;
};

// Which simulated byte stream a corruption event targets. The (kind, a, b)
// triple names one stored copy / transfer; see the FaultPlan draw methods
// for each kind's (a, b) convention.
enum class StreamKind : uint8_t {
  kDfsChunk = 1,      // a = chunk index, b = replica node
  kMapSpillRun = 2,   // a = map task, b = run index
  kBucketFile = 3,    // a = owner id (see BucketFileManager), b = bucket
  kMapOutput = 4,     // a = map task, b = push index
  kShuffleWire = 5,   // a = reduce task, b = (map task << 24) | push
  kCheckpoint = 6,    // a = reduce task, b = (ordinal << 8) | replica slot
};

// How one corrupt generation of a stream is damaged, within its framed
// on-"disk" image of framed_bytes bytes.
struct CorruptionEvent {
  int64_t bit = -1;   // bit index to flip, or byte*8 truncation point
  bool torn = false;  // truncate at byte bit/8 instead of flipping bit
  bool fires() const { return bit >= 0; }
};

struct FaultConfig {
  std::vector<CrashEvent> crashes;
  std::vector<StragglerSpec> stragglers;

  // Per-op transient failure probabilities in [0, 1).
  double disk_error_rate = 0;
  double fetch_failure_rate = 0;

  // Shared retry schedule for transient shuffle-fetch failures,
  // checkpoint-replica reads, and chunk re-replication: attempt i backs
  // off fetch_retry.BackoffFor(i, key) before retrying; a fetch fails at
  // most fetch_retry.max_retries times before it is forced to succeed.
  RetryPolicy fetch_retry;

  // Speculative execution: once speculation_min_done_fraction of a phase's
  // tasks have finished, a running task whose elapsed time exceeds
  // speculation_slowness x the median duration of finished tasks gets one
  // backup attempt on another node; the first finisher wins.
  bool speculative_execution = false;
  double speculation_slowness = 1.8;
  double speculation_min_done_fraction = 0.25;
  // Straggler scan period (simulated seconds). Completions also trigger a
  // scan; the periodic tick catches a lagging tail with nothing finishing.
  double speculation_check_s = 0.25;

  // A task (map or reduce) may be attempted at most this many times;
  // exceeding it fails the job with a non-OK Status.
  int max_attempts = 4;

  // Silent-corruption injection (requires JobConfig integrity checksums;
  // JobConfig::Validate enforces that). Each stored copy / transfer of a
  // framed stream is independently corrupted with this probability.
  double corruption_rate = 0;
  // When set, a corruption event may be a torn write (truncation of the
  // in-flight block sequence) instead of a bit flip; a seeded coin per
  // event picks which.
  bool torn_writes = false;
  // Recovery budget + pacing for corruption rebuilds, on the shared
  // RetryPolicy: at most max_retries consecutive corrupt generations of
  // one stream may be rebuilt / re-fetched / re-executed before the job
  // fails with kCorruption, and rebuild `gen` stalls
  // corruption_retry.BackoffFor(gen, key) simulated seconds before
  // retrying (seeded jitter included). The default base of 0 keeps the
  // historical no-backoff schedule byte-identical. DFS replica fail-over
  // is not charged against this budget — a chunk read fails only when
  // every replica is bad.
  RetryPolicy corruption_retry{/*base_backoff_s=*/0.0, /*max_retries=*/3};

  // True if any fault source is enabled (crash, straggler, error rates,
  // or speculation).
  bool any() const;

  // Rejects out-of-range nodes/times/rates/factors for an N-node cluster.
  Status Validate(int nodes) const;
};

// The resolved, immutable schedule. Cheap to copy.
class FaultPlan {
 public:
  // An empty plan: no faults, every query returns "healthy".
  FaultPlan() = default;

  FaultPlan(const FaultConfig& config, uint64_t seed);

  const FaultConfig& config() const { return config_; }
  bool active() const { return config_.any(); }

  const std::vector<CrashEvent>& crashes() const { return config_.crashes; }

  // Straggler slowdown factors for `node` (1.0 when healthy).
  double CpuFactor(int node) const;
  double DiskFactor(int node) const;

  // Number of consecutive transient failures (possibly 0) for the fetch of
  // map `map_task`'s push `push` by reduce task `reduce_task`. Pure in its
  // arguments; capped at fetch_retry.max_retries.
  int FetchFailures(int reduce_task, int map_task, uint32_t push) const;

  // Number of consecutive transient failures for disk-read op `op_idx` of
  // attempt `attempt` of task `task` (`is_map` selects the task space).
  // Capped at 3 retries so a read always eventually succeeds.
  int DiskReadFailures(bool is_map, int task, int attempt,
                       uint64_t op_idx) const;

  // --- Silent corruption (pure draws; all return "clean" at rate 0) ---

  // Number of consecutive corrupt generations of the stream (kind, a, b):
  // the k-th write (or transfer) of that stream is corrupt iff
  // k < CorruptionChain(...). Geometric in corruption_rate, capped at 3.
  // For DFS chunk replicas only "chain > 0" matters (the replica is bad).
  int CorruptionChain(StreamKind kind, uint64_t a, uint64_t b) const;

  // How generation `gen` of the stream is damaged. Fires exactly when
  // gen < CorruptionChain(kind, a, b).
  CorruptionEvent CorruptionDamage(StreamKind kind, uint64_t a, uint64_t b,
                                   int gen, uint64_t framed_bytes) const;

  // Convenience wrappers used by the Replayer (counts only; the damage
  // there is modeled, not materialized — the time plane replays traces,
  // it does not hold bytes).
  int MapOutputCorruptions(int map_task, uint32_t push) const;
  int FetchCorruptions(int reduce_task, int map_task, uint32_t push) const;
  // Corrupt generations of replica `slot` of reduce task `reduce_task`'s
  // `ordinal`-th checkpoint. Each replica slot draws independently, so a
  // restore can ladder: newest replica corrupt -> try an older slot ->
  // all corrupt -> full replay.
  int CheckpointCorruptions(int reduce_task, uint32_t ordinal,
                            int replica_slot) const;

 private:
  FaultConfig config_;
  uint64_t seed_ = 0;
};

}  // namespace onepass::sim

#endif  // ONEPASS_SIM_FAULT_INJECTOR_H_
