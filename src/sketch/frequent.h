// FREQUENT (Misra–Gries) sketch with slot payload support.
//
// DINC-hash (§4.3 of the paper) monitors "hot" keys with the FREQUENT
// algorithm [Misra & Gries 82; Berinde et al. 09]: s slots hold
// (counter c[i], key k[i]) plus the state s[i] of the partial reduce
// computation. On an arriving tuple:
//   - key monitored            -> increment c, combine into state;
//   - not monitored, some c==0 -> evict that slot, insert key with c=1;
//   - not monitored, all c>0   -> decrement every counter, spill the tuple.
//
// The classic guarantee: a key with true frequency f is combined in memory
// at least max(0, f - M/(s+1)) times, where M is the number of offers.
//
// Decrement-all is O(1) amortized via a global offset: effective count =
// raw count - delta_, and "decrement all" is delta_ += 1 (legal exactly when
// no effective count is 0). A multiset over raw counts tracks the minimum so
// eviction candidates are found in O(log s).
//
// The sketch tracks per-slot `t` counters — tuples combined since the key
// was last inserted — which DINC uses for coverage estimation:
//   gamma = t / (t + M/(s+1))  <=  t / f  =  coverage   (a safe
// under-estimate; see §4.3 "Approximate Answers and Coverage Estimation").
//
// Slot payloads (reduce states) live with the *caller*, indexed by the slot
// id this class reports, so the sketch itself stays byte-agnostic.
//
// The key → slot index is a FlatTable (DESIGN.md §5.4). Every keyed
// primitive has a digest overload so DINC can hash each tuple once and
// share the digest between the monitor probe and the spill-bucket route
// (the per-slot digest is retained — SlotHash — so evicted keys route
// without rehashing). The convenience single-argument forms hash with
// FlatTable::DefaultHash; one sketch instance must stick to one hash
// function.

#ifndef ONEPASS_SKETCH_FREQUENT_H_
#define ONEPASS_SKETCH_FREQUENT_H_

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/storage/checkpoint.h"
#include "src/util/flat_table.h"

namespace onepass {

class FrequentSketch {
 public:
  enum class Action {
    kUpdated,   // key already monitored; counter incremented
    kInserted,  // key inserted into a free slot
    kEvicted,   // a zero-count slot was evicted and the key inserted there
    kRejected,  // all counters > 0; every counter decremented; caller spills
  };

  struct OfferResult {
    Action action = Action::kRejected;
    // Slot holding the key after the offer (kUpdated/kInserted/kEvicted);
    // -1 for kRejected.
    int slot = -1;
    // For kEvicted: the key that was displaced (caller owns its payload).
    std::string evicted_key;
  };

  // capacity: s, the number of monitored slots (>= 1).
  explicit FrequentSketch(size_t capacity);

  // Feeds one occurrence of `key` to the sketch. Composition of the
  // primitives below with the classic FREQUENT policy.
  OfferResult Offer(std::string_view key) {
    return Offer(key, FlatTable::DefaultHash(key));
  }
  OfferResult Offer(std::string_view key, uint64_t hash);

  // --- primitives (each counts as one offer where noted) ---
  // DINC-hash composes these directly so it can interleave its proactive
  // eviction hook (discard expired states) with the FREQUENT policy.

  // Increments a monitored slot's counter (one offer).
  void Hit(int slot);
  // Inserts `key` into a free slot; requires HasFreeSlot() (one offer).
  int InsertIntoFree(std::string_view key) {
    return InsertIntoFree(key, FlatTable::DefaultHash(key));
  }
  int InsertIntoFree(std::string_view key, uint64_t hash);
  bool HasFreeSlot() const { return !free_slots_.empty(); }
  // The occupied slot with the minimum effective count (-1 if none).
  int MinSlot() const;
  // Effective count of MinSlot() (undefined when no slot is occupied).
  uint64_t MinCount() const;
  // Replaces `slot`'s key with `key`, resetting its counter to 1 and its
  // coverage counter (one offer). Returns the displaced key.
  std::string ReplaceSlot(int slot, std::string_view key) {
    return ReplaceSlot(slot, key, FlatTable::DefaultHash(key));
  }
  std::string ReplaceSlot(int slot, std::string_view key, uint64_t hash);
  // Decrements every counter by one; legal only when MinCount() > 0
  // (one offer — the rejected tuple).
  void DecrementAll();
  // Up to `n` occupied slots in ascending effective-count order.
  std::vector<int> ColdestSlots(int n) const;

  // Looks up the slot of `key`, or -1 if not monitored.
  int Find(std::string_view key) const {
    return Find(key, FlatTable::DefaultHash(key));
  }
  int Find(std::string_view key, uint64_t hash) const;

  // Warms the monitor index's control word for an upcoming Find (the batch
  // plane issues this kProbePrefetchDistance tuples ahead; DESIGN.md §5.8).
  void PrefetchProbe(uint64_t hash) const { index_.PrefetchProbe(hash); }
  void PrefetchEntry(uint64_t hash) const { index_.PrefetchEntry(hash); }
  void PrefetchKey(uint64_t hash) const { index_.PrefetchKey(hash); }

  // Effective (Misra–Gries) counter of a slot. An upper bound on the true
  // frequency error is offers()/(capacity()+1).
  uint64_t Count(int slot) const;

  // Tuples combined for the slot's key since its last insertion.
  uint64_t CoverageCount(int slot) const { return slots_[slot].t; }

  // The paper's safe coverage under-estimate gamma for a slot:
  //   t / (t + M/(s+1)).
  double CoverageLowerBound(int slot) const;

  // Key stored at a slot ("" if the slot was never used).
  std::string_view Key(int slot) const { return slots_[slot].key; }

  // Digest the slot's key was inserted with. Capture it *before*
  // ReplaceSlot when routing the displaced key's payload.
  uint64_t SlotHash(int slot) const { return slots_[slot].hash; }

  bool SlotOccupied(int slot) const { return slots_[slot].occupied; }

  // Removes `slot`'s key from the sketch, leaving the slot free with an
  // effective count of zero. Used by DINC eviction hooks (e.g. expired
  // sessions are emitted and dropped rather than spilled).
  void Release(int slot);

  size_t capacity() const { return slots_.size(); }
  size_t size() const { return index_.size(); }
  // Total number of offers so far (the paper's M).
  uint64_t offers() const { return offers_; }
  // Number of decrement-all events.
  uint64_t decrements() const { return delta_; }

  // Frequency estimate for any key: the effective counter if monitored,
  // else 0. True frequency f satisfies est <= f <= est + offers()/(s+1).
  uint64_t EstimateCount(std::string_view key) const;

  // Checkpointing (DESIGN.md §5.6): serializes the slots, the decrement
  // offset, the offer count, and the free-slot stack (its LIFO order
  // decides future insertions, so it is state, not scratch). The key→slot
  // index and the count multiset are derivable and rebuilt on restore.
  void SaveTo(CheckpointWriter* w) const;
  // Restores into a sketch constructed with the same capacity.
  Status RestoreFrom(CheckpointReader* r);

  // Adds the index table's probe/rehash/arena counters to `m` (see
  // FlatTable::FlushStatsTo).
  template <typename Metrics>
  void FlushIndexStatsTo(Metrics* m) const {
    index_.FlushStatsTo(m);
  }

 private:
  struct Slot {
    std::string key;
    uint64_t hash = 0;  // digest the key was inserted with
    uint64_t raw = 0;   // effective count = raw - delta_
    uint64_t t = 0;     // combines since last insertion
    bool occupied = false;
  };

  uint64_t Effective(const Slot& s) const { return s.raw - delta_; }

  void IndexInsert(std::string_view key, uint64_t hash, int slot);
  void IndexErase(std::string_view key, uint64_t hash);
  // Erased keys leave dead bytes in the index arena; rebuild the index
  // from the slots once they dominate the live bytes.
  void MaybeCompactIndex();

  std::vector<Slot> slots_;
  FlatTable index_;  // key -> slot id
  uint64_t live_key_bytes_ = 0;
  uint64_t dead_key_bytes_ = 0;
  // (raw count, slot) for every occupied slot; begin() is the minimum.
  std::set<std::pair<uint64_t, int>> by_count_;
  std::vector<int> free_slots_;
  uint64_t delta_ = 0;
  uint64_t offers_ = 0;
};

}  // namespace onepass

#endif  // ONEPASS_SKETCH_FREQUENT_H_
