#include "src/sketch/frequent.h"

#include "src/common/logging.h"

namespace onepass {

namespace {
// Dead index bytes tolerated before a compaction (keeps tiny sketches from
// rebuilding constantly).
constexpr uint64_t kCompactMinDeadBytes = 64 * 1024;
}  // namespace

FrequentSketch::FrequentSketch(size_t capacity) {
  CHECK_GE(capacity, 1u);
  slots_.resize(capacity);
  index_.Reserve(capacity);
  free_slots_.reserve(capacity);
  for (int i = static_cast<int>(capacity) - 1; i >= 0; --i) {
    free_slots_.push_back(i);
  }
}

void FrequentSketch::IndexInsert(std::string_view key, uint64_t hash,
                                 int slot) {
  bool inserted = false;
  const uint32_t idx = index_.FindOrInsert(key, hash, &inserted);
  index_.set_pod(idx, slot);
  live_key_bytes_ += key.size();
}

void FrequentSketch::IndexErase(std::string_view key, uint64_t hash) {
  index_.Erase(key, hash);
  live_key_bytes_ -= key.size();
  dead_key_bytes_ += key.size();
}

void FrequentSketch::MaybeCompactIndex() {
  if (dead_key_bytes_ < kCompactMinDeadBytes ||
      dead_key_bytes_ < live_key_bytes_) {
    return;
  }
  index_.Clear();
  for (size_t i = 0; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    if (!s.occupied) continue;
    bool inserted = false;
    const uint32_t idx = index_.FindOrInsert(s.key, s.hash, &inserted);
    index_.set_pod(idx, static_cast<int>(i));
  }
  dead_key_bytes_ = 0;
}

void FrequentSketch::Hit(int slot) {
  ++offers_;
  Slot& s = slots_[slot];
  CHECK(s.occupied);
  by_count_.erase({s.raw, slot});
  ++s.raw;
  ++s.t;
  by_count_.insert({s.raw, slot});
}

int FrequentSketch::InsertIntoFree(std::string_view key, uint64_t hash) {
  CHECK(!free_slots_.empty());
  ++offers_;
  const int slot = free_slots_.back();
  free_slots_.pop_back();
  Slot& s = slots_[slot];
  s.key.assign(key.data(), key.size());
  s.hash = hash;
  s.raw = delta_ + 1;
  s.t = 1;
  s.occupied = true;
  IndexInsert(s.key, hash, slot);
  by_count_.insert({s.raw, slot});
  return slot;
}

int FrequentSketch::MinSlot() const {
  return by_count_.empty() ? -1 : by_count_.begin()->second;
}

uint64_t FrequentSketch::MinCount() const {
  CHECK(!by_count_.empty());
  return Effective(slots_[by_count_.begin()->second]);
}

std::string FrequentSketch::ReplaceSlot(int slot, std::string_view key,
                                        uint64_t hash) {
  ++offers_;
  Slot& s = slots_[slot];
  CHECK(s.occupied);
  by_count_.erase({s.raw, slot});
  std::string displaced = std::move(s.key);
  IndexErase(displaced, s.hash);
  s.key.assign(key.data(), key.size());
  s.hash = hash;
  s.raw = delta_ + 1;
  s.t = 1;
  IndexInsert(s.key, hash, slot);
  by_count_.insert({s.raw, slot});
  MaybeCompactIndex();
  return displaced;
}

void FrequentSketch::DecrementAll() {
  ++offers_;
  // Legal only when every effective count is positive.
  CHECK(by_count_.empty() || MinCount() > 0);
  ++delta_;
}

std::vector<int> FrequentSketch::ColdestSlots(int n) const {
  std::vector<int> out;
  out.reserve(n);
  for (auto it = by_count_.begin(); it != by_count_.end() && n > 0;
       ++it, --n) {
    out.push_back(it->second);
  }
  return out;
}

FrequentSketch::OfferResult FrequentSketch::Offer(std::string_view key,
                                                  uint64_t hash) {
  OfferResult result;
  const int found = Find(key, hash);
  if (found >= 0) {
    Hit(found);
    result.action = Action::kUpdated;
    result.slot = found;
    return result;
  }
  if (HasFreeSlot()) {
    result.action = Action::kInserted;
    result.slot = InsertIntoFree(key, hash);
    return result;
  }
  const int min_slot = MinSlot();
  if (MinCount() == 0) {
    result.action = Action::kEvicted;
    result.slot = min_slot;
    result.evicted_key = ReplaceSlot(min_slot, key, hash);
    return result;
  }
  DecrementAll();
  result.action = Action::kRejected;
  return result;
}

int FrequentSketch::Find(std::string_view key, uint64_t hash) const {
  const uint32_t idx = index_.Find(key, hash);
  return idx == FlatTable::kNoEntry ? -1 : index_.pod_at<int>(idx);
}

uint64_t FrequentSketch::Count(int slot) const {
  CHECK(slots_[slot].occupied);
  return Effective(slots_[slot]);
}

double FrequentSketch::CoverageLowerBound(int slot) const {
  const double t = static_cast<double>(slots_[slot].t);
  const double m_over_s1 =
      static_cast<double>(offers_) / static_cast<double>(capacity() + 1);
  if (t == 0.0) return 0.0;
  return t / (t + m_over_s1);
}

void FrequentSketch::Release(int slot) {
  Slot& s = slots_[slot];
  CHECK(s.occupied);
  by_count_.erase({s.raw, slot});
  IndexErase(s.key, s.hash);
  s.key.clear();
  s.hash = 0;
  s.raw = 0;
  s.t = 0;
  s.occupied = false;
  free_slots_.push_back(slot);
  MaybeCompactIndex();
}

uint64_t FrequentSketch::EstimateCount(std::string_view key) const {
  const int slot = Find(key);
  if (slot < 0) return 0;
  return Effective(slots_[slot]);
}

void FrequentSketch::SaveTo(CheckpointWriter* w) const {
  w->PutU64("mg.capacity", slots_.size());
  w->PutU64("mg.delta", delta_);
  w->PutU64("mg.offers", offers_);
  w->PutU64("mg.free", free_slots_.size());
  for (size_t i = 0; i < free_slots_.size(); ++i) {
    w->PutU64("mg.free." + std::to_string(i),
              static_cast<uint64_t>(free_slots_[i]));
  }
  for (size_t i = 0; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    const std::string tag = std::to_string(i);
    w->PutU64("mg.occ." + tag, s.occupied ? 1 : 0);
    if (!s.occupied) continue;
    w->PutBytes("mg.key." + tag, s.key);
    w->PutU64("mg.hash." + tag, s.hash);
    w->PutU64("mg.raw." + tag, s.raw);
    w->PutU64("mg.t." + tag, s.t);
  }
}

Status FrequentSketch::RestoreFrom(CheckpointReader* r) {
  uint64_t capacity = 0;
  RETURN_IF_ERROR(r->GetU64("mg.capacity", &capacity));
  if (capacity != slots_.size()) {
    return Status::Corruption(
        "checkpointed sketch capacity does not match this config");
  }
  RETURN_IF_ERROR(r->GetU64("mg.delta", &delta_));
  RETURN_IF_ERROR(r->GetU64("mg.offers", &offers_));
  uint64_t free_count = 0;
  RETURN_IF_ERROR(r->GetU64("mg.free", &free_count));
  if (free_count > slots_.size()) {
    return Status::Corruption("checkpointed sketch free list oversized");
  }
  free_slots_.clear();
  for (uint64_t i = 0; i < free_count; ++i) {
    uint64_t slot = 0;
    RETURN_IF_ERROR(r->GetU64("mg.free." + std::to_string(i), &slot));
    free_slots_.push_back(static_cast<int>(slot));
  }
  // The index and the count multiset are derived views; rebuild them from
  // the slots (compaction state resets — dead bytes do not survive a
  // restore, which only affects when the next rebuild fires).
  index_.Clear();
  by_count_.clear();
  live_key_bytes_ = 0;
  dead_key_bytes_ = 0;
  for (size_t i = 0; i < slots_.size(); ++i) {
    Slot& s = slots_[i];
    const std::string tag = std::to_string(i);
    uint64_t occ = 0;
    RETURN_IF_ERROR(r->GetU64("mg.occ." + tag, &occ));
    if (occ == 0) {
      s = Slot();
      continue;
    }
    std::string_view key;
    RETURN_IF_ERROR(r->GetBytes("mg.key." + tag, &key));
    s.key.assign(key);
    RETURN_IF_ERROR(r->GetU64("mg.hash." + tag, &s.hash));
    RETURN_IF_ERROR(r->GetU64("mg.raw." + tag, &s.raw));
    RETURN_IF_ERROR(r->GetU64("mg.t." + tag, &s.t));
    s.occupied = true;
    IndexInsert(s.key, s.hash, static_cast<int>(i));
    by_count_.insert({s.raw, static_cast<int>(i)});
  }
  return Status::OK();
}

}  // namespace onepass
