#include "src/sketch/space_saving.h"

#include "src/common/logging.h"

namespace onepass {

SpaceSavingSketch::SpaceSavingSketch(size_t capacity) {
  CHECK_GE(capacity, 1u);
  slots_.resize(capacity);
  free_slots_.reserve(capacity);
  for (int i = static_cast<int>(capacity) - 1; i >= 0; --i) {
    free_slots_.push_back(i);
  }
}

SpaceSavingSketch::OfferResult SpaceSavingSketch::Offer(
    std::string_view key) {
  ++offers_;
  OfferResult result;

  auto it = index_.find(std::string(key));
  if (it != index_.end()) {
    const int slot = it->second;
    Slot& s = slots_[slot];
    by_count_.erase({s.count, slot});
    ++s.count;
    by_count_.insert({s.count, slot});
    result.slot = slot;
    return result;
  }

  if (!free_slots_.empty()) {
    const int slot = free_slots_.back();
    free_slots_.pop_back();
    Slot& s = slots_[slot];
    s.key.assign(key.data(), key.size());
    s.count = 1;
    s.error = 0;
    s.occupied = true;
    index_.emplace(s.key, slot);
    by_count_.insert({s.count, slot});
    result.slot = slot;
    return result;
  }

  // Displace the minimum-count key; the newcomer inherits min+1 with error
  // min.
  const auto min_it = by_count_.begin();
  const int slot = min_it->second;
  Slot& s = slots_[slot];
  const uint64_t min_count = s.count;
  by_count_.erase(min_it);
  result.evicted = true;
  result.evicted_key = std::move(s.key);
  index_.erase(result.evicted_key);
  s.key.assign(key.data(), key.size());
  s.count = min_count + 1;
  s.error = min_count;
  index_.emplace(s.key, slot);
  by_count_.insert({s.count, slot});
  result.slot = slot;
  return result;
}

uint64_t SpaceSavingSketch::EstimateCount(std::string_view key) const {
  auto it = index_.find(std::string(key));
  return it == index_.end() ? 0 : slots_[it->second].count;
}

int SpaceSavingSketch::Find(std::string_view key) const {
  auto it = index_.find(std::string(key));
  return it == index_.end() ? -1 : it->second;
}

}  // namespace onepass
