#include "src/sketch/space_saving.h"

#include "src/common/logging.h"

namespace onepass {

namespace {
constexpr uint64_t kCompactMinDeadBytes = 64 * 1024;
}  // namespace

SpaceSavingSketch::SpaceSavingSketch(size_t capacity) {
  CHECK_GE(capacity, 1u);
  slots_.resize(capacity);
  index_.Reserve(capacity);
  free_slots_.reserve(capacity);
  for (int i = static_cast<int>(capacity) - 1; i >= 0; --i) {
    free_slots_.push_back(i);
  }
}

void SpaceSavingSketch::IndexInsert(std::string_view key, uint64_t hash,
                                    int slot) {
  bool inserted = false;
  const uint32_t idx = index_.FindOrInsert(key, hash, &inserted);
  index_.set_pod(idx, slot);
  live_key_bytes_ += key.size();
}

void SpaceSavingSketch::IndexErase(std::string_view key, uint64_t hash) {
  index_.Erase(key, hash);
  live_key_bytes_ -= key.size();
  dead_key_bytes_ += key.size();
}

void SpaceSavingSketch::MaybeCompactIndex() {
  if (dead_key_bytes_ < kCompactMinDeadBytes ||
      dead_key_bytes_ < live_key_bytes_) {
    return;
  }
  index_.Clear();
  for (size_t i = 0; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    if (!s.occupied) continue;
    bool inserted = false;
    const uint32_t idx = index_.FindOrInsert(s.key, s.hash, &inserted);
    index_.set_pod(idx, static_cast<int>(i));
  }
  dead_key_bytes_ = 0;
}

SpaceSavingSketch::OfferResult SpaceSavingSketch::Offer(std::string_view key,
                                                        uint64_t hash) {
  ++offers_;
  OfferResult result;

  const int found = Find(key, hash);
  if (found >= 0) {
    Slot& s = slots_[found];
    by_count_.erase({s.count, found});
    ++s.count;
    by_count_.insert({s.count, found});
    result.slot = found;
    return result;
  }

  if (!free_slots_.empty()) {
    const int slot = free_slots_.back();
    free_slots_.pop_back();
    Slot& s = slots_[slot];
    s.key.assign(key.data(), key.size());
    s.hash = hash;
    s.count = 1;
    s.error = 0;
    s.occupied = true;
    IndexInsert(s.key, hash, slot);
    by_count_.insert({s.count, slot});
    result.slot = slot;
    return result;
  }

  // Displace the minimum-count key; the newcomer inherits min+1 with error
  // min.
  const auto min_it = by_count_.begin();
  const int slot = min_it->second;
  Slot& s = slots_[slot];
  const uint64_t min_count = s.count;
  by_count_.erase(min_it);
  result.evicted = true;
  result.evicted_key = std::move(s.key);
  IndexErase(result.evicted_key, s.hash);
  s.key.assign(key.data(), key.size());
  s.hash = hash;
  s.count = min_count + 1;
  s.error = min_count;
  IndexInsert(s.key, hash, slot);
  by_count_.insert({s.count, slot});
  MaybeCompactIndex();
  result.slot = slot;
  return result;
}

uint64_t SpaceSavingSketch::EstimateCount(std::string_view key) const {
  const int slot = Find(key);
  return slot < 0 ? 0 : slots_[slot].count;
}

int SpaceSavingSketch::Find(std::string_view key, uint64_t hash) const {
  const uint32_t idx = index_.Find(key, hash);
  return idx == FlatTable::kNoEntry ? -1 : index_.pod_at<int>(idx);
}

}  // namespace onepass
