// SpaceSaving sketch (Metwally et al. 2005).
//
// Included as a comparison point for FREQUENT: the paper (§4.3) notes that
// generic "sketch-based" frequency estimators are unsuitable for DINC-hash
// because they do not explicitly maintain a hot-key set — SpaceSaving *does*
// maintain one, so it is the natural alternative, and our ablation bench
// (bench_micro_sketch) and property tests compare the two on skewed streams.
//
// Like FrequentSketch, the key → slot index is a FlatTable (DESIGN.md
// §5.4); Offer/EstimateCount/Find take an optional precomputed digest.

#ifndef ONEPASS_SKETCH_SPACE_SAVING_H_
#define ONEPASS_SKETCH_SPACE_SAVING_H_

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/util/flat_table.h"

namespace onepass {

class SpaceSavingSketch {
 public:
  explicit SpaceSavingSketch(size_t capacity);

  struct OfferResult {
    bool evicted = false;       // true if a key was displaced
    std::string evicted_key;    // valid when evicted
    int slot = -1;              // slot now holding the offered key
  };

  // Feeds one occurrence of `key`.
  OfferResult Offer(std::string_view key) {
    return Offer(key, FlatTable::DefaultHash(key));
  }
  OfferResult Offer(std::string_view key, uint64_t hash);

  // Estimated count (upper bound on true frequency). 0 if not tracked.
  uint64_t EstimateCount(std::string_view key) const;

  // Overestimation bound for the key at `slot` (its inherited error).
  uint64_t Error(int slot) const { return slots_[slot].error; }

  int Find(std::string_view key) const {
    return Find(key, FlatTable::DefaultHash(key));
  }
  int Find(std::string_view key, uint64_t hash) const;
  std::string_view Key(int slot) const { return slots_[slot].key; }
  uint64_t Count(int slot) const { return slots_[slot].count; }
  // Digest the slot's key was inserted with.
  uint64_t SlotHash(int slot) const { return slots_[slot].hash; }

  size_t capacity() const { return slots_.size(); }
  size_t size() const { return index_.size(); }
  uint64_t offers() const { return offers_; }

  // Adds the index table's probe/rehash/arena counters to `m`.
  template <typename Metrics>
  void FlushIndexStatsTo(Metrics* m) const {
    index_.FlushStatsTo(m);
  }

 private:
  struct Slot {
    std::string key;
    uint64_t hash = 0;
    uint64_t count = 0;
    uint64_t error = 0;
    bool occupied = false;
  };

  void IndexInsert(std::string_view key, uint64_t hash, int slot);
  void IndexErase(std::string_view key, uint64_t hash);
  void MaybeCompactIndex();

  std::vector<Slot> slots_;
  FlatTable index_;  // key -> slot id
  uint64_t live_key_bytes_ = 0;
  uint64_t dead_key_bytes_ = 0;
  std::set<std::pair<uint64_t, int>> by_count_;
  std::vector<int> free_slots_;
  uint64_t offers_ = 0;
};

}  // namespace onepass

#endif  // ONEPASS_SKETCH_SPACE_SAVING_H_
