// SpaceSaving sketch (Metwally et al. 2005).
//
// Included as a comparison point for FREQUENT: the paper (§4.3) notes that
// generic "sketch-based" frequency estimators are unsuitable for DINC-hash
// because they do not explicitly maintain a hot-key set — SpaceSaving *does*
// maintain one, so it is the natural alternative, and our ablation bench
// (bench_micro_sketch) and property tests compare the two on skewed streams.

#ifndef ONEPASS_SKETCH_SPACE_SAVING_H_
#define ONEPASS_SKETCH_SPACE_SAVING_H_

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace onepass {

class SpaceSavingSketch {
 public:
  explicit SpaceSavingSketch(size_t capacity);

  struct OfferResult {
    bool evicted = false;       // true if a key was displaced
    std::string evicted_key;    // valid when evicted
    int slot = -1;              // slot now holding the offered key
  };

  // Feeds one occurrence of `key`.
  OfferResult Offer(std::string_view key);

  // Estimated count (upper bound on true frequency). 0 if not tracked.
  uint64_t EstimateCount(std::string_view key) const;

  // Overestimation bound for the key at `slot` (its inherited error).
  uint64_t Error(int slot) const { return slots_[slot].error; }

  int Find(std::string_view key) const;
  std::string_view Key(int slot) const { return slots_[slot].key; }
  uint64_t Count(int slot) const { return slots_[slot].count; }

  size_t capacity() const { return slots_.size(); }
  size_t size() const { return index_.size(); }
  uint64_t offers() const { return offers_; }

 private:
  struct Slot {
    std::string key;
    uint64_t count = 0;
    uint64_t error = 0;
    bool occupied = false;
  };

  std::vector<Slot> slots_;
  std::unordered_map<std::string, int> index_;
  std::set<std::pair<uint64_t, int>> by_count_;
  std::vector<int> free_slots_;
  uint64_t offers_ = 0;
};

}  // namespace onepass

#endif  // ONEPASS_SKETCH_SPACE_SAVING_H_
