// Minimal logging and CHECK macros.
//
// CHECK* macros guard programmer invariants and abort with a message on
// violation; they are always on (the cost is negligible for this library).
// LOG(level) writes a line to stderr; levels below the global threshold are
// compiled to a no-op stream.

#ifndef ONEPASS_COMMON_LOGGING_H_
#define ONEPASS_COMMON_LOGGING_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace onepass {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Sets / gets the global minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace onepass

#define ONEPASS_LOG(level)                                              \
  ::onepass::internal::LogMessage(::onepass::LogLevel::k##level,        \
                                  __FILE__, __LINE__)

#define CHECK(condition)                                                \
  if (!(condition))                                                     \
  ::onepass::internal::FatalLogMessage(__FILE__, __LINE__, #condition)

#define CHECK_OP_(a, b, op)                                             \
  CHECK((a)op(b)) << " (" << (a) << " vs " << (b) << ") "

#define CHECK_EQ(a, b) CHECK_OP_(a, b, ==)
#define CHECK_NE(a, b) CHECK_OP_(a, b, !=)
#define CHECK_LT(a, b) CHECK_OP_(a, b, <)
#define CHECK_LE(a, b) CHECK_OP_(a, b, <=)
#define CHECK_GT(a, b) CHECK_OP_(a, b, >)
#define CHECK_GE(a, b) CHECK_OP_(a, b, >=)

// Aborts if a Status expression is not OK. For use in tests, examples, and
// benches where propagating the error has no value.
#define CHECK_OK(expr)                                                  \
  do {                                                                  \
    ::onepass::Status _st = (expr);                                     \
    CHECK(_st.ok()) << _st.ToString();                                  \
  } while (0)

#endif  // ONEPASS_COMMON_LOGGING_H_
