// Status and Result<T>: the library-wide error-handling idiom.
//
// Following the Arrow / RocksDB convention, fallible operations return a
// Status (or Result<T> when they produce a value). Exceptions are not used on
// library paths; CHECK-style macros abort on programmer errors.

#ifndef ONEPASS_COMMON_STATUS_H_
#define ONEPASS_COMMON_STATUS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace onepass {

enum class StatusCode : int8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kResourceExhausted = 4,
  kFailedPrecondition = 5,
  kOutOfRange = 6,
  kUnimplemented = 7,
  kInternal = 8,
  kIOError = 9,
  kCorruption = 10,
  kUnavailable = 11,
  kDeadlineExceeded = 12,
};

// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

// A Status holds either success ("OK") or an error code plus message.
// The OK state is represented by a null rep so that passing around OK
// statuses is free of allocation.
class [[nodiscard]] Status {
 public:
  // Creates an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : rep_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_shared<Rep>(Rep{code, std::move(message)})) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  std::string_view message() const {
    return rep_ ? std::string_view(rep_->message) : std::string_view();
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }

  // "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // Shared so Status is cheap to copy; error statuses are rare and small.
  std::shared_ptr<const Rep> rep_;
};

// Result<T> holds either a value or an error Status (never an OK status).
template <typename T>
class [[nodiscard]] Result {
 public:
  // Constructs from a value (implicit, to allow `return value;`).
  Result(T value) : var_(std::move(value)) {}  // NOLINT(runtime/explicit)

  // Constructs from an error status. Aborts if `status` is OK.
  Result(Status status) : var_(std::move(status)) {  // NOLINT
    if (std::get<Status>(var_).ok()) {
      Abort("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(var_); }

  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(var_);
  }

  // Value accessors. Abort if this Result holds an error.
  const T& value() const& {
    CheckOk();
    return std::get<T>(var_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(var_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(var_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) Abort(std::get<Status>(var_).ToString());
  }
  [[noreturn]] static void Abort(const std::string& msg);

  std::variant<T, Status> var_;
};

namespace internal {
[[noreturn]] void AbortWithMessage(const char* what, const std::string& msg);
}  // namespace internal

template <typename T>
void Result<T>::Abort(const std::string& msg) {
  internal::AbortWithMessage("Result", msg);
}

}  // namespace onepass

// Evaluates `expr` (a Status expression) and returns it from the enclosing
// function if it is an error.
#define RETURN_IF_ERROR(expr)                      \
  do {                                             \
    ::onepass::Status _st = (expr);                \
    if (!_st.ok()) return _st;                     \
  } while (0)

// Evaluates `rexpr` (a Result<T> expression); on error returns its status,
// otherwise moves the value into `lhs`.
#define ASSIGN_OR_RETURN(lhs, rexpr)               \
  ASSIGN_OR_RETURN_IMPL_(                          \
      ONEPASS_CONCAT_(_result_, __LINE__), lhs, rexpr)

#define ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                           \
  if (!result.ok()) return result.status();        \
  lhs = std::move(result).value()

#define ONEPASS_CONCAT_INNER_(a, b) a##b
#define ONEPASS_CONCAT_(a, b) ONEPASS_CONCAT_INNER_(a, b)

#endif  // ONEPASS_COMMON_STATUS_H_
