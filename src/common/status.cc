#include "src/common/status.h"

#include <cstdio>
#include <cstdlib>

namespace onepass {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

namespace internal {

void AbortWithMessage(const char* what, const std::string& msg) {
  std::fprintf(stderr, "[onepass] fatal %s error: %s\n", what, msg.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace onepass
