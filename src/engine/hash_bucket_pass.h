// BucketPassProcessor: the shared "drain one disk bucket" procedure of the
// incremental hash engines (§4.2/§4.3).
//
// INC-hash and DINC-hash spill overflow tuples to h disk buckets; at end of
// input each bucket is read back and reduced with an identical procedure:
// build a key→state table in memory, combining tuples per key, then
// finalize every key — recursively repartitioning with the next independent
// hash function if the bucket's distinct keys exceed the memory budget.
// Both engines previously carried a private copy of this loop; it lives
// here once, with the memory budget as the only per-engine parameter.
//
// The in-memory table follows JobConfig::hash_core: the arena-backed
// FlatTable (one UniversalHash digest per tuple per level, reused for the
// table probe) or the legacy std::unordered_map baseline. The FlatTable is
// owned by the processor and recycled across passes (Clear keeps the
// control array and the arena's first block warm). Finalize order is the
// table's iteration order — insertion order for FlatTable, stdlib order
// for the legacy map; each mode is deterministic on its own and tests
// compare outputs order-insensitively.

#ifndef ONEPASS_ENGINE_HASH_BUCKET_PASS_H_
#define ONEPASS_ENGINE_HASH_BUCKET_PASS_H_

#include <string>
#include <vector>

#include "src/engine/group_by_engine.h"
#include "src/util/flat_table.h"
#include "src/util/kv_buffer.h"

namespace onepass {

class BucketPassProcessor {
 public:
  // `ctx` must outlive the processor and carry an IncrementalReducer.
  // `capacity_bytes` is the engine's in-memory budget for one pass,
  // charged per distinct key at the same entry cost the engine uses for
  // its resident table.
  BucketPassProcessor(const EngineContext* ctx, uint64_t capacity_bytes);

  // Reduces one bucket: combine per key in memory, finalize every key,
  // recursing into sub-buckets (hash level + 1) on overflow. `owner` seeds
  // the sub-partition manager's corruption keyspace.
  Status Process(KvBuffer data, uint64_t level, int depth, uint64_t owner);

  // Adds the pass table's counters to `m` (call once, when the engine
  // finishes). No-op in legacy mode.
  template <typename Metrics>
  void FlushStatsTo(Metrics* m) const {
    if (use_flat_) table_.FlushStatsTo(m);
  }

 private:
  Status ProcessFlat(const KvBuffer& data, uint64_t level, bool force,
                     bool* overflow);
  Status ProcessLegacy(const KvBuffer& data, uint64_t level, bool force,
                       bool* overflow);
  Status Repartition(KvBuffer data, uint64_t level, int depth,
                     uint64_t owner);

  const EngineContext* ctx_;
  uint64_t capacity_bytes_;
  bool use_flat_;
  FlatTable table_;
  std::string scratch_;
  std::vector<uint64_t> digest_scratch_;  // batch-plane digests (§5.8)
};

}  // namespace onepass

#endif  // ONEPASS_ENGINE_HASH_BUCKET_PASS_H_
