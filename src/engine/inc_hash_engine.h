// IncHashEngine: incremental hash processing (§4.2).
//
// Requires the init()/cb()/fn() decomposition (IncrementalReducer). Map
// output arrives as key-state tuples (the initialize function ran map-side).
// The reducer maintains an in-memory hash table H from key to the state of
// the computation:
//   - key in H            -> combine the tuple into the state (and give the
//                            workload its early-output hook);
//   - key new, memory free-> insert it (first-come residency);
//   - key new, memory full-> hash the tuple (h3) to one of h disk buckets
//                            through paged write buffers.
// After end of input, every resident key is finalized straight from memory
// — resident and spilled key sets are disjoint, so this is exact — and the
// disk buckets are processed one at a time with the same procedure.
//
// Tuples of resident keys never touch disk: when memory covers all distinct
// key-states (size Delta), I/O is eliminated entirely; with memory >=
// sqrt(Delta), spilled tuples are written and read exactly once (no
// recursion) — the Hybrid-Cache analysis the paper cites. Recursion is
// still implemented as a fallback for under-provisioned bucket counts.
//
// The state table H follows JobConfig::hash_core: the arena-backed
// FlatTable (each tuple hashed once with h3, the digest shared between the
// table probe and the spill-bucket route) or the legacy std::unordered_map
// baseline kept for before/after benches.

#ifndef ONEPASS_ENGINE_INC_HASH_ENGINE_H_
#define ONEPASS_ENGINE_INC_HASH_ENGINE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/engine/group_by_engine.h"
#include "src/engine/hash_bucket_pass.h"
#include "src/storage/bucket_manager.h"
#include "src/util/flat_table.h"
#include "src/util/kv_buffer.h"

namespace onepass {

class IncHashEngine : public GroupByEngine {
 public:
  explicit IncHashEngine(const EngineContext& ctx);

  Status Consume(const KvBuffer& segment, bool sorted) override;
  Status Finish() override;
  // State table entries in insertion order (FlatTable iteration is
  // deterministic, so the restored table reproduces it exactly), plus the
  // spill buckets. Flat core only — JobConfig::Validate rejects
  // checkpointing with kLegacy because unordered_map iteration order does
  // not survive a rebuild.
  Status SaveCheckpoint(CheckpointWriter* w) const override;
  Status RestoreCheckpoint(CheckpointReader* r) override;

  // Number of disk buckets so a bucket's distinct keys fit in memory, given
  // `expected_keys` distinct keys and a per-entry budget.
  static int ChooseNumBuckets(uint64_t expected_keys, uint64_t memory_bytes,
                              uint64_t entry_cost, uint64_t page_bytes);

  // Effective write-buffer page for h buckets under `memory_bytes`: the
  // configured page, clamped so all buffers together use at most half the
  // memory (never below 512 bytes).
  static uint64_t ClampedPageBytes(uint64_t page_bytes,
                                   uint64_t memory_bytes, int h);

  uint64_t resident_keys() const {
    return use_flat_ ? table_.size() : states_.size();
  }

 private:
  Status ConsumeFlat(const KvBuffer& segment);
  Status ConsumeLegacy(const KvBuffer& segment);

  bool use_flat_;
  FlatTable table_;  // key -> state (kFlat)
  std::string scratch_state_;
  std::vector<uint64_t> digest_scratch_;  // batch-plane digests (§5.8)
  std::unordered_map<std::string, std::string> states_;  // (kLegacy)
  uint64_t resident_bytes_ = 0;
  uint64_t capacity_bytes_ = 0;
  int num_buckets_;
  std::unique_ptr<BucketFileManager> buckets_;
  std::unique_ptr<BucketPassProcessor> bucket_pass_;
  UniversalHash h3_;
};

}  // namespace onepass

#endif  // ONEPASS_ENGINE_INC_HASH_ENGINE_H_
