// IncHashEngine: incremental hash processing (§4.2).
//
// Requires the init()/cb()/fn() decomposition (IncrementalReducer). Map
// output arrives as key-state tuples (the initialize function ran map-side).
// The reducer maintains an in-memory hash table H from key to the state of
// the computation:
//   - key in H            -> combine the tuple into the state (and give the
//                            workload its early-output hook);
//   - key new, memory free-> insert it (first-come residency);
//   - key new, memory full-> hash the tuple (h3) to one of h disk buckets
//                            through paged write buffers.
// After end of input, every resident key is finalized straight from memory
// — resident and spilled key sets are disjoint, so this is exact — and the
// disk buckets are processed one at a time with the same procedure.
//
// Tuples of resident keys never touch disk: when memory covers all distinct
// key-states (size Delta), I/O is eliminated entirely; with memory >=
// sqrt(Delta), spilled tuples are written and read exactly once (no
// recursion) — the Hybrid-Cache analysis the paper cites. Recursion is
// still implemented as a fallback for under-provisioned bucket counts.

#ifndef ONEPASS_ENGINE_INC_HASH_ENGINE_H_
#define ONEPASS_ENGINE_INC_HASH_ENGINE_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "src/engine/group_by_engine.h"
#include "src/storage/bucket_manager.h"
#include "src/util/kv_buffer.h"

namespace onepass {

class IncHashEngine : public GroupByEngine {
 public:
  explicit IncHashEngine(const EngineContext& ctx);

  Status Consume(const KvBuffer& segment, bool sorted) override;
  Status Finish() override;

  // Number of disk buckets so a bucket's distinct keys fit in memory, given
  // `expected_keys` distinct keys and a per-entry budget.
  static int ChooseNumBuckets(uint64_t expected_keys, uint64_t memory_bytes,
                              uint64_t entry_cost, uint64_t page_bytes);

  // Effective write-buffer page for h buckets under `memory_bytes`: the
  // configured page, clamped so all buffers together use at most half the
  // memory (never below 512 bytes).
  static uint64_t ClampedPageBytes(uint64_t page_bytes,
                                   uint64_t memory_bytes, int h);

  uint64_t resident_keys() const { return states_.size(); }

 private:
  // Processes one disk bucket (or sub-bucket): builds a state table in
  // memory, combining tuples per key, then finalizes every key. Recursive
  // partitioning if the bucket's keys do not fit.
  Status ProcessBucket(KvBuffer data, uint64_t level, int depth,
                       uint64_t owner);

  std::unordered_map<std::string, std::string> states_;
  uint64_t resident_bytes_ = 0;
  uint64_t capacity_bytes_ = 0;
  int num_buckets_;
  std::unique_ptr<BucketFileManager> buckets_;
  UniversalHash h3_;
};

}  // namespace onepass

#endif  // ONEPASS_ENGINE_INC_HASH_ENGINE_H_
