// DincHashEngine: dynamic incremental hash with frequent-key monitoring
// (§4.3).
//
// When the distinct key-state space far exceeds memory, INC-hash's
// first-come residency wastes memory on cold keys. DINC-hash instead keeps
// the *hot* keys resident using the FREQUENT (Misra–Gries) algorithm:
// s = (B - h pages) / entry monitored slots hold (counter, key, state).
//   - monitored key        -> counter++, combine tuple into state;
//   - unmonitored, a slot's counter is 0
//                          -> evict that slot's state (the workload may
//                             discard it via TryDiscard — e.g. expired
//                             sessions are emitted, not spilled — otherwise
//                             it is written to its hash bucket) and insert
//                             the new key;
//   - unmonitored, all counters > 0
//                          -> decrement every counter, spill the tuple.
// The FREQUENT guarantee transfers: at least sum_i max(0, f_i - M/(s+1))
// combine operations happen in memory, so with skewed data nearly all
// tuples are absorbed before ever touching disk.
//
// At end of input the engine either
//   (a) exact mode (default): flushes resident states into the buckets
//       (unless the workload's Finalize is locally correct and opts out)
//       and processes each bucket in memory, or
//   (b) approximate mode (coverage threshold phi set): finalizes resident
//       states whose coverage lower bound gamma = t/(t + M/(s+1)) reaches
//       phi and skips the disk-resident data entirely (§4.3's early
//       termination).
//
// Under JobConfig::hash_core == kFlat each tuple is hashed once with h3;
// the digest probes the sketch's FlatTable index and routes any spill to
// the bucket h3.Bucket would pick (evicted keys reuse the digest retained
// in their slot). The kLegacy mode keeps the old costs — a DefaultHash
// index probe plus a separate h3 spill hash per spilled tuple — for
// before/after benches; spill routing is identical in both modes.

#ifndef ONEPASS_ENGINE_DINC_HASH_ENGINE_H_
#define ONEPASS_ENGINE_DINC_HASH_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/engine/group_by_engine.h"
#include "src/engine/hash_bucket_pass.h"
#include "src/sketch/frequent.h"
#include "src/storage/bucket_manager.h"
#include "src/util/kv_buffer.h"

namespace onepass {

class DincHashEngine : public GroupByEngine {
 public:
  explicit DincHashEngine(const EngineContext& ctx);

  Status Consume(const KvBuffer& segment, bool sorted) override;
  Status Finish() override;
  // Sketch slots (with their Misra–Gries counters and retained digests),
  // the monitored states by slot, and the spill buckets. Flat core only.
  Status SaveCheckpoint(CheckpointWriter* w) const override;
  Status RestoreCheckpoint(CheckpointReader* r) override;

  uint64_t monitored_keys() const { return sketch_->size(); }
  // Keys finalized from memory in approximate mode.
  uint64_t covered_keys() const { return covered_keys_; }

 private:
  Status ConsumeFlat(const KvBuffer& segment);
  Status ConsumeLegacy(const KvBuffer& segment);
  // Routes a key-state pair to its disk bucket unless the workload
  // discards it via TryDiscard. `digest` must be h3(key) — both modes
  // route spills with the same function, so bucket contents match.
  void SpillState(std::string_view key, uint64_t digest, std::string* state);

  bool use_flat_;
  std::unique_ptr<FrequentSketch> sketch_;
  std::vector<std::string> states_;  // slot id -> state bytes
  std::vector<uint64_t> digest_scratch_;  // batch-plane digests (§5.8)
  uint64_t capacity_entries_ = 0;    // s
  int num_buckets_;                  // h
  std::unique_ptr<BucketFileManager> buckets_;
  std::unique_ptr<BucketPassProcessor> bucket_pass_;
  UniversalHash h3_;
  uint64_t covered_keys_ = 0;
};

}  // namespace onepass

#endif  // ONEPASS_ENGINE_DINC_HASH_ENGINE_H_
