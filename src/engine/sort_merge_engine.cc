#include "src/engine/sort_merge_engine.h"

#include <string>

#include "src/common/logging.h"
#include "src/engine/sorted_merge.h"

namespace onepass {

SortMergeEngine::SortMergeEngine(const EngineContext& ctx)
    : GroupByEngine(ctx),
      scheduler_(ctx.config->merge_factor),
      use_combiner_(ctx.inc != nullptr && ctx.values_are_states) {}

Status SortMergeEngine::Consume(const KvBuffer& segment, bool sorted) {
  if (!sorted) {
    return Status::InvalidArgument(
        "sort-merge engine requires key-sorted map output");
  }
  if (segment.empty()) return Status::OK();
  buffered_bytes_ += segment.bytes();
  KvBuffer copy;
  copy.AppendAll(segment);
  buffered_.push_back(std::move(copy));
  if (buffered_bytes_ > ctx_.config->reduce_memory_bytes) SpillBuffered();
  return Status::OK();
}

std::string SortMergeEngine::CombineGroup(
    std::string_view key, const std::vector<std::string_view>& values,
    uint64_t* combines) {
  std::string state(values[0]);
  for (size_t i = 1; i < values.size(); ++i) {
    ctx_.inc->Combine(key, &state, values[i]);
    ++*combines;
  }
  return state;
}

void SortMergeEngine::SpillBuffered() {
  if (buffered_.empty()) return;
  std::vector<const KvBuffer*> inputs;
  inputs.reserve(buffered_.size());
  for (const auto& b : buffered_) inputs.push_back(&b);
  SortedKvMerger merger(std::move(inputs));

  KvBuffer run;
  uint64_t combines = 0;
  if (use_combiner_) {
    // Hadoop applies the combine function to each key group while writing
    // the spill; this is the reduce-side combine of Fig. 7(b)'s
    // step-function progress.
    std::string_view key;
    std::vector<std::string_view> values;
    while (merger.NextGroup(&key, &values)) {
      if (values.size() == 1) {
        run.Append(key, values[0]);
        continue;
      }
      const std::string state = CombineGroup(key, values, &combines);
      run.Append(key, state);
    }
    ctx_.metrics->combine_invocations += combines;
  } else {
    std::string_view key, value;
    while (merger.Next(&key, &value)) run.Append(key, value);
  }
  const uint64_t merged_records = merger.records_merged();
  ctx_.trace->Cpu(ctx_.config->costs.MergeCost(merged_records) +
                      ctx_.config->costs.combine_record_s *
                          static_cast<double>(combines),
                  OpTag::kReduceMerge);
  if (combines > 0) {
    // Combine work is user-visible progress even though it happens inside
    // a spill (Definition 1 counts "% of combine function ... completed").
    ctx_.trace->Cpu(0.0, OpTag::kCombine, /*d_reduce_work=*/combines);
  }

  buffered_.clear();
  buffered_bytes_ = 0;

  // Write the run to disk.
  const uint64_t run_bytes = run.bytes();
  ctx_.trace->DiskWrite(run_bytes, OpTag::kReduceSpill);
  ctx_.metrics->reduce_spill_write_bytes += run_bytes;
  // runs_ indices stay aligned with MergeScheduler file ids: one run is
  // pushed before each AddRun, and the merged output (if any) is pushed
  // right after with id == runs_.size().
  runs_.push_back(std::move(run));

  // Background multi-pass merge per the 2F-1 policy.
  MergeScheduler::MergeEvent ev =
      scheduler_.AddRun(static_cast<double>(run_bytes));
  if (ev.merged) {
    std::vector<const KvBuffer*> merge_inputs;
    for (int id : ev.inputs) {
      merge_inputs.push_back(&runs_[id]);
      ctx_.trace->DiskRead(runs_[id].bytes(), OpTag::kReduceMerge);
      ctx_.metrics->reduce_spill_read_bytes += runs_[id].bytes();
    }
    SortedKvMerger merger2(std::move(merge_inputs));
    KvBuffer merged;
    uint64_t combines2 = 0;
    if (use_combiner_) {
      std::string_view key;
      std::vector<std::string_view> values;
      while (merger2.NextGroup(&key, &values)) {
        if (values.size() == 1) {
          merged.Append(key, values[0]);
        } else {
          merged.Append(key, CombineGroup(key, values, &combines2));
        }
      }
      ctx_.metrics->combine_invocations += combines2;
    } else {
      std::string_view key, value;
      while (merger2.Next(&key, &value)) merged.Append(key, value);
    }
    ctx_.trace->Cpu(ctx_.config->costs.MergeCost(merger2.records_merged()) +
                        ctx_.config->costs.combine_record_s *
                            static_cast<double>(combines2),
                    OpTag::kReduceMerge);
    if (combines2 > 0) {
      ctx_.trace->Cpu(0.0, OpTag::kCombine, combines2);
    }
    ctx_.trace->DiskWrite(merged.bytes(), OpTag::kReduceMerge);
    ctx_.metrics->reduce_spill_write_bytes += merged.bytes();
    for (int id : ev.inputs) runs_[id] = KvBuffer();  // consumed
    CHECK_EQ(ev.output_id, static_cast<int>(runs_.size()));
    runs_.push_back(std::move(merged));
  }
  return;
}

Status SortMergeEngine::Snapshot() {
  // Re-read and re-merge everything received so far, apply the reduce
  // function, and write the snapshot answer. Nothing is kept: the next
  // snapshot (and the final answer) repeats the work — the §3.3(4)
  // overhead.
  std::vector<const KvBuffer*> inputs;
  for (int id : scheduler_.FinalInputs()) {
    const KvBuffer& run = runs_[id];
    if (run.bytes() > 0) {
      ctx_.trace->DiskRead(run.bytes(), OpTag::kReduceMerge);
      ctx_.metrics->reduce_spill_read_bytes += run.bytes();
      inputs.push_back(&run);
    }
  }
  for (const auto& b : buffered_) inputs.push_back(&b);
  SortedKvMerger merger(std::move(inputs));
  const CostModel& costs = ctx_.config->costs;

  uint64_t out_bytes = 0;
  std::string_view key;
  std::vector<std::string_view> values;
  uint64_t combines = 0;
  while (merger.NextGroup(&key, &values)) {
    if (use_combiner_) {
      uint64_t c = 0;
      std::string state = values.size() == 1
                              ? std::string(values[0])
                              : CombineGroup(key, values, &c);
      combines += c;
      out_bytes += key.size() + state.size();
    } else {
      out_bytes += key.size();
      for (auto v : values) out_bytes += v.size();
    }
  }
  ctx_.trace->Cpu(costs.MergeCost(merger.records_merged()) +
                      costs.combine_record_s *
                          static_cast<double>(combines) +
                      costs.reduce_fn_byte_s *
                          static_cast<double>(out_bytes),
                  OpTag::kReduceMerge);
  ctx_.trace->DiskWrite(out_bytes, OpTag::kOutput);
  ctx_.metrics->snapshot_bytes += out_bytes;
  ++ctx_.metrics->snapshot_count;
  return Status::OK();
}

Status SortMergeEngine::Finish() {
  // Final merge: remaining on-disk runs (at most 2F-1 by the policy
  // invariant) plus whatever is still in the shuffle buffer stream into
  // the reduce function in key order.
  std::vector<const KvBuffer*> inputs;
  for (int id : scheduler_.FinalInputs()) {
    const KvBuffer& run = runs_[id];
    if (run.bytes() > 0) {
      // Reading the runs back is part of "reduce (including the final
      // merge)" in the paper's Fig. 2(a) taxonomy.
      ctx_.trace->DiskRead(run.bytes(), OpTag::kReduceFn);
      ctx_.metrics->reduce_spill_read_bytes += run.bytes();
      inputs.push_back(&run);
    }
  }
  for (const auto& b : buffered_) inputs.push_back(&b);

  SortedKvMerger merger(std::move(inputs));
  std::string_view key;
  std::vector<std::string_view> values;
  const CostModel& costs = ctx_.config->costs;
  uint64_t groups = 0;
  while (merger.NextGroup(&key, &values)) {
    ++groups;
    uint64_t group_bytes = key.size();
    for (auto v : values) group_bytes += v.size();
    if (use_combiner_) {
      uint64_t combines = 0;
      std::string state = values.size() == 1
                              ? std::string(values[0])
                              : CombineGroup(key, values, &combines);
      ctx_.metrics->combine_invocations += combines;
      ctx_.inc->Finalize(key, state, ctx_.out);
      ctx_.trace->Cpu(costs.MergeCost(values.size()) +
                          costs.combine_record_s *
                              static_cast<double>(combines) +
                          costs.reduce_fn_byte_s *
                              static_cast<double>(group_bytes),
                      OpTag::kReduceFn, /*d_reduce_work=*/combines + 1);
    } else {
      VectorValueIterator it(&values);
      ctx_.reducer->Reduce(key, &it, ctx_.out);
      ctx_.trace->Cpu(costs.MergeCost(values.size()) +
                          costs.reduce_fn_byte_s *
                              static_cast<double>(group_bytes),
                      OpTag::kReduceFn, /*d_reduce_work=*/1);
    }
  }
  ctx_.metrics->reduce_groups += groups;
  ctx_.out->Flush();
  buffered_.clear();
  runs_.clear();
  return Status::OK();
}

}  // namespace onepass
