#include "src/engine/sort_merge_engine.h"

#include <string>
#include <utility>

#include "src/common/logging.h"
#include "src/engine/sorted_merge.h"
#include "src/storage/block_format.h"

namespace onepass {

SortMergeEngine::SortMergeEngine(const EngineContext& ctx)
    : GroupByEngine(ctx),
      scheduler_(ctx.config->merge_factor),
      use_combiner_(ctx.inc != nullptr && ctx.values_are_states) {}

Status SortMergeEngine::Consume(const KvBuffer& segment, bool sorted) {
  if (!sorted) {
    return Status::InvalidArgument(
        "sort-merge engine requires key-sorted map output");
  }
  if (segment.empty()) return Status::OK();
  buffered_bytes_ += segment.bytes();
  KvBuffer copy;
  copy.AppendAll(segment);
  buffered_.push_back(std::move(copy));
  if (buffered_bytes_ > ctx_.config->reduce_memory_bytes) SpillBuffered();
  return Status::OK();
}

bool SortMergeEngine::coded() const {
  return ctx_.config->block_codec != BlockCodecKind::kNone;
}

SortMergeEngine::Run SortMergeEngine::StoreRun(KvBuffer run, OpTag tag) {
  Run r;
  r.raw_bytes = run.bytes();
  if (coded()) {
    CodecStats stats;
    r.enc = EncodeKvStream(run, BlockEncoding::kPrefix,
                           ctx_.config->block_codec,
                           ctx_.config->codec_block_bytes, &stats);
    r.disk_bytes = r.enc.size();
    ctx_.trace->Cpu(ctx_.config->costs.compress_byte_s *
                        static_cast<double>(r.raw_bytes),
                    tag);
    ctx_.metrics->codec_reduce_spill_raw_bytes += r.raw_bytes;
    ctx_.metrics->codec_reduce_spill_encoded_bytes += r.enc.size();
    ctx_.metrics->compress_ns += stats.compress_ns;
  } else {
    r.raw = std::move(run);
    r.disk_bytes = r.raw_bytes;
  }
  return r;
}

KvBuffer SortMergeEngine::DecodeRun(const Run& run, OpTag tag) {
  CodecStats stats;
  Result<KvBuffer> dec = DecodeKvStream(run.enc, &stats);
  CHECK(dec.ok()) << dec.status().ToString();
  ctx_.trace->Cpu(ctx_.config->costs.decompress_byte_s *
                      static_cast<double>(run.raw_bytes),
                  tag);
  ctx_.metrics->decompress_ns += stats.decompress_ns;
  return std::move(dec).value();
}

std::string SortMergeEngine::CombineGroup(
    std::string_view key, const std::vector<std::string_view>& values,
    uint64_t* combines) {
  std::string state(values[0]);
  for (size_t i = 1; i < values.size(); ++i) {
    ctx_.inc->Combine(key, &state, values[i]);
    ++*combines;
  }
  return state;
}

void SortMergeEngine::SpillBuffered() {
  if (buffered_.empty()) return;
  std::vector<const KvBuffer*> inputs;
  inputs.reserve(buffered_.size());
  for (const auto& b : buffered_) inputs.push_back(&b);
  SortedKvMerger merger(std::move(inputs));

  KvBuffer run;
  uint64_t combines = 0;
  if (use_combiner_) {
    // Hadoop applies the combine function to each key group while writing
    // the spill; this is the reduce-side combine of Fig. 7(b)'s
    // step-function progress.
    std::string_view key;
    std::vector<std::string_view> values;
    while (merger.NextGroup(&key, &values)) {
      if (values.size() == 1) {
        run.Append(key, values[0]);
        continue;
      }
      const std::string state = CombineGroup(key, values, &combines);
      run.Append(key, state);
    }
    ctx_.metrics->combine_invocations += combines;
  } else {
    std::string_view key, value;
    while (merger.Next(&key, &value)) run.Append(key, value);
  }
  const uint64_t merged_records = merger.records_merged();
  ctx_.trace->Cpu(ctx_.config->costs.MergeCost(merged_records) +
                      ctx_.config->costs.combine_record_s *
                          static_cast<double>(combines),
                  OpTag::kReduceMerge);
  if (combines > 0) {
    // Combine work is user-visible progress even though it happens inside
    // a spill (Definition 1 counts "% of combine function ... completed").
    ctx_.trace->Cpu(0.0, OpTag::kCombine, /*d_reduce_work=*/combines);
  }

  buffered_.clear();
  buffered_bytes_ = 0;

  // Write the run to disk (encoded under a codec).
  Run stored = StoreRun(std::move(run), OpTag::kReduceSpill);
  const uint64_t policy_bytes = stored.raw_bytes;
  ctx_.trace->DiskWrite(stored.disk_bytes, OpTag::kReduceSpill);
  ctx_.metrics->reduce_spill_write_bytes += stored.disk_bytes;
  // runs_ indices stay aligned with MergeScheduler file ids: one run is
  // pushed before each AddRun, and the merged output (if any) is pushed
  // right after with id == runs_.size().
  runs_.push_back(std::move(stored));

  // Background multi-pass merge per the 2F-1 policy. The scheduler is fed
  // raw payload bytes, not bytes-on-disk, so the merge tree — and with it
  // the combine order and the final output — is identical whether or not
  // a codec is active.
  MergeScheduler::MergeEvent ev =
      scheduler_.AddRun(static_cast<double>(policy_bytes));
  if (ev.merged) {
    std::vector<const KvBuffer*> merge_inputs;
    std::vector<KvBuffer> decoded;
    decoded.reserve(ev.inputs.size());
    for (int id : ev.inputs) {
      const Run& input = runs_[id];
      ctx_.trace->DiskRead(input.disk_bytes, OpTag::kReduceMerge);
      ctx_.metrics->reduce_spill_read_bytes += input.disk_bytes;
      if (coded()) {
        decoded.push_back(DecodeRun(input, OpTag::kReduceMerge));
        merge_inputs.push_back(&decoded.back());
      } else {
        merge_inputs.push_back(&input.raw);
      }
    }
    SortedKvMerger merger2(std::move(merge_inputs));
    KvBuffer merged;
    uint64_t combines2 = 0;
    if (use_combiner_) {
      std::string_view key;
      std::vector<std::string_view> values;
      while (merger2.NextGroup(&key, &values)) {
        if (values.size() == 1) {
          merged.Append(key, values[0]);
        } else {
          merged.Append(key, CombineGroup(key, values, &combines2));
        }
      }
      ctx_.metrics->combine_invocations += combines2;
    } else {
      std::string_view key, value;
      while (merger2.Next(&key, &value)) merged.Append(key, value);
    }
    ctx_.trace->Cpu(ctx_.config->costs.MergeCost(merger2.records_merged()) +
                        ctx_.config->costs.combine_record_s *
                            static_cast<double>(combines2),
                    OpTag::kReduceMerge);
    if (combines2 > 0) {
      ctx_.trace->Cpu(0.0, OpTag::kCombine, combines2);
    }
    Run merged_run = StoreRun(std::move(merged), OpTag::kReduceMerge);
    ctx_.trace->DiskWrite(merged_run.disk_bytes, OpTag::kReduceMerge);
    ctx_.metrics->reduce_spill_write_bytes += merged_run.disk_bytes;
    for (int id : ev.inputs) runs_[id] = Run();  // consumed
    CHECK_EQ(ev.output_id, static_cast<int>(runs_.size()));
    runs_.push_back(std::move(merged_run));
  }
  return;
}

Status SortMergeEngine::SaveCheckpoint(CheckpointWriter* w) const {
  w->PutU64("sm.buffered_bytes", buffered_bytes_);
  w->PutU64("sm.buffered", buffered_.size());
  for (size_t i = 0; i < buffered_.size(); ++i) {
    const std::string tag = std::to_string(i);
    w->PutU64("sm.seg_n." + tag, buffered_[i].count());
    w->PutBytes("sm.seg." + tag, buffered_[i].data());
  }
  w->PutU64("sm.runs", runs_.size());
  for (size_t i = 0; i < runs_.size(); ++i) {
    const Run& run = runs_[i];
    const std::string tag = std::to_string(i);
    w->PutU64("sm.run_raw_bytes." + tag, run.raw_bytes);
    w->PutU64("sm.run_disk_bytes." + tag, run.disk_bytes);
    w->PutU64("sm.run_n." + tag, run.raw.count());
    w->PutBytes("sm.run." + tag, run.raw.data());
    w->PutBytes("sm.run_enc." + tag, run.enc);
  }
  const std::vector<double>& sizes = scheduler_.file_sizes();
  const std::vector<int>& live = scheduler_.live_ids();
  w->PutU64("sm.sched_files", sizes.size());
  for (size_t i = 0; i < sizes.size(); ++i) {
    w->PutF64("sm.sched_size." + std::to_string(i), sizes[i]);
  }
  w->PutU64("sm.sched_live", live.size());
  for (size_t i = 0; i < live.size(); ++i) {
    w->PutU64("sm.sched_live." + std::to_string(i),
              static_cast<uint64_t>(live[i]));
  }
  return Status::OK();
}

Status SortMergeEngine::RestoreCheckpoint(CheckpointReader* r) {
  RETURN_IF_ERROR(r->GetU64("sm.buffered_bytes", &buffered_bytes_));
  uint64_t buffered = 0;
  RETURN_IF_ERROR(r->GetU64("sm.buffered", &buffered));
  buffered_.clear();
  for (uint64_t i = 0; i < buffered; ++i) {
    const std::string tag = std::to_string(i);
    uint64_t n = 0;
    std::string_view bytes;
    RETURN_IF_ERROR(r->GetU64("sm.seg_n." + tag, &n));
    RETURN_IF_ERROR(r->GetBytes("sm.seg." + tag, &bytes));
    buffered_.push_back(KvBuffer::FromData(std::string(bytes), n));
  }
  uint64_t num_runs = 0;
  RETURN_IF_ERROR(r->GetU64("sm.runs", &num_runs));
  runs_.clear();
  for (uint64_t i = 0; i < num_runs; ++i) {
    const std::string tag = std::to_string(i);
    Run run;
    RETURN_IF_ERROR(r->GetU64("sm.run_raw_bytes." + tag, &run.raw_bytes));
    RETURN_IF_ERROR(r->GetU64("sm.run_disk_bytes." + tag, &run.disk_bytes));
    uint64_t n = 0;
    std::string_view bytes;
    RETURN_IF_ERROR(r->GetU64("sm.run_n." + tag, &n));
    RETURN_IF_ERROR(r->GetBytes("sm.run." + tag, &bytes));
    run.raw = KvBuffer::FromData(std::string(bytes), n);
    RETURN_IF_ERROR(r->GetBytes("sm.run_enc." + tag, &bytes));
    run.enc.assign(bytes);
    runs_.push_back(std::move(run));
  }
  uint64_t sched_files = 0;
  RETURN_IF_ERROR(r->GetU64("sm.sched_files", &sched_files));
  std::vector<double> sizes(sched_files, 0.0);
  for (uint64_t i = 0; i < sched_files; ++i) {
    RETURN_IF_ERROR(
        r->GetF64("sm.sched_size." + std::to_string(i), &sizes[i]));
  }
  uint64_t sched_live = 0;
  RETURN_IF_ERROR(r->GetU64("sm.sched_live", &sched_live));
  std::vector<int> live(sched_live, 0);
  for (uint64_t i = 0; i < sched_live; ++i) {
    uint64_t id = 0;
    RETURN_IF_ERROR(r->GetU64("sm.sched_live." + std::to_string(i), &id));
    live[i] = static_cast<int>(id);
  }
  if (sched_files != num_runs) {
    return Status::Corruption(
        "sort-merge checkpoint scheduler/run manifest out of sync");
  }
  scheduler_.RestoreState(std::move(sizes), std::move(live));
  return Status::OK();
}

Status SortMergeEngine::Snapshot() {
  // Re-read and re-merge everything received so far, apply the reduce
  // function, and write the snapshot answer. Nothing is kept: the next
  // snapshot (and the final answer) repeats the work — the §3.3(4)
  // overhead.
  std::vector<const KvBuffer*> inputs;
  std::vector<KvBuffer> decoded;
  decoded.reserve(runs_.size());
  for (int id : scheduler_.FinalInputs()) {
    const Run& run = runs_[id];
    if (run.disk_bytes > 0) {
      ctx_.trace->DiskRead(run.disk_bytes, OpTag::kReduceMerge);
      ctx_.metrics->reduce_spill_read_bytes += run.disk_bytes;
      if (coded()) {
        // A snapshot re-reads (and so re-decodes) the runs every time it
        // fires; keeping nothing is the §3.3(4) overhead.
        decoded.push_back(DecodeRun(run, OpTag::kReduceMerge));
        inputs.push_back(&decoded.back());
      } else {
        inputs.push_back(&run.raw);
      }
    }
  }
  for (const auto& b : buffered_) inputs.push_back(&b);
  SortedKvMerger merger(std::move(inputs));
  const CostModel& costs = ctx_.config->costs;

  uint64_t out_bytes = 0;
  std::string_view key;
  std::vector<std::string_view> values;
  uint64_t combines = 0;
  while (merger.NextGroup(&key, &values)) {
    if (use_combiner_) {
      uint64_t c = 0;
      std::string state = values.size() == 1
                              ? std::string(values[0])
                              : CombineGroup(key, values, &c);
      combines += c;
      out_bytes += key.size() + state.size();
    } else {
      out_bytes += key.size();
      for (auto v : values) out_bytes += v.size();
    }
  }
  ctx_.trace->Cpu(costs.MergeCost(merger.records_merged()) +
                      costs.combine_record_s *
                          static_cast<double>(combines) +
                      costs.reduce_fn_byte_s *
                          static_cast<double>(out_bytes),
                  OpTag::kReduceMerge);
  ctx_.trace->DiskWrite(out_bytes, OpTag::kOutput);
  ctx_.metrics->snapshot_bytes += out_bytes;
  ++ctx_.metrics->snapshot_count;
  return Status::OK();
}

Status SortMergeEngine::Finish() {
  // Final merge: remaining on-disk runs (at most 2F-1 by the policy
  // invariant) plus whatever is still in the shuffle buffer stream into
  // the reduce function in key order.
  std::vector<const KvBuffer*> inputs;
  std::vector<KvBuffer> decoded;
  decoded.reserve(runs_.size());
  for (int id : scheduler_.FinalInputs()) {
    const Run& run = runs_[id];
    if (run.disk_bytes > 0) {
      // Reading the runs back is part of "reduce (including the final
      // merge)" in the paper's Fig. 2(a) taxonomy.
      ctx_.trace->DiskRead(run.disk_bytes, OpTag::kReduceFn);
      ctx_.metrics->reduce_spill_read_bytes += run.disk_bytes;
      if (coded()) {
        decoded.push_back(DecodeRun(run, OpTag::kReduceFn));
        inputs.push_back(&decoded.back());
      } else {
        inputs.push_back(&run.raw);
      }
    }
  }
  for (const auto& b : buffered_) inputs.push_back(&b);

  SortedKvMerger merger(std::move(inputs));
  std::string_view key;
  std::vector<std::string_view> values;
  const CostModel& costs = ctx_.config->costs;
  uint64_t groups = 0;
  while (merger.NextGroup(&key, &values)) {
    ++groups;
    uint64_t group_bytes = key.size();
    for (auto v : values) group_bytes += v.size();
    if (use_combiner_) {
      uint64_t combines = 0;
      std::string state = values.size() == 1
                              ? std::string(values[0])
                              : CombineGroup(key, values, &combines);
      ctx_.metrics->combine_invocations += combines;
      ctx_.inc->Finalize(key, state, ctx_.out);
      ctx_.trace->Cpu(costs.MergeCost(values.size()) +
                          costs.combine_record_s *
                              static_cast<double>(combines) +
                          costs.reduce_fn_byte_s *
                              static_cast<double>(group_bytes),
                      OpTag::kReduceFn, /*d_reduce_work=*/combines + 1);
    } else {
      VectorValueIterator it(&values);
      ctx_.reducer->Reduce(key, &it, ctx_.out);
      ctx_.trace->Cpu(costs.MergeCost(values.size()) +
                          costs.reduce_fn_byte_s *
                              static_cast<double>(group_bytes),
                      OpTag::kReduceFn, /*d_reduce_work=*/1);
    }
  }
  ctx_.metrics->reduce_groups += groups;
  ctx_.out->Flush();
  buffered_.clear();
  runs_.clear();
  return Status::OK();
}

}  // namespace onepass
