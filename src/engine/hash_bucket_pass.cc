#include "src/engine/hash_bucket_pass.h"

#include <unordered_map>

#include "src/common/logging.h"
#include "src/engine/batch_consume.h"
#include "src/storage/bucket_manager.h"

namespace onepass {

namespace {
constexpr int kMaxRecursionDepth = 16;
}  // namespace

BucketPassProcessor::BucketPassProcessor(const EngineContext* ctx,
                                         uint64_t capacity_bytes)
    : ctx_(ctx),
      capacity_bytes_(capacity_bytes),
      use_flat_(ctx->config->hash_core == HashCoreKind::kFlat) {
  CHECK(ctx_->inc != nullptr);
}

Status BucketPassProcessor::Process(KvBuffer data, uint64_t level, int depth,
                                    uint64_t owner) {
  // Beyond the recursion bound (pathological hash collisions), finish in
  // memory regardless of the budget rather than looping.
  const bool force_in_memory = depth > kMaxRecursionDepth;
  bool overflow = false;
  if (use_flat_) {
    RETURN_IF_ERROR(ProcessFlat(data, level, force_in_memory, &overflow));
  } else {
    RETURN_IF_ERROR(ProcessLegacy(data, level, force_in_memory, &overflow));
  }
  if (!overflow) return Status::OK();
  // The bucket's keys exceed memory: repartition with the next hash level.
  return Repartition(std::move(data), level, depth, owner);
}

Status BucketPassProcessor::ProcessFlat(const KvBuffer& data, uint64_t level,
                                        bool force, bool* overflow) {
  const JobConfig& cfg = *ctx_->config;
  const CostModel& costs = cfg.costs;
  IncrementalReducer* inc = ctx_->inc;
  // One digest per tuple at this level, shared by every probe below.
  const UniversalHash h = ctx_->hashes.At(level);
  table_.Clear();
  uint64_t bytes_used = 0, combines = 0;
  *overflow = false;
  // Batched walk (§5.8): one digest per tuple at this level, computed a
  // RecordBatch at a time and shared by every probe below. After an
  // overflow the remaining records are skipped exactly as the scalar
  // walk's break skipped them (they are re-read by the repartition pass).
  ConsumeBatched(
      data, EffectiveBatchRecords(cfg), h, ResolveSimdTier(cfg.simd),
      ctx_->metrics, &digest_scratch_,
      table_,
      [&](std::string_view key, std::string_view state, uint64_t digest) {
    if (*overflow) return;
    const uint32_t found = table_.Find(key, digest);
    if (found != FlatTable::kNoEntry) {
      const std::string_view cur = table_.value_at(found);
      scratch_.assign(cur.data(), cur.size());
      inc->Combine(key, &scratch_, state);
      table_.set_value(found, scratch_);
      ++combines;
      return;
    }
    const uint64_t entry = key.size() + inc->StateBytesHint() +
                           cfg.resident_entry_overhead;
    if (!force && bytes_used + entry > capacity_bytes_ && !table_.empty()) {
      *overflow = true;
      return;
    }
    bool inserted = false;
    const uint32_t idx = table_.FindOrInsert(key, digest, &inserted);
    table_.set_value(idx, state);
    bytes_used += entry;
    ++combines;
  });
  // CPU for the attempt is spent either way.
  ctx_->trace->Cpu(costs.hash_record_s * static_cast<double>(data.count()) +
                       costs.combine_record_s *
                           static_cast<double>(combines),
                   OpTag::kReduceFn);
  if (*overflow) {
    table_.Clear();
    return Status::OK();
  }
  ctx_->metrics->combine_invocations += combines;
  uint64_t fn_bytes = 0;
  table_.ForEach([&](uint32_t idx) {
    const std::string_view k = table_.key_at(idx);
    const std::string_view state = table_.value_at(idx);
    inc->Finalize(k, state, ctx_->out);
    fn_bytes += k.size() + state.size();
    ctx_->trace->Cpu(0.0, OpTag::kReduceFn, /*d_reduce_work=*/1);
  });
  ctx_->metrics->reduce_groups += table_.size();
  ctx_->trace->Cpu(costs.reduce_fn_byte_s * static_cast<double>(fn_bytes),
                   OpTag::kReduceFn);
  table_.Clear();
  return Status::OK();
}

Status BucketPassProcessor::ProcessLegacy(const KvBuffer& data,
                                          uint64_t level, bool force,
                                          bool* overflow) {
  const JobConfig& cfg = *ctx_->config;
  const CostModel& costs = cfg.costs;
  IncrementalReducer* inc = ctx_->inc;
  std::unordered_map<std::string, std::string> table;
  uint64_t bytes_used = 0, combines = 0;
  *overflow = false;
  {
    KvBufferReader reader(data);
    std::string_view key, state;
    while (reader.Next(&key, &state)) {
      auto it = table.find(std::string(key));
      if (it != table.end()) {
        inc->Combine(key, &it->second, state);
        ++combines;
        continue;
      }
      const uint64_t entry = key.size() + inc->StateBytesHint() +
                             cfg.resident_entry_overhead;
      if (!force && bytes_used + entry > capacity_bytes_ && !table.empty()) {
        *overflow = true;
        break;
      }
      table.emplace(std::string(key), std::string(state));
      bytes_used += entry;
      ++combines;
    }
  }
  ctx_->trace->Cpu(costs.hash_record_s * static_cast<double>(data.count()) +
                       costs.combine_record_s *
                           static_cast<double>(combines),
                   OpTag::kReduceFn);
  if (*overflow) return Status::OK();
  ctx_->metrics->combine_invocations += combines;
  uint64_t fn_bytes = 0;
  for (auto& [k, state] : table) {
    inc->Finalize(k, state, ctx_->out);
    fn_bytes += k.size() + state.size();
    ctx_->trace->Cpu(0.0, OpTag::kReduceFn, /*d_reduce_work=*/1);
  }
  ctx_->metrics->reduce_groups += table.size();
  ctx_->trace->Cpu(costs.reduce_fn_byte_s * static_cast<double>(fn_bytes),
                   OpTag::kReduceFn);
  return Status::OK();
}

Status BucketPassProcessor::Repartition(KvBuffer data, uint64_t level,
                                        int depth, uint64_t owner) {
  const JobConfig& cfg = *ctx_->config;
  const int sub = 4;
  BucketFileManager subs(sub, cfg.bucket_page_bytes, ctx_->trace,
                         ctx_->metrics, &cfg.integrity, ctx_->faults, owner,
                         &cfg.costs, cfg.block_codec, cfg.codec_block_bytes);
  const UniversalHash h = ctx_->hashes.At(level + 1);
  // Batched route: FastRangeBucket(digest, sub) == h.Bucket(key, sub) by
  // the hash.h identity, so sub-bucket assignment is unchanged.
  ConsumeBatched(
      data, EffectiveBatchRecords(cfg), h, ResolveSimdTier(cfg.simd),
      ctx_->metrics, &digest_scratch_, NoProbePrefetch{},
      [&](std::string_view key, std::string_view state, uint64_t digest) {
        subs.Add(static_cast<int>(FastRangeBucket(
                     digest, static_cast<uint64_t>(sub))),
                 key, state);
      });
  ctx_->trace->Cpu(
      cfg.costs.hash_record_s * static_cast<double>(data.count()),
      OpTag::kReduceFn);
  data.Clear();
  subs.FlushAll();
  for (int b = 0; b < sub; ++b) {
    ASSIGN_OR_RETURN(KvBuffer sb, subs.TakeBucket(b));
    if (sb.empty()) continue;
    RETURN_IF_ERROR(Process(std::move(sb), level + 1, depth + 1,
                            Mix64(owner ^ (level << 40) ^
                                  (static_cast<uint64_t>(b) + 1))));
  }
  return Status::OK();
}

}  // namespace onepass
