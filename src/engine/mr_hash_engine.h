// MRHashEngine: the paper's baseline hash technique (§4.1).
//
// Hybrid-hash partitioning in the style of hybrid hash join [Shapiro 86]:
// h2 splits the reducer's input into buckets. Bucket D1 stays entirely in
// memory; the others stream to disk through paged write buffers. After all
// input arrives, D1 is grouped in memory with h3 and the reduce function is
// applied per group; then each on-disk bucket is read back one at a time —
// a bucket that fits in memory is processed directly, one that does not is
// recursively partitioned with the next hash function (h4, h5, ...).
//
// MR-hash exactly matches the classic values-list reduce API. Unlike
// sort-merge there is no map-side sort and no blocking multi-pass merge,
// but reduce work still cannot start before end of input, so its progress
// plateaus at 33% (shuffle only) until the maps finish — Fig. 7(a)/(b).
//
// The in-memory group-by follows JobConfig::hash_core: a FlatTable whose
// entries hold the head/tail of a chain of value nodes (views into the
// bucket buffer — values are never copied), hashed once per tuple with the
// pass's UniversalHash; or the legacy unordered_map of value vectors.

#ifndef ONEPASS_ENGINE_MR_HASH_ENGINE_H_
#define ONEPASS_ENGINE_MR_HASH_ENGINE_H_

#include <memory>
#include <string_view>
#include <vector>

#include "src/engine/group_by_engine.h"
#include "src/storage/bucket_manager.h"
#include "src/util/flat_table.h"
#include "src/util/kv_buffer.h"

namespace onepass {

class MRHashEngine : public GroupByEngine {
 public:
  explicit MRHashEngine(const EngineContext& ctx);

  Status Consume(const KvBuffer& segment, bool sorted) override;
  Status Finish() override;
  // The resident D1 bucket, its demotion flag, and the disk-bucket file
  // manifest. The Finish-time grouping structures (group_table_, nodes_)
  // are scratch and carry no mid-stream state.
  Status SaveCheckpoint(CheckpointWriter* w) const override;
  Status RestoreCheckpoint(CheckpointReader* r) override;

  // Chooses the number of on-disk buckets so that, per the hybrid-hash
  // analysis, each bucket of an `expected_bytes` input fits in a memory of
  // `memory_bytes` while D1 = memory - h write-buffer pages stays resident.
  // Returns 0 when everything fits in memory.
  static int ChooseNumBuckets(uint64_t expected_bytes, uint64_t memory_bytes,
                              uint64_t page_bytes);

 private:
  // Per-group chain through nodes_: FlatTable entry value (fits inline).
  struct ChainRef {
    uint32_t head;
    uint32_t tail;
  };
  // One value occurrence; `next` indexes nodes_ (UINT32_MAX ends a chain).
  struct ValueNode {
    const char* ptr;
    uint32_t len;
    uint32_t next;
  };

  // Groups `data` in memory using hash `level` and reduces every group.
  void ProcessInMemory(const KvBuffer& data, uint64_t level);
  void ProcessInMemoryFlat(const KvBuffer& data, uint64_t level);
  void ProcessInMemoryLegacy(const KvBuffer& data, uint64_t level);
  // Processes a bucket that may exceed memory: in-memory if it fits, else
  // recursive partitioning with hash `level`. `owner` is the integrity
  // owner id a sub-partition manager created here would carry (stable
  // across runs so corruption draws are deterministic).
  Status ProcessBucket(KvBuffer data, uint64_t level, int depth,
                       uint64_t owner);

  bool use_flat_;
  int num_disk_buckets_;        // h (excluding D1)
  uint64_t d1_capacity_bytes_;  // memory available to D1
  bool d1_demoted_ = false;     // D1 overflowed and moved to disk
  KvBuffer d1_;
  std::unique_ptr<BucketFileManager> buckets_;  // null when h == 0
  UniversalHash h2_;
  // Flat grouping scratch, recycled across passes.
  FlatTable group_table_;  // key -> ChainRef
  std::vector<ValueNode> nodes_;
  std::vector<uint64_t> digest_scratch_;  // batch-plane digests (§5.8)
  std::vector<std::string_view> chain_scratch_;
};

}  // namespace onepass

#endif  // ONEPASS_ENGINE_MR_HASH_ENGINE_H_
