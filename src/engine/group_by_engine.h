// GroupByEngine: the pluggable reduce-side group-by implementation.
//
// A reduce task feeds its engine one shuffle delivery (a KvBuffer segment
// from a finished map task) at a time via Consume(), then calls Finish()
// once all input has arrived. The engine implements "group data by key,
// then apply the reduce function to each group" — this is exactly the
// component the paper swaps out: Hadoop's sort-merge vs the hash-based
// family (MR-hash / INC-hash / DINC-hash).
//
// Engines run on the real data plane: they move actual bytes through
// buffers, spill files, and merges, while charging every CPU and I/O cost
// to the task's CostTrace for the simulated time plane.

#ifndef ONEPASS_ENGINE_GROUP_BY_ENGINE_H_
#define ONEPASS_ENGINE_GROUP_BY_ENGINE_H_

#include <memory>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/mr/api.h"
#include "src/mr/config.h"
#include "src/mr/cost_trace.h"
#include "src/mr/metrics.h"
#include "src/mr/output.h"
#include "src/storage/checkpoint.h"
#include "src/util/hash.h"
#include "src/util/kv_buffer.h"

namespace onepass {

struct EngineContext {
  TraceRecorder* trace = nullptr;
  JobMetrics* metrics = nullptr;
  OutputCollector* out = nullptr;
  const JobConfig* config = nullptr;
  // Per-job independent hash family; levels 1+ belong to the reduce side
  // (level 0 is the map-side partitioner h1).
  UniversalHashFamily hashes{0};
  // Exactly one of these is set, matching the engine's API contract.
  Reducer* reducer = nullptr;
  IncrementalReducer* inc = nullptr;
  // True when the map side already applied the initialize function, so the
  // incoming "values" are states that Combine() can fold directly.
  bool values_are_states = false;
  // Data integrity (DESIGN.md §5.2): the job's fault plan, consulted by
  // the engine's spill-bucket layer for seeded corruption, and a stable
  // id naming this task in the plan's corruption keyspace (reduce task
  // index + 1; 0 in harnesses that do not inject).
  const sim::FaultPlan* faults = nullptr;
  uint64_t integrity_owner = 0;
};

class GroupByEngine {
 public:
  explicit GroupByEngine(const EngineContext& ctx) : ctx_(ctx) {}
  virtual ~GroupByEngine() = default;

  GroupByEngine(const GroupByEngine&) = delete;
  GroupByEngine& operator=(const GroupByEngine&) = delete;

  // Feeds one shuffle delivery. `sorted` is true when the segment is
  // key-ordered (sort-merge map output).
  virtual Status Consume(const KvBuffer& segment, bool sorted) = 0;

  // Completes the group-by after the last delivery: drains spills, applies
  // the reduce/finalize function to every group, and emits all output.
  virtual Status Finish() = 0;

  // Produces a snapshot of the answer over the data received so far
  // (MapReduce Online's periodic snapshots, §3.3(4)). Non-destructive.
  // The sort-merge implementation re-runs the merge over everything
  // received — the expensive, non-incremental behaviour the paper calls
  // out; incremental engines emit continuously and need no snapshots, so
  // the default is a no-op.
  virtual Status Snapshot() { return Status::OK(); }

  // Checkpointed recovery (DESIGN.md §5.6). SaveCheckpoint serializes the
  // engine's complete mid-stream state into named fields, non-destructively
  // — Consume can continue right after, and a run that checkpoints emits
  // byte-identical output to one that does not. RestoreCheckpoint loads a
  // saved image into a freshly constructed engine under the same config;
  // consuming the remaining deliveries then yields exactly the output the
  // saved engine would have produced. Neither charges trace or metrics:
  // the cluster prices checkpoint I/O in the time plane.
  virtual Status SaveCheckpoint(CheckpointWriter* w) const {
    (void)w;
    return Status::Unimplemented("engine does not support checkpointing");
  }
  virtual Status RestoreCheckpoint(CheckpointReader* r) {
    (void)r;
    return Status::Unimplemented("engine does not support checkpointing");
  }

 protected:
  EngineContext ctx_;
};

// Creates the engine implementing `kind`. The context must carry a Reducer
// for kSortMerge/kMRHash and an IncrementalReducer for kIncHash/kDincHash
// (kSortMerge may additionally carry an IncrementalReducer to act as the
// reduce-side combiner).
Result<std::unique_ptr<GroupByEngine>> CreateGroupByEngine(
    EngineKind kind, const EngineContext& ctx);

// ValueIterator over a vector of views (used when a key's values have been
// collected in memory).
class VectorValueIterator : public ValueIterator {
 public:
  explicit VectorValueIterator(const std::vector<std::string_view>* values)
      : values_(values) {}

  bool Next(std::string_view* value) override {
    if (pos_ >= values_->size()) return false;
    *value = (*values_)[pos_++];
    return true;
  }

 private:
  const std::vector<std::string_view>* values_;
  size_t pos_ = 0;
};

}  // namespace onepass

#endif  // ONEPASS_ENGINE_GROUP_BY_ENGINE_H_
