// Shared driver for the engines' batched consume loops (DESIGN.md §5.8).
//
// Every hash engine walks a delivered segment the same way: decode a
// RecordBatch worth of views, compute the whole batch's UniversalHash
// digests into a scratch array, then run the per-record body with the
// table probe for record i+kProbePrefetchDistance already prefetched.
// The body runs once per record in exactly KvBufferReader order, so the
// loop is byte-identical to the scalar per-record walk at every batch
// size — batching only changes memory-level parallelism, never semantics.

#ifndef ONEPASS_ENGINE_BATCH_CONSUME_H_
#define ONEPASS_ENGINE_BATCH_CONSUME_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "src/mr/metrics.h"
#include "src/util/batch_hash.h"
#include "src/util/hash.h"
#include "src/util/kv_buffer.h"
#include "src/util/simd_dispatch.h"

namespace onepass {

// Probe target for consume loops with nothing to warm (bucket routing,
// repartition): every stage is a no-op the compiler deletes.
struct NoProbePrefetch {
  void PrefetchProbe(uint64_t) const {}
  void PrefetchEntry(uint64_t) const {}
  void PrefetchKey(uint64_t) const {}
};

// Runs `body(key, value, digest)` for every record of `segment` in order,
// with digests[i] == h(keys[i]) precomputed per batch and `probe`'s
// three-stage prefetch pipeline (FlatTable's ctrl word, entry, key bytes
// — see flat_table.h) staged kProbePrefetchDistance records apart ahead
// of the body. Pass NoProbePrefetch when there is no table to warm.
// `digests` is caller-owned scratch so an engine's repeated Consume calls
// reuse one allocation.
template <typename ProbeTarget, typename Body>
void ConsumeBatched(const KvBuffer& segment, size_t batch_records,
                    const UniversalHash& h, SimdTier tier,
                    JobMetrics* metrics, std::vector<uint64_t>* digests,
                    const ProbeTarget& probe, Body&& body) {
  constexpr size_t kD = kProbePrefetchDistance;
  if (batch_records == 0) batch_records = 1;
  KvBatchReader reader(segment, batch_records);
  if (digests->size() < batch_records) digests->resize(batch_records);
  for (;;) {
    const size_t n = reader.Fill();
    if (n == 0) break;
    h.HashBatch(reader.keys(), n, digests->data(), tier);
    const std::string_view* keys = reader.keys();
    const std::string_view* values = reader.values();
    const uint64_t* d = digests->data();
    size_t i = 0;
    if (n > 3 * kD) {
      // Steady state: all three stages run unconditionally — the range
      // checks would cost three predictable-but-present branches per
      // record in the hottest loop of the platform.
      for (; i < n - 3 * kD; ++i) {
        probe.PrefetchProbe(d[i + 3 * kD]);
        probe.PrefetchEntry(d[i + 2 * kD]);
        probe.PrefetchKey(d[i + kD]);
        body(keys[i], values[i], d[i]);
      }
    }
    // Pipeline drain (and whole short batches).
    for (; i < n; ++i) {
      if (i + 2 * kD < n) probe.PrefetchEntry(d[i + 2 * kD]);
      if (i + kD < n) probe.PrefetchKey(d[i + kD]);
      body(keys[i], values[i], d[i]);
    }
    metrics->record_batches += 1;
    metrics->batched_records += n;
  }
}

}  // namespace onepass

#endif  // ONEPASS_ENGINE_BATCH_CONSUME_H_
