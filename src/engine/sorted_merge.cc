#include "src/engine/sorted_merge.h"

namespace onepass {

SortedKvMerger::SortedKvMerger(std::vector<const KvBuffer*> inputs) {
  readers_.reserve(inputs.size());
  for (const KvBuffer* in : inputs) {
    readers_.emplace_back(*in);
  }
  for (size_t i = 0; i < readers_.size(); ++i) Advance(i);
}

void SortedKvMerger::Advance(size_t input) {
  std::string_view k, v;
  if (readers_[input].Next(&k, &v)) {
    heap_.push(Head{k, v, input});
  }
}

bool SortedKvMerger::Next(std::string_view* key, std::string_view* value) {
  if (pending_valid_) {
    *key = pending_key_;
    *value = pending_value_;
    pending_valid_ = false;
    ++records_merged_;
    return true;
  }
  if (heap_.empty()) return false;
  const Head top = heap_.top();
  heap_.pop();
  Advance(top.input);
  *key = top.key;
  *value = top.value;
  ++records_merged_;
  return true;
}

bool SortedKvMerger::NextGroup(std::string_view* key,
                               std::vector<std::string_view>* values) {
  values->clear();
  std::string_view k, v;
  if (!Next(&k, &v)) return false;
  *key = k;
  values->push_back(v);
  while (Next(&k, &v)) {
    if (k != *key) {
      // Push back for the next group.
      pending_valid_ = true;
      pending_key_ = k;
      pending_value_ = v;
      --records_merged_;
      break;
    }
    values->push_back(v);
  }
  return true;
}

}  // namespace onepass
