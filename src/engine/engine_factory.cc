#include "src/engine/dinc_hash_engine.h"
#include "src/engine/group_by_engine.h"
#include "src/engine/inc_hash_engine.h"
#include "src/engine/mr_hash_engine.h"
#include "src/engine/sort_merge_engine.h"

namespace onepass {

Result<std::unique_ptr<GroupByEngine>> CreateGroupByEngine(
    EngineKind kind, const EngineContext& ctx) {
  switch (kind) {
    case EngineKind::kSortMerge:
      if (ctx.reducer == nullptr &&
          !(ctx.inc != nullptr && ctx.values_are_states)) {
        return Status::InvalidArgument(
            "sort-merge needs a Reducer (or an IncrementalReducer with "
            "map-side init)");
      }
      return std::unique_ptr<GroupByEngine>(new SortMergeEngine(ctx));
    case EngineKind::kMRHash:
      if (ctx.reducer == nullptr) {
        return Status::InvalidArgument("MR-hash needs a Reducer");
      }
      return std::unique_ptr<GroupByEngine>(new MRHashEngine(ctx));
    case EngineKind::kIncHash:
      if (ctx.inc == nullptr) {
        return Status::InvalidArgument(
            "INC-hash needs an IncrementalReducer");
      }
      return std::unique_ptr<GroupByEngine>(new IncHashEngine(ctx));
    case EngineKind::kDincHash:
      if (ctx.inc == nullptr) {
        return Status::InvalidArgument(
            "DINC-hash needs an IncrementalReducer");
      }
      return std::unique_ptr<GroupByEngine>(new DincHashEngine(ctx));
  }
  return Status::InvalidArgument("unknown engine kind");
}

}  // namespace onepass
