// Streaming k-way merge over sorted KvBuffers, with group iteration.
//
// Used by the sort-merge engine's spill merges and final merge. Inputs must
// each be sorted by key (byte-lexicographic); the merger yields records in
// global key order, stable by input index for equal keys.

#ifndef ONEPASS_ENGINE_SORTED_MERGE_H_
#define ONEPASS_ENGINE_SORTED_MERGE_H_

#include <queue>
#include <string_view>
#include <vector>

#include "src/util/kv_buffer.h"

namespace onepass {

class SortedKvMerger {
 public:
  explicit SortedKvMerger(std::vector<const KvBuffer*> inputs);

  // Advances to the next record in key order. Views are valid as long as
  // the underlying buffers live.
  bool Next(std::string_view* key, std::string_view* value);

  // Groups consecutive equal keys: fills `values` with every value of the
  // next key. Returns false at end.
  bool NextGroup(std::string_view* key, std::vector<std::string_view>* values);

  uint64_t records_merged() const { return records_merged_; }

 private:
  struct Head {
    std::string_view key;
    std::string_view value;
    size_t input;
  };
  struct Later {
    bool operator()(const Head& a, const Head& b) const {
      if (a.key != b.key) return a.key > b.key;
      return a.input > b.input;
    }
  };

  void Advance(size_t input);

  std::vector<KvBufferReader> readers_;
  std::priority_queue<Head, std::vector<Head>, Later> heap_;
  uint64_t records_merged_ = 0;
  bool pending_valid_ = false;
  std::string_view pending_key_;
  std::string_view pending_value_;
};

}  // namespace onepass

#endif  // ONEPASS_ENGINE_SORTED_MERGE_H_
