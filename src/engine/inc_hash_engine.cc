#include "src/engine/inc_hash_engine.h"

#include <algorithm>

#include "src/common/logging.h"

namespace onepass {

namespace {
constexpr int kMaxRecursionDepth = 16;
constexpr int kDefaultBuckets = 16;
}  // namespace

uint64_t IncHashEngine::ClampedPageBytes(uint64_t page_bytes,
                                         uint64_t memory_bytes, int h) {
  // Write buffers never take more than half the memory; keep pages at
  // least 512 bytes so flushes stay page-sized.
  const uint64_t cap = memory_bytes / (2 * std::max(1, h));
  return std::max<uint64_t>(512, std::min(page_bytes, cap));
}

int IncHashEngine::ChooseNumBuckets(uint64_t expected_keys,
                                    uint64_t memory_bytes,
                                    uint64_t entry_cost,
                                    uint64_t page_bytes) {
  // Capacity in resident entries with h pages reserved for write buffers:
  // pick the smallest h with expected_keys/h <= capacity(h), so each bucket
  // file's distinct keys fit in memory when read back (§4.3's h = K/(B*n_p)
  // sizing). Pages are clamped so buffers never crowd out the state table.
  int last_feasible = 1;
  for (int h = 1; h < 1 << 20; ++h) {
    const uint64_t page = ClampedPageBytes(page_bytes, memory_bytes, h);
    const uint64_t reserved = static_cast<uint64_t>(h) * page;
    if (reserved >= memory_bytes) break;  // no room left for states
    const uint64_t capacity = (memory_bytes - reserved) / entry_cost;
    if (capacity == 0) break;
    last_feasible = h;
    if (expected_keys / static_cast<uint64_t>(h) <= capacity) return h;
  }
  // Memory is too small to make every bucket fit; use the most buckets the
  // memory allows (recursion handles oversized buckets).
  return last_feasible;
}

IncHashEngine::IncHashEngine(const EngineContext& ctx)
    : GroupByEngine(ctx), h3_(ctx.hashes.At(2)) {
  CHECK(ctx.inc != nullptr) << "INC-hash requires an IncrementalReducer";
  const JobConfig& cfg = *ctx.config;
  const uint64_t entry_cost = ctx.inc->StateBytesHint() + 16 /*avg key*/ +
                              cfg.resident_entry_overhead;
  num_buckets_ =
      cfg.expected_keys_per_reducer > 0
          ? ChooseNumBuckets(cfg.expected_keys_per_reducer,
                             cfg.reduce_memory_bytes, entry_cost,
                             cfg.bucket_page_bytes)
          : kDefaultBuckets;
  const uint64_t page = ClampedPageBytes(cfg.bucket_page_bytes,
                                         cfg.reduce_memory_bytes,
                                         num_buckets_);
  const uint64_t reserved = std::min<uint64_t>(
      cfg.reduce_memory_bytes, static_cast<uint64_t>(num_buckets_) * page);
  capacity_bytes_ = cfg.reduce_memory_bytes - reserved;
  buckets_ = std::make_unique<BucketFileManager>(
      num_buckets_, page, ctx_.trace, ctx_.metrics, &cfg.integrity,
      ctx_.faults, ctx_.integrity_owner);
}

Status IncHashEngine::Consume(const KvBuffer& segment, bool /*sorted*/) {
  const CostModel& costs = ctx_.config->costs;
  IncrementalReducer* inc = ctx_.inc;
  ctx_.out->set_streaming(true);
  KvBufferReader reader(segment);
  std::string_view key, value;
  uint64_t n = 0, combines = 0, spills = 0;
  while (reader.Next(&key, &value)) {
    ++n;
    auto it = states_.find(std::string(key));
    if (it != states_.end()) {
      const uint64_t before = it->second.size();
      if (ctx_.values_are_states) {
        inc->Combine(key, &it->second, value);
      } else {
        const std::string state = inc->Init(key, value);
        inc->Combine(key, &it->second, state);
      }
      inc->OnUpdate(key, &it->second, ctx_.out);
      // States are budgeted at their hint size; growth beyond the hint is
      // still tracked so memory accounting cannot be gamed.
      if (it->second.size() > inc->StateBytesHint() &&
          it->second.size() > before) {
        resident_bytes_ += it->second.size() - std::max<uint64_t>(
                                                   before,
                                                   inc->StateBytesHint());
      }
      ++combines;
      ctx_.trace->Cpu(costs.combine_record_s, OpTag::kCombine,
                      /*d_reduce_work=*/1);
    } else {
      const uint64_t entry = key.size() + inc->StateBytesHint() +
                             ctx_.config->resident_entry_overhead;
      if (resident_bytes_ + entry <= capacity_bytes_) {
        std::string state = ctx_.values_are_states
                                ? std::string(value)
                                : inc->Init(key, value);
        inc->OnUpdate(key, &state, ctx_.out);
        states_.emplace(std::string(key), std::move(state));
        resident_bytes_ += entry;
        ctx_.trace->Cpu(costs.combine_record_s, OpTag::kCombine,
                        /*d_reduce_work=*/1);
        ++combines;
      } else {
        // Overflow tuple: stage to the appropriate disk bucket.
        ++spills;
        if (ctx_.values_are_states) {
          buckets_->Add(static_cast<int>(h3_.Bucket(key, num_buckets_)),
                        key, value);
        } else {
          const std::string state = inc->Init(key, value);
          buckets_->Add(static_cast<int>(h3_.Bucket(key, num_buckets_)),
                        key, state);
        }
      }
    }
  }
  ctx_.metrics->reduce_input_records += n;
  ctx_.metrics->combine_invocations += combines;
  ctx_.trace->Cpu(costs.hash_record_s * static_cast<double>(n),
                  OpTag::kShuffle);
  ctx_.out->set_streaming(false);
  (void)spills;
  return Status::OK();
}

Status IncHashEngine::ProcessBucket(KvBuffer data, uint64_t level,
                                    int depth, uint64_t owner) {
  // Beyond the recursion bound (pathological hash collisions), finish in
  // memory regardless of the budget rather than looping.
  const bool force_in_memory = depth > kMaxRecursionDepth;
  const JobConfig& cfg = *ctx_.config;
  const CostModel& costs = cfg.costs;
  IncrementalReducer* inc = ctx_.inc;

  // Attempt to build the full state table in memory.
  std::unordered_map<std::string, std::string> table;
  uint64_t bytes_used = 0;
  uint64_t combines = 0;
  bool overflow = false;
  {
    KvBufferReader reader(data);
    std::string_view key, state;
    while (reader.Next(&key, &state)) {
      auto it = table.find(std::string(key));
      if (it != table.end()) {
        inc->Combine(key, &it->second, state);
        ++combines;
        continue;
      }
      const uint64_t entry = key.size() + inc->StateBytesHint() +
                             cfg.resident_entry_overhead;
      if (!force_in_memory && bytes_used + entry > capacity_bytes_ &&
          !table.empty()) {
        overflow = true;
        break;
      }
      table.emplace(std::string(key), std::string(state));
      bytes_used += entry;
      ++combines;
    }
  }
  // CPU for the attempt is spent either way.
  ctx_.trace->Cpu(costs.hash_record_s * static_cast<double>(data.count()) +
                      costs.combine_record_s * static_cast<double>(combines),
                  OpTag::kReduceFn);

  if (!overflow) {
    ctx_.metrics->combine_invocations += combines;
    uint64_t fn_bytes = 0;
    for (auto& [k, state] : table) {
      inc->Finalize(k, state, ctx_.out);
      fn_bytes += k.size() + state.size();
      ctx_.trace->Cpu(0.0, OpTag::kReduceFn,
                      /*d_reduce_work=*/1);
    }
    ctx_.metrics->reduce_groups += table.size();
    ctx_.trace->Cpu(costs.reduce_fn_byte_s * static_cast<double>(fn_bytes),
                    OpTag::kReduceFn);
    return Status::OK();
  }

  // The bucket's keys exceed memory: repartition with the next hash level.
  table.clear();
  const int sub = 4;
  BucketFileManager subs(sub, cfg.bucket_page_bytes, ctx_.trace,
                         ctx_.metrics, &cfg.integrity, ctx_.faults, owner);
  const UniversalHash h = ctx_.hashes.At(level + 1);
  KvBufferReader reader(data);
  std::string_view key, state;
  while (reader.Next(&key, &state)) {
    subs.Add(static_cast<int>(h.Bucket(key, sub)), key, state);
  }
  ctx_.trace->Cpu(costs.hash_record_s * static_cast<double>(data.count()),
                  OpTag::kReduceFn);
  data.Clear();
  subs.FlushAll();
  for (int b = 0; b < sub; ++b) {
    ASSIGN_OR_RETURN(KvBuffer sb, subs.TakeBucket(b));
    if (sb.empty()) continue;
    RETURN_IF_ERROR(ProcessBucket(std::move(sb), level + 1, depth + 1,
                                  Mix64(owner ^ (level << 40) ^
                                        (static_cast<uint64_t>(b) + 1))));
  }
  return Status::OK();
}

Status IncHashEngine::Finish() {
  const CostModel& costs = ctx_.config->costs;
  IncrementalReducer* inc = ctx_.inc;
  // Resident keys never spilled a tuple, so finalizing them from memory is
  // exact — and immediate, which is what lets INC-hash emit results the
  // moment the maps finish.
  uint64_t fn_bytes = 0;
  for (auto& [key, state] : states_) {
    inc->Finalize(key, state, ctx_.out);
    fn_bytes += key.size() + state.size();
    ctx_.trace->Cpu(0.0, OpTag::kReduceFn, /*d_reduce_work=*/1);
  }
  ctx_.metrics->reduce_groups += states_.size();
  ctx_.trace->Cpu(costs.reduce_fn_byte_s * static_cast<double>(fn_bytes),
                  OpTag::kReduceFn);
  states_.clear();
  resident_bytes_ = 0;

  buckets_->FlushAll();
  for (int b = 0; b < num_buckets_; ++b) {
    ASSIGN_OR_RETURN(KvBuffer data, buckets_->TakeBucket(b));
    if (data.empty()) continue;
    RETURN_IF_ERROR(ProcessBucket(
        std::move(data), /*level=*/2, 0,
        Mix64(ctx_.integrity_owner ^ (2ULL << 40) ^
              (static_cast<uint64_t>(b) + 1))));
  }
  ctx_.out->Flush();
  return Status::OK();
}

}  // namespace onepass
