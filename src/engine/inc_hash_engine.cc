#include "src/engine/inc_hash_engine.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/engine/batch_consume.h"

namespace onepass {

namespace {
constexpr int kDefaultBuckets = 16;
}  // namespace

uint64_t IncHashEngine::ClampedPageBytes(uint64_t page_bytes,
                                         uint64_t memory_bytes, int h) {
  // Write buffers never take more than half the memory; keep pages at
  // least 512 bytes so flushes stay page-sized.
  const uint64_t cap = memory_bytes / (2 * std::max(1, h));
  return std::max<uint64_t>(512, std::min(page_bytes, cap));
}

int IncHashEngine::ChooseNumBuckets(uint64_t expected_keys,
                                    uint64_t memory_bytes,
                                    uint64_t entry_cost,
                                    uint64_t page_bytes) {
  // Capacity in resident entries with h pages reserved for write buffers:
  // pick the smallest h with expected_keys/h <= capacity(h), so each bucket
  // file's distinct keys fit in memory when read back (§4.3's h = K/(B*n_p)
  // sizing). Pages are clamped so buffers never crowd out the state table.
  int last_feasible = 1;
  for (int h = 1; h < 1 << 20; ++h) {
    const uint64_t page = ClampedPageBytes(page_bytes, memory_bytes, h);
    const uint64_t reserved = static_cast<uint64_t>(h) * page;
    if (reserved >= memory_bytes) break;  // no room left for states
    const uint64_t capacity = (memory_bytes - reserved) / entry_cost;
    if (capacity == 0) break;
    last_feasible = h;
    if (expected_keys / static_cast<uint64_t>(h) <= capacity) return h;
  }
  // Memory is too small to make every bucket fit; use the most buckets the
  // memory allows (recursion handles oversized buckets).
  return last_feasible;
}

IncHashEngine::IncHashEngine(const EngineContext& ctx)
    : GroupByEngine(ctx),
      use_flat_(ctx.config->hash_core == HashCoreKind::kFlat),
      h3_(ctx.hashes.At(2)) {
  CHECK(ctx.inc != nullptr) << "INC-hash requires an IncrementalReducer";
  const JobConfig& cfg = *ctx.config;
  const uint64_t entry_cost = ctx.inc->StateBytesHint() + 16 /*avg key*/ +
                              cfg.resident_entry_overhead;
  num_buckets_ =
      cfg.expected_keys_per_reducer > 0
          ? ChooseNumBuckets(cfg.expected_keys_per_reducer,
                             cfg.reduce_memory_bytes, entry_cost,
                             cfg.bucket_page_bytes)
          : kDefaultBuckets;
  const uint64_t page = ClampedPageBytes(cfg.bucket_page_bytes,
                                         cfg.reduce_memory_bytes,
                                         num_buckets_);
  const uint64_t reserved = std::min<uint64_t>(
      cfg.reduce_memory_bytes, static_cast<uint64_t>(num_buckets_) * page);
  capacity_bytes_ = cfg.reduce_memory_bytes - reserved;
  buckets_ = std::make_unique<BucketFileManager>(
      num_buckets_, page, ctx_.trace, ctx_.metrics, &cfg.integrity,
      ctx_.faults, ctx_.integrity_owner, &cfg.costs, cfg.block_codec,
      cfg.codec_block_bytes);
  bucket_pass_ = std::make_unique<BucketPassProcessor>(&ctx_,
                                                       capacity_bytes_);
}

Status IncHashEngine::Consume(const KvBuffer& segment, bool /*sorted*/) {
  return use_flat_ ? ConsumeFlat(segment) : ConsumeLegacy(segment);
}

Status IncHashEngine::ConsumeFlat(const KvBuffer& segment) {
  const CostModel& costs = ctx_.config->costs;
  IncrementalReducer* inc = ctx_.inc;
  const uint64_t hint = inc->StateBytesHint();
  ctx_.out->set_streaming(true);
  uint64_t n = 0, combines = 0;
  // Batched walk: one h3 digest per tuple, computed a whole RecordBatch at
  // a time, probing the state table with the control word for tuple i+D
  // already prefetched; on overflow the digest routes the spill to the
  // same bucket h3_.Bucket would pick.
  ConsumeBatched(
      segment, EffectiveBatchRecords(*ctx_.config), h3_,
      ResolveSimdTier(ctx_.config->simd), ctx_.metrics, &digest_scratch_,
      table_,
      [&](std::string_view key, std::string_view value, uint64_t digest) {
    ++n;
    const uint32_t found = table_.Find(key, digest);
    if (found != FlatTable::kNoEntry) {
      const std::string_view cur = table_.value_at(found);
      scratch_state_.assign(cur.data(), cur.size());
      const uint64_t before = scratch_state_.size();
      if (ctx_.values_are_states) {
        inc->Combine(key, &scratch_state_, value);
      } else {
        const std::string state = inc->Init(key, value);
        inc->Combine(key, &scratch_state_, state);
      }
      inc->OnUpdate(key, &scratch_state_, ctx_.out);
      table_.set_value(found, scratch_state_);
      // States are budgeted at their hint size; growth beyond the hint is
      // still tracked so memory accounting cannot be gamed.
      if (scratch_state_.size() > hint && scratch_state_.size() > before) {
        resident_bytes_ +=
            scratch_state_.size() - std::max<uint64_t>(before, hint);
      }
      ++combines;
      ctx_.trace->Cpu(costs.combine_record_s, OpTag::kCombine,
                      /*d_reduce_work=*/1);
    } else {
      const uint64_t entry = key.size() + hint +
                             ctx_.config->resident_entry_overhead;
      if (resident_bytes_ + entry <= capacity_bytes_) {
        scratch_state_ = ctx_.values_are_states ? std::string(value)
                                                : inc->Init(key, value);
        inc->OnUpdate(key, &scratch_state_, ctx_.out);
        bool inserted = false;
        const uint32_t idx = table_.FindOrInsert(key, digest, &inserted);
        table_.set_value(idx, scratch_state_);
        resident_bytes_ += entry;
        ctx_.trace->Cpu(costs.combine_record_s, OpTag::kCombine,
                        /*d_reduce_work=*/1);
        ++combines;
      } else {
        // Overflow tuple: stage to the appropriate disk bucket.
        const int b = static_cast<int>(
            FastRangeBucket(digest, static_cast<uint64_t>(num_buckets_)));
        if (ctx_.values_are_states) {
          buckets_->Add(b, key, value);
        } else {
          const std::string state = inc->Init(key, value);
          buckets_->Add(b, key, state);
        }
      }
    }
  });
  ctx_.metrics->reduce_input_records += n;
  ctx_.metrics->combine_invocations += combines;
  ctx_.trace->Cpu(costs.hash_record_s * static_cast<double>(n),
                  OpTag::kShuffle);
  ctx_.out->set_streaming(false);
  return Status::OK();
}

Status IncHashEngine::ConsumeLegacy(const KvBuffer& segment) {
  const CostModel& costs = ctx_.config->costs;
  IncrementalReducer* inc = ctx_.inc;
  ctx_.out->set_streaming(true);
  KvBufferReader reader(segment);
  std::string_view key, value;
  uint64_t n = 0, combines = 0;
  while (reader.Next(&key, &value)) {
    ++n;
    auto it = states_.find(std::string(key));
    if (it != states_.end()) {
      const uint64_t before = it->second.size();
      if (ctx_.values_are_states) {
        inc->Combine(key, &it->second, value);
      } else {
        const std::string state = inc->Init(key, value);
        inc->Combine(key, &it->second, state);
      }
      inc->OnUpdate(key, &it->second, ctx_.out);
      // States are budgeted at their hint size; growth beyond the hint is
      // still tracked so memory accounting cannot be gamed.
      if (it->second.size() > inc->StateBytesHint() &&
          it->second.size() > before) {
        resident_bytes_ += it->second.size() - std::max<uint64_t>(
                                                   before,
                                                   inc->StateBytesHint());
      }
      ++combines;
      ctx_.trace->Cpu(costs.combine_record_s, OpTag::kCombine,
                      /*d_reduce_work=*/1);
    } else {
      const uint64_t entry = key.size() + inc->StateBytesHint() +
                             ctx_.config->resident_entry_overhead;
      if (resident_bytes_ + entry <= capacity_bytes_) {
        std::string state = ctx_.values_are_states
                                ? std::string(value)
                                : inc->Init(key, value);
        inc->OnUpdate(key, &state, ctx_.out);
        states_.emplace(std::string(key), std::move(state));
        resident_bytes_ += entry;
        ctx_.trace->Cpu(costs.combine_record_s, OpTag::kCombine,
                        /*d_reduce_work=*/1);
        ++combines;
      } else {
        // Overflow tuple: stage to the appropriate disk bucket.
        if (ctx_.values_are_states) {
          buckets_->Add(static_cast<int>(h3_.Bucket(key, num_buckets_)),
                        key, value);
        } else {
          const std::string state = inc->Init(key, value);
          buckets_->Add(static_cast<int>(h3_.Bucket(key, num_buckets_)),
                        key, state);
        }
      }
    }
  }
  ctx_.metrics->reduce_input_records += n;
  ctx_.metrics->combine_invocations += combines;
  ctx_.trace->Cpu(costs.hash_record_s * static_cast<double>(n),
                  OpTag::kShuffle);
  ctx_.out->set_streaming(false);
  return Status::OK();
}

Status IncHashEngine::SaveCheckpoint(CheckpointWriter* w) const {
  if (!use_flat_) {
    return Status::InvalidArgument(
        "INC-hash checkpointing requires the flat hash core");
  }
  w->PutU64("inc.resident_bytes", resident_bytes_);
  w->PutU64("inc.entries", table_.size());
  for (uint32_t i = 0; i < table_.size(); ++i) {
    const std::string tag = std::to_string(i);
    w->PutBytes("inc.k." + tag, table_.key_at(i));
    w->PutBytes("inc.v." + tag, table_.value_at(i));
  }
  buckets_->SaveTo(w);
  return Status::OK();
}

Status IncHashEngine::RestoreCheckpoint(CheckpointReader* r) {
  if (!use_flat_) {
    return Status::InvalidArgument(
        "INC-hash checkpointing requires the flat hash core");
  }
  RETURN_IF_ERROR(r->GetU64("inc.resident_bytes", &resident_bytes_));
  uint64_t entries = 0;
  RETURN_IF_ERROR(r->GetU64("inc.entries", &entries));
  table_.Clear();
  table_.Reserve(entries);
  for (uint64_t i = 0; i < entries; ++i) {
    const std::string tag = std::to_string(i);
    std::string_view key, value;
    RETURN_IF_ERROR(r->GetBytes("inc.k." + tag, &key));
    RETURN_IF_ERROR(r->GetBytes("inc.v." + tag, &value));
    // Re-insertion in saved (== insertion) order with the recomputed h3
    // digest reproduces iteration order, which is what keeps Finish's
    // finalize sequence — and so the output bytes — identical.
    bool inserted = false;
    const uint32_t idx = table_.FindOrInsert(key, h3_(key), &inserted);
    if (!inserted) {
      return Status::Corruption("duplicate key in INC-hash checkpoint");
    }
    table_.set_value(idx, value);
  }
  return buckets_->RestoreFrom(r);
}

Status IncHashEngine::Finish() {
  const CostModel& costs = ctx_.config->costs;
  IncrementalReducer* inc = ctx_.inc;
  // Resident keys never spilled a tuple, so finalizing them from memory is
  // exact — and immediate, which is what lets INC-hash emit results the
  // moment the maps finish.
  uint64_t fn_bytes = 0;
  if (use_flat_) {
    table_.ForEach([&](uint32_t idx) {
      const std::string_view key = table_.key_at(idx);
      const std::string_view state = table_.value_at(idx);
      inc->Finalize(key, state, ctx_.out);
      fn_bytes += key.size() + state.size();
      ctx_.trace->Cpu(0.0, OpTag::kReduceFn, /*d_reduce_work=*/1);
    });
    ctx_.metrics->reduce_groups += table_.size();
    table_.FlushStatsTo(ctx_.metrics);
    table_.Clear();
  } else {
    for (auto& [key, state] : states_) {
      inc->Finalize(key, state, ctx_.out);
      fn_bytes += key.size() + state.size();
      ctx_.trace->Cpu(0.0, OpTag::kReduceFn, /*d_reduce_work=*/1);
    }
    ctx_.metrics->reduce_groups += states_.size();
    states_.clear();
  }
  ctx_.trace->Cpu(costs.reduce_fn_byte_s * static_cast<double>(fn_bytes),
                  OpTag::kReduceFn);
  resident_bytes_ = 0;

  buckets_->FlushAll();
  for (int b = 0; b < num_buckets_; ++b) {
    ASSIGN_OR_RETURN(KvBuffer data, buckets_->TakeBucket(b));
    if (data.empty()) continue;
    RETURN_IF_ERROR(bucket_pass_->Process(
        std::move(data), /*level=*/2, 0,
        Mix64(ctx_.integrity_owner ^ (2ULL << 40) ^
              (static_cast<uint64_t>(b) + 1))));
  }
  bucket_pass_->FlushStatsTo(ctx_.metrics);
  ctx_.out->Flush();
  return Status::OK();
}

}  // namespace onepass
