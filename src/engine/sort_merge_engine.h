// SortMergeEngine: the Hadoop baseline reduce side (§2.2).
//
// Sorted map-output segments accumulate in the shuffle buffer (B_r bytes).
// When the buffer fills, the segments are merged into one sorted run and
// spilled to disk (applying the combine function first when the workload
// has one, as Hadoop does). A background multi-pass merge combines the
// smallest F on-disk runs whenever 2F-1 files exist (the paper's Fig. 3
// policy, shared with the analytical model via MergeScheduler).
//
// Only at Finish() — after ALL input has arrived and the multi-pass merge
// has produced at most 2F-1 runs — does the final merge stream records in
// key order into the reduce function. This is precisely the blocking
// behaviour the paper attacks: no reduce work, and no output, can happen
// before the merge completes.

#ifndef ONEPASS_ENGINE_SORT_MERGE_ENGINE_H_
#define ONEPASS_ENGINE_SORT_MERGE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/engine/group_by_engine.h"
#include "src/model/merge_tree.h"
#include "src/mr/cost_trace.h"
#include "src/util/kv_buffer.h"

namespace onepass {

class SortMergeEngine : public GroupByEngine {
 public:
  explicit SortMergeEngine(const EngineContext& ctx);

  Status Consume(const KvBuffer& segment, bool sorted) override;
  Status Finish() override;
  // Re-merges everything received so far and applies the reduce function,
  // writing a snapshot answer (charged as I/O + CPU, discarded from the
  // data plane). Does not modify the engine's state.
  Status Snapshot() override;
  // Buffered segments, the on-disk run manifest (raw or encoded, with
  // dead entries kept positionally so MergeScheduler file ids stay
  // aligned), and the scheduler's schedule state.
  Status SaveCheckpoint(CheckpointWriter* w) const override;
  Status RestoreCheckpoint(CheckpointReader* r) override;

 private:
  // One on-disk sorted run. Under JobConfig::block_codec == kNone the
  // payload lives in `raw` and `disk_bytes == raw_bytes`; under a codec
  // the run is stored as a prefix-coded block stream in `enc` (that is
  // what disk carries — `raw` stays empty) and readers decode on access.
  struct Run {
    KvBuffer raw;
    std::string enc;
    uint64_t raw_bytes = 0;
    uint64_t disk_bytes = 0;
  };

  // Merges the buffered segments into one sorted run (combining if
  // enabled) and spills it to disk; may trigger a background merge.
  void SpillBuffered();
  // Collapses a group's values into one combined state (combiner path).
  std::string CombineGroup(std::string_view key,
                           const std::vector<std::string_view>& values,
                           uint64_t* combines);
  bool coded() const;
  // Packages a merged payload as a Run, encoding it (and charging the
  // compress CPU against `tag`) when a codec is active. The caller charges
  // the disk write of the returned disk_bytes.
  Run StoreRun(KvBuffer run, OpTag tag);
  // Decodes a codec run's block stream back to its payload, charging the
  // decompress CPU against `tag`. Codec runs only.
  KvBuffer DecodeRun(const Run& run, OpTag tag);

  // In-memory sorted segments awaiting merge.
  std::vector<KvBuffer> buffered_;
  uint64_t buffered_bytes_ = 0;
  // On-disk sorted runs, indexed by MergeScheduler file id. Entries
  // consumed by background merges are cleared.
  std::vector<Run> runs_;
  MergeScheduler scheduler_;
  bool use_combiner_;
};

}  // namespace onepass

#endif  // ONEPASS_ENGINE_SORT_MERGE_ENGINE_H_
