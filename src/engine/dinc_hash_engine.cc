#include "src/engine/dinc_hash_engine.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/engine/batch_consume.h"
#include "src/engine/inc_hash_engine.h"

namespace onepass {

namespace {
constexpr int kDefaultBuckets = 16;
// How many of the coldest monitored slots the proactive eviction hook
// examines per miss (amortized O(1) per tuple).
constexpr int kExpirySweep = 4;
}  // namespace

DincHashEngine::DincHashEngine(const EngineContext& ctx)
    : GroupByEngine(ctx),
      use_flat_(ctx.config->hash_core == HashCoreKind::kFlat),
      h3_(ctx.hashes.At(2)) {
  CHECK(ctx.inc != nullptr) << "DINC-hash requires an IncrementalReducer";
  const JobConfig& cfg = *ctx.config;
  const uint64_t entry_cost = ctx.inc->StateBytesHint() + 16 /*avg key*/ +
                              cfg.resident_entry_overhead;
  // Pick h so each bucket's distinct keys fit in memory when read back
  // (the paper: "setting h as small as possible increases s").
  num_buckets_ =
      cfg.expected_keys_per_reducer > 0
          ? IncHashEngine::ChooseNumBuckets(cfg.expected_keys_per_reducer,
                                            cfg.reduce_memory_bytes,
                                            entry_cost,
                                            cfg.bucket_page_bytes)
          : kDefaultBuckets;
  const uint64_t page = IncHashEngine::ClampedPageBytes(
      cfg.bucket_page_bytes, cfg.reduce_memory_bytes, num_buckets_);
  const uint64_t reserved = std::min<uint64_t>(
      cfg.reduce_memory_bytes, static_cast<uint64_t>(num_buckets_) * page);
  capacity_entries_ =
      std::max<uint64_t>(1, (cfg.reduce_memory_bytes - reserved) / entry_cost);
  sketch_ = std::make_unique<FrequentSketch>(capacity_entries_);
  states_.resize(capacity_entries_);
  buckets_ = std::make_unique<BucketFileManager>(
      num_buckets_, page, ctx_.trace, ctx_.metrics, &cfg.integrity,
      ctx_.faults, ctx_.integrity_owner, &cfg.costs, cfg.block_codec,
      cfg.codec_block_bytes);
  bucket_pass_ = std::make_unique<BucketPassProcessor>(
      &ctx_, capacity_entries_ * entry_cost);
}

void DincHashEngine::SpillState(std::string_view key, uint64_t digest,
                                std::string* state) {
  if (ctx_.inc->TryDiscard(key, state, ctx_.out)) return;
  buckets_->Add(static_cast<int>(FastRangeBucket(
                    digest, static_cast<uint64_t>(num_buckets_))),
                key, *state);
}

Status DincHashEngine::Consume(const KvBuffer& segment, bool /*sorted*/) {
  return use_flat_ ? ConsumeFlat(segment) : ConsumeLegacy(segment);
}

Status DincHashEngine::ConsumeFlat(const KvBuffer& segment) {
  const CostModel& costs = ctx_.config->costs;
  IncrementalReducer* inc = ctx_.inc;
  ctx_.out->set_streaming(true);
  uint64_t n = 0, combines = 0;
  std::string tmp_state;
  // Batched walk (§5.8): one h3 digest per tuple, computed a RecordBatch
  // at a time and shared between the monitor-index probe and the
  // spill-bucket route, with the sketch index's control word prefetched
  // kProbePrefetchDistance tuples ahead.
  ConsumeBatched(
      segment, EffectiveBatchRecords(*ctx_.config), h3_,
      ResolveSimdTier(ctx_.config->simd), ctx_.metrics, &digest_scratch_,
      *sketch_,
      [&](std::string_view key, std::string_view value, uint64_t digest) {
    ++n;
    // Tuples arrive as key-state pairs (init ran map-side); otherwise
    // initialize here.
    std::string_view state = value;
    if (!ctx_.values_are_states) {
      tmp_state = inc->Init(key, value);
      state = tmp_state;
    }
    const int found = sketch_->Find(key, digest);
    if (found >= 0) {
      // Monitored: combine in memory.
      sketch_->Hit(found);
      inc->Combine(key, &states_[found], state);
      inc->OnUpdate(key, &states_[found], ctx_.out);
      ++combines;
      ctx_.trace->Cpu(costs.combine_record_s, OpTag::kCombine,
                      /*d_reduce_work=*/1);
      return;
    }
    if (!sketch_->HasFreeSlot()) {
      // Proactive eviction hook (§6.2): scan a few of the coldest slots
      // and let the workload discard finished states (e.g. all-expired
      // sessions are emitted, not spilled), freeing a slot for the new
      // key before the FREQUENT policy has to spill anything.
      for (int c : sketch_->ColdestSlots(kExpirySweep)) {
        if (sketch_->Count(c) <= 1 &&
            inc->TryDiscard(sketch_->Key(c), &states_[c], ctx_.out)) {
          states_[c].clear();
          sketch_->Release(c);
          break;
        }
      }
    }
    if (sketch_->HasFreeSlot()) {
      const int slot = sketch_->InsertIntoFree(key, digest);
      states_[slot].assign(state.data(), state.size());
      inc->OnUpdate(key, &states_[slot], ctx_.out);
      ++combines;
      ctx_.trace->Cpu(costs.combine_record_s, OpTag::kCombine,
                      /*d_reduce_work=*/1);
      return;
    }
    if (sketch_->MinCount() == 0) {
      // Classic FREQUENT eviction: displace a zero-count slot; its state
      // is discarded or spilled (routed by the digest retained in the
      // slot — no rehash of the evicted key).
      const int slot = sketch_->MinSlot();
      std::string old = std::move(states_[slot]);
      const uint64_t evicted_digest = sketch_->SlotHash(slot);
      const std::string evicted_key = sketch_->ReplaceSlot(slot, key, digest);
      SpillState(evicted_key, evicted_digest, &old);
      states_[slot].assign(state.data(), state.size());
      inc->OnUpdate(key, &states_[slot], ctx_.out);
      ++combines;
      ctx_.trace->Cpu(costs.combine_record_s, OpTag::kCombine,
                      /*d_reduce_work=*/1);
      return;
    }
    // All counters > 0: decrement everyone, spill the tuple.
    sketch_->DecrementAll();
    buckets_->Add(static_cast<int>(FastRangeBucket(
                      digest, static_cast<uint64_t>(num_buckets_))),
                  key, state);
  });
  ctx_.metrics->reduce_input_records += n;
  ctx_.metrics->combine_invocations += combines;
  ctx_.trace->Cpu(costs.hash_record_s * static_cast<double>(n),
                  OpTag::kShuffle);
  ctx_.out->set_streaming(false);
  return Status::OK();
}

Status DincHashEngine::ConsumeLegacy(const KvBuffer& segment) {
  const CostModel& costs = ctx_.config->costs;
  IncrementalReducer* inc = ctx_.inc;
  ctx_.out->set_streaming(true);
  KvBufferReader reader(segment);
  std::string_view key, value;
  uint64_t n = 0, combines = 0;
  std::string tmp_state;
  while (reader.Next(&key, &value)) {
    ++n;
    std::string_view state = value;
    if (!ctx_.values_are_states) {
      tmp_state = inc->Init(key, value);
      state = tmp_state;
    }
    const int found = sketch_->Find(key);
    if (found >= 0) {
      sketch_->Hit(found);
      inc->Combine(key, &states_[found], state);
      inc->OnUpdate(key, &states_[found], ctx_.out);
      ++combines;
      ctx_.trace->Cpu(costs.combine_record_s, OpTag::kCombine,
                      /*d_reduce_work=*/1);
      continue;
    }
    if (!sketch_->HasFreeSlot()) {
      for (int c : sketch_->ColdestSlots(kExpirySweep)) {
        if (sketch_->Count(c) <= 1 &&
            inc->TryDiscard(sketch_->Key(c), &states_[c], ctx_.out)) {
          states_[c].clear();
          sketch_->Release(c);
          break;
        }
      }
    }
    if (sketch_->HasFreeSlot()) {
      const int slot = sketch_->InsertIntoFree(key);
      states_[slot].assign(state.data(), state.size());
      inc->OnUpdate(key, &states_[slot], ctx_.out);
      ++combines;
      ctx_.trace->Cpu(costs.combine_record_s, OpTag::kCombine,
                      /*d_reduce_work=*/1);
      continue;
    }
    if (sketch_->MinCount() == 0) {
      const int slot = sketch_->MinSlot();
      std::string old = std::move(states_[slot]);
      const std::string evicted_key = sketch_->ReplaceSlot(slot, key);
      SpillState(evicted_key, h3_(evicted_key), &old);
      states_[slot].assign(state.data(), state.size());
      inc->OnUpdate(key, &states_[slot], ctx_.out);
      ++combines;
      ctx_.trace->Cpu(costs.combine_record_s, OpTag::kCombine,
                      /*d_reduce_work=*/1);
      continue;
    }
    sketch_->DecrementAll();
    buckets_->Add(static_cast<int>(h3_.Bucket(key, num_buckets_)), key,
                  state);
  }
  ctx_.metrics->reduce_input_records += n;
  ctx_.metrics->combine_invocations += combines;
  ctx_.trace->Cpu(costs.hash_record_s * static_cast<double>(n),
                  OpTag::kShuffle);
  ctx_.out->set_streaming(false);
  return Status::OK();
}

Status DincHashEngine::SaveCheckpoint(CheckpointWriter* w) const {
  if (!use_flat_) {
    return Status::InvalidArgument(
        "DINC-hash checkpointing requires the flat hash core");
  }
  w->PutU64("dinc.covered", covered_keys_);
  sketch_->SaveTo(w);
  for (size_t slot = 0; slot < capacity_entries_; ++slot) {
    if (!sketch_->SlotOccupied(static_cast<int>(slot))) continue;
    w->PutBytes("dinc.s." + std::to_string(slot), states_[slot]);
  }
  buckets_->SaveTo(w);
  return Status::OK();
}

Status DincHashEngine::RestoreCheckpoint(CheckpointReader* r) {
  if (!use_flat_) {
    return Status::InvalidArgument(
        "DINC-hash checkpointing requires the flat hash core");
  }
  RETURN_IF_ERROR(r->GetU64("dinc.covered", &covered_keys_));
  RETURN_IF_ERROR(sketch_->RestoreFrom(r));
  for (size_t slot = 0; slot < capacity_entries_; ++slot) {
    if (!sketch_->SlotOccupied(static_cast<int>(slot))) {
      states_[slot].clear();
      continue;
    }
    std::string_view state;
    RETURN_IF_ERROR(r->GetBytes("dinc.s." + std::to_string(slot), &state));
    states_[slot].assign(state);
  }
  return buckets_->RestoreFrom(r);
}

Status DincHashEngine::Finish() {
  const CostModel& costs = ctx_.config->costs;
  const JobConfig& cfg = *ctx_.config;
  IncrementalReducer* inc = ctx_.inc;

  if (cfg.dinc_coverage_threshold > 0) {
    // Approximate early termination: return the partial computation for
    // keys whose coverage lower bound reaches phi; skip the disk-resident
    // buckets entirely.
    uint64_t fn_bytes = 0;
    for (size_t slot = 0; slot < capacity_entries_; ++slot) {
      const int s = static_cast<int>(slot);
      if (!sketch_->SlotOccupied(s)) continue;
      if (sketch_->CoverageLowerBound(s) >= cfg.dinc_coverage_threshold) {
        const std::string_view key = sketch_->Key(s);
        inc->Finalize(key, states_[slot], ctx_.out);
        fn_bytes += key.size() + states_[slot].size();
        ++covered_keys_;
        ctx_.trace->Cpu(0.0, OpTag::kReduceFn, /*d_reduce_work=*/1);
      }
    }
    ctx_.metrics->reduce_groups += covered_keys_;
    ctx_.trace->Cpu(costs.reduce_fn_byte_s * static_cast<double>(fn_bytes),
                    OpTag::kReduceFn);
    sketch_->FlushIndexStatsTo(ctx_.metrics);
    ctx_.out->Flush();
    return Status::OK();
  }

  if (inc->FlushResidentStatesAtEnd()) {
    // Exact mode for algebraic aggregates: a monitored key may also have
    // tuples in the buckets (from periods it was unmonitored), so its
    // resident state must merge with them there.
    for (size_t slot = 0; slot < capacity_entries_; ++slot) {
      const int s = static_cast<int>(slot);
      if (!sketch_->SlotOccupied(s)) continue;
      const std::string_view key = sketch_->Key(s);
      const uint64_t digest = use_flat_ ? sketch_->SlotHash(s) : h3_(key);
      SpillState(key, digest, &states_[slot]);
      states_[slot].clear();
    }
  } else {
    // The workload's Finalize is locally correct (e.g. sessionization):
    // finalize resident states straight from memory.
    uint64_t fn_bytes = 0, groups = 0;
    for (size_t slot = 0; slot < capacity_entries_; ++slot) {
      const int s = static_cast<int>(slot);
      if (!sketch_->SlotOccupied(s)) continue;
      const std::string_view key = sketch_->Key(s);
      inc->Finalize(key, states_[slot], ctx_.out);
      fn_bytes += key.size() + states_[slot].size();
      ++groups;
      ctx_.trace->Cpu(0.0, OpTag::kReduceFn, /*d_reduce_work=*/1);
    }
    ctx_.metrics->reduce_groups += groups;
    ctx_.trace->Cpu(costs.reduce_fn_byte_s * static_cast<double>(fn_bytes),
                    OpTag::kReduceFn);
  }

  buckets_->FlushAll();
  for (int b = 0; b < num_buckets_; ++b) {
    ASSIGN_OR_RETURN(KvBuffer data, buckets_->TakeBucket(b));
    if (data.empty()) continue;
    RETURN_IF_ERROR(bucket_pass_->Process(
        std::move(data), /*level=*/2, 0,
        Mix64(ctx_.integrity_owner ^ (2ULL << 40) ^
              (static_cast<uint64_t>(b) + 1))));
  }
  sketch_->FlushIndexStatsTo(ctx_.metrics);
  bucket_pass_->FlushStatsTo(ctx_.metrics);
  ctx_.out->Flush();
  return Status::OK();
}

}  // namespace onepass
