#include "src/engine/dinc_hash_engine.h"

#include <algorithm>
#include <unordered_map>

#include "src/common/logging.h"
#include "src/engine/inc_hash_engine.h"

namespace onepass {

namespace {
constexpr int kMaxRecursionDepth = 16;
constexpr int kDefaultBuckets = 16;
// How many of the coldest monitored slots the proactive eviction hook
// examines per miss (amortized O(1) per tuple).
constexpr int kExpirySweep = 4;
}  // namespace

DincHashEngine::DincHashEngine(const EngineContext& ctx)
    : GroupByEngine(ctx), h3_(ctx.hashes.At(2)) {
  CHECK(ctx.inc != nullptr) << "DINC-hash requires an IncrementalReducer";
  const JobConfig& cfg = *ctx.config;
  const uint64_t entry_cost = ctx.inc->StateBytesHint() + 16 /*avg key*/ +
                              cfg.resident_entry_overhead;
  // Pick h so each bucket's distinct keys fit in memory when read back
  // (the paper: "setting h as small as possible increases s").
  num_buckets_ =
      cfg.expected_keys_per_reducer > 0
          ? IncHashEngine::ChooseNumBuckets(cfg.expected_keys_per_reducer,
                                            cfg.reduce_memory_bytes,
                                            entry_cost,
                                            cfg.bucket_page_bytes)
          : kDefaultBuckets;
  const uint64_t page = IncHashEngine::ClampedPageBytes(
      cfg.bucket_page_bytes, cfg.reduce_memory_bytes, num_buckets_);
  const uint64_t reserved = std::min<uint64_t>(
      cfg.reduce_memory_bytes, static_cast<uint64_t>(num_buckets_) * page);
  capacity_entries_ =
      std::max<uint64_t>(1, (cfg.reduce_memory_bytes - reserved) / entry_cost);
  sketch_ = std::make_unique<FrequentSketch>(capacity_entries_);
  states_.resize(capacity_entries_);
  buckets_ = std::make_unique<BucketFileManager>(
      num_buckets_, page, ctx_.trace, ctx_.metrics, &cfg.integrity,
      ctx_.faults, ctx_.integrity_owner);
}

void DincHashEngine::SpillState(std::string_view key, std::string* state) {
  if (ctx_.inc->TryDiscard(key, state, ctx_.out)) return;
  buckets_->Add(static_cast<int>(h3_.Bucket(key, num_buckets_)), key,
                *state);
}

Status DincHashEngine::Consume(const KvBuffer& segment, bool /*sorted*/) {
  const CostModel& costs = ctx_.config->costs;
  IncrementalReducer* inc = ctx_.inc;
  ctx_.out->set_streaming(true);
  KvBufferReader reader(segment);
  std::string_view key, value;
  uint64_t n = 0, combines = 0;
  std::string tmp_state;
  while (reader.Next(&key, &value)) {
    ++n;
    // Tuples arrive as key-state pairs (init ran map-side); otherwise
    // initialize here.
    std::string_view state = value;
    if (!ctx_.values_are_states) {
      tmp_state = inc->Init(key, value);
      state = tmp_state;
    }
    const int found = sketch_->Find(key);
    if (found >= 0) {
      // Monitored: combine in memory.
      sketch_->Hit(found);
      inc->Combine(key, &states_[found], state);
      inc->OnUpdate(key, &states_[found], ctx_.out);
      ++combines;
      ctx_.trace->Cpu(costs.combine_record_s, OpTag::kCombine,
                      /*d_reduce_work=*/1);
      continue;
    }
    if (!sketch_->HasFreeSlot()) {
      // Proactive eviction hook (§6.2): scan a few of the coldest slots
      // and let the workload discard finished states (e.g. all-expired
      // sessions are emitted, not spilled), freeing a slot for the new
      // key before the FREQUENT policy has to spill anything.
      for (int c : sketch_->ColdestSlots(kExpirySweep)) {
        if (sketch_->Count(c) <= 1 &&
            inc->TryDiscard(sketch_->Key(c), &states_[c], ctx_.out)) {
          states_[c].clear();
          sketch_->Release(c);
          break;
        }
      }
    }
    if (sketch_->HasFreeSlot()) {
      const int slot = sketch_->InsertIntoFree(key);
      states_[slot].assign(state.data(), state.size());
      inc->OnUpdate(key, &states_[slot], ctx_.out);
      ++combines;
      ctx_.trace->Cpu(costs.combine_record_s, OpTag::kCombine,
                      /*d_reduce_work=*/1);
      continue;
    }
    if (sketch_->MinCount() == 0) {
      // Classic FREQUENT eviction: displace a zero-count slot; its state
      // is discarded or spilled.
      const int slot = sketch_->MinSlot();
      std::string old = std::move(states_[slot]);
      const std::string evicted_key = sketch_->ReplaceSlot(slot, key);
      SpillState(evicted_key, &old);
      states_[slot].assign(state.data(), state.size());
      inc->OnUpdate(key, &states_[slot], ctx_.out);
      ++combines;
      ctx_.trace->Cpu(costs.combine_record_s, OpTag::kCombine,
                      /*d_reduce_work=*/1);
      continue;
    }
    // All counters > 0: decrement everyone, spill the tuple.
    sketch_->DecrementAll();
    buckets_->Add(static_cast<int>(h3_.Bucket(key, num_buckets_)), key,
                  state);
  }
  ctx_.metrics->reduce_input_records += n;
  ctx_.metrics->combine_invocations += combines;
  ctx_.trace->Cpu(costs.hash_record_s * static_cast<double>(n),
                  OpTag::kShuffle);
  ctx_.out->set_streaming(false);
  return Status::OK();
}

Status DincHashEngine::ProcessBucket(KvBuffer data, uint64_t level,
                                     int depth, uint64_t owner) {
  // Beyond the recursion bound (pathological hash collisions), finish in
  // memory regardless of the budget rather than looping.
  const bool force_in_memory = depth > kMaxRecursionDepth;
  const JobConfig& cfg = *ctx_.config;
  const CostModel& costs = cfg.costs;
  IncrementalReducer* inc = ctx_.inc;
  const uint64_t entry_cost = inc->StateBytesHint() + 16 +
                              cfg.resident_entry_overhead;
  const uint64_t capacity_bytes = capacity_entries_ * entry_cost;

  std::unordered_map<std::string, std::string> table;
  uint64_t bytes_used = 0, combines = 0;
  bool overflow = false;
  {
    KvBufferReader reader(data);
    std::string_view key, state;
    while (reader.Next(&key, &state)) {
      auto it = table.find(std::string(key));
      if (it != table.end()) {
        inc->Combine(key, &it->second, state);
        ++combines;
        continue;
      }
      const uint64_t entry = key.size() + inc->StateBytesHint() +
                             cfg.resident_entry_overhead;
      if (!force_in_memory && bytes_used + entry > capacity_bytes &&
          !table.empty()) {
        overflow = true;
        break;
      }
      table.emplace(std::string(key), std::string(state));
      bytes_used += entry;
      ++combines;
    }
  }
  ctx_.trace->Cpu(costs.hash_record_s * static_cast<double>(data.count()) +
                      costs.combine_record_s * static_cast<double>(combines),
                  OpTag::kReduceFn);

  if (!overflow) {
    ctx_.metrics->combine_invocations += combines;
    uint64_t fn_bytes = 0;
    for (auto& [k, state] : table) {
      inc->Finalize(k, state, ctx_.out);
      fn_bytes += k.size() + state.size();
      ctx_.trace->Cpu(0.0, OpTag::kReduceFn, /*d_reduce_work=*/1);
    }
    ctx_.metrics->reduce_groups += table.size();
    ctx_.trace->Cpu(costs.reduce_fn_byte_s * static_cast<double>(fn_bytes),
                    OpTag::kReduceFn);
    return Status::OK();
  }

  table.clear();
  const int sub = 4;
  BucketFileManager subs(sub, cfg.bucket_page_bytes, ctx_.trace,
                         ctx_.metrics, &cfg.integrity, ctx_.faults, owner);
  const UniversalHash h = ctx_.hashes.At(level + 1);
  KvBufferReader reader(data);
  std::string_view key, state;
  while (reader.Next(&key, &state)) {
    subs.Add(static_cast<int>(h.Bucket(key, sub)), key, state);
  }
  ctx_.trace->Cpu(costs.hash_record_s * static_cast<double>(data.count()),
                  OpTag::kReduceFn);
  data.Clear();
  subs.FlushAll();
  for (int b = 0; b < sub; ++b) {
    ASSIGN_OR_RETURN(KvBuffer sb, subs.TakeBucket(b));
    if (sb.empty()) continue;
    RETURN_IF_ERROR(ProcessBucket(std::move(sb), level + 1, depth + 1,
                                  Mix64(owner ^ (level << 40) ^
                                        (static_cast<uint64_t>(b) + 1))));
  }
  return Status::OK();
}

Status DincHashEngine::Finish() {
  const CostModel& costs = ctx_.config->costs;
  const JobConfig& cfg = *ctx_.config;
  IncrementalReducer* inc = ctx_.inc;

  if (cfg.dinc_coverage_threshold > 0) {
    // Approximate early termination: return the partial computation for
    // keys whose coverage lower bound reaches phi; skip the disk-resident
    // buckets entirely.
    uint64_t fn_bytes = 0;
    for (size_t slot = 0; slot < capacity_entries_; ++slot) {
      const int s = static_cast<int>(slot);
      if (!sketch_->SlotOccupied(s)) continue;
      if (sketch_->CoverageLowerBound(s) >= cfg.dinc_coverage_threshold) {
        const std::string_view key = sketch_->Key(s);
        inc->Finalize(key, states_[slot], ctx_.out);
        fn_bytes += key.size() + states_[slot].size();
        ++covered_keys_;
        ctx_.trace->Cpu(0.0, OpTag::kReduceFn, /*d_reduce_work=*/1);
      }
    }
    ctx_.metrics->reduce_groups += covered_keys_;
    ctx_.trace->Cpu(costs.reduce_fn_byte_s * static_cast<double>(fn_bytes),
                    OpTag::kReduceFn);
    ctx_.out->Flush();
    return Status::OK();
  }

  if (inc->FlushResidentStatesAtEnd()) {
    // Exact mode for algebraic aggregates: a monitored key may also have
    // tuples in the buckets (from periods it was unmonitored), so its
    // resident state must merge with them there.
    for (size_t slot = 0; slot < capacity_entries_; ++slot) {
      const int s = static_cast<int>(slot);
      if (!sketch_->SlotOccupied(s)) continue;
      SpillState(sketch_->Key(s), &states_[slot]);
      states_[slot].clear();
    }
  } else {
    // The workload's Finalize is locally correct (e.g. sessionization):
    // finalize resident states straight from memory.
    uint64_t fn_bytes = 0, groups = 0;
    for (size_t slot = 0; slot < capacity_entries_; ++slot) {
      const int s = static_cast<int>(slot);
      if (!sketch_->SlotOccupied(s)) continue;
      const std::string_view key = sketch_->Key(s);
      inc->Finalize(key, states_[slot], ctx_.out);
      fn_bytes += key.size() + states_[slot].size();
      ++groups;
      ctx_.trace->Cpu(0.0, OpTag::kReduceFn, /*d_reduce_work=*/1);
    }
    ctx_.metrics->reduce_groups += groups;
    ctx_.trace->Cpu(costs.reduce_fn_byte_s * static_cast<double>(fn_bytes),
                    OpTag::kReduceFn);
  }

  buckets_->FlushAll();
  for (int b = 0; b < num_buckets_; ++b) {
    ASSIGN_OR_RETURN(KvBuffer data, buckets_->TakeBucket(b));
    if (data.empty()) continue;
    RETURN_IF_ERROR(ProcessBucket(
        std::move(data), /*level=*/2, 0,
        Mix64(ctx_.integrity_owner ^ (2ULL << 40) ^
              (static_cast<uint64_t>(b) + 1))));
  }
  ctx_.out->Flush();
  return Status::OK();
}

}  // namespace onepass
