#include "src/engine/mr_hash_engine.h"

#include "src/engine/batch_consume.h"

#include <string>
#include <unordered_map>

#include "src/common/logging.h"
#include "src/engine/inc_hash_engine.h"

namespace onepass {

namespace {
constexpr int kMaxRecursionDepth = 16;
constexpr int kDefaultBuckets = 16;
constexpr uint32_t kNilNode = UINT32_MAX;
}  // namespace

int MRHashEngine::ChooseNumBuckets(uint64_t expected_bytes,
                                   uint64_t memory_bytes,
                                   uint64_t page_bytes) {
  // Keep a safety margin for the in-memory group-by table built over D1.
  const double fill = 0.8;
  const double usable = fill * static_cast<double>(memory_bytes);
  if (static_cast<double>(expected_bytes) <= usable) return 0;
  // Smallest h with (expected - D1)/h <= usable, where D1 = usable minus
  // the h (clamped) write-buffer pages.
  int last_feasible = 1;
  for (int h = 1; h < 1 << 20; ++h) {
    const double page = static_cast<double>(
        IncHashEngine::ClampedPageBytes(page_bytes, memory_bytes, h));
    const double d1 = usable - static_cast<double>(h) * page;
    if (d1 <= 0) break;
    last_feasible = h;
    const double per_bucket =
        (static_cast<double>(expected_bytes) - d1) / static_cast<double>(h);
    if (per_bucket <= usable) return h;
  }
  return last_feasible;
}

MRHashEngine::MRHashEngine(const EngineContext& ctx)
    : GroupByEngine(ctx),
      use_flat_(ctx.config->hash_core == HashCoreKind::kFlat),
      h2_(ctx.hashes.At(1)) {
  const JobConfig& cfg = *ctx.config;
  const uint64_t expected = cfg.expected_bytes_per_reducer;
  num_disk_buckets_ =
      expected > 0 ? ChooseNumBuckets(expected, cfg.reduce_memory_bytes,
                                      cfg.bucket_page_bytes)
                   : kDefaultBuckets;
  const uint64_t page =
      num_disk_buckets_ > 0
          ? IncHashEngine::ClampedPageBytes(cfg.bucket_page_bytes,
                                            cfg.reduce_memory_bytes,
                                            num_disk_buckets_)
          : 0;
  d1_capacity_bytes_ =
      cfg.reduce_memory_bytes -
      std::min<uint64_t>(cfg.reduce_memory_bytes,
                         static_cast<uint64_t>(num_disk_buckets_) * page);
  if (num_disk_buckets_ > 0) {
    buckets_ = std::make_unique<BucketFileManager>(
        num_disk_buckets_, page, ctx_.trace, ctx_.metrics,
        &cfg.integrity, ctx_.faults, ctx_.integrity_owner, &cfg.costs,
        cfg.block_codec, cfg.codec_block_bytes);
  }
}

Status MRHashEngine::Consume(const KvBuffer& segment, bool /*sorted*/) {
  const CostModel& costs = ctx_.config->costs;
  uint64_t n = 0;
  // Batched walk (§5.8): h2 digests for a whole RecordBatch at a time; the
  // FastRangeBucket identity (hash.h) makes FastRangeBucket(h2(key), h+1)
  // == h2_.Bucket(key, h+1) exactly, so routing is unchanged.
  ConsumeBatched(
      segment, EffectiveBatchRecords(*ctx_.config), h2_,
      ResolveSimdTier(ctx_.config->simd), ctx_.metrics, &digest_scratch_,
      NoProbePrefetch{},  // no table to warm: records route to buffers
      [&](std::string_view key, std::string_view value, uint64_t digest) {
    ++n;
    // Bucket 0 is D1 (in memory); 1..h map to disk buckets.
    const uint64_t bucket =
        num_disk_buckets_ == 0
            ? 0
            : FastRangeBucket(digest,
                              static_cast<uint64_t>(num_disk_buckets_) + 1);
    if (bucket == 0) {
      if (num_disk_buckets_ == 0) {
        // No disk buckets were provisioned; keep growing D1 (models an
        // under-estimated input; recursion handles oversized disk buckets
        // the same way).
        d1_.Append(key, value);
      } else if (!d1_demoted_ &&
                 d1_.bytes() + RecordBytes(key, value) <=
                     d1_capacity_bytes_) {
        d1_.Append(key, value);
      } else {
        // D1 under-provisioned: demote the whole bucket to disk so every
        // record of a bucket-0 key lives in one place (a key split between
        // memory and disk would be reduced twice).
        if (!d1_demoted_) {
          d1_demoted_ = true;
          KvBufferReader d1_reader(d1_);
          std::string_view dk, dv;
          while (d1_reader.Next(&dk, &dv)) buckets_->Add(0, dk, dv);
          d1_.Clear();
        }
        buckets_->Add(0, key, value);
      }
    } else {
      buckets_->Add(static_cast<int>(bucket - 1), key, value);
    }
  });
  ctx_.metrics->reduce_input_records += n;
  ctx_.trace->Cpu(costs.hash_record_s * static_cast<double>(n),
                  OpTag::kShuffle);
  return Status::OK();
}

Status MRHashEngine::SaveCheckpoint(CheckpointWriter* w) const {
  w->PutU64("mr.demoted", d1_demoted_ ? 1 : 0);
  w->PutU64("mr.d1_n", d1_.count());
  w->PutBytes("mr.d1", d1_.data());
  w->PutU64("mr.disk_buckets", static_cast<uint64_t>(num_disk_buckets_));
  if (buckets_) buckets_->SaveTo(w);
  return Status::OK();
}

Status MRHashEngine::RestoreCheckpoint(CheckpointReader* r) {
  uint64_t demoted = 0, d1_n = 0, disk_buckets = 0;
  std::string_view d1_bytes;
  RETURN_IF_ERROR(r->GetU64("mr.demoted", &demoted));
  RETURN_IF_ERROR(r->GetU64("mr.d1_n", &d1_n));
  RETURN_IF_ERROR(r->GetBytes("mr.d1", &d1_bytes));
  RETURN_IF_ERROR(r->GetU64("mr.disk_buckets", &disk_buckets));
  if (disk_buckets != static_cast<uint64_t>(num_disk_buckets_)) {
    return Status::Corruption(
        "checkpointed MR-hash bucket count does not match this config");
  }
  d1_demoted_ = demoted != 0;
  d1_ = KvBuffer::FromData(std::string(d1_bytes), d1_n);
  if (buckets_) RETURN_IF_ERROR(buckets_->RestoreFrom(r));
  return Status::OK();
}

void MRHashEngine::ProcessInMemory(const KvBuffer& data, uint64_t level) {
  if (use_flat_) {
    ProcessInMemoryFlat(data, level);
  } else {
    ProcessInMemoryLegacy(data, level);
  }
}

void MRHashEngine::ProcessInMemoryFlat(const KvBuffer& data, uint64_t level) {
  // Group by key with the level's hash function, hashed once per tuple.
  // Values are not copied: each occurrence is a view into `data`, chained
  // per group through nodes_ in arrival order.
  const CostModel& costs = ctx_.config->costs;
  const UniversalHash h = ctx_.hashes.At(level);
  group_table_.Clear();
  group_table_.Reserve(static_cast<size_t>(data.count()));
  nodes_.clear();
  nodes_.reserve(static_cast<size_t>(data.count()));
  // Batched walk (§5.8): the level hash for a whole RecordBatch at a time,
  // group-table control words prefetched kProbePrefetchDistance ahead.
  ConsumeBatched(
      data, EffectiveBatchRecords(*ctx_.config), h,
      ResolveSimdTier(ctx_.config->simd), ctx_.metrics, &digest_scratch_,
      group_table_,
      [&](std::string_view key, std::string_view value, uint64_t digest) {
    bool inserted = false;
    const uint32_t idx = group_table_.FindOrInsert(key, digest, &inserted);
    const uint32_t node = static_cast<uint32_t>(nodes_.size());
    nodes_.push_back({value.data(), static_cast<uint32_t>(value.size()),
                      kNilNode});
    if (inserted) {
      group_table_.set_pod(idx, ChainRef{node, node});
    } else {
      ChainRef c = group_table_.pod_at<ChainRef>(idx);
      nodes_[c.tail].next = node;
      c.tail = node;
      group_table_.set_pod(idx, c);
    }
  });
  ctx_.trace->Cpu(costs.hash_record_s * static_cast<double>(data.count()),
                  OpTag::kReduceFn);
  uint64_t fn_bytes = 0;
  group_table_.ForEach([&](uint32_t idx) {
    const std::string_view k = group_table_.key_at(idx);
    chain_scratch_.clear();
    for (uint32_t node = group_table_.pod_at<ChainRef>(idx).head;
         node != kNilNode; node = nodes_[node].next) {
      chain_scratch_.emplace_back(nodes_[node].ptr, nodes_[node].len);
    }
    VectorValueIterator it(&chain_scratch_);
    ctx_.reducer->Reduce(k, &it, ctx_.out);
    fn_bytes += k.size();
    for (auto v : chain_scratch_) fn_bytes += v.size();
    ctx_.trace->Cpu(0.0, OpTag::kReduceFn, /*d_reduce_work=*/1);
  });
  ctx_.metrics->reduce_groups += group_table_.size();
  ctx_.trace->Cpu(costs.reduce_fn_byte_s * static_cast<double>(fn_bytes),
                  OpTag::kReduceFn);
  group_table_.Clear();
}

void MRHashEngine::ProcessInMemoryLegacy(const KvBuffer& data,
                                         uint64_t level) {
  // Group by key with the level's hash function (h3, h5, ...): an
  // unordered_map keyed by the key bytes, seeded per level.
  const CostModel& costs = ctx_.config->costs;
  std::unordered_map<std::string_view, std::vector<std::string_view>> groups;
  groups.reserve(static_cast<size_t>(data.count()));
  KvBufferReader reader(data);
  std::string_view key, value;
  while (reader.Next(&key, &value)) {
    groups[key].push_back(value);
  }
  ctx_.trace->Cpu(costs.hash_record_s * static_cast<double>(data.count()),
                  OpTag::kReduceFn);
  uint64_t fn_bytes = 0;
  for (auto& [k, values] : groups) {
    VectorValueIterator it(&values);
    ctx_.reducer->Reduce(k, &it, ctx_.out);
    fn_bytes += k.size();
    for (auto v : values) fn_bytes += v.size();
    ctx_.trace->Cpu(0.0, OpTag::kReduceFn, /*d_reduce_work=*/1);
  }
  ctx_.metrics->reduce_groups += groups.size();
  ctx_.trace->Cpu(costs.reduce_fn_byte_s * static_cast<double>(fn_bytes),
                  OpTag::kReduceFn);
  (void)level;
}

Status MRHashEngine::ProcessBucket(KvBuffer data, uint64_t level,
                                   int depth, uint64_t owner) {
  const JobConfig& cfg = *ctx_.config;
  if (data.bytes() <= static_cast<uint64_t>(0.8 * cfg.reduce_memory_bytes)) {
    ProcessInMemory(data, level);
    return Status::OK();
  }
  // Recursive partitioning cannot split a single key, and pathological
  // collisions could stall progress; in either case fall back to an
  // in-memory pass (the values-list API needs the key's values together
  // anyway — this models the reducer growing its working set, which is
  // what any real hybrid-hash implementation must do for oversized keys).
  bool single_key = true;
  {
    KvBufferReader probe(data);
    std::string_view first_key, k, v;
    if (probe.Next(&first_key, &v)) {
      while (probe.Next(&k, &v)) {
        if (k != first_key) {
          single_key = false;
          break;
        }
      }
    }
  }
  if (single_key || depth > kMaxRecursionDepth) {
    ProcessInMemory(data, level);
    return Status::OK();
  }
  // Recursive partitioning with the next independent hash function.
  const int sub = ChooseNumBuckets(data.bytes(), cfg.reduce_memory_bytes,
                                   cfg.bucket_page_bytes) +
                  1;
  BucketFileManager subs(sub, cfg.bucket_page_bytes, ctx_.trace,
                         ctx_.metrics, &cfg.integrity, ctx_.faults, owner,
                         &cfg.costs, cfg.block_codec, cfg.codec_block_bytes);
  const UniversalHash h = ctx_.hashes.At(level);
  KvBufferReader reader(data);
  std::string_view key, value;
  while (reader.Next(&key, &value)) {
    subs.Add(static_cast<int>(h.Bucket(key, sub)), key, value);
  }
  ctx_.trace->Cpu(
      cfg.costs.hash_record_s * static_cast<double>(data.count()),
      OpTag::kReduceFn);
  data.Clear();
  subs.FlushAll();
  for (int b = 0; b < sub; ++b) {
    ASSIGN_OR_RETURN(KvBuffer sb, subs.TakeBucket(b));
    if (sb.empty()) continue;
    RETURN_IF_ERROR(ProcessBucket(std::move(sb), level + 1, depth + 1,
                                  Mix64(owner ^ (level << 40) ^
                                        (static_cast<uint64_t>(b) + 1))));
  }
  return Status::OK();
}

Status MRHashEngine::Finish() {
  // Phase 1: the memory-resident bucket.
  ProcessInMemory(d1_, /*level=*/2);
  d1_.Clear();
  // Phase 2: disk buckets, one at a time, recursing as needed.
  if (buckets_ != nullptr) {
    buckets_->FlushAll();
    for (int b = 0; b < buckets_->num_buckets(); ++b) {
      ASSIGN_OR_RETURN(KvBuffer data, buckets_->TakeBucket(b));
      if (data.empty()) continue;
      RETURN_IF_ERROR(ProcessBucket(
          std::move(data), /*level=*/3, 0,
          Mix64(ctx_.integrity_owner ^ (3ULL << 40) ^
                (static_cast<uint64_t>(b) + 1))));
    }
  }
  if (use_flat_) group_table_.FlushStatsTo(ctx_.metrics);
  ctx_.out->Flush();
  return Status::OK();
}

}  // namespace onepass
