// End-to-end data integrity: cost of detecting and recovering from silent
// corruption, per engine (no counterpart figure in the paper, which assumed
// faithful storage; the checksum design follows HDFS/GFS practice).
//
// Sweeps the corruption rate over every framed stream kind — DFS chunk
// replicas, map spill runs, map output pushes, shuffle fetches, and hash
// bucket spill files — with replication 3 and torn writes armed. Every run
// must produce the reference answer: a detected corruption is recovered
// from a surviving replica, a rebuilt spill, or a re-executed map; an
// unrecoverable one fails the job loudly (never silent wrong output).
//
// Usage: bench_integrity [--scale=S]

#include <cstdio>
#include <map>
#include <string>

#include "bench/bench_common.h"
#include "src/workloads/jobs.h"
#include "src/workloads/reference.h"

namespace onepass {
namespace {

constexpr EngineKind kEngines[] = {EngineKind::kSortMerge,
                                   EngineKind::kMRHash, EngineKind::kIncHash,
                                   EngineKind::kDincHash};

constexpr double kRates[] = {0.0, 0.01, 0.05};

JobConfig IntegrityConfigFor(EngineKind kind) {
  JobConfig cfg = bench::ScaledJobConfig(kind);
  cfg.map_side_combine = true;
  cfg.merge_factor = 32;
  cfg.expected_keys_per_reducer = 1200;
  cfg.expected_bytes_per_reducer = 2 << 20;
  cfg.collect_outputs = true;
  cfg.replication = 3;
  return cfg;
}

bool MatchesReference(const JobResult& result,
                      const std::map<std::string, uint64_t>& expected) {
  std::map<std::string, uint64_t> got;
  for (const Record& rec : result.outputs) {
    got[rec.key] += std::stoull(rec.value);
  }
  return got == expected;
}

void RateSweep(const ChunkStore& input,
               const std::map<std::string, uint64_t>& expected) {
  std::printf("\n--- corruption-rate sweep (replication=3, torn writes) ---\n");
  std::printf("%-9s %6s %9s %8s %6s %6s %5s %5s %9s %9s %4s\n", "engine",
              "rate", "time_s", "overhead", "detect", "recov", "torn",
              "quar", "recov_MB", "verif_MB", "ref?");
  for (EngineKind kind : kEngines) {
    double clean_time = -1;
    for (double rate : kRates) {
      JobConfig cfg = IntegrityConfigFor(kind);
      cfg.faults.corruption_rate = rate;
      cfg.faults.torn_writes = rate > 0;
      auto r = bench::MustRun(ClickCountJob(), cfg, input);
      if (!r.ok()) continue;
      if (rate == 0.0) clean_time = r->running_time;
      const JobMetrics& m = r->metrics;
      std::printf(
          "%-9s %6.2f %9.1f %7.1f%% %6llu %6llu %5llu %5llu %9s %9s %4s\n",
          std::string(EngineKindName(kind)).c_str(), rate, r->running_time,
          clean_time > 0
              ? 100.0 * (r->running_time / clean_time - 1.0)
              : 0.0,
          static_cast<unsigned long long>(m.corruptions_detected),
          static_cast<unsigned long long>(m.corruptions_recovered),
          static_cast<unsigned long long>(m.torn_writes_detected),
          static_cast<unsigned long long>(m.quarantined_replicas),
          bench::Mb(m.corruption_recovery_bytes).c_str(),
          bench::Mb(m.verify_bytes).c_str(),
          MatchesReference(*r, expected) ? "yes" : "NO");
    }
  }
}

void ChecksumOverhead(const ChunkStore& input,
                      const std::map<std::string, uint64_t>& expected) {
  // Checksums off vs on at rate 0: schedules are byte-identical by design
  // (verify work is metrics-only), so the "cost" is purely the framing
  // bytes the simulated storage would carry.
  std::printf("\n--- checksums off vs on at rate 0 (schedule must not"
              " move) ---\n");
  std::printf("%-9s %11s %11s %10s %4s\n", "engine", "off_time_s",
              "on_time_s", "frame_MB", "ref?");
  for (EngineKind kind : kEngines) {
    JobConfig off = IntegrityConfigFor(kind);
    off.integrity.checksums = false;
    auto a = bench::MustRun(ClickCountJob(), off, input);
    if (!a.ok()) continue;
    JobConfig on = IntegrityConfigFor(kind);
    auto b = bench::MustRun(ClickCountJob(), on, input);
    if (!b.ok()) continue;
    std::printf("%-9s %11.2f %11.2f %10s %4s\n",
                std::string(EngineKindName(kind)).c_str(), a->running_time,
                b->running_time,
                bench::Mb(b->metrics.checksum_overhead_bytes).c_str(),
                (MatchesReference(*b, expected) &&
                 a->running_time == b->running_time)
                    ? "yes"
                    : "NO");
  }
}

}  // namespace
}  // namespace onepass

int main(int argc, char** argv) {
  using namespace onepass;
  const bench::Flags flags = bench::ParseFlags(argc, argv);

  std::printf("=== Data integrity: user click counting under silent"
              " corruption ===\n");
  const ClickStreamConfig clicks = bench::ScaledClicks(flags.scale);
  ChunkStore input(256 << 10, bench::PaperCluster().nodes,
                   /*replication=*/3);
  GenerateClickStream(clicks, &input);
  std::printf("input: %s MB in %zu chunks, replication 3\n",
              bench::Mb(input.total_bytes()).c_str(), input.chunks().size());

  const auto expected = ReferenceClickCounts(input, ClickKeyField::kUser);
  RateSweep(input, expected);
  ChecksumOverhead(input, expected);
  return 0;
}
