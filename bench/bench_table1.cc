// Reproduces Table 1: "Workloads in click analysis and Hadoop running
// time" — stock (unoptimized) Hadoop on sessionization, page frequency,
// and clicks-per-user.
//
// Paper (256-508 GB on 10 real nodes):
//   metric         sessionization  page frequency  clicks per user
//   Input          256 GB          508 GB          256 GB
//   Map output     269 GB          1.8 GB          2.6 GB
//   Reduce spill   370 GB          0.2 GB          1.4 GB
//   Reduce output  256 GB          0.02 GB         0.6 GB
//   Running time   4860 s          2400 s          1440 s
//
// We run at ~1/1000 scale; the *ratios* (map output ~ input for
// sessionization, tiny intermediate data for the counting workloads with
// a combiner, reduce spill > map output for sessionization due to
// multi-pass merge) are the reproduction target.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/workloads/jobs.h"

namespace onepass {
namespace {

using bench::Flags;

// Stock Hadoop: sort-merge, merge factor low enough that the reduce side
// multi-pass merges (Hadoop's default io.sort.factor regime at scale).
JobConfig StockConfig() {
  JobConfig cfg = bench::ScaledJobConfig(EngineKind::kSortMerge);
  cfg.merge_factor = 8;
  cfg.reduce_memory_bytes = 128 << 10;
  return cfg;
}

struct Row {
  const char* name;
  uint64_t input, map_out, spill, output;
  double time;
};

Row RunWorkload(const char* name, const JobSpec& spec, bool combine,
                const ChunkStore& input) {
  JobConfig cfg = StockConfig();
  cfg.map_side_combine = combine;
  cfg.expected_keys_per_reducer = 2000;
  auto r = bench::MustRun(spec, cfg, input);
  Row row{name, 0, 0, 0, 0, 0};
  if (!r.ok()) return row;
  row.input = r->metrics.map_input_bytes;
  row.map_out = r->metrics.map_output_bytes;
  row.spill = r->metrics.reduce_spill_write_bytes;
  row.output = r->metrics.reduce_output_bytes;
  row.time = r->running_time;
  return row;
}

}  // namespace
}  // namespace onepass

int main(int argc, char** argv) {
  using namespace onepass;
  const bench::Flags flags = bench::ParseFlags(argc, argv);

  std::printf(
      "=== Table 1: click-analysis workloads on stock Hadoop "
      "(sort-merge, F=8) ===\n");
  std::printf("scale: ~1/1000 of the paper (MB instead of GB)\n\n");

  // Sessionization and clicks-per-user share the 96 MB stream; page
  // frequency uses a 2x stream (the paper's 508 GB input).
  ClickStreamConfig clicks = bench::ScaledClicks(flags.scale);
  ChunkStore session_input(StockConfig().chunk_bytes,
                           bench::PaperCluster().nodes);
  GenerateClickStream(clicks, &session_input);

  ClickStreamConfig clicks2x = clicks;
  clicks2x.num_clicks *= 2;
  ChunkStore pagefreq_input(StockConfig().chunk_bytes,
                            bench::PaperCluster().nodes);
  GenerateClickStream(clicks2x, &pagefreq_input);

  const Row rows[] = {
      RunWorkload("Sessionization", SessionizationJob(), false,
                  session_input),
      RunWorkload("Page frequency", PageFrequencyJob(), true,
                  pagefreq_input),
      RunWorkload("Clicks per user", ClickCountJob(), true, session_input),
  };

  std::printf("%-20s %16s %16s %16s\n", "Metric", rows[0].name,
              rows[1].name, rows[2].name);
  auto line = [&](const char* metric, auto get) {
    std::printf("%-20s %16s %16s %16s\n", metric, get(rows[0]).c_str(),
                get(rows[1]).c_str(), get(rows[2]).c_str());
  };
  line("Input (MB)", [](const Row& r) { return bench::Mb(r.input); });
  line("Map output (MB)", [](const Row& r) { return bench::Mb(r.map_out); });
  line("Reduce spill (MB)", [](const Row& r) { return bench::Mb(r.spill); });
  line("Reduce output (MB)", [](const Row& r) { return bench::Mb(r.output); });
  line("Running time (s)", [](const Row& r) { return bench::Secs(r.time); });

  std::printf(
      "\npaper shape check: sessionization map output ~= input and reduce "
      "spill > map output;\ncounting workloads produce MB-scale "
      "intermediate data thanks to the combiner, and run faster.\n");
  return 0;
}
