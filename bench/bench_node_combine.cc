// Node combine tier (DESIGN.md §5.10): shuffle bytes and reduce time,
// combine_scope = task vs node, across key skew — the tier's win grows
// with skew because hot keys repeat across every co-located map task and
// collapse to one entry per (node, partition) at the barrier.
//
// The baseline is the strongest pre-tier configuration: map-side combine
// plus the lz block codec. The CI gate at the bottom requires the Zipf-1.2
// click-count shuffle-byte drop over that baseline to hold a 2x floor
// (EXPERIMENTS.md records the measured value, target >= 3x); the bench
// exits non-zero if the floor is missed.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/workloads/documents.h"
#include "src/workloads/jobs.h"

namespace {

struct RunStats {
  double total_s = 0;
  double reduce_tail_s = 0;  // last map done -> job done
  uint64_t shuffle_bytes = 0;
  int map_tasks = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace onepass;
  const bench::Flags flags = bench::ParseFlags(argc, argv);

  std::printf("=== node combine tier: shuffle bytes vs combine scope "
              "===\n\n");

  // Many small chunks put many map tasks on every node — the regime the
  // tier targets (one combined push replaces one push per task).
  auto base_config = [&](EngineKind engine) {
    JobConfig cfg = bench::ScaledJobConfig(engine, flags);
    cfg.chunk_bytes = 64 << 10;
    cfg.map_side_combine = true;
    // The stated baseline is combiner+codec; --codec only strengthens it.
    if (cfg.block_codec == BlockCodecKind::kNone) {
      cfg.block_codec = BlockCodecKind::kLz;
    }
    return cfg;
  };

  auto run = [&](const JobSpec& job, JobConfig cfg, const ChunkStore& input,
                 CombineScope scope) {
    cfg.combine_scope = scope;
    RunStats s;
    auto r = bench::MustRun(job, cfg, input);
    if (!r.ok()) return s;
    s.total_s = r->running_time;
    s.reduce_tail_s = r->running_time - r->map_finish_time;
    s.shuffle_bytes = r->metrics.shuffle_bytes;
    s.map_tasks = r->map_tasks;
    return s;
  };

  std::printf("%-10s %5s %6s %12s %12s %10s %8s\n", "workload", "skew",
              "scope", "shuffle(MB)", "reduce(s)", "total(s)", "ratio");

  double clicks_12_ratio = 0.0;
  double trigram_12_ratio = 0.0;
  int maps_per_node = 0;

  for (const double skew : {0.0, 0.8, 1.2}) {
    ClickStreamConfig clicks = bench::ScaledClicks(flags.scale);
    clicks.user_skew = skew;
    JobConfig cfg = base_config(EngineKind::kIncHash);
    ChunkStore input(cfg.chunk_bytes, cfg.cluster.nodes);
    GenerateClickStream(clicks, &input);

    const RunStats task =
        run(ClickCountJob(), cfg, input, CombineScope::kTask);
    const RunStats node =
        run(ClickCountJob(), cfg, input, CombineScope::kNode);
    const double ratio =
        node.shuffle_bytes ? static_cast<double>(task.shuffle_bytes) /
                                 static_cast<double>(node.shuffle_bytes)
                           : 0.0;
    if (skew == 1.2) clicks_12_ratio = ratio;
    maps_per_node = task.map_tasks / cfg.cluster.nodes;

    std::printf("%-10s %5.1f %6s %12s %12.2f %10.2f %8s\n", "clicks", skew,
                "task", bench::Mb(task.shuffle_bytes).c_str(),
                task.reduce_tail_s, task.total_s, "");
    std::printf("%-10s %5.1f %6s %12s %12.2f %10.2f %7.2fx\n", "clicks",
                skew, "node", bench::Mb(node.shuffle_bytes).c_str(),
                node.reduce_tail_s, node.total_s, ratio);
  }

  double words_12_ratio = 0.0;
  {
    DocumentCorpusConfig docs = bench::ScaledDocs(flags.scale);
    docs.word_skew = 1.2;
    JobConfig cfg = base_config(EngineKind::kIncHash);
    ChunkStore input(cfg.chunk_bytes, cfg.cluster.nodes);
    GenerateDocuments(docs, &input);

    // Word count: hot words repeat across every co-located task, the
    // tier's target regime. Trigram count over the same corpus is the
    // counter-regime — the trigram key space is so sparse that most keys
    // are node-unique and no combiner tier can collapse them; it is here
    // to show the tier degrades gracefully, not to meet the gate.
    struct WorkloadRow {
      const char* name;
      JobSpec job;
      double* ratio;
    };
    const WorkloadRow rows[] = {
        {"words", WordCountJob(), &words_12_ratio},
        {"trigrams", TrigramCountJob(/*threshold=*/0), &trigram_12_ratio},
    };
    for (const WorkloadRow& w : rows) {
      const RunStats task = run(w.job, cfg, input, CombineScope::kTask);
      const RunStats node = run(w.job, cfg, input, CombineScope::kNode);
      *w.ratio =
          node.shuffle_bytes ? static_cast<double>(task.shuffle_bytes) /
                                   static_cast<double>(node.shuffle_bytes)
                             : 0.0;
      std::printf("%-10s %5.1f %6s %12s %12.2f %10.2f %8s\n", w.name, 1.2,
                  "task", bench::Mb(task.shuffle_bytes).c_str(),
                  task.reduce_tail_s, task.total_s, "");
      std::printf("%-10s %5.1f %6s %12s %12.2f %10.2f %7.2fx\n", w.name,
                  1.2, "node", bench::Mb(node.shuffle_bytes).c_str(),
                  node.reduce_tail_s, node.total_s, *w.ratio);
    }
  }

  // Budget pressure: the same Zipf-1.2 click job under a small budget
  // still beats kTask even with every busy shard degraded to the sketch.
  {
    ClickStreamConfig clicks = bench::ScaledClicks(flags.scale);
    clicks.user_skew = 1.2;
    JobConfig cfg = base_config(EngineKind::kIncHash);
    cfg.node_combine_budget_bytes = 64 << 10;
    ChunkStore input(cfg.chunk_bytes, cfg.cluster.nodes);
    GenerateClickStream(clicks, &input);
    const RunStats task =
        run(ClickCountJob(), cfg, input, CombineScope::kTask);
    const RunStats node =
        run(ClickCountJob(), cfg, input, CombineScope::kNode);
    const double ratio =
        node.shuffle_bytes ? static_cast<double>(task.shuffle_bytes) /
                                 static_cast<double>(node.shuffle_bytes)
                           : 0.0;
    std::printf("%-10s %5.1f %6s %12s %12.2f %10.2f %7.2fx  (64 KB "
                "budget)\n",
                "clicks", 1.2, "node", bench::Mb(node.shuffle_bytes).c_str(),
                node.reduce_tail_s, node.total_s, ratio);
  }

  std::printf("\n~%d map tasks per node (the tier folds that many pushes "
              "per partition into one).\n",
              maps_per_node);

  const double kFloor = 2.0;
  const bool pass = clicks_12_ratio >= kFloor && words_12_ratio >= kFloor;
  std::printf("\nnode-combine gate: Zipf-1.2 shuffle-byte drop clicks "
              "%.2fx, words %.2fx (trigrams %.2fx, ungated) vs %.1fx "
              "floor  [%s]\n",
              clicks_12_ratio, words_12_ratio, trigram_12_ratio, kFloor,
              pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
