// Reproduces Fig. 4(f) and §3.3: MapReduce Online-style pipelining (HOP)
// vs stock sort-merge Hadoop.
//
// Paper findings reproduced here:
//   - pipelining yields a small total-time gain (~5%) — it only
//     redistributes sort-merge work from mappers to reducers;
//   - the reduce progress still lags far behind the map progress;
//   - blocking and merge I/O persist.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/workloads/jobs.h"

int main(int argc, char** argv) {
  using namespace onepass;
  const bench::Flags flags = bench::ParseFlags(argc, argv);

  std::printf("=== Fig. 4(f): pipelining (MapReduce Online) vs stock "
              "Hadoop ===\n\n");

  const ClickStreamConfig clicks = bench::ScaledClicks(flags.scale);
  JobConfig stock = bench::ScaledJobConfig(EngineKind::kSortMerge);
  stock.merge_factor = 8;
  stock.reduce_memory_bytes = 128 << 10;
  ChunkStore input(stock.chunk_bytes, stock.cluster.nodes);
  GenerateClickStream(clicks, &input);

  auto stock_r = bench::MustRun(SessionizationJob(), stock, input);

  JobConfig hop = stock;
  hop.pipelining = true;
  hop.pipeline_push_bytes = 128 << 10;
  auto hop_r = bench::MustRun(SessionizationJob(), hop, input);

  if (!stock_r.ok() || !hop_r.ok()) return 1;

  std::printf("stock: %.2f s    pipelined (HOP): %.2f s    gain: %.1f%% "
              "(paper: ~5%%)\n",
              stock_r->running_time, hop_r->running_time,
              100.0 * (stock_r->running_time - hop_r->running_time) /
                  stock_r->running_time);
  std::printf("stock reduce spill: %s MB    HOP reduce spill: %s MB "
              "(pipelining does not shrink it)\n\n",
              bench::Mb(stock_r->metrics.reduce_spill_write_bytes).c_str(),
              bench::Mb(hop_r->metrics.reduce_spill_write_bytes).c_str());

  bench::PrintProgress(
      {"hop map%", "hop red%", "stock map%", "stock red%"},
      {hop_r->map_progress, hop_r->reduce_progress, stock_r->map_progress,
       stock_r->reduce_progress},
      22);

  std::printf(
      "\npaper shape check: HOP's reduce progress still lags far behind "
      "its map progress;\nthe gain over stock is small because the total "
      "sort-merge work is unchanged.\n");
  return 0;
}
