// Hash-core microbenchmark (DESIGN.md §5.4): FlatTable vs the legacy
// std::unordered_map<std::string, std::string> on the INC-hash update
// pattern — per tuple, probe the table with the key and either combine an
// 8-byte counter state in place or insert the key with a fresh state.
//
// The legacy loop is the engines' old inner loop verbatim, including the
// `find(std::string(key))` temporary per probe. Keys are 24+ bytes so the
// std::string materialization actually allocates (no SSO refuge), as real
// user/url keys do.
//
// Streams:
//   Uniform  — every key equally likely (worst case for caching).
//   Zipf     — skew 1.1 over the universe (the paper's web-log regime;
//              the acceptance target is >= 2x here).
//   Churn    — a hot window sliding over a large universe: hits on the
//              window plus a steady stream of first-seen inserts, like
//              DINC monitor turnover.
//   ZipfCold — the same Zipf skew over a 16x larger universe, so the
//              resident table outgrows the fast caches and probes are
//              memory-bound: the regime the batched plane (Â§5.8) targets.
//
// BM_FlatBatch is the batched inner loop: whole-batch HashBatch digests,
// probes prefetched kProbePrefetchDistance ahead. Its batch=1 argument
// degenerates to BM_Flat (the scalar walk); the batch/simd args mirror
// the job-level --batch_size=/--simd= flags.
//
// Run: bench_micro_hash_table [--benchmark_filter=...]

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/util/batch_hash.h"
#include "src/util/flat_table.h"
#include "src/util/hash.h"
#include "src/util/random.h"
#include "src/util/simd_dispatch.h"

namespace onepass {
namespace {

constexpr uint64_t kUniverse = 1 << 16;
constexpr size_t kStreamLen = 1 << 20;
constexpr uint64_t kChurnUniverse = 1 << 20;
constexpr uint64_t kChurnWindow = 1 << 12;

enum class StreamKind { kUniform, kZipf, kChurn, kZipfCold };

std::string MakeKey(uint64_t id) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "user_%012llu_segment_%04llu",
                static_cast<unsigned long long>(id),
                static_cast<unsigned long long>(id % 7919));
  return buf;
}

// Key ids for one pass over the stream, deterministic per kind.
const std::vector<uint32_t>& StreamIds(StreamKind kind) {
  static const std::vector<uint32_t> uniform = [] {
    Xoshiro256StarStar rng(42);
    std::vector<uint32_t> ids(kStreamLen);
    for (auto& id : ids) {
      id = static_cast<uint32_t>(rng.NextBounded(kUniverse));
    }
    return ids;
  }();
  static const std::vector<uint32_t> zipf = [] {
    Xoshiro256StarStar rng(43);
    ZipfGenerator z(kUniverse, 1.1);
    std::vector<uint32_t> ids(kStreamLen);
    for (auto& id : ids) id = static_cast<uint32_t>(z.Next(&rng));
    return ids;
  }();
  static const std::vector<uint32_t> zipf_cold = [] {
    Xoshiro256StarStar rng(45);
    ZipfGenerator z(kChurnUniverse, 1.1);
    std::vector<uint32_t> ids(kStreamLen);
    for (auto& id : ids) id = static_cast<uint32_t>(z.Next(&rng));
    return ids;
  }();
  static const std::vector<uint32_t> churn = [] {
    Xoshiro256StarStar rng(44);
    std::vector<uint32_t> ids(kStreamLen);
    for (size_t i = 0; i < ids.size(); ++i) {
      // The hot window advances steadily; 7/8 of tuples hit it, the rest
      // are uniform cold keys (mostly first-seen inserts).
      const uint64_t base = (i * kChurnWindow / kStreamLen) *
                            (kChurnUniverse - kChurnWindow) / kChurnWindow;
      ids[i] = rng.NextBounded(8) < 7
                   ? static_cast<uint32_t>(base + rng.NextBounded(kChurnWindow))
                   : static_cast<uint32_t>(rng.NextBounded(kChurnUniverse));
    }
    return ids;
  }();
  switch (kind) {
    case StreamKind::kUniform:
      return uniform;
    case StreamKind::kZipf:
      return zipf;
    case StreamKind::kChurn:
      return churn;
    case StreamKind::kZipfCold:
      return zipf_cold;
  }
  return uniform;
}

const std::vector<std::string>& Keys(StreamKind kind) {
  static const std::vector<std::string> small = [] {
    std::vector<std::string> keys(kUniverse);
    for (uint64_t i = 0; i < kUniverse; ++i) keys[i] = MakeKey(i);
    return keys;
  }();
  static const std::vector<std::string> large = [] {
    std::vector<std::string> keys(kChurnUniverse);
    for (uint64_t i = 0; i < kChurnUniverse; ++i) keys[i] = MakeKey(i);
    return keys;
  }();
  return kind == StreamKind::kChurn || kind == StreamKind::kZipfCold
             ? large
             : small;
}

// 8-byte counter "state", combined by addition — the shape of every
// algebraic aggregate in the workloads.
void CombineState(std::string* state) {
  uint64_t c;
  std::memcpy(&c, state->data(), sizeof(c));
  ++c;
  std::memcpy(state->data(), &c, sizeof(c));
}

void BM_Legacy(benchmark::State& state) {
  const auto kind = static_cast<StreamKind>(state.range(0));
  const auto& ids = StreamIds(kind);
  const auto& keys = Keys(kind);
  const std::string init(8, '\0');
  for (auto _ : state) {
    std::unordered_map<std::string, std::string> table;
    for (uint32_t id : ids) {
      const std::string_view key = keys[id];
      auto it = table.find(std::string(key));
      if (it != table.end()) {
        CombineState(&it->second);
      } else {
        table.emplace(std::string(key), init);
      }
    }
    benchmark::DoNotOptimize(table.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ids.size()));
}

void BM_Flat(benchmark::State& state) {
  const auto kind = static_cast<StreamKind>(state.range(0));
  const auto& ids = StreamIds(kind);
  const auto& keys = Keys(kind);
  const UniversalHash h = UniversalHashFamily(20118011).At(2);
  const std::string init(8, '\0');
  std::string scratch;
  FlatTable table;
  for (auto _ : state) {
    table.Clear();
    for (uint32_t id : ids) {
      const std::string_view key = keys[id];
      // The engines' flat inner loop: one digest, probe, combine through
      // the scratch bridge or insert.
      const uint64_t digest = h(key);
      const uint32_t found = table.Find(key, digest);
      if (found != FlatTable::kNoEntry) {
        const std::string_view cur = table.value_at(found);
        scratch.assign(cur.data(), cur.size());
        CombineState(&scratch);
        table.set_value(found, scratch);
      } else {
        bool inserted = false;
        const uint32_t idx = table.FindOrInsert(key, digest, &inserted);
        table.set_value(idx, init);
      }
    }
    benchmark::DoNotOptimize(table.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ids.size()));
}

// The batched data plane on the same update pattern: digest the whole
// batch with HashBatch, then probe with record i+kProbePrefetchDistance's
// ctrl line already in flight. args: (stream, batch, simd 0/1).
void BM_FlatBatch(benchmark::State& state) {
  const auto kind = static_cast<StreamKind>(state.range(0));
  const size_t batch = static_cast<size_t>(state.range(1));
  const SimdTier tier =
      state.range(2) != 0 ? CurrentSimdTier() : SimdTier::kScalar;
  const auto& ids = StreamIds(kind);
  const auto& keys = Keys(kind);
  const UniversalHash h = UniversalHashFamily(20118011).At(2);
  const std::string init(8, '\0');
  std::string scratch;
  std::vector<std::string_view> views(batch);
  std::vector<uint64_t> digests(batch);
  FlatTable table;
  for (auto _ : state) {
    table.Clear();
    for (size_t base = 0; base < ids.size(); base += batch) {
      const size_t n = std::min(batch, ids.size() - base);
      // Staging a whole batch lets the gather overlap: prefetch every
      // string object, then stage views while prefetching the key bytes
      // HashBatch is about to read. Tuple-at-a-time has no such window —
      // tiny batches get no overlap, so skip the extra prefetch traffic.
      if (n >= 8) {
        for (size_t i = 0; i < n; ++i) {
          __builtin_prefetch(&keys[ids[base + i]], 0, 1);
        }
        for (size_t i = 0; i < n; ++i) {
          views[i] = keys[ids[base + i]];
          __builtin_prefetch(views[i].data(), 0, 1);
        }
      } else {
        for (size_t i = 0; i < n; ++i) views[i] = keys[ids[base + i]];
      }
      h.HashBatch(views.data(), n, digests.data(), tier);
      constexpr size_t kD = kProbePrefetchDistance;
      const auto probe_one = [&](size_t i) {
        const std::string_view key = views[i];
        const uint32_t found = table.Find(key, digests[i]);
        if (found != FlatTable::kNoEntry) {
          const std::string_view cur = table.value_at(found);
          scratch.assign(cur.data(), cur.size());
          CombineState(&scratch);
          table.set_value(found, scratch);
        } else {
          bool inserted = false;
          const uint32_t idx = table.FindOrInsert(key, digests[i], &inserted);
          table.set_value(idx, init);
        }
      };
      size_t i = 0;
      if (n > 3 * kD) {
        for (; i < n - 3 * kD; ++i) {
          table.PrefetchProbe(digests[i + 3 * kD]);
          table.PrefetchEntry(digests[i + 2 * kD]);
          table.PrefetchKey(digests[i + kD]);
          probe_one(i);
        }
      }
      for (; i < n; ++i) {
        if (i + 2 * kD < n) table.PrefetchEntry(digests[i + 2 * kD]);
        if (i + kD < n) table.PrefetchKey(digests[i + kD]);
        probe_one(i);
      }
    }
    benchmark::DoNotOptimize(table.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ids.size()));
  state.SetLabel("tier=" + std::string(SimdTierName(tier)));
}

BENCHMARK(BM_Legacy)
    ->Arg(static_cast<int>(StreamKind::kUniform))
    ->Arg(static_cast<int>(StreamKind::kZipf))
    ->Arg(static_cast<int>(StreamKind::kChurn))
    ->Arg(static_cast<int>(StreamKind::kZipfCold))
    ->ArgName("stream")
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Flat)
    ->Arg(static_cast<int>(StreamKind::kUniform))
    ->Arg(static_cast<int>(StreamKind::kZipf))
    ->Arg(static_cast<int>(StreamKind::kChurn))
    ->Arg(static_cast<int>(StreamKind::kZipfCold))
    ->ArgName("stream")
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FlatBatch)
    ->ArgNames({"stream", "batch", "simd"})
    ->Args({static_cast<int>(StreamKind::kZipf), 1, 0})
    ->Args({static_cast<int>(StreamKind::kZipf), 64, 0})
    ->Args({static_cast<int>(StreamKind::kZipf), 64, 1})
    ->Args({static_cast<int>(StreamKind::kZipfCold), 1, 0})
    ->Args({static_cast<int>(StreamKind::kZipfCold), 64, 0})
    ->Args({static_cast<int>(StreamKind::kZipfCold), 64, 1})
    ->Args({static_cast<int>(StreamKind::kZipfCold), 128, 1})
    ->Args({static_cast<int>(StreamKind::kZipfCold), 256, 1})
    ->Args({static_cast<int>(StreamKind::kChurn), 64, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace onepass
