// Reproduces §3.2(3): the effect of the number of reducers per node.
//
// Paper: with 4 reduce slots per node, R=4 took 4187 s but R=8 took
// 4723 s — the second wave of reducers starts only after the first wave
// finishes (i.e. after the maps are done), so it fetches map output from
// disk instead of memory. Raising R beyond the slot count is therefore
// counterproductive; tuning F is the right lever.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/workloads/jobs.h"

namespace onepass {
namespace {

struct Row {
  double time = 0;
  uint64_t disk_fetch = 0;
  uint64_t disk_bytes = 0;  // all intermediate bytes written/read on disk
};

Row Run(int r_per_node, BlockCodecKind codec, const ChunkStore& input) {
  JobConfig cfg = bench::ScaledJobConfig(EngineKind::kSortMerge);
  // The node tier needs a combine function on sort-merge; under
  // --combine_scope=node the rows measure sessionization with map-side
  // combine enabled.
  if (cfg.combine_scope == CombineScope::kNode) cfg.map_side_combine = true;
  cfg.merge_factor = 32;  // optimized merge, like the paper's experiment
  cfg.reduce_memory_bytes = 128 << 10;
  cfg.reducers_per_node = r_per_node;
  cfg.block_codec = codec;
  auto res = bench::MustRun(SessionizationJob(), cfg, input);
  Row row;
  if (!res.ok()) return row;
  row.time = res->running_time;
  row.disk_fetch = res->shuffle_from_disk_bytes;
  const JobMetrics& m = res->metrics;
  row.disk_bytes = m.map_spill_write_bytes + m.map_spill_read_bytes +
                   m.map_output_bytes + m.reduce_spill_write_bytes +
                   m.reduce_spill_read_bytes;
  return row;
}

double RunInc(int r_per_node, HashCoreKind core, const ChunkStore& input) {
  JobConfig cfg = bench::ScaledJobConfig(EngineKind::kIncHash);
  cfg.hash_core = core;
  // The node tier requires the flat core's reproducible iteration order;
  // the legacy-core baseline runs at task scope regardless.
  if (core == HashCoreKind::kLegacy) cfg.combine_scope = CombineScope::kTask;
  cfg.reduce_memory_bytes = 128 << 10;
  cfg.reducers_per_node = r_per_node;
  cfg.map_side_combine = true;
  auto res = bench::MustRun(ClickCountJob(), cfg, input);
  return res.ok() ? res->running_time : 0.0;
}

}  // namespace
}  // namespace onepass

int main(int argc, char** argv) {
  using namespace onepass;
  const bench::Flags flags = bench::ParseFlags(argc, argv);

  std::printf("=== §3.2(3): reducers per node (4 reduce slots per node) "
              "===\n\n");

  const ClickStreamConfig clicks = bench::ScaledClicks(flags.scale);
  JobConfig base = bench::ScaledJobConfig(EngineKind::kSortMerge);
  ChunkStore input(base.chunk_bytes, base.cluster.nodes);
  GenerateClickStream(clicks, &input);

  const BlockCodecKind codec = bench::CodecFromFlag(flags.codec);
  const Row r4 = Run(4, codec, input);
  const Row r8 = Run(8, codec, input);

  std::printf("%-24s %14s %14s\n", "", "R=4", "R=8");
  std::printf("%-24s %14.2f %14.2f\n", "Running time (s)", r4.time, r8.time);
  std::printf("%-24s %14s %14s\n", "Shuffle from disk (MB)",
              bench::Mb(r4.disk_fetch).c_str(),
              bench::Mb(r8.disk_fetch).c_str());
  std::printf("%-24s %14s %14s\n",
              codec == BlockCodecKind::kNone ? "Bytes on disk (MB)"
                                             : "Bytes on disk (MB, lz)",
              bench::Mb(r4.disk_bytes).c_str(),
              bench::Mb(r8.disk_bytes).c_str());

  std::printf(
      "\npaper shape check: R=8 is slower (paper: 4187 s vs 4723 s) — the "
      "second reducer\nwave starts after the mappers finished and must "
      "fetch their output from disk.\n");

  // Hash-core before/after (DESIGN.md §5.4): the same INC-hash click-count
  // job at both reducer counts, under the flat and legacy hash cores.
  std::printf("\n=== hash core: INC-hash running time, flat vs legacy "
              "===\n\n");
  std::printf("%-24s %14s %14s\n", "", "R=4", "R=8");
  std::printf("%-24s %14.2f %14.2f\n", "flat (s)",
              RunInc(4, HashCoreKind::kFlat, input),
              RunInc(8, HashCoreKind::kFlat, input));
  std::printf("%-24s %14.2f %14.2f\n", "legacy (s)",
              RunInc(4, HashCoreKind::kLegacy, input),
              RunInc(8, HashCoreKind::kLegacy, input));
  return 0;
}
