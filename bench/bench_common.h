// Shared configuration and formatting for the table/figure reproduction
// harnesses.
//
// The paper's testbed is a 10-node cluster (4 cores, 8 GB, HDD+SSD per
// node) processing 97-508 GB. We reproduce every experiment at ~1/1000
// scale on the simulated cluster: same node count, same slot counts, same
// *ratios* of data to memory (which is what determines spills, merge
// passes, and progress shapes). EXPERIMENTS.md records the paper-vs-
// measured comparison for each table and figure.

#ifndef ONEPASS_BENCH_BENCH_COMMON_H_
#define ONEPASS_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "src/mr/cluster.h"
#include "src/mr/config.h"
#include "src/workloads/clickstream.h"
#include "src/workloads/documents.h"

namespace onepass::bench {

// Reentrancy note (DESIGN.md §5.3): everything in this header is either a
// pure function or returns a fresh value object — no static buffers, no
// shared mutable state — so the helpers are safe to call from jobs whose
// data plane runs multi-threaded. Keep it that way: per-task state
// belongs in per-task instances, never in file-scope variables here.

// ---- command-line helpers ----

struct Flags {
  double scale = 1.0;  // multiplies workload size
  std::string plot;  // for bench_fig7: which subplot
  bool ssd = false;
  bool hop = false;
  bool util = false;
  // Data-plane threads (JobConfig::data_plane_threads): 0 = one per
  // hardware thread, 1 = sequential. Results are byte-identical either
  // way; only wall-clock changes.
  int threads = 0;
  // Block codec for spill/shuffle/bucket streams: "none" (default) or
  // "lz" (JobConfig::block_codec = kLz).
  std::string codec = "none";
  // Batch data plane (DESIGN.md Â§5.8). --batch_size=N pins
  // JobConfig::batch_records (0 = derive from codec_block_bytes);
  // --batch_size=1 is the scalar-equivalent walk. --simd=scalar pins
  // JobConfig::simd to kForceScalar so the hash kernels skip the
  // vectorized tiers; --simd=auto (default) uses the detected tier.
  uint64_t batch_size = 0;
  std::string simd = "auto";
  // Resident shuffle engine (DESIGN.md §5.9). --iterations=N sets
  // JobConfig::iterations (chain length for iterative benches);
  // --shuffle_mode=disk|resident sets JobConfig::shuffle_mode.
  int iterations = 1;
  std::string shuffle_mode = "disk";
  // Node combine tier (DESIGN.md §5.10). --combine_scope=task|node sets
  // JobConfig::combine_scope; --node_combine_budget=N bytes bounds one
  // node's combine tier (0 = unbounded; shards over their share degrade
  // to the FREQUENT sketch).
  std::string combine_scope = "task";
  uint64_t node_combine_budget = 0;
};

namespace detail {
// Data-plane defaults recorded by ParseFlags (write-once in main) so
// every bench's ScaledJobConfig picks up --threads/--codec/--batch_size/
// --simd without each helper threading a Flags parameter through.
inline Flags& DataPlaneDefaults() {
  static Flags defaults;
  return defaults;
}
}  // namespace detail

inline Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      flags.scale = std::stod(arg.substr(8));
    } else if (arg == "--ssd") {
      flags.ssd = true;
    } else if (arg == "--hop") {
      flags.hop = true;
    } else if (arg == "--util") {
      flags.util = true;
    } else if (arg.rfind("--threads=", 0) == 0) {
      flags.threads = std::stoi(arg.substr(10));
    } else if (arg.rfind("--codec=", 0) == 0) {
      flags.codec = arg.substr(8);
    } else if (arg.rfind("--batch_size=", 0) == 0) {
      flags.batch_size = std::stoull(arg.substr(13));
    } else if (arg.rfind("--simd=", 0) == 0) {
      flags.simd = arg.substr(7);
    } else if (arg.rfind("--iterations=", 0) == 0) {
      flags.iterations = std::stoi(arg.substr(13));
    } else if (arg.rfind("--shuffle_mode=", 0) == 0) {
      flags.shuffle_mode = arg.substr(15);
    } else if (arg.rfind("--combine_scope=", 0) == 0) {
      flags.combine_scope = arg.substr(16);
    } else if (arg.rfind("--node_combine_budget=", 0) == 0) {
      flags.node_combine_budget = std::stoull(arg.substr(22));
    } else if (arg == "--plot" && i + 1 < argc) {
      flags.plot = argv[++i];
    } else if (arg.rfind("--plot=", 0) == 0) {
      flags.plot = arg.substr(7);
    }
  }
  detail::DataPlaneDefaults() = flags;
  return flags;
}

// Resolves a --codec= flag value ("none"/"lz") to the config enum;
// unknown names fall back to kNone with a warning.
inline BlockCodecKind CodecFromFlag(const std::string& name) {
  if (name == "lz") return BlockCodecKind::kLz;
  if (name != "none" && !name.empty()) {
    std::fprintf(stderr, "unknown --codec=%s, using none\n", name.c_str());
  }
  return BlockCodecKind::kNone;
}

// Resolves a --combine_scope= flag value ("task"/"node") to the config
// enum; unknown names fall back to kTask with a warning.
inline CombineScope CombineScopeFromFlag(const std::string& name) {
  if (name == "node") return CombineScope::kNode;
  if (name != "task" && !name.empty()) {
    std::fprintf(stderr, "unknown --combine_scope=%s, using task\n",
                 name.c_str());
  }
  return CombineScope::kTask;
}

// Resolves a --shuffle_mode= flag value ("disk"/"resident") to the
// config enum; unknown names fall back to kDisk with a warning.
inline ShuffleMode ShuffleModeFromFlag(const std::string& name) {
  if (name == "resident") return ShuffleMode::kResident;
  if (name != "disk" && !name.empty()) {
    std::fprintf(stderr, "unknown --shuffle_mode=%s, using disk\n",
                 name.c_str());
  }
  return ShuffleMode::kDisk;
}

// Applies the data-plane flags (--threads/--codec/--batch_size/--simd/
// --iterations/--shuffle_mode/--combine_scope/--node_combine_budget) to a
// job config. Every bench routes its config through here so the whole
// suite exposes the same knobs.
inline void ApplyDataPlaneFlags(const Flags& flags, JobConfig* cfg) {
  cfg->data_plane_threads = flags.threads;
  cfg->block_codec = CodecFromFlag(flags.codec);
  cfg->batch_records = flags.batch_size;
  cfg->iterations = flags.iterations < 1 ? 1 : flags.iterations;
  cfg->shuffle_mode = ShuffleModeFromFlag(flags.shuffle_mode);
  cfg->combine_scope = CombineScopeFromFlag(flags.combine_scope);
  cfg->node_combine_budget_bytes = flags.node_combine_budget;
  if (flags.simd == "scalar") {
    cfg->simd = JobConfig::SimdPolicy::kForceScalar;
  } else {
    if (flags.simd != "auto" && !flags.simd.empty()) {
      std::fprintf(stderr, "unknown --simd=%s, using auto\n",
                   flags.simd.c_str());
    }
    cfg->simd = JobConfig::SimdPolicy::kAuto;
  }
}

// Headline throughput metric for the vectorized data plane: input tuples
// per second per core of simulated work (map input records over the
// simulated busy CPU time would need per-phase attribution, so we report
// records / wall seconds / cores as the comparable cross-run figure).
inline double TuplesPerSecPerCore(uint64_t records, double wall_s,
                                  int cores) {
  if (wall_s <= 0 || cores <= 0) return 0.0;
  return static_cast<double>(records) / wall_s / cores;
}

inline std::string Tpsc(uint64_t records, double wall_s, int cores) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.0f tuples/s/core",
                TuplesPerSecPerCore(records, wall_s, cores));
  return buf;
}

// ---- the scaled paper cluster ----

inline ClusterConfig PaperCluster() {
  ClusterConfig cl;
  cl.nodes = 10;
  cl.cores_per_node = 4;
  cl.map_slots = 4;
  cl.reduce_slots = 4;
  return cl;
}

// Baseline job configuration at 1/1000 of the paper's memory sizes:
// B_m ~ 140 MB -> 512 KB padded a bit, B_r ~ 260-500 MB -> 384 KB, chunk
// 64 MB -> 256 KB. The ratios data/buffer match the paper's regime.
inline JobConfig ScaledJobConfig(EngineKind engine) {
  JobConfig cfg;
  cfg.cluster = PaperCluster();
  cfg.engine = engine;
  cfg.chunk_bytes = 256 << 10;
  cfg.map_buffer_bytes = 512 << 10;
  cfg.reduce_memory_bytes = 512 << 10;
  cfg.merge_factor = 10;
  cfg.reducers_per_node = 4;
  cfg.bucket_page_bytes = 32 << 10;  // engines clamp to memory/(2h)
  cfg.timeline_bin_s = 2.0;
  // CPU constants are calibrated so the map phase is CPU-bound with the
  // sort roughly doubling map CPU (the paper's Fig. 2(b) regime: CPUs
  // saturated during the map phase, and Table 3's 936 s -> 566 s map-CPU
  // drop when the sort is eliminated). They model Hadoop-era per-record
  // overheads, not a tuned C++ inner loop.
  cfg.costs.map_fn_byte_s = 50e-9;
  cfg.costs.reduce_fn_byte_s = 20e-9;
  cfg.costs.sort_cmp_s = 400e-9;
  cfg.costs.hash_record_s = 50e-9;
  cfg.costs.combine_record_s = 30e-9;
  cfg.costs.merge_record_s = 100e-9;
  // Per-event overheads must shrink with the 1/1000 data scale or they
  // would dominate: task startup 100 ms -> 10 ms, seek 4 ms -> 0.4 ms.
  // This keeps startup ~5-10% of map time at the recommended chunk size
  // and seeks ~25% of spill I/O time — the paper's regime.
  cfg.costs.task_start_s = 0.010;
  cfg.costs.disk_seek_s = 0.4e-3;
  cfg.costs.map_output_retention_s = 0.1;
  ApplyDataPlaneFlags(detail::DataPlaneDefaults(), &cfg);
  return cfg;
}

// Scaled config with the data-plane flags applied — the form every bench
// should prefer so --threads/--codec/--batch_size/--simd reach every run.
inline JobConfig ScaledJobConfig(EngineKind engine, const Flags& flags) {
  JobConfig cfg = ScaledJobConfig(engine);
  ApplyDataPlaneFlags(flags, &cfg);
  return cfg;
}

// The click stream at ~1/1000 of 236 GB: ~96 MB, ~1.3M clicks, with skew
// and session dynamics that put INC-hash's memory in the paper's regime.
inline ClickStreamConfig ScaledClicks(double scale = 1.0) {
  ClickStreamConfig c;
  c.num_clicks = static_cast<uint64_t>(1'300'000 * scale);
  c.num_users = static_cast<uint64_t>(48'000 * scale);
  c.num_urls = 5'000;
  // Mild user skew, like a real web log: the hottest user gets ~0.2% of
  // all clicks (so a single user's data fits a reducer's memory, as in
  // the paper), while the distinct key-state space slightly exceeds the
  // reduce memory — §6.1's "small key-state space" regime.
  c.user_skew = 0.5;
  c.url_skew = 1.1;
  // ~36 simulated hours of stream: sessions expire constantly.
  c.clicks_per_second = static_cast<double>(c.num_clicks) / 130'000.0;
  c.record_bytes = 64;
  c.seed = 20110613;
  return c;
}

// The document corpus at ~1/1000 of GOV2's 156 GB: ~48 MB.
inline DocumentCorpusConfig ScaledDocs(double scale = 1.0) {
  DocumentCorpusConfig d;
  d.num_records = static_cast<uint64_t>(220'000 * scale);
  d.words_per_record = 20;
  // Word skew tuned so a 256 KB chunk repeats trigrams roughly the way a
  // 64 MB GOV2 block does: the combiner bites but substantial
  // intermediate data remains (trigram spaces are only mildly skewed).
  d.vocabulary = 40'000;
  d.word_skew = 1.0;
  d.seed = 20110614;
  return d;
}

// ---- formatting ----

inline std::string Mb(uint64_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", bytes / (1024.0 * 1024.0));
  return buf;
}

inline std::string Secs(double s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", s);
  return buf;
}

inline void PrintRow(const char* label, const std::string& a,
                     const std::string& b, const std::string& c) {
  std::printf("%-28s %14s %14s %14s\n", label, a.c_str(), b.c_str(),
              c.c_str());
}

// Renders a set of progress curves sampled at `rows` uniform times.
inline void PrintProgress(const std::vector<std::string>& names,
                          const std::vector<sim::StepSeries>& series,
                          int rows = 25) {
  std::printf("%s",
              sim::RenderSeriesTable(names, series, rows).c_str());
}

inline Result<JobResult> MustRun(const JobSpec& spec, const JobConfig& cfg,
                                 const ChunkStore& input) {
  auto r = LocalCluster::RunJob(spec, cfg, input);
  if (!r.ok()) {
    std::fprintf(stderr, "job failed: %s\n", r.status().ToString().c_str());
  }
  return r;
}

}  // namespace onepass::bench

#endif  // ONEPASS_BENCH_BENCH_COMMON_H_
