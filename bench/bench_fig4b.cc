// Reproduces Fig. 4(b): running time vs chunk size C for merge factors
// F in {4, 8, 16} — model (dashed in the paper) vs measured (solid) —
// together with §3.2's tuning conclusions:
//   (1) the best C is the largest whose map output fits the sort buffer
//       (startup cost shrinks with C; the external sort kicks in past the
//       buffer and time jumps);
//   (2) larger F merges fewer bytes, until the merge is one-pass.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/model/hadoop_model.h"
#include "src/workloads/jobs.h"

int main(int argc, char** argv) {
  using namespace onepass;
  const bench::Flags flags = bench::ParseFlags(argc, argv);

  std::printf(
      "=== Fig. 4(b): time vs chunk size for F in {4, 8, 16} ===\n\n");

  ClickStreamConfig clicks = bench::ScaledClicks(flags.scale);
  const std::vector<uint64_t> chunk_sizes = {32 << 10,  64 << 10,
                                             128 << 10, 256 << 10,
                                             384 << 10, 512 << 10,
                                             768 << 10, 1 << 20};
  const std::vector<int> merge_factors = {4, 8, 16};

  std::printf("%10s", "C(KB)");
  for (int f : merge_factors) std::printf("   model F=%-4d", f);
  for (int f : merge_factors) std::printf("   meas. F=%-4d", f);
  std::printf("\n");

  JobConfig base = bench::ScaledJobConfig(EngineKind::kSortMerge);
  base.reduce_memory_bytes = 64 << 10;
  base.costs = CostModel();
  base.costs.task_start_s = 0.010;
  base.costs.disk_seek_s = 0.05e-3;

  double buffer_c = 0;
  for (uint64_t c : chunk_sizes) {
    ChunkStore input(c, base.cluster.nodes);
    GenerateClickStream(clicks, &input);

    HadoopWorkload w;
    w.d_bytes = static_cast<double>(input.total_bytes());
    w.k_m = 1.15;
    w.k_r = 1.0;
    HadoopHardware hw;
    hw.n_nodes = base.cluster.nodes;
    hw.b_m = static_cast<double>(base.map_buffer_bytes);
    hw.b_r = static_cast<double>(base.reduce_memory_bytes);
    const HadoopModel model(w, hw, base.costs);
    buffer_c = hw.b_m / w.k_m;

    std::printf("%10llu", static_cast<unsigned long long>(c >> 10));
    std::vector<double> measured;
    for (int f : merge_factors) {
      const HadoopSettings settings{base.reducers_per_node,
                                    static_cast<double>(c),
                                    static_cast<double>(f)};
      std::printf(" %14.2f", model.TimeMeasurement(settings));
    }
    for (int f : merge_factors) {
      JobConfig cfg = base;
      cfg.chunk_bytes = c;
      cfg.merge_factor = f;
      auto r = bench::MustRun(SessionizationJob(), cfg, input);
      std::printf(" %14.2f", r.ok() ? r->running_time : 0.0);
    }
    std::printf("\n");
  }

  std::printf(
      "\n§3.2(1): map output fits the %llu KB sort buffer up to C ~ %.0f "
      "KB; both model and\nmeasured curves jump past that point, so the "
      "recommended C is the largest below it.\n",
      static_cast<unsigned long long>(base.map_buffer_bytes >> 10),
      buffer_c / 1024);
  std::printf(
      "§3.2(2): time decreases from F=4 to F=16 (fewer merge passes); "
      "once one-pass,\nlarger F gains nothing.\n");
  return 0;
}
