// Reproduces Fig. 4(b): running time vs chunk size C for merge factors
// F in {4, 8, 16} — model (dashed in the paper) vs measured (solid) —
// together with §3.2's tuning conclusions:
//   (1) the best C is the largest whose map output fits the sort buffer
//       (startup cost shrinks with C; the external sort kicks in past the
//       buffer and time jumps);
//   (2) larger F merges fewer bytes, until the merge is one-pass.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/model/hadoop_model.h"
#include "src/util/hash.h"
#include "src/workloads/jobs.h"

namespace {

// Order-insensitive fingerprint of a job's collected output: a commutative
// sum of per-record hashes, so the flat and legacy hash cores (which
// finalize in different orders) can be compared record-for-record.
uint64_t OutputFingerprint(const std::vector<onepass::Record>& outputs) {
  uint64_t fp = 0;
  for (const onepass::Record& rec : outputs) {
    fp += onepass::Mix64(onepass::HashBytes(rec.key, 7) ^
                         onepass::HashBytes(rec.value, 13));
  }
  return fp;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace onepass;
  const bench::Flags flags = bench::ParseFlags(argc, argv);

  std::printf(
      "=== Fig. 4(b): time vs chunk size for F in {4, 8, 16} ===\n\n");

  ClickStreamConfig clicks = bench::ScaledClicks(flags.scale);
  const std::vector<uint64_t> chunk_sizes = {32 << 10,  64 << 10,
                                             128 << 10, 256 << 10,
                                             384 << 10, 512 << 10,
                                             768 << 10, 1 << 20};
  const std::vector<int> merge_factors = {4, 8, 16};

  std::printf("%10s", "C(KB)");
  for (int f : merge_factors) std::printf("   model F=%-4d", f);
  for (int f : merge_factors) std::printf("   meas. F=%-4d", f);
  std::printf("\n");

  JobConfig base = bench::ScaledJobConfig(EngineKind::kSortMerge);
  if (base.combine_scope == CombineScope::kNode) {
    // The node tier needs a combine function on sort-merge; timings then
    // measure sessionization with map-side combine enabled.
    base.map_side_combine = true;
    std::printf("(--combine_scope=node: map-side combine enabled)\n\n");
  }
  base.reduce_memory_bytes = 64 << 10;
  base.costs = CostModel();
  base.costs.task_start_s = 0.010;
  base.costs.disk_seek_s = 0.05e-3;
  base.block_codec = bench::CodecFromFlag(flags.codec);

  // Bytes-on-disk rows (intermediate I/O actually charged to disk —
  // encoded bytes when a codec is active), printed after the time table.
  std::vector<std::string> disk_rows;

  double buffer_c = 0;
  for (uint64_t c : chunk_sizes) {
    ChunkStore input(c, base.cluster.nodes);
    GenerateClickStream(clicks, &input);

    HadoopWorkload w;
    w.d_bytes = static_cast<double>(input.total_bytes());
    w.k_m = 1.15;
    w.k_r = 1.0;
    HadoopHardware hw;
    hw.n_nodes = base.cluster.nodes;
    hw.b_m = static_cast<double>(base.map_buffer_bytes);
    hw.b_r = static_cast<double>(base.reduce_memory_bytes);
    const HadoopModel model(w, hw, base.costs);
    buffer_c = hw.b_m / w.k_m;

    std::printf("%10llu", static_cast<unsigned long long>(c >> 10));
    std::vector<double> measured;
    for (int f : merge_factors) {
      const HadoopSettings settings{base.reducers_per_node,
                                    static_cast<double>(c),
                                    static_cast<double>(f)};
      std::printf(" %14.2f", model.TimeMeasurement(settings));
    }
    char row[160];
    int row_len = std::snprintf(row, sizeof(row), "%10llu",
                                static_cast<unsigned long long>(c >> 10));
    for (int f : merge_factors) {
      JobConfig cfg = base;
      cfg.chunk_bytes = c;
      cfg.merge_factor = f;
      auto r = bench::MustRun(SessionizationJob(), cfg, input);
      std::printf(" %14.2f", r.ok() ? r->running_time : 0.0);
      const uint64_t disk_bytes =
          !r.ok() ? 0
                  : r->metrics.map_spill_write_bytes +
                        r->metrics.map_spill_read_bytes +
                        r->metrics.map_output_bytes +
                        r->metrics.reduce_spill_write_bytes +
                        r->metrics.reduce_spill_read_bytes;
      row_len += std::snprintf(row + row_len, sizeof(row) - row_len,
                               " %14s", bench::Mb(disk_bytes).c_str());
    }
    disk_rows.push_back(row);
    std::printf("\n");
  }

  std::printf("\nbytes on disk, intermediate streams (MB%s):\n",
              base.block_codec == BlockCodecKind::kNone ? ""
                                                        : ", lz-encoded");
  std::printf("%10s", "C(KB)");
  for (int f : merge_factors) std::printf("    disk F=%-4d", f);
  std::printf("\n");
  for (const std::string& row : disk_rows) std::printf("%s\n", row.c_str());

  std::printf(
      "\n§3.2(1): map output fits the %llu KB sort buffer up to C ~ %.0f "
      "KB; both model and\nmeasured curves jump past that point, so the "
      "recommended C is the largest below it.\n",
      static_cast<unsigned long long>(base.map_buffer_bytes >> 10),
      buffer_c / 1024);
  std::printf(
      "§3.2(2): time decreases from F=4 to F=16 (fewer merge passes); "
      "once one-pass,\nlarger F gains nothing.\n");

  // Hash-core before/after (DESIGN.md §5.4): the same INC-hash click-count
  // job under the FlatTable core vs the legacy unordered_map core. The
  // order-insensitive output fingerprints must match — the core changes
  // performance, never results.
  std::printf("\n=== hash core: INC-hash flat vs legacy (click counts) "
              "===\n\n");
  JobConfig inc_cfg = bench::ScaledJobConfig(EngineKind::kIncHash);
  inc_cfg.map_side_combine = true;
  inc_cfg.collect_outputs = true;
  inc_cfg.expected_keys_per_reducer =
      clicks.num_users / (inc_cfg.cluster.nodes * inc_cfg.reducers_per_node);
  inc_cfg.expected_bytes_per_reducer = inc_cfg.reduce_memory_bytes;
  ChunkStore inc_input(inc_cfg.chunk_bytes, inc_cfg.cluster.nodes);
  GenerateClickStream(clicks, &inc_input);

  std::printf("%-14s %14s %14s %18s\n", "core", "time(s)", "probes",
              "fingerprint");
  uint64_t fp_flat = 0, fp_legacy = 0;
  for (const HashCoreKind core :
       {HashCoreKind::kFlat, HashCoreKind::kLegacy}) {
    JobConfig cfg = inc_cfg;
    cfg.hash_core = core;
    // The node tier requires the flat core's reproducible iteration
    // order; the legacy-core baseline runs at task scope regardless.
    if (core == HashCoreKind::kLegacy) {
      cfg.combine_scope = CombineScope::kTask;
    }
    auto r = bench::MustRun(ClickCountJob(), cfg, inc_input);
    if (!r.ok()) return 1;
    const uint64_t fp = OutputFingerprint(r->outputs);
    (core == HashCoreKind::kFlat ? fp_flat : fp_legacy) = fp;
    std::printf("%-14s %14.2f %14llu %18llx\n",
                core == HashCoreKind::kFlat ? "flat" : "legacy",
                r->running_time,
                static_cast<unsigned long long>(
                    r->metrics.hash_table_probes),
                static_cast<unsigned long long>(fp));
  }
  std::printf(fp_flat == fp_legacy
                  ? "\noutput fingerprints match: the cores compute "
                    "identical results.\n"
                  : "\nERROR: output fingerprints DIVERGE between hash "
                    "cores.\n");
  return fp_flat == fp_legacy ? 0 : 1;
}
