// Reproduces Table 3: optimized Hadoop (1-pass sort-merge) vs MR-hash vs
// INC-hash on sessionization, user click counting, and frequent user
// identification.
//
// Paper (236 GB WorldCup stream):
//   Sessionization        1-Pass SM   MR-hash   INC-hash
//   Running time (s)      4424        3577      2258
//   Map CPU / node (s)    936         566       571
//   Reduce CPU / node (s) 1104        1033      565
//   Map output (GB)       245         245       245
//   Reduce spill (GB)     250         256       51
//
//   User click counting   1430        1100      1113   (reduce spill ~0
//   Frequent users        1435        1153      1135    for both hash
//                                                       engines)
//
// Shape targets: SM slowest / INC fastest on sessionization; map CPU
// roughly halves without the sort; INC's spill is a small fraction of
// SM/MR's; counting workloads spill ~0 with the hash engines.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/workloads/jobs.h"

namespace onepass {
namespace {

JobConfig EngineConfig(EngineKind kind, bool combine,
                       uint64_t expected_bytes) {
  JobConfig cfg = bench::ScaledJobConfig(kind);
  cfg.map_side_combine = combine;
  // Optimized Hadoop: one-pass merge (F >= number of reduce-side runs).
  cfg.merge_factor = 32;
  cfg.expected_keys_per_reducer = 1200;   // ~48K users / 40 reducers
  cfg.expected_bytes_per_reducer = expected_bytes;
  return cfg;
}

struct Row {
  double time = 0;
  double map_cpu = 0;
  double reduce_cpu = 0;
  uint64_t map_out = 0;
  uint64_t spill = 0;
};

Row Run(EngineKind kind, const JobSpec& spec, bool combine,
        const ChunkStore& input, uint64_t expected_bytes) {
  JobConfig cfg = EngineConfig(kind, combine, expected_bytes);
  auto r = bench::MustRun(spec, cfg, input);
  Row row;
  if (!r.ok()) return row;
  row.time = r->running_time;
  row.map_cpu = r->map_cpu_s / cfg.cluster.nodes;
  row.reduce_cpu = r->reduce_cpu_s / cfg.cluster.nodes;
  row.map_out = r->metrics.map_output_bytes;
  row.spill = r->metrics.reduce_spill_write_bytes;
  return row;
}

void PrintBlock(const char* title, const Row& sm, const Row& mr,
                const Row& inc) {
  std::printf("\n%s%32s %14s %14s\n", title, "1-Pass SM", "MR-hash",
              "INC-hash");
  bench::PrintRow("Running time (s)", bench::Secs(sm.time),
                  bench::Secs(mr.time), bench::Secs(inc.time));
  bench::PrintRow("Map CPU per node (s)", bench::Secs(sm.map_cpu),
                  bench::Secs(mr.map_cpu), bench::Secs(inc.map_cpu));
  bench::PrintRow("Reduce CPU per node (s)", bench::Secs(sm.reduce_cpu),
                  bench::Secs(mr.reduce_cpu), bench::Secs(inc.reduce_cpu));
  bench::PrintRow("Map output / shuffle (MB)", bench::Mb(sm.map_out),
                  bench::Mb(mr.map_out), bench::Mb(inc.map_out));
  bench::PrintRow("Reduce spill (MB)", bench::Mb(sm.spill),
                  bench::Mb(mr.spill), bench::Mb(inc.spill));
}

}  // namespace
}  // namespace onepass

int main(int argc, char** argv) {
  using namespace onepass;
  const bench::Flags flags = bench::ParseFlags(argc, argv);

  std::printf(
      "=== Table 3: optimized sort-merge vs MR-hash vs INC-hash "
      "(~1/1000 scale) ===\n");

  const ClickStreamConfig clicks = bench::ScaledClicks(flags.scale);
  ChunkStore input((256 << 10), bench::PaperCluster().nodes);
  GenerateClickStream(clicks, &input);

  // Sessionization: no combiner (every click must be kept).
  PrintBlock("Sessionization",
             Run(EngineKind::kSortMerge, SessionizationJob(), false, input, 5 << 20),
             Run(EngineKind::kMRHash, SessionizationJob(), false, input, 5 << 20),
             Run(EngineKind::kIncHash, SessionizationJob(), false, input, 5 << 20));

  // User click counting: combiner applies.
  PrintBlock("User click counting",
             Run(EngineKind::kSortMerge, ClickCountJob(), true, input, 128 << 10),
             Run(EngineKind::kMRHash, ClickCountJob(), true, input, 128 << 10),
             Run(EngineKind::kIncHash, ClickCountJob(), true, input, 128 << 10));

  // Frequent user identification (>= 50 clicks), early output allowed.
  PrintBlock("Frequent user identification",
             Run(EngineKind::kSortMerge, FrequentUserJob(50), true, input, 128 << 10),
             Run(EngineKind::kMRHash, FrequentUserJob(50), true, input, 128 << 10),
             Run(EngineKind::kIncHash, FrequentUserJob(50), true, input, 128 << 10));

  std::printf(
      "\npaper shape check: SM slowest and INC fastest on sessionization; "
      "map CPU drops\nroughly 2x without the sort; INC spill is a small "
      "fraction of SM/MR spill;\ncounting workloads spill ~0 with hash "
      "engines.\n");
  return 0;
}
