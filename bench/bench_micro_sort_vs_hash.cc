// Microbenchmark: the map-side CPU cost the paper attacks (§2.3) —
// sorting the map output buffer by (partition, key) versus hash-based
// grouping (partition-count + one-scan placement, or a combine hash
// table). These are the *real* CPU costs of the data plane (the simulated
// cost model is calibrated separately).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/util/hash.h"
#include "src/util/random.h"
#include "src/workloads/clickstream.h"

namespace onepass {
namespace {

std::vector<std::pair<std::string, std::string>> MakePairs(int n) {
  Xoshiro256StarStar rng(7);
  ZipfGenerator users(50'000, 0.8);
  std::vector<std::pair<std::string, std::string>> pairs;
  pairs.reserve(n);
  for (int i = 0; i < n; ++i) {
    pairs.emplace_back(UserKey(users.Next(&rng)), std::string(52, 'v'));
  }
  return pairs;
}

void BM_SortMapBuffer(benchmark::State& state) {
  const auto pairs = MakePairs(static_cast<int>(state.range(0)));
  UniversalHashFamily family(1);
  const UniversalHash h1 = family.At(0);
  struct Entry {
    uint32_t part;
    std::string_view key;
  };
  for (auto _ : state) {
    std::vector<Entry> entries;
    entries.reserve(pairs.size());
    for (const auto& [k, v] : pairs) {
      entries.push_back({static_cast<uint32_t>(h1.Bucket(k, 40)), k});
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) {
                if (a.part != b.part) return a.part < b.part;
                return a.key < b.key;
              });
    benchmark::DoNotOptimize(entries);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SortMapBuffer)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 18);

void BM_HashPartitionGroup(benchmark::State& state) {
  const auto pairs = MakePairs(static_cast<int>(state.range(0)));
  UniversalHashFamily family(1);
  const UniversalHash h1 = family.At(0);
  for (auto _ : state) {
    // Count per partition, then place in one scan (§5's hash map output).
    std::vector<uint32_t> counts(40, 0);
    std::vector<uint32_t> parts(pairs.size());
    for (size_t i = 0; i < pairs.size(); ++i) {
      parts[i] = static_cast<uint32_t>(h1.Bucket(pairs[i].first, 40));
      ++counts[parts[i]];
    }
    std::vector<uint32_t> offsets(40, 0);
    for (int p = 1; p < 40; ++p) offsets[p] = offsets[p - 1] + counts[p - 1];
    std::vector<uint32_t> placed(pairs.size());
    for (size_t i = 0; i < pairs.size(); ++i) {
      placed[offsets[parts[i]]++] = static_cast<uint32_t>(i);
    }
    benchmark::DoNotOptimize(placed);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashPartitionGroup)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 18);

void BM_HashCombineTable(benchmark::State& state) {
  const auto pairs = MakePairs(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::unordered_map<std::string_view, uint64_t> table;
    table.reserve(pairs.size() / 4);
    for (const auto& [k, v] : pairs) ++table[k];
    benchmark::DoNotOptimize(table);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HashCombineTable)->Arg(1 << 12)->Arg(1 << 15)->Arg(1 << 18);

}  // namespace
}  // namespace onepass
