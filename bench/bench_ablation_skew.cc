// Ablation for §4.3's analysis: when does DINC-hash beat INC-hash?
//
// "The improvement of INC-hash over MR-hash is only significant when K is
// small... DINC-hash mitigates this in the case when, although K may be
// large, some keys are considerably more frequent than other keys."
// The FREQUENT guarantee gives nothing "if there are no keys whose
// relative frequency is more than 1/(s+1)".
//
// We sweep the user-popularity Zipf exponent and report reduce spill for
// INC vs DINC on user click counting with a key space >> memory.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/workloads/jobs.h"

int main(int argc, char** argv) {
  using namespace onepass;
  const bench::Flags flags = bench::ParseFlags(argc, argv);

  std::printf("=== ablation: key-popularity skew vs INC/DINC spill "
              "(click counting, K >> memory) ===\n\n");
  std::printf("%8s %16s %16s %14s\n", "skew", "INC spill(MB)",
              "DINC spill(MB)", "DINC/INC");

  for (double skew : {0.0, 0.4, 0.8, 1.0, 1.2}) {
    ClickStreamConfig clicks;
    clicks.num_clicks = static_cast<uint64_t>(500'000 * flags.scale);
    clicks.num_users = 100'000;  // key space far beyond reduce memory
    clicks.user_skew = skew;
    clicks.clicks_per_second = 50;
    clicks.seed = 42;
    // Disable session burstiness: i.i.d. draws isolate the *global*
    // frequency skew, which is what §4.3's FREQUENT analysis speaks to.
    clicks.mean_session_clicks = 1;
    ChunkStore input((256 << 10), bench::PaperCluster().nodes);
    GenerateClickStream(clicks, &input);

    auto run = [&](EngineKind kind) {
      JobConfig cfg = bench::ScaledJobConfig(kind);
      // Tight enough that the observed key space exceeds memory at every
      // skew (high skew shrinks the number of distinct keys that appear).
      cfg.reduce_memory_bytes = 16 << 10;
      cfg.map_side_combine = false;  // stress the reduce side
      cfg.expected_keys_per_reducer = 2500;
      auto r = bench::MustRun(ClickCountJob(), cfg, input);
      return r.ok() ? r->metrics.reduce_spill_write_bytes : 0;
    };
    const uint64_t inc = run(EngineKind::kIncHash);
    const uint64_t dinc = run(EngineKind::kDincHash);
    std::printf("%8.1f %16s %16s %13.2fx\n", skew, bench::Mb(inc).c_str(),
                bench::Mb(dinc).c_str(),
                inc > 0 ? static_cast<double>(dinc) / inc : 0.0);
  }

  std::printf(
      "\npaper shape check: with no frequent keys DINC = INC (FREQUENT "
      "gives no guarantee,\n§4.3); the advantage appears and grows with "
      "skew. It stays modest here because hot\nkeys arrive early and "
      "first-come residency captures them too — exactly the paper's\n"
      "trigram observation (§6.2). DINC's large wins need hot keys that "
      "churn or emerge\nlate (sessionization's expiring users, via the "
      "eviction hook — see bench_table4).\n");
  return 0;
}
