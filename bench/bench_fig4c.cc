// Reproduces Fig. 4(c): incremental map/reduce progress of stock vs
// model-optimized Hadoop, against the "optimal" reduce progress (= the map
// progress). With --util also prints Fig. 4(d,e): CPU utilization and
// iowait of optimized Hadoop.
//
// Paper: optimized Hadoop (C=64MB, one-pass merge, R=4) cut running time
// 4860 s -> 4187 s (~14%), but its reduce progress still plateaus at ~33%
// while the maps run and lags far behind the optimal line afterwards.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/workloads/jobs.h"

int main(int argc, char** argv) {
  using namespace onepass;
  const bench::Flags flags = bench::ParseFlags(argc, argv);

  std::printf(
      "=== Fig. 4(c): progress of stock vs optimized Hadoop "
      "(sessionization) ===\n\n");

  const ClickStreamConfig clicks = bench::ScaledClicks(flags.scale);

  // Stock: small chunks would be fine, but the default config uses an
  // aggressive multi-pass merge (F=8) and a tight shuffle buffer.
  JobConfig stock = bench::ScaledJobConfig(EngineKind::kSortMerge);
  stock.merge_factor = 8;
  stock.reduce_memory_bytes = 128 << 10;
  ChunkStore stock_input(stock.chunk_bytes, stock.cluster.nodes);
  GenerateClickStream(clicks, &stock_input);
  auto stock_r = bench::MustRun(SessionizationJob(), stock, stock_input);

  // Optimized per the model: largest chunk that fits the map buffer,
  // one-pass merge, R = reduce slots.
  JobConfig opt = bench::ScaledJobConfig(EngineKind::kSortMerge);
  opt.chunk_bytes = 384 << 10;  // C*Km ~ 440KB <= Bm = 512KB
  opt.merge_factor = 32;        // one-pass
  opt.reduce_memory_bytes = 128 << 10;
  ChunkStore opt_input(opt.chunk_bytes, opt.cluster.nodes);
  GenerateClickStream(clicks, &opt_input);
  auto opt_r = bench::MustRun(SessionizationJob(), opt, opt_input);

  if (!stock_r.ok() || !opt_r.ok()) return 1;

  std::printf("stock:     %.2f s   optimized: %.2f s   (%.0f%% faster; "
              "paper: 14%%)\n\n",
              stock_r->running_time, opt_r->running_time,
              100.0 * (stock_r->running_time - opt_r->running_time) /
                  stock_r->running_time);

  // The "optimal reduce" line of the figure is the map progress itself.
  bench::PrintProgress(
      {"stock map%", "stock red%", "opt map%", "opt red%", "optimal red%"},
      {stock_r->map_progress, stock_r->reduce_progress, opt_r->map_progress,
       opt_r->reduce_progress, opt_r->map_progress},
      22);

  if (flags.util) {
    std::printf(
        "\n--- Fig. 4(d,e): optimized Hadoop CPU utilization / iowait "
        "---\n  time(s)        cpu%%      iowait%%\n");
    for (int i = 0; i <= 22; ++i) {
      const double t = opt_r->running_time * i / 22;
      std::printf("%9.2f  %10.1f  %11.1f\n", t,
                  100 * opt_r->cpu_util.ValueAt(t),
                  100 * opt_r->iowait.ValueAt(t));
    }
  }

  std::printf(
      "\npaper shape check: tuning helps total time, but optimized "
      "Hadoop's reduce progress\nstill flattens at ~33%% until the maps "
      "finish — the gap to the optimal line is the\nmotivation for the "
      "hash platform.\n");
  return 0;
}
