// Parallel data plane: wall-clock scaling of the map and reduce phases
// across host threads (DESIGN.md §5.3).
//
// The simulated *cluster* has always modeled N nodes x C cores; this bench
// measures how fast the *host* executes the data plane that feeds the
// simulation. It runs one map-heavy job (trigram counting: the map-side
// sort dominates) and one reduce-heavy job (user click counting into the
// hash engines) at data_plane_threads = 1, 2, 4, ... up to the hardware,
// reporting each phase's wall-clock seconds and speedup over threads=1 —
// and verifies the determinism contract on every row: outputs, metrics,
// and the simulated running time must be byte-identical to the sequential
// run ("same?" prints NO otherwise, which CI greps for).
//
// Usage: bench_parallel_scaling [--scale=S] [--threads=T]
//   --threads=T caps the sweep (default: one per hardware thread).

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/util/thread_pool.h"
#include "src/workloads/documents.h"
#include "src/workloads/jobs.h"

namespace onepass {
namespace {

struct Baseline {
  std::string metrics;
  std::vector<Record> outputs;
  double running_time = 0;
};

void Sweep(const char* name, const JobSpec& spec, const JobConfig& base,
           const ChunkStore& input, int max_threads) {
  std::printf("\n--- %s ---\n", name);
  std::printf("%-8s %10s %8s %10s %8s %5s\n", "threads", "map_s",
              "map_spd", "reduce_s", "red_spd", "same?");

  Baseline ref;
  double map_base = 0, reduce_base = 0;
  for (int threads = 1; threads <= max_threads;
       threads = threads < 2 ? 2 : threads * 2) {
    JobConfig cfg = base;
    cfg.data_plane_threads = threads;
    auto r = bench::MustRun(spec, cfg, input);
    if (!r.ok()) return;
    bool same = true;
    if (threads == 1) {
      ref.metrics = r->metrics.Serialize();
      ref.outputs = r->outputs;
      ref.running_time = r->running_time;
      map_base = r->map_plane_wall_s;
      reduce_base = r->reduce_plane_wall_s;
    } else {
      same = r->metrics.Serialize() == ref.metrics &&
             r->outputs == ref.outputs &&
             r->running_time == ref.running_time;
    }
    std::printf("%-8d %10.3f %7.2fx %10.3f %7.2fx %5s\n", threads,
                r->map_plane_wall_s,
                r->map_plane_wall_s > 0 ? map_base / r->map_plane_wall_s : 0,
                r->reduce_plane_wall_s,
                r->reduce_plane_wall_s > 0
                    ? reduce_base / r->reduce_plane_wall_s
                    : 0,
                same ? "yes" : "NO");
  }
}

int Run(int argc, char** argv) {
  const bench::Flags flags = bench::ParseFlags(argc, argv);
  const int hw = ThreadPool::ResolveThreads(0);
  const int max_threads =
      flags.threads > 0 ? flags.threads : std::max(hw, 1);
  std::printf("parallel data-plane scaling (host: %d hardware threads, "
              "sweeping 1..%d)\n",
              hw, max_threads);

  // Map-heavy: trigram counting on the sort-merge engine — the map-side
  // sort is the dominant cost, so the map phase shows the scaling.
  {
    ChunkStore input(256 << 10, 10);
    GenerateDocuments(bench::ScaledDocs(0.5 * flags.scale), &input);
    JobConfig cfg = bench::ScaledJobConfig(EngineKind::kSortMerge);
    cfg.collect_outputs = true;
    Sweep("map-heavy: trigram count, sort-merge", TrigramCountJob(), cfg,
          input, max_threads);
  }

  // Reduce-heavy: click counting with tight reduce memory on INC-hash —
  // reduce-side spills and rehashing dominate.
  {
    ChunkStore input(256 << 10, 10);
    GenerateClickStream(bench::ScaledClicks(flags.scale), &input);
    JobConfig cfg = bench::ScaledJobConfig(EngineKind::kIncHash);
    cfg.map_side_combine = true;
    cfg.reduce_memory_bytes = 256 << 10;
    cfg.expected_keys_per_reducer = 1200;
    cfg.collect_outputs = true;
    Sweep("reduce-heavy: click count, INC-hash", ClickCountJob(), cfg,
          input, max_threads);
  }
  return 0;
}

}  // namespace
}  // namespace onepass

int main(int argc, char** argv) { return onepass::Run(argc, argv); }
