// Codec smoke for CI (DESIGN.md §5.5): three floors that must hold for
// the block byte path to be worth shipping, checked fast enough to run on
// every push:
//   (1) compression ratio on the Zipf'd word-count spill plane >= 1.5x;
//   (2) LZ decode throughput >= a deliberately conservative floor;
//   (3) kNone and kLz produce identical output fingerprints on all four
//       engines.
// Exits non-zero if any floor is missed.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/storage/block_format.h"
#include "src/util/compress.h"
#include "src/util/hash.h"
#include "src/util/kv_buffer.h"
#include "src/workloads/jobs.h"

namespace {

// Order-insensitive fingerprint (same construction as bench_fig4b): a
// commutative sum of per-record hashes, so engines that emit records in
// different orders can still be compared record-for-record.
uint64_t OutputFingerprint(const std::vector<onepass::Record>& outputs) {
  uint64_t fp = 0;
  for (const onepass::Record& rec : outputs) {
    fp += onepass::Mix64(onepass::HashBytes(rec.key, 7) ^
                         onepass::HashBytes(rec.value, 13));
  }
  return fp;
}

bool Check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace onepass;
  const bench::Flags flags = bench::ParseFlags(argc, argv);
  bool ok = true;

  std::printf("=== codec smoke: ratio, decode throughput, answer "
              "equivalence ===\n\n");

  // ---- (1) compression ratio on Zipf word-count spills ----
  {
    DocumentCorpusConfig docs = bench::ScaledDocs(flags.scale);
    docs.num_records = static_cast<uint64_t>(20'000 * flags.scale);
    JobConfig cfg = bench::ScaledJobConfig(EngineKind::kSortMerge);
    cfg.map_buffer_bytes = 128 << 10;   // forces map-side spill runs
    cfg.reduce_memory_bytes = 64 << 10;  // forces reduce-side runs
    cfg.merge_factor = 4;
    cfg.block_codec = BlockCodecKind::kLz;
    ChunkStore input(cfg.chunk_bytes, cfg.cluster.nodes);
    GenerateDocuments(docs, &input);

    auto r = bench::MustRun(TrigramCountJob(/*threshold=*/5), cfg, input);
    if (!r.ok()) return 1;
    const JobMetrics& m = r->metrics;
    const uint64_t raw = m.codec_map_spill_raw_bytes +
                         m.codec_shuffle_raw_bytes +
                         m.codec_reduce_spill_raw_bytes +
                         m.codec_bucket_raw_bytes;
    const uint64_t enc = m.codec_map_spill_encoded_bytes +
                         m.codec_shuffle_encoded_bytes +
                         m.codec_reduce_spill_encoded_bytes +
                         m.codec_bucket_encoded_bytes;
    const double ratio =
        enc > 0 ? static_cast<double>(raw) / static_cast<double>(enc) : 0.0;
    std::printf("Zipf word-count spill plane: raw %s MB -> encoded %s MB "
                "(%.2fx)\n",
                bench::Mb(raw).c_str(), bench::Mb(enc).c_str(), ratio);
    ok &= Check(ratio >= 1.5, "spill compression ratio >= 1.5x");

    // Informational: end-to-end decode throughput observed inside the job.
    if (m.decompress_ns > 0) {
      std::printf("  in-job decode: %.0f MB/s over %s MB raw\n",
                  raw / (m.decompress_ns / 1e9) / (1 << 20),
                  bench::Mb(raw).c_str());
    }
  }

  // ---- (2) LZ decode throughput floor ----
  {
    // Compress a Zipf'd text buffer in codec-sized blocks, then time
    // repeated decodes. The floor is conservative by design — an order of
    // magnitude below what the byte-aligned decoder does on release
    // builds — so the check only trips on real regressions (quadratic
    // copies, per-byte branching), not on slow CI machines.
    DocumentCorpusConfig docs = bench::ScaledDocs(0.05);
    ChunkStore text(256 << 10, 1);
    GenerateDocuments(docs, &text);
    std::string raw;
    for (const Chunk& c : text.chunks()) raw += c.records.data();
    const size_t block = 48 << 10;
    std::vector<std::pair<std::string, size_t>> blocks;  // (enc, raw size)
    for (size_t off = 0; off < raw.size(); off += block) {
      const size_t len = std::min(block, raw.size() - off);
      std::string enc;
      LzCompress(std::string_view(raw).substr(off, len), &enc);
      blocks.emplace_back(std::move(enc), len);
    }
    const int reps = 20;
    std::string out;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < reps; ++i) {
      for (const auto& [enc, raw_len] : blocks) {
        out.clear();
        if (!LzDecompress(enc, raw_len, &out)) return 1;
      }
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    const double mb_s = reps * raw.size() / secs / (1 << 20);
    std::printf("\nLZ decode: %.0f MB/s (%zu KB corpus, %d reps)\n", mb_s,
                raw.size() >> 10, reps);
    ok &= Check(mb_s >= 64.0, "decode throughput >= 64 MB/s");
  }

  // ---- (3) kNone vs kLz fingerprints on all four engines ----
  {
    std::printf("\n%-12s %18s %18s\n", "engine", "fp(none)", "fp(lz)");
    const ClickStreamConfig clicks = bench::ScaledClicks(0.1 * flags.scale);
    for (const EngineKind engine :
         {EngineKind::kSortMerge, EngineKind::kMRHash, EngineKind::kIncHash,
          EngineKind::kDincHash}) {
      JobConfig cfg = bench::ScaledJobConfig(engine);
      cfg.reduce_memory_bytes = 64 << 10;  // tight: every engine spills
      cfg.map_side_combine = true;
      cfg.collect_outputs = true;
      cfg.expected_keys_per_reducer =
          clicks.num_users /
          (cfg.cluster.nodes * cfg.reducers_per_node);
      cfg.expected_bytes_per_reducer = cfg.reduce_memory_bytes;
      ChunkStore input(cfg.chunk_bytes, cfg.cluster.nodes);
      GenerateClickStream(clicks, &input);

      uint64_t fp[2] = {0, 0};
      for (const BlockCodecKind codec :
           {BlockCodecKind::kNone, BlockCodecKind::kLz}) {
        cfg.block_codec = codec;
        auto r = bench::MustRun(ClickCountJob(), cfg, input);
        if (!r.ok()) return 1;
        fp[codec == BlockCodecKind::kLz] = OutputFingerprint(r->outputs);
      }
      std::printf("%-12s %18llx %18llx\n",
                  std::string(EngineKindName(engine)).c_str(),
                  static_cast<unsigned long long>(fp[0]),
                  static_cast<unsigned long long>(fp[1]));
      ok &= Check(fp[0] == fp[1], "kLz output identical to kNone");
    }
  }

  std::printf("\ncodec smoke: %s\n", ok ? "all floors hold" : "FAILED");
  return ok ? 0 : 1;
}
