// Multi-tenant scheduling under burst overload (DESIGN.md §5.7).
//
// A batch tenant keeps the cluster saturated with long jobs while an
// interactive tenant fires a burst of short jobs into the same
// JobManager. The bench replays the identical submission schedule twice:
//
//   FIFO       — strict arrival order, no preemption (the historical
//                "one job owns the world" behavior, serialized);
//   fair-share — interactive weighted 4:1 with map preemption on.
//
// It reports per-tenant p50/p99/max job latency (sojourn: finish -
// arrival), cluster CPU utilization, and preemption counts, then prints
// a PASS/FAIL line CI greps: fair share must cut the interactive p99 by
// at least 2x. Two more sections exercise graceful degradation (a burst
// into a tiny admission queue must reject immediately with a typed
// status, never hang) and the solo-identity contract (one managed FIFO
// job is byte-identical to LocalCluster::RunJob).
//
// Usage: bench_multitenant [--scale=S]

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/mr/job_manager.h"
#include "src/workloads/clickstream.h"
#include "src/workloads/jobs.h"

namespace onepass {
namespace {

ChunkStore MakeInput(int num_clicks, uint64_t seed) {
  ClickStreamConfig clicks;
  clicks.num_clicks = num_clicks;
  clicks.num_users = num_clicks / 20;
  clicks.seed = seed;
  ChunkStore input(32 << 10, 4, 2);
  GenerateClickStream(clicks, &input);
  return input;
}

JobConfig TenantJobConfig() {
  JobConfig cfg;
  cfg.engine = EngineKind::kIncHash;
  cfg.cluster.nodes = 4;
  cfg.cluster.cores_per_node = 2;
  cfg.cluster.map_slots = 2;
  cfg.cluster.reduce_slots = 2;
  cfg.reducers_per_node = 2;
  cfg.chunk_bytes = 32 << 10;
  cfg.map_buffer_bytes = 128 << 10;
  cfg.reduce_memory_bytes = 64 << 10;
  cfg.map_side_combine = true;
  cfg.expected_keys_per_reducer = 200;
  cfg.expected_bytes_per_reducer = 64 << 10;
  cfg.replication = 2;
  return cfg;
}

constexpr int kBatchTenant = 0;
constexpr int kInteractiveTenant = 1;

// Six long batch jobs saturating the cluster from t=0, then a burst of
// twelve short interactive jobs landing while the batch work is deep in
// its map phase.
std::vector<JobSubmission> MakeSchedule(const ChunkStore& batch_input,
                                        const ChunkStore& inter_input) {
  std::vector<JobSubmission> subs;
  auto add = [&](int tenant, const ChunkStore& input, double arrival) {
    JobSubmission sub;
    sub.spec = ClickCountJob();
    sub.config = TenantJobConfig();
    sub.config.seed = 1000 + subs.size();
    sub.input = &input;
    sub.tenant = tenant;
    sub.arrival_time = arrival;
    subs.push_back(std::move(sub));
  };
  for (int j = 0; j < 6; ++j) {
    add(kBatchTenant, batch_input, 0.05 * j);
  }
  for (int j = 0; j < 12; ++j) {
    add(kInteractiveTenant, inter_input, 0.3 + 0.1 * j);
  }
  return subs;
}

ManagerConfig BaseManagerConfig() {
  ManagerConfig mc;
  mc.cluster = TenantJobConfig().cluster;
  mc.max_concurrent_jobs = 18;  // admission wide open for the comparison
  mc.max_queued_jobs = 18;
  mc.tenants = {{"batch", 1.0, 0}, {"interactive", 4.0, 0}};
  mc.timeline_bin_s = 1.0;
  return mc;
}

void PrintTenantRows(const char* policy, const ManagerResult& r) {
  for (const TenantStats& t : r.tenants) {
    std::printf("%-10s %-12s %5d %5d %8.2f %8.2f %8.2f %8.2f\n", policy,
                t.name.c_str(), t.jobs_completed, t.jobs_rejected,
                t.mean_latency_s, t.p50_latency_s, t.p99_latency_s,
                t.max_latency_s);
  }
}

int RunBench(double scale) {
  const ChunkStore batch_input =
      MakeInput(static_cast<int>(50'000 * scale), 11);
  const ChunkStore inter_input =
      MakeInput(static_cast<int>(5'000 * scale), 12);
  const std::vector<JobSubmission> subs =
      MakeSchedule(batch_input, inter_input);

  std::printf("--- burst of 12 interactive jobs vs 6 batch jobs ---\n");
  std::printf("%-10s %-12s %5s %5s %8s %8s %8s %8s\n", "policy", "tenant",
              "done", "rej", "mean_s", "p50_s", "p99_s", "max_s");

  ManagerConfig fifo_cfg = BaseManagerConfig();
  fifo_cfg.policy = SchedulePolicy::kFifo;
  fifo_cfg.preemption = false;
  auto fifo = JobManager::Run(fifo_cfg, subs);
  if (!fifo.ok()) {
    std::fprintf(stderr, "fifo run failed: %s\n",
                 fifo.status().ToString().c_str());
    return 1;
  }
  PrintTenantRows("fifo", *fifo);

  ManagerConfig fair_cfg = BaseManagerConfig();
  fair_cfg.policy = SchedulePolicy::kFairShare;
  fair_cfg.preemption = true;
  auto fair = JobManager::Run(fair_cfg, subs);
  if (!fair.ok()) {
    std::fprintf(stderr, "fair-share run failed: %s\n",
                 fair.status().ToString().c_str());
    return 1;
  }
  PrintTenantRows("fair", *fair);

  std::printf("\n%-10s %9s %9s %10s %9s\n", "policy", "makespan", "avg_util",
              "preempts", "throttles");
  std::printf("%-10s %9.2f %8.1f%% %10llu %9llu\n", "fifo", fifo->makespan,
              100.0 * fifo->avg_cpu_utilization,
              static_cast<unsigned long long>(fifo->preemptions),
              static_cast<unsigned long long>(fifo->throttle_skips));
  std::printf("%-10s %9.2f %8.1f%% %10llu %9llu\n", "fair", fair->makespan,
              100.0 * fair->avg_cpu_utilization,
              static_cast<unsigned long long>(fair->preemptions),
              static_cast<unsigned long long>(fair->throttle_skips));

  const double fifo_p99 =
      fifo->tenants[kInteractiveTenant].p99_latency_s;
  const double fair_p99 =
      fair->tenants[kInteractiveTenant].p99_latency_s;
  const double speedup = fair_p99 > 0 ? fifo_p99 / fair_p99 : 0;
  std::printf("\ninteractive p99: fifo=%.2fs fair=%.2fs speedup=%.2fx\n",
              fifo_p99, fair_p99, speedup);
  const bool p99_ok = speedup >= 2.0;
  std::printf("fair-share p99 >= 2x better than fifo: %s\n",
              p99_ok ? "PASS" : "FAIL");

  // --- graceful degradation: burst into a tiny admission queue ---
  ManagerConfig tight = BaseManagerConfig();
  tight.max_concurrent_jobs = 2;
  tight.max_queued_jobs = 2;
  auto overload = JobManager::Run(tight, subs);
  if (!overload.ok()) {
    std::fprintf(stderr, "overload run failed: %s\n",
                 overload.status().ToString().c_str());
    return 1;
  }
  int typed = 0, hung = 0;
  for (const JobOutcome& o : overload->jobs) {
    if (o.state == JobOutcomeState::kRejected && o.status.IsUnavailable() &&
        o.finish_time == o.arrival_time) {
      ++typed;
    }
    if (o.finish_time < 0) ++hung;
  }
  std::printf(
      "\noverload (2 running + 2 queued): %d/%zu rejected immediately "
      "with Unavailable, %d hung\n",
      typed, overload->jobs.size(), hung);
  const bool overload_ok = overload->rejected_jobs == typed &&
                           overload->rejected_jobs > 0 && hung == 0;
  std::printf("admission rejects typed and immediate: %s\n",
              overload_ok ? "PASS" : "FAIL");

  // --- solo identity: one managed FIFO job == LocalCluster::RunJob ---
  JobConfig solo_cfg = TenantJobConfig();
  solo_cfg.collect_outputs = true;
  auto solo = LocalCluster::RunJob(ClickCountJob(), solo_cfg, inter_input);
  ManagerConfig one = BaseManagerConfig();
  one.policy = SchedulePolicy::kFifo;
  one.preemption = false;
  JobSubmission sub;
  sub.spec = ClickCountJob();
  sub.config = solo_cfg;
  sub.input = &inter_input;
  auto managed = JobManager::Run(one, {sub});
  bool solo_ok = solo.ok() && managed.ok() &&
                 managed->jobs[0].state == JobOutcomeState::kCompleted;
  if (solo_ok) {
    const JobResult& a = *solo;
    const JobResult& b = managed->jobs[0].result;
    solo_ok = a.outputs == b.outputs &&
              a.metrics.Serialize() == b.metrics.Serialize() &&
              a.running_time == b.running_time &&
              a.map_finish_time == b.map_finish_time;
  }
  std::printf("managed job byte-identical to solo RunJob: %s\n",
              solo_ok ? "PASS" : "FAIL");

  return p99_ok && overload_ok && solo_ok ? 0 : 1;
}

}  // namespace
}  // namespace onepass

int main(int argc, char** argv) {
  const onepass::bench::Flags flags = onepass::bench::ParseFlags(argc, argv);
  return onepass::RunBench(flags.scale);
}
