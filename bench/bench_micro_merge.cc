// Microbenchmark: k-way sorted merge (the reduce side of sort-merge) as a
// function of fan-in, vs hash-table grouping of the same data — the CPU
// side of the paper's sort-merge critique.

#include <benchmark/benchmark.h>

#include <string>
#include <unordered_map>
#include <vector>

#include "src/engine/sorted_merge.h"
#include "src/util/kv_buffer.h"
#include "src/util/random.h"
#include "src/workloads/clickstream.h"

namespace onepass {
namespace {

std::vector<KvBuffer> MakeSortedRuns(int runs, int records_per_run) {
  Xoshiro256StarStar rng(11);
  ZipfGenerator users(20'000, 0.8);
  std::vector<KvBuffer> out(runs);
  for (int r = 0; r < runs; ++r) {
    std::vector<std::string> keys;
    keys.reserve(records_per_run);
    for (int i = 0; i < records_per_run; ++i) {
      keys.push_back(UserKey(users.Next(&rng)));
    }
    std::sort(keys.begin(), keys.end());
    for (const auto& k : keys) out[r].Append(k, "0123456789abcdef");
  }
  return out;
}

void BM_KWayMerge(benchmark::State& state) {
  const int fan_in = static_cast<int>(state.range(0));
  const auto runs = MakeSortedRuns(fan_in, (1 << 17) / fan_in);
  for (auto _ : state) {
    std::vector<const KvBuffer*> inputs;
    for (const auto& r : runs) inputs.push_back(&r);
    SortedKvMerger merger(std::move(inputs));
    std::string_view k, v;
    uint64_t n = 0;
    while (merger.Next(&k, &v)) ++n;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations() * (1 << 17));
}
BENCHMARK(BM_KWayMerge)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_HashGroupSameData(benchmark::State& state) {
  const int fan_in = static_cast<int>(state.range(0));
  const auto runs = MakeSortedRuns(fan_in, (1 << 17) / fan_in);
  for (auto _ : state) {
    std::unordered_map<std::string_view, uint64_t> groups;
    for (const auto& r : runs) {
      KvBufferReader reader(r);
      std::string_view k, v;
      while (reader.Next(&k, &v)) ++groups[k];
    }
    benchmark::DoNotOptimize(groups.size());
  }
  state.SetItemsProcessed(state.iterations() * (1 << 17));
}
BENCHMARK(BM_HashGroupSameData)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

}  // namespace
}  // namespace onepass
