// Reproduces §3.2's byte-level model validation: "Not only do we see
// matching trends, the predicted numbers are also close to the actual
// numbers, with less than 10% difference."
//
// We compare Proposition 3.1's per-node byte predictions (U1..U5) against
// the bytes the data plane actually moved.

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/model/hadoop_model.h"
#include "src/workloads/jobs.h"

int main(int argc, char** argv) {
  using namespace onepass;
  const bench::Flags flags = bench::ParseFlags(argc, argv);

  std::printf("=== §3.2: model-predicted vs measured I/O bytes (per node) "
              "===\n\n");

  const ClickStreamConfig clicks = bench::ScaledClicks(flags.scale);
  JobConfig cfg = bench::ScaledJobConfig(EngineKind::kSortMerge);
  cfg.merge_factor = 32;  // one-pass merge so lambda_F is in its exact regime
  cfg.reduce_memory_bytes = 128 << 10;
  ChunkStore input(cfg.chunk_bytes, cfg.cluster.nodes);
  GenerateClickStream(clicks, &input);

  auto r = bench::MustRun(SessionizationJob(), cfg, input);
  if (!r.ok()) return 1;
  const JobMetrics& m = r->metrics;
  const double n = cfg.cluster.nodes;

  HadoopWorkload w;
  w.d_bytes = static_cast<double>(input.total_bytes());
  w.k_m = static_cast<double>(m.map_output_bytes) /
          static_cast<double>(m.map_input_bytes);
  w.k_r = static_cast<double>(m.reduce_output_bytes) /
          static_cast<double>(m.map_output_bytes);
  HadoopHardware hw;
  hw.n_nodes = cfg.cluster.nodes;
  hw.b_m = static_cast<double>(cfg.map_buffer_bytes);
  hw.b_r = static_cast<double>(cfg.reduce_memory_bytes);
  const HadoopModel model(w, hw, cfg.costs);
  const HadoopSettings settings{cfg.reducers_per_node,
                                static_cast<double>(cfg.chunk_bytes),
                                static_cast<double>(cfg.merge_factor)};
  const ByteCosts u = model.Bytes(settings);

  auto row = [&](const char* name, double predicted, double measured) {
    const double diff =
        measured > 0 ? 100.0 * (predicted - measured) / measured : 0.0;
    std::printf("%-28s %12.1f %12.1f %9.1f%%\n", name,
                predicted / (1 << 20), measured / (1 << 20), diff);
  };
  std::printf("%-28s %12s %12s %10s\n", "per-node bytes (MB)", "model",
              "measured", "diff");
  row("U1 map input", u.map_input,
      static_cast<double>(m.map_input_bytes) / n);
  row("U2 map internal spill", u.map_spill,
      static_cast<double>(m.map_spill_write_bytes +
                          m.map_spill_read_bytes) /
          n);
  row("U3 map output", u.map_output,
      static_cast<double>(m.map_output_bytes) / n);
  row("U4 reduce internal spill", u.reduce_spill,
      static_cast<double>(m.reduce_spill_write_bytes +
                          m.reduce_spill_read_bytes) /
          n);
  row("U5 reduce output", u.reduce_output,
      static_cast<double>(m.reduce_output_bytes) / n);
  row("total U", u.total(),
      static_cast<double>(m.map_input_bytes + m.map_spill_write_bytes +
                          m.map_spill_read_bytes + m.map_output_bytes +
                          m.reduce_spill_write_bytes +
                          m.reduce_spill_read_bytes +
                          m.reduce_output_bytes) /
          n);

  std::printf(
      "\npaper shape check: predicted bytes within ~10%% of measured "
      "(paper: \"less than 10%%\ndifference\").\n");
  return 0;
}
