// Reproduces §3.2's byte-level model validation: "Not only do we see
// matching trends, the predicted numbers are also close to the actual
// numbers, with less than 10% difference."
//
// We compare Proposition 3.1's per-node byte predictions (U1..U5) against
// the bytes the data plane actually moved.

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/model/hadoop_model.h"
#include "src/workloads/jobs.h"

int main(int argc, char** argv) {
  using namespace onepass;
  const bench::Flags flags = bench::ParseFlags(argc, argv);

  std::printf("=== §3.2: model-predicted vs measured I/O bytes (per node) "
              "===\n\n");

  const ClickStreamConfig clicks = bench::ScaledClicks(flags.scale);
  JobConfig cfg = bench::ScaledJobConfig(EngineKind::kSortMerge);
  cfg.merge_factor = 32;  // one-pass merge so lambda_F is in its exact regime
  cfg.reduce_memory_bytes = 128 << 10;
  cfg.block_codec = bench::CodecFromFlag(flags.codec);
  const bool coded = cfg.block_codec != BlockCodecKind::kNone;
  ChunkStore input(cfg.chunk_bytes, cfg.cluster.nodes);
  GenerateClickStream(clicks, &input);

  auto r = bench::MustRun(SessionizationJob(), cfg, input);
  if (!r.ok()) return 1;
  const JobMetrics& m = r->metrics;
  const double n = cfg.cluster.nodes;

  HadoopWorkload w;
  w.d_bytes = static_cast<double>(input.total_bytes());
  // K_m and K_r are data properties, so they use *raw* volumes: under a
  // codec the disk-visible map_output_bytes is encoded and the raw total
  // lives in the codec counters.
  const double raw_map_output =
      coded ? static_cast<double>(m.codec_shuffle_raw_bytes)
            : static_cast<double>(m.map_output_bytes);
  w.k_m = raw_map_output / static_cast<double>(m.map_input_bytes);
  w.k_r = static_cast<double>(m.reduce_output_bytes) / raw_map_output;
  HadoopHardware hw;
  hw.n_nodes = cfg.cluster.nodes;
  hw.b_m = static_cast<double>(cfg.map_buffer_bytes);
  hw.b_r = static_cast<double>(cfg.reduce_memory_bytes);
  HadoopModel model(w, hw, cfg.costs);
  if (coded) {
    // Effective-bytes multipliers: the measured encoded/raw ratio per
    // stream kind (1.0 when a stream kind never materialized).
    auto ratio = [](uint64_t enc, uint64_t raw) {
      return raw > 0 ? static_cast<double>(enc) / static_cast<double>(raw)
                     : 1.0;
    };
    EffectiveBytes eff;
    eff.map_spill =
        ratio(m.codec_map_spill_encoded_bytes, m.codec_map_spill_raw_bytes);
    eff.map_output =
        ratio(m.codec_shuffle_encoded_bytes, m.codec_shuffle_raw_bytes);
    eff.reduce_spill =
        ratio(m.codec_reduce_spill_encoded_bytes + m.codec_bucket_encoded_bytes,
              m.codec_reduce_spill_raw_bytes + m.codec_bucket_raw_bytes);
    model.set_effective_bytes(eff);
    std::printf("codec=lz effective-bytes factors: map_spill %.3f  "
                "map_output %.3f  reduce_spill %.3f\n\n",
                eff.map_spill, eff.map_output, eff.reduce_spill);
  }
  const HadoopSettings settings{cfg.reducers_per_node,
                                static_cast<double>(cfg.chunk_bytes),
                                static_cast<double>(cfg.merge_factor)};
  const ByteCosts u = model.Bytes(settings);

  auto row = [&](const char* name, double predicted, double measured) {
    const double diff =
        measured > 0 ? 100.0 * (predicted - measured) / measured : 0.0;
    std::printf("%-28s %12.1f %12.1f %9.1f%%\n", name,
                predicted / (1 << 20), measured / (1 << 20), diff);
  };
  std::printf("%-28s %12s %12s %10s\n", "per-node bytes (MB)", "model",
              "measured", "diff");
  row("U1 map input", u.map_input,
      static_cast<double>(m.map_input_bytes) / n);
  row("U2 map internal spill", u.map_spill,
      static_cast<double>(m.map_spill_write_bytes +
                          m.map_spill_read_bytes) /
          n);
  row("U3 map output", u.map_output,
      static_cast<double>(m.map_output_bytes) / n);
  row("U4 reduce internal spill", u.reduce_spill,
      static_cast<double>(m.reduce_spill_write_bytes +
                          m.reduce_spill_read_bytes) /
          n);
  row("U5 reduce output", u.reduce_output,
      static_cast<double>(m.reduce_output_bytes) / n);
  row("total U", u.total(),
      static_cast<double>(m.map_input_bytes + m.map_spill_write_bytes +
                          m.map_spill_read_bytes + m.map_output_bytes +
                          m.reduce_spill_write_bytes +
                          m.reduce_spill_read_bytes +
                          m.reduce_output_bytes) /
          n);

  std::printf(
      "\npaper shape check: predicted bytes within ~10%% of measured "
      "(paper: \"less than 10%%\ndifference\").\n");
  return 0;
}
