// Checkpointed reduce-state recovery (DESIGN.md §5.6): what a reduce-phase
// node crash costs with and without checkpoints, per engine (no
// counterpart in the paper, which ran on a healthy cluster; the recovery
// model follows its Hadoop lineage).
//
// A node dies when 50% / 90% of the shuffle bytes have been delivered.
// Without checkpoints its reducers restart from nothing: every segment is
// re-fetched (and already-consumed reduce work is redone). With a
// checkpoint every 4 deliveries, replicated 2x, a restart restores the
// newest surviving image and re-fetches only post-watermark segments —
// the later the crash, the bigger the win.
//
// Usage: bench_checkpoint [--scale=S] [--codec=none|lz] [--threads=N]

#include <cstdio>
#include <map>
#include <string>

#include "bench/bench_common.h"
#include "src/workloads/jobs.h"
#include "src/workloads/reference.h"

namespace onepass {
namespace {

constexpr EngineKind kEngines[] = {EngineKind::kSortMerge,
                                   EngineKind::kMRHash, EngineKind::kIncHash,
                                   EngineKind::kDincHash};

JobConfig BaseConfig(EngineKind kind, const bench::Flags& flags) {
  JobConfig cfg = bench::ScaledJobConfig(kind);
  cfg.map_side_combine = true;
  cfg.merge_factor = 32;
  cfg.expected_keys_per_reducer = 1200;
  cfg.expected_bytes_per_reducer = 2 << 20;
  cfg.collect_outputs = true;
  cfg.replication = 2;
  cfg.data_plane_threads = flags.threads;
  cfg.block_codec = bench::CodecFromFlag(flags.codec);
  return cfg;
}

bool MatchesReference(const JobResult& result,
                      const std::map<std::string, uint64_t>& expected) {
  std::map<std::string, uint64_t> got;
  for (const Record& rec : result.outputs) {
    got[rec.key] += std::stoull(rec.value);
  }
  return got == expected;
}

void CrashScenario(const ChunkStore& input,
                   const std::map<std::string, uint64_t>& expected,
                   const bench::Flags& flags, double fraction) {
  std::printf("\n--- crash node 3 at %.0f%% of the shuffle:"
              " no checkpoint vs every 4 segments (repl 2) ---\n",
              100.0 * fraction);
  std::printf("%-9s %8s | %8s %9s %6s | %8s %9s %6s %5s %5s | %8s %4s\n",
              "engine", "clean_s", "plain_s", "refetchMB", "remaps",
              "ckpt_s", "refetchMB", "remaps", "saved", "rest", "workdrop",
              "ref?");
  for (EngineKind kind : kEngines) {
    JobConfig cfg = BaseConfig(kind, flags);
    auto clean = bench::MustRun(ClickCountJob(), cfg, input);
    if (!clean.ok()) continue;

    sim::CrashEvent crash;
    crash.node = 3;
    crash.at_reduce_fraction = fraction;
    cfg.faults.crashes = {crash};
    auto plain = bench::MustRun(ClickCountJob(), cfg, input);
    if (!plain.ok()) continue;

    cfg.checkpoint_interval_segments = 4;
    cfg.checkpoint_replication = 2;
    auto ckpt = bench::MustRun(ClickCountJob(), cfg, input);
    if (!ckpt.ok()) continue;

    const JobMetrics& mp = plain->metrics;
    const JobMetrics& mc = ckpt->metrics;
    const uint64_t plain_remaps =
        mp.map_task_attempts - static_cast<uint64_t>(plain->map_tasks);
    const uint64_t ckpt_remaps =
        mc.map_task_attempts - static_cast<uint64_t>(ckpt->map_tasks);
    // The headline ratio: bytes the restarted reducers re-fetched without
    // vs with checkpoints (the issue's >= 3x acceptance bound at 90%).
    const double workdrop =
        mc.shuffle_refetched_bytes > 0
            ? static_cast<double>(mp.shuffle_refetched_bytes) /
                  static_cast<double>(mc.shuffle_refetched_bytes)
            : 0.0;
    const bool ok = MatchesReference(*plain, expected) &&
                    MatchesReference(*ckpt, expected) &&
                    MatchesReference(*clean, expected);
    std::printf(
        "%-9s %8.1f | %8.1f %9s %6llu | %8.1f %9s %6llu %5llu %5llu |"
        " %7.1fx %4s\n",
        std::string(EngineKindName(kind)).c_str(), clean->running_time,
        plain->running_time, bench::Mb(mp.shuffle_refetched_bytes).c_str(),
        static_cast<unsigned long long>(plain_remaps), ckpt->running_time,
        bench::Mb(mc.shuffle_refetched_bytes).c_str(),
        static_cast<unsigned long long>(ckpt_remaps),
        static_cast<unsigned long long>(mc.checkpoints_written),
        static_cast<unsigned long long>(mc.checkpoints_restored), workdrop,
        ok ? "yes" : "NO");
  }
}

void CleanOverheadScenario(const ChunkStore& input,
                           const std::map<std::string, uint64_t>& expected,
                           const bench::Flags& flags) {
  std::printf("\n--- checkpoint overhead on a healthy run"
              " (every 4 segments, repl 2) ---\n");
  std::printf("%-9s %9s %9s %9s %6s %9s %9s %4s\n", "engine", "plain_s",
              "ckpt_s", "overhead", "saved", "ckpt_MB", "repl_MB", "ref?");
  for (EngineKind kind : kEngines) {
    JobConfig cfg = BaseConfig(kind, flags);
    auto plain = bench::MustRun(ClickCountJob(), cfg, input);
    if (!plain.ok()) continue;
    cfg.checkpoint_interval_segments = 4;
    cfg.checkpoint_replication = 2;
    auto ckpt = bench::MustRun(ClickCountJob(), cfg, input);
    if (!ckpt.ok()) continue;
    const JobMetrics& m = ckpt->metrics;
    std::printf("%-9s %9.1f %9.1f %8.1f%% %6llu %9s %9s %4s\n",
                std::string(EngineKindName(kind)).c_str(),
                plain->running_time, ckpt->running_time,
                100.0 * (ckpt->running_time / plain->running_time - 1.0),
                static_cast<unsigned long long>(m.checkpoints_written),
                bench::Mb(m.checkpoint_bytes).c_str(),
                bench::Mb(m.checkpoint_replica_bytes).c_str(),
                MatchesReference(*ckpt, expected) ? "yes" : "NO");
  }
}

}  // namespace
}  // namespace onepass

int main(int argc, char** argv) {
  using namespace onepass;
  const bench::Flags flags = bench::ParseFlags(argc, argv);

  std::printf(
      "=== Checkpointed reduce-state recovery: user click counting ===\n");
  const ClickStreamConfig clicks = bench::ScaledClicks(flags.scale);
  ChunkStore input(256 << 10, bench::PaperCluster().nodes,
                   /*replication=*/2);
  GenerateClickStream(clicks, &input);
  std::printf("input: %s MB in %zu chunks, replication 2\n",
              bench::Mb(input.total_bytes()).c_str(), input.chunks().size());

  const auto expected = ReferenceClickCounts(input, ClickKeyField::kUser);
  CleanOverheadScenario(input, expected, flags);
  CrashScenario(input, expected, flags, 0.5);
  CrashScenario(input, expected, flags, 0.9);
  return 0;
}
