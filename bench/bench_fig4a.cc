// Reproduces Fig. 4(a): the analytical model's time measurement versus the
// measured running time over a grid of (chunk size C, merge factor F).
//
// The paper's point is NOT absolute equality — the model is a linear
// combination of I/O and startup costs while the real system has many
// other factors — but that both surfaces move the same way as C and F are
// tuned, so the model can pick good parameters. We print both surfaces
// and their rank correlation.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/model/hadoop_model.h"
#include "src/workloads/jobs.h"

namespace onepass {
namespace {

double RankCorrelation(const std::vector<double>& a,
                       const std::vector<double>& b) {
  auto ranks = [](const std::vector<double>& v) {
    std::vector<int> idx(v.size());
    for (size_t i = 0; i < v.size(); ++i) idx[i] = static_cast<int>(i);
    std::sort(idx.begin(), idx.end(),
              [&](int x, int y) { return v[x] < v[y]; });
    std::vector<double> r(v.size());
    for (size_t i = 0; i < idx.size(); ++i) r[idx[i]] = static_cast<double>(i);
    return r;
  };
  const std::vector<double> ra = ranks(a), rb = ranks(b);
  const double n = static_cast<double>(a.size());
  double d2 = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    d2 += (ra[i] - rb[i]) * (ra[i] - rb[i]);
  }
  return 1.0 - 6.0 * d2 / (n * (n * n - 1.0));  // Spearman's rho
}

}  // namespace
}  // namespace onepass

int main(int argc, char** argv) {
  using namespace onepass;
  const bench::Flags flags = bench::ParseFlags(argc, argv);

  std::printf(
      "=== Fig. 4(a): model time vs measured running time over (C, F) "
      "===\n\n");

  // Full-size stream; C capped so there are always at least ~2 waves of
  // map tasks (the model has no notion of slots, and a grid point with
  // fewer tasks than slots measures cluster underutilization instead of
  // the I/O effects the model predicts — the paper's grid had >= 190
  // tasks everywhere).
  ClickStreamConfig clicks = bench::ScaledClicks(flags.scale);
  const std::vector<uint64_t> chunk_sizes = {32 << 10,  64 << 10, 128 << 10,
                                             256 << 10, 512 << 10, 1 << 20};
  const std::vector<int> merge_factors = {3, 4, 6, 10, 16};

  std::printf("%10s %4s %14s %14s\n", "C(KB)", "F", "model T(s)",
              "measured(s)");
  std::vector<double> model_ts, sim_ts;
  for (uint64_t c : chunk_sizes) {
    // Regenerate per chunk size: the DFS block size defines the chunking.
    ChunkStore input(c, bench::PaperCluster().nodes);
    GenerateClickStream(clicks, &input);

    JobConfig cfg = bench::ScaledJobConfig(EngineKind::kSortMerge);
    cfg.chunk_bytes = c;
    cfg.reduce_memory_bytes = 64 << 10;
    // Eq. 4 models I/O bytes, seeks, and startup — not CPU. Validate it
    // in the regime it describes: light CPU constants (the library
    // defaults) so disk and startup dominate the measured time, seeks a
    // small fraction of I/O as at the paper's scale, and ~15 reduce-side
    // runs per reducer so the merge factor matters.
    cfg.costs = CostModel();
    cfg.costs.task_start_s = 0.010;
    cfg.costs.disk_seek_s = 0.05e-3;

    HadoopWorkload w;
    w.d_bytes = static_cast<double>(input.total_bytes());
    w.k_m = 1.15;  // user key added per record
    w.k_r = 1.0;
    HadoopHardware hw;
    hw.n_nodes = cfg.cluster.nodes;
    hw.b_m = static_cast<double>(cfg.map_buffer_bytes);
    hw.b_r = static_cast<double>(cfg.reduce_memory_bytes);
    const HadoopModel model(w, hw, cfg.costs);

    for (int f : merge_factors) {
      cfg.merge_factor = f;
      const HadoopSettings settings{cfg.reducers_per_node,
                                    static_cast<double>(c),
                                    static_cast<double>(f)};
      const double model_t = model.TimeMeasurement(settings);
      auto r = bench::MustRun(SessionizationJob(), cfg, input);
      const double sim_t = r.ok() ? r->running_time : 0;
      model_ts.push_back(model_t);
      sim_ts.push_back(sim_t);
      std::printf("%10llu %4d %14.2f %14.2f\n",
                  static_cast<unsigned long long>(c >> 10), f, model_t,
                  sim_t);
    }
  }

  std::printf("\nSpearman rank correlation (model vs measured): %.3f\n",
              RankCorrelation(model_ts, sim_ts));

  // Per-axis trend agreement (the paper's actual claim: the model
  // predicts how time *changes* as each parameter is tuned).
  const size_t nf = merge_factors.size();
  double c_corr = 0;
  for (size_t fi = 0; fi < nf; ++fi) {
    std::vector<double> m, s;
    for (size_t ci = 0; ci < chunk_sizes.size(); ++ci) {
      m.push_back(model_ts[ci * nf + fi]);
      s.push_back(sim_ts[ci * nf + fi]);
    }
    c_corr += RankCorrelation(m, s);
  }
  c_corr /= static_cast<double>(nf);
  double f_corr = 0;
  for (size_t ci = 0; ci < chunk_sizes.size(); ++ci) {
    std::vector<double> m(model_ts.begin() + ci * nf,
                          model_ts.begin() + (ci + 1) * nf);
    std::vector<double> s(sim_ts.begin() + ci * nf,
                          sim_ts.begin() + (ci + 1) * nf);
    f_corr += RankCorrelation(m, s);
  }
  f_corr /= static_cast<double>(chunk_sizes.size());
  std::printf("trend correlation along C (avg over F): %.3f\n", c_corr);
  std::printf("trend correlation along F (avg over C): %.3f\n", f_corr);

  // What the model is for: picking (C, F). Compare the two argmins.
  auto argmin = [&](const std::vector<double>& v) {
    size_t best = 0;
    for (size_t i = 1; i < v.size(); ++i) {
      if (v[i] < v[best]) best = i;
    }
    return best;
  };
  const size_t bm = argmin(model_ts), bs = argmin(sim_ts);
  std::printf(
      "model-optimal setting:    C=%lluKB F=%d\n",
      static_cast<unsigned long long>(chunk_sizes[bm / nf] >> 10),
      merge_factors[bm % nf]);
  std::printf(
      "measured-optimal setting: C=%lluKB F=%d\n",
      static_cast<unsigned long long>(chunk_sizes[bs / nf] >> 10),
      merge_factors[bs % nf]);
  std::printf(
      "paper shape check: the two surfaces exhibit the same trends as C "
      "and F vary\n(correlation well above 0), so the model can be used "
      "to pick (C, F).\n");
  return 0;
}
