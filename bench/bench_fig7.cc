// Reproduces Fig. 7: map/reduce progress curves for the hash engines
// (paper §6, Definition 1).
//
//  (a) sessionization: SM and MR-hash reduce progress blocks at 33% until
//      the maps finish; INC-hash tracks the map progress until its memory
//      fills, then slows.
//  (b) user click counting: SM steps (combiner fires on buffer fills),
//      MR-hash flat at 33%, INC-hash climbs smoothly to 66% (no early
//      output possible).
//  (c) frequent user identification: INC-hash's reduce progress fully
//      keeps up with the maps (early output at the threshold).
//  (d) INC-hash sessionization with 0.5/1/2 KB states: larger states ->
//      memory fills earlier -> reduce diverges from map sooner.
//  (e) DINC-hash sessionization (2 KB): reduce progress closely follows
//      map progress; almost no post-map tail.
//  (f) trigram counting: INC and DINC close together, both near the map
//      curve (trigrams are only mildly skewed).
//
// Usage: bench_fig7 [--plot a|b|c|d|e|f] (default: all)

#include <cstdio>

#include "bench/bench_common.h"
#include "src/workloads/jobs.h"

namespace onepass {
namespace {

JobConfig Config(EngineKind kind, bool combine, uint64_t expected_bytes,
                 uint64_t expected_keys = 1200) {
  JobConfig cfg = bench::ScaledJobConfig(kind);
  cfg.map_side_combine = combine;
  cfg.merge_factor = 32;
  cfg.expected_keys_per_reducer = expected_keys;
  cfg.expected_bytes_per_reducer = expected_bytes;
  return cfg;
}

struct Curve {
  std::string name;
  sim::StepSeries map;
  sim::StepSeries reduce;
  double time = 0;
};

Curve RunCurve(const std::string& name, EngineKind kind, const JobSpec& spec,
               bool combine, uint64_t expected_bytes,
               const ChunkStore& input, uint64_t expected_keys = 1200) {
  JobConfig cfg = Config(kind, combine, expected_bytes, expected_keys);
  auto r = bench::MustRun(spec, cfg, input);
  Curve c;
  c.name = name;
  if (r.ok()) {
    c.map = r->map_progress;
    c.reduce = r->reduce_progress;
    c.time = r->running_time;
  }
  return c;
}

void PrintCurves(const char* title, const std::vector<Curve>& curves) {
  std::printf("\n--- %s ---\n", title);
  std::vector<std::string> names;
  std::vector<sim::StepSeries> series;
  for (const Curve& c : curves) {
    names.push_back(c.name + " map%");
    series.push_back(c.map);
    names.push_back(c.name + " red%");
    series.push_back(c.reduce);
  }
  bench::PrintProgress(names, series, 20);
  std::printf("running times:");
  for (const Curve& c : curves) {
    std::printf("  %s=%.1fs", c.name.c_str(), c.time);
  }
  std::printf("\n");
}

bool Want(const bench::Flags& flags, const char* plot) {
  return flags.plot.empty() || flags.plot == plot;
}

}  // namespace
}  // namespace onepass

int main(int argc, char** argv) {
  using namespace onepass;
  const bench::Flags flags = bench::ParseFlags(argc, argv);

  std::printf("=== Fig. 7: progress with the hash implementations ===\n");

  const ClickStreamConfig clicks = bench::ScaledClicks(flags.scale);
  ChunkStore input((256 << 10), bench::PaperCluster().nodes);
  GenerateClickStream(clicks, &input);

  if (Want(flags, "a")) {
    PrintCurves(
        "(a) sessionization: SM vs MR-hash vs INC-hash",
        {RunCurve("SM", EngineKind::kSortMerge, SessionizationJob(), false,
                  5 << 20, input),
         RunCurve("MR", EngineKind::kMRHash, SessionizationJob(), false,
                  5 << 20, input),
         RunCurve("INC", EngineKind::kIncHash, SessionizationJob(), false,
                  5 << 20, input)});
  }
  if (Want(flags, "b")) {
    PrintCurves(
        "(b) user click counting",
        {RunCurve("SM", EngineKind::kSortMerge, ClickCountJob(), true,
                  128 << 10, input),
         RunCurve("MR", EngineKind::kMRHash, ClickCountJob(), true,
                  128 << 10, input),
         RunCurve("INC", EngineKind::kIncHash, ClickCountJob(), true,
                  128 << 10, input)});
  }
  if (Want(flags, "c")) {
    PrintCurves(
        "(c) frequent user identification (>= 50 clicks)",
        {RunCurve("SM", EngineKind::kSortMerge, FrequentUserJob(50), true,
                  128 << 10, input),
         RunCurve("MR", EngineKind::kMRHash, FrequentUserJob(50), true,
                  128 << 10, input),
         RunCurve("INC", EngineKind::kIncHash, FrequentUserJob(50), true,
                  128 << 10, input)});
  }
  if (Want(flags, "d")) {
    PrintCurves(
        "(d) INC-hash sessionization, state size 0.5/1/2 KB",
        {RunCurve("0.5KB", EngineKind::kIncHash, SessionizationJob(512),
                  false, 5 << 20, input),
         RunCurve("1KB", EngineKind::kIncHash, SessionizationJob(1024),
                  false, 5 << 20, input),
         RunCurve("2KB", EngineKind::kIncHash, SessionizationJob(2048),
                  false, 5 << 20, input)});
  }
  if (Want(flags, "e")) {
    PrintCurves(
        "(e) DINC-hash sessionization (2 KB states)",
        {RunCurve("DINC", EngineKind::kDincHash, SessionizationJob(2048),
                  false, 5 << 20, input)});
  }
  if (Want(flags, "f")) {
    const DocumentCorpusConfig docs = bench::ScaledDocs(flags.scale);
    ChunkStore doc_input((256 << 10), bench::PaperCluster().nodes);
    GenerateDocuments(docs, &doc_input);
    // Large key space: the distinct trigrams far exceed reduce memory.
    PrintCurves(
        "(f) trigram counting (threshold 1000 at paper scale; scaled "
        "to 50 here)",
        {RunCurve("INC", EngineKind::kIncHash, TrigramCountJob(50), true,
                  5 << 20, doc_input, 60'000),
         RunCurve("DINC", EngineKind::kDincHash, TrigramCountJob(50), true,
                  5 << 20, doc_input, 60'000)});
    // The paper's §6.2 epilogue: 1-pass sort-merge takes 9023 s vs the
    // hash engines' 4100-4400 s on this workload.
    Curve sm = RunCurve("SM", EngineKind::kSortMerge, TrigramCountJob(50),
                        true, 5 << 20, doc_input, 60'000);
    std::printf(
        "1-pass sort-merge on the same workload: %.1f s (paper: 9023 s vs "
        "4100-4400 s for the hash engines)\n",
        sm.time);
  }

  std::printf(
      "\npaper shape check: (a,b) SM/MR reduce stuck at ~33%% until maps "
      "finish; (c) INC reduce\ntracks map; (d) larger states diverge "
      "earlier; (e) DINC follows map with no tail;\n(f) INC and DINC "
      "close together.\n");
  return 0;
}
