// Reproduces Table 4: sessionization with INC-hash (0.5 KB state), INC-hash
// (2 KB state), and DINC-hash (2 KB state).
//
// Paper:
//                      INC (0.5KB)   INC (2KB)   DINC (2KB)
//   Running time (s)   2258          3271        2067
//   Reduce spill (GB)  51            203         0.1
//
// Plus the §6.2 headline: DINC reducers finish as soon as the mappers do
// (34.5 min) with ~0.1 GB of spill, vs stock Hadoop's 81 min and 370 GB —
// three orders of magnitude less internal data spill.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/workloads/jobs.h"

namespace onepass {
namespace {

struct Row {
  double time = 0;
  uint64_t spill = 0;
  double map_finish = 0;
};

Row Run(EngineKind kind, uint64_t state_bytes, const ChunkStore& input) {
  JobConfig cfg = bench::ScaledJobConfig(kind);
  cfg.merge_factor = 32;
  cfg.expected_keys_per_reducer = 1200;
  cfg.expected_bytes_per_reducer = 5 << 20;
  auto r = bench::MustRun(SessionizationJob(state_bytes), cfg, input);
  Row row;
  if (!r.ok()) return row;
  row.time = r->running_time;
  row.spill = r->metrics.reduce_spill_write_bytes;
  row.map_finish = r->map_finish_time;
  return row;
}

Row RunStock(const ChunkStore& input) {
  JobConfig cfg = bench::ScaledJobConfig(EngineKind::kSortMerge);
  cfg.merge_factor = 8;
  cfg.reduce_memory_bytes = 128 << 10;
  auto r = bench::MustRun(SessionizationJob(), cfg, input);
  Row row;
  if (!r.ok()) return row;
  row.time = r->running_time;
  row.spill = r->metrics.reduce_spill_write_bytes;
  row.map_finish = r->map_finish_time;
  return row;
}

}  // namespace
}  // namespace onepass

int main(int argc, char** argv) {
  using namespace onepass;
  const bench::Flags flags = bench::ParseFlags(argc, argv);

  std::printf(
      "=== Table 4: sessionization, INC vs DINC under varying state size "
      "===\n\n");

  const ClickStreamConfig clicks = bench::ScaledClicks(flags.scale);
  ChunkStore input((256 << 10), bench::PaperCluster().nodes);
  GenerateClickStream(clicks, &input);

  const Row inc_small = Run(EngineKind::kIncHash, 512, input);
  const Row inc_big = Run(EngineKind::kIncHash, 2048, input);
  const Row dinc = Run(EngineKind::kDincHash, 2048, input);

  bench::PrintRow("", "INC (0.5KB)", "INC (2KB)", "DINC (2KB)");
  bench::PrintRow("Running time (s)", bench::Secs(inc_small.time),
                  bench::Secs(inc_big.time), bench::Secs(dinc.time));
  bench::PrintRow("Reduce spill (MB)", bench::Mb(inc_small.spill),
                  bench::Mb(inc_big.spill), bench::Mb(dinc.spill));

  // §6.2 epilogue: DINC vs stock Hadoop.
  const Row stock = RunStock(input);
  std::printf(
      "\n--- §6.2 headline: DINC-hash vs stock Hadoop (sort-merge, F=8) "
      "---\n");
  std::printf("stock Hadoop: running time %.1f s, reduce spill %s MB\n",
              stock.time, bench::Mb(stock.spill).c_str());
  std::printf(
      "DINC-hash:    running time %.1f s (maps finished at %.1f s), "
      "reduce spill %s MB\n",
      dinc.time, dinc.map_finish, bench::Mb(dinc.spill).c_str());
  const double spill_ratio =
      dinc.spill > 0
          ? static_cast<double>(stock.spill) / static_cast<double>(dinc.spill)
          : 0;
  std::printf(
      "spill reduction: %.0fx (paper: 370 GB -> 0.1 GB, ~3 orders of "
      "magnitude)\n",
      spill_ratio);
  std::printf(
      "DINC reducers finish %.2f s after the last mapper (paper: \"as soon "
      "as all mappers finish\")\n",
      dinc.time - dinc.map_finish);
  std::printf(
      "\npaper shape check: spill(INC 2KB) >> spill(INC 0.5KB) >> "
      "spill(DINC) ~ 0;\nDINC is the fastest and ends with the maps.\n");
  (void)flags;
  return 0;
}
