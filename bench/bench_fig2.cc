// Reproduces Fig. 2: stock Hadoop's sessionization anatomy.
//   (a) task timeline: active map / shuffle / merge / reduce counts;
//   (b) CPU utilization;  (c) CPU iowait — the multi-pass-merge trough
//       (CPU idles while the disk churns) after the maps finish;
//   (d) same with intermediate data on a separate device (SSD): faster,
//       but the blocking and the iowait spike persist   [--ssd];
//   (e,f) MapReduce Online (pipelining): blocking and I/O remain [--hop].

#include <cstdio>

#include "bench/bench_common.h"
#include "src/workloads/jobs.h"

int main(int argc, char** argv) {
  using namespace onepass;
  const bench::Flags flags = bench::ParseFlags(argc, argv);

  JobConfig cfg = bench::ScaledJobConfig(EngineKind::kSortMerge);
  cfg.merge_factor = 8;  // stock: multi-pass merge
  cfg.reduce_memory_bytes = 128 << 10;
  cfg.timeline_bin_s = 0.05;
  const char* variant = "stock Hadoop (sort-merge, F=8)";
  if (flags.ssd) {
    cfg.cluster.separate_intermediate_device = true;
    variant = "stock Hadoop + SSD for intermediate data";
  }
  if (flags.hop) {
    cfg.pipelining = true;
    variant = "MapReduce Online (pipelining)";
  }

  std::printf("=== Fig. 2: %s, sessionization ===\n\n", variant);

  const ClickStreamConfig clicks = bench::ScaledClicks(flags.scale);
  ChunkStore input(cfg.chunk_bytes, cfg.cluster.nodes);
  GenerateClickStream(clicks, &input);

  auto r = bench::MustRun(SessionizationJob(), cfg, input);
  if (!r.ok()) return 1;

  std::printf("--- (a) task timeline (active tasks by operation) ---\n");
  bench::PrintProgress(
      {"map", "shuffle", "merge", "reduce"},
      {r->active_map, r->active_shuffle, r->active_merge, r->active_reduce},
      24);

  std::printf("\n--- (b,c) CPU utilization and iowait (cluster average) "
              "---\n  time(s)        cpu%%      iowait%%\n");
  const auto& u = r->cpu_util;
  const auto& w = r->iowait;
  const int rows = 24;
  for (int i = 0; i <= rows; ++i) {
    const double t = r->running_time * i / rows;
    std::printf("%9.2f  %10.1f  %11.1f\n", t, 100 * u.ValueAt(t),
                100 * w.ValueAt(t));
  }

  std::printf(
      "\nrunning time %.2f s; maps finished at %.2f s; reduce spill %s "
      "MB\n",
      r->running_time, r->map_finish_time,
      bench::Mb(r->metrics.reduce_spill_write_bytes).c_str());
  std::printf(
      "\npaper shape check: CPU utilization dips after the maps finish "
      "while iowait spikes\n(the blocking multi-pass merge); the SSD "
      "variant shortens but does not remove it;\npipelining does not "
      "remove it either.\n");
  return 0;
}
