// Microbenchmark: FREQUENT (the basis of DINC-hash) vs SpaceSaving vs a
// plain hash table, on Zipf streams. The paper picks FREQUENT because it
// explicitly maintains the hot-key set; this bench shows its per-tuple
// cost is competitive, i.e. monitoring is not the bottleneck.

#include <benchmark/benchmark.h>

#include <string>
#include <unordered_map>
#include <vector>

#include "src/sketch/frequent.h"
#include "src/sketch/space_saving.h"
#include "src/util/random.h"

namespace onepass {
namespace {

std::vector<std::string> MakeStream(int n, double skew) {
  Xoshiro256StarStar rng(3);
  ZipfGenerator zipf(100'000, skew);
  std::vector<std::string> keys;
  keys.reserve(n);
  for (int i = 0; i < n; ++i) {
    keys.push_back("k" + std::to_string(zipf.Next(&rng)));
  }
  return keys;
}

void BM_Frequent(benchmark::State& state) {
  const auto keys = MakeStream(1 << 17, state.range(0) / 10.0);
  for (auto _ : state) {
    FrequentSketch sketch(4096);
    for (const auto& k : keys) sketch.Offer(k);
    benchmark::DoNotOptimize(sketch.size());
  }
  state.SetItemsProcessed(state.iterations() * keys.size());
}
BENCHMARK(BM_Frequent)->Arg(5)->Arg(10)->Arg(12);  // skew 0.5 / 1.0 / 1.2

void BM_SpaceSaving(benchmark::State& state) {
  const auto keys = MakeStream(1 << 17, state.range(0) / 10.0);
  for (auto _ : state) {
    SpaceSavingSketch sketch(4096);
    for (const auto& k : keys) sketch.Offer(k);
    benchmark::DoNotOptimize(sketch.size());
  }
  state.SetItemsProcessed(state.iterations() * keys.size());
}
BENCHMARK(BM_SpaceSaving)->Arg(5)->Arg(10)->Arg(12);

void BM_ExactHashTable(benchmark::State& state) {
  const auto keys = MakeStream(1 << 17, state.range(0) / 10.0);
  for (auto _ : state) {
    std::unordered_map<std::string, uint64_t> table;
    for (const auto& k : keys) ++table[k];
    benchmark::DoNotOptimize(table.size());
  }
  state.SetItemsProcessed(state.iterations() * keys.size());
}
BENCHMARK(BM_ExactHashTable)->Arg(5)->Arg(10)->Arg(12);

}  // namespace
}  // namespace onepass
