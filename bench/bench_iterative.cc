// Iterative-analytics smoke for the resident shuffle engine (DESIGN.md
// §5.9). Three sections:
//
//   (1) Growing-log incremental sessionization — the M3R pitch: a warm
//       resident chain consumes only each round's delta and restores the
//       prior round's reduce state, while a cold job rescans the whole
//       log. Reports per-iteration simulated wall time, speedup, and
//       resident-hit ratio; target >= 5x after the first iteration.
//   (2) Growing-log click counting — same shape, but counting is
//       algebraic, so the chain's final iteration must emit exactly what
//       one cold job over the full log emits ("output match" sentinel).
//   (3) Label propagation repeated over the same input — input caching +
//       pinned placement + state carry on an idempotent aggregate; the
//       warm final output must equal the cold answer.
//
// Exits non-zero if any job fails or an output-match sentinel reads NO.

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "src/mr/job_manager.h"
#include "src/workloads/iterative.h"
#include "src/workloads/jobs.h"

namespace {

using onepass::Record;

std::vector<std::pair<std::string, std::string>> Sorted(
    const std::vector<Record>& outs) {
  std::vector<std::pair<std::string, std::string>> v;
  v.reserve(outs.size());
  for (const Record& r : outs) v.emplace_back(r.key, r.value);
  std::sort(v.begin(), v.end());
  return v;
}

double HitRatio(const onepass::JobResult& r) {
  const double hit = static_cast<double>(r.metrics.resident_hit_bytes);
  const double disk = static_cast<double>(r.shuffle_from_disk_bytes);
  return hit + disk > 0 ? hit / (hit + disk) : 0.0;
}

onepass::Result<onepass::ChainResult> MustChain(
    const std::vector<onepass::ChainStage>& stages) {
  auto r = onepass::JobManager::RunChain(stages);
  if (!r.ok()) {
    std::fprintf(stderr, "chain failed: %s\n",
                 r.status().ToString().c_str());
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace onepass;
  const bench::Flags flags = bench::ParseFlags(argc, argv);
  const int iters = flags.iterations > 1 ? flags.iterations : 5;
  const double growth = 0.08;  // each round adds 8% of the total log
  bool ok = true;
  double min_growing_speedup = -1;

  std::printf("=== iterative analytics: resident shuffle vs cold jobs "
              "(%d iterations) ===\n\n", iters);

  // ---- (1) growing-log incremental sessionization ----
  {
    JobConfig warm_cfg = bench::ScaledJobConfig(EngineKind::kIncHash, flags);
    warm_cfg.shuffle_mode = ShuffleMode::kResident;
    warm_cfg.map_side_combine = false;  // sessionization: states are buffers
    JobConfig cold_cfg = warm_cfg;
    cold_cfg.shuffle_mode = ShuffleMode::kDisk;

    // A fixed user population over a log that keeps growing: finalize
    // cost stays flat while the cold job's rescan grows with the log —
    // the regime where incremental refresh pays off.
    ClickStreamConfig clicks = bench::ScaledClicks(2.0 * flags.scale);
    clicks.num_users = 16'000;
    const GrowingLog log = MakeGrowingClickLog(
        clicks, iters, growth, warm_cfg.chunk_bytes, warm_cfg.cluster.nodes);

    std::vector<ChainStage> stages(static_cast<size_t>(iters));
    for (int i = 0; i < iters; ++i) {
      stages[static_cast<size_t>(i)] = {SessionizationJob(), warm_cfg,
                                        log.deltas[static_cast<size_t>(i)].get()};
    }
    auto warm = MustChain(stages);
    if (!warm.ok()) return 1;

    std::printf("growing-log sessionization (delta = %.0f%% of %s MB "
                "log)\n", growth * 100,
                bench::Mb(log.fulls.back()->total_bytes()).c_str());
    std::printf("%-6s %12s %12s %10s %10s\n", "iter", "cold (s)",
                "warm (s)", "speedup", "hit ratio");
    for (int i = 0; i < iters; ++i) {
      auto cold = bench::MustRun(SessionizationJob(), cold_cfg,
                                 *log.fulls[static_cast<size_t>(i)]);
      if (!cold.ok()) return 1;
      const JobResult& w = warm->iterations[static_cast<size_t>(i)];
      const double speedup =
          w.running_time > 0 ? cold->running_time / w.running_time : 0.0;
      std::printf("%-6d %12s %12s %9.1fx %9.0f%%\n", i,
                  bench::Secs(cold->running_time).c_str(),
                  bench::Secs(w.running_time).c_str(), speedup,
                  HitRatio(w) * 100);
      if (i >= 1) {
        min_growing_speedup = min_growing_speedup < 0
                                  ? speedup
                                  : std::min(min_growing_speedup, speedup);
      }
    }
  }

  // ---- (2) growing-log click counting: exactness of the refreshed
  // answer ----
  {
    JobConfig warm_cfg = bench::ScaledJobConfig(EngineKind::kIncHash, flags);
    warm_cfg.shuffle_mode = ShuffleMode::kResident;
    warm_cfg.map_side_combine = true;
    warm_cfg.collect_outputs = true;
    JobConfig cold_cfg = warm_cfg;
    cold_cfg.shuffle_mode = ShuffleMode::kDisk;

    const ClickStreamConfig clicks = bench::ScaledClicks(0.1 * flags.scale);
    const GrowingLog log = MakeGrowingClickLog(
        clicks, iters, growth, warm_cfg.chunk_bytes, warm_cfg.cluster.nodes);

    std::vector<ChainStage> stages(static_cast<size_t>(iters));
    for (int i = 0; i < iters; ++i) {
      stages[static_cast<size_t>(i)] = {ClickCountJob(), warm_cfg,
                                        log.deltas[static_cast<size_t>(i)].get()};
    }
    auto warm = MustChain(stages);
    if (!warm.ok()) return 1;
    auto cold = bench::MustRun(ClickCountJob(), cold_cfg, *log.fulls.back());
    if (!cold.ok()) return 1;

    const bool match =
        Sorted(warm->iterations.back().outputs) == Sorted(cold->outputs);
    ok &= match;
    std::printf("\n%-52s %s\n",
                "counting chain final output == cold job over full log:",
                match ? "yes" : "NO");
  }

  // ---- (3) label propagation repeated over the same input ----
  {
    JobConfig warm_cfg = bench::ScaledJobConfig(EngineKind::kIncHash, flags);
    warm_cfg.shuffle_mode = ShuffleMode::kResident;
    warm_cfg.map_side_combine = true;
    warm_cfg.collect_outputs = true;
    warm_cfg.iterations = iters;
    JobConfig cold_cfg = warm_cfg;
    cold_cfg.shuffle_mode = ShuffleMode::kDisk;

    const ClickStreamConfig clicks = bench::ScaledClicks(0.1 * flags.scale);
    ChunkStore input(warm_cfg.chunk_bytes, warm_cfg.cluster.nodes);
    GenerateClickStream(clicks, &input);

    std::vector<ChainStage> stages(static_cast<size_t>(iters));
    for (int i = 0; i < iters; ++i) {
      stages[static_cast<size_t>(i)] = {LabelPropagationJob(), warm_cfg,
                                        &input};
    }
    auto warm = MustChain(stages);
    if (!warm.ok()) return 1;
    auto cold = bench::MustRun(LabelPropagationJob(), cold_cfg, input);
    if (!cold.ok()) return 1;

    std::printf("\nlabel propagation, same input every round (cold: %.3f "
                "s)\n", cold->running_time);
    std::printf("%-6s %12s %10s %10s\n", "iter", "warm (s)", "speedup",
                "hit ratio");
    for (int i = 0; i < iters; ++i) {
      const JobResult& w = warm->iterations[static_cast<size_t>(i)];
      std::printf("%-6d %12.3f %9.1fx %9.0f%%\n", i, w.running_time,
                  w.running_time > 0 ? cold->running_time / w.running_time
                                     : 0.0,
                  HitRatio(w) * 100);
    }
    const bool match =
        Sorted(warm->iterations.back().outputs) == Sorted(cold->outputs);
    ok &= match;
    std::printf("%-52s %s\n",
                "label-propagation warm final output == cold output:",
                match ? "yes" : "NO");
  }

  std::printf("\nmin warm-iteration speedup (growing log, iter >= 1): "
              "%.1fx (target >= 5x)\n",
              min_growing_speedup);
  std::printf("iterative smoke: %s\n",
              ok ? "outputs exact" : "OUTPUT MISMATCH");
  return ok ? 0 : 1;
}
