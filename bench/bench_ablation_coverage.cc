// Ablation for §4.3's approximate answers: the coverage threshold phi.
//
// Sweeping phi trades completeness (how many keys, covering how many
// tuples, are returned) against the time saved by skipping the
// disk-resident buckets. gamma = t/(t + M/(s+1)) is a safe lower bound,
// so every returned key truly has coverage >= phi.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/workloads/jobs.h"
#include "src/workloads/reference.h"

int main(int argc, char** argv) {
  using namespace onepass;
  const bench::Flags flags = bench::ParseFlags(argc, argv);

  std::printf("=== ablation: DINC-hash coverage threshold phi ===\n\n");

  ClickStreamConfig clicks;
  clicks.num_clicks = static_cast<uint64_t>(400'000 * flags.scale);
  clicks.num_users = 50'000;
  clicks.user_skew = 1.1;  // hot keys exist
  clicks.clicks_per_second = 40;
  ChunkStore input((256 << 10), bench::PaperCluster().nodes);
  GenerateClickStream(clicks, &input);
  const auto truth = ReferenceClickCounts(input, ClickKeyField::kUser);
  uint64_t total_clicks = 0;
  for (const auto& [k, c] : truth) total_clicks += c;

  std::printf("%8s %10s %12s %16s %18s\n", "phi", "time(s)", "keys out",
              "click coverage%", "bucket bytes read");
  for (double phi : {0.0, 0.5, 0.8, 0.95}) {
    JobConfig cfg = bench::ScaledJobConfig(EngineKind::kDincHash);
    cfg.reduce_memory_bytes = 64 << 10;
    cfg.map_side_combine = false;
    cfg.expected_keys_per_reducer = 1250;
    cfg.dinc_coverage_threshold = phi;
    cfg.collect_outputs = true;
    auto r = bench::MustRun(ClickCountJob(), cfg, input);
    if (!r.ok()) continue;
    uint64_t covered = 0;
    for (const Record& rec : r->outputs) {
      auto it = truth.find(rec.key);
      if (it != truth.end()) covered += it->second;
    }
    std::printf("%8.2f %10.2f %12llu %15.1f%% %18s\n", phi,
                r->running_time,
                static_cast<unsigned long long>(r->outputs.size()),
                100.0 * covered / total_clicks,
                bench::Mb(r->metrics.reduce_spill_read_bytes).c_str());
  }

  std::printf(
      "\nreading the table: phi = 0 is the exact job (all keys, buckets "
      "read back);\nhigher phi returns fewer, hotter keys faster, never "
      "reading the buckets.\n");
  return 0;
}
