// Fault injection & recovery: the cost of losing a node mid-job and of a
// straggler, per engine (no counterpart figure in the paper, which ran on
// a healthy cluster; the scenarios follow its Hadoop fault model).
//
// Scenario A — node crash at 50% of the map phase, replication 2:
//   every engine must produce the reference answer after re-executing the
//   dead node's tasks (and any completed maps whose outputs were lost).
//   The engines pay differently: SM re-reads and re-sorts spilled runs
//   (recovery bytes), INC/DINC re-run accumulated reduce state from
//   scratch (wasted CPU seconds).
//
// Scenario B — one node with CPU and disk 4x slower, speculative
//   execution on vs off: backups on healthy nodes should cut the tail.
//
// Usage: bench_faults [--scale=S]

#include <cstdio>
#include <map>
#include <string>

#include "bench/bench_common.h"
#include "src/workloads/jobs.h"
#include "src/workloads/reference.h"

namespace onepass {
namespace {

constexpr EngineKind kEngines[] = {EngineKind::kSortMerge,
                                   EngineKind::kMRHash, EngineKind::kIncHash,
                                   EngineKind::kDincHash};

JobConfig FaultyConfig(EngineKind kind) {
  JobConfig cfg = bench::ScaledJobConfig(kind);
  cfg.map_side_combine = true;
  cfg.merge_factor = 32;
  cfg.expected_keys_per_reducer = 1200;
  cfg.expected_bytes_per_reducer = 2 << 20;
  cfg.collect_outputs = true;
  cfg.replication = 2;
  return cfg;
}

bool MatchesReference(const JobResult& result,
                      const std::map<std::string, uint64_t>& expected) {
  std::map<std::string, uint64_t> got;
  for (const Record& rec : result.outputs) {
    got[rec.key] += std::stoull(rec.value);
  }
  return got == expected;
}

void CrashScenario(const ChunkStore& input,
                   const std::map<std::string, uint64_t>& expected) {
  std::printf(
      "\n--- A: crash node 3 at 50%% of maps (replication=2) ---\n");
  std::printf("%-9s %9s %9s %9s %6s %6s %5s %9s %8s %4s\n", "engine",
              "clean_s", "crash_s", "overhead", "m_att", "killed", "lost",
              "recov_MB", "waste_s", "ref?");

  std::vector<std::string> names;
  std::vector<sim::StepSeries> series;
  for (EngineKind kind : kEngines) {
    JobConfig cfg = FaultyConfig(kind);
    auto clean = bench::MustRun(ClickCountJob(), cfg, input);
    if (!clean.ok()) continue;

    sim::CrashEvent crash;
    crash.node = 3;
    crash.at_map_fraction = 0.5;
    cfg.faults.crashes = {crash};
    auto faulty = bench::MustRun(ClickCountJob(), cfg, input);
    if (!faulty.ok()) continue;

    const JobMetrics& m = faulty->metrics;
    std::printf("%-9s %9.1f %9.1f %8.1f%% %6llu %6llu %5llu %9s %8.1f %4s\n",
                std::string(EngineKindName(kind)).c_str(),
                clean->running_time, faulty->running_time,
                100.0 * (faulty->running_time / clean->running_time - 1.0),
                static_cast<unsigned long long>(m.map_task_attempts),
                static_cast<unsigned long long>(m.killed_attempts),
                static_cast<unsigned long long>(m.lost_map_outputs),
                bench::Mb(m.recovery_bytes).c_str(), m.wasted_cpu_s,
                MatchesReference(*faulty, expected) ? "yes" : "NO");
    names.push_back(std::string(EngineKindName(kind)) + " red%");
    series.push_back(faulty->reduce_progress);
  }
  std::printf("\nreduce progress under the crash (the plateau is the"
              " re-execution window):\n");
  bench::PrintProgress(names, series, 20);
}

void StragglerScenario(const ChunkStore& input,
                       const std::map<std::string, uint64_t>& expected) {
  std::printf("\n--- B: node 1 with cpu/disk 4x slower, speculation"
              " off vs on ---\n");
  std::printf("%-9s %9s %9s %8s %6s %5s %4s\n", "engine", "no_spec_s",
              "spec_s", "speedup", "spec", "wins", "ref?");
  for (EngineKind kind : kEngines) {
    JobConfig cfg = FaultyConfig(kind);
    sim::StragglerSpec slow;
    slow.node = 1;
    slow.cpu_factor = 4.0;
    slow.disk_factor = 4.0;
    cfg.faults.stragglers = {slow};
    auto no_spec = bench::MustRun(ClickCountJob(), cfg, input);
    if (!no_spec.ok()) continue;

    cfg.faults.speculative_execution = true;
    auto spec = bench::MustRun(ClickCountJob(), cfg, input);
    if (!spec.ok()) continue;

    const JobMetrics& m = spec->metrics;
    std::printf("%-9s %9.1f %9.1f %7.2fx %6llu %5llu %4s\n",
                std::string(EngineKindName(kind)).c_str(),
                no_spec->running_time, spec->running_time,
                no_spec->running_time / spec->running_time,
                static_cast<unsigned long long>(m.speculative_attempts),
                static_cast<unsigned long long>(m.speculative_wins),
                MatchesReference(*spec, expected) ? "yes" : "NO");
  }
}

}  // namespace
}  // namespace onepass

int main(int argc, char** argv) {
  using namespace onepass;
  const bench::Flags flags = bench::ParseFlags(argc, argv);

  std::printf("=== Fault injection & recovery: user click counting ===\n");
  const ClickStreamConfig clicks = bench::ScaledClicks(flags.scale);
  ChunkStore input(256 << 10, bench::PaperCluster().nodes,
                   /*replication=*/2);
  GenerateClickStream(clicks, &input);
  std::printf("input: %s MB in %zu chunks, replication 2\n",
              bench::Mb(input.total_bytes()).c_str(), input.chunks().size());

  const auto expected = ReferenceClickCounts(input, ClickKeyField::kUser);
  CrashScenario(input, expected);
  StragglerScenario(input, expected);
  return 0;
}
