// Ablation for §3.3(4): MapReduce Online's snapshot mechanism vs
// incremental processing.
//
// Paper: "MapReduce Online has an extension to periodically output
// snapshots (e.g., when reducers have received 25%, 50%, 75% of the
// data). However, this is done by repeating the merge operation for each
// snapshot, not by incremental processing. It can incur high I/O overhead
// and significantly increased running time."
//
// We run pipelined sort-merge with 0 and 3 snapshots, and INC-hash (which
// emits continuously for free), on sessionization.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/workloads/jobs.h"

int main(int argc, char** argv) {
  using namespace onepass;
  const bench::Flags flags = bench::ParseFlags(argc, argv);

  std::printf("=== §3.3(4) ablation: snapshots by repeated merge vs "
              "incremental output ===\n\n");

  const ClickStreamConfig clicks = bench::ScaledClicks(0.5 * flags.scale);
  JobConfig base = bench::ScaledJobConfig(EngineKind::kSortMerge);
  base.merge_factor = 8;
  base.reduce_memory_bytes = 128 << 10;
  base.pipelining = true;
  base.pipeline_push_bytes = 128 << 10;
  ChunkStore input(base.chunk_bytes, base.cluster.nodes);
  GenerateClickStream(clicks, &input);

  auto run_sm = [&](int snapshots) {
    JobConfig cfg = base;
    cfg.snapshots = snapshots;
    return bench::MustRun(SessionizationJob(), cfg, input);
  };
  auto hop0 = run_sm(0);
  auto hop3 = run_sm(3);

  JobConfig inc_cfg = bench::ScaledJobConfig(EngineKind::kIncHash);
  inc_cfg.expected_keys_per_reducer = 700;
  auto inc = bench::MustRun(SessionizationJob(), inc_cfg, input);
  if (!hop0.ok() || !hop3.ok() || !inc.ok()) return 1;

  std::printf("%-30s %12s %14s %16s\n", "", "time(s)", "spill r+w (MB)",
              "early output(%)");
  auto row = [&](const char* name, const JobResult& r) {
    const double early =
        r.metrics.output_records > 0
            ? 100.0 * static_cast<double>(r.metrics.early_output_records) /
                  static_cast<double>(r.metrics.output_records)
            : 0.0;
    std::printf("%-30s %12.2f %14s %16.1f\n", name, r.running_time,
                bench::Mb(r.metrics.reduce_spill_write_bytes +
                          r.metrics.reduce_spill_read_bytes)
                    .c_str(),
                early);
  };
  row("HOP, no snapshots", *hop0);
  row("HOP + 3 snapshots", *hop3);
  row("INC-hash (continuous)", *inc);

  std::printf("\nsnapshot volume written: %s MB across %llu snapshots\n",
              bench::Mb(hop3->metrics.snapshot_bytes).c_str(),
              static_cast<unsigned long long>(
                  hop3->metrics.snapshot_count));
  std::printf(
      "\npaper shape check: snapshots add substantial I/O and running "
      "time to HOP, while\nINC-hash's continuous early output costs "
      "nothing extra.\n");
  return 0;
}
