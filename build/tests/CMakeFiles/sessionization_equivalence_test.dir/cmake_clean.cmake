file(REMOVE_RECURSE
  "CMakeFiles/sessionization_equivalence_test.dir/sessionization_equivalence_test.cc.o"
  "CMakeFiles/sessionization_equivalence_test.dir/sessionization_equivalence_test.cc.o.d"
  "sessionization_equivalence_test"
  "sessionization_equivalence_test.pdb"
  "sessionization_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sessionization_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
