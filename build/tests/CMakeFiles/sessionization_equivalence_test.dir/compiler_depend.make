# Empty compiler generated dependencies file for sessionization_equivalence_test.
# This may be replaced when dependencies are built.
