file(REMOVE_RECURSE
  "CMakeFiles/merge_tree_test.dir/merge_tree_test.cc.o"
  "CMakeFiles/merge_tree_test.dir/merge_tree_test.cc.o.d"
  "merge_tree_test"
  "merge_tree_test.pdb"
  "merge_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merge_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
