file(REMOVE_RECURSE
  "CMakeFiles/kv_buffer_test.dir/kv_buffer_test.cc.o"
  "CMakeFiles/kv_buffer_test.dir/kv_buffer_test.cc.o.d"
  "kv_buffer_test"
  "kv_buffer_test.pdb"
  "kv_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
