# Empty dependencies file for kv_buffer_test.
# This may be replaced when dependencies are built.
