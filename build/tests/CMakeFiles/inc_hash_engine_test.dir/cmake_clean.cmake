file(REMOVE_RECURSE
  "CMakeFiles/inc_hash_engine_test.dir/inc_hash_engine_test.cc.o"
  "CMakeFiles/inc_hash_engine_test.dir/inc_hash_engine_test.cc.o.d"
  "inc_hash_engine_test"
  "inc_hash_engine_test.pdb"
  "inc_hash_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inc_hash_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
