# Empty dependencies file for mr_hash_engine_test.
# This may be replaced when dependencies are built.
