# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for dinc_hash_engine_test.
