file(REMOVE_RECURSE
  "CMakeFiles/dinc_hash_engine_test.dir/dinc_hash_engine_test.cc.o"
  "CMakeFiles/dinc_hash_engine_test.dir/dinc_hash_engine_test.cc.o.d"
  "dinc_hash_engine_test"
  "dinc_hash_engine_test.pdb"
  "dinc_hash_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dinc_hash_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
