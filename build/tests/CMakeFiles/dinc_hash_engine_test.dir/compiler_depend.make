# Empty compiler generated dependencies file for dinc_hash_engine_test.
# This may be replaced when dependencies are built.
