file(REMOVE_RECURSE
  "CMakeFiles/bucket_manager_test.dir/bucket_manager_test.cc.o"
  "CMakeFiles/bucket_manager_test.dir/bucket_manager_test.cc.o.d"
  "bucket_manager_test"
  "bucket_manager_test.pdb"
  "bucket_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bucket_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
