# Empty compiler generated dependencies file for job_builder_test.
# This may be replaced when dependencies are built.
