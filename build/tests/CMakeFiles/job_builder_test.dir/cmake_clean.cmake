file(REMOVE_RECURSE
  "CMakeFiles/job_builder_test.dir/job_builder_test.cc.o"
  "CMakeFiles/job_builder_test.dir/job_builder_test.cc.o.d"
  "job_builder_test"
  "job_builder_test.pdb"
  "job_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/job_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
