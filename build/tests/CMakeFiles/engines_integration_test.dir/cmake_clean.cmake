file(REMOVE_RECURSE
  "CMakeFiles/engines_integration_test.dir/engines_integration_test.cc.o"
  "CMakeFiles/engines_integration_test.dir/engines_integration_test.cc.o.d"
  "engines_integration_test"
  "engines_integration_test.pdb"
  "engines_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engines_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
