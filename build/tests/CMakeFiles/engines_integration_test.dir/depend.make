# Empty dependencies file for engines_integration_test.
# This may be replaced when dependencies are built.
