# Empty dependencies file for output_collector_test.
# This may be replaced when dependencies are built.
