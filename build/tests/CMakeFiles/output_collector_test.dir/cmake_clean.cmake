file(REMOVE_RECURSE
  "CMakeFiles/output_collector_test.dir/output_collector_test.cc.o"
  "CMakeFiles/output_collector_test.dir/output_collector_test.cc.o.d"
  "output_collector_test"
  "output_collector_test.pdb"
  "output_collector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/output_collector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
