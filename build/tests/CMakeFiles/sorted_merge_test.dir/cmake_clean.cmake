file(REMOVE_RECURSE
  "CMakeFiles/sorted_merge_test.dir/sorted_merge_test.cc.o"
  "CMakeFiles/sorted_merge_test.dir/sorted_merge_test.cc.o.d"
  "sorted_merge_test"
  "sorted_merge_test.pdb"
  "sorted_merge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sorted_merge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
