# Empty dependencies file for sorted_merge_test.
# This may be replaced when dependencies are built.
