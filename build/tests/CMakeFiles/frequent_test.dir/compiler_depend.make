# Empty compiler generated dependencies file for frequent_test.
# This may be replaced when dependencies are built.
