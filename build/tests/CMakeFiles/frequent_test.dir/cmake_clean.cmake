file(REMOVE_RECURSE
  "CMakeFiles/frequent_test.dir/frequent_test.cc.o"
  "CMakeFiles/frequent_test.dir/frequent_test.cc.o.d"
  "frequent_test"
  "frequent_test.pdb"
  "frequent_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frequent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
