file(REMOVE_RECURSE
  "CMakeFiles/map_runner_test.dir/map_runner_test.cc.o"
  "CMakeFiles/map_runner_test.dir/map_runner_test.cc.o.d"
  "map_runner_test"
  "map_runner_test.pdb"
  "map_runner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/map_runner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
