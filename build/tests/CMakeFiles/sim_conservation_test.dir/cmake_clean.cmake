file(REMOVE_RECURSE
  "CMakeFiles/sim_conservation_test.dir/sim_conservation_test.cc.o"
  "CMakeFiles/sim_conservation_test.dir/sim_conservation_test.cc.o.d"
  "sim_conservation_test"
  "sim_conservation_test.pdb"
  "sim_conservation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_conservation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
